// Package isomap is an implementation of Iso-Map, the energy-efficient
// contour-mapping protocol for wireless sensor networks of Li and Liu
// (ICDCS 2007 / IEEE TKDE 2010), together with the simulation substrate
// and baselines used by the paper's evaluation.
//
// Iso-Map builds contour maps of a sensed scalar field from the reports of
// the small set of "isoline nodes" — nodes straddling an isoline of the
// queried attribute — cutting generated traffic from O(n) to O(sqrt n)
// while keeping per-node computation constant. Each isoline node reports
// the 3-tuple <isolevel, position, gradient direction>, the gradient
// estimated by linear regression over its radio neighborhood; redundant
// reports are filtered in-network; and the sink reconstructs contour
// regions per isolevel from a Voronoi diagram of the reported isopositions.
//
// The typical flow:
//
//	f := isomap.DefaultSeabed()                             // or any Field
//	nw, _ := isomap.DeployUniform(2500, f, 1.5, seed)       // sensor network
//	tree, _ := isomap.NewTreeAtCenter(nw)                   // routing tree
//	q, _ := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
//	res, _ := isomap.Run(tree, f, q, isomap.DefaultFilter()) // protocol round
//	m := isomap.Reconstruct(res.Reports, q.Levels, f, res.SinkValue)
//	class := m.ClassifyPoint(isomap.Point{X: 10, Y: 20})
//
// Or, in one call over a freshly deployed network: MapField.
package isomap

import (
	"fmt"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/render"
	"isomap/internal/routing"
)

// Core geometric and protocol types, re-exported for API users.
type (
	// Point is a location in the normalized field plane.
	Point = geom.Point
	// Vec is a direction or displacement.
	Vec = geom.Vec
	// Levels is the isolevel scheme of a contour query.
	Levels = field.Levels
	// Field is a scalar attribute distribution over a rectangle.
	Field = field.Field
	// Raster is a grid of contour-region indices.
	Raster = field.Raster
	// Network is a deployed sensor network.
	Network = network.Network
	// NodeID identifies a sensor node.
	NodeID = network.NodeID
	// Tree is a sink-rooted routing tree.
	Tree = routing.Tree
	// Query is a contour-mapping query.
	Query = core.Query
	// Report is an isoline node's <level, position, gradient> report.
	Report = core.Report
	// FilterConfig parameterizes in-network report filtering.
	FilterConfig = core.FilterConfig
	// Result summarizes one protocol round.
	Result = core.Result
	// Map is a reconstructed contour map.
	Map = contour.Map
	// SeabedConfig parameterizes the synthetic depth surface.
	SeabedConfig = field.SeabedConfig
)

// DefaultSeabed returns the deterministic synthetic underwater-depth field
// used throughout the experiment suite: a 50x50-unit harbor section whose
// depth spans roughly 5-13.5 m.
func DefaultSeabed() Field {
	return field.NewSeabed(field.DefaultSeabedConfig())
}

// NewSeabed builds a synthetic depth surface from cfg.
func NewSeabed(cfg SeabedConfig) Field { return field.NewSeabed(cfg) }

// DefaultSeabedConfig returns the experiment suite's surface parameters.
func DefaultSeabedConfig() SeabedConfig { return field.DefaultSeabedConfig() }

// DeployUniform scatters n sensor nodes uniformly at random over the
// field's bounds with the given radio range, deterministically in seed.
func DeployUniform(n int, f Field, radio float64, seed int64) (*Network, error) {
	return network.DeployUniform(n, f, radio, seed)
}

// DeployGrid places (floor(sqrt(n)))^2 sensor nodes on a regular grid, the
// deployment required by the TinyDB/INLR/suppression baselines.
func DeployGrid(n int, f Field, radio float64) (*Network, error) {
	return network.DeployGrid(n, f, radio)
}

// NewTree builds the sink-rooted routing tree over the network.
func NewTree(nw *Network, sink NodeID) (*Tree, error) {
	return routing.NewTree(nw, sink)
}

// NewTreeAtCenter roots the routing tree at the alive node nearest the
// field center — the default sink placement of the experiment suite.
func NewTreeAtCenter(nw *Network) (*Tree, error) {
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		return nil, fmt.Errorf("isomap: sink placement: %w", err)
	}
	return routing.NewTree(nw, sink)
}

// NewQuery builds a contour query over the isolevel scheme with the
// paper's default border tolerance (5% of the granularity).
func NewQuery(levels Levels) (Query, error) { return core.NewQuery(levels) }

// NewQueryEpsilon builds a contour query with an explicit border
// tolerance.
func NewQueryEpsilon(levels Levels, epsilon float64) (Query, error) {
	return core.NewQueryEpsilon(levels, epsilon)
}

// DefaultFilter returns the paper's in-network filter setting:
// angular separation 30 degrees, distance separation 4 units.
func DefaultFilter() FilterConfig { return core.DefaultFilterConfig() }

// NoFilter disables in-network filtering; every generated report reaches
// the sink.
func NoFilter() FilterConfig { return FilterConfig{} }

// Run executes one Iso-Map protocol round over the routing tree: sensing,
// query dissemination, isoline-node detection and measurement, and
// filtered report delivery.
func Run(tree *Tree, f Field, q Query, fc FilterConfig) (*Result, error) {
	return core.Run(tree, f, q, fc)
}

// Reconstruct builds the contour map from the reports collected at the
// sink. sinkValue (available as Result.SinkValue) settles isolevels that
// received no reports.
func Reconstruct(reports []Report, levels Levels, f Field, sinkValue float64) *Map {
	return contour.Reconstruct(reports, levels, field.BoundsRect(f), sinkValue, contour.DefaultOptions())
}

// TruthRaster rasterizes the ground-truth contour map of a field under an
// isolevel scheme, for accuracy comparisons.
func TruthRaster(f Field, levels Levels, rows, cols int) *Raster {
	return field.ClassifyRaster(f, levels, rows, cols)
}

// Accuracy returns the fraction of raster cells on which the two maps
// agree — the paper's mapping-accuracy metric.
func Accuracy(truth, estimate *Raster) float64 { return field.Agreement(truth, estimate) }

// RenderASCII draws a contour raster as terminal text, one glyph per cell,
// deeper regions darker.
func RenderASCII(ra *Raster) string { return render.ASCII(ra) }

// RenderSideBySide draws two rasters next to each other with labels, for
// truth-vs-estimate comparisons.
func RenderSideBySide(left, right *Raster, leftLabel, rightLabel string) string {
	return render.SideBySide(left, right, leftLabel, rightLabel)
}

// MapField is the one-call convenience API: it deploys n nodes over f,
// roots a tree at the field center, runs one Iso-Map round with the
// default filter and reconstructs the contour map.
func MapField(f Field, n int, radio float64, seed int64, levels Levels) (*Map, *Result, error) {
	nw, err := DeployUniform(n, f, radio, seed)
	if err != nil {
		return nil, nil, err
	}
	tree, err := NewTreeAtCenter(nw)
	if err != nil {
		return nil, nil, err
	}
	q, err := NewQuery(levels)
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(tree, f, q, DefaultFilter())
	if err != nil {
		return nil, nil, err
	}
	return Reconstruct(res.Reports, levels, f, res.SinkValue), res, nil
}
