package isomap_test

import (
	"fmt"

	"isomap"
)

// ExampleMapField maps the contours of the default synthetic seabed in a
// single call and classifies one point of interest.
func ExampleMapField() {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}

	m, res, err := isomap.MapField(f, 2500, 1.5, 1, levels)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_ = res
	class := m.ClassifyPoint(isomap.Point{X: 25, Y: 25})
	fmt.Printf("field center is in contour region %d of %d\n", class, levels.Count())
	// Output: field center is in contour region 3 of 4
}

// ExampleNewQuery shows the query parameters of a contour request: the
// data space, granularity and border tolerance.
func ExampleNewQuery() {
	q, err := isomap.NewQuery(isomap.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("isolevels: %v\n", q.Levels.Values())
	fmt.Printf("border tolerance: %v\n", q.Epsilon)
	// Output:
	// isolevels: [6 8 10 12]
	// border tolerance: 0.1
}

// ExampleRegionsBelow extracts alarm zones — the area shallower than the
// lowest isolevel — from a reconstructed map.
func ExampleRegionsBelow() {
	f := isomap.DefaultSeabed()
	levels := isomap.Levels{Low: 6, High: 12, Step: 2}
	m, _, err := isomap.MapField(f, 2500, 1.5, 1, levels)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	alarms := isomap.RegionsBelow(m.Raster(96, 96), 1)
	fmt.Printf("alarm zones: %d\n", len(alarms))
	// Output: alarm zones: 1
}
