// Command isomapsim runs a single contour-mapping round over the
// synthetic harbor seabed (or a trace loaded with -trace) and prints the
// resulting statistics together with ASCII renderings of the true and
// reconstructed contour maps.
//
// Usage:
//
//	isomapsim [-nodes 2500] [-side 50] [-seed 1] [-fail 0.0] [-grid]
//	          [-sa 30] [-sd 4] [-eps 0.1] [-nofilter] [-res 60]
//	          [-pgm out.pgm] [-trace depth.txt]
//	          [-protocol isomap|tinydb|inlr|escan|suppress]
//	          [-packet] [-loss 0.0] [-burst 0.0] [-crashfrac 0.0]
//	          [-shards 1] [-workers 0]
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	          [-roundtrace events.jsonl] [-expvar vars.json] [-diag DIR]
//
// -cpuprofile and -memprofile write pprof profiles of the run (the heap
// profile is captured at exit, after a final GC), so a single large round
// — e.g. -nodes 16000 -packet — can be inspected with `go tool pprof`
// without instrumenting the code.
//
// -roundtrace records the packet-level round as a structured event trace
// (one canonical JSON object per line; "-" writes to stdout) covering
// every frame send/tx/rx/ack/drop, backoff, crash, route repair, sink
// report arrival and the sink-side reconstruction stage timings. It
// implies -packet and runs the trace invariant checker, reporting any
// violation on stderr. -expvar dumps the process expvar variables —
// including the per-phase round counters published after a traced round —
// as JSON. -diag DIR is the one-flag diagnosis bundle: it fills DIR with
// cpu.pprof, heap.pprof, events.jsonl and expvar.json. Any of the
// corresponding flags given explicitly on the command line keeps its own
// value — including an explicit empty value, which disables that output
// (set-ness decides, not the value). With a non-isomap -protocol the
// bundle skips events.jsonl (those protocols have no packet round) with a
// note on stderr. An uncreatable DIR is a hard error.
//
// With -packet the round additionally executes on the packet-level
// CSMA/CA engine (query flood, neighborhood probes, filtered
// convergecast), reporting real phase latencies and link-layer counts.
// -shards above 1 runs that round on the sharded parallel engine (grid
// partition, conservative radio-range lookahead) with -workers
// goroutines per window (0 selects GOMAXPROCS); results and traces are
// byte-identical to the sequential engine at any shard count.
// -loss, -burst and -crashfrac inject faults into that packet round: a
// Bernoulli (or, with -burst > 0, Gilbert–Elliott) lossy channel and a
// fraction of nodes crashing mid-round, with route repair around the
// dead parents.
package main

import (
	"bytes"
	"expvar"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"

	"isomap/internal/baseline/tinydb"
	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/render"
	"isomap/internal/sim"
	rtrace "isomap/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "isomapsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes     = flag.Int("nodes", 2500, "number of sensor nodes")
		side      = flag.Float64("side", 50, "field side length in normalized units")
		seed      = flag.Int64("seed", 1, "deployment seed")
		fail      = flag.Float64("fail", 0, "fraction of failed nodes")
		grid      = flag.Bool("grid", false, "grid deployment instead of uniform random")
		sa        = flag.Float64("sa", 30, "filter angular separation threshold (degrees)")
		sd        = flag.Float64("sd", 4, "filter distance separation threshold (units)")
		eps       = flag.Float64("eps", 0.1, "isoline border tolerance (value units)")
		nofilter  = flag.Bool("nofilter", false, "disable in-network filtering")
		res       = flag.Int("res", 60, "ASCII render resolution (cells per side)")
		pgmPath   = flag.String("pgm", "", "write the estimated map as a PGM image to this path")
		trace     = flag.String("trace", "", "load the field from a depth-trace grid file (see cmd/tracegen)")
		protocol  = flag.String("protocol", "isomap", "protocol to run: isomap, tinydb, inlr, escan, suppress")
		packet    = flag.Bool("packet", false, "also execute the round on the packet-level CSMA/CA engine")
		loss      = flag.Float64("loss", 0, "packet round: channel loss rate in [0, 1)")
		burst     = flag.Float64("burst", 0, "packet round: channel burstiness in [0, 1) (Gilbert–Elliott)")
		crashfrac = flag.Float64("crashfrac", 0, "packet round: fraction of nodes crashing mid-round")
		shards    = flag.Int("shards", 1, "packet round: run on the sharded engine with this many spatial shards")
		workers   = flag.Int("workers", 0, "packet round: sharded engine worker goroutines per window (0 = GOMAXPROCS)")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
		roundtr   = flag.String("roundtrace", "", "write the packet round as a JSONL event trace to this file (\"-\" for stdout; implies -packet)")
		expvarOut = flag.String("expvar", "", "dump expvar variables (incl. traced round counters) as JSON to this file")
		diagDir   = flag.String("diag", "", "diagnosis bundle: write cpu.pprof, heap.pprof, events.jsonl and expvar.json into this directory")
	)
	flag.Parse()
	// explicitly set flags, by name: -diag only fills outputs the user did
	// not set themselves. Checking values instead of flag.Visit would
	// silently re-route an explicit `-cpuprofile ""` (profile disabled)
	// or any other flag explicitly set to its default into the diag dir.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *diagDir != "" {
		if err := os.MkdirAll(*diagDir, 0o755); err != nil {
			return fmt.Errorf("diag: %w", err)
		}
		if !explicit["cpuprofile"] {
			*cpuprof = filepath.Join(*diagDir, "cpu.pprof")
		}
		if !explicit["memprofile"] {
			*memprof = filepath.Join(*diagDir, "heap.pprof")
		}
		if !explicit["roundtrace"] {
			if *protocol == "isomap" {
				*roundtr = filepath.Join(*diagDir, "events.jsonl")
			} else {
				// The bundle stays useful for other protocols; only the
				// packet-round trace has nothing to record.
				fmt.Fprintf(os.Stderr, "isomapsim: diag: skipping events.jsonl (protocol %q has no packet round)\n", *protocol)
			}
		}
		if !explicit["expvar"] {
			*expvarOut = filepath.Join(*diagDir, "expvar.json")
		}
	}
	if *roundtr != "" {
		if *protocol != "isomap" {
			return fmt.Errorf("-roundtrace traces the packet-level Iso-Map round; protocol %q has none", *protocol)
		}
		*packet = true
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "isomapsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "isomapsim: memprofile:", err)
			}
		}()
	}

	var traceField field.Field
	if *trace != "" {
		tf, err := loadTrace(*trace, *side)
		if err != nil {
			return err
		}
		traceField = tf
	}
	fc := core.FilterConfig{Enabled: !*nofilter, MaxAngle: geom.Radians(*sa), MaxDist: *sd}
	env, err := sim.Build(sim.Scenario{
		Nodes:        *nodes,
		FieldSide:    *side,
		Grid:         *grid,
		Seed:         *seed,
		FailFraction: *fail,
		Epsilon:      *eps,
		Filter:       &fc,
		Trace:        traceField,
	})
	if err != nil {
		return err
	}

	var (
		st       sim.Stats
		m        *contour.Map
		estimate *field.Raster
	)
	switch *protocol {
	case "isomap":
		st, m, err = env.RunIsoMap()
		if err == nil {
			estimate = m.Raster(*res, *res)
		}
	case "tinydb":
		var tres *tinydb.Result
		st, tres, err = env.RunTinyDB()
		if err == nil {
			estimate = tres.Raster(env.Scenario.Levels, *res, *res)
		}
	case "inlr":
		st, err = env.RunINLR()
	case "escan":
		st, err = env.RunEScan()
	case "suppress":
		st, err = env.RunSuppress()
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	if err != nil {
		return err
	}

	fmt.Printf("protocol:         %s\n", st.Protocol)
	fmt.Printf("nodes:            %d (avg degree %.1f, diameter %d hops)\n",
		st.Nodes, st.AvgDegree, st.Diameter)
	fmt.Printf("reports:          %d generated, %d received at sink\n", st.Generated, st.SinkReports)
	fmt.Printf("traffic:          %.2f KB\n", st.TrafficKB)
	fmt.Printf("compute:          %.1f ops/node\n", st.MeanOps)
	fmt.Printf("energy:           %.3g J/node (Mica2 model)\n", st.MeanEnergyJ)
	if st.Accuracy >= 0 {
		fmt.Printf("mapping accuracy: %.1f%%\n", st.Accuracy*100)
	}
	if st.MeanHausdorff >= 0 {
		fmt.Printf("isoline Hausdorff: %.2f units (mean over levels)\n", st.MeanHausdorff)
	}
	fmt.Println()

	if estimate != nil {
		truth := field.ClassifyRaster(env.Field, env.Scenario.Levels, *res, *res)
		fmt.Println(render.SideBySide(truth, estimate, "ground truth", st.Protocol+" estimate"))
	}

	if *pgmPath != "" && m != nil {
		if err := writePGM(*pgmPath, m, env.Scenario.Levels, *res); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *pgmPath)
	}

	if *packet && *protocol == "isomap" {
		var plan *faults.Plan
		rcfg := desim.DefaultRadioConfig()
		if *loss > 0 || *crashfrac > 0 {
			kind := faults.ChannelPerfect
			switch {
			case *loss > 0 && *burst > 0:
				kind = faults.ChannelGilbertElliott
			case *loss > 0:
				kind = faults.ChannelBernoulli
			}
			plan, err = faults.New(faults.Config{
				Seed: *seed, Channel: kind, LossRate: *loss, Burstiness: *burst,
				CrashFraction: *crashfrac, CrashStart: 0.05, CrashEnd: 0.6,
				Protect: []network.NodeID{env.Tree.Root()},
			}, env.Network.Len())
			if err != nil {
				return err
			}
			// A deadline keeps frames stuck behind dead parents from
			// riding out the full backoff tail before route repair.
			rcfg.FrameDeadline = 1.5
		}
		var rec *rtrace.Recorder
		if *roundtr != "" {
			rec = rtrace.NewRecorder(traceCapacity(*nodes))
		}
		var pr *desim.RoundResult
		if *shards > 1 {
			pr, err = desim.RunFullRoundShardedTraced(env.Tree, env.Field, env.Query, fc, rcfg, plan, *shards, *workers, rec)
		} else {
			pr, err = desim.RunFullRoundFaultsTraced(env.Tree, env.Field, env.Query, fc, rcfg, plan, rec)
		}
		if err != nil {
			return err
		}
		fmt.Println("packet-level round (CSMA/CA):")
		fmt.Printf("  query flood:     reached %d nodes by t=%.3fs\n", pr.QueryReached, pr.QuerySeconds)
		fmt.Printf("  measurement:     %d isoline nodes, %d reports by t=%.3fs\n",
			pr.IsolineNodes, pr.Generated, pr.MeasureSeconds)
		fmt.Printf("  collection:      %d reports at sink by t=%.3fs\n",
			len(pr.Delivered), pr.CollectSeconds)
		fmt.Printf("  round complete:  t=%.3fs (%d collisions, %d retries, %d drops)\n",
			pr.TotalSeconds, pr.Radio.Collisions, pr.Radio.Retries, pr.Radio.Drops)
		fmt.Printf("  drops by phase:  %d probe replies, %d report batches (re-queued once)\n",
			pr.ReplyDrops, pr.ReportDrops)
		if !plan.Empty() {
			fmt.Printf("  faults:          %d channel losses, %d crashed, %d route repairs, %d severed\n",
				pr.Radio.ChannelLosses, pr.Crashed, pr.Repairs, pr.Severed)
		}
		if rec != nil {
			// Reconstruct the sink map from what the packet round actually
			// delivered, with stage tracing on, so the trace covers the
			// sink side of the round as well.
			sinkValue := env.Network.Node(env.Tree.Root()).Value
			tm := contour.Reconstruct(pr.Delivered, env.Query.Levels, field.BoundsRect(env.Field),
				sinkValue, contour.Options{Regulate: true, Trace: rec})
			tm.Raster(*res, *res)
			if err := emitRoundTrace(rec, *roundtr, rcfg.MaxRetries); err != nil {
				return err
			}
		}
	}
	if *expvarOut != "" {
		if err := writeExpvar(*expvarOut); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *expvarOut)
	}
	return nil
}

// traceCapacity sizes the event ring for one packet round: per-node event
// volume is bounded in practice by a few hundred events even under heavy
// fault injection, so 1k events/node with a generous floor keeps the ring
// from overwriting (Check refuses truncated traces).
func traceCapacity(nodes int) int {
	c := nodes * 1024
	if c < rtrace.DefaultCapacity {
		c = rtrace.DefaultCapacity
	}
	return c
}

// emitRoundTrace writes the canonical JSONL trace, runs the invariant
// checker, and publishes the per-phase summary as expvar variables.
func emitRoundTrace(rec *rtrace.Recorder, path string, maxRetries int) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("roundtrace: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteJSONL(w); err != nil {
		return fmt.Errorf("roundtrace: %w", err)
	}
	if path != "-" {
		fmt.Printf("wrote %s (%d events)\n", path, rec.Len())
	}
	violations := rec.Check(rtrace.CheckConfig{MaxRetries: maxRetries})
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "isomapsim: trace invariant violated:", v)
	}
	if len(violations) == 0 {
		fmt.Println("trace invariants:  all passed")
	}
	publishSummary(rec.Summarize())
	return nil
}

// publishSummary exposes the traced round's totals through expvar so a
// -expvar dump (or an embedding process serving /debug/vars) sees them.
func publishSummary(s rtrace.Summary) {
	m := new(expvar.Map)
	put := func(k string, v int64) { i := new(expvar.Int); i.Set(v); m.Set(k, i) }
	put("events", s.Events)
	put("sends", s.Sends)
	put("delivered", s.Delivered)
	put("acked", s.Acked)
	put("drops", s.Drops)
	put("crashes", s.Crashes)
	put("reparents", s.Reparents)
	put("sinkReports", s.SinkReports)
	rs := new(expvar.Float)
	rs.Set(s.RoundSeconds)
	m.Set("roundSeconds", rs)
	for _, pb := range s.Phases {
		txb := new(expvar.Int)
		txb.Set(pb.TxBytes)
		m.Set("txBytes_"+pb.Phase, txb)
	}
	expvar.Publish("isomap_round", m)
}

// writeExpvar dumps every published expvar variable as one JSON object.
func writeExpvar(path string) error {
	var b bytes.Buffer
	b.WriteByte('{')
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Quote(kv.Key))
		b.WriteByte(':')
		b.WriteString(kv.Value.String())
	})
	b.WriteString("}\n")
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		return fmt.Errorf("expvar: %w", err)
	}
	return nil
}

// loadTrace reads a depth-trace grid file over a side x side extent.
func loadTrace(path string, side float64) (*field.GridField, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	g, err := field.ParseGrid(f, 0, 0, side, side)
	if err != nil {
		return nil, fmt.Errorf("parse trace %s: %w", path, err)
	}
	return g, nil
}

func writePGM(path string, m *contour.Map, levels field.Levels, res int) error {
	img := render.PGM(m.Raster(res*4, res*4), levels.Count())
	if err := os.WriteFile(path, []byte(img), 0o644); err != nil {
		return fmt.Errorf("write pgm: %w", err)
	}
	return nil
}
