// Command tracegen exports a depth trace — a plain-text grid of values —
// from the synthetic seabed, in the format internal/field.ParseGrid (and
// isomapsim's -trace flag) consume. It stands in for the sonar surveys
// that produced the paper's Huanghua Harbor measurements: a trace written
// by tracegen and mapped by isomapsim is a fully trace-driven run.
//
// Usage:
//
//	tracegen [-rows 201] [-cols 201] [-seed 2] [-side 50] [-out trace.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"isomap/internal/field"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		rows = flag.Int("rows", 201, "sample rows")
		cols = flag.Int("cols", 201, "sample columns")
		seed = flag.Int64("seed", 2, "surface seed")
		side = flag.Float64("side", 50, "field side length (normalized units)")
		out  = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	cfg := field.DefaultSeabedConfig()
	scale := *side / cfg.Width
	cfg.Width, cfg.Height = *side, *side
	cfg.SigmaMin *= scale
	cfg.SigmaMax *= scale
	cfg.Seed = *seed
	surface := field.NewSeabed(cfg)

	grid, err := field.SampleField(surface, *rows, *cols)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeTrace(w, grid, *side)
}

// writeTrace emits the grid with a header comment recording the extent.
func writeTrace(w io.Writer, g *field.GridField, side float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# isomap depth trace: %dx%d samples over %gx%g units\n",
		g.Rows(), g.Cols(), side, side)
	x0, y0, x1, y1 := g.Bounds()
	for r := 0; r < g.Rows(); r++ {
		y := y0 + (y1-y0)*float64(r)/float64(g.Rows()-1)
		for c := 0; c < g.Cols(); c++ {
			x := x0 + (x1-x0)*float64(c)/float64(g.Cols()-1)
			if c > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(g.Value(x, y), 'f', 4, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
