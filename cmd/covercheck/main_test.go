package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const profileA = `mode: atomic
isomap/internal/stats/stats.go:12.34,14.2 2 5
isomap/internal/stats/stats.go:16.2,18.3 3 0
isomap/internal/trace/trace.go:10.1,12.2 4 1
`

// profileB re-covers the stats block profileA missed: merged coverage
// counts a block covered if any profile covered it.
const profileB = `mode: atomic
isomap/internal/stats/stats.go:16.2,18.3 3 7
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCoverageByPackageMergesProfiles(t *testing.T) {
	a := writeTemp(t, "a.out", profileA)
	b := writeTemp(t, "b.out", profileB)

	got, err := coverageByPackage([]string{a})
	if err != nil {
		t.Fatal(err)
	}
	stats := got["isomap/internal/stats"]
	if stats.stmts != 5 || stats.covered != 2 {
		t.Errorf("single profile: stats %d/%d covered, want 2/5", stats.covered, stats.stmts)
	}
	if tr := got["isomap/internal/trace"]; tr.stmts != 4 || tr.covered != 4 {
		t.Errorf("trace %d/%d covered, want 4/4", tr.covered, tr.stmts)
	}

	got, err = coverageByPackage([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	stats = got["isomap/internal/stats"]
	if stats.stmts != 5 || stats.covered != 5 {
		t.Errorf("merged profiles: stats %d/%d covered, want 5/5", stats.covered, stats.stmts)
	}
}

func TestCheckFailsBelowFloor(t *testing.T) {
	prof := writeTemp(t, "cov.out", profileA)
	base := writeTemp(t, "base.json", `{"floors":{"isomap/internal/stats":90,"isomap/internal/trace":50}}`)
	got, err := coverageByPackage([]string{prof})
	if err != nil {
		t.Fatal(err)
	}
	err = check(base, got)
	if err == nil {
		t.Fatal("stats at 40% passed a 90% floor")
	}
	if !strings.Contains(err.Error(), "isomap/internal/stats") {
		t.Errorf("error %q does not name the failing package", err)
	}
}

func TestCheckPassesAtFloor(t *testing.T) {
	prof := writeTemp(t, "cov.out", profileA)
	base := writeTemp(t, "base.json", `{"floors":{"isomap/internal/stats":40,"isomap/internal/trace":100}}`)
	got, err := coverageByPackage([]string{prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := check(base, got); err != nil {
		t.Fatalf("coverage at floors failed: %v", err)
	}
}

func TestCheckIgnoresUnlistedPackage(t *testing.T) {
	prof := writeTemp(t, "cov.out", profileA)
	base := writeTemp(t, "base.json", `{"floors":{"isomap/internal/stats":40}}`)
	got, err := coverageByPackage([]string{prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := check(base, got); err != nil {
		t.Fatalf("unlisted package failed the check: %v", err)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	prof := writeTemp(t, "cov.out", profileA)
	base := filepath.Join(t.TempDir(), "base.json")
	got, err := coverageByPackage([]string{prof})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBaseline(base, got, 2.0); err != nil {
		t.Fatal(err)
	}
	// Immediately re-checking against a freshly written baseline must
	// pass: floors sit margin points below the measurement.
	if err := check(base, got); err != nil {
		t.Fatalf("fresh baseline failed its own measurement: %v", err)
	}
}

func TestMalformedProfile(t *testing.T) {
	prof := writeTemp(t, "bad.out", "mode: set\nnot a coverage line\n")
	if _, err := coverageByPackage([]string{prof}); err == nil {
		t.Fatal("malformed profile parsed without error")
	}
}
