// Command covercheck enforces the repository's test-coverage floor.
//
// It parses one or more `go test -coverprofile` files, computes the
// statement coverage of every package, and compares each against the
// committed floors in COVERAGE_BASELINE.json. A package below its floor
// fails the check (non-zero exit), so coverage can only ratchet up:
// raising a floor is a deliberate edit, losing coverage is a CI failure.
//
// Usage:
//
//	covercheck [-baseline COVERAGE_BASELINE.json] [-margin 2.0] \
//	           [-write] coverage.out [more.out...]
//
// -write regenerates the baseline from the measured coverage (floors are
// set margin points below the measurement to absorb run-to-run noise in
// concurrency-dependent paths). Packages measured but absent from the
// baseline are reported but do not fail — add them with -write.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	baselinePath := "COVERAGE_BASELINE.json"
	margin := 2.0
	write := false
	var profiles []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-baseline":
			i++
			if i >= len(args) {
				return fmt.Errorf("-baseline needs a path")
			}
			baselinePath = args[i]
		case "-margin":
			i++
			if i >= len(args) {
				return fmt.Errorf("-margin needs a value")
			}
			m, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return fmt.Errorf("-margin: %w", err)
			}
			margin = m
		case "-write":
			write = true
		default:
			if strings.HasPrefix(a, "-") {
				return fmt.Errorf("unknown flag %q", a)
			}
			profiles = append(profiles, a)
		}
	}
	if len(profiles) == 0 {
		return fmt.Errorf("no coverage profiles given")
	}

	got, err := coverageByPackage(profiles)
	if err != nil {
		return err
	}
	if write {
		return writeBaseline(baselinePath, got, margin)
	}
	return check(baselinePath, got)
}

// pkgCover accumulates statement counts for one package.
type pkgCover struct {
	stmts   int64
	covered int64
}

func (p pkgCover) percent() float64 {
	if p.stmts == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.stmts)
}

// coverageByPackage parses coverprofile lines of the form
//
//	module/pkg/file.go:12.34,56.7 numStmts hitCount
//
// and folds them into per-package statement coverage. Blocks repeated
// across profiles are counted once, covered if any profile covered them.
func coverageByPackage(profiles []string) (map[string]pkgCover, error) {
	type block struct {
		stmts int64
		hit   bool
	}
	blocks := make(map[string]block) // "pkg file:range" -> state
	pkgOf := make(map[string]string)
	for _, path := range profiles {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "mode:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				f.Close()
				return nil, fmt.Errorf("%s:%d: malformed coverage line %q", path, lineNo, line)
			}
			loc := fields[0] // file.go:L.C,L.C
			colon := strings.LastIndex(loc, ":")
			if colon < 0 {
				f.Close()
				return nil, fmt.Errorf("%s:%d: malformed location %q", path, lineNo, loc)
			}
			file := loc[:colon]
			slash := strings.LastIndex(file, "/")
			if slash < 0 {
				f.Close()
				return nil, fmt.Errorf("%s:%d: location %q has no package path", path, lineNo, loc)
			}
			pkg := file[:slash]
			stmts, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s:%d: statement count: %w", path, lineNo, err)
			}
			count, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s:%d: hit count: %w", path, lineNo, err)
			}
			b := blocks[loc]
			b.stmts = stmts
			b.hit = b.hit || count > 0
			blocks[loc] = b
			pkgOf[loc] = pkg
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		f.Close()
	}
	out := make(map[string]pkgCover)
	for loc, b := range blocks {
		p := out[pkgOf[loc]]
		p.stmts += b.stmts
		if b.hit {
			p.covered += b.stmts
		}
		out[pkgOf[loc]] = p
	}
	return out, nil
}

// baseline is the COVERAGE_BASELINE.json document: per-package floors in
// percent statement coverage.
type baseline struct {
	Comment string             `json:"comment"`
	Floors  map[string]float64 `json:"floors"`
}

func writeBaseline(path string, got map[string]pkgCover, margin float64) error {
	b := baseline{
		Comment: "Per-package statement-coverage floors (percent). CI fails any package measured below its floor; regenerate with covercheck -write after deliberately raising or extending coverage.",
		Floors:  make(map[string]float64, len(got)),
	}
	for pkg, pc := range got {
		floor := pc.percent() - margin
		if floor < 0 {
			floor = 0
		}
		b.Floors[pkg] = float64(int(floor*10)) / 10 // one decimal
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("covercheck: wrote %s with %d package floors\n", path, len(b.Floors))
	return nil
}

func check(path string, got map[string]pkgCover) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w (run covercheck -write to create it)", err)
	}
	var b baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	pkgs := make([]string, 0, len(got))
	for pkg := range got {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	var failures []string
	for _, pkg := range pkgs {
		pct := got[pkg].percent()
		floor, ok := b.Floors[pkg]
		switch {
		case !ok:
			fmt.Printf("covercheck: %-40s %6.1f%% (no floor; add with -write)\n", pkg, pct)
		case pct < floor:
			fmt.Printf("covercheck: %-40s %6.1f%% BELOW floor %.1f%%\n", pkg, pct, floor)
			failures = append(failures, pkg)
		default:
			fmt.Printf("covercheck: %-40s %6.1f%% (floor %.1f%%)\n", pkg, pct, floor)
		}
	}
	for pkg := range b.Floors {
		if _, ok := got[pkg]; !ok {
			fmt.Printf("covercheck: %-40s not measured (floor %.1f%%)\n", pkg, b.Floors[pkg])
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d package(s) below their coverage floor: %s",
			len(failures), strings.Join(failures, ", "))
	}
	fmt.Printf("covercheck: %d packages at or above their floors\n", len(pkgs))
	return nil
}
