// Command benchreport writes machine-readable benchmark JSON files that
// track the repository's quantitative trajectory across PRs.
//
// -kind recon (the default, emitting BENCH_RECON.json) measures the
// sink-side reconstruction hot paths — Voronoi construction, full
// Reconstruct, and Map.Raster — at several report counts k, against the
// retained naive reference implementations (geom.VoronoiNaive,
// Map.RasterNaive).
//
// -kind faults (emitting BENCH_FAULTS.json) runs the fault-injection
// sweep (sim.ExtFaultSweepResults): Iso-Map's packet-level round under
// lossy/bursty channels and mid-round node crashes, reporting delivery
// ratio, retry/energy overhead and map fidelity against the fault-free
// round. -smoke shrinks the sweep to a single cell and one seed for CI.
//
// -kind desim (emitting BENCH_DESIM.json) measures the discrete-event
// core: full packet-level rounds at n = 1k/4k/16k on the production
// typed-event Engine vs the EngineNaive closure-per-event reference
// (throughput, events/sec, ns/event, allocs/op, peak queue depth), plus
// the isolated scheduler push/pop microbenchmark. -smoke shrinks it to
// the 1k cell for CI.
//
// Usage:
//
//	benchreport [-kind recon|faults|desim] [-out FILE] [-maxk 2048]
//	            [-runs 3] [-smoke] [-parallel N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/routing"
	"isomap/internal/sim"
)

// entry is one (benchmark, k) measurement. NaiveNs is present only where a
// reference implementation exists; Speedup is naive/indexed.
type entry struct {
	Benchmark string  `json:"benchmark"`
	K         int     `json:"k"`
	IndexedNs float64 `json:"indexed_ns_per_op"`
	NaiveNs   float64 `json:"naive_ns_per_op,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

type report struct {
	Generator  string  `json:"generator"`
	Unit       string  `json:"unit"`
	GoMaxProcs int     `json:"gomaxprocs"`
	RasterRes  int     `json:"raster_res"`
	Results    []entry `json:"results"`
}

// rasterRes matches sim.RasterRes, the resolution of the accuracy metric.
const rasterRes = 100

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "", "output JSON path (- for stdout; default BENCH_RECON.json or BENCH_FAULTS.json by kind)")
		maxK     = flag.Int("maxk", 2048, "largest report count to measure (recon)")
		kind     = flag.String("kind", "recon", "report kind: recon or faults")
		runs     = flag.Int("runs", 3, "random-seed repetitions per sweep point (faults)")
		smoke    = flag.Bool("smoke", false, "single-cell, single-seed fault sweep for CI (faults)")
		parallel = flag.Int("parallel", 0, "sweep worker-pool width, 0 = GOMAXPROCS (faults); output is identical at any width")
	)
	flag.Parse()

	switch *kind {
	case "recon":
		return runRecon(*out, *maxK)
	case "faults":
		return runFaults(*out, *runs, *smoke, *parallel)
	case "desim":
		return runDesim(*out, *smoke)
	default:
		return fmt.Errorf("unknown -kind %q (want recon, faults or desim)", *kind)
	}
}

// faultsReport is the BENCH_FAULTS.json document.
type faultsReport struct {
	Generator string                 `json:"generator"`
	Nodes     int                    `json:"nodes"`
	FieldSide float64                `json:"fieldSide"`
	Runs      int                    `json:"runs"`
	Results   []sim.FaultPointResult `json:"results"`
}

func runFaults(out string, runs int, smoke bool, parallel int) error {
	points := sim.DefaultFaultPoints()
	if smoke {
		points = sim.SmokeFaultPoints()
		runs = 1
	}
	results, err := sim.NewRunner(parallel).ExtFaultSweepResults(runs, points)
	if err != nil {
		return err
	}
	rep := faultsReport{
		Generator: "cmd/benchreport -kind faults",
		Nodes:     400,
		FieldSide: 20,
		Runs:      runs,
		Results:   results,
	}
	if out == "" {
		out = "BENCH_FAULTS.json"
	}
	return writeJSON(out, rep)
}

// desimEntry is one measurement of the discrete-event core. Naive fields
// are present only where the EngineNaive reference was run on the same
// workload; Speedup is naive/engine ns, AllocRatio naive/engine allocs.
type desimEntry struct {
	Benchmark      string  `json:"benchmark"`
	N              int     `json:"n,omitempty"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	Events         int64   `json:"events,omitempty"`
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`
	NsPerEvent     float64 `json:"ns_per_event,omitempty"`
	PeakQueueDepth int     `json:"peak_queue_depth,omitempty"`
	NaiveNs        float64 `json:"naive_ns_per_op,omitempty"`
	NaiveAllocs    int64   `json:"naive_allocs_per_op,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	AllocRatio     float64 `json:"alloc_ratio,omitempty"`
}

// desimReport is the BENCH_DESIM.json document.
type desimReport struct {
	Generator  string       `json:"generator"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []desimEntry `json:"results"`
}

func runDesim(out string, smoke bool) error {
	if out == "" {
		out = "BENCH_DESIM.json"
	}
	sizes := []int{1000, 4000, 16000}
	naiveSizes := map[int]bool{1000: true, 4000: true}
	if smoke {
		sizes = []int{1000}
	}
	rep := desimReport{
		Generator:  "cmd/benchreport -kind desim",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	f := field.NewSeabed(field.DefaultSeabedConfig())
	fc := core.DefaultFilterConfig()
	cfg := desim.DefaultRadioConfig()
	for _, n := range sizes {
		// Same deployment as BenchmarkFullRound: radio range scaled to keep
		// the graph connected at any density, sink at the centroid.
		nw, err := network.DeployUniform(n, f, 1.5*50/math.Sqrt(float64(n)), 4)
		if err != nil {
			return err
		}
		sink, err := nw.NearestNode(nw.Bounds().Centroid())
		if err != nil {
			return err
		}
		tree, err := routing.NewTree(nw, sink)
		if err != nil {
			return err
		}
		q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
		if err != nil {
			return err
		}

		// One instrumented round for the event count and peak queue depth.
		eng := desim.NewEngine()
		probe, err := desim.RunFullRoundEngine(eng, tree, f, q, fc, cfg)
		if err != nil {
			return err
		}
		if len(probe.Delivered) == 0 {
			return fmt.Errorf("desim bench: n=%d round delivered nothing", n)
		}

		e := desimEntry{
			Benchmark:      "FullRound",
			N:              n,
			Events:         probe.Events,
			PeakQueueDepth: eng.MaxQueueDepth(),
		}
		e.NsPerOp, e.AllocsPerOp = measureAllocs(func() {
			if _, err := desim.RunFullRound(tree, f, q, fc, cfg); err != nil {
				panic(err)
			}
		})
		e.NsPerEvent = e.NsPerOp / float64(probe.Events)
		e.EventsPerSec = float64(probe.Events) / (e.NsPerOp / 1e9)
		if naiveSizes[n] {
			e.NaiveNs, e.NaiveAllocs = measureAllocs(func() {
				if _, err := desim.RunFullRoundEngine(desim.NewEngineNaive(), tree, f, q, fc, cfg); err != nil {
					panic(err)
				}
			})
			e.Speedup = math.Round(e.NaiveNs/e.NsPerOp*100) / 100
			e.AllocRatio = math.Round(float64(e.NaiveAllocs)/float64(e.AllocsPerOp)*100) / 100
		}
		rep.Results = append(rep.Results, e)
		fmt.Fprintf(os.Stderr, "benchreport: desim n=%d done\n", n)
	}

	// Isolated scheduler: bursts of 1024 typed events pushed with scattered
	// timestamps and drained (the BenchmarkEngineSchedule workload).
	sched := desimEntry{Benchmark: "EngineSchedule"}
	{
		eng := desim.NewEngine()
		eng.SetHandler(func(desim.Event) {})
		const burst = 1024
		i := 0
		sched.NsPerOp, sched.AllocsPerOp = measureAllocs(func() {
			for j := 0; j < burst; j++ {
				eng.ScheduleEvent(float64(i*509%burst)*1e-4, desim.Event{Seq: int64(i)})
				i++
			}
			eng.Run()
		})
		sched.NsPerOp /= burst // per event, not per burst
		sched.NsPerEvent = sched.NsPerOp
		sched.EventsPerSec = 1e9 / sched.NsPerEvent
	}
	rep.Results = append(rep.Results, sched)

	return writeJSON(out, rep)
}

func runRecon(out string, maxK int) error {
	if out == "" {
		out = "BENCH_RECON.json"
	}
	bounds := geom.Rect(0, 0, 50, 50)
	rep := report{
		Generator:  "cmd/benchreport",
		Unit:       "ns/op",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		RasterRes:  rasterRes,
	}
	for _, k := range []int{32, 128, 512, 2048} {
		if k > maxK {
			break
		}
		sites := benchSites(k)
		reports, levels := benchReports(k)
		m := contour.Reconstruct(reports, levels, bounds, 9, contour.DefaultOptions())

		voro := measure(func() { geom.Voronoi(sites, bounds) })
		voroNaive := measure(func() { geom.VoronoiNaive(sites, bounds) })
		rep.Results = append(rep.Results, withSpeedup(entry{
			Benchmark: "Voronoi", K: k, IndexedNs: voro, NaiveNs: voroNaive,
		}))

		rep.Results = append(rep.Results, entry{
			Benchmark: "Reconstruct", K: k,
			IndexedNs: measure(func() {
				contour.Reconstruct(reports, levels, bounds, 9, contour.DefaultOptions())
			}),
		})

		raster := measure(func() { m.Raster(rasterRes, rasterRes) })
		rasterNaive := measure(func() { m.RasterNaive(rasterRes, rasterRes) })
		rep.Results = append(rep.Results, withSpeedup(entry{
			Benchmark: "MapRaster", K: k, IndexedNs: raster, NaiveNs: rasterNaive,
		}))
		fmt.Fprintf(os.Stderr, "benchreport: k=%d done\n", k)
	}

	return writeJSON(out, rep)
}

// writeJSON marshals doc with indentation to path, or stdout for "-".
func writeJSON(path string, doc any) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// measure times fn with the testing benchmark harness.
func measure(fn func()) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return float64(r.NsPerOp())
}

// measureAllocs times fn and reports its heap allocations per op.
func measureAllocs(fn func()) (nsPerOp float64, allocsPerOp int64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

func withSpeedup(e entry) entry {
	if e.IndexedNs > 0 {
		e.Speedup = math.Round(e.NaiveNs/e.IndexedNs*100) / 100
	}
	return e
}

// benchSites mirrors the geom benchmark input: k sites uniform over the
// 50x50 field, seeded by k.
func benchSites(k int) []geom.Point {
	rng := rand.New(rand.NewSource(int64(k)))
	sites := make([]geom.Point, k)
	for i := range sites {
		sites[i] = geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	return sites
}

// benchReports mirrors the contour benchmark input: k reports on the
// lowest isolevel plus k/4 on the next.
func benchReports(k int) ([]core.Report, field.Levels) {
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	rng := rand.New(rand.NewSource(int64(k) * 7))
	var reports []core.Report
	for i := 0; i < k; i++ {
		theta := rng.Float64() * 2 * math.Pi
		reports = append(reports, core.Report{
			Level:      6,
			LevelIndex: 0,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	for i := 0; i < k/4; i++ {
		theta := rng.Float64() * 2 * math.Pi
		reports = append(reports, core.Report{
			Level:      8,
			LevelIndex: 1,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	return reports, levels
}
