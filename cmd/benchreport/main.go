// Command benchreport writes machine-readable benchmark JSON files that
// track the repository's quantitative trajectory across PRs.
//
// -kind recon (the default, emitting BENCH_RECON.json) measures the
// sink-side reconstruction hot paths — Voronoi construction, full
// Reconstruct, and Map.Raster — at several report counts k, against the
// retained naive reference implementations (geom.VoronoiNaive,
// Map.RasterNaive).
//
// -kind faults (emitting BENCH_FAULTS.json) runs the fault-injection
// sweep (sim.ExtFaultSweepResults): Iso-Map's packet-level round under
// lossy/bursty channels and mid-round node crashes, reporting delivery
// ratio, retry/energy overhead and map fidelity against the fault-free
// round. -smoke shrinks the sweep to a single cell and one seed for CI.
//
// -kind desim (emitting BENCH_DESIM.json) measures the discrete-event
// core: full packet-level rounds at n = 1k..256k on the production
// typed-event Engine vs the EngineNaive closure-per-event reference
// (throughput, events/sec, ns/event, allocs/op, peak queue depth), the
// isolated scheduler push/pop microbenchmark, and the sharded engine's
// strong-scaling table over a GOMAXPROCS x shards grid at n = 256k.
// -smoke shrinks it to the 1k cell plus a small scaling grid at 16k for
// CI.
//
// -kind trace (emitting BENCH_TRACE.json) runs fully traced packet-level
// rounds — fault-free and under fault injection — and aggregates the
// event stream into per-phase breakdowns (tx/rx counts and bytes, drops
// by cause, phase energy through the Mica2 model) plus sink-side
// reconstruction stage timings. The trace invariant checker runs on
// every recorded round; a violation fails the report. -smoke shrinks it
// to a single small fault-free round for CI.
//
// -kind temporal (emitting BENCH_TEMPORAL.json) runs the temporal
// monitoring sweep (sim.ExtTemporalSweepResults): seeded time-evolving
// fields tracked over multi-round packet-level monitoring, full-report
// rounds against the delta-report protocol, reporting per-round traffic,
// tracking error against the moving ground truth, and sink-side belief
// staleness across field speeds. The report fails if the slow-drift
// delta cell does not beat its full-report pair on traffic at
// comparable tracking error. -smoke shrinks it to one delta cell for
// CI.
//
// Unknown -kind values exit non-zero listing the valid kinds.
//
// Usage:
//
//	benchreport [-kind recon|faults|desim|trace|serve|temporal] [-out FILE] [-maxk 2048]
//	            [-runs 3] [-smoke] [-parallel N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/desim"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/routing"
	"isomap/internal/sim"
	"isomap/internal/trace"
)

// entry is one (benchmark, k) measurement. NaiveNs is present only where a
// reference implementation exists; Speedup is naive/indexed.
type entry struct {
	Benchmark string  `json:"benchmark"`
	K         int     `json:"k"`
	IndexedNs float64 `json:"indexed_ns_per_op"`
	NaiveNs   float64 `json:"naive_ns_per_op,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

type report struct {
	Generator  string  `json:"generator"`
	Unit       string  `json:"unit"`
	GoMaxProcs int     `json:"gomaxprocs"`
	RasterRes  int     `json:"raster_res"`
	Results    []entry `json:"results"`
}

// rasterRes matches sim.RasterRes, the resolution of the accuracy metric.
const rasterRes = 100

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// options carries the parsed flag values into a kind runner.
type options struct {
	out      string
	maxK     int
	runs     int
	smoke    bool
	parallel int
}

// kindSpec registers one report kind. The registry is the single source
// of truth: dispatch, the usage string and the unknown-kind error all
// derive from it.
type kindSpec struct {
	name string
	doc  string
	run  func(o options) error
}

var kinds = []kindSpec{
	{"recon", "sink-side reconstruction hot paths vs naive references (BENCH_RECON.json)",
		func(o options) error { return runRecon(o.out, o.maxK) }},
	{"faults", "fault-injection sweep: delivery, overhead, map fidelity (BENCH_FAULTS.json)",
		func(o options) error { return runFaults(o.out, o.runs, o.smoke, o.parallel) }},
	{"desim", "discrete-event core throughput vs EngineNaive (BENCH_DESIM.json)",
		func(o options) error { return runDesim(o.out, o.smoke) }},
	{"trace", "traced packet rounds: per-phase breakdowns, stage timings (BENCH_TRACE.json)",
		func(o options) error { return runTrace(o.out, o.smoke) }},
	{"serve", "contour server under churn: incremental vs full rebuild, sustained query latency (BENCH_SERVE.json)",
		func(o options) error { return runServe(o.out, o.smoke) }},
	{"temporal", "evolving-field monitoring: full-report vs delta traffic, tracking error, staleness (BENCH_TEMPORAL.json)",
		func(o options) error { return runTemporal(o.out, o.runs, o.smoke, o.parallel) }},
}

// kindNames returns the registered kind names in registration order.
func kindNames() []string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.name
	}
	return names
}

// dispatch resolves and runs one report kind; unknown names produce a
// non-nil error listing every valid kind.
func dispatch(kind string, o options) error {
	for _, k := range kinds {
		if k.name == kind {
			return k.run(o)
		}
	}
	return fmt.Errorf("unknown -kind %q (valid kinds: %s)", kind, strings.Join(kindNames(), ", "))
}

func run() error {
	var (
		out      = flag.String("out", "", "output JSON path (- for stdout; default BENCH_<KIND>.json)")
		maxK     = flag.Int("maxk", 2048, "largest report count to measure (recon)")
		kind     = flag.String("kind", "recon", "report kind: "+strings.Join(kindNames(), ", "))
		runs     = flag.Int("runs", 3, "random-seed repetitions per sweep point (faults)")
		smoke    = flag.Bool("smoke", false, "shrunken run for CI (faults, desim, trace)")
		parallel = flag.Int("parallel", 0, "sweep worker-pool width, 0 = GOMAXPROCS (faults); output is identical at any width")
	)
	flag.Parse()
	return dispatch(*kind, options{out: *out, maxK: *maxK, runs: *runs, smoke: *smoke, parallel: *parallel})
}

// faultsReport is the BENCH_FAULTS.json document.
type faultsReport struct {
	Generator string                 `json:"generator"`
	Nodes     int                    `json:"nodes"`
	FieldSide float64                `json:"fieldSide"`
	Runs      int                    `json:"runs"`
	Results   []sim.FaultPointResult `json:"results"`
}

func runFaults(out string, runs int, smoke bool, parallel int) error {
	points := sim.DefaultFaultPoints()
	if smoke {
		points = sim.SmokeFaultPoints()
		runs = 1
	}
	results, err := sim.NewRunner(parallel).ExtFaultSweepResults(runs, points)
	if err != nil {
		return err
	}
	rep := faultsReport{
		Generator: "cmd/benchreport -kind faults",
		Nodes:     400,
		FieldSide: 20,
		Runs:      runs,
		Results:   results,
	}
	if out == "" {
		out = "BENCH_FAULTS.json"
	}
	return writeJSON(out, rep)
}

// desimEntry is one measurement of the discrete-event core. Every field
// appears in every row: a null marks a measurement the row deliberately
// skips (the EngineNaive reference above its size cutoff, the deployment
// size on the scheduler microbenchmark), never an accident of encoding.
// Speedup is naive/engine ns, AllocRatio naive/engine allocs.
type desimEntry struct {
	Benchmark      string   `json:"benchmark"`
	N              *int     `json:"n"`
	NsPerOp        float64  `json:"ns_per_op"`
	AllocsPerOp    int64    `json:"allocs_per_op"`
	Events         *int64   `json:"events"`
	EventsPerSec   *float64 `json:"events_per_sec"`
	NsPerEvent     *float64 `json:"ns_per_event"`
	PeakQueueDepth *int     `json:"peak_queue_depth"`
	NaiveNs        *float64 `json:"naive_ns_per_op"`
	NaiveAllocs    *int64   `json:"naive_allocs_per_op"`
	Speedup        *float64 `json:"speedup"`
	AllocRatio     *float64 `json:"alloc_ratio"`
}

// scalingEntry is one cell of the sharded strong-scaling table: a full
// round at n nodes on shards grid cells with GOMAXPROCS=procs. The
// (1, 1) cell runs the sequential Engine and anchors Speedup.
type scalingEntry struct {
	N          int     `json:"n"`
	Shards     int     `json:"shards"`
	Procs      int     `json:"gomaxprocs"`
	MsPerRound float64 `json:"ms_per_round"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

// desimReport is the BENCH_DESIM.json document. See EXPERIMENTS.md for
// the field-by-field schema.
type desimReport struct {
	Generator    string         `json:"generator"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	Cores        int            `json:"cores"`
	HardwareNote string         `json:"hardware_note"`
	Results      []desimEntry   `json:"results"`
	Scaling      []scalingEntry `json:"scaling"`
}

func iptr(v int) *int          { return &v }
func i64ptr(v int64) *int64    { return &v }
func fptr(v float64) *float64  { return &v }
func round2(v float64) float64 { return math.Round(v*100) / 100 }

// desimDeploy builds the benchmark deployment used by every desim cell:
// radio range scaled to keep the graph connected at any density, sink at
// the centroid (the BenchmarkFullRound layout).
func desimDeploy(n int, f field.Field) (*routing.Tree, core.Query, error) {
	nw, err := network.DeployUniform(n, f, 1.5*50/math.Sqrt(float64(n)), 4)
	if err != nil {
		return nil, core.Query{}, err
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		return nil, core.Query{}, err
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		return nil, core.Query{}, err
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		return nil, core.Query{}, err
	}
	return tree, q, nil
}

func runDesim(out string, smoke bool) error {
	if out == "" {
		out = "BENCH_DESIM.json"
	}
	sizes := []int{1000, 4000, 16000, 64000, 256000}
	naiveSizes := map[int]bool{1000: true, 4000: true}
	if smoke {
		sizes = []int{1000}
	}
	rep := desimReport{
		Generator:  "cmd/benchreport -kind desim",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Cores:      runtime.NumCPU(),
	}
	if rep.Cores < 8 {
		rep.HardwareNote = fmt.Sprintf("measured on %d core(s): GOMAXPROCS above the core count timeslices instead of parallelizing, so the scaling table bounds overhead rather than demonstrating speedup", rep.Cores)
	}
	f := field.NewSeabed(field.DefaultSeabedConfig())
	fc := core.DefaultFilterConfig()
	cfg := desim.DefaultRadioConfig()
	for _, n := range sizes {
		tree, q, err := desimDeploy(n, f)
		if err != nil {
			return err
		}

		// One instrumented round for the event count and peak queue depth.
		eng := desim.NewEngine()
		probe, err := desim.RunFullRoundEngine(eng, tree, f, q, fc, cfg)
		if err != nil {
			return err
		}
		if len(probe.Delivered) == 0 {
			return fmt.Errorf("desim bench: n=%d round delivered nothing", n)
		}

		e := desimEntry{
			Benchmark:      "FullRound",
			N:              iptr(n),
			Events:         i64ptr(probe.Events),
			PeakQueueDepth: iptr(eng.MaxQueueDepth()),
		}
		e.NsPerOp, e.AllocsPerOp = measureAllocs(func() {
			if _, err := desim.RunFullRound(tree, f, q, fc, cfg); err != nil {
				panic(err)
			}
		})
		e.NsPerEvent = fptr(e.NsPerOp / float64(probe.Events))
		e.EventsPerSec = fptr(float64(probe.Events) / (e.NsPerOp / 1e9))
		if naiveSizes[n] {
			naiveNs, naiveAllocs := measureAllocs(func() {
				if _, err := desim.RunFullRoundEngine(desim.NewEngineNaive(), tree, f, q, fc, cfg); err != nil {
					panic(err)
				}
			})
			e.NaiveNs = fptr(naiveNs)
			e.NaiveAllocs = i64ptr(naiveAllocs)
			e.Speedup = fptr(round2(naiveNs / e.NsPerOp))
			e.AllocRatio = fptr(round2(float64(naiveAllocs) / float64(e.AllocsPerOp)))
		}
		rep.Results = append(rep.Results, e)
		fmt.Fprintf(os.Stderr, "benchreport: desim n=%d done\n", n)
	}

	// Isolated scheduler: bursts of 1024 typed events pushed with scattered
	// timestamps and drained (the BenchmarkEngineSchedule workload), on
	// both engines so every column is populated.
	const burst = 1024
	schedWorkload := func(eng desim.EngineAPI) (nsPerEvent float64, allocs int64) {
		eng.SetHandler(func(desim.Event) {})
		i := 0
		ns, allocs := measureAllocs(func() {
			for j := 0; j < burst; j++ {
				eng.ScheduleEvent(float64(i*509%burst)*1e-4, desim.Event{Seq: int64(i)})
				i++
			}
			eng.Run()
		})
		return ns / burst, allocs
	}
	sched := desimEntry{Benchmark: "EngineSchedule", Events: i64ptr(burst)}
	{
		eng := desim.NewEngine()
		sched.NsPerOp, sched.AllocsPerOp = schedWorkload(eng)
		sched.PeakQueueDepth = iptr(eng.MaxQueueDepth())
		sched.NsPerEvent = fptr(sched.NsPerOp)
		sched.EventsPerSec = fptr(1e9 / sched.NsPerOp)
		naiveNs, naiveAllocs := schedWorkload(desim.NewEngineNaive())
		sched.NaiveNs = fptr(naiveNs)
		sched.NaiveAllocs = i64ptr(naiveAllocs)
		sched.Speedup = fptr(round2(naiveNs / sched.NsPerOp))
		if sched.AllocsPerOp > 0 {
			sched.AllocRatio = fptr(round2(float64(naiveAllocs) / float64(sched.AllocsPerOp)))
		}
	}
	rep.Results = append(rep.Results, sched)

	// Strong scaling: the full round on the sharded engine over a
	// GOMAXPROCS x shards grid. Every cell is byte-identical output-wise
	// (the equivalence tests pin that); only wall time varies.
	scalingSizes := []int{256000}
	shardCounts := []int{1, 4, 16, 64}
	procCounts := []int{1, 2, 4, 8}
	if smoke {
		scalingSizes = []int{16000}
		shardCounts = []int{1, 4}
		procCounts = []int{1, 2}
	}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, n := range scalingSizes {
		tree, q, err := desimDeploy(n, f)
		if err != nil {
			return err
		}
		baseline := 0.0
		for _, shards := range shardCounts {
			part := network.NewGridPartition(tree.Network(), shards)
			for _, procs := range procCounts {
				runtime.GOMAXPROCS(procs)
				best := math.Inf(1)
				for attempt := 0; attempt < 2; attempt++ {
					var eng desim.EngineAPI = desim.NewEngine()
					if shards > 1 || procs > 1 {
						eng = desim.NewShardedEngine(part, procs)
					}
					start := time.Now()
					if _, err := desim.RunFullRoundEngine(eng, tree, f, q, fc, cfg); err != nil {
						return err
					}
					if s := time.Since(start).Seconds(); s < best {
						best = s
					}
				}
				if shards == 1 && procs == 1 {
					baseline = best
				}
				rep.Scaling = append(rep.Scaling, scalingEntry{
					N: n, Shards: shards, Procs: procs,
					MsPerRound: round2(best * 1000),
					Speedup:    round2(baseline / best),
				})
				fmt.Fprintf(os.Stderr, "benchreport: desim scaling n=%d shards=%d procs=%d: %.0f ms\n",
					n, shards, procs, best*1000)
			}
		}
	}
	runtime.GOMAXPROCS(prevProcs)

	return writeJSON(out, rep)
}

// traceEntry is one traced round: its aggregated per-phase breakdown
// plus the headline round stats for quick diffing across PRs.
type traceEntry struct {
	Scenario     string        `json:"scenario"`
	Nodes        int           `json:"nodes"`
	LossRate     float64       `json:"lossRate,omitempty"`
	CrashFrac    float64       `json:"crashFraction,omitempty"`
	SinkReports  int           `json:"sinkReports"`
	RoundSeconds float64       `json:"roundSeconds"`
	Summary      trace.Summary `json:"summary"`
}

// traceReport is the BENCH_TRACE.json document.
type traceReport struct {
	Generator  string       `json:"generator"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []traceEntry `json:"results"`
}

// traceScenario is one (n, faults) cell of the trace report.
type traceScenario struct {
	name      string
	nodes     int
	lossRate  float64
	crashFrac float64
}

func runTrace(out string, smoke bool) error {
	if out == "" {
		out = "BENCH_TRACE.json"
	}
	scenarios := []traceScenario{
		{name: "fault-free", nodes: 1000},
		{name: "faulted", nodes: 1000, lossRate: 0.05, crashFrac: 0.02},
	}
	if smoke {
		scenarios = []traceScenario{{name: "fault-free", nodes: 400}}
	}
	rep := traceReport{
		Generator:  "cmd/benchreport -kind trace",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, sc := range scenarios {
		e, err := runTraceScenario(sc)
		if err != nil {
			return fmt.Errorf("trace scenario %s: %w", sc.name, err)
		}
		rep.Results = append(rep.Results, e)
		fmt.Fprintf(os.Stderr, "benchreport: trace %s (n=%d) done\n", sc.name, sc.nodes)
	}
	return writeJSON(out, rep)
}

// runTraceScenario executes one fully traced packet round — network and
// sink reconstruction — verifies every trace invariant, and aggregates.
func runTraceScenario(sc traceScenario) (traceEntry, error) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	fc := core.DefaultFilterConfig()
	cfg := desim.DefaultRadioConfig()
	nw, err := network.DeployUniform(sc.nodes, f, 1.5*50/math.Sqrt(float64(sc.nodes)), 4)
	if err != nil {
		return traceEntry{}, err
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		return traceEntry{}, err
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		return traceEntry{}, err
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		return traceEntry{}, err
	}
	var plan *faults.Plan
	if sc.lossRate > 0 || sc.crashFrac > 0 {
		plan, err = faults.New(faults.Config{
			Seed: 1, Channel: faults.ChannelBernoulli, LossRate: sc.lossRate,
			CrashFraction: sc.crashFrac, CrashStart: 0.05, CrashEnd: 0.6,
			Protect: []network.NodeID{tree.Root()},
		}, nw.Len())
		if err != nil {
			return traceEntry{}, err
		}
		cfg.FrameDeadline = 1.5
	}
	rec := trace.NewRecorder(sc.nodes * 1024)
	pr, err := desim.RunFullRoundFaultsTraced(tree, f, q, fc, cfg, plan, rec)
	if err != nil {
		return traceEntry{}, err
	}
	// Trace the sink side too: reconstruct and raster what was delivered.
	m := contour.Reconstruct(pr.Delivered, q.Levels, field.BoundsRect(f),
		nw.Node(sink).Value, contour.Options{Regulate: true, Trace: rec})
	m.Raster(rasterRes, rasterRes)

	if v := rec.Check(trace.CheckConfig{MaxRetries: cfg.MaxRetries}); len(v) > 0 {
		return traceEntry{}, fmt.Errorf("trace invariants violated: %v (+%d more)", v[0], len(v)-1)
	}
	if v := trace.CheckCounters(rec.Events(), nw.Len(),
		func(n int32) int64 { return pr.Counters.TxBytes(network.NodeID(n)) },
		func(n int32) int64 { return pr.Counters.RxBytes(network.NodeID(n)) }); len(v) > 0 {
		return traceEntry{}, fmt.Errorf("trace/counters mismatch: %v (+%d more)", v[0], len(v)-1)
	}
	s := rec.Summarize()
	return traceEntry{
		Scenario:     sc.name,
		Nodes:        sc.nodes,
		LossRate:     sc.lossRate,
		CrashFrac:    sc.crashFrac,
		SinkReports:  len(pr.Delivered),
		RoundSeconds: pr.TotalSeconds,
		Summary:      s,
	}, nil
}

func runRecon(out string, maxK int) error {
	if out == "" {
		out = "BENCH_RECON.json"
	}
	bounds := geom.Rect(0, 0, 50, 50)
	rep := report{
		Generator:  "cmd/benchreport",
		Unit:       "ns/op",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		RasterRes:  rasterRes,
	}
	for _, k := range []int{32, 128, 512, 2048} {
		if k > maxK {
			break
		}
		sites := benchSites(k)
		reports, levels := benchReports(k)
		m := contour.Reconstruct(reports, levels, bounds, 9, contour.DefaultOptions())

		voro := measure(func() { geom.Voronoi(sites, bounds) })
		voroNaive := measure(func() { geom.VoronoiNaive(sites, bounds) })
		rep.Results = append(rep.Results, withSpeedup(entry{
			Benchmark: "Voronoi", K: k, IndexedNs: voro, NaiveNs: voroNaive,
		}))

		rep.Results = append(rep.Results, entry{
			Benchmark: "Reconstruct", K: k,
			IndexedNs: measure(func() {
				contour.Reconstruct(reports, levels, bounds, 9, contour.DefaultOptions())
			}),
		})

		raster := measure(func() { m.Raster(rasterRes, rasterRes) })
		rasterNaive := measure(func() { m.RasterNaive(rasterRes, rasterRes) })
		rep.Results = append(rep.Results, withSpeedup(entry{
			Benchmark: "MapRaster", K: k, IndexedNs: raster, NaiveNs: rasterNaive,
		}))
		fmt.Fprintf(os.Stderr, "benchreport: k=%d done\n", k)
	}

	return writeJSON(out, rep)
}

// writeJSON marshals doc with indentation to path, or stdout for "-".
func writeJSON(path string, doc any) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// measure times fn with the testing benchmark harness.
func measure(fn func()) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return float64(r.NsPerOp())
}

// measureAllocs times fn and reports its heap allocations per op.
func measureAllocs(fn func()) (nsPerOp float64, allocsPerOp int64) {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return float64(r.NsPerOp()), r.AllocsPerOp()
}

func withSpeedup(e entry) entry {
	if e.IndexedNs > 0 {
		e.Speedup = math.Round(e.NaiveNs/e.IndexedNs*100) / 100
	}
	return e
}

// benchSites mirrors the geom benchmark input: k sites uniform over the
// 50x50 field, seeded by k.
func benchSites(k int) []geom.Point {
	rng := rand.New(rand.NewSource(int64(k)))
	sites := make([]geom.Point, k)
	for i := range sites {
		sites[i] = geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	return sites
}

// benchReports mirrors the contour benchmark input: k reports on the
// lowest isolevel plus k/4 on the next.
func benchReports(k int) ([]core.Report, field.Levels) {
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	rng := rand.New(rand.NewSource(int64(k) * 7))
	var reports []core.Report
	for i := 0; i < k; i++ {
		theta := rng.Float64() * 2 * math.Pi
		reports = append(reports, core.Report{
			Level:      6,
			LevelIndex: 0,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	for i := 0; i < k/4; i++ {
		theta := rng.Float64() * 2 * math.Pi
		reports = append(reports, core.Report{
			Level:      8,
			LevelIndex: 1,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	return reports, levels
}
