package main

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestDispatchUnknownKindLists(t *testing.T) {
	err := dispatch("bogus", options{})
	if err == nil {
		t.Fatal("dispatch(bogus) = nil error, want unknown-kind error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error %q does not name the offending kind", msg)
	}
	for _, name := range kindNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid kind %q", msg, name)
		}
	}
}

func TestKindRegistryComplete(t *testing.T) {
	want := []string{"recon", "faults", "desim", "trace", "serve", "temporal"}
	got := kindNames()
	if len(got) != len(want) {
		t.Fatalf("kindNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kind %d = %q, want %q", i, got[i], want[i])
		}
	}
	for _, k := range kinds {
		if k.run == nil {
			t.Errorf("kind %q has no runner", k.name)
		}
		if k.doc == "" {
			t.Errorf("kind %q has no doc line", k.name)
		}
	}
}

func TestTraceScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced round")
	}
	e, err := runTraceScenario(traceScenario{name: "fault-free", nodes: 400})
	if err != nil {
		t.Fatal(err)
	}
	if e.SinkReports == 0 {
		t.Error("traced round delivered no reports to the sink")
	}
	if e.Summary.Events == 0 || e.Summary.DroppedEvents != 0 {
		t.Errorf("summary events=%d dropped=%d, want >0 and 0", e.Summary.Events, e.Summary.DroppedEvents)
	}
	if len(e.Summary.SinkStages) == 0 {
		t.Error("no sink reconstruction stage timings recorded")
	}
}

func TestServeEngineMeasurement(t *testing.T) {
	e, err := measureServeEngine(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.K != 64 || e.Rounds != 3 {
		t.Fatalf("entry shape: %+v", e)
	}
	if e.IncrementalNs <= 0 || e.FullNs <= 0 || e.Speedup <= 0 {
		t.Fatalf("degenerate timings: %+v", e)
	}
	if e.CellsReusedPct <= 0 {
		t.Errorf("3%% churn reused no cells: %+v", e)
	}
}

func TestServeLoadMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live HTTP server")
	}
	l, err := measureServeLoad(1, 250*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if l.Requests == 0 || l.QueriesPerSec <= 0 {
		t.Fatalf("no load measured: %+v", l)
	}
	if l.P99Micros < l.P50Micros {
		t.Fatalf("p99 %v < p50 %v", l.P99Micros, l.P50Micros)
	}
}

// TestServeCacheMeasurement: the fast-lane phase measures a real cold and
// warm pass, every cold request is a counted miss, every warm one a hit,
// and nothing coalesces under a single sequential client.
func TestServeCacheMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live HTTP server")
	}
	const repeats = 2
	c, err := measureServeCache(true, repeats)
	if err != nil {
		t.Fatal(err)
	}
	if c.DistinctPaths == 0 || c.ColdQueriesPerSec <= 0 || c.WarmQueriesPerSec <= 0 {
		t.Fatalf("degenerate cache measurement: %+v", c)
	}
	if c.CacheMisses != int64(c.DistinctPaths) {
		t.Fatalf("misses %d, want one per distinct path (%d)", c.CacheMisses, c.DistinctPaths)
	}
	if c.CacheHits != int64(c.DistinctPaths*repeats) {
		t.Fatalf("hits %d, want %d", c.CacheHits, c.DistinctPaths*repeats)
	}
	if c.WarmSpeedup <= 1 {
		t.Fatalf("warm pass not faster than cold: %+v", c)
	}
	if c.HitRatePct <= 0 || c.HitRatePct >= 100 {
		t.Fatalf("hit rate %v%% out of range", c.HitRatePct)
	}
}

// TestIngestScalingMeasurement: one scaling cell at each ends of the
// width range; parallel output equality is separately pinned by the
// contour oracle tests, here we only need sane timings.
func TestIngestScalingMeasurement(t *testing.T) {
	for _, w := range []int{1, 4} {
		e, err := measureIngestScaling(64, 2, w)
		if err != nil {
			t.Fatal(err)
		}
		if e.Workers != w || e.K != 64 || e.Rounds != 2 || e.NsPerRound <= 0 {
			t.Fatalf("degenerate scaling cell: %+v", e)
		}
	}
}

// TestDesimSmokeSchema runs the desim smoke report end to end and pins
// the schema contract: every field of every row is present in the JSON
// (nulls are deliberate skips, absences are bugs), the scaling table has
// its sequential anchor cell, and derived rates are consistent.
func TestDesimSmokeSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmark cells")
	}
	path := t.TempDir() + "/desim.json"
	if err := runDesim(path, true); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"generator", "gomaxprocs", "cores", "hardware_note", "results", "scaling"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("top-level key %q missing", key)
		}
	}
	var results []map[string]json.RawMessage
	if err := json.Unmarshal(doc["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("%d result rows, want the 1k round and the scheduler microbenchmark", len(results))
	}
	rowKeys := []string{"benchmark", "n", "ns_per_op", "allocs_per_op", "events",
		"events_per_sec", "ns_per_event", "peak_queue_depth",
		"naive_ns_per_op", "naive_allocs_per_op", "speedup", "alloc_ratio"}
	for i, row := range results {
		for _, key := range rowKeys {
			if _, ok := row[key]; !ok {
				t.Errorf("results[%d] missing key %q", i, key)
			}
		}
	}
	var parsed desimReport
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	for _, e := range parsed.Results {
		if e.Benchmark == "EngineSchedule" && e.N != nil {
			t.Error("scheduler microbenchmark has a deployment size")
		}
		if e.Benchmark == "FullRound" {
			if e.N == nil || e.Events == nil || e.NsPerEvent == nil {
				t.Fatalf("FullRound row skips core fields: %+v", e)
			}
			if *e.NsPerEvent <= 0 || e.NsPerOp <= 0 {
				t.Errorf("non-positive timing in %+v", e)
			}
		}
	}
	if len(parsed.Scaling) == 0 {
		t.Fatal("smoke report has no scaling cells")
	}
	anchor := false
	for _, s := range parsed.Scaling {
		if s.MsPerRound <= 0 || s.Speedup <= 0 {
			t.Errorf("degenerate scaling cell %+v", s)
		}
		if s.Shards == 1 && s.Procs == 1 {
			anchor = true
			if s.Speedup != 1 {
				t.Errorf("sequential anchor cell speedup %v, want 1", s.Speedup)
			}
		}
	}
	if !anchor {
		t.Error("scaling table lacks the shards=1, procs=1 anchor cell")
	}
	if got := runtime.GOMAXPROCS(0); got != parsed.GoMaxProcs {
		t.Errorf("GOMAXPROCS left at %d after the scaling sweep, want restored to %d", got, parsed.GoMaxProcs)
	}
}
