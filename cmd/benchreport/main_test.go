package main

import (
	"strings"
	"testing"
	"time"
)

func TestDispatchUnknownKindLists(t *testing.T) {
	err := dispatch("bogus", options{})
	if err == nil {
		t.Fatal("dispatch(bogus) = nil error, want unknown-kind error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error %q does not name the offending kind", msg)
	}
	for _, name := range kindNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid kind %q", msg, name)
		}
	}
}

func TestKindRegistryComplete(t *testing.T) {
	want := []string{"recon", "faults", "desim", "trace", "serve"}
	got := kindNames()
	if len(got) != len(want) {
		t.Fatalf("kindNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kind %d = %q, want %q", i, got[i], want[i])
		}
	}
	for _, k := range kinds {
		if k.run == nil {
			t.Errorf("kind %q has no runner", k.name)
		}
		if k.doc == "" {
			t.Errorf("kind %q has no doc line", k.name)
		}
	}
}

func TestTraceScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced round")
	}
	e, err := runTraceScenario(traceScenario{name: "fault-free", nodes: 400})
	if err != nil {
		t.Fatal(err)
	}
	if e.SinkReports == 0 {
		t.Error("traced round delivered no reports to the sink")
	}
	if e.Summary.Events == 0 || e.Summary.DroppedEvents != 0 {
		t.Errorf("summary events=%d dropped=%d, want >0 and 0", e.Summary.Events, e.Summary.DroppedEvents)
	}
	if len(e.Summary.SinkStages) == 0 {
		t.Error("no sink reconstruction stage timings recorded")
	}
}

func TestServeEngineMeasurement(t *testing.T) {
	e, err := measureServeEngine(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.K != 64 || e.Rounds != 3 {
		t.Fatalf("entry shape: %+v", e)
	}
	if e.IncrementalNs <= 0 || e.FullNs <= 0 || e.Speedup <= 0 {
		t.Fatalf("degenerate timings: %+v", e)
	}
	if e.CellsReusedPct <= 0 {
		t.Errorf("3%% churn reused no cells: %+v", e)
	}
}

func TestServeLoadMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live HTTP server")
	}
	l, err := measureServeLoad(1, 250*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if l.Requests == 0 || l.QueriesPerSec <= 0 {
		t.Fatalf("no load measured: %+v", l)
	}
	if l.P99Micros < l.P50Micros {
		t.Fatalf("p99 %v < p50 %v", l.P99Micros, l.P50Micros)
	}
}
