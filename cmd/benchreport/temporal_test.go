package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isomap/internal/sim"
)

func temporalPair(fullFrames, deltaFrames, fullErr, deltaErr float64) []sim.TemporalPointResult {
	return []sim.TemporalPointResult{
		{TemporalPoint: sim.TemporalPoint{Field: "drift", Speed: 0.2},
			DataFramesPerRound: fullFrames, TrackingError: fullErr},
		{TemporalPoint: sim.TemporalPoint{Field: "drift", Speed: 0.2, Delta: true, Expiry: 8},
			DataFramesPerRound: deltaFrames, TrackingError: deltaErr},
	}
}

// TestCheckTemporalClaim pins the report's acceptance gate: the
// slow-drift delta cell must beat its full-report pair on traffic
// without giving up more than 0.05 tracking error; a missing pair is an
// error too.
func TestCheckTemporalClaim(t *testing.T) {
	if err := checkTemporalClaim(temporalPair(300, 280, 0.31, 0.30)); err != nil {
		t.Errorf("holding claim rejected: %v", err)
	}
	if err := checkTemporalClaim(temporalPair(280, 300, 0.31, 0.30)); err == nil {
		t.Error("traffic regression accepted")
	} else if !strings.Contains(err.Error(), "no traffic win") {
		t.Errorf("traffic regression error: %v", err)
	}
	if err := checkTemporalClaim(temporalPair(300, 280, 0.30, 0.40)); err == nil {
		t.Error("tracking-error regression accepted")
	}
	if err := checkTemporalClaim(nil); err == nil {
		t.Error("empty sweep accepted")
	}
	if err := checkTemporalClaim(temporalPair(300, 280, 0.31, 0.30)[:1]); err == nil {
		t.Error("missing delta cell accepted")
	}
}

// TestTemporalSmokeSchema runs the CI temporal cell end to end and
// checks the emitted JSON parses back with populated delta metrics.
func TestTemporalSmokeSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-round packet sweep")
	}
	out := filepath.Join(t.TempDir(), "temporal.json")
	if err := runTemporal(out, 1, true, 2); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep temporalReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != sim.TemporalRounds || len(rep.Results) != 1 {
		t.Fatalf("smoke report shape: rounds=%d results=%d", rep.Rounds, len(rep.Results))
	}
	res := rep.Results[0]
	if !res.Delta || res.DataFramesPerRound <= 0 || res.MapReports <= 0 {
		t.Errorf("smoke cell: %+v", res)
	}
	if res.MeanStaleness < 0 || res.SuppressRatio < 0 {
		t.Errorf("delta cell reported n/a delta metrics: %+v", res)
	}
}
