package main

import (
	"fmt"
	"os"

	"isomap/internal/sim"
)

// temporalReport is the BENCH_TEMPORAL.json document: the
// traffic-vs-staleness-vs-field-speed grid from sim.ExtTemporalSweep.
// Each cell runs the packet engine over a time-evolving field — full
// rounds (the oracle: every isoline node reports every round) against
// delta rounds (crossing deltas only, sink ages its belief) — so the
// full/delta pairs at equal field speed are directly comparable: same
// deployment, same field trajectory, same fault schedule.
type temporalReport struct {
	Generator string                    `json:"generator"`
	Nodes     int                       `json:"nodes"`
	FieldSide float64                   `json:"fieldSide"`
	Rounds    int                       `json:"roundsPerCell"`
	Runs      int                       `json:"runs"`
	Results   []sim.TemporalPointResult `json:"results"`
}

func runTemporal(out string, runs int, smoke bool, parallel int) error {
	points := sim.DefaultTemporalPoints()
	if smoke {
		points = sim.SmokeTemporalPoints()
		runs = 1
	}
	results, err := sim.NewRunner(parallel).ExtTemporalSweepResults(runs, points)
	if err != nil {
		return err
	}
	// The headline claim this report exists to carry: on the slow drift
	// cells the delta protocol must move measurably fewer data frames than
	// the full-report oracle without giving up tracking accuracy. Guard it
	// here so a regression fails the report instead of silently shipping
	// numbers that undercut the protocol.
	if !smoke {
		if err := checkTemporalClaim(results); err != nil {
			return err
		}
	}
	rep := temporalReport{
		Generator: "cmd/benchreport -kind temporal",
		Nodes:     400,
		FieldSide: 20,
		Rounds:    sim.TemporalRounds,
		Runs:      runs,
		Results:   results,
	}
	if out == "" {
		out = "BENCH_TEMPORAL.json"
	}
	return writeJSON(out, rep)
}

// checkTemporalClaim verifies the slowest-field full/delta pair:
// delta traffic strictly below full traffic at comparable tracking
// error (within 0.05 absolute raster disagreement).
func checkTemporalClaim(results []sim.TemporalPointResult) error {
	var full, delta *sim.TemporalPointResult
	for i := range results {
		r := &results[i]
		if r.Field != "drift" || r.Speed != 0.2 {
			continue
		}
		if r.Delta {
			if delta == nil {
				delta = r
			}
		} else {
			full = r
		}
	}
	if full == nil || delta == nil {
		return fmt.Errorf("temporal sweep missing the slow-drift full/delta pair")
	}
	if delta.DataFramesPerRound >= full.DataFramesPerRound {
		return fmt.Errorf("delta rounds moved %.1f data frames/round, full %.1f: no traffic win",
			delta.DataFramesPerRound, full.DataFramesPerRound)
	}
	if delta.TrackingError > full.TrackingError+0.05 {
		return fmt.Errorf("delta tracking error %.4f exceeds full %.4f by more than 0.05",
			delta.TrackingError, full.TrackingError)
	}
	fmt.Fprintf(os.Stderr,
		"benchreport: temporal claim holds: drift@0.2 frames/round full=%.1f delta=%.1f (%.0f%% saved), trackErr full=%.4f delta=%.4f\n",
		full.DataFramesPerRound, delta.DataFramesPerRound,
		100*(1-delta.DataFramesPerRound/full.DataFramesPerRound),
		full.TrackingError, delta.TrackingError)
	return nil
}
