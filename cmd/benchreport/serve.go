package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/geom"
	"isomap/internal/serve"
	"isomap/internal/stats"
)

// serveEngineEntry compares per-round reconstruction cost under churn:
// the incremental engine against the from-scratch rebuild it must match
// byte for byte. Times are means over the churn rounds.
type serveEngineEntry struct {
	K              int     `json:"k"`
	Rounds         int     `json:"rounds"`
	ChurnFraction  float64 `json:"churn_fraction"`
	IncrementalNs  float64 `json:"incremental_ns_per_round"`
	FullNs         float64 `json:"full_ns_per_round"`
	Speedup        float64 `json:"speedup"`
	CellsReusedPct float64 `json:"cells_reused_pct"`
	RasterRes      int     `json:"raster_res"`
}

// serveLoadEntry is the sustained HTTP serving measurement: concurrent
// clients querying a live deployment while an ingester advances churn
// rounds through it.
type serveLoadEntry struct {
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int     `json:"requests"`
	Rounds          int     `json:"rounds_ingested"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	P50Micros       float64 `json:"p50_us"`
	P99Micros       float64 `json:"p99_us"`
	NotModifiedPct  float64 `json:"not_modified_pct"`
}

// serveCacheEntry is the query-path fast-lane measurement: the same
// query set served cold (every request renders) versus warm (every
// request is a version-keyed cache hit), with the cache counters scraped
// from /debug/vars across the run.
type serveCacheEntry struct {
	DistinctPaths         int     `json:"distinct_paths"`
	WarmRepeats           int     `json:"warm_repeats"`
	ColdQueriesPerSec     float64 `json:"cold_queries_per_sec"`
	WarmQueriesPerSec     float64 `json:"warm_queries_per_sec"`
	WarmSpeedup           float64 `json:"warm_speedup"`
	ColdP50Micros         float64 `json:"cold_p50_us"`
	WarmP50Micros         float64 `json:"warm_p50_us"`
	CacheHits             int64   `json:"cache_hits"`
	CacheMisses           int64   `json:"cache_misses"`
	CacheEvictions        int64   `json:"cache_evictions"`
	SingleflightCoalesced int64   `json:"singleflight_coalesced"`
	HitRatePct            float64 `json:"hit_rate_pct"`
}

// serveIngestScalingEntry is one cell of the parallel-ingest scaling
// table: churn rounds through the incremental engine at a fixed worker
// width (output byte-identical at every width; workers=1 anchors the
// speedup column).
type serveIngestScalingEntry struct {
	Workers    int     `json:"workers"`
	K          int     `json:"k"`
	Rounds     int     `json:"rounds"`
	NsPerRound float64 `json:"ns_per_round"`
	Speedup    float64 `json:"speedup_vs_sequential"`
}

// serveReport is the BENCH_SERVE.json document.
type serveReport struct {
	Generator     string                    `json:"generator"`
	GoMaxProcs    int                       `json:"gomaxprocs"`
	Cores         int                       `json:"cores"`
	HardwareNote  string                    `json:"hardware_note"`
	Engine        []serveEngineEntry        `json:"engine"`
	Load          serveLoadEntry            `json:"load"`
	Cache         serveCacheEntry           `json:"cache"`
	IngestScaling []serveIngestScalingEntry `json:"ingest_scaling"`
}

func runServe(out string, smoke bool) error {
	if out == "" {
		out = "BENCH_SERVE.json"
	}
	rep := serveReport{
		Generator:  "cmd/benchreport -kind serve",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Cores:      runtime.NumCPU(),
	}
	if rep.Cores < 8 {
		rep.HardwareNote = fmt.Sprintf("measured on %d core(s): GOMAXPROCS above the core count timeslices instead of parallelizing, so the ingest scaling table bounds overhead rather than demonstrating speedup", rep.Cores)
	}
	ks := []int{128, 512}
	rounds := 20
	loadFor := 3 * time.Second
	clients := 4
	scalingK, scalingRounds := 512, 12
	warmRepeats := 8
	if smoke {
		ks = []int{128}
		rounds = 8
		loadFor = 600 * time.Millisecond
		clients = 2
		scalingK, scalingRounds = 128, 4
		warmRepeats = 3
	}
	for _, k := range ks {
		e, err := measureServeEngine(k, rounds)
		if err != nil {
			return err
		}
		rep.Engine = append(rep.Engine, e)
	}
	load, err := measureServeLoad(clients, loadFor, smoke)
	if err != nil {
		return err
	}
	rep.Load = load
	cache, err := measureServeCache(smoke, warmRepeats)
	if err != nil {
		return err
	}
	rep.Cache = cache
	for _, w := range []int{1, 2, 4, 8} {
		e, err := measureIngestScaling(scalingK, scalingRounds, w)
		if err != nil {
			return err
		}
		if len(rep.IngestScaling) > 0 {
			e.Speedup = math.Round(rep.IngestScaling[0].NsPerRound/e.NsPerRound*100) / 100
		} else {
			e.Speedup = 1
		}
		rep.IngestScaling = append(rep.IngestScaling, e)
	}
	return writeJSON(out, rep)
}

// churnBenchReports moves a small fraction of the reports, mimicking a
// slowly advancing contour between monitoring rounds.
func churnBenchReports(rng *rand.Rand, reports []core.Report, frac float64) []core.Report {
	out := append([]core.Report(nil), reports...)
	for i := range out {
		if rng.Float64() < frac {
			out[i].Pos.X += rng.NormFloat64() * 0.3
			out[i].Pos.Y += rng.NormFloat64() * 0.3
		}
	}
	return out
}

func measureServeEngine(k, rounds int) (serveEngineEntry, error) {
	const res = 100
	const churn = 0.03
	bounds := geom.Rect(0, 0, 50, 50)
	reports, levels := benchReports(k)
	rng := rand.New(rand.NewSource(int64(k) * 31))

	inc := contour.NewIncremental(levels, bounds, contour.DefaultOptions())
	inc.Update(reports, 9)
	inc.Raster(res, res)

	var incNs, fullNs float64
	for round := 0; round < rounds; round++ {
		reports = churnBenchReports(rng, reports, churn)

		start := time.Now()
		m := inc.Update(reports, 9)
		inc.Raster(res, res)
		incNs += float64(time.Since(start).Nanoseconds())

		arranged := inc.Arranged()
		start = time.Now()
		full := contour.Reconstruct(arranged, levels, bounds, 9, contour.DefaultOptions())
		full.RasterWorkers(res, res, 1)
		fullNs += float64(time.Since(start).Nanoseconds())

		// The speedup only counts if the outputs are the same bytes.
		if err := contour.Equivalent(m, full, 0, 0); err != nil {
			return serveEngineEntry{}, fmt.Errorf("serve bench k=%d round %d: %w", k, round, err)
		}
	}
	st := inc.Stats()
	reusedPct := 0.0
	if tot := st.CellsReused + st.CellsRecomputed; tot > 0 {
		reusedPct = math.Round(float64(st.CellsReused)/float64(tot)*1000) / 10
	}
	return serveEngineEntry{
		K:              k,
		Rounds:         rounds,
		ChurnFraction:  churn,
		IncrementalNs:  math.Round(incNs / float64(rounds)),
		FullNs:         math.Round(fullNs / float64(rounds)),
		Speedup:        math.Round(fullNs/incNs*100) / 100,
		CellsReusedPct: reusedPct,
		RasterRes:      res,
	}, nil
}

// serveCachePaths is the query mix for the cache measurement: raster
// tiles at distinct resolutions (the expensive renders the cache is
// for) plus polylines, classifies and range grids.
func serveCachePaths(smoke bool) []string {
	var paths []string
	resolutions := []int{40, 48, 56, 64, 72, 80, 96, 100}
	if smoke {
		resolutions = []int{32, 40, 48}
	}
	for _, r := range resolutions {
		paths = append(paths, fmt.Sprintf("/v1/deployments/d0/raster?rows=%d&cols=%d", r, r))
	}
	paths = append(paths,
		"/v1/deployments/d0/raster?rows=48&cols=48&format=pgm",
		"/v1/deployments/d0/levels/0/polyline",
		"/v1/deployments/d0/levels/1/polyline",
		"/v1/deployments/d0/classify?x=25&y=25",
		"/v1/deployments/d0/range?x0=10&y0=10&x1=40&y1=40&rows=8&cols=8",
	)
	return paths
}

// scrapeVars reads the isomapd expvar counters over HTTP — the same view
// an operator's scrape sees.
func scrapeVars(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Isomapd map[string]int64 `json:"isomapd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Isomapd, nil
}

// measureServeCache boots a live server and times the same query set
// cold (first request per path after a publish: every one renders) and
// warm (repeated: every one is a cache hit), deriving the fast-lane
// speedup and the hit/miss/eviction counts from /debug/vars deltas.
func measureServeCache(smoke bool, warmRepeats int) (serveCacheEntry, error) {
	nodes := 400
	if smoke {
		nodes = 250
	}
	srv, err := serve.NewServer(serve.Config{Deployments: 1, Nodes: nodes, Seed: 23})
	if err != nil {
		return serveCacheEntry{}, err
	}
	if err := srv.AdvanceAll(); err != nil {
		return serveCacheEntry{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveCacheEntry{}, err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	paths := serveCachePaths(smoke)
	before, err := scrapeVars(base)
	if err != nil {
		return serveCacheEntry{}, err
	}
	run := func(repeats int) ([]float64, time.Duration, error) {
		lats := make([]float64, 0, repeats*len(paths))
		start := time.Now()
		for rep := 0; rep < repeats; rep++ {
			for _, p := range paths {
				t0 := time.Now()
				resp, err := http.Get(base + p)
				if err != nil {
					return nil, 0, err
				}
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return nil, 0, fmt.Errorf("GET %s: status %d", p, resp.StatusCode)
				}
				lats = append(lats, float64(time.Since(t0).Microseconds()))
			}
		}
		return lats, time.Since(start), nil
	}
	coldLats, coldDur, err := run(1)
	if err != nil {
		return serveCacheEntry{}, err
	}
	warmLats, warmDur, err := run(warmRepeats)
	if err != nil {
		return serveCacheEntry{}, err
	}
	after, err := scrapeVars(base)
	if err != nil {
		return serveCacheEntry{}, err
	}

	coldQPS := float64(len(coldLats)) / coldDur.Seconds()
	warmQPS := float64(len(warmLats)) / warmDur.Seconds()
	hits := after["cache_hits"] - before["cache_hits"]
	misses := after["cache_misses"] - before["cache_misses"]
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = math.Round(float64(hits)/float64(hits+misses)*1000) / 10
	}
	return serveCacheEntry{
		DistinctPaths:         len(paths),
		WarmRepeats:           warmRepeats,
		ColdQueriesPerSec:     math.Round(coldQPS),
		WarmQueriesPerSec:     math.Round(warmQPS),
		WarmSpeedup:           math.Round(warmQPS/coldQPS*100) / 100,
		ColdP50Micros:         math.Round(stats.Percentile(coldLats, 50)*10) / 10,
		WarmP50Micros:         math.Round(stats.Percentile(warmLats, 50)*10) / 10,
		CacheHits:             hits,
		CacheMisses:           misses,
		CacheEvictions:        after["cache_evictions"] - before["cache_evictions"],
		SingleflightCoalesced: after["singleflight_coalesced"] - before["singleflight_coalesced"],
		HitRatePct:            hitRate,
	}, nil
}

// measureIngestScaling times churn rounds (update + raster refresh)
// through the incremental engine at one worker width.
func measureIngestScaling(k, rounds, workers int) (serveIngestScalingEntry, error) {
	const res = 100
	const churn = 0.03
	bounds := geom.Rect(0, 0, 50, 50)
	reports, levels := benchReports(k)
	rng := rand.New(rand.NewSource(int64(k) * 37))

	opts := contour.DefaultOptions()
	opts.Workers = workers
	inc := contour.NewIncremental(levels, bounds, opts)
	inc.Update(reports, 9)
	inc.Raster(res, res)

	var ns float64
	for round := 0; round < rounds; round++ {
		reports = churnBenchReports(rng, reports, churn)
		start := time.Now()
		inc.Update(reports, 9)
		inc.Raster(res, res)
		ns += float64(time.Since(start).Nanoseconds())
	}
	return serveIngestScalingEntry{
		Workers:    workers,
		K:          k,
		Rounds:     rounds,
		NsPerRound: math.Round(ns / float64(rounds)),
	}, nil
}

// measureServeLoad boots a real isomapd server on loopback and hammers it:
// clients cycle classify, polyline, meta (conditional) and range queries
// while one ingester advances churn rounds, so the measured tail includes
// snapshot swaps.
func measureServeLoad(clients int, dur time.Duration, smoke bool) (serveLoadEntry, error) {
	nodes := 400
	if smoke {
		nodes = 250
	}
	srv, err := serve.NewServer(serve.Config{Deployments: 1, Nodes: nodes, Seed: 17, FaultEvery: 4})
	if err != nil {
		return serveLoadEntry{}, err
	}
	if err := srv.AdvanceAll(); err != nil {
		return serveLoadEntry{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveLoadEntry{}, err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	paths := []string{
		"/v1/deployments/d0/classify?x=25&y=25",
		"/v1/deployments/d0/levels/0/polyline",
		"/v1/deployments/d0",
		"/v1/deployments/d0/range?x0=10&y0=10&x1=40&y1=40&rows=4&cols=4",
	}
	stop := time.Now().Add(dur)
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		latencies   []float64
		notModified int
		roundsDone  int
		firstErr    error
	)
	// Ingester: keeps churn flowing beneath the query load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			resp, err := http.Post(base+"/v1/deployments/d0/rounds", "application/json", nil)
			if err == nil {
				resp.Body.Close()
			}
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			roundsDone++
			mu.Unlock()
			time.Sleep(50 * time.Millisecond)
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			etag := ""
			local := make([]float64, 0, 4096)
			local304 := 0
			for i := 0; time.Now().Before(stop); i++ {
				path := paths[i%len(paths)]
				req, err := http.NewRequest("GET", base+path, nil)
				if err != nil {
					continue
				}
				if path == "/v1/deployments/d0" && etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := float64(time.Since(t0).Microseconds())
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if resp.StatusCode == http.StatusNotModified {
					local304++
				}
				if e := resp.Header.Get("ETag"); e != "" {
					etag = e
				}
				_ = resp.Body.Close()
				local = append(local, lat)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			notModified += local304
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return serveLoadEntry{}, firstErr
	}
	if len(latencies) == 0 {
		return serveLoadEntry{}, fmt.Errorf("serve load produced no samples")
	}
	return serveLoadEntry{
		Clients:         clients,
		DurationSeconds: dur.Seconds(),
		Requests:        len(latencies),
		Rounds:          roundsDone,
		QueriesPerSec:   math.Round(float64(len(latencies)) / dur.Seconds()),
		P50Micros:       math.Round(stats.Percentile(latencies, 50)*10) / 10,
		P99Micros:       math.Round(stats.Percentile(latencies, 99)*10) / 10,
		NotModifiedPct:  math.Round(float64(notModified)/float64(len(latencies))*1000) / 10,
	}, nil
}
