package main

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/geom"
	"isomap/internal/serve"
	"isomap/internal/stats"
)

// serveEngineEntry compares per-round reconstruction cost under churn:
// the incremental engine against the from-scratch rebuild it must match
// byte for byte. Times are means over the churn rounds.
type serveEngineEntry struct {
	K              int     `json:"k"`
	Rounds         int     `json:"rounds"`
	ChurnFraction  float64 `json:"churn_fraction"`
	IncrementalNs  float64 `json:"incremental_ns_per_round"`
	FullNs         float64 `json:"full_ns_per_round"`
	Speedup        float64 `json:"speedup"`
	CellsReusedPct float64 `json:"cells_reused_pct"`
	RasterRes      int     `json:"raster_res"`
}

// serveLoadEntry is the sustained HTTP serving measurement: concurrent
// clients querying a live deployment while an ingester advances churn
// rounds through it.
type serveLoadEntry struct {
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int     `json:"requests"`
	Rounds          int     `json:"rounds_ingested"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	P50Micros       float64 `json:"p50_us"`
	P99Micros       float64 `json:"p99_us"`
	NotModifiedPct  float64 `json:"not_modified_pct"`
}

// serveReport is the BENCH_SERVE.json document.
type serveReport struct {
	Generator  string             `json:"generator"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Engine     []serveEngineEntry `json:"engine"`
	Load       serveLoadEntry     `json:"load"`
}

func runServe(out string, smoke bool) error {
	if out == "" {
		out = "BENCH_SERVE.json"
	}
	rep := serveReport{
		Generator:  "cmd/benchreport -kind serve",
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	ks := []int{128, 512}
	rounds := 20
	loadFor := 3 * time.Second
	clients := 4
	if smoke {
		ks = []int{128}
		rounds = 8
		loadFor = 600 * time.Millisecond
		clients = 2
	}
	for _, k := range ks {
		e, err := measureServeEngine(k, rounds)
		if err != nil {
			return err
		}
		rep.Engine = append(rep.Engine, e)
	}
	load, err := measureServeLoad(clients, loadFor, smoke)
	if err != nil {
		return err
	}
	rep.Load = load
	return writeJSON(out, rep)
}

// churnBenchReports moves a small fraction of the reports, mimicking a
// slowly advancing contour between monitoring rounds.
func churnBenchReports(rng *rand.Rand, reports []core.Report, frac float64) []core.Report {
	out := append([]core.Report(nil), reports...)
	for i := range out {
		if rng.Float64() < frac {
			out[i].Pos.X += rng.NormFloat64() * 0.3
			out[i].Pos.Y += rng.NormFloat64() * 0.3
		}
	}
	return out
}

func measureServeEngine(k, rounds int) (serveEngineEntry, error) {
	const res = 100
	const churn = 0.03
	bounds := geom.Rect(0, 0, 50, 50)
	reports, levels := benchReports(k)
	rng := rand.New(rand.NewSource(int64(k) * 31))

	inc := contour.NewIncremental(levels, bounds, contour.DefaultOptions())
	inc.Update(reports, 9)
	inc.Raster(res, res)

	var incNs, fullNs float64
	for round := 0; round < rounds; round++ {
		reports = churnBenchReports(rng, reports, churn)

		start := time.Now()
		m := inc.Update(reports, 9)
		inc.Raster(res, res)
		incNs += float64(time.Since(start).Nanoseconds())

		arranged := inc.Arranged()
		start = time.Now()
		full := contour.Reconstruct(arranged, levels, bounds, 9, contour.DefaultOptions())
		full.RasterWorkers(res, res, 1)
		fullNs += float64(time.Since(start).Nanoseconds())

		// The speedup only counts if the outputs are the same bytes.
		if err := contour.Equivalent(m, full, 0, 0); err != nil {
			return serveEngineEntry{}, fmt.Errorf("serve bench k=%d round %d: %w", k, round, err)
		}
	}
	st := inc.Stats()
	reusedPct := 0.0
	if tot := st.CellsReused + st.CellsRecomputed; tot > 0 {
		reusedPct = math.Round(float64(st.CellsReused)/float64(tot)*1000) / 10
	}
	return serveEngineEntry{
		K:              k,
		Rounds:         rounds,
		ChurnFraction:  churn,
		IncrementalNs:  math.Round(incNs / float64(rounds)),
		FullNs:         math.Round(fullNs / float64(rounds)),
		Speedup:        math.Round(fullNs/incNs*100) / 100,
		CellsReusedPct: reusedPct,
		RasterRes:      res,
	}, nil
}

// measureServeLoad boots a real isomapd server on loopback and hammers it:
// clients cycle classify, polyline, meta (conditional) and range queries
// while one ingester advances churn rounds, so the measured tail includes
// snapshot swaps.
func measureServeLoad(clients int, dur time.Duration, smoke bool) (serveLoadEntry, error) {
	nodes := 400
	if smoke {
		nodes = 250
	}
	srv, err := serve.NewServer(serve.Config{Deployments: 1, Nodes: nodes, Seed: 17, FaultEvery: 4})
	if err != nil {
		return serveLoadEntry{}, err
	}
	if err := srv.AdvanceAll(); err != nil {
		return serveLoadEntry{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveLoadEntry{}, err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	paths := []string{
		"/v1/deployments/d0/classify?x=25&y=25",
		"/v1/deployments/d0/levels/0/polyline",
		"/v1/deployments/d0",
		"/v1/deployments/d0/range?x0=10&y0=10&x1=40&y1=40&rows=4&cols=4",
	}
	stop := time.Now().Add(dur)
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		latencies   []float64
		notModified int
		roundsDone  int
		firstErr    error
	)
	// Ingester: keeps churn flowing beneath the query load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(stop) {
			resp, err := http.Post(base+"/v1/deployments/d0/rounds", "application/json", nil)
			if err == nil {
				resp.Body.Close()
			}
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			roundsDone++
			mu.Unlock()
			time.Sleep(50 * time.Millisecond)
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			etag := ""
			local := make([]float64, 0, 4096)
			local304 := 0
			for i := 0; time.Now().Before(stop); i++ {
				path := paths[i%len(paths)]
				req, err := http.NewRequest("GET", base+path, nil)
				if err != nil {
					continue
				}
				if path == "/v1/deployments/d0" && etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := float64(time.Since(t0).Microseconds())
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if resp.StatusCode == http.StatusNotModified {
					local304++
				}
				if e := resp.Header.Get("ETag"); e != "" {
					etag = e
				}
				_ = resp.Body.Close()
				local = append(local, lat)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			notModified += local304
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return serveLoadEntry{}, firstErr
	}
	if len(latencies) == 0 {
		return serveLoadEntry{}, fmt.Errorf("serve load produced no samples")
	}
	return serveLoadEntry{
		Clients:         clients,
		DurationSeconds: dur.Seconds(),
		Requests:        len(latencies),
		Rounds:          roundsDone,
		QueriesPerSec:   math.Round(float64(len(latencies)) / dur.Seconds()),
		P50Micros:       math.Round(stats.Percentile(latencies, 50)*10) / 10,
		P99Micros:       math.Round(stats.Percentile(latencies, 99)*10) / 10,
		NotModifiedPct:  math.Round(float64(notModified)/float64(len(latencies))*1000) / 10,
	}, nil
}
