// Command isomapd is the long-lived contour-map server: it owns N
// concurrent simulated deployments, advances each through churn rounds
// (silting field, optional periodic fault injection) and serves contour
// queries — level-set polylines, point and range classification, raster
// tiles — from versioned snapshots with strong ETags. Reconstruction is
// incremental (internal/contour.Incremental); -oracle cross-checks every
// update against a from-scratch rebuild before publishing it.
//
// Usage:
//
//	isomapd [-addr :8080] [-deployments 2] [-nodes 600] [-seed 1]
//	        [-faultevery 0] [-oracle] [-interval 0] [-smoke]
//
// -interval N advances every deployment one round each N seconds;
// 0 leaves advancement to POST /v1/deployments/{id}/rounds. -smoke boots
// the server on a loopback port, replays a three-round churn sequence
// (the third crash-faulted when -faultevery 3, as the CI smoke uses),
// checks ETag rotation, 304 handling and the incremental-vs-oracle
// contract, then exits; non-zero on any failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"isomap/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		deployments = flag.Int("deployments", 2, "number of concurrent deployments")
		nodes       = flag.Int("nodes", 600, "nodes per deployment")
		seed        = flag.Int64("seed", 1, "base deployment seed (deployment i uses seed+i)")
		faultEvery  = flag.Int("faultevery", 0, "inject faults every Nth round (0 = never)")
		oracle      = flag.Bool("oracle", false, "verify every incremental update against a full rebuild")
		interval    = flag.Duration("interval", 0, "auto-advance rounds at this period (0 = only on POST)")
		smoke       = flag.Bool("smoke", false, "run the loopback smoke sequence and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintf(os.Stderr, "isomapd: smoke failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("isomapd: smoke ok")
		return
	}

	srv, err := serve.NewServer(serve.Config{
		Deployments: *deployments,
		Nodes:       *nodes,
		Seed:        *seed,
		FaultEvery:  *faultEvery,
		Oracle:      *oracle,
	})
	if err != nil {
		log.Fatalf("isomapd: %v", err)
	}
	if *interval > 0 {
		go func() {
			for range time.Tick(*interval) {
				if err := srv.AdvanceAll(); err != nil {
					log.Printf("isomapd: round failed: %v", err)
				}
			}
		}()
	}
	log.Printf("isomapd: %d deployments of %d nodes on %s", *deployments, *nodes, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// runSmoke is the self-contained health sequence the CI serve-smoke step
// runs: a real TCP listener, three churn rounds with the third faulted,
// oracle verification on every update, and the caching contract probed
// from the client side.
func runSmoke() error {
	srv, err := serve.NewServer(serve.Config{
		Deployments: 1,
		Nodes:       400,
		Seed:        11,
		FaultEvery:  3,
		Oracle:      true,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	var etags []string
	for round := 1; round <= 3; round++ {
		resp, err := http.Post(base+"/v1/deployments/d0/rounds", "application/json", nil)
		if err != nil {
			return err
		}
		var out struct {
			ETag    string `json:"etag"`
			Faulted bool   `json:"faulted"`
			Reports int    `json:"reports"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("round %d: status %d (oracle divergence fails here)", round, resp.StatusCode)
		}
		if out.Reports == 0 {
			return fmt.Errorf("round %d delivered no reports", round)
		}
		if round == 3 && !out.Faulted {
			return fmt.Errorf("round 3 was not fault-injected")
		}
		etags = append(etags, out.ETag)
	}
	for i := 1; i < len(etags); i++ {
		if etags[i] == etags[i-1] {
			return fmt.Errorf("etag did not rotate between rounds: %q", etags[i])
		}
	}

	// Caching contract: a conditional GET with the live ETag is a 304; a
	// stale ETag gets a full 200 with the new tag.
	req, err := http.NewRequest("GET", base+"/v1/deployments/d0/levels/0/polyline", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etags[2])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("conditional polyline: status %d, want 304", resp.StatusCode)
	}
	req.Header.Set("If-None-Match", etags[0])
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stale conditional polyline: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != etags[2] {
		return fmt.Errorf("stale conditional served ETag %q, want %q", got, etags[2])
	}

	// The query surface answers, and the invariant raster renders.
	for _, path := range []string{
		"/healthz",
		"/v1/deployments",
		"/v1/deployments/d0",
		"/v1/deployments/d0/classify?x=25&y=25",
		"/v1/deployments/d0/range?x0=10&y0=10&x1=40&y1=40&rows=6&cols=6",
		"/v1/deployments/d0/raster?rows=32&cols=32",
		"/debug/vars",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err = http.Get(base + "/v1/deployments/d0/raster?rows=16&cols=16&format=pgm")
	if err != nil {
		return err
	}
	head := make([]byte, 10)
	n, _ := resp.Body.Read(head)
	resp.Body.Close()
	if !strings.HasPrefix(string(head[:n]), "P2\n16 16\n") {
		return fmt.Errorf("pgm tile header = %q", string(head[:n]))
	}
	return nil
}
