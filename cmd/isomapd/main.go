// Command isomapd is the long-lived contour-map server: it owns N
// concurrent simulated deployments, advances each through churn rounds
// (silting field, optional periodic fault injection) and serves contour
// queries — level-set polylines, point and range classification, raster
// tiles — from versioned snapshots with strong ETags. Reconstruction is
// incremental (internal/contour.Incremental); -oracle cross-checks every
// update against a from-scratch rebuild before publishing it.
//
// Usage:
//
//	isomapd [-addr :8080] [-deployments 2] [-nodes 600] [-seed 1]
//	        [-faultevery 0] [-oracle] [-interval 0]
//	        [-field KIND] [-field-speed 1] [-delta] [-delta-expiry 0]
//	        [-shards 0] [-workers 0] [-cache-entries 0]
//	        [-checkpoint-dir DIR] [-checkpoint-every N]
//	        [-pprof ADDR] [-smoke] [-smoke-chaos] [-smoke-temporal]
//
// -interval N hands each deployment to a supervised ingest loop that
// advances one round every N (with exponential backoff after failures
// and a crash-loop breaker); 0 leaves advancement to
// POST /v1/deployments/{id}/rounds. -checkpoint-dir enables periodic
// per-deployment checkpoints; a restarted isomapd resumes from them
// byte-identical to a never-restarted run. -shards partitions each
// deployment's round simulation into independently clocked shards and
// -workers bounds both the shard executor and the incremental engine's
// worker pools (0 picks GOMAXPROCS); output is byte-identical at any
// width. -cache-entries bounds the per-deployment response artifact
// cache. -pprof ADDR serves net/http/pprof on a separate listener (off
// by default; never exposed on the main address). -smoke boots the
// server on a loopback port, replays a three-round churn sequence (the
// third crash-faulted when -faultevery 3, as the CI smoke uses), checks
// ETag rotation, 304 handling and the incremental-vs-oracle contract,
// then exits; non-zero on any failure. -smoke-chaos runs the
// self-healing sequence instead: a supervised loopback server under a
// seeded chaos plan (panics, synthetic divergences, slow rounds) must
// keep serving while degraded, then return to healthy and ready once
// the chaos lifts.
//
// -field selects the evolving field the deployments monitor (one of
// field.TemporalKinds: silting, drift, front, step) and -field-speed its
// evolution rate. -delta switches every round onto the packet engine's
// delta-report protocol — nodes transmit only level-crossing deltas and
// the server ingests the sink's aged merged belief — with -delta-expiry
// bounding belief staleness in rounds (0 keeps entries forever).
// -smoke-temporal replays a three-round delta sequence over a drifting
// field on a loopback server (oracle-verified), checks the traffic
// telemetry and the query surface, then exits; non-zero on any failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"isomap/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		deployments = flag.Int("deployments", 2, "number of concurrent deployments")
		nodes       = flag.Int("nodes", 600, "nodes per deployment")
		seed        = flag.Int64("seed", 1, "base deployment seed (deployment i uses seed+i)")
		faultEvery  = flag.Int("faultevery", 0, "inject faults every Nth round (0 = never)")
		fieldKind   = flag.String("field", "", "evolving field kind: silting, drift, front or step (empty = default silting)")
		fieldSpeed  = flag.Float64("field-speed", 0, "evolving field speed factor (0 = 1)")
		delta       = flag.Bool("delta", false, "run rounds on the delta-report protocol (level-crossing deltas + aged sink belief)")
		deltaExpiry = flag.Int("delta-expiry", 0, "delta sink belief expiry in rounds (0 = never expire)")
		oracle      = flag.Bool("oracle", false, "verify every incremental update against a full rebuild")
		interval    = flag.Duration("interval", 0, "supervised auto-advance period (0 = only on POST)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for per-deployment checkpoints (empty = no checkpoints)")
		ckptEvery   = flag.Int("checkpoint-every", 1, "checkpoint every Nth published version")
		shards      = flag.Int("shards", 0, "round-simulation shards per deployment (0 = unsharded)")
		workers     = flag.Int("workers", 0, "ingest worker width: shard executor + incremental engine pools (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("cache-entries", 0, "response artifact cache entries per deployment (0 = default)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
		smoke       = flag.Bool("smoke", false, "run the loopback smoke sequence and exit")
		smokeChaos  = flag.Bool("smoke-chaos", false, "run the loopback chaos-recovery sequence and exit")
		smokeTemp   = flag.Bool("smoke-temporal", false, "run the loopback temporal delta-replay sequence and exit")
	)
	flag.Parse()

	pprofBase := ""
	if *pprofAddr != "" {
		base, _, err := startPprof(*pprofAddr)
		if err != nil {
			log.Fatalf("isomapd: pprof listener: %v", err)
		}
		pprofBase = base
		log.Printf("isomapd: pprof on %s/debug/pprof/", base)
	}

	if *smoke {
		if err := runSmoke(pprofBase); err != nil {
			fmt.Fprintf(os.Stderr, "isomapd: smoke failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("isomapd: smoke ok")
		return
	}
	if *smokeChaos {
		if err := runSmokeChaos(); err != nil {
			fmt.Fprintf(os.Stderr, "isomapd: chaos smoke failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("isomapd: chaos smoke ok")
		return
	}
	if *smokeTemp {
		if err := runSmokeTemporal(); err != nil {
			fmt.Fprintf(os.Stderr, "isomapd: temporal smoke failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("isomapd: temporal smoke ok")
		return
	}

	srv, err := serve.NewServer(serve.Config{
		Deployments:     *deployments,
		Nodes:           *nodes,
		Seed:            *seed,
		FaultEvery:      *faultEvery,
		TemporalField:   *fieldKind,
		FieldSpeed:      *fieldSpeed,
		Delta:           *delta,
		DeltaExpiry:     *deltaExpiry,
		Oracle:          *oracle,
		Shards:          *shards,
		Workers:         *workers,
		CacheEntries:    *cacheSize,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatalf("isomapd: %v", err)
	}
	if *interval > 0 {
		srv.Start(serve.SupervisorConfig{Interval: *interval})
		defer srv.Stop()
	}
	log.Printf("isomapd: %d deployments of %d nodes on %s", *deployments, *nodes, *addr)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slow-client protection: a stalled header read, request body or
		// response drain must not pin a connection goroutine forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	log.Fatal(hs.ListenAndServe())
}

// startPprof serves the process profiling surface (net/http/pprof on the
// default mux) on its own listener, keeping it off the query address: the
// main server handles requests with its own mux, so /debug/pprof/ is
// only reachable through this explicitly opted-in port.
func startPprof(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		hs.Close()
		ln.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// listenLoopback boots srv on an ephemeral loopback port with the same
// hardened http.Server settings production uses, returning the base URL
// and a shutdown func.
func listenLoopback(srv *serve.Server) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		hs.Close()
		ln.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// runSmoke is the self-contained health sequence the CI serve-smoke step
// runs: a real TCP listener, three churn rounds with the third faulted,
// oracle verification on every update, and the caching contract probed
// from the client side. The ingest path runs sharded and parallel
// (oracle-checked against the full rebuild), and when -pprof was given
// its endpoint is probed too.
func runSmoke(pprofBase string) error {
	srv, err := serve.NewServer(serve.Config{
		Deployments: 1,
		Nodes:       400,
		Seed:        11,
		FaultEvery:  3,
		Oracle:      true,
		Shards:      4,
		Workers:     2,
	})
	if err != nil {
		return err
	}
	base, stop, err := listenLoopback(srv)
	if err != nil {
		return err
	}
	defer stop()

	// Readiness gates on the first snapshot: not ready before round 1.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("readyz before first round: status %d, want 503", resp.StatusCode)
	}

	var etags []string
	for round := 1; round <= 3; round++ {
		resp, err := http.Post(base+"/v1/deployments/d0/rounds", "application/json", nil)
		if err != nil {
			return err
		}
		var out struct {
			ETag    string `json:"etag"`
			Faulted bool   `json:"faulted"`
			Reports int    `json:"reports"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("round %d: status %d (oracle divergence fails here)", round, resp.StatusCode)
		}
		if out.Reports == 0 {
			return fmt.Errorf("round %d delivered no reports", round)
		}
		if round == 3 && !out.Faulted {
			return fmt.Errorf("round 3 was not fault-injected")
		}
		etags = append(etags, out.ETag)
	}
	for i := 1; i < len(etags); i++ {
		if etags[i] == etags[i-1] {
			return fmt.Errorf("etag did not rotate between rounds: %q", etags[i])
		}
	}

	// Malformed pushed batches are the client's fault, not the server's:
	// out-of-range coordinates must bounce with 400 and no version bump.
	resp, err = http.Post(base+"/v1/deployments/d0/rounds", "application/json",
		strings.NewReader(`{"reports":[{"level":6,"levelIndex":0,"pos":{"x":1e999,"y":1},"grad":{"x":1,"y":0},"source":3}],"sinkValue":5}`))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("corrupt pushed batch: status %d, want 400", resp.StatusCode)
	}

	// Caching contract: a conditional GET with the live ETag is a 304; a
	// stale ETag gets a full 200 with the new tag. A weak-validator,
	// multi-member If-None-Match must match too (RFC 9110 §13.1.2).
	req, err := http.NewRequest("GET", base+"/v1/deployments/d0/levels/0/polyline", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etags[2])
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("conditional polyline: status %d, want 304", resp.StatusCode)
	}
	req.Header.Set("If-None-Match", etags[0]+", W/"+etags[2])
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		return fmt.Errorf("weak list conditional polyline: status %d, want 304", resp.StatusCode)
	}
	req.Header.Set("If-None-Match", etags[0])
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stale conditional polyline: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != etags[2] {
		return fmt.Errorf("stale conditional served ETag %q, want %q", got, etags[2])
	}

	// The query surface answers, and the invariant raster renders.
	for _, path := range []string{
		"/healthz",
		"/readyz",
		"/v1/deployments",
		"/v1/deployments/d0",
		"/v1/deployments/d0/classify?x=25&y=25",
		"/v1/deployments/d0/range?x0=10&y0=10&x1=40&y1=40&rows=6&cols=6",
		"/v1/deployments/d0/raster?rows=32&cols=32",
		"/debug/vars",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	resp, err = http.Get(base + "/v1/deployments/d0/raster?rows=16&cols=16&format=pgm")
	if err != nil {
		return err
	}
	head := make([]byte, 10)
	n, _ := resp.Body.Read(head)
	resp.Body.Close()
	if !strings.HasPrefix(string(head[:n]), "P2\n16 16\n") {
		return fmt.Errorf("pgm tile header = %q", string(head[:n]))
	}

	// Response cache contract from the client side: a repeated query is
	// byte-identical to its cold render and counted as a hit.
	fetchBytes := func(path string) ([]byte, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	before, err := chaosCounters(base)
	if err != nil {
		return err
	}
	cold, err := fetchBytes("/v1/deployments/d0/raster?rows=32&cols=32")
	if err != nil {
		return err
	}
	warm, err := fetchBytes("/v1/deployments/d0/raster?rows=32&cols=32")
	if err != nil {
		return err
	}
	if string(cold) != string(warm) {
		return fmt.Errorf("warm cached raster bytes diverge from cold render")
	}
	after, err := chaosCounters(base)
	if err != nil {
		return err
	}
	if after["cache_hits"] <= before["cache_hits"] {
		return fmt.Errorf("warm raster was not a counted cache hit: %d -> %d", before["cache_hits"], after["cache_hits"])
	}

	// When -pprof was given, the profiling surface must answer on its own
	// listener (and only there).
	if pprofBase != "" {
		resp, err := http.Get(pprofBase + "/debug/pprof/")
		if err != nil {
			return fmt.Errorf("pprof probe: %w", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("pprof probe: status %d", resp.StatusCode)
		}
	}
	return nil
}

// runSmokeTemporal is the CI temporal smoke: a loopback server in delta
// mode over a drifting field replays three oracle-verified rounds. Round
// one seeds the sink belief; later rounds ingest only crossing deltas,
// so the served belief must stay populated (and versions must rotate)
// even when a round delivers few fresh reports.
func runSmokeTemporal() error {
	srv, err := serve.NewServer(serve.Config{
		Deployments:   1,
		Nodes:         400,
		Seed:          11,
		TemporalField: "drift",
		FieldSpeed:    0.5,
		Delta:         true,
		DeltaExpiry:   4,
		Oracle:        true,
	})
	if err != nil {
		return err
	}
	base, stop, err := listenLoopback(srv)
	if err != nil {
		return err
	}
	defer stop()

	var etags []string
	for round := 1; round <= 3; round++ {
		resp, err := http.Post(base+"/v1/deployments/d0/rounds", "application/json", nil)
		if err != nil {
			return err
		}
		var out struct {
			ETag    string `json:"etag"`
			Reports int    `json:"reports"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("delta round %d: status %d (oracle divergence fails here)", round, resp.StatusCode)
		}
		if out.Reports == 0 {
			return fmt.Errorf("delta round %d served an empty belief", round)
		}
		etags = append(etags, out.ETag)
	}
	for i := 1; i < len(etags); i++ {
		if etags[i] == etags[i-1] {
			return fmt.Errorf("etag did not rotate between delta rounds: %q", etags[i])
		}
	}
	for _, path := range []string{
		"/v1/deployments/d0",
		"/v1/deployments/d0/classify?x=25&y=25",
		"/v1/deployments/d0/raster?rows=32&cols=32",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	return nil
}

// chaosCounters reads the isomapd expvar map over HTTP — the same
// counters an operator's scrape sees.
func chaosCounters(base string) (map[string]int64, error) {
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Isomapd map[string]int64 `json:"isomapd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return doc.Isomapd, nil
}

// runSmokeChaos proves the self-healing loop end to end from the client
// side: under a seeded chaos plan the supervised server must keep a
// snapshot served through panics and divergences (degraded, never down),
// and once the chaos lifts every deployment must return to healthy and
// /readyz to 200. Exits non-zero if recovery stalls.
func runSmokeChaos() error {
	dir, err := os.MkdirTemp("", "isomapd-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := serve.NewServer(serve.Config{
		Deployments:   2,
		Nodes:         250,
		Seed:          41,
		FaultEvery:    4,
		Oracle:        true,
		OracleRes:     32,
		CheckpointDir: dir,
		Chaos: serve.NewChaosPlan(serve.ChaosConfig{
			Seed: 77, PanicRate: 0.12, DivergeRate: 0.15,
			SlowRate: 0.1, SlowDelay: time.Millisecond,
		}),
	})
	if err != nil {
		return err
	}
	base, stop, err := listenLoopback(srv)
	if err != nil {
		return err
	}
	defer stop()
	srv.Start(serve.SupervisorConfig{
		Interval:    2 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})
	defer srv.Stop()

	// Phase 1: soak until every failure kind has fired and been absorbed
	// (divergence quarantines, panic recoveries, resyncs, checkpoints)
	// while the query surface stays up.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			c, _ := chaosCounters(base)
			return fmt.Errorf("chaos phase never exercised all failure kinds: %v", c)
		}
		resp, err := http.Get(base + "/v1/deployments/d0")
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("meta under chaos: status %d", resp.StatusCode)
		}
		c, err := chaosCounters(base)
		if err != nil {
			return err
		}
		if c["divergences"] > 0 && c["panics_recovered"] > 0 && c["resyncs"] > 0 && c["checkpoints"] > 0 && c["updates"] >= 20 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: lift the chaos; both deployments must return to healthy
	// and readiness must flip back within the deadline.
	srv.SetChaos(nil)
	deadline = time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("deployments did not recover after chaos lifted")
		}
		resp, err := http.Get(base + "/v1/deployments")
		if err != nil {
			return err
		}
		var list struct {
			Deployments []struct {
				ID    string `json:"id"`
				State string `json:"state"`
			} `json:"deployments"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return err
		}
		healthy := len(list.Deployments) == 2
		for _, d := range list.Deployments {
			if d.State != "healthy" {
				healthy = false
			}
		}
		if healthy {
			resp, err := http.Get(base + "/readyz")
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}
