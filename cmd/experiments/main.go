// Command experiments regenerates the tables and figures of the Iso-Map
// paper's evaluation (Sec. 5) as text series.
//
// Usage:
//
//	experiments [-figure all] [-runs 3] [-parallel N]
//
// -parallel sets the worker-pool width of the sweep runner (0 selects
// GOMAXPROCS); the (scenario, seed) cells of each figure run as parallel
// jobs over a shared deployment cache, and the emitted tables are
// byte-identical at any -parallel value.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the heap
// profile is taken after the last table), so hot paths can be located with
// `go tool pprof` without instrumenting the code.
//
// Figures: table1, fig7, fig9, fig10, fig11a, fig11b, fig12a, fig12b,
// fig13a, fig13b, fig14a, fig14b, fig15a, fig15b, fig16, all.
// Extensions: ext-noise, ext-scope, ext-loss, ext-monitor, ext-latency,
// ext-localize, ext-mac, ext-lifetime, ext-detect, ext-codec, ext-faults,
// ext-temporal.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"isomap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure   = flag.String("figure", "all", "which table/figure to regenerate")
		runs     = flag.Int("runs", 3, "random-seed repetitions to average over")
		format   = flag.String("format", "text", "output format: text or csv")
		outDir   = flag.String("out", "", "also write each table to <out>/<id>.<ext>")
		parallel = flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS); output is identical at any width")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	)
	flag.Parse()
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}
	r := sim.NewRunner(*parallel)
	emit := func(tb *sim.Table) error {
		var body, ext string
		if *format == "csv" {
			body, ext = tb.CSV(), "csv"
			fmt.Print(body)
		} else {
			body, ext = tb.String()+"\n", "txt"
			fmt.Print(body)
		}
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, tb.ID+"."+ext)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		return nil
	}

	gens := map[string]func() (*sim.Table, error){
		"table1": r.Table1Overhead,
		"fig7":   func() (*sim.Table, error) { return r.Fig7GradientError(*runs) },
		"fig9":   r.Fig9ReportDensity,
		"fig10":  func() (*sim.Table, error) { return r.Fig10Maps(*runs) },
		"fig11a": func() (*sim.Table, error) { return r.Fig11aAccuracyDensity(*runs) },
		"fig11b": func() (*sim.Table, error) { return r.Fig11bAccuracyFailures(*runs) },
		"fig12a": func() (*sim.Table, error) { return r.Fig12aHausdorffDensity(*runs) },
		"fig12b": func() (*sim.Table, error) { return r.Fig12bHausdorffFailures(*runs) },
		"fig13a": r.Fig13aFilterReports,
		"fig13b": r.Fig13bFilterAccuracy,
		"fig14a": r.Fig14aTrafficDiameter,
		"fig14b": r.Fig14bTrafficDensity,
		"fig15a": r.Fig15aCompute,
		"fig15b": r.Fig15bComputeIsoMap,
		"fig16":  r.Fig16Energy,
		// Extension experiments beyond the paper's figures.
		"ext-noise":    func() (*sim.Table, error) { return r.ExtNoiseSweep(*runs) },
		"ext-scope":    func() (*sim.Table, error) { return r.ExtScopeSweep(*runs) },
		"ext-loss":     r.ExtLossSweep,
		"ext-monitor":  func() (*sim.Table, error) { return r.ExtMonitorRounds(8) },
		"ext-latency":  r.ExtLatencySweep,
		"ext-localize": func() (*sim.Table, error) { return r.ExtLocalizeSweep(*runs) },
		"ext-mac":      r.ExtMACSweep,
		"ext-lifetime": r.ExtLifetimeSweep,
		"ext-detect":   func() (*sim.Table, error) { return r.ExtDetectPolicySweep(*runs) },
		"ext-codec":    func() (*sim.Table, error) { return r.ExtCodecSweep(*runs) },
		"ext-faults":   func() (*sim.Table, error) { return r.ExtFaultSweep(*runs) },
		"ext-temporal": func() (*sim.Table, error) { return r.ExtTemporalSweep(*runs) },
	}

	if *figure == "all" {
		tables, err := r.AllFigures(*runs)
		if err != nil {
			return err
		}
		for _, tb := range tables {
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	gen, ok := gens[*figure]
	if !ok {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	tb, err := gen()
	if err != nil {
		return err
	}
	return emit(tb)
}
