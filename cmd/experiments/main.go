// Command experiments regenerates the tables and figures of the Iso-Map
// paper's evaluation (Sec. 5) as text series.
//
// Usage:
//
//	experiments [-figure all] [-runs 3]
//
// Figures: table1, fig7, fig9, fig10, fig11a, fig11b, fig12a, fig12b,
// fig13a, fig13b, fig14a, fig14b, fig15a, fig15b, fig16, all.
// Extensions: ext-noise, ext-scope, ext-loss, ext-monitor, ext-latency,
// ext-localize.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"isomap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure = flag.String("figure", "all", "which table/figure to regenerate")
		runs   = flag.Int("runs", 3, "random-seed repetitions to average over")
		format = flag.String("format", "text", "output format: text or csv")
		outDir = flag.String("out", "", "also write each table to <out>/<id>.<ext>")
	)
	flag.Parse()
	emit := func(tb *sim.Table) error {
		var body, ext string
		if *format == "csv" {
			body, ext = tb.CSV(), "csv"
			fmt.Print(body)
		} else {
			body, ext = tb.String()+"\n", "txt"
			fmt.Print(body)
		}
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, tb.ID+"."+ext)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		return nil
	}

	gens := map[string]func() (*sim.Table, error){
		"table1": sim.Table1Overhead,
		"fig7":   func() (*sim.Table, error) { return sim.Fig7GradientError(*runs) },
		"fig9":   sim.Fig9ReportDensity,
		"fig10":  func() (*sim.Table, error) { return sim.Fig10Maps(*runs) },
		"fig11a": func() (*sim.Table, error) { return sim.Fig11aAccuracyDensity(*runs) },
		"fig11b": func() (*sim.Table, error) { return sim.Fig11bAccuracyFailures(*runs) },
		"fig12a": func() (*sim.Table, error) { return sim.Fig12aHausdorffDensity(*runs) },
		"fig12b": func() (*sim.Table, error) { return sim.Fig12bHausdorffFailures(*runs) },
		"fig13a": sim.Fig13aFilterReports,
		"fig13b": sim.Fig13bFilterAccuracy,
		"fig14a": sim.Fig14aTrafficDiameter,
		"fig14b": sim.Fig14bTrafficDensity,
		"fig15a": sim.Fig15aCompute,
		"fig15b": sim.Fig15bComputeIsoMap,
		"fig16":  sim.Fig16Energy,
		// Extension experiments beyond the paper's figures.
		"ext-noise":    func() (*sim.Table, error) { return sim.ExtNoiseSweep(*runs) },
		"ext-scope":    func() (*sim.Table, error) { return sim.ExtScopeSweep(*runs) },
		"ext-loss":     sim.ExtLossSweep,
		"ext-monitor":  func() (*sim.Table, error) { return sim.ExtMonitorRounds(8) },
		"ext-latency":  sim.ExtLatencySweep,
		"ext-localize": func() (*sim.Table, error) { return sim.ExtLocalizeSweep(*runs) },
		"ext-mac":      sim.ExtMACSweep,
		"ext-lifetime": sim.ExtLifetimeSweep,
		"ext-detect":   func() (*sim.Table, error) { return sim.ExtDetectPolicySweep(*runs) },
		"ext-codec":    func() (*sim.Table, error) { return sim.ExtCodecSweep(*runs) },
	}

	if *figure == "all" {
		tables, err := sim.AllFigures(*runs)
		if err != nil {
			return err
		}
		for _, tb := range tables {
			if err := emit(tb); err != nil {
				return err
			}
		}
		return nil
	}

	gen, ok := gens[*figure]
	if !ok {
		return fmt.Errorf("unknown figure %q", *figure)
	}
	tb, err := gen()
	if err != nil {
		return err
	}
	return emit(tb)
}
