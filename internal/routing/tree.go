// Package routing implements the tree-based routing substrate the paper
// assumes (Sec. 3.1): a spanning tree rooted at the sink over the
// communication graph, with each node assigned a level equal to its hop
// distance from the sink. All compared protocols run on this same tree,
// providing the "fair platform" the paper argues for.
package routing

import (
	"fmt"

	"isomap/internal/network"
)

// Tree is a sink-rooted BFS spanning tree over the alive communication
// graph of a network.
//
// A Tree is immutable after NewTree: every method is a read, so a tree is
// safe for concurrent use as long as the underlying network's alive set
// does not change under it. Protocol rounds (core.Run, the baselines) only
// re-sense node values and never alter the topology, which is what makes
// an Env reusable across protocol runs — see Rebind for running many
// concurrent rounds over clones of one deployment.
type Tree struct {
	nw     *network.Network
	root   network.NodeID
	parent []network.NodeID
	level  []int
	// children is derived from parent; kept for aggregation traversals.
	children [][]network.NodeID
	maxLevel int
}

// NewTree builds the routing tree rooted at root. Nodes outside the root's
// connected component get level -1 and no parent; they cannot report. An
// error is returned when the root itself is dead or out of range.
func NewTree(nw *network.Network, root network.NodeID) (*Tree, error) {
	if !nw.Alive(root) {
		return nil, fmt.Errorf("routing: root %d is not an alive node", root)
	}
	n := nw.Len()
	t := &Tree{
		nw:       nw,
		root:     root,
		parent:   make([]network.NodeID, n),
		level:    make([]int, n),
		children: make([][]network.NodeID, n),
	}
	for i := range t.parent {
		t.parent[i] = -1
		t.level[i] = -1
	}
	t.level[root] = 0
	queue := []network.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range nw.AliveNeighbors(cur) {
			if t.level[nb] >= 0 {
				continue
			}
			t.level[nb] = t.level[cur] + 1
			t.parent[nb] = cur
			t.children[cur] = append(t.children[cur], nb)
			if t.level[nb] > t.maxLevel {
				t.maxLevel = t.level[nb]
			}
			queue = append(queue, nb)
		}
	}
	return t, nil
}

// Rebind returns a tree with identical structure whose Network() is nw —
// intended for a Network.Clone of the network the tree was built over, so
// a cached deployment can back many concurrent protocol runs without
// re-running BFS. The structural slices (parents, levels, children) are
// shared with the receiver; they are immutable after NewTree. The clone
// must have the same node count (and, for the levels to stay meaningful,
// the same alive set) as the original network.
func (t *Tree) Rebind(nw *network.Network) (*Tree, error) {
	if nw == nil || nw.Len() != len(t.parent) {
		got := 0
		if nw != nil {
			got = nw.Len()
		}
		return nil, fmt.Errorf("routing: rebind to %d-node network, tree spans %d", got, len(t.parent))
	}
	cp := *t
	cp.nw = nw
	return &cp, nil
}

// Root returns the sink node ID.
func (t *Tree) Root() network.NodeID { return t.root }

// Network returns the network the tree spans.
func (t *Tree) Network() *network.Network { return t.nw }

// Reachable reports whether id has a route to the sink.
func (t *Tree) Reachable(id network.NodeID) bool {
	return int(id) >= 0 && int(id) < len(t.level) && t.level[id] >= 0
}

// Level returns the hop distance of id from the sink, or -1 when
// unreachable.
func (t *Tree) Level(id network.NodeID) int {
	if int(id) < 0 || int(id) >= len(t.level) {
		return -1
	}
	return t.level[id]
}

// Parent returns the parent of id on the tree, or -1 for the root and
// unreachable nodes.
func (t *Tree) Parent(id network.NodeID) network.NodeID {
	if int(id) < 0 || int(id) >= len(t.parent) {
		return -1
	}
	return t.parent[id]
}

// Children returns the tree children of id.
func (t *Tree) Children(id network.NodeID) []network.NodeID {
	if int(id) < 0 || int(id) >= len(t.children) {
		return nil
	}
	return t.children[id]
}

// MaxLevel returns the deepest level in the tree — the effective network
// diameter in hops used by Figs. 14-16.
func (t *Tree) MaxLevel() int { return t.maxLevel }

// BestAliveParent returns the alive neighbor of id with the smallest BFS
// level strictly below id's own (lowest ID on ties): the natural repair
// parent when id's tree parent goes silent mid-round. Because the levels
// are the hop distances frozen at NewTree, every repaired hop strictly
// decreases the frozen level, so repair can never introduce a routing
// cycle. ok is false when no alive upward neighbor survives — id's
// subtree is severed from the sink.
func (t *Tree) BestAliveParent(id network.NodeID) (network.NodeID, bool) {
	return t.BestAliveParentFunc(id, t.nw.Alive)
}

// BestAliveParentFunc is BestAliveParent under a caller-supplied liveness
// predicate — e.g. the packet engine's propagation-delayed visibility,
// where a just-crashed neighbor still looks alive for one delay. It scans
// the neighbor list in place without allocating.
func (t *Tree) BestAliveParentFunc(id network.NodeID, alive func(network.NodeID) bool) (network.NodeID, bool) {
	if !t.Reachable(id) || t.level[id] <= 0 {
		return -1, false
	}
	best := network.NodeID(-1)
	bestLevel := t.level[id]
	for _, nb := range t.nw.Neighbors(id) {
		if !alive(nb) {
			continue
		}
		l := t.level[nb]
		if l < 0 || l >= t.level[id] {
			continue
		}
		if best < 0 || l < bestLevel || (l == bestLevel && nb < best) {
			best, bestLevel = nb, l
		}
	}
	if best < 0 {
		return -1, false
	}
	return best, true
}

// PathToSink returns the node sequence from id (inclusive) to the root
// (inclusive), or nil when id is unreachable.
func (t *Tree) PathToSink(id network.NodeID) []network.NodeID {
	if !t.Reachable(id) {
		return nil
	}
	path := make([]network.NodeID, 0, t.level[id]+1)
	for cur := id; ; cur = t.parent[cur] {
		path = append(path, cur)
		if cur == t.root {
			return path
		}
	}
}

// ReachableCount returns the number of nodes with a route to the sink.
func (t *Tree) ReachableCount() int {
	count := 0
	for _, l := range t.level {
		if l >= 0 {
			count++
		}
	}
	return count
}

// PostOrder returns the reachable nodes in post-order (every node after all
// its descendants). In-network aggregation protocols process reports in
// this order, exactly as the level-synchronized slots of TAG would deliver
// them.
func (t *Tree) PostOrder() []network.NodeID {
	out := make([]network.NodeID, 0, t.ReachableCount())
	// Iterative DFS to avoid recursion on deep trees.
	type frame struct {
		id   network.NodeID
		next int
	}
	stack := []frame{{id: t.root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.children[f.id]
		if f.next < len(kids) {
			child := kids[f.next]
			f.next++
			stack = append(stack, frame{id: child})
			continue
		}
		out = append(out, f.id)
		stack = stack[:len(stack)-1]
	}
	return out
}
