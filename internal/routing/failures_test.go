package routing

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/network"
)

func TestTreeExcludesFailedNodes(t *testing.T) {
	nw := deploy(t, 1000, 2.5, 7)
	nw.FailFraction(0.3, 9)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if nw.Node(id).Failed && tree.Reachable(id) {
			t.Fatalf("failed node %d is on the tree", id)
		}
	}
}

func TestTreeRoutesAroundFailedRelays(t *testing.T) {
	// Dense network: failing a batch of nodes must not orphan the rest.
	nw := deploy(t, 2500, 2.0, 7)
	sink := sinkOf(t, nw)
	before, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a random 10% that excludes the sink.
	nw.FailFractionExcluding(0.1, 3, sink)
	after, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	alive := 0
	for i := 0; i < nw.Len(); i++ {
		if nw.Alive(network.NodeID(i)) {
			alive++
		}
	}
	// Nearly all alive nodes still reach the sink (dense graph).
	if after.ReachableCount() < alive*95/100 {
		t.Errorf("after failures: reachable %d of %d alive", after.ReachableCount(), alive)
	}
	if after.ReachableCount() >= before.ReachableCount() {
		t.Errorf("reachable did not drop: %d -> %d", before.ReachableCount(), after.ReachableCount())
	}
}

func TestPartitionedNetworkTreeCoversOneComponent(t *testing.T) {
	// Build a barbell: two clusters joined by one bridge node, then kill
	// the bridge.
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployGrid(25, f, 12.6) // 5x5 grid, spacing 10
	if err != nil {
		t.Fatal(err)
	}
	// Kill the middle column (x = 25): indices with col 2.
	for r := 0; r < 5; r++ {
		nw.Node(network.NodeID(r*5 + 2)).Failed = true
	}
	tree, err := NewTree(nw, 0) // bottom-left corner
	if err != nil {
		t.Fatal(err)
	}
	// Only the left two columns (10 nodes) are reachable: the radio range
	// 12.6 spans one grid step (10) and the diagonal (14.1) is out of
	// range, so the dead column severs the halves.
	if got := tree.ReachableCount(); got != 10 {
		t.Errorf("reachable = %d, want 10 (left component)", got)
	}
	// A right-half node is unreachable.
	if tree.Reachable(network.NodeID(4)) {
		t.Error("right component should be severed")
	}
}
