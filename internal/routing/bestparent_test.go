package routing

import (
	"testing"

	"isomap/internal/network"
)

// TestBestAliveParent pins the repair-parent selection rule: the alive
// upward neighbor with the smallest frozen level, lowest ID on ties, and
// strictly below the node's own level (so repair can never cycle).
func TestBestAliveParent(t *testing.T) {
	nw := deploy(t, 600, 2.8, 5)
	tree, err := NewTree(nw, sinkOf(t, nw))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !tree.Reachable(id) || tree.Level(id) <= 0 {
			if _, ok := tree.BestAliveParent(id); ok {
				t.Fatalf("node %d (level %d) has a repair parent but should not", i, tree.Level(id))
			}
			continue
		}
		got, ok := tree.BestAliveParent(id)
		// Brute-force reference over the neighbor list.
		want, wantLevel := network.NodeID(-1), tree.Level(id)
		for _, nb := range nw.Neighbors(id) {
			if !nw.Alive(nb) {
				continue
			}
			l := tree.Level(nb)
			if l < 0 || l >= tree.Level(id) {
				continue
			}
			if want < 0 || l < wantLevel || (l == wantLevel && nb < want) {
				want, wantLevel = nb, l
			}
		}
		if ok != (want >= 0) || (ok && got != want) {
			t.Fatalf("node %d: BestAliveParent = (%d, %v), brute force (%d, %v)",
				i, got, ok, want, want >= 0)
		}
		if ok {
			if tree.Level(got) >= tree.Level(id) {
				t.Fatalf("node %d: repair parent %d at level %d >= own %d",
					i, got, tree.Level(got), tree.Level(id))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no node exercised the repair-parent scan")
	}
}

// TestBestAliveParentFunc pins the predicate variant the packet engine
// uses for propagation-delayed liveness: the predicate, not the
// network's Failed marks, decides who counts as alive.
func TestBestAliveParentFunc(t *testing.T) {
	nw := deploy(t, 600, 2.8, 5)
	tree, err := NewTree(nw, sinkOf(t, nw))
	if err != nil {
		t.Fatal(err)
	}
	// Find a node whose best parent is unique at its level, then a
	// predicate that kills exactly that parent must select another
	// neighbor (or report severed) while nw.Alive still sees everyone.
	exercised := false
	for i := 0; i < nw.Len() && !exercised; i++ {
		id := network.NodeID(i)
		best, ok := tree.BestAliveParent(id)
		if !ok {
			continue
		}
		dead := func(nb network.NodeID) bool { return nb != best && nw.Alive(nb) }
		alt, altOK := tree.BestAliveParentFunc(id, dead)
		if altOK && alt == best {
			t.Fatalf("node %d: predicate killed %d but it was still chosen", i, best)
		}
		if altOK && tree.Level(alt) >= tree.Level(id) {
			t.Fatalf("node %d: fallback parent %d not strictly upward", i, alt)
		}
		// The delayed-visibility direction: a predicate seeing a truly
		// failed node as alive may still pick it — visibility is the
		// caller's contract.
		allAlive := func(network.NodeID) bool { return true }
		same, sameOK := tree.BestAliveParentFunc(id, allAlive)
		if !sameOK || same != best {
			t.Fatalf("node %d: all-alive predicate picked (%d, %v), want (%d, true)",
				i, same, sameOK, best)
		}
		exercised = true
	}
	if !exercised {
		t.Fatal("no node with a repair parent found")
	}
}
