package routing

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
)

func deploy(t *testing.T, n int, radio float64, seed int64) *network.Network {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(n, f, radio, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func sinkOf(t *testing.T, nw *network.Network) network.NodeID {
	t.Helper()
	id, err := nw.NearestNode(geom.Point{X: 25, Y: 25})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestNewTreeBasics(t *testing.T) {
	nw := deploy(t, 1000, 2.5, 3)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != sink {
		t.Errorf("Root = %d, want %d", tree.Root(), sink)
	}
	if got := tree.Level(sink); got != 0 {
		t.Errorf("sink level = %d, want 0", got)
	}
	if got := tree.Parent(sink); got != -1 {
		t.Errorf("sink parent = %d, want -1", got)
	}
	if tree.Network() != nw {
		t.Error("Network() mismatch")
	}
}

func TestRebind(t *testing.T) {
	nw := deploy(t, 200, 2.5, 3)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	cp := nw.Clone()
	bound, err := tree.Rebind(cp)
	if err != nil {
		t.Fatal(err)
	}
	if bound.Network() != cp {
		t.Error("Rebind did not point the tree at the clone")
	}
	if tree.Network() != nw {
		t.Error("Rebind mutated the original tree")
	}
	// Structure is shared and identical.
	if bound.Root() != tree.Root() || bound.MaxLevel() != tree.MaxLevel() {
		t.Error("rebound tree structure differs")
	}
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if bound.Parent(id) != tree.Parent(id) || bound.Level(id) != tree.Level(id) {
			t.Fatalf("node %d parent/level differ after Rebind", i)
		}
	}
	// Size mismatch and nil are rejected.
	small := deploy(t, 50, 2.5, 3)
	if _, err := tree.Rebind(small); err == nil {
		t.Error("want error rebinding to a different-size network")
	}
	if _, err := tree.Rebind(nil); err == nil {
		t.Error("want error rebinding to nil")
	}
}

func TestNewTreeDeadRoot(t *testing.T) {
	nw := deploy(t, 10, 2.5, 3)
	nw.Node(0).Failed = true
	if _, err := NewTree(nw, 0); err == nil {
		t.Error("want error for dead root")
	}
	if _, err := NewTree(nw, network.NodeID(999)); err == nil {
		t.Error("want error for out-of-range root")
	}
}

func TestTreeLevelsAreBFSDistances(t *testing.T) {
	nw := deploy(t, 800, 2.5, 9)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !tree.Reachable(id) {
			continue
		}
		// Parent is exactly one level lower (paper Sec. 3.1).
		if id != sink {
			p := tree.Parent(id)
			if tree.Level(id) != tree.Level(p)+1 {
				t.Fatalf("node %d level %d, parent %d level %d", id, tree.Level(id), p, tree.Level(p))
			}
			// Parent must be a radio neighbor.
			if nw.Node(id).Pos.DistTo(nw.Node(p).Pos) > nw.Radio()+1e-9 {
				t.Fatalf("parent %d of %d not within radio range", p, id)
			}
		}
		// BFS optimality: no alive neighbor has level < mine - 1.
		for _, nb := range nw.AliveNeighbors(id) {
			if tree.Reachable(nb) && tree.Level(nb) < tree.Level(id)-1 {
				t.Fatalf("node %d level %d has neighbor %d at level %d", id, tree.Level(id), nb, tree.Level(nb))
			}
		}
	}
}

func TestPathToSink(t *testing.T) {
	nw := deploy(t, 800, 2.5, 9)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Len(); i += 37 {
		id := network.NodeID(i)
		if !tree.Reachable(id) {
			continue
		}
		path := tree.PathToSink(id)
		if path[0] != id || path[len(path)-1] != sink {
			t.Fatalf("path endpoints %v", path)
		}
		if len(path) != tree.Level(id)+1 {
			t.Fatalf("path length %d, want level+1 = %d", len(path), tree.Level(id)+1)
		}
		for k := 1; k < len(path); k++ {
			if tree.Parent(path[k-1]) != path[k] {
				t.Fatalf("path step %d not parent link", k)
			}
		}
	}
}

func TestPathToSinkUnreachable(t *testing.T) {
	// Two isolated nodes: only the root is reachable.
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployGrid(4, f, 0.5) // spacing 25, radio 0.5: isolated
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NewTree(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Reachable(1) {
		t.Error("node 1 should be unreachable")
	}
	if got := tree.PathToSink(1); got != nil {
		t.Errorf("unreachable path = %v", got)
	}
	if got := tree.ReachableCount(); got != 1 {
		t.Errorf("ReachableCount = %d, want 1", got)
	}
	if tree.Level(-1) != -1 || tree.Parent(-1) != -1 || tree.Children(-1) != nil {
		t.Error("out-of-range queries should be -1/nil")
	}
}

func TestChildrenConsistentWithParent(t *testing.T) {
	nw := deploy(t, 500, 2.5, 4)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		for _, c := range tree.Children(id) {
			if tree.Parent(c) != id {
				t.Fatalf("child %d of %d has parent %d", c, id, tree.Parent(c))
			}
		}
	}
}

func TestPostOrder(t *testing.T) {
	nw := deploy(t, 500, 2.5, 4)
	sink := sinkOf(t, nw)
	tree, err := NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	order := tree.PostOrder()
	if len(order) != tree.ReachableCount() {
		t.Fatalf("PostOrder len = %d, want %d", len(order), tree.ReachableCount())
	}
	// Every node appears after all of its children.
	pos := make(map[network.NodeID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		for _, c := range tree.Children(id) {
			if pos[c] > pos[id] {
				t.Fatalf("child %d after parent %d in post-order", c, id)
			}
		}
	}
	if order[len(order)-1] != sink {
		t.Error("root should be last in post-order")
	}
}

func TestMaxLevelGrowsWithField(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	small, err := network.DeployUniform(400, f, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	sinkS, err := small.NearestNode(geom.Point{X: 25, Y: 25})
	if err != nil {
		t.Fatal(err)
	}
	treeS, err := NewTree(small, sinkS)
	if err != nil {
		t.Fatal(err)
	}

	big, err := network.DeployUniform(2500, f, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	sinkB, err := big.NearestNode(geom.Point{X: 25, Y: 25})
	if err != nil {
		t.Fatal(err)
	}
	treeB, err := NewTree(big, sinkB)
	if err != nil {
		t.Fatal(err)
	}
	// Denser network reaches more nodes; diameter (in hops, center sink on
	// the same field) stays in the same ballpark but the tree covers far
	// more nodes.
	if treeB.ReachableCount() <= treeS.ReachableCount() {
		t.Errorf("reachable: big %d <= small %d", treeB.ReachableCount(), treeS.ReachableCount())
	}
	if treeB.MaxLevel() <= 0 {
		t.Error("MaxLevel should be positive")
	}
}
