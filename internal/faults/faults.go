// Package faults is the deterministic fault-injection subsystem: a seeded
// Plan composes per-link channel loss models (Bernoulli and bursty
// Gilbert–Elliott), a mid-round node-crash schedule, and sink-side report
// corruption/duplication. The paper assumes a perfect link layer
// "through performance based routing dynamics and MAC layer
// retransmissions" (Sec. 5); a Plan is the machinery to revoke that
// assumption reproducibly and measure what it costs.
//
// Every draw a Plan makes comes from a stream derived purely from
// (Config.Seed, consumer identity): each directed link hashes its own RNG
// stream, the crash schedule is materialized at construction, and the
// sink mangler has its own stream. Two Plans built from the same Config
// therefore behave identically regardless of process, goroutine
// interleaving or worker-pool width — a simulation replays bit for bit.
//
// A Plan's channel state advances as the simulation consumes it, so build
// one Plan per simulated round; the zero value injects nothing and is
// safe to share.
package faults

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"isomap/internal/core"
	"isomap/internal/geom"
	"isomap/internal/network"
)

// ChannelKind selects the per-link loss process.
type ChannelKind int

const (
	// ChannelPerfect is the paper's assumption: no channel loss.
	ChannelPerfect ChannelKind = iota
	// ChannelBernoulli loses each reception independently with
	// probability LossRate.
	ChannelBernoulli
	// ChannelGilbertElliott is the classic two-state burst-loss chain:
	// receptions are lost while the link sits in its bad state. The chain
	// is parameterized so the stationary loss probability is LossRate and
	// Burstiness is the lag-one state correlation — at Burstiness 0 the
	// state is redrawn independently every reception and the process is
	// exactly Bernoulli(LossRate).
	ChannelGilbertElliott
)

// Config describes a reproducible fault plan.
type Config struct {
	// Seed drives every stream of the plan.
	Seed int64
	// Channel selects the per-link loss model.
	Channel ChannelKind
	// LossRate is the stationary per-reception loss probability, in [0, 1).
	LossRate float64
	// Burstiness, in [0, 1), is the Gilbert–Elliott state persistence:
	// the chain leaves its current state with probability scaled by
	// (1 - Burstiness), so expected bad-state sojourns (loss bursts)
	// stretch by 1/(1-Burstiness). Ignored by the other channel kinds.
	Burstiness float64
	// CrashFraction of the nodes die mid-round, at times drawn uniformly
	// in [CrashStart, CrashEnd] (seconds of simulated time).
	CrashFraction        float64
	CrashStart, CrashEnd float64
	// Protect lists nodes the crash schedule must never pick (the sink).
	Protect []network.NodeID
	// CorruptRate is the probability a report delivered to the sink is
	// corrupted in place: its isoposition is replaced by a uniform point
	// of the field and its gradient re-rotated, modeling payload damage
	// that slipped past the frame check.
	CorruptRate float64
	// DuplicateRate is the probability a delivered report is duplicated
	// at the sink, modeling transport-layer replays.
	DuplicateRate float64
}

// Crash is one scheduled node death.
type Crash struct {
	Node network.NodeID
	Time float64
}

// linkState is the channel state of one directed link.
type linkState struct {
	rng *rand.Rand
	bad bool
}

// Plan is a materialized fault plan. The zero value injects no faults.
type Plan struct {
	cfg     Config
	crashes []Crash
	// mu guards the lazily grown links map: sharded rounds draw channels
	// from several shards at once. Each directed link is only ever drawn
	// from the receiver's shard, so the per-link state itself needs no
	// lock — only the map.
	mu    sync.RWMutex
	links map[uint64]*linkState
	sink  *rand.Rand
}

// New validates the config and materializes the plan (including the crash
// schedule over a network of n nodes).
func New(cfg Config, n int) (*Plan, error) {
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("faults: loss rate %g outside [0, 1)", cfg.LossRate)
	}
	if cfg.Burstiness < 0 || cfg.Burstiness >= 1 {
		return nil, fmt.Errorf("faults: burstiness %g outside [0, 1)", cfg.Burstiness)
	}
	if cfg.CrashFraction < 0 || cfg.CrashFraction > 1 {
		return nil, fmt.Errorf("faults: crash fraction %g outside [0, 1]", cfg.CrashFraction)
	}
	if cfg.CrashEnd < cfg.CrashStart {
		return nil, fmt.Errorf("faults: crash window [%g, %g] inverted", cfg.CrashStart, cfg.CrashEnd)
	}
	if cfg.CorruptRate < 0 || cfg.CorruptRate > 1 || cfg.DuplicateRate < 0 || cfg.DuplicateRate > 1 {
		return nil, fmt.Errorf("faults: sink rates (%g, %g) outside [0, 1]", cfg.CorruptRate, cfg.DuplicateRate)
	}
	p := &Plan{cfg: cfg}
	if cfg.CrashFraction > 0 && n > 0 {
		p.crashes = crashSchedule(cfg, n)
	}
	return p, nil
}

// crashSchedule picks round(fraction*n) unprotected nodes and a uniform
// crash time per node, sorted by (time, node).
func crashSchedule(cfg Config, n int) []Crash {
	protected := make(map[network.NodeID]bool, len(cfg.Protect))
	for _, id := range cfg.Protect {
		protected[id] = true
	}
	target := int(math.Round(cfg.CrashFraction * float64(n)))
	rng := rand.New(rand.NewSource(mix(uint64(cfg.Seed), 0x6372617368)))
	var crashes []Crash
	for _, i := range rng.Perm(n) {
		if len(crashes) >= target {
			break
		}
		if protected[network.NodeID(i)] {
			continue
		}
		t := cfg.CrashStart + rng.Float64()*(cfg.CrashEnd-cfg.CrashStart)
		crashes = append(crashes, Crash{Node: network.NodeID(i), Time: t})
	}
	sort.Slice(crashes, func(a, b int) bool {
		if crashes[a].Time != crashes[b].Time {
			return crashes[a].Time < crashes[b].Time
		}
		return crashes[a].Node < crashes[b].Node
	})
	return crashes
}

// Empty reports whether the plan injects nothing, so consumers can skip
// installing hooks entirely and stay on the exact fault-free code path.
func (p *Plan) Empty() bool {
	return p == nil || (!p.HasChannel() && len(p.crashes) == 0 &&
		p.cfg.CorruptRate == 0 && p.cfg.DuplicateRate == 0)
}

// HasChannel reports whether the plan carries a lossy channel model.
func (p *Plan) HasChannel() bool {
	return p != nil && p.cfg.Channel != ChannelPerfect && p.cfg.LossRate > 0
}

// Crashes returns the crash schedule, sorted by time.
func (p *Plan) Crashes() []Crash {
	if p == nil {
		return nil
	}
	return p.crashes
}

// Lose draws the channel for one reception on the directed link from->to,
// returning true when the frame is erased. Each link evolves its own
// seeded stream, so the draw sequence depends only on the order of
// receptions on that link.
func (p *Plan) Lose(from, to network.NodeID) bool {
	if !p.HasChannel() {
		return false
	}
	st := p.linkStateFor(from, to)
	switch p.cfg.Channel {
	case ChannelBernoulli:
		return st.rng.Float64() < p.cfg.LossRate
	case ChannelGilbertElliott:
		lost := st.bad
		// Leave-state probabilities scaled by (1 - burstiness): at
		// burstiness 0 the next state is stationary-independent of the
		// current one, i.e. Bernoulli(LossRate).
		if st.bad {
			if st.rng.Float64() < (1-p.cfg.LossRate)*(1-p.cfg.Burstiness) {
				st.bad = false
			}
		} else {
			if st.rng.Float64() < p.cfg.LossRate*(1-p.cfg.Burstiness) {
				st.bad = true
			}
		}
		return lost
	}
	return false
}

// linkStateFor lazily creates the per-link stream; the Gilbert–Elliott
// start state is drawn from the stationary distribution.
func (p *Plan) linkStateFor(from, to network.NodeID) *linkState {
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	p.mu.RLock()
	st, ok := p.links[key]
	p.mu.RUnlock()
	if ok {
		return st
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.links[key]; ok {
		return st
	}
	if p.links == nil {
		p.links = make(map[uint64]*linkState)
	}
	st = &linkState{rng: rand.New(rand.NewSource(mix(uint64(p.cfg.Seed), key)))}
	if p.cfg.Channel == ChannelGilbertElliott {
		st.bad = st.rng.Float64() < p.cfg.LossRate
	}
	p.links[key] = st
	return st
}

// MangleSinkReports applies the sink-side corruption and duplication model
// to the round's delivered reports, in order. With both rates zero the
// input slice is returned untouched. bounds is the field rectangle the
// corrupted isopositions are drawn from.
func (p *Plan) MangleSinkReports(reports []core.Report, bounds geom.Polygon) []core.Report {
	if p == nil || (p.cfg.CorruptRate == 0 && p.cfg.DuplicateRate == 0) || len(reports) == 0 {
		return reports
	}
	if p.sink == nil {
		p.sink = rand.New(rand.NewSource(mix(uint64(p.cfg.Seed), 0x73696e6b)))
	}
	x0, y0, x1, y1 := bounds.BoundingBox()
	out := make([]core.Report, 0, len(reports))
	for _, r := range reports {
		if p.cfg.CorruptRate > 0 && p.sink.Float64() < p.cfg.CorruptRate {
			r.Pos = geom.Point{
				X: x0 + p.sink.Float64()*(x1-x0),
				Y: y0 + p.sink.Float64()*(y1-y0),
			}
			theta := p.sink.Float64() * 2 * math.Pi
			r.Grad = geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)}
		}
		out = append(out, r)
		if p.cfg.DuplicateRate > 0 && p.sink.Float64() < p.cfg.DuplicateRate {
			out = append(out, r)
		}
	}
	return out
}

// Signature serializes everything that determines the plan's behavior —
// the config, the materialized crash schedule and the per-link stream
// seeds are all pure functions of it — without consuming any stream
// state. Plans built from equal configs have byte-identical signatures.
func (p *Plan) Signature() []byte {
	var b []byte
	put := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	putF := func(v float64) { put(math.Float64bits(v)) }
	if p == nil {
		return []byte{0}
	}
	put(uint64(p.cfg.Seed))
	put(uint64(p.cfg.Channel))
	putF(p.cfg.LossRate)
	putF(p.cfg.Burstiness)
	putF(p.cfg.CrashFraction)
	putF(p.cfg.CrashStart)
	putF(p.cfg.CrashEnd)
	putF(p.cfg.CorruptRate)
	putF(p.cfg.DuplicateRate)
	for _, id := range p.cfg.Protect {
		put(uint64(uint32(id)))
	}
	for _, c := range p.crashes {
		put(uint64(uint32(c.Node)))
		putF(c.Time)
	}
	return b
}

// mix is splitmix64 over the xor of seed and salt: cheap, well-spread
// stream separation for the per-consumer RNGs.
func mix(seed, salt uint64) int64 {
	z := seed ^ salt ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}
