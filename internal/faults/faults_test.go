package faults

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"isomap/internal/core"
	"isomap/internal/geom"
	"isomap/internal/network"
)

func TestZeroValuePlanInjectsNothing(t *testing.T) {
	var p Plan
	if !p.Empty() {
		t.Error("zero-value plan should be empty")
	}
	if p.Lose(1, 2) {
		t.Error("zero-value plan lost a frame")
	}
	if p.Crashes() != nil {
		t.Error("zero-value plan has crashes")
	}
	reports := []core.Report{{Level: 6, Pos: geom.Point{X: 1, Y: 2}}}
	if got := p.MangleSinkReports(reports, geom.Rect(0, 0, 10, 10)); len(got) != 1 || got[0] != reports[0] {
		t.Errorf("zero-value plan mangled reports: %v", got)
	}
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.Lose(0, 1) {
		t.Error("nil plan should be empty and lossless")
	}
}

func TestNewValidates(t *testing.T) {
	bad := []Config{
		{LossRate: -0.1},
		{LossRate: 1},
		{Burstiness: -0.5},
		{Burstiness: 1},
		{CrashFraction: 1.5},
		{CrashStart: 2, CrashEnd: 1},
		{CorruptRate: -1},
		{DuplicateRate: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, 100); err == nil {
			t.Errorf("config %+v: want error", cfg)
		}
	}
}

func TestBernoulliLossRate(t *testing.T) {
	p, err := New(Config{Seed: 7, Channel: ChannelBernoulli, LossRate: 0.3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lost, n := 0, 200000
	for i := 0; i < n; i++ {
		if p.Lose(network.NodeID(i%50), network.NodeID((i+1)%50)) {
			lost++
		}
	}
	rate := float64(lost) / float64(n)
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("empirical loss rate %.4f, want 0.3 +- 0.01", rate)
	}
}

// TestGilbertElliottZeroBurstinessMatchesBernoulli checks the channel
// satellite: at burstiness 0 the Gilbert–Elliott chain redraws its state
// independently every reception, so its loss process is statistically
// indistinguishable from Bernoulli at the same rate.
func TestGilbertElliottZeroBurstinessMatchesBernoulli(t *testing.T) {
	const lossRate = 0.25
	const n = 200000
	sample := func(kind ChannelKind) (rate, lag1 float64) {
		p, err := New(Config{Seed: 3, Channel: kind, LossRate: lossRate}, 0)
		if err != nil {
			t.Fatal(err)
		}
		lost := 0
		pairs, both := 0, 0
		prev := false
		for i := 0; i < n; i++ {
			l := p.Lose(4, 9) // one link: the chain state is per link
			if l {
				lost++
			}
			if i > 0 {
				pairs++
				if l && prev {
					both++
				}
			}
			prev = l
		}
		return float64(lost) / n, float64(both) / float64(pairs)
	}
	bRate, bLag := sample(ChannelBernoulli)
	gRate, gLag := sample(ChannelGilbertElliott)
	if math.Abs(bRate-gRate) > 0.01 {
		t.Errorf("loss rates diverge: bernoulli %.4f vs GE(0) %.4f", bRate, gRate)
	}
	// Consecutive-loss frequency must match the independent product p^2
	// for both processes (no burst correlation at burstiness 0).
	want := lossRate * lossRate
	if math.Abs(bLag-want) > 0.01 || math.Abs(gLag-want) > 0.01 {
		t.Errorf("lag-1 loss-pair freq: bernoulli %.4f, GE(0) %.4f, want %.4f +- 0.01", bLag, gLag, want)
	}
}

// TestGilbertElliottBurstinessStretchesBursts checks that positive
// burstiness preserves the stationary rate but lengthens loss runs.
func TestGilbertElliottBurstinessStretchesBursts(t *testing.T) {
	const lossRate = 0.2
	const n = 300000
	meanRun := func(burst float64) (rate, run float64) {
		p, err := New(Config{Seed: 11, Channel: ChannelGilbertElliott, LossRate: lossRate, Burstiness: burst}, 0)
		if err != nil {
			t.Fatal(err)
		}
		lost, runs, cur := 0, 0, 0
		var total int
		for i := 0; i < n; i++ {
			if p.Lose(1, 2) {
				lost++
				cur++
			} else if cur > 0 {
				runs++
				total += cur
				cur = 0
			}
		}
		if cur > 0 {
			runs++
			total += cur
		}
		return float64(lost) / n, float64(total) / float64(runs)
	}
	r0, run0 := meanRun(0)
	r8, run8 := meanRun(0.8)
	if math.Abs(r0-lossRate) > 0.01 || math.Abs(r8-lossRate) > 0.015 {
		t.Errorf("stationary rate drifted: %.4f (burst 0), %.4f (burst 0.8), want %.2f", r0, r8, lossRate)
	}
	// Expected run length is 1/pBG = 1/((1-p)(1-b)): 1.25 at b=0, 6.25 at b=0.8.
	if run8 < 3*run0 {
		t.Errorf("burstiness 0.8 mean run %.2f not much longer than burst 0's %.2f", run8, run0)
	}
}

func TestCrashScheduleRespectsProtectAndFraction(t *testing.T) {
	const n = 500
	p, err := New(Config{
		Seed: 5, CrashFraction: 0.2, CrashStart: 0.1, CrashEnd: 0.9,
		Protect: []network.NodeID{3, 250},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	crashes := p.Crashes()
	if len(crashes) != 100 {
		t.Fatalf("crash count %d, want 100", len(crashes))
	}
	seen := make(map[network.NodeID]bool)
	for i, c := range crashes {
		if c.Node == 3 || c.Node == 250 {
			t.Errorf("protected node %d crashed", c.Node)
		}
		if seen[c.Node] {
			t.Errorf("node %d crashes twice", c.Node)
		}
		seen[c.Node] = true
		if c.Time < 0.1 || c.Time > 0.9 {
			t.Errorf("crash time %g outside window", c.Time)
		}
		if i > 0 && crashes[i-1].Time > c.Time {
			t.Error("crash schedule not sorted by time")
		}
	}
}

func TestMangleSinkReportsRates(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	in := make([]core.Report, 20000)
	for i := range in {
		in[i] = core.Report{Level: 6, Pos: geom.Point{X: 25, Y: 25}, Grad: geom.Vec{X: 1}}
	}
	p, err := New(Config{Seed: 2, CorruptRate: 0.1, DuplicateRate: 0.05}, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := p.MangleSinkReports(in, bounds)
	dups := len(out) - len(in)
	if math.Abs(float64(dups)/float64(len(in))-0.05) > 0.01 {
		t.Errorf("duplication rate %.4f, want 0.05 +- 0.01", float64(dups)/float64(len(in)))
	}
	corrupted := 0
	for _, r := range out {
		if r.Pos != in[0].Pos {
			corrupted++
			x0, y0, x1, y1 := bounds.BoundingBox()
			if r.Pos.X < x0 || r.Pos.X > x1 || r.Pos.Y < y0 || r.Pos.Y > y1 {
				t.Fatalf("corrupted position %v escaped the field", r.Pos)
			}
		}
	}
	// Corrupted originals plus their duplicates; rate over output.
	if corrupted == 0 {
		t.Error("no report was corrupted at rate 0.1")
	}
}

// TestPlanByteIdenticalAcrossRunsAndWidths checks the determinism
// satellite: plans built from one config are byte-identical whether built
// serially, repeatedly, or from many goroutines at any width — the
// construction is a pure function of the config.
func TestPlanByteIdenticalAcrossRunsAndWidths(t *testing.T) {
	cfg := Config{
		Seed: 42, Channel: ChannelGilbertElliott, LossRate: 0.2, Burstiness: 0.6,
		CrashFraction: 0.1, CrashStart: 0.05, CrashEnd: 0.5,
		Protect:     []network.NodeID{17},
		CorruptRate: 0.02, DuplicateRate: 0.01,
	}
	ref, err := New(cfg, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Signature()
	for _, width := range []int{1, 4, 16} {
		sigs := make([][]byte, width*3)
		var wg sync.WaitGroup
		for i := range sigs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p, err := New(cfg, 400)
				if err != nil {
					t.Error(err)
					return
				}
				sigs[i] = p.Signature()
			}(i)
		}
		wg.Wait()
		for i, sig := range sigs {
			if !bytes.Equal(sig, want) {
				t.Fatalf("width %d, plan %d: signature diverged", width, i)
			}
		}
	}
	// The channel streams behind equal signatures also replay identically.
	a, _ := New(cfg, 400)
	b, _ := New(cfg, 400)
	for i := 0; i < 5000; i++ {
		from, to := network.NodeID(i%23), network.NodeID((i*7+1)%23)
		if a.Lose(from, to) != b.Lose(from, to) {
			t.Fatalf("channel draw %d diverged between equal plans", i)
		}
	}
}
