package trace

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"sort"
)

// SortCanonical sorts events into the canonical order: by timestamp,
// ties broken by the serialized JSONL line. Execution order among
// same-timestamp events is an engine-internal detail (sharded runs
// interleave shards arbitrarily within a synchronization window); the
// canonical order depends only on the event multiset, so two runs are
// canonically equal exactly when they recorded the same events at the
// same times.
func SortCanonical(events []Event) {
	lines := make([][]byte, len(events))
	idx := make([]int, len(events))
	for i := range events {
		lines[i] = AppendJSONL(nil, events[i])
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if events[i].T != events[j].T {
			return events[i].T < events[j].T
		}
		return bytes.Compare(lines[i], lines[j]) < 0
	})
	out := make([]Event, len(events))
	for p, i := range idx {
		out[p] = events[i]
	}
	copy(events, out)
}

// CanonicalDigest returns the hex MD5 of the canonically sorted JSONL
// serialization of events — a multiset fingerprint: equal iff the two
// traces recorded the same events at the same times, regardless of
// execution interleaving. The input is not modified.
func CanonicalDigest(events []Event) string {
	cp := make([]Event, len(events))
	copy(cp, events)
	SortCanonical(cp)
	h := md5.New()
	var line []byte
	for i := range cp {
		line = AppendJSONL(line[:0], cp[i])
		line = append(line, '\n')
		h.Write(line)
	}
	return hex.EncodeToString(h.Sum(nil))
}
