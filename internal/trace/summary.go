package trace

import "isomap/internal/energy"

// PhaseBreakdown aggregates one protocol phase's link-layer activity —
// the per-phase cost localization the aggregate round stats cannot give.
type PhaseBreakdown struct {
	Phase string `json:"phase"`
	// Tx/TxBytes count physical transmissions (retries and acks
	// included) attributed to the phase; Rx/RxBytes count charged
	// receptions.
	Tx      int64 `json:"tx"`
	TxBytes int64 `json:"txBytes"`
	Rx      int64 `json:"rx"`
	RxBytes int64 `json:"rxBytes"`
	// Delivered counts exactly-once upper-layer deliveries.
	Delivered int64 `json:"delivered"`
	// Sends counts unicast data frames entering the link layer.
	Sends int64 `json:"sends"`
	// Drop accounting, split by cause.
	Drops         int64 `json:"drops"`
	DropRetries   int64 `json:"dropRetries"`
	DropDeadline  int64 `json:"dropDeadline"`
	DropDead      int64 `json:"dropDead"`
	Backoffs      int64 `json:"backoffs"`
	Retries       int64 `json:"retries"`
	Collisions    int64 `json:"collisions"`
	ChannelLosses int64 `json:"channelLosses"`
	// TxJoules/RxJoules convert the byte totals through the Mica2 radio
	// model: where the round's energy actually went, phase by phase.
	TxJoules float64 `json:"txJoules"`
	RxJoules float64 `json:"rxJoules"`
	// FirstT/LastT span the phase's activity in simulated seconds.
	FirstT float64 `json:"firstT"`
	LastT  float64 `json:"lastT"`
}

// StageTiming is one sink-side reconstruction stage measurement.
type StageTiming struct {
	Stage string `json:"stage"`
	// Level is the isolevel index the stage ran for, or -1 for
	// whole-map stages (raster).
	Level int `json:"level"`
	// Nanos is the wall-clock duration.
	Nanos int64 `json:"nanos"`
}

// Summary is the aggregated view of a recorded trace: per-phase
// breakdown tables plus round-level totals. It is what
// cmd/benchreport -kind trace emits into BENCH_TRACE.json.
type Summary struct {
	// Events counts aggregated events; DroppedEvents counts ring
	// overwrites (nonzero means the breakdown undercounts).
	Events        int64 `json:"events"`
	DroppedEvents int64 `json:"droppedEvents"`
	// Round totals.
	Sends       int64 `json:"sends"`
	Delivered   int64 `json:"delivered"`
	Acked       int64 `json:"acked"`
	Drops       int64 `json:"drops"`
	Crashes     int64 `json:"crashes"`
	Reparents   int64 `json:"reparents"`
	Severed     int64 `json:"severed"`
	QueryHeard  int64 `json:"queryHeard"`
	Generated   int64 `json:"generated"`
	SinkReports int64 `json:"sinkReports"`
	// Delta-mode totals: level transits reported, repeats withheld at the
	// source, and stale sink entries aged out (zero outside delta rounds).
	Crossings     int64   `json:"crossings,omitempty"`
	Suppressed    int64   `json:"suppressed,omitempty"`
	AgeExpired    int64   `json:"ageExpired,omitempty"`
	RoundSeconds  float64 `json:"roundSeconds"`
	SinkDelivered int64   `json:"sinkDelivered"`
	// Phases lists the per-phase breakdowns in fixed order (query,
	// measure, collect, link, none), omitting phases with no activity.
	Phases []PhaseBreakdown `json:"phases"`
	// SinkStages lists the reconstruction stage timings in recording
	// order (empty when the sink path was not traced).
	SinkStages []StageTiming `json:"sinkStages,omitempty"`
}

// Summarize aggregates the recorder's held events.
func (r *Recorder) Summarize() Summary {
	return Summarize(r.Events(), r.Dropped())
}

// Summarize aggregates a trace into per-phase breakdowns and round
// totals. dropped is the number of events lost to ring overwrite.
func Summarize(events []Event, dropped int64) Summary {
	s := Summary{Events: int64(len(events)), DroppedEvents: dropped}
	var phases [phaseCount]PhaseBreakdown
	var seen [phaseCount]bool
	touch := func(ev Event) *PhaseBreakdown {
		pb := &phases[ev.Phase]
		if !seen[ev.Phase] || ev.T < pb.FirstT {
			pb.FirstT = ev.T
		}
		if !seen[ev.Phase] || ev.T > pb.LastT {
			pb.LastT = ev.T
		}
		seen[ev.Phase] = true
		return pb
	}
	for _, ev := range events {
		switch ev.Kind {
		case KindSend:
			touch(ev).Sends++
			s.Sends++
		case KindTx:
			pb := touch(ev)
			pb.Tx++
			pb.TxBytes += int64(ev.Bytes)
		case KindRx:
			pb := touch(ev)
			pb.Rx++
			pb.RxBytes += int64(ev.Bytes)
		case KindDeliver:
			touch(ev).Delivered++
			s.Delivered++
		case KindAck:
			touch(ev)
			s.Acked++
		case KindDrop, KindDead:
			pb := touch(ev)
			pb.Drops++
			s.Drops++
			switch ev.Cause {
			case CauseRetries:
				pb.DropRetries++
			case CauseDeadline:
				pb.DropDeadline++
			case CauseSenderDead:
				pb.DropDead++
			}
		case KindBackoff:
			touch(ev).Backoffs++
		case KindRetry:
			touch(ev).Retries++
		case KindCollision:
			touch(ev).Collisions++
		case KindChanLoss:
			touch(ev).ChannelLosses++
		case KindCrash:
			s.Crashes++
		case KindReparent:
			s.Reparents++
		case KindSevered:
			s.Severed++
		case KindQueryHeard:
			s.QueryHeard++
		case KindGenerate:
			s.Generated += int64(ev.Arg)
		case KindSinkReport:
			s.SinkReports += int64(ev.Arg)
		case KindCrossing:
			s.Crossings++
		case KindSuppress:
			s.Suppressed++
		case KindAgeExpire:
			s.AgeExpired++
		case KindRoundEnd:
			s.RoundSeconds = ev.T
			s.SinkDelivered = ev.Seq
		case KindSinkStage:
			s.SinkStages = append(s.SinkStages, StageTiming{
				Stage: Stage(ev.Arg).String(),
				Level: int(ev.Seq),
				Nanos: ev.DurNs,
			})
		}
	}
	for _, p := range []Phase{PhaseQuery, PhaseMeasure, PhaseCollect, PhaseLink, PhaseNone} {
		if !seen[p] {
			continue
		}
		pb := phases[p]
		pb.Phase = p.String()
		pb.TxJoules = energy.TxJoules(pb.TxBytes)
		pb.RxJoules = energy.RxJoules(pb.RxBytes)
		s.Phases = append(s.Phases, pb)
	}
	return s
}
