package trace

import (
	"bufio"
	"io"
	"strconv"
)

// AppendJSONL appends the canonical one-line JSON form of ev to b. The
// encoding is deterministic: fixed key order, shortest round-trip float
// formatting, and optional keys (cause, durns) present exactly when
// nonzero — so byte-level comparison of two traces is event-level
// comparison.
func AppendJSONL(b []byte, ev Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.T, 'g', -1, 64)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","phase":"`...)
	b = append(b, ev.Phase.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(ev.Node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(ev.Peer), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, ev.Seq, 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, int64(ev.Bytes), 10)
	b = append(b, `,"arg":`...)
	b = strconv.AppendInt(b, int64(ev.Arg), 10)
	b = append(b, `,"fk":`...)
	b = strconv.AppendInt(b, int64(ev.FrameKind), 10)
	if ev.Cause != CauseNone {
		b = append(b, `,"cause":"`...)
		b = append(b, ev.Cause.String()...)
		b = append(b, '"')
	}
	if ev.DurNs != 0 {
		b = append(b, `,"durns":`...)
		b = strconv.AppendInt(b, ev.DurNs, 10)
	}
	b = append(b, '}', '\n')
	return b
}

// WriteJSONL writes the recorder's held events as canonical JSONL, one
// event per line, in recording order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Events())
}

// WriteJSONL writes events as canonical JSONL, one event per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, ev := range events {
		line = AppendJSONL(line[:0], ev)
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
