package trace

import (
	"sort"
	"testing"
)

// canonicalFixture is a small trace with timestamp ties: three events at
// t=0.5 whose JSONL lines differ, plus earlier and later singletons.
func canonicalFixture() []Event {
	return []Event{
		{T: 0.5, Kind: KindTx, Node: 7, Peer: 3, Seq: 41, Bytes: 24},
		{T: 0.25, Kind: KindSend, Node: 1, Peer: 2, Seq: 40, Bytes: 24},
		{T: 0.5, Kind: KindRx, Node: 3, Peer: 7, Seq: 41, Bytes: 24},
		{T: 0.75, Kind: KindAck, Node: 7, Seq: 41},
		{T: 0.5, Kind: KindBackoff, Node: 9, Arg: 1},
	}
}

func TestSortCanonicalOrder(t *testing.T) {
	evs := canonicalFixture()
	SortCanonical(evs)
	for i := 1; i < len(evs); i++ {
		if evs[i-1].T > evs[i].T {
			t.Fatalf("event %d at t=%v after t=%v", i, evs[i].T, evs[i-1].T)
		}
		if evs[i-1].T == evs[i].T {
			a := string(AppendJSONL(nil, evs[i-1]))
			b := string(AppendJSONL(nil, evs[i]))
			if a >= b {
				t.Fatalf("tie at t=%v not line-ordered:\n%s\n%s", evs[i].T, a, b)
			}
		}
	}
}

// TestCanonicalDigestPermutationInvariant pins the property the sharded
// engine's trace merge rests on: the digest is a multiset fingerprint,
// identical for every interleaving of the same events and different as
// soon as one event changes.
func TestCanonicalDigestPermutationInvariant(t *testing.T) {
	base := canonicalFixture()
	want := CanonicalDigest(base)
	// Every permutation of 5 events, generated deterministically.
	perm := make([]Event, len(base))
	idx := []int{0, 1, 2, 3, 4}
	var recurse func(k int)
	checked := 0
	recurse = func(k int) {
		if k == len(idx) {
			for p, i := range idx {
				perm[p] = base[i]
			}
			if got := CanonicalDigest(perm); got != want {
				t.Fatalf("permutation %v digest %s, want %s", idx, got, want)
			}
			checked++
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			recurse(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	recurse(0)
	if checked != 120 {
		t.Fatalf("checked %d permutations, want 120", checked)
	}
	// CanonicalDigest must not reorder its input.
	if base[0].Kind != KindTx || base[1].Kind != KindSend {
		t.Fatal("CanonicalDigest mutated its input slice")
	}
	mutated := canonicalFixture()
	mutated[2].Bytes++
	if CanonicalDigest(mutated) == want {
		t.Fatal("digest unchanged after mutating an event")
	}
	shorter := canonicalFixture()[:4]
	if CanonicalDigest(shorter) == want {
		t.Fatal("digest unchanged after dropping an event")
	}
}

// TestSortCanonicalStableUnderPresort: canonical order is idempotent and
// agrees with an independently computed (T, line) sort.
func TestSortCanonicalStableUnderPresort(t *testing.T) {
	evs := canonicalFixture()
	SortCanonical(evs)
	once := make([]Event, len(evs))
	copy(once, evs)
	SortCanonical(evs)
	for i := range evs {
		if evs[i] != once[i] {
			t.Fatalf("second sort moved event %d", i)
		}
	}
	ref := canonicalFixture()
	lines := make([]string, len(ref))
	for i, ev := range ref {
		lines[i] = string(AppendJSONL(nil, ev))
	}
	type keyed struct {
		t    float64
		line string
	}
	keys := make([]keyed, len(ref))
	for i := range ref {
		keys[i] = keyed{ref[i].T, lines[i]}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].t != keys[b].t {
			return keys[a].t < keys[b].t
		}
		return keys[a].line < keys[b].line
	})
	for i := range once {
		if got := string(AppendJSONL(nil, once[i])); got != keys[i].line {
			t.Fatalf("position %d: SortCanonical line %s, reference sort %s", i, got, keys[i].line)
		}
	}
}
