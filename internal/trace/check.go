package trace

import "fmt"

// Violation is one invariant breach found by Check.
type Violation struct {
	// Invariant names the broken property (e.g. "frame-conservation").
	Invariant string
	// Seq and Node locate the offending frame/node where applicable.
	Seq  int64
	Node int32
	// Msg explains the breach.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: seq=%d node=%d: %s", v.Invariant, v.Seq, v.Node, v.Msg)
}

// CheckConfig tunes the invariant pass.
type CheckConfig struct {
	// MaxRetries, when positive, bounds per-frame KindRetry events (set
	// it to RadioConfig.MaxRetries).
	MaxRetries int
}

// Check runs the invariant pass over the recorder's held events,
// refusing truncated rings (a partial trace cannot prove conservation).
func (r *Recorder) Check(cfg CheckConfig) []Violation {
	if r.Dropped() > 0 {
		return []Violation{{Invariant: "complete-trace",
			Msg: fmt.Sprintf("ring overwrote %d events; conservation is unprovable on a truncated trace", r.Dropped())}}
	}
	return Check(r.Events(), cfg)
}

// Check verifies the round-internal invariants of a complete recorded
// trace and returns every breach found (nil when the trace is sound):
//
//   - time-order: simulated timestamps never decrease (sink-stage
//     events, recorded after the round, are exempt);
//   - frame-conservation: every unicast data send reaches exactly one
//     sender-terminal outcome — acked, dropped, or dead with a crashed
//     sender — by round end (traces without a KindRoundEnd marker may
//     leave frames in flight); no terminal or delivery precedes its
//     send, and no frame is delivered twice to the same node;
//   - retry-bound: no frame retries more than cfg.MaxRetries times;
//   - reparent-downhill: every re-parent target sits at a strictly
//     lower frozen BFS level than the re-parenting node;
//   - crash-finality: a crashed node transmits, receives and delivers
//     nothing afterwards;
//   - sink-accounting: the fresh-report counts accepted at the sink sum
//     to the round's delivered total (KindRoundEnd.Seq).
//
// Together these turn the trace into a test oracle: properties that
// previously required printf archaeology become assertions.
func Check(events []Event, cfg CheckConfig) []Violation {
	var out []Violation
	type frameState struct {
		sent      bool
		terminals int
		retries   int
		delivered map[int32]bool
	}
	frames := make(map[int64]*frameState)
	frameAt := func(seq int64) *frameState {
		fs := frames[seq]
		if fs == nil {
			fs = &frameState{}
			frames[seq] = fs
		}
		return fs
	}
	crashedAt := make(map[int32]float64)
	var (
		lastT        float64
		sawRoundEnd  bool
		sinkAccepted int64
		sinkTotal    int64
	)
	for i, ev := range events {
		if ev.Kind == KindSinkStage || ev.Kind == KindAgeExpire {
			// Both happen at the sink after the simulated round; their T=0
			// timestamps are exempt from the time-order invariant.
			continue
		}
		if ev.T < lastT {
			out = append(out, Violation{Invariant: "time-order", Seq: ev.Seq, Node: ev.Node,
				Msg: fmt.Sprintf("event %d (%s) at t=%g after t=%g", i, ev.Kind, ev.T, lastT)})
		}
		lastT = ev.T

		if t, ok := crashedAt[ev.Node]; ok && ev.T > t {
			switch ev.Kind {
			case KindTx, KindRx, KindDeliver:
				out = append(out, Violation{Invariant: "crash-finality", Seq: ev.Seq, Node: ev.Node,
					Msg: fmt.Sprintf("%s at t=%g after crash at t=%g", ev.Kind, ev.T, t)})
			}
		}

		switch ev.Kind {
		case KindSend:
			fs := frameAt(ev.Seq)
			if fs.sent {
				out = append(out, Violation{Invariant: "frame-conservation", Seq: ev.Seq, Node: ev.Node,
					Msg: "duplicate send for one sequence number"})
			}
			fs.sent = true
		case KindAck, KindDrop, KindDead:
			fs := frameAt(ev.Seq)
			if !fs.sent {
				out = append(out, Violation{Invariant: "frame-conservation", Seq: ev.Seq, Node: ev.Node,
					Msg: fmt.Sprintf("%s without a preceding send", ev.Kind)})
			}
			fs.terminals++
			if fs.terminals > 1 {
				out = append(out, Violation{Invariant: "frame-conservation", Seq: ev.Seq, Node: ev.Node,
					Msg: fmt.Sprintf("%s is terminal outcome #%d", ev.Kind, fs.terminals)})
			}
		case KindDeliver:
			// Broadcast frames are delivered per node without a send
			// event; conservation binds deliveries only for unicast
			// frames (those with a send).
			if fs := frames[ev.Seq]; fs != nil {
				if fs.delivered == nil {
					fs.delivered = make(map[int32]bool)
				}
				if fs.delivered[ev.Node] {
					out = append(out, Violation{Invariant: "frame-conservation", Seq: ev.Seq, Node: ev.Node,
						Msg: "frame delivered twice to the same node"})
				}
				fs.delivered[ev.Node] = true
			}
		case KindRetry:
			fs := frameAt(ev.Seq)
			fs.retries++
			if cfg.MaxRetries > 0 && fs.retries > cfg.MaxRetries {
				out = append(out, Violation{Invariant: "retry-bound", Seq: ev.Seq, Node: ev.Node,
					Msg: fmt.Sprintf("retry %d exceeds MaxRetries %d", fs.retries, cfg.MaxRetries)})
			}
		case KindCrash:
			crashedAt[ev.Node] = ev.T
		case KindReparent:
			child, parent := UnpackLevels(ev.Arg)
			if parent >= child {
				out = append(out, Violation{Invariant: "reparent-downhill", Seq: ev.Seq, Node: ev.Node,
					Msg: fmt.Sprintf("new parent %d at level %d, node at level %d: repair must go strictly downhill", ev.Peer, parent, child)})
			}
		case KindSinkReport:
			sinkAccepted += int64(ev.Arg)
		case KindRoundEnd:
			sawRoundEnd = true
			sinkTotal = ev.Seq
		}
	}
	if sawRoundEnd {
		for seq, fs := range frames {
			if fs.sent && fs.terminals == 0 {
				out = append(out, Violation{Invariant: "frame-conservation", Seq: seq,
					Msg: "frame still pending at round end: never acked, dropped or dead"})
			}
		}
		if sinkAccepted != sinkTotal {
			out = append(out, Violation{Invariant: "sink-accounting",
				Msg: fmt.Sprintf("sink accepted %d fresh reports but the round delivered %d", sinkAccepted, sinkTotal)})
		}
	}
	return out
}

// CheckCounters cross-checks the trace's per-node transmitted and
// received byte totals against an independent accounting (the round's
// metrics.Counters, passed as accessors to keep this package
// dependency-light). The two paths — trace emission and energy charging
// — share emission sites in the radio, so any divergence means an event
// stream went missing.
func CheckCounters(events []Event, nodes int, txBytes, rxBytes func(node int32) int64) []Violation {
	tx := make([]int64, nodes)
	rx := make([]int64, nodes)
	for _, ev := range events {
		if ev.Node < 0 || int(ev.Node) >= nodes {
			continue
		}
		switch ev.Kind {
		case KindTx:
			tx[ev.Node] += int64(ev.Bytes)
		case KindRx:
			rx[ev.Node] += int64(ev.Bytes)
		}
	}
	var out []Violation
	for i := 0; i < nodes; i++ {
		if got, want := tx[i], txBytes(int32(i)); got != want {
			out = append(out, Violation{Invariant: "energy-accounting", Node: int32(i),
				Msg: fmt.Sprintf("trace tx bytes %d, counters charged %d", got, want)})
		}
		if got, want := rx[i], rxBytes(int32(i)); got != want {
			out = append(out, Violation{Invariant: "energy-accounting", Node: int32(i),
				Msg: fmt.Sprintf("trace rx bytes %d, counters charged %d", got, want)})
		}
	}
	return out
}
