package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestAppendJSONLCanonical(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{
			Event{T: 0.5, Kind: KindTx, Phase: PhaseQuery, Node: 3, Peer: -2, Seq: 9, Bytes: 8, FrameKind: 2},
			`{"t":0.5,"kind":"tx","phase":"query","node":3,"peer":-2,"seq":9,"bytes":8,"arg":0,"fk":2}`,
		},
		{
			Event{T: 1.25, Kind: KindDrop, Phase: PhaseCollect, Node: 4, Peer: 1, Seq: 77, Bytes: 36, Arg: 5, Cause: CauseRetries},
			`{"t":1.25,"kind":"drop","phase":"collect","node":4,"peer":1,"seq":77,"bytes":36,"arg":5,"fk":0,"cause":"retries"}`,
		},
		{
			Event{Kind: KindSinkStage, Node: -1, Peer: -1, Seq: 2, Arg: int32(StageRaster), DurNs: 12345},
			`{"t":0,"kind":"sinkstage","phase":"none","node":-1,"peer":-1,"seq":2,"bytes":0,"arg":3,"fk":0,"durns":12345}`,
		},
	}
	for _, tc := range cases {
		got := string(AppendJSONL(nil, tc.ev))
		if got != tc.want+"\n" {
			t.Errorf("AppendJSONL:\n got %q\nwant %q", got, tc.want+"\n")
		}
		// Every line must also be valid JSON.
		var m map[string]any
		if err := json.Unmarshal([]byte(tc.want), &m); err != nil {
			t.Errorf("line is not valid JSON: %v", err)
		}
	}
}

// TestJSONLShortestFloat pins the float encoding: shortest round-trip
// form, so equal times encode to equal bytes on every platform.
func TestJSONLShortestFloat(t *testing.T) {
	line := string(AppendJSONL(nil, Event{T: 0.8951663000550267, Kind: KindRoundEnd}))
	if !strings.HasPrefix(line, `{"t":0.8951663000550267,`) {
		t.Errorf("float not shortest-round-trip encoded: %s", line)
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{T: 0, Kind: KindSend, Seq: 1})
	r.Record(Event{T: 1, Kind: KindAck, Seq: 1})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"send"`) || !strings.Contains(lines[1], `"kind":"ack"`) {
		t.Errorf("lines out of order or mis-encoded: %v", lines)
	}
}
