package trace

import (
	"strings"
	"testing"
)

// cleanTrace is a minimal sound round: one broadcast delivery, one acked
// unicast, one dropped unicast, a crash with a dead pending frame, a
// downhill re-parent, and matching sink accounting.
func cleanTrace() []Event {
	return []Event{
		{T: 0.0, Kind: KindQueryHeard, Node: 0, Peer: 0, Phase: PhaseQuery},
		{T: 0.1, Kind: KindTx, Node: 0, Peer: -2, Seq: 1, Bytes: 8, Phase: PhaseQuery},
		{T: 0.2, Kind: KindDeliver, Node: 1, Peer: 0, Seq: 1, Phase: PhaseQuery},
		{T: 0.3, Kind: KindSend, Node: 1, Peer: 0, Seq: 2, Bytes: 36, Phase: PhaseCollect},
		{T: 0.4, Kind: KindDeliver, Node: 0, Peer: 1, Seq: 2, Phase: PhaseCollect},
		{T: 0.4, Kind: KindSinkReport, Node: 0, Peer: 1, Arg: 3, Phase: PhaseCollect},
		{T: 0.5, Kind: KindAck, Node: 1, Peer: 0, Seq: 2, Phase: PhaseCollect},
		{T: 0.6, Kind: KindSend, Node: 2, Peer: 3, Seq: 3, Bytes: 36, Phase: PhaseCollect},
		{T: 0.7, Kind: KindRetry, Node: 2, Peer: 3, Seq: 3, Arg: 1, Phase: PhaseCollect},
		{T: 0.8, Kind: KindDrop, Node: 2, Peer: 3, Seq: 3, Cause: CauseRetries, Phase: PhaseCollect},
		{T: 0.9, Kind: KindSend, Node: 4, Peer: 0, Seq: 4, Bytes: 36, Phase: PhaseCollect},
		{T: 1.0, Kind: KindCrash, Node: 4, Peer: -1},
		{T: 1.0, Kind: KindDead, Node: 4, Peer: 0, Seq: 4, Cause: CauseSenderDead, Phase: PhaseCollect},
		{T: 1.1, Kind: KindReparent, Node: 5, Peer: 6, Seq: 4, Arg: PackLevels(3, 2)},
		{T: 1.2, Kind: KindRoundEnd, Node: 0, Peer: -1, Seq: 3},
	}
}

func TestCheckCleanTracePasses(t *testing.T) {
	if v := Check(cleanTrace(), CheckConfig{MaxRetries: 7}); len(v) > 0 {
		t.Fatalf("clean trace reported %d violations, first: %v", len(v), v[0])
	}
}

// breakTrace mutates one aspect of the clean trace and asserts the named
// invariant — and only a violation mentioning it — fires.
func expectViolation(t *testing.T, invariant string, events []Event, cfg CheckConfig) {
	t.Helper()
	v := Check(events, cfg)
	if len(v) == 0 {
		t.Fatalf("expected a %s violation, trace passed", invariant)
	}
	for _, viol := range v {
		if viol.Invariant == invariant {
			if s := viol.String(); !strings.Contains(s, invariant) {
				t.Errorf("String() %q does not name the invariant", s)
			}
			return
		}
	}
	t.Fatalf("expected a %s violation, got %v", invariant, v)
}

func TestCheckTimeOrder(t *testing.T) {
	evs := cleanTrace()
	evs[3].T = 0.05 // send jumps backwards
	expectViolation(t, "time-order", evs, CheckConfig{})
}

func TestCheckSinkStageExemptFromTimeOrder(t *testing.T) {
	evs := append(cleanTrace(),
		Event{T: 0, Kind: KindSinkStage, Node: -1, Peer: -1, Seq: 0, Arg: int32(StageVoronoi), DurNs: 10})
	if v := Check(evs, CheckConfig{}); len(v) > 0 {
		t.Fatalf("post-round sink stage at t=0 flagged: %v", v[0])
	}
}

func TestCheckDuplicateSend(t *testing.T) {
	evs := cleanTrace()
	evs = append(evs, Event{T: 1.3, Kind: KindSend, Node: 1, Peer: 0, Seq: 2})
	expectViolation(t, "frame-conservation", evs, CheckConfig{})
}

func TestCheckDoubleTerminal(t *testing.T) {
	evs := cleanTrace()
	evs = append(evs, Event{T: 1.3, Kind: KindAck, Node: 2, Peer: 3, Seq: 3})
	expectViolation(t, "frame-conservation", evs, CheckConfig{})
}

func TestCheckTerminalWithoutSend(t *testing.T) {
	evs := []Event{{T: 0.1, Kind: KindDrop, Node: 1, Peer: 2, Seq: 9, Cause: CauseRetries}}
	expectViolation(t, "frame-conservation", evs, CheckConfig{})
}

func TestCheckPendingFrameAtRoundEnd(t *testing.T) {
	evs := []Event{
		{T: 0.1, Kind: KindSend, Node: 1, Peer: 0, Seq: 5},
		{T: 0.2, Kind: KindRoundEnd, Node: 0, Seq: 0},
	}
	expectViolation(t, "frame-conservation", evs, CheckConfig{})
	// Without the round-end marker the frame may legitimately be in
	// flight — a truncated trace must not be flagged.
	if v := Check(evs[:1], CheckConfig{}); len(v) > 0 {
		t.Errorf("in-flight frame without round end flagged: %v", v[0])
	}
}

func TestCheckDoubleDelivery(t *testing.T) {
	evs := []Event{
		{T: 0.1, Kind: KindSend, Node: 1, Peer: 0, Seq: 5},
		{T: 0.2, Kind: KindDeliver, Node: 0, Peer: 1, Seq: 5},
		{T: 0.3, Kind: KindDeliver, Node: 0, Peer: 1, Seq: 5},
		{T: 0.4, Kind: KindAck, Node: 1, Peer: 0, Seq: 5},
	}
	expectViolation(t, "frame-conservation", evs, CheckConfig{})
}

func TestCheckRetryBound(t *testing.T) {
	evs := []Event{
		{T: 0.1, Kind: KindSend, Node: 1, Peer: 0, Seq: 5},
		{T: 0.2, Kind: KindRetry, Node: 1, Peer: 0, Seq: 5, Arg: 1},
		{T: 0.3, Kind: KindRetry, Node: 1, Peer: 0, Seq: 5, Arg: 2},
		{T: 0.4, Kind: KindAck, Node: 1, Peer: 0, Seq: 5},
	}
	expectViolation(t, "retry-bound", evs, CheckConfig{MaxRetries: 1})
	if v := Check(evs, CheckConfig{MaxRetries: 2}); len(v) > 0 {
		t.Errorf("retries within bound flagged: %v", v[0])
	}
}

func TestCheckCrashFinality(t *testing.T) {
	evs := []Event{
		{T: 0.1, Kind: KindCrash, Node: 4, Peer: -1},
		{T: 0.2, Kind: KindTx, Node: 4, Peer: -2, Seq: 1, Bytes: 8},
	}
	expectViolation(t, "crash-finality", evs, CheckConfig{})
}

func TestCheckReparentDownhill(t *testing.T) {
	evs := []Event{
		{T: 0.1, Kind: KindReparent, Node: 5, Peer: 6, Arg: PackLevels(3, 3)},
	}
	expectViolation(t, "reparent-downhill", evs, CheckConfig{})
}

func TestCheckSinkAccounting(t *testing.T) {
	evs := cleanTrace()
	evs[len(evs)-1].Seq = 99 // round claims 99 delivered, sink accepted 3
	expectViolation(t, "sink-accounting", evs, CheckConfig{})
}

func TestCheckRefusesTruncatedRing(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{T: float64(i), Kind: KindTx, Seq: int64(i)})
	}
	v := r.Check(CheckConfig{})
	if len(v) != 1 || v[0].Invariant != "complete-trace" {
		t.Fatalf("truncated ring: got %v, want a single complete-trace violation", v)
	}
}

func TestCheckCounters(t *testing.T) {
	evs := []Event{
		{T: 0.1, Kind: KindTx, Node: 0, Bytes: 8},
		{T: 0.2, Kind: KindRx, Node: 1, Bytes: 8},
		{T: 0.3, Kind: KindTx, Node: 1, Bytes: 36},
		{T: 0.4, Kind: KindRx, Node: 0, Bytes: 36},
	}
	tx := []int64{8, 36}
	rx := []int64{36, 8}
	get := func(s []int64) func(int32) int64 { return func(n int32) int64 { return s[n] } }
	if v := CheckCounters(evs, 2, get(tx), get(rx)); len(v) > 0 {
		t.Fatalf("matching counters flagged: %v", v[0])
	}
	tx[1] = 44 // counters charged more than the trace saw
	v := CheckCounters(evs, 2, get(tx), get(rx))
	if len(v) != 1 || v[0].Invariant != "energy-accounting" || v[0].Node != 1 {
		t.Fatalf("got %v, want one energy-accounting violation at node 1", v)
	}
}
