//go:build !race

package trace

// raceEnabled reports whether the race detector is compiled in; the
// alloc-regression tests skip under it because instrumentation allocates.
const raceEnabled = false
