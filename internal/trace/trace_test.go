package trace

import (
	"strings"
	"testing"
)

func TestNilRecorderIsValid(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindTx}) // must not panic
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 || r.Capacity() != 0 {
		t.Error("nil recorder reports nonzero state")
	}
	if r.Events() != nil {
		t.Error("nil recorder returned events")
	}
	if s := r.Summarize(); s.Events != 0 {
		t.Error("nil recorder summarized events")
	}
	if v := r.Check(CheckConfig{}); v != nil {
		t.Errorf("nil recorder reported violations: %v", v)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Seq: int64(i)})
	}
	if r.Len() != 4 || r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d, want 4/10/6", r.Len(), r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d (oldest survivors, in order)", i, ev.Seq, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("reset did not empty the recorder")
	}
	if r.Capacity() != 4 {
		t.Error("reset dropped the ring storage")
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := NewRecorder(0).Capacity(); got != DefaultCapacity {
		t.Errorf("NewRecorder(0) capacity = %d, want DefaultCapacity %d", got, DefaultCapacity)
	}
}

// TestRecordZeroAllocs pins the hot-path contract from the package doc:
// recording an event into the preallocated ring performs zero heap
// allocations, wrap or no wrap.
func TestRecordZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	r := NewRecorder(1024)
	ev := Event{T: 1.5, Kind: KindTx, Phase: PhaseCollect, Node: 7, Peer: 9, Seq: 42, Bytes: 36}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4096; i++ { // wraps the ring 4x per run
			r.Record(ev)
		}
	})
	if allocs != 0 {
		t.Errorf("Record allocated %.2f allocs per 4096-event burst, want 0", allocs)
	}
}

func TestPackLevelsRoundTrip(t *testing.T) {
	for _, tc := range [][2]int{{0, 0}, {1, 0}, {12, 11}, {200, 199}, {0xffff, 0}} {
		c, p := UnpackLevels(PackLevels(tc[0], tc[1]))
		if c != tc[0] || p != tc[1] {
			t.Errorf("PackLevels(%d, %d) round-tripped to (%d, %d)", tc[0], tc[1], c, p)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for k := KindNone; k < kindCount; k++ {
		if s := k.String(); s == "" || s == "unknown" {
			t.Errorf("Kind %d has no name", k)
		}
	}
	for p := PhaseNone; p < phaseCount; p++ {
		if s := p.String(); s == "" || s == "unknown" {
			t.Errorf("Phase %d has no name", p)
		}
	}
	for s := StageVoronoi; s < stageCount; s++ {
		if n := s.String(); n == "" || n == "unknown" {
			t.Errorf("Stage %d has no name", s)
		}
	}
	// Cause zero value serializes empty (JSONL omits it); the rest named.
	if CauseNone.String() != "" {
		t.Error("CauseNone must serialize empty")
	}
	for c := CauseRetries; c <= CauseSenderDead; c++ {
		if s := c.String(); s == "" || s == "unknown" {
			t.Errorf("Cause %d has no name", c)
		}
	}
	if !strings.Contains(Kind(200).String(), "unknown") {
		t.Error("out-of-range Kind must print unknown")
	}
}
