// Package trace is the round observability layer: a zero-overhead-when-
// disabled structured event recorder threaded through the packet engine
// (internal/desim) and the sink reconstruction path (internal/contour).
//
// The aggregate numbers the evaluation reports — traffic in KB, per-node
// ops, map fidelity — say nothing about what happened *inside* a round:
// which phase dropped a frame, when a node re-parented, where the energy
// went. A Recorder captures exactly that as typed events keyed by node
// and simulated time, ring-buffered into preallocated storage so the hot
// path performs zero heap allocations per event (pinned by an
// AllocsPerRun test, like the engine it observes).
//
// The layer has three consumers:
//
//   - humans: Recorder.WriteJSONL serializes a deterministic JSONL trace
//     (cmd/isomapsim -roundtrace / -diag) for offline inspection;
//   - reports: Summarize aggregates per-phase breakdowns
//     (cmd/benchreport -kind trace, BENCH_TRACE.json);
//   - tests: Check runs an invariant pass over a recorded trace — frame
//     conservation, re-parent level monotonicity, crash finality, sink
//     report accounting — turning round-internal correctness into
//     assertable properties.
//
// Disabled-path guarantee: a nil *Recorder is valid everywhere and every
// emission site is behind a nil check. Recording never draws randomness,
// never schedules events and never mutates simulation state, so a traced
// round is byte-identical to an untraced one in every output.
package trace

// Kind tags what happened. The link-layer kinds mirror the emission
// points of desim.Radio one to one (each Kind*-documented counter in
// RadioStats has a matching event stream), the round kinds come from the
// full-round protocol driver, and KindSinkStage carries wall-clock stage
// timings of the sink-side reconstruction.
type Kind uint8

const (
	KindNone Kind = iota

	// Link layer (desim.Radio).
	KindSend      // unicast data frame entered the link layer (Node -> Peer)
	KindTx        // physical transmission: first tx, retransmission, ack, broadcast
	KindRx        // physical reception charged at Node (acks and duplicates included)
	KindDeliver   // exactly-once upper-layer delivery at Node
	KindAck       // sender Node saw the ack for Seq: the frame succeeded
	KindDrop      // sender Node abandoned Seq (Cause: retries or deadline)
	KindDead      // pending frame died with its crashed sender
	KindBackoff   // carrier-sense backoff (Arg: retry/try count so far)
	KindRetry     // ack timeout expired, retransmission scheduled (Arg: retry #)
	KindCollision // a reception at Node was corrupted by overlap
	KindChanLoss  // the injected channel erased Seq on the link Node -> Peer

	// Round protocol (desim.RunFullRoundFaults).
	KindCrash      // Node was killed by the fault plan
	KindReparent   // Node re-attached to Peer (Seq: old parent; Arg: packed levels)
	KindSevered    // Node lost every alive upward neighbor
	KindQueryHeard // Node received the flooded query for the first time
	KindGenerate   // Node produced Arg isoline reports after regression
	KindSinkReport // Arg fresh reports were accepted at the sink
	KindRequeue    // a dropped batch of Arg reports re-entered Node's outbox
	KindRoundEnd   // round drained; Seq: reports delivered at the sink

	// Sink reconstruction (contour). T is meaningless here — the round is
	// over; DurNs carries the wall-clock stage duration instead.
	KindSinkStage // Arg: Stage id; Seq: isolevel index or -1

	// Delta-report monitoring (desim delta mode + monitor.AgedMap).
	KindCrossing  // Node detected a level transit and reports (Arg: level index)
	KindSuppress  // Node stayed on its isoline; report withheld (Arg: level index)
	KindAgeExpire // sink aged out a stale report (Node: source; Arg: level index); post-round, T is 0

	kindCount // number of kinds, for aggregation arrays
)

var kindNames = [...]string{
	KindNone:       "none",
	KindSend:       "send",
	KindTx:         "tx",
	KindRx:         "rx",
	KindDeliver:    "deliver",
	KindAck:        "ack",
	KindDrop:       "drop",
	KindDead:       "dead",
	KindBackoff:    "backoff",
	KindRetry:      "retry",
	KindCollision:  "collision",
	KindChanLoss:   "chanloss",
	KindCrash:      "crash",
	KindReparent:   "reparent",
	KindSevered:    "severed",
	KindQueryHeard: "queryheard",
	KindGenerate:   "generate",
	KindSinkReport: "sinkreport",
	KindRequeue:    "requeue",
	KindRoundEnd:   "roundend",
	KindSinkStage:  "sinkstage",
	KindCrossing:   "crossing",
	KindSuppress:   "suppress",
	KindAgeExpire:  "age-expire",
}

// String returns the canonical lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Phase classifies an event into the protocol phase its frame belongs
// to: the query flood, the probe/measure exchange, the report
// convergecast, or pure link-layer machinery (acks).
type Phase uint8

const (
	PhaseNone Phase = iota
	PhaseQuery
	PhaseMeasure
	PhaseCollect
	PhaseLink

	phaseCount
)

var phaseNames = [...]string{
	PhaseNone:    "none",
	PhaseQuery:   "query",
	PhaseMeasure: "measure",
	PhaseCollect: "collect",
	PhaseLink:    "link",
}

// String returns the canonical lowercase name of the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Cause refines KindDrop/KindDead events with why the frame was
// abandoned.
type Cause uint8

const (
	CauseNone     Cause = iota
	CauseRetries        // MaxRetries exhausted
	CauseDeadline       // FrameDeadline exceeded
	CauseSenderDead
)

var causeNames = [...]string{
	CauseNone:       "",
	CauseRetries:    "retries",
	CauseDeadline:   "deadline",
	CauseSenderDead: "senderdead",
}

// String returns the canonical lowercase name of the cause ("" for none).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "unknown"
}

// Stage identifies a sink-side reconstruction stage (KindSinkStage.Arg).
type Stage int32

const (
	StageVoronoi  Stage = iota // Voronoi diagram of one isolevel's sites
	StageChords                // type-1 chord clipping
	StageRegulate              // Rules 1-2 regulation
	StageRaster                // scanline raster sweep

	stageCount
)

var stageNames = [...]string{
	StageVoronoi:  "voronoi",
	StageChords:   "chords",
	StageRegulate: "regulate",
	StageRaster:   "raster",
}

// String returns the canonical lowercase name of the stage.
func (s Stage) String() string {
	if s >= 0 && int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Event is one recorded happening: a fixed-size, pointer-free record so
// the ring buffer is a single flat array the garbage collector never
// scans. Field meaning varies with Kind (documented at each constant);
// unused fields are zero (Node/Peer use -1 for "no node").
type Event struct {
	// T is the simulated time in seconds (0 for KindSinkStage, which
	// happens after the simulated round).
	T float64
	// DurNs is the wall-clock duration in nanoseconds (KindSinkStage
	// only).
	DurNs int64
	// Seq is the frame sequence number, or an auxiliary id.
	Seq int64
	// Node is the primary node (-1 when not applicable).
	Node int32
	// Peer is the counterpart node: destination, source, or new parent.
	Peer int32
	// Bytes is the frame size on the air.
	Bytes int32
	// Arg carries a kind-specific small integer (retry count, report
	// count, packed levels, stage id).
	Arg int32
	// Kind tags the event; Phase and Cause refine it.
	Kind  Kind
	Phase Phase
	Cause Cause
	// FrameKind is the raw desim.FrameKind of the frame involved.
	FrameKind uint8
}

// PackLevels packs a re-parenting node's own BFS level and its new
// parent's level into KindReparent.Arg.
func PackLevels(childLevel, newParentLevel int) int32 {
	return int32(childLevel)<<16 | int32(newParentLevel&0xffff)
}

// UnpackLevels reverses PackLevels.
func UnpackLevels(arg int32) (childLevel, newParentLevel int) {
	return int(uint32(arg) >> 16), int(arg & 0xffff)
}

// DefaultCapacity is the ring size NewRecorder picks for capacity <= 0:
// large enough to hold a complete n=1k full round with headroom.
const DefaultCapacity = 1 << 20

// Recorder captures events into a preallocated ring. When the ring
// fills, the oldest events are overwritten and counted in Dropped; size
// the capacity to the round when a complete trace is required (Check
// refuses truncated traces).
//
// A nil *Recorder is a valid disabled recorder: Record is a no-op and
// the query methods return zeros. A Recorder is not safe for concurrent
// use — one recorder per simulated round, like the engine it observes.
type Recorder struct {
	buf []Event
	n   int64 // events ever recorded
}

// NewRecorder returns a recorder with the given ring capacity
// (DefaultCapacity when capacity <= 0). The ring is allocated up front;
// Record never allocates.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends an event. It is the hot path: no allocation, no branch
// beyond the ring wrap, and safe on a nil receiver so emission sites
// stay a plain nil check away from free.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.buf[r.n%int64(len(r.buf))] = ev
	r.n++
}

// Len returns the number of events currently held (at most the ring
// capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.n < int64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Total returns the number of events ever recorded, including
// overwritten ones.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns the number of events lost to ring overwrite.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	if d := r.n - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// Capacity returns the ring capacity.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Events returns the held events in recording order as a fresh slice
// (cold path; allocates).
func (r *Recorder) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	if r.n <= int64(len(r.buf)) {
		out := make([]Event, r.n)
		copy(out, r.buf[:r.n])
		return out
	}
	out := make([]Event, len(r.buf))
	head := int(r.n % int64(len(r.buf))) // oldest event
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// Reset empties the recorder, keeping its ring storage.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.n = 0
}
