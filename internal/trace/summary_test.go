package trace

import (
	"testing"

	"isomap/internal/energy"
)

func TestSummarizePhaseBreakdown(t *testing.T) {
	evs := []Event{
		{T: 0.0, Kind: KindQueryHeard, Node: 0, Phase: PhaseQuery},
		{T: 0.1, Kind: KindTx, Node: 0, Bytes: 8, Phase: PhaseQuery},
		{T: 0.2, Kind: KindRx, Node: 1, Bytes: 8, Phase: PhaseQuery},
		{T: 0.3, Kind: KindDeliver, Node: 1, Seq: 1, Phase: PhaseQuery},
		{T: 0.4, Kind: KindGenerate, Node: 1, Arg: 2, Phase: PhaseMeasure},
		{T: 0.45, Kind: KindTx, Node: 1, Bytes: 24, Phase: PhaseMeasure},
		{T: 0.5, Kind: KindSend, Node: 1, Seq: 2, Bytes: 36, Phase: PhaseCollect},
		{T: 0.6, Kind: KindTx, Node: 1, Seq: 2, Bytes: 36, Phase: PhaseCollect},
		{T: 0.7, Kind: KindRx, Node: 0, Seq: 2, Bytes: 36, Phase: PhaseCollect},
		{T: 0.8, Kind: KindDeliver, Node: 0, Seq: 2, Phase: PhaseCollect},
		{T: 0.8, Kind: KindSinkReport, Node: 0, Arg: 2, Phase: PhaseCollect},
		{T: 0.9, Kind: KindTx, Node: 0, Seq: 2, Bytes: 6, Phase: PhaseLink}, // the ack
		{T: 1.0, Kind: KindAck, Node: 1, Seq: 2, Phase: PhaseCollect},
		{T: 1.1, Kind: KindDrop, Node: 2, Seq: 3, Cause: CauseDeadline, Phase: PhaseCollect},
		{T: 1.2, Kind: KindRoundEnd, Node: 0, Seq: 2},
		{Kind: KindSinkStage, Seq: 0, Arg: int32(StageVoronoi), DurNs: 500},
		{Kind: KindSinkStage, Seq: -1, Arg: int32(StageRaster), DurNs: 900},
	}
	s := Summarize(evs, 0)
	if s.Events != int64(len(evs)) || s.DroppedEvents != 0 {
		t.Errorf("events=%d dropped=%d", s.Events, s.DroppedEvents)
	}
	if s.Sends != 1 || s.Acked != 1 || s.Drops != 1 || s.Delivered != 2 {
		t.Errorf("sends=%d acked=%d drops=%d delivered=%d, want 1/1/1/2", s.Sends, s.Acked, s.Drops, s.Delivered)
	}
	if s.Generated != 2 || s.SinkReports != 2 || s.SinkDelivered != 2 || s.RoundSeconds != 1.2 {
		t.Errorf("generated=%d sinkReports=%d sinkDelivered=%d roundSeconds=%g",
			s.Generated, s.SinkReports, s.SinkDelivered, s.RoundSeconds)
	}

	// Fixed phase order, inactive phases omitted (no "none" here).
	wantOrder := []string{"query", "measure", "collect", "link"}
	if len(s.Phases) != len(wantOrder) {
		t.Fatalf("got %d phases, want %d", len(s.Phases), len(wantOrder))
	}
	for i, pb := range s.Phases {
		if pb.Phase != wantOrder[i] {
			t.Errorf("phase %d = %q, want %q", i, pb.Phase, wantOrder[i])
		}
	}
	collect := s.Phases[2]
	if collect.Tx != 1 || collect.TxBytes != 36 || collect.Rx != 1 || collect.RxBytes != 36 {
		t.Errorf("collect tx=%d/%dB rx=%d/%dB, want 1/36B each way", collect.Tx, collect.TxBytes, collect.Rx, collect.RxBytes)
	}
	if collect.Drops != 1 || collect.DropDeadline != 1 || collect.DropRetries != 0 {
		t.Errorf("collect drop split: drops=%d deadline=%d retries=%d", collect.Drops, collect.DropDeadline, collect.DropRetries)
	}
	if collect.FirstT != 0.5 || collect.LastT != 1.1 {
		t.Errorf("collect span [%g, %g], want [0.5, 1.1]", collect.FirstT, collect.LastT)
	}
	if want := energy.TxJoules(36); collect.TxJoules != want {
		t.Errorf("collect txJoules=%g, want %g (Mica2 model)", collect.TxJoules, want)
	}

	if len(s.SinkStages) != 2 {
		t.Fatalf("got %d sink stages, want 2", len(s.SinkStages))
	}
	if s.SinkStages[0].Stage != "voronoi" || s.SinkStages[0].Level != 0 || s.SinkStages[0].Nanos != 500 {
		t.Errorf("stage 0 = %+v", s.SinkStages[0])
	}
	if s.SinkStages[1].Stage != "raster" || s.SinkStages[1].Level != -1 {
		t.Errorf("stage 1 = %+v", s.SinkStages[1])
	}
}

// TestSummarizeDeltaTallies covers the delta-protocol event vocabulary:
// crossings, source-side suppressions and sink-side age expiries roll up
// into their Summary totals and nothing else.
func TestSummarizeDeltaTallies(t *testing.T) {
	evs := []Event{
		{T: 0.4, Kind: KindCrossing, Node: 3, Peer: -1, Arg: 0, Phase: PhaseMeasure},
		{T: 0.4, Kind: KindCrossing, Node: 3, Peer: -1, Seq: 1, Arg: 1, Phase: PhaseMeasure}, // a retirement
		{T: 0.5, Kind: KindSuppress, Node: 4, Peer: -1, Arg: 0, Phase: PhaseMeasure},
		{Kind: KindAgeExpire, Node: 5, Peer: -1, Arg: 0},
	}
	s := Summarize(evs, 0)
	if s.Crossings != 2 || s.Suppressed != 1 || s.AgeExpired != 1 {
		t.Errorf("crossings=%d suppressed=%d ageExpired=%d, want 2/1/1",
			s.Crossings, s.Suppressed, s.AgeExpired)
	}
	if s.Sends != 0 || s.Delivered != 0 || s.Drops != 0 {
		t.Errorf("delta events leaked into radio totals: %+v", s)
	}
}
