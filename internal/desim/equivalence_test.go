package desim

import (
	"reflect"
	"testing"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/network"
)

// recordedEvent is one dispatch observed by the equivalence harness.
type recordedEvent struct {
	T  float64
	Ev Event
}

// TestEngineEquivalenceRandomWorkload drives the production Engine and
// the EngineNaive reference through identical randomized schedules —
// typed events, closures, nested re-scheduling, duplicate timestamps —
// and requires the dispatch traces to match event for event. This is the
// oracle property the whole rewrite rests on: the intrinsic event key
// (time, kind, node, seq, arg; insertion order last — see less) is a
// total order, so both heaps must pop the exact same sequence.
func TestEngineEquivalenceRandomWorkload(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		run := func(eng EngineAPI) []recordedEvent {
			var trace []recordedEvent
			eng.SetHandler(func(ev Event) {
				trace = append(trace, recordedEvent{T: eng.Now(), Ev: ev})
			})
			// Deterministic xorshift so both engines see identical input.
			state := uint64(seed)*2654435761 + 11
			next := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			var emit func(depth int)
			emit = func(depth int) {
				n := int(next()%8) + 1
				for i := 0; i < n; i++ {
					// Coarse delays force timestamp collisions, exercising
					// the intrinsic tiebreak.
					delay := float64(next()%5) * 0.25
					ev := Event{
						Kind: EventKind(next()%16) + 1,
						Node: network.NodeID(next() % 64),
						Seq:  int64(next() % 1024),
						Arg:  int32(next() % 128),
					}
					if next()%4 == 0 && depth < 3 {
						d := depth
						eng.Schedule(delay, func() { emit(d + 1) })
					} else {
						eng.ScheduleEvent(delay, ev)
					}
				}
			}
			emit(0)
			eng.Run()
			return trace
		}
		fast := run(NewEngine())
		naive := run(NewEngineNaive())
		if !reflect.DeepEqual(fast, naive) {
			t.Fatalf("seed %d: engines diverged after %d vs %d events", seed, len(fast), len(naive))
		}
		if len(fast) == 0 {
			t.Fatalf("seed %d: empty trace, workload generator broken", seed)
		}
	}
}

// TestEngineEquivalenceRunUntil pins RunUntil boundary behavior on both
// engines: events at the deadline run, later ones stay queued, and the
// clock lands exactly on the deadline.
func TestEngineEquivalenceRunUntil(t *testing.T) {
	for _, mk := range []func() EngineAPI{
		func() EngineAPI { return NewEngine() },
		func() EngineAPI { return NewEngineNaive() },
	} {
		eng := mk()
		var got []int64
		eng.SetHandler(func(ev Event) { got = append(got, ev.Seq) })
		eng.ScheduleEvent(1, Event{Kind: evMeasure, Seq: 1})
		eng.ScheduleEvent(2, Event{Kind: evMeasure, Seq: 2})
		eng.ScheduleEvent(3, Event{Kind: evMeasure, Seq: 3})
		eng.RunUntil(2)
		if len(got) != 2 || eng.Now() != 2 {
			t.Fatalf("RunUntil(2): got %v at t=%v", got, eng.Now())
		}
		eng.Run()
		if len(got) != 3 {
			t.Fatalf("drain after RunUntil: got %v", got)
		}
	}
}

// TestFullRoundEngineOracle runs the complete packet-level round on the
// production Engine and on the EngineNaive reference and requires the
// results — delivered reports, phase times, radio statistics, and the
// full per-node energy counters — to be deeply identical.
func TestFullRoundEngineOracle(t *testing.T) {
	for _, n := range []int{150, 400} {
		fast := func() *RoundResult {
			tree, f, q := fullRoundSetup(t, n)
			res, err := RunFullRoundEngine(NewEngine(), tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
			if err != nil {
				t.Fatal(err)
			}
			return res
		}()
		naive := func() *RoundResult {
			tree, f, q := fullRoundSetup(t, n)
			res, err := RunFullRoundEngine(NewEngineNaive(), tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
			if err != nil {
				t.Fatal(err)
			}
			return res
		}()
		if !reflect.DeepEqual(fast, naive) {
			t.Errorf("n=%d: full round diverged between engines:\n fast: %+v\nnaive: %+v", n, fast, naive)
		}
		if len(fast.Delivered) == 0 {
			t.Errorf("n=%d: oracle round delivered nothing", n)
		}
	}
}

// TestFullRoundFaultsEngineOracle is the oracle comparison under an
// aggressive fault plan: bursty channel loss, mid-round crashes (with
// route repair and transport re-queues), and sink-side mangling all must
// behave identically on both engines.
func TestFullRoundFaultsEngineOracle(t *testing.T) {
	cfg := faults.Config{
		Seed: 7, Channel: faults.ChannelGilbertElliott, LossRate: 0.15, Burstiness: 0.6,
		CrashFraction: 0.12, CrashStart: 0.05, CrashEnd: 0.5, DuplicateRate: 0.2,
	}
	run := func(eng EngineAPI) *RoundResult {
		tree, f, q := fullRoundSetup(t, 400)
		plan, err := faults.New(cfg, 400)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFullRoundFaultsEngine(eng, tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig(), plan)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(NewEngine())
	naive := run(NewEngineNaive())
	if !reflect.DeepEqual(fast, naive) {
		t.Errorf("faulted round diverged between engines:\n fast: %+v\nnaive: %+v", fast, naive)
	}
	if fast.Radio.ChannelLosses == 0 || fast.Crashed == 0 {
		t.Errorf("fault plan did not bite: %+v", fast.Radio)
	}
}

// TestCollectReportsEngineOracle compares the standalone convergecast on
// both engines, filters enabled.
func TestCollectReportsEngineOracle(t *testing.T) {
	run := func(eng EngineAPI) *CollectionResult {
		tree, reports := isoMapRound(t, 900, 3)
		res, err := CollectReportsEngine(eng, tree, reports, core.DefaultFilterConfig(), DefaultRadioConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(NewEngine())
	naive := run(NewEngineNaive())
	if !reflect.DeepEqual(fast, naive) {
		t.Errorf("collection diverged between engines:\n fast: %+v\nnaive: %+v", fast, naive)
	}
	if len(fast.Delivered) == 0 {
		t.Error("oracle collection delivered nothing")
	}
}
