package desim

import "testing"

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(2, func() { order = append(order, 2) })
	eng.Schedule(1, func() { order = append(order, 1) })
	eng.Schedule(3, func() { order = append(order, 3) })
	end := eng.Run()
	if end != 3 {
		t.Errorf("final time = %v, want 3", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if eng.Steps() != 3 {
		t.Errorf("Steps = %d", eng.Steps())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	eng := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.Schedule(1, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []float64
	eng.Schedule(1, func() {
		hits = append(hits, eng.Now())
		eng.Schedule(1, func() { hits = append(hits, eng.Now()) })
	})
	eng.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Errorf("hits = %v", hits)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	eng := NewEngine()
	ran := false
	eng.Schedule(5, func() {
		eng.Schedule(-10, func() { ran = true })
	})
	end := eng.Run()
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if end != 5 {
		t.Errorf("clock went backwards: %v", end)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var hits []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		eng.Schedule(d, func() { hits = append(hits, d) })
	}
	eng.RunUntil(2.5)
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want events <= 2.5", hits)
	}
	if eng.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", eng.Now())
	}
	eng.Run()
	if len(hits) != 4 {
		t.Errorf("remaining events lost: %v", hits)
	}
}
