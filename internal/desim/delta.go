package desim

import (
	"fmt"
	"math"

	"isomap/internal/core"
	"isomap/internal/network"
)

// Delta-report protocol mode: the progressive level-crossing tracking of
// the continuous-monitoring scenario, run on the real packet engine. An
// isoline node remembers what it last transmitted, per isolevel, across
// rounds. In a later round it transmits again only when the isoline
// *moved past it* — it newly straddles a level (crossing-in), its
// gradient rotated past the configured threshold (the contour is locally
// reshaping), or it stopped straddling a level it had reported
// (crossing-out, sent as a small retirement record so the sink drops the
// stale report). Unchanged repeats are suppressed at the source and
// never touch the radio. Full-report rounds (a nil DeltaState) remain
// the oracle: the delta path leaves them byte-identical.

// DefaultGradAngle is the gradient rotation above which a repeat is
// re-transmitted: 10 degrees, matching monitor.DefaultTemporal.
const DefaultGradAngle = 10 * math.Pi / 180

// DeltaConfig tunes the delta-report mode.
type DeltaConfig struct {
	// GradAngle is the gradient rotation (radians) at or above which a
	// tracked report is re-transmitted; smaller rotations are suppressed.
	// Zero selects DefaultGradAngle.
	GradAngle float64
}

// DeltaState is the protocol's cross-round memory: each node's last
// transmitted report per isolevel. It belongs to one deployment and must
// be passed to every successive delta round; sharded execution touches
// each node's entry only from the shard owning that node, so one state
// serves any shard width. Reset (or a fresh state) restarts the protocol
// from an empty map — round 1 of a delta sequence is byte-identical to a
// full-report round.
type DeltaState struct {
	gradAngle float64
	lastSent  []map[int]core.Report
}

// NewDeltaState validates cfg and returns an empty state for a
// deployment of nodes nodes.
func NewDeltaState(nodes int, cfg DeltaConfig) (*DeltaState, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("desim: delta state needs a positive node count, got %d", nodes)
	}
	ga := cfg.GradAngle
	if ga == 0 {
		ga = DefaultGradAngle
	}
	if math.IsNaN(ga) || math.IsInf(ga, 0) || ga < 0 || ga > math.Pi {
		return nil, fmt.Errorf("desim: delta gradient threshold %g outside [0, pi]", cfg.GradAngle)
	}
	return &DeltaState{
		gradAngle: ga,
		lastSent:  make([]map[int]core.Report, nodes),
	}, nil
}

// GradAngle returns the resolved gradient-rotation threshold.
func (ds *DeltaState) GradAngle() float64 { return ds.gradAngle }

// Nodes returns the deployment size the state was built for.
func (ds *DeltaState) Nodes() int { return len(ds.lastSent) }

// Tracked returns the number of (source, isolevel) pairs currently
// tracked — the sum of per-node transmitted-report sets.
func (ds *DeltaState) Tracked() int {
	n := 0
	for _, m := range ds.lastSent {
		n += len(m)
	}
	return n
}

// Reset empties the state: the next round reports everything, like a
// session start.
func (ds *DeltaState) Reset() {
	for i := range ds.lastSent {
		ds.lastSent[i] = nil
	}
}

// tracked returns the node's tracked-report count.
func (ds *DeltaState) trackedAt(id network.NodeID) int {
	return len(ds.lastSent[id])
}

// retireRecord builds the withdrawal record for a previously transmitted
// report: same identity (source, level), Retire set, the prior values
// carried so the sink can match its cache entry.
func retireRecord(prev core.Report) core.Report {
	return core.Report{
		Level:      prev.Level,
		LevelIndex: prev.LevelIndex,
		Pos:        prev.Pos,
		Grad:       prev.Grad,
		Source:     prev.Source,
		Retire:     true,
	}
}
