package desim

import (
	"fmt"
	"math"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
	"isomap/internal/trace"
)

// benchRoundSetup deploys an n-node network over the synthetic seabed with
// a radio range that keeps the graph connected at any density, mirroring
// fullRoundSetup but usable from benchmarks.
func benchRoundSetup(b *testing.B, n int) (*routing.Tree, field.Field, core.Query) {
	b.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := network.DeployUniform(n, f, radio, 4)
	if err != nil {
		b.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		b.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		b.Fatal(err)
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		b.Fatal(err)
	}
	return tree, f, q
}

func kLabel(n int) string {
	if n%1000 == 0 {
		return fmt.Sprintf("n=%dk", n/1000)
	}
	return fmt.Sprintf("n=%d", n)
}

// benchFullRound runs the complete packet-level round on the given
// engine constructor, reporting events/sec and ns/event alongside the
// standard time and allocation metrics.
func benchFullRound(b *testing.B, n int, mk func() EngineAPI) {
	tree, f, q := benchRoundSetup(b, n)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := RunFullRoundEngine(mk(), tree, f, q, fc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Delivered) == 0 {
			b.Fatal("round delivered nothing")
		}
		events += res.Events
	}
	b.StopTimer()
	if events > 0 {
		perRound := float64(events) / float64(b.N)
		b.ReportMetric(perRound/(b.Elapsed().Seconds()/float64(b.N)), "events/sec")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// BenchmarkFullRound measures a complete packet-level Iso-Map round
// (query flood, probes, filtered convergecast) at increasing network
// sizes on the production engine.
func BenchmarkFullRound(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		n := n
		b.Run(kLabel(n), func(b *testing.B) {
			benchFullRound(b, n, func() EngineAPI { return NewEngine() })
		})
	}
}

// BenchmarkFullRoundTraced is BenchmarkFullRound with a recorder
// attached: the delta against the untraced run is the whole cost of the
// observability layer (one ring store per event, no allocations).
func BenchmarkFullRoundTraced(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		n := n
		b.Run(kLabel(n), func(b *testing.B) {
			tree, f, q := benchRoundSetup(b, n)
			fc := core.DefaultFilterConfig()
			cfg := DefaultRadioConfig()
			rec := trace.NewRecorder(n * 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Reset()
				res, err := RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, nil, rec)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Delivered) == 0 || rec.Total() == 0 {
					b.Fatal("round delivered nothing or recorded nothing")
				}
			}
		})
	}
}

// BenchmarkFullRoundSharded runs the round on the sharded parallel
// engine over a grid partition, sweeping shard counts at a size where
// the per-window barrier cost is amortized. On a single-core host this
// measures the sharding overhead (windowing, mailbox barriers, trace
// merge) rather than speedup; the strong-scaling table in
// BENCH_DESIM.json is the multi-core view.
func BenchmarkFullRoundSharded(b *testing.B) {
	const n = 16000
	for _, shards := range []int{4, 16} {
		shards := shards
		b.Run(fmt.Sprintf("%s/shards=%d", kLabel(n), shards), func(b *testing.B) {
			tree, f, q := benchRoundSetup(b, n)
			fc := core.DefaultFilterConfig()
			cfg := DefaultRadioConfig()
			part := network.NewGridPartition(tree.Network(), shards)
			b.ReportAllocs()
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				res, err := RunFullRoundEngine(NewShardedEngine(part, 0), tree, f, q, fc, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Delivered) == 0 {
					b.Fatal("round delivered nothing")
				}
				events += res.Events
			}
			b.StopTimer()
			if events > 0 {
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
			}
		})
	}
}

// BenchmarkFullRoundNaive is the same round on the EngineNaive reference
// oracle — the pre-rewrite closure-per-event implementation — so the
// speedup and allocation ratios stay measurable in one `go test -bench`
// invocation. 16k is omitted: the naive engine exists for comparison,
// not for scale.
func BenchmarkFullRoundNaive(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		n := n
		b.Run(kLabel(n), func(b *testing.B) {
			benchFullRound(b, n, func() EngineAPI { return NewEngineNaive() })
		})
	}
}

// BenchmarkEngineSchedule isolates the scheduler: bursts of 1024 typed
// events — roughly the peak queue depth a 4k-node round reaches — are
// pushed with shuffled timestamps and drained, measuring pure push+pop
// cost without radio or protocol work.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := NewEngine()
	eng.SetHandler(func(Event) {})
	const burst = 1024
	for i := 0; i < burst; i++ {
		eng.ScheduleEvent(float64(i)*1e-4, Event{Kind: evMeasure, Seq: int64(i)})
	}
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 509 is coprime to 1024: timestamps arrive in scattered order.
		eng.ScheduleEvent(float64(i*509%burst)*1e-4, Event{Kind: evMeasure, Seq: int64(i), Arg: int32(i)})
		if i%burst == burst-1 {
			eng.Run()
		}
	}
	eng.Run()
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/event")
}
