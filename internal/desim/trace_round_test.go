package desim

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
	"isomap/internal/trace"
)

// traceRecorderFor sizes a ring so a full round at n nodes never wraps
// (Check refuses truncated traces).
func traceRecorderFor(n int) *trace.Recorder {
	return trace.NewRecorder(n * 1024)
}

// TestTracedRoundMatchesUntraced pins the disabled-path guarantee from
// the other side: attaching a recorder must not perturb the simulation.
// Every field of the round result — delivered reports, radio counters,
// phase times, event count — must be identical with and without tracing.
func TestTracedRoundMatchesUntraced(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 300)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()

	plain, err := RunFullRound(tree, f, q, fc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := traceRecorderFor(300)
	traced, err := RunFullRoundTraced(tree, f, q, fc, cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() == 0 {
		t.Fatal("recorder attached but nothing recorded")
	}
	if !reflect.DeepEqual(plain.Delivered, traced.Delivered) {
		t.Error("tracing changed the delivered reports")
	}
	if plain.Radio != traced.Radio {
		t.Errorf("tracing changed radio stats: %+v vs %+v", plain.Radio, traced.Radio)
	}
	if plain.TotalSeconds != traced.TotalSeconds || plain.Events != traced.Events {
		t.Errorf("tracing changed the round: t=%g/%g events=%d/%d",
			plain.TotalSeconds, traced.TotalSeconds, plain.Events, traced.Events)
	}
}

// TestFullRoundTraceInvariants runs the invariant oracle on a fault-free
// round: frame conservation, time order, crash finality, sink accounting
// and the trace-vs-counters energy cross-check must all hold.
func TestFullRoundTraceInvariants(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	cfg := DefaultRadioConfig()
	rec := traceRecorderFor(400)
	res, err := RunFullRoundTraced(tree, f, q, core.DefaultFilterConfig(), cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) == 0 {
		t.Fatal("round delivered nothing")
	}
	if v := rec.Check(trace.CheckConfig{MaxRetries: cfg.MaxRetries}); len(v) > 0 {
		for _, viol := range v[:min(len(v), 5)] {
			t.Error(viol)
		}
		t.Fatalf("%d invariant violations on a fault-free round", len(v))
	}
	nodes := tree.Network().Len()
	v := trace.CheckCounters(rec.Events(), nodes,
		func(n int32) int64 { return res.Counters.TxBytes(network.NodeID(n)) },
		func(n int32) int64 { return res.Counters.RxBytes(network.NodeID(n)) })
	if len(v) > 0 {
		t.Fatalf("trace/counters energy mismatch: %v (+%d more)", v[0], len(v)-1)
	}
}

// TestFullRoundTraceInvariantsSeededFaults is the property form: for any
// fault plan seed — lossy channel plus mid-round crashes with route
// repair — the recorded trace still satisfies every invariant, including
// frame conservation under dropped frames and dead senders.
func TestFullRoundTraceInvariantsSeededFaults(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	cfg.FrameDeadline = 1.5
	nodes := tree.Network().Len()

	property := func(seed uint8) bool {
		plan, err := faults.New(faults.Config{
			Seed: int64(seed) + 1, Channel: faults.ChannelBernoulli, LossRate: 0.08,
			CrashFraction: 0.05, CrashStart: 0.05, CrashEnd: 0.6,
			Protect: []network.NodeID{tree.Root()},
		}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		rec := traceRecorderFor(400)
		res, err := RunFullRoundFaultsTraced(tree, f, q, fc, cfg, plan, rec)
		if err != nil {
			t.Fatal(err)
		}
		if v := rec.Check(trace.CheckConfig{MaxRetries: cfg.MaxRetries}); len(v) > 0 {
			t.Logf("seed %d: first violation: %v", seed, v[0])
			return false
		}
		v := trace.CheckCounters(rec.Events(), nodes,
			func(n int32) int64 { return res.Counters.TxBytes(network.NodeID(n)) },
			func(n int32) int64 { return res.Counters.RxBytes(network.NodeID(n)) })
		if len(v) > 0 {
			t.Logf("seed %d: counters mismatch: %v", seed, v[0])
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// goldenDigest reduces a recorded round to a comparable fingerprint:
// event and per-kind counts plus the md5 of the canonically ordered
// JSONL bytes (trace.CanonicalDigest). The canonical order makes the
// digest a property of the event multiset: sharded runs, which merge
// per-shard recorders, produce the same digest as sequential ones.
func goldenDigest(rec *trace.Recorder) string {
	s := rec.Summarize()
	return fmt.Sprintf("events=%d sends=%d delivered=%d acked=%d drops=%d queryheard=%d generated=%d sinkreports=%d md5=%s",
		s.Events, s.Sends, s.Delivered, s.Acked, s.Drops, s.QueryHeard, s.Generated, s.SinkReports, trace.CanonicalDigest(rec.Events()))
}

// goldenTrace1k is the committed digest of the n=1000 seed-scenario round
// trace (fullRoundSetup deployment, default radio config). Regenerate
// with: go test -run TestGoldenTrace1k -v ./internal/desim (the failure
// message prints the new value). The float stream depends on strict IEEE
// evaluation order, so the literal comparison is gated to amd64; the
// engine-equivalence and determinism assertions below run everywhere.
const goldenTrace1k = "events=39137 sends=850 delivered=6792 acked=850 drops=0 queryheard=977 generated=74 sinkreports=33 md5=da278296e29d51c6b50ac29a9a8fdfc6"

func TestGoldenTrace1k(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1000 traced rounds")
	}
	tree, f, q := fullRoundSetup(t, 1000)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()

	run := func(eng EngineAPI) *trace.Recorder {
		rec := traceRecorderFor(1000)
		if _, err := RunFullRoundFaultsEngineTraced(eng, tree, f, q, fc, cfg, nil, rec); err != nil {
			t.Fatal(err)
		}
		if rec.Dropped() > 0 {
			t.Fatalf("ring truncated: %d dropped", rec.Dropped())
		}
		return rec
	}

	recEngine := run(NewEngine())
	digest := goldenDigest(recEngine)

	// The production engine and the naive oracle must record the exact
	// same event stream, byte for byte.
	recNaive := run(NewEngineNaive())
	if naive := goldenDigest(recNaive); naive != digest {
		t.Errorf("EngineNaive trace diverged:\n engine: %s\n naive:  %s", digest, naive)
	}

	// Concurrent traced rounds must not interfere. A round mutates its
	// network's sensed state, so each goroutine gets its own (identical,
	// same-seed) deployment; the recorders are per-round by contract.
	const workers = 4
	type setup struct {
		tree *routing.Tree
		f    field.Field
		q    core.Query
	}
	setups := make([]setup, workers)
	for i := range setups {
		tr, fl, qu := fullRoundSetup(t, 1000)
		setups[i] = setup{tr, fl, qu}
	}
	digests := make([]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := traceRecorderFor(1000)
			s := setups[i]
			if _, err := RunFullRoundFaultsEngineTraced(NewEngine(), s.tree, s.f, s.q, fc, cfg, nil, rec); err != nil {
				t.Error(err)
				return
			}
			digests[i] = goldenDigest(rec)
		}(i)
	}
	wg.Wait()
	for i, d := range digests {
		if d != digest {
			t.Errorf("concurrent round %d diverged:\n got  %s\n want %s", i, d, digest)
		}
	}

	if runtime.GOARCH != "amd64" {
		t.Skipf("golden literal pinned on amd64 (FMA contraction may shift floats on %s)", runtime.GOARCH)
	}
	if digest != goldenTrace1k {
		t.Errorf("golden trace digest changed:\n got  %s\n want %s\nIf the protocol or trace schema changed intentionally, update goldenTrace1k.", digest, goldenTrace1k)
	}
}
