package desim

import (
	"reflect"
	"testing"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/network"
)

func TestRadioChannelLossDropsAfterRetries(t *testing.T) {
	// Erase every 0->1 reception: the frame burns through its retries and
	// is dropped; the upper layer hears about it exactly once.
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetChannel(func(from, to network.NodeID) bool { return from == 0 && to == 1 })
	got, dropped := 0, 0
	r.OnReceive(1, func(network.NodeID, Frame) { got++ })
	r.OnDrop(func(f Frame) { dropped++ })
	if err := r.Send(0, 1, 16); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Errorf("delivered %d frames through an always-lossy link", got)
	}
	if dropped != 1 || r.Stats.Drops != 1 {
		t.Errorf("dropped %d (stats %d), want exactly 1", dropped, r.Stats.Drops)
	}
	if r.Stats.ChannelLosses != r.Stats.DataSent+r.Stats.Retries {
		t.Errorf("channel losses %d != transmissions %d", r.Stats.ChannelLosses, r.Stats.DataSent+r.Stats.Retries)
	}
}

func TestRadioChannelLostAcksDeduplicated(t *testing.T) {
	// Erase the reverse (ack) direction only: the data gets through every
	// time, acks never do, so the sender retries until it drops — but the
	// receiver must deliver the frame exactly once.
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetChannel(func(from, to network.NodeID) bool { return from == 1 && to == 0 })
	got := 0
	r.OnReceive(1, func(network.NodeID, Frame) { got++ })
	if err := r.Send(0, 1, 16); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 1 {
		t.Errorf("delivered %d times, want exactly 1 despite lost acks", got)
	}
	if r.Stats.Retries == 0 {
		t.Error("lost acks should force retries")
	}
}

func TestRadioFrameDeadlineBoundsRetryTail(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	cfg := DefaultRadioConfig()
	cfg.FrameDeadline = 0.05
	r, err := NewRadio(eng, nw, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetChannel(func(from, to network.NodeID) bool { return true }) // total outage
	var dropAt float64
	dropped := 0
	r.OnDrop(func(f Frame) { dropped++; dropAt = eng.Now() })
	if err := r.Send(0, 1, 16); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
	// The drop must land near the deadline, well before the ~12-retry
	// exponential tail (which runs far past 0.3 s for 16-byte frames).
	if dropAt < cfg.FrameDeadline || dropAt > cfg.FrameDeadline+0.1 {
		t.Errorf("dropped at t=%.3f, want within ~[%.2f, %.2f]", dropAt, cfg.FrameDeadline, cfg.FrameDeadline+0.1)
	}
}

func TestRadioCrashStopsAllParticipation(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	r.OnReceive(1, func(network.NodeID, Frame) { got++ })
	dropped := 0
	r.OnDrop(func(f Frame) { dropped++ })
	// The frame is queued while node 1 is alive; the crash lands while it
	// is still on the air, so the reception aborts, the acks never come,
	// and the sender's retries exhaust into a drop.
	if err := r.Send(0, 1, 16); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(1e-6, func() { r.Crash(1) })
	eng.Run()
	if got != 0 {
		t.Errorf("dead node received %d frames", got)
	}
	if dropped != 1 {
		t.Errorf("dropped %d, want 1 (the frame toward the crashed receiver)", dropped)
	}
	if nw.Alive(1) {
		t.Error("crashed node still alive")
	}
	// Once dead, the node is rejected at the Send API on both ends.
	if err := r.Send(0, 1, 16); err == nil {
		t.Error("send toward a known-dead node should error")
	}
	if err := r.Send(1, 2, 16); err == nil {
		t.Error("send from a dead node should error")
	}
	// Crashing twice is a no-op.
	r.Crash(1)
}

// TestOnDropRequeueDeliversExactlyOnce pins the transport-recovery
// contract the convergecast relies on: a dropped batch re-queued by the
// OnDrop hook reaches the destination exactly once — never zero (lost
// subtree) and never twice (duplicate reports at the sink).
func TestOnDropRequeueDeliversExactlyOnce(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	cfg := DefaultRadioConfig()
	r, err := NewRadio(eng, nw, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Outage on 0->1 long enough to exhaust MaxRetries once, then clear.
	losses := 0
	r.SetChannel(func(from, to network.NodeID) bool {
		if from == 0 && to == 1 && losses <= cfg.MaxRetries {
			losses++
			return true
		}
		return false
	})
	batch := []core.Report{{Level: 6, Source: 0}}
	got, requeues := 0, 0
	r.OnReceive(1, func(network.NodeID, Frame) { got++ })
	r.OnDrop(func(f Frame) {
		requeues++
		// The dropped frame's batch is recycled when this handler
		// returns: copy it before re-queueing.
		cp := append([]core.Report(nil), f.Batch...)
		eng.Schedule(32*cfg.SlotTime, func() { _ = r.SendReports(f.From, f.To, f.Bytes, cp) })
	})
	if err := r.SendReports(0, 1, core.ReportBytes, batch); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if requeues != 1 {
		t.Errorf("re-queued %d times, want exactly 1", requeues)
	}
	if got != 1 {
		t.Errorf("delivered %d times, want exactly 1", got)
	}
}

func TestRunFullRoundFaultsEmptyPlanIdentical(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	base, err := RunFullRound(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	under, err := RunFullRoundFaults(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig(), &faults.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	// Counters are freshly allocated per round; everything else must be
	// bit-identical between the no-plan and empty-plan rounds.
	base.Counters, under.Counters = nil, nil
	if !reflect.DeepEqual(base, under) {
		t.Errorf("empty plan diverged:\n base: %+v\nunder: %+v", base, under)
	}
}

func TestRunFullRoundFaultsLossDegradesGracefully(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	base, err := RunFullRound(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	tree2, f2, q2 := fullRoundSetup(t, 400)
	plan, err := faults.New(faults.Config{Seed: 9, Channel: faults.ChannelBernoulli, LossRate: 0.2}, 400)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFullRoundFaults(tree2, f2, q2, core.DefaultFilterConfig(), DefaultRadioConfig(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radio.ChannelLosses == 0 {
		t.Fatal("no channel losses at rate 0.2")
	}
	if len(res.Delivered) == 0 {
		t.Fatal("lossy round delivered nothing: not graceful")
	}
	if len(res.Delivered) >= len(base.Delivered) {
		t.Errorf("loss 0.2 delivered %d >= fault-free %d", len(res.Delivered), len(base.Delivered))
	}
	assertUniqueReports(t, res.Delivered)
}

func TestRunFullRoundFaultsCrashRouteRepair(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 900)
	plan, err := faults.New(faults.Config{
		Seed: 5, CrashFraction: 0.15, CrashStart: 0.05, CrashEnd: 0.6,
		Protect: []network.NodeID{tree.Root()},
	}, tree.Network().Len())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFullRoundFaults(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed == 0 {
		t.Fatal("no node crashed at fraction 0.15")
	}
	if tree.Network().Alive(tree.Root()) == false {
		t.Fatal("protected sink crashed")
	}
	if len(res.Delivered) == 0 {
		t.Fatal("crash round delivered nothing: not graceful")
	}
	if res.Repairs == 0 {
		t.Error("15% mid-round crashes should force at least one route repair")
	}
	assertUniqueReports(t, res.Delivered)
}

func TestRunFullRoundFaultsDeterministic(t *testing.T) {
	cfg := faults.Config{
		Seed: 3, Channel: faults.ChannelGilbertElliott, LossRate: 0.15, Burstiness: 0.6,
		CrashFraction: 0.1, CrashStart: 0.05, CrashEnd: 0.5,
	}
	run := func() *RoundResult {
		tree, f, q := fullRoundSetup(t, 400)
		plan, err := faults.New(cfg, 400)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunFullRoundFaults(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig(), plan)
		if err != nil {
			t.Fatal(err)
		}
		res.Counters = nil
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("faulted rounds diverged:\n a: %+v\n b: %+v", a, b)
	}
}

func TestRunFullRoundFaultsSinkMangling(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	plan, err := faults.New(faults.Config{Seed: 1, DuplicateRate: 0.5}, 400)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFullRoundFaults(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig(), plan)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[core.Report]int)
	dups := 0
	for _, r := range res.Delivered {
		counts[r]++
		if counts[r] > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("duplicate rate 0.5 produced no duplicates at the sink")
	}
}

func assertUniqueReports(t *testing.T, reports []core.Report) {
	t.Helper()
	seen := make(map[core.Report]bool, len(reports))
	for _, r := range reports {
		if seen[r] {
			t.Fatalf("report %v delivered twice", r)
		}
		seen[r] = true
	}
}

// TestCrashRestoredAfterRound pins the env-reuse contract for faulted
// rounds: a crash is round-scoped, so the alive set must be fully restored
// once the round returns, and a fault-free round on the same network
// afterwards must match one on a never-faulted twin exactly.
func TestCrashRestoredAfterRound(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	n := tree.Network().Len()
	plan, err := faults.New(faults.Config{
		Seed: 5, CrashFraction: 0.2, CrashStart: 0.05, CrashEnd: 0.6,
		Protect: []network.NodeID{tree.Root()},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFullRoundFaults(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed == 0 {
		t.Fatal("no node crashed at fraction 0.2")
	}
	for id := 0; id < n; id++ {
		if !tree.Network().Alive(network.NodeID(id)) {
			t.Fatalf("node %d still Failed after the round returned", id)
		}
	}

	// A fault-free round on the post-crash network must equal one on a
	// never-faulted twin: no residue of the crashes may leak forward.
	after, err := RunFullRound(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	tree2, f2, q2 := fullRoundSetup(t, 400)
	fresh, err := RunFullRound(tree2, f2, q2, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	after.Counters, fresh.Counters = nil, nil
	if !reflect.DeepEqual(after, fresh) {
		t.Errorf("fault-free round after a crash round diverges from a never-faulted twin:\n after: %+v\n fresh: %+v", after, fresh)
	}
}
