package desim

import (
	"math"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func fullRoundSetup(t *testing.T, n int) (*routing.Tree, field.Field, core.Query) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	// Radio scales with node spacing to keep the graph connected.
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := network.DeployUniform(n, f, radio, 4)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	return tree, f, q
}

func TestRunFullRound(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 900)
	res, err := RunFullRound(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The query flood reaches (almost) every connected node; broadcast
	// flooding has no retransmission, so collisions can shadow a few.
	if res.QueryReached < tree.ReachableCount()*85/100 {
		t.Errorf("query reached %d of %d", res.QueryReached, tree.ReachableCount())
	}
	if res.IsolineNodes == 0 || res.Generated == 0 {
		t.Fatalf("no isoline nodes detected: %+v", res)
	}
	if len(res.Delivered) == 0 {
		t.Fatal("no reports delivered")
	}
	if len(res.Delivered) > res.Generated {
		t.Errorf("delivered %d > generated %d", len(res.Delivered), res.Generated)
	}
	// Phases are ordered in time.
	if res.QuerySeconds <= 0 || res.MeasureSeconds < res.QuerySeconds ||
		res.TotalSeconds < res.MeasureSeconds {
		t.Errorf("phase times out of order: %+v", res)
	}
	// The structural engine's detection count is the reference: the
	// packet-level round finds a comparable population (probe replies can
	// be lost, so slightly fewer is expected).
	nw := tree.Network()
	nw.Sense(f)
	structural := core.DetectIsolineNodes(nw, q, nil)
	if res.Generated < len(structural)/2 || res.Generated > len(structural)+5 {
		t.Errorf("packet-level generated %d far from structural %d", res.Generated, len(structural))
	}
}

func TestRunFullRoundNilTree(t *testing.T) {
	if _, err := RunFullRound(nil, nil, core.Query{}, core.FilterConfig{}, DefaultRadioConfig()); err == nil {
		t.Error("want error for nil tree")
	}
}

func TestRunFullRoundDeterministic(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	r1, err := RunFullRound(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFullRound(tree, f, q, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Generated != r2.Generated || len(r1.Delivered) != len(r2.Delivered) ||
		r1.TotalSeconds != r2.TotalSeconds {
		t.Errorf("non-deterministic rounds: %+v vs %+v", r1, r2)
	}
}
