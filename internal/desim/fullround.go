package desim

import (
	"fmt"
	"sort"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
	"isomap/internal/trace"
)

// RoundResult is the outcome of a full packet-level Iso-Map round.
type RoundResult struct {
	// QueryReached counts nodes that received the flooded query.
	QueryReached int
	// IsolineNodes counts nodes that appointed themselves.
	IsolineNodes int
	// Generated counts reports produced (after regression succeeded).
	Generated int
	// Delivered are the reports collected at the sink.
	Delivered []core.Report
	// QuerySeconds, MeasureSeconds and CollectSeconds are the phase
	// completion times; TotalSeconds is the whole round.
	QuerySeconds   float64
	MeasureSeconds float64
	CollectSeconds float64
	TotalSeconds   float64
	// Radio exposes the link-layer statistics.
	Radio RadioStats
	// ReplyDrops and ReportDrops split Radio.Drops by phase: probe
	// replies abandoned during measurement vs report batches abandoned
	// during collection.
	ReplyDrops  int
	ReportDrops int
	// Crossings, Suppressed and Retired are the delta-report mode's
	// source-side tally: reports transmitted because a level transit or
	// gradient rotation was detected, repeats withheld, and withdrawal
	// records sent for abandoned isolevels. All zero outside delta mode.
	Crossings  int
	Suppressed int
	Retired    int
	// Crashed counts nodes killed mid-round by the fault plan.
	Crashed int
	// Repairs counts successful re-parenting events: a node whose parent
	// went silent re-attached to a surviving lower-level neighbor.
	Repairs int
	// Severed counts nodes left with no alive upward neighbor after
	// their parent died — their queued reports are lost.
	Severed int
	// Counters holds the physical per-node tx/rx/ops charges of the
	// round (retries and acks included).
	Counters *metrics.Counters
	// Events is the number of simulator events executed.
	Events int64
}

// RunFullRound executes an entire Iso-Map round on the discrete-event
// radio: the sink floods the query (unacknowledged broadcast flood with
// duplicate suppression), nodes whose readings fall in the border region
// probe their neighborhood and run the regression when the replies are in,
// and the resulting reports converge-cast to the sink with in-network
// filtering. Every phase is made of real frames subject to carrier
// sensing, collisions and loss.
//
// Phase boundaries are realized with guard times rather than global
// barriers: a node starts its probe a fixed delay after hearing the query,
// and flushes its report once its reply-collection window closes — as a
// real deployment would, with no global clock.
func RunFullRound(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig) (*RoundResult, error) {
	return RunFullRoundFaults(tree, f, q, fc, cfg, nil)
}

// RunFullRoundFaults is RunFullRound under an injected fault plan: the
// plan's channel model erases receptions per link, its crash schedule
// kills nodes mid-round, and its sink model corrupts/duplicates delivered
// reports. The round degrades instead of wedging: a node whose parent
// goes silent — detected when a report batch toward it exhausts its
// retries or deadline — re-parents onto its best surviving lower-level
// neighbor (routing.Tree.BestAliveParentFunc under the radio's delayed
// liveness view) and re-queues the batch, so a crashed relay black-holes
// nothing but its own queue. A nil or empty plan leaves every code path
// untouched: the round is bit-identical to RunFullRound. Plans are
// stateful; pass a fresh one per round.
func RunFullRoundFaults(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan) (*RoundResult, error) {
	return RunFullRoundFaultsEngine(NewEngine(), tree, f, q, fc, cfg, plan)
}

// RunFullRoundEngine is RunFullRound on a caller-supplied scheduler.
func RunFullRoundEngine(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig) (*RoundResult, error) {
	return RunFullRoundFaultsEngine(eng, tree, f, q, fc, cfg, nil)
}

// RunFullRoundTraced is RunFullRound recording structured events into
// rec (see internal/trace). A nil recorder reduces to RunFullRound
// exactly.
func RunFullRoundTraced(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, rec *trace.Recorder) (*RoundResult, error) {
	return RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, nil, rec)
}

// RunFullRoundFaultsTraced is RunFullRoundFaults recording structured
// events into rec.
func RunFullRoundFaultsTraced(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, rec *trace.Recorder) (*RoundResult, error) {
	return RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, plan, rec)
}

// RunFullRoundSharded is RunFullRound on a ShardedEngine over a grid
// partition of the deployment into shards spatial cells, executing
// windows with up to workers goroutines (0 selects GOMAXPROCS). The
// result is byte-identical to RunFullRound at any shard and worker
// count.
func RunFullRoundSharded(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, shards, workers int) (*RoundResult, error) {
	return RunFullRoundShardedTraced(tree, f, q, fc, cfg, nil, shards, workers, nil)
}

// RunFullRoundShardedTraced is the sharded round with fault injection and
// tracing. Each shard records into its own recorder (sized to rec's
// capacity) and the per-shard traces are merged canonically — sorted by
// (timestamp, serialized line) — into rec after the run, so the merged
// trace depends only on what happened, not on shard interleaving.
func RunFullRoundShardedTraced(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, shards, workers int, rec *trace.Recorder) (*RoundResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	if shards < 1 {
		return nil, fmt.Errorf("desim: shard count %d < 1", shards)
	}
	part := network.NewGridPartition(tree.Network(), shards)
	return RunFullRoundFaultsEngineTraced(NewShardedEngine(part, workers), tree, f, q, fc, cfg, plan, rec)
}

// Windows (in seconds) shaping the round: how long a node listens for
// probe replies before regressing, and the convergecast batching delay.
const (
	probeDelay  = 0.05 // after hearing the query
	replyWindow = 0.25 // reply collection span
)

// roundState is the cross-shard state of one full round. The per-node
// slices are shared by all shards but every index is only ever touched
// from the shard owning that node (receive handlers, flushes and
// measurements all run on the owner), so no locking is needed.
type roundState struct {
	nw      *network.Network
	tree    *routing.Tree
	q       core.Query
	fc      core.FilterConfig
	cfg     RadioConfig
	plan    *faults.Plan
	crashes []faults.Crash
	root    network.NodeID

	// delta, when non-nil, switches the round into delta-report mode;
	// it carries the cross-round per-node transmitted-report memory.
	delta *DeltaState

	queryHeard  []bool
	samples     [][]core.Sample
	kept        [][]core.Report
	seenReports []map[core.Report]bool
	outbox      [][]core.Report
	flushArmed  []bool
	// parentOf is the round's mutable routing state, seeded from the BFS
	// tree; route repair rewrites an entry when its parent goes silent.
	parentOf []network.NodeID
	severed  []bool

	shards []*roundShard
}

// roundShard is the shard-bound half: one scheduler, one radio, one
// trace recorder and one partial tally per shard. A sequential round is
// the one-shard special case. Partial results merge by summation (maxima
// for the phase times) after the run.
type roundShard struct {
	rs    *roundState
	eng   EngineAPI
	radio *Radio
	rec   *trace.Recorder
	res   RoundResult
	// crashed records the nodes this shard killed so their Failed marks
	// can be lifted once the round is tallied. A crash is a round-scoped
	// radio event, not a permanent topology edit: callers reuse the
	// network (and trees bound to it) across rounds under the contract
	// that nothing a round does survives it except node values, and a
	// lingering Failed mark silently shrinks every later round.
	crashed []network.NodeID
	parked  parkedBatches

	// Scratch buffers reused across frames and measurements; their
	// contents are consumed before the next call that fills them.
	freshScratch  []core.Report
	matchScratch  []int
	sampleScratch []core.Sample
	reportScratch []core.Report
	deltaScratch  []core.Report
	levelScratch  []int
}

// jitterFor spreads per-node delays quasi-uniformly over a window of
// slots, deterministically: synchronized rebroadcasts are what kill
// unacknowledged floods.
func (rs *roundState) jitterFor(id network.NodeID, spreadSlots int) float64 {
	h := uint64(id)*2654435761 + 97
	h ^= h >> 13
	return float64(1+h%uint64(spreadSlots)) * rs.cfg.SlotTime
}

func (sh *roundShard) accept(at network.NodeID, incoming []core.Report) []core.Report {
	rs := sh.rs
	if rs.seenReports[at] == nil {
		rs.seenReports[at] = make(map[core.Report]bool)
	}
	fresh := sh.freshScratch[:0]
	for _, r := range incoming {
		if rs.seenReports[at][r] {
			continue
		}
		rs.seenReports[at][r] = true
		if r.Retire {
			// Withdrawal records bypass the spatial redundancy filter — a
			// retirement must always reach the sink — and stay out of kept,
			// which only grounds that filter's data-report comparisons.
			fresh = append(fresh, r)
			continue
		}
		if rs.fc.Enabled {
			dup := false
			for _, k := range rs.kept[at] {
				if rs.fc.Redundant(k, r) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		rs.kept[at] = append(rs.kept[at], r)
		fresh = append(fresh, r)
	}
	sh.freshScratch = fresh
	return fresh
}

func (sh *roundShard) forward(from network.NodeID, batch []core.Report) {
	rs := sh.rs
	if len(batch) == 0 || rs.parentOf[from] < 0 {
		return
	}
	rs.outbox[from] = append(rs.outbox[from], batch...)
	if rs.flushArmed[from] {
		return
	}
	rs.flushArmed[from] = true
	delay := float64(6+int(from)%5) * rs.cfg.SlotTime
	sh.eng.ScheduleEvent(delay, Event{Kind: evFlush, Node: from})
}

// flush empties a node's outbox into one frame toward its (possibly
// repaired) parent; the frame rides a pooled batch copy so the outbox
// keeps its capacity across flushes. Parent liveness is judged through
// the radio's propagation-delayed view — the same information a real
// node has — which is also what keeps sharded runs identical: a remote
// parent's crash becomes visible everywhere at the same simulated time.
func (sh *roundShard) flush(from network.NodeID) {
	rs := sh.rs
	rs.flushArmed[from] = false
	pending := rs.outbox[from]
	rs.outbox[from] = pending[:0]
	if len(pending) == 0 || !rs.nw.Alive(from) {
		return
	}
	parent := rs.parentOf[from]
	if !sh.radio.visibleAlive(parent) {
		// Route repair: re-attach to the best surviving lower-level
		// neighbor instead of black-holing the subtree behind a dead
		// parent.
		np, ok := rs.tree.BestAliveParentFunc(from, sh.radio.visibleAlive)
		if !ok {
			if !rs.severed[from] {
				rs.severed[from] = true
				sh.res.Severed++
				if sh.rec != nil {
					sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindSevered,
						Node: int32(from), Peer: int32(parent)})
				}
			}
			return
		}
		if sh.rec != nil {
			sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindReparent,
				Node: int32(from), Peer: int32(np), Seq: int64(parent),
				Arg: trace.PackLevels(rs.tree.Level(from), rs.tree.Level(np))})
		}
		rs.parentOf[from] = np
		parent = np
		sh.res.Repairs++
	}
	batch := append(sh.radio.pool.get(), pending...)
	size := 0
	for _, r := range pending {
		if r.Retire {
			size += core.RetireBytes
		} else {
			size += core.ReportBytes
		}
	}
	_ = sh.radio.SendReports(from, parent, size, batch)
}

func (sh *roundShard) handleDrop(fr Frame) {
	switch fr.Kind {
	case FrameReports:
		sh.res.ReportDrops++
		// Transport recovery: re-queue the batch exactly once per drop
		// after a pause; the flush path re-parents when the silent parent
		// turns out to be dead. The frame's batch is recycled when this
		// handler returns, so park a pooled copy until the re-queue event
		// fires. The event carries the frame seq so same-time requeues
		// order identically at any shard count (park slots are
		// shard-local and would not).
		slot := sh.parked.park(&sh.radio.pool, fr.Batch)
		sh.eng.ScheduleEvent(32*sh.rs.cfg.SlotTime, Event{Kind: evRequeue, Node: fr.From, Seq: fr.seq, Arg: slot})
	case FrameReply:
		// Probe replies are not recovered: the asker regresses over
		// whatever samples survive its reply window.
		sh.res.ReplyDrops++
	}
}

// measure runs Definition 3.1 + regression once a node's reply window
// closes, then injects the reports into the convergecast.
func (sh *roundShard) measure(id network.NodeID) {
	rs := sh.rs
	if !rs.nw.Alive(id) {
		return // crashed after probing
	}
	node := rs.nw.Node(id)
	levels := rs.q.Levels.Values()
	matched := sh.matchScratch[:0]
	for _, li := range rs.q.CandidateLevels(node.Value) {
		lambda := levels[li]
		for _, s := range rs.samples[id] {
			if (node.Value < lambda && lambda < s.Value) || (s.Value < lambda && lambda < node.Value) {
				matched = append(matched, li)
				break
			}
		}
	}
	sh.matchScratch = matched
	if len(matched) == 0 {
		// In delta mode a node that stopped straddling every level
		// withdraws what it last transmitted (crossing-out).
		sh.deltaRetireAll(id)
		return
	}
	all := append(sh.sampleScratch[:0], core.Sample{Pos: node.Pos, Value: node.Value})
	all = append(all, rs.samples[id]...)
	sh.sampleScratch = all
	grad, err := core.GradientByRegression(all)
	if err != nil || grad.Norm() <= geom.Eps {
		sh.deltaRetireAll(id)
		return
	}
	sh.res.IsolineNodes++
	reports := sh.reportScratch[:0]
	for _, li := range matched {
		reports = append(reports, core.Report{
			Level:      levels[li],
			LevelIndex: li,
			Pos:        node.Pos,
			Grad:       grad,
			Source:     id,
		})
	}
	sh.reportScratch = reports
	sh.res.Generated += len(reports)
	if sh.rec != nil {
		sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindGenerate,
			Node: int32(id), Peer: -1, Arg: int32(len(reports))})
	}
	if t := sh.eng.Now(); t > sh.res.MeasureSeconds {
		sh.res.MeasureSeconds = t
	}
	if rs.delta != nil {
		reports = sh.deltaFilter(id, reports)
		if len(reports) == 0 {
			return
		}
	}
	fresh := sh.accept(id, reports)
	if id == rs.root {
		sh.res.Delivered = append(sh.res.Delivered, fresh...)
		if sh.rec != nil {
			sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindSinkReport,
				Node: int32(rs.root), Peer: -1, Arg: int32(len(fresh))})
		}
		return
	}
	sh.forward(id, fresh)
}

// deltaFilter is the delta mode's source-side decision over a node's
// freshly produced reports: transmit level transits and sufficiently
// rotated gradients, suppress unchanged repeats, and append withdrawal
// records for tracked isolevels the node no longer straddles. The
// tracked set compares against the last *transmission*, so slow drift
// re-reports once its cumulative rotation crosses the threshold.
func (sh *roundShard) deltaFilter(id network.NodeID, reports []core.Report) []core.Report {
	rs := sh.rs
	ds := rs.delta
	last := ds.lastSent[id]
	now := sh.eng.Now()
	out := sh.deltaScratch[:0]
	for _, r := range reports {
		if prev, ok := last[r.LevelIndex]; ok && core.AngularSeparation(prev, r) < ds.gradAngle {
			sh.res.Suppressed++
			if sh.rec != nil {
				sh.rec.Record(trace.Event{T: now, Kind: trace.KindSuppress,
					Phase: trace.PhaseMeasure, Node: int32(id), Peer: -1, Arg: int32(r.LevelIndex)})
			}
			continue
		}
		if last == nil {
			last = make(map[int]core.Report)
			ds.lastSent[id] = last
		}
		last[r.LevelIndex] = r
		out = append(out, r)
		sh.res.Crossings++
		if sh.rec != nil {
			sh.rec.Record(trace.Event{T: now, Kind: trace.KindCrossing,
				Phase: trace.PhaseMeasure, Node: int32(id), Peer: -1, Arg: int32(r.LevelIndex)})
		}
	}
	// Crossing-out: tracked levels absent from this round's production.
	if len(last) > 0 {
		lis := sh.levelScratch[:0]
		for li := range last {
			still := false
			for _, r := range reports {
				if r.LevelIndex == li {
					still = true
					break
				}
			}
			if !still {
				lis = append(lis, li)
			}
		}
		sort.Ints(lis)
		sh.levelScratch = lis
		for _, li := range lis {
			out = append(out, sh.deltaRetireOne(id, last, li, now))
		}
	}
	sh.deltaScratch = out
	return out
}

// deltaRetireOne withdraws one tracked isolevel: it deletes the entry,
// tallies the retirement and returns the withdrawal record.
func (sh *roundShard) deltaRetireOne(id network.NodeID, last map[int]core.Report, li int, now float64) core.Report {
	prev := last[li]
	delete(last, li)
	sh.res.Retired++
	if sh.rec != nil {
		// A retirement is a crossing too — the isoline moved past the node
		// outward; Seq 1 distinguishes it from a crossing-in.
		sh.rec.Record(trace.Event{T: now, Kind: trace.KindCrossing,
			Phase: trace.PhaseMeasure, Node: int32(id), Peer: -1, Seq: 1, Arg: int32(li)})
	}
	return retireRecord(prev)
}

// deltaRetireAll withdraws everything a node tracks. It runs when a
// delta-mode node finds itself off every isoline: after a failed
// measurement, or via evDeltaRetire when the node was not even a border
// candidate this round.
func (sh *roundShard) deltaRetireAll(id network.NodeID) {
	rs := sh.rs
	if rs.delta == nil || !rs.nw.Alive(id) {
		return
	}
	last := rs.delta.lastSent[id]
	if len(last) == 0 {
		return
	}
	now := sh.eng.Now()
	lis := sh.levelScratch[:0]
	for li := range last {
		lis = append(lis, li)
	}
	sort.Ints(lis)
	sh.levelScratch = lis
	out := sh.deltaScratch[:0]
	for _, li := range lis {
		out = append(out, sh.deltaRetireOne(id, last, li, now))
	}
	sh.deltaScratch = out
	fresh := sh.accept(id, out)
	if id == rs.root {
		sh.res.Delivered = append(sh.res.Delivered, fresh...)
		if sh.rec != nil {
			sh.rec.Record(trace.Event{T: now, Kind: trace.KindSinkReport,
				Node: int32(rs.root), Peer: -1, Arg: int32(len(fresh))})
		}
		return
	}
	sh.forward(id, fresh)
}

// onFrame is the receive handler every alive node shares: query flood,
// probes, replies and report batches. It always runs on the shard owning
// the receiving node.
func (sh *roundShard) onFrame(at network.NodeID, fr Frame) {
	rs := sh.rs
	switch fr.Kind {
	case FrameQuery:
		if rs.queryHeard[at] {
			return
		}
		rs.queryHeard[at] = true
		sh.res.QueryReached++
		if sh.rec != nil {
			sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindQueryHeard,
				Phase: trace.PhaseQuery, Node: int32(at), Peer: int32(fr.From)})
		}
		if t := sh.eng.Now(); t > sh.res.QuerySeconds {
			sh.res.QuerySeconds = t
		}
		// Rebroadcast the flood once.
		sh.eng.ScheduleEvent(rs.jitterFor(at, 64), Event{Kind: evRebroadcast, Node: at})
		// Border-region candidates probe their neighborhood.
		if len(rs.q.CandidateLevels(rs.nw.Node(at).Value)) == 0 {
			if rs.delta != nil && rs.delta.trackedAt(at) > 0 {
				// The isoline moved entirely out of this node's border
				// region: withdraw its tracked reports on the same schedule
				// a measurement would have produced them.
				sh.eng.ScheduleEvent(probeDelay+replyWindow+rs.jitterFor(at+3000, 128),
					Event{Kind: evDeltaRetire, Node: at})
			}
			return
		}
		sh.eng.ScheduleEvent(probeDelay+rs.jitterFor(at+1000, 128), Event{Kind: evProbeStart, Node: at})
	case FrameProbe:
		sh.eng.ScheduleEvent(rs.jitterFor(at+2000, 32), Event{Kind: evReplySend, Node: at, Seq: int64(fr.Asker)})
	case FrameReply:
		rs.samples[at] = append(rs.samples[at], fr.Sample)
	case FrameReports:
		fresh := sh.accept(at, fr.Batch)
		if at == rs.root {
			sh.res.Delivered = append(sh.res.Delivered, fresh...)
			if sh.rec != nil {
				sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindSinkReport,
					Phase: trace.PhaseCollect, Node: int32(rs.root), Peer: int32(fr.From), Arg: int32(len(fresh))})
			}
			if len(fresh) > 0 && sh.eng.Now() > sh.res.CollectSeconds {
				sh.res.CollectSeconds = sh.eng.Now()
			}
			return
		}
		sh.forward(at, fresh)
	}
}

func (sh *roundShard) onEvent(ev Event) {
	rs := sh.rs
	switch ev.Kind {
	case evFlush:
		sh.flush(ev.Node)
	case evRequeue:
		b := sh.parked.take(ev.Arg)
		if sh.rec != nil {
			sh.rec.Record(trace.Event{T: sh.eng.Now(), Kind: trace.KindRequeue,
				Phase: trace.PhaseCollect, Node: int32(ev.Node), Peer: -1, Arg: int32(len(b))})
		}
		sh.forward(ev.Node, b)
		sh.radio.pool.put(b)
	case evRebroadcast:
		_ = sh.radio.BroadcastQuery(ev.Node, core.QueryBytes)
	case evProbeStart:
		_ = sh.radio.BroadcastProbe(ev.Node, core.ProbeBytes, ev.Node)
		sh.eng.ScheduleEvent(replyWindow, Event{Kind: evMeasure, Node: ev.Node})
	case evMeasure:
		sh.measure(ev.Node)
	case evReplySend:
		node := rs.nw.Node(ev.Node)
		_ = sh.radio.SendReply(ev.Node, network.NodeID(ev.Seq), core.ProbeReplyBytes,
			core.Sample{Pos: node.Pos, Value: node.Value})
	case evCrash:
		c := rs.crashes[ev.Arg]
		if rs.nw.Alive(c.Node) {
			sh.radio.Crash(c.Node)
			sh.crashed = append(sh.crashed, c.Node)
			sh.res.Crashed++
		}
	case evDeltaRetire:
		sh.deltaRetireAll(ev.Node)
	}
}

// RunFullRoundFaultsEngine is RunFullRoundFaults on a caller-supplied
// scheduler: the production Engine, the EngineNaive reference oracle, or
// a ShardedEngine. All execute the identical event sequence — the
// equivalence property tests pin that.
func RunFullRoundFaultsEngine(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan) (*RoundResult, error) {
	return RunFullRoundFaultsEngineTraced(eng, tree, f, q, fc, cfg, plan, nil)
}

// RunFullRoundFaultsEngineTraced is the fully general round: any
// scheduler, any fault plan, and an optional trace recorder. Tracing
// records the round's internal happenings — frame lifecycles with phase
// and drop cause, re-parenting with BFS levels, crash times, sink
// report arrivals, the round-end tally — without perturbing it: a nil
// recorder leaves every code path and every output byte identical, and
// an attached recorder draws no randomness and schedules nothing.
//
// When eng is a *ShardedEngine the round runs one protocol instance per
// shard: each shard's engine executes its own nodes' events, radios
// exchange cross-shard frames through the group mailboxes, and the
// partial tallies merge after the run. Per-node protocol state lives in
// shared slices touched only by the owning shard.
func RunFullRoundFaultsEngineTraced(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, rec *trace.Recorder) (*RoundResult, error) {
	return runFullRound(eng, tree, f, q, fc, cfg, plan, nil, rec)
}

// RunFullRoundDelta is the delta-report round on a fresh sequential
// engine: ds carries the cross-round transmitted-report memory and is
// updated in place. See DeltaState for the protocol contract.
func RunFullRoundDelta(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, ds *DeltaState, rec *trace.Recorder) (*RoundResult, error) {
	return RunFullRoundDeltaEngine(NewEngine(), tree, f, q, fc, cfg, plan, ds, rec)
}

// RunFullRoundDeltaSharded is the delta-report round on a sharded engine
// over a grid partition; byte-identical to RunFullRoundDelta at any
// shard and worker count, including the state left in ds.
func RunFullRoundDeltaSharded(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, ds *DeltaState, shards, workers int, rec *trace.Recorder) (*RoundResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	if shards < 1 {
		return nil, fmt.Errorf("desim: shard count %d < 1", shards)
	}
	part := network.NewGridPartition(tree.Network(), shards)
	return RunFullRoundDeltaEngine(NewShardedEngine(part, workers), tree, f, q, fc, cfg, plan, ds, rec)
}

// RunFullRoundDeltaEngine is the delta-report round on a caller-supplied
// scheduler.
func RunFullRoundDeltaEngine(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, ds *DeltaState, rec *trace.Recorder) (*RoundResult, error) {
	if ds == nil {
		return nil, fmt.Errorf("desim: delta round needs a DeltaState")
	}
	return runFullRound(eng, tree, f, q, fc, cfg, plan, ds, rec)
}

// runFullRound is the shared driver behind every RunFullRound* entry
// point; a nil ds is a full-report round, a non-nil one a delta round.
func runFullRound(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, ds *DeltaState, rec *trace.Recorder) (*RoundResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	nw := tree.Network()
	nw.Sense(f)
	counters := metrics.NewCounters(nw.Len())

	se, sharded := eng.(*ShardedEngine)
	var radios []*Radio
	if sharded {
		var err error
		radios, err = newShardedRadios(se, nw, cfg, counters)
		if err != nil {
			return nil, err
		}
	} else {
		r, err := NewRadio(eng, nw, cfg, counters)
		if err != nil {
			return nil, err
		}
		radios = []*Radio{r}
	}

	n := nw.Len()
	if ds != nil && ds.Nodes() != n {
		return nil, fmt.Errorf("desim: delta state built for %d nodes, deployment has %d", ds.Nodes(), n)
	}
	rs := &roundState{
		nw:          nw,
		tree:        tree,
		q:           q,
		fc:          fc,
		cfg:         cfg,
		plan:        plan,
		delta:       ds,
		crashes:     plan.Crashes(),
		root:        tree.Root(),
		queryHeard:  make([]bool, n),
		samples:     make([][]core.Sample, n),
		kept:        make([][]core.Report, n),
		seenReports: make([]map[core.Report]bool, n),
		outbox:      make([][]core.Report, n),
		flushArmed:  make([]bool, n),
		parentOf:    make([]network.NodeID, n),
		severed:     make([]bool, n),
		shards:      make([]*roundShard, len(radios)),
	}
	for i := range rs.parentOf {
		rs.parentOf[i] = tree.Parent(network.NodeID(i))
	}

	for i, r := range radios {
		shEng := eng
		if sharded {
			shEng = se.Shard(i)
		}
		shRec := rec
		if sharded && rec != nil {
			shRec = trace.NewRecorder(rec.Capacity())
		}
		r.SetTrace(shRec)
		if plan.HasChannel() {
			r.SetChannel(plan.Lose)
		}
		sh := &roundShard{rs: rs, eng: shEng, radio: r, rec: shRec}
		rs.shards[i] = sh
		r.OnDrop(sh.handleDrop)
		r.OnEvent(sh.onEvent)
	}
	shardFor := func(id network.NodeID) *roundShard {
		if sharded {
			return rs.shards[se.ShardOf(id)]
		}
		return rs.shards[0]
	}
	for i := 0; i < n; i++ {
		if id := network.NodeID(i); nw.Alive(id) {
			sh := shardFor(id)
			sh.radio.OnReceive(id, sh.onFrame)
		}
	}
	for i := range rs.crashes {
		// The facade routes the crash to the owning node's shard.
		eng.ScheduleEventAt(rs.crashes[i].Time, Event{Kind: evCrash, Node: rs.crashes[i].Node, Arg: int32(i)})
	}

	// The sink originates the query, on its own shard's scheduler — the
	// bootstrap closure is the round's only untyped event, alone at t=0,
	// so its execution slot is identical at every shard count.
	rootSh := shardFor(rs.root)
	rs.queryHeard[rs.root] = true
	rootSh.res.QueryReached++
	if rootSh.rec != nil {
		rootSh.rec.Record(trace.Event{Kind: trace.KindQueryHeard, Phase: trace.PhaseQuery,
			Node: int32(rs.root), Peer: int32(rs.root)})
	}
	rootSh.eng.Schedule(0, func() {
		_ = rootSh.radio.BroadcastQuery(rs.root, core.QueryBytes)
	})
	// The sink itself may be an isoline node: give it the same probe path.
	if len(q.CandidateLevels(nw.Node(rs.root).Value)) > 0 {
		rootSh.eng.ScheduleEvent(probeDelay, Event{Kind: evProbeStart, Node: rs.root})
	} else if ds != nil && ds.trackedAt(rs.root) > 0 {
		rootSh.eng.ScheduleEvent(probeDelay+replyWindow, Event{Kind: evDeltaRetire, Node: rs.root})
	}

	total := eng.Run()

	res := &RoundResult{Counters: counters}
	for _, sh := range rs.shards {
		res.QueryReached += sh.res.QueryReached
		res.IsolineNodes += sh.res.IsolineNodes
		res.Generated += sh.res.Generated
		res.Crossings += sh.res.Crossings
		res.Suppressed += sh.res.Suppressed
		res.Retired += sh.res.Retired
		res.ReplyDrops += sh.res.ReplyDrops
		res.ReportDrops += sh.res.ReportDrops
		res.Crashed += sh.res.Crashed
		res.Repairs += sh.res.Repairs
		res.Severed += sh.res.Severed
		if sh.res.QuerySeconds > res.QuerySeconds {
			res.QuerySeconds = sh.res.QuerySeconds
		}
		if sh.res.MeasureSeconds > res.MeasureSeconds {
			res.MeasureSeconds = sh.res.MeasureSeconds
		}
		if sh.res.CollectSeconds > res.CollectSeconds {
			res.CollectSeconds = sh.res.CollectSeconds
		}
		res.Radio.add(sh.radio.Stats)
	}
	// All sink deliveries happen on the root's shard, in its intrinsic
	// event order — the same order a single engine pops them in.
	res.Delivered = rootSh.res.Delivered
	res.TotalSeconds = total
	res.Events = eng.Steps()
	if rootSh.rec != nil {
		// Recorded before sink mangling: the trace accounts for what the
		// network delivered, not what fault injection corrupted after.
		rootSh.rec.Record(trace.Event{T: res.TotalSeconds, Kind: trace.KindRoundEnd,
			Node: int32(rs.root), Peer: -1, Seq: int64(len(res.Delivered))})
	}
	if sharded && rec != nil {
		var all []trace.Event
		for _, sh := range rs.shards {
			all = append(all, sh.rec.Events()...)
		}
		trace.SortCanonical(all)
		for _, e := range all {
			rec.Record(e)
		}
	}
	res.Delivered = plan.MangleSinkReports(res.Delivered, field.BoundsRect(f))
	for _, sh := range rs.shards {
		for _, id := range sh.crashed {
			nw.Node(id).Failed = false
		}
	}
	return res, nil
}
