package desim

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// queryPayload is the flooded contour query.
type queryPayload struct{ q core.Query }

// probePayload is an isoline node's neighborhood probe.
type probePayload struct{ asker network.NodeID }

// replyPayload is a neighbor's <value, position> answer to a probe.
type replyPayload struct {
	sample core.Sample
}

// RoundResult is the outcome of a full packet-level Iso-Map round.
type RoundResult struct {
	// QueryReached counts nodes that received the flooded query.
	QueryReached int
	// IsolineNodes counts nodes that appointed themselves.
	IsolineNodes int
	// Generated counts reports produced (after regression succeeded).
	Generated int
	// Delivered are the reports collected at the sink.
	Delivered []core.Report
	// QuerySeconds, MeasureSeconds and CollectSeconds are the phase
	// completion times; TotalSeconds is the whole round.
	QuerySeconds   float64
	MeasureSeconds float64
	CollectSeconds float64
	TotalSeconds   float64
	// Radio exposes the link-layer statistics.
	Radio RadioStats
	// ReplyDrops and ReportDrops split Radio.Drops by phase: probe
	// replies abandoned during measurement vs report batches abandoned
	// during collection.
	ReplyDrops  int
	ReportDrops int
	// Crashed counts nodes killed mid-round by the fault plan.
	Crashed int
	// Repairs counts successful re-parenting events: a node whose parent
	// went silent re-attached to a surviving lower-level neighbor.
	Repairs int
	// Severed counts nodes left with no alive upward neighbor after
	// their parent died — their queued reports are lost.
	Severed int
	// Counters holds the physical per-node tx/rx/ops charges of the
	// round (retries and acks included).
	Counters *metrics.Counters
}

// RunFullRound executes an entire Iso-Map round on the discrete-event
// radio: the sink floods the query (unacknowledged broadcast flood with
// duplicate suppression), nodes whose readings fall in the border region
// probe their neighborhood and run the regression when the replies are in,
// and the resulting reports converge-cast to the sink with in-network
// filtering. Every phase is made of real frames subject to carrier
// sensing, collisions and loss.
//
// Phase boundaries are realized with guard times rather than global
// barriers: a node starts its probe a fixed delay after hearing the query,
// and flushes its report once its reply-collection window closes — as a
// real deployment would, with no global clock.
func RunFullRound(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig) (*RoundResult, error) {
	return RunFullRoundFaults(tree, f, q, fc, cfg, nil)
}

// RunFullRoundFaults is RunFullRound under an injected fault plan: the
// plan's channel model erases receptions per link, its crash schedule
// kills nodes mid-round, and its sink model corrupts/duplicates delivered
// reports. The round degrades instead of wedging: a node whose parent
// goes silent — detected when a report batch toward it exhausts its
// retries or deadline — re-parents onto its best surviving lower-level
// neighbor (routing.Tree.BestAliveParent) and re-queues the batch, so a
// crashed relay black-holes nothing but its own queue. A nil or empty
// plan leaves every code path untouched: the round is bit-identical to
// RunFullRound. Plans are stateful; pass a fresh one per round.
func RunFullRoundFaults(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan) (*RoundResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	nw := tree.Network()
	nw.Sense(f)
	eng := NewEngine()
	counters := metrics.NewCounters(nw.Len())
	radio, err := NewRadio(eng, nw, cfg, counters)
	if err != nil {
		return nil, err
	}
	if plan.HasChannel() {
		radio.SetChannel(plan.Lose)
	}
	res := &RoundResult{Counters: counters}
	for _, c := range plan.Crashes() {
		crash := c
		eng.ScheduleAt(crash.Time, func() {
			if nw.Alive(crash.Node) {
				radio.Crash(crash.Node)
				res.Crashed++
			}
		})
	}

	// Windows (in seconds) shaping the round: how long a node listens for
	// probe replies before regressing, and the convergecast batching
	// delay.
	const (
		probeDelay  = 0.05 // after hearing the query
		replyWindow = 0.25 // reply collection span
	)

	// jitterFor spreads per-node delays quasi-uniformly over a window of
	// slots, deterministically: synchronized rebroadcasts are what kill
	// unacknowledged floods.
	jitterFor := func(id network.NodeID, spreadSlots int) float64 {
		h := uint64(id)*2654435761 + 97
		h ^= h >> 13
		return float64(1+h%uint64(spreadSlots)) * cfg.SlotTime
	}

	queryHeard := make([]bool, nw.Len())
	samples := make(map[network.NodeID][]core.Sample)
	kept := make(map[network.NodeID][]core.Report)
	seenReports := make(map[network.NodeID]map[core.Report]bool)
	outbox := make(map[network.NodeID][]core.Report)
	flushArmed := make(map[network.NodeID]bool)

	accept := func(at network.NodeID, incoming []core.Report) []core.Report {
		if seenReports[at] == nil {
			seenReports[at] = make(map[core.Report]bool)
		}
		var fresh []core.Report
		for _, r := range incoming {
			if seenReports[at][r] {
				continue
			}
			seenReports[at][r] = true
			if fc.Enabled {
				dup := false
				for _, k := range kept[at] {
					if fc.Redundant(k, r) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			kept[at] = append(kept[at], r)
			fresh = append(fresh, r)
		}
		return fresh
	}

	// parentOf is the round's mutable routing state, seeded from the BFS
	// tree; route repair rewrites an entry when its parent goes silent.
	parentOf := make([]network.NodeID, nw.Len())
	for i := range parentOf {
		parentOf[i] = tree.Parent(network.NodeID(i))
	}
	severed := make(map[network.NodeID]bool)

	forward := func(from network.NodeID, batch []core.Report) {
		if len(batch) == 0 || parentOf[from] < 0 {
			return
		}
		outbox[from] = append(outbox[from], batch...)
		if flushArmed[from] {
			return
		}
		flushArmed[from] = true
		delay := float64(6+int(from)%5) * cfg.SlotTime
		eng.Schedule(delay, func() {
			flushArmed[from] = false
			pending := outbox[from]
			delete(outbox, from)
			if len(pending) == 0 || !nw.Alive(from) {
				return
			}
			parent := parentOf[from]
			if !nw.Alive(parent) {
				// Route repair: re-attach to the best surviving
				// lower-level neighbor instead of black-holing the
				// subtree behind a dead parent.
				np, ok := tree.BestAliveParent(from)
				if !ok {
					if !severed[from] {
						severed[from] = true
						res.Severed++
					}
					return
				}
				parentOf[from] = np
				parent = np
				res.Repairs++
			}
			_ = radio.Send(from, parent, core.ReportBytes*len(pending), pending)
		})
	}
	radio.OnDrop(func(fr Frame) {
		switch batch := fr.Payload.(type) {
		case []core.Report:
			res.ReportDrops++
			// Transport recovery: re-queue the batch exactly once per
			// drop after a pause; the flush path re-parents when the
			// silent parent turns out to be dead.
			eng.Schedule(32*cfg.SlotTime, func() { forward(fr.From, batch) })
		case replyPayload:
			// Probe replies are not recovered: the asker regresses over
			// whatever samples survive its reply window.
			res.ReplyDrops++
		}
	})

	// measure runs Definition 3.1 + regression once a node's reply window
	// closes, then injects the reports into the convergecast.
	measure := func(id network.NodeID) {
		if !nw.Alive(id) {
			return // crashed after probing
		}
		node := nw.Node(id)
		levels := q.Levels.Values()
		var matched []int
		for _, li := range q.CandidateLevels(node.Value) {
			lambda := levels[li]
			for _, s := range samples[id] {
				if (node.Value < lambda && lambda < s.Value) || (s.Value < lambda && lambda < node.Value) {
					matched = append(matched, li)
					break
				}
			}
		}
		if len(matched) == 0 {
			return
		}
		all := append([]core.Sample{{Pos: node.Pos, Value: node.Value}}, samples[id]...)
		grad, err := core.GradientByRegression(all)
		if err != nil || grad.Norm() <= geom.Eps {
			return
		}
		res.IsolineNodes++
		var reports []core.Report
		for _, li := range matched {
			reports = append(reports, core.Report{
				Level:      levels[li],
				LevelIndex: li,
				Pos:        node.Pos,
				Grad:       grad,
				Source:     id,
			})
		}
		res.Generated += len(reports)
		if t := eng.Now(); t > res.MeasureSeconds {
			res.MeasureSeconds = t
		}
		fresh := accept(id, reports)
		if id == tree.Root() {
			res.Delivered = append(res.Delivered, fresh...)
			return
		}
		forward(id, fresh)
	}

	// Receive handler: query flood, probes, replies and report batches.
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !nw.Alive(id) {
			continue
		}
		nodeID := id
		radio.OnReceive(nodeID, func(fr Frame) {
			switch p := fr.Payload.(type) {
			case queryPayload:
				if queryHeard[nodeID] {
					return
				}
				queryHeard[nodeID] = true
				res.QueryReached++
				if t := eng.Now(); t > res.QuerySeconds {
					res.QuerySeconds = t
				}
				// Rebroadcast the flood once.
				eng.Schedule(jitterFor(nodeID, 64), func() {
					_ = radio.Broadcast(nodeID, core.QueryBytes, p)
				})
				// Border-region candidates probe their neighborhood.
				if len(q.CandidateLevels(nw.Node(nodeID).Value)) == 0 {
					return
				}
				eng.Schedule(probeDelay+jitterFor(nodeID+1000, 128), func() {
					_ = radio.Broadcast(nodeID, core.ProbeBytes, probePayload{asker: nodeID})
					eng.Schedule(replyWindow, func() { measure(nodeID) })
				})
			case probePayload:
				n := nw.Node(nodeID)
				reply := replyPayload{sample: core.Sample{Pos: n.Pos, Value: n.Value}}
				eng.Schedule(jitterFor(nodeID+2000, 32), func() {
					_ = radio.Send(nodeID, p.asker, core.ProbeReplyBytes, reply)
				})
			case replyPayload:
				samples[nodeID] = append(samples[nodeID], p.sample)
			case []core.Report:
				fresh := accept(nodeID, p)
				if nodeID == tree.Root() {
					res.Delivered = append(res.Delivered, fresh...)
					if len(fresh) > 0 && eng.Now() > res.CollectSeconds {
						res.CollectSeconds = eng.Now()
					}
					return
				}
				forward(nodeID, fresh)
			}
		})
	}

	// The sink originates the query.
	sink := tree.Root()
	queryHeard[sink] = true
	res.QueryReached++
	eng.Schedule(0, func() {
		_ = radio.Broadcast(sink, core.QueryBytes, queryPayload{q: q})
	})
	// The sink itself may be an isoline node: give it the same probe path.
	if len(q.CandidateLevels(nw.Node(sink).Value)) > 0 {
		eng.Schedule(probeDelay, func() {
			_ = radio.Broadcast(sink, core.ProbeBytes, probePayload{asker: sink})
			eng.Schedule(replyWindow, func() { measure(sink) })
		})
	}

	res.TotalSeconds = eng.Run()
	res.Radio = radio.Stats
	res.Delivered = plan.MangleSinkReports(res.Delivered, field.BoundsRect(f))
	return res, nil
}
