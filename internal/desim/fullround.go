package desim

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
	"isomap/internal/trace"
)

// RoundResult is the outcome of a full packet-level Iso-Map round.
type RoundResult struct {
	// QueryReached counts nodes that received the flooded query.
	QueryReached int
	// IsolineNodes counts nodes that appointed themselves.
	IsolineNodes int
	// Generated counts reports produced (after regression succeeded).
	Generated int
	// Delivered are the reports collected at the sink.
	Delivered []core.Report
	// QuerySeconds, MeasureSeconds and CollectSeconds are the phase
	// completion times; TotalSeconds is the whole round.
	QuerySeconds   float64
	MeasureSeconds float64
	CollectSeconds float64
	TotalSeconds   float64
	// Radio exposes the link-layer statistics.
	Radio RadioStats
	// ReplyDrops and ReportDrops split Radio.Drops by phase: probe
	// replies abandoned during measurement vs report batches abandoned
	// during collection.
	ReplyDrops  int
	ReportDrops int
	// Crashed counts nodes killed mid-round by the fault plan.
	Crashed int
	// Repairs counts successful re-parenting events: a node whose parent
	// went silent re-attached to a surviving lower-level neighbor.
	Repairs int
	// Severed counts nodes left with no alive upward neighbor after
	// their parent died — their queued reports are lost.
	Severed int
	// Counters holds the physical per-node tx/rx/ops charges of the
	// round (retries and acks included).
	Counters *metrics.Counters
	// Events is the number of simulator events executed.
	Events int64
}

// RunFullRound executes an entire Iso-Map round on the discrete-event
// radio: the sink floods the query (unacknowledged broadcast flood with
// duplicate suppression), nodes whose readings fall in the border region
// probe their neighborhood and run the regression when the replies are in,
// and the resulting reports converge-cast to the sink with in-network
// filtering. Every phase is made of real frames subject to carrier
// sensing, collisions and loss.
//
// Phase boundaries are realized with guard times rather than global
// barriers: a node starts its probe a fixed delay after hearing the query,
// and flushes its report once its reply-collection window closes — as a
// real deployment would, with no global clock.
func RunFullRound(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig) (*RoundResult, error) {
	return RunFullRoundFaults(tree, f, q, fc, cfg, nil)
}

// RunFullRoundFaults is RunFullRound under an injected fault plan: the
// plan's channel model erases receptions per link, its crash schedule
// kills nodes mid-round, and its sink model corrupts/duplicates delivered
// reports. The round degrades instead of wedging: a node whose parent
// goes silent — detected when a report batch toward it exhausts its
// retries or deadline — re-parents onto its best surviving lower-level
// neighbor (routing.Tree.BestAliveParent) and re-queues the batch, so a
// crashed relay black-holes nothing but its own queue. A nil or empty
// plan leaves every code path untouched: the round is bit-identical to
// RunFullRound. Plans are stateful; pass a fresh one per round.
func RunFullRoundFaults(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan) (*RoundResult, error) {
	return RunFullRoundFaultsEngine(NewEngine(), tree, f, q, fc, cfg, plan)
}

// RunFullRoundEngine is RunFullRound on a caller-supplied scheduler.
func RunFullRoundEngine(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig) (*RoundResult, error) {
	return RunFullRoundFaultsEngine(eng, tree, f, q, fc, cfg, nil)
}

// RunFullRoundTraced is RunFullRound recording structured events into
// rec (see internal/trace). A nil recorder reduces to RunFullRound
// exactly.
func RunFullRoundTraced(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, rec *trace.Recorder) (*RoundResult, error) {
	return RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, nil, rec)
}

// RunFullRoundFaultsTraced is RunFullRoundFaults recording structured
// events into rec.
func RunFullRoundFaultsTraced(tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, rec *trace.Recorder) (*RoundResult, error) {
	return RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, plan, rec)
}

// RunFullRoundFaultsEngine is RunFullRoundFaults on a caller-supplied
// scheduler: the production Engine or the EngineNaive reference oracle.
// Both execute the identical event sequence — the equivalence property
// tests pin that.
func RunFullRoundFaultsEngine(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan) (*RoundResult, error) {
	return RunFullRoundFaultsEngineTraced(eng, tree, f, q, fc, cfg, plan, nil)
}

// RunFullRoundFaultsEngineTraced is the fully general round: any
// scheduler, any fault plan, and an optional trace recorder. Tracing
// records the round's internal happenings — frame lifecycles with phase
// and drop cause, re-parenting with BFS levels, crash times, sink
// report arrivals, the round-end tally — without perturbing it: a nil
// recorder leaves every code path and every output byte identical, and
// an attached recorder draws no randomness and schedules nothing.
func RunFullRoundFaultsEngineTraced(eng EngineAPI, tree *routing.Tree, f field.Field, q core.Query, fc core.FilterConfig, cfg RadioConfig, plan *faults.Plan, rec *trace.Recorder) (*RoundResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	nw := tree.Network()
	nw.Sense(f)
	counters := metrics.NewCounters(nw.Len())
	radio, err := NewRadio(eng, nw, cfg, counters)
	if err != nil {
		return nil, err
	}
	radio.SetTrace(rec)
	if plan.HasChannel() {
		radio.SetChannel(plan.Lose)
	}
	res := &RoundResult{Counters: counters}
	crashes := plan.Crashes()
	// crashed records the nodes this round kills so their Failed marks can
	// be lifted once the round is tallied. A crash is a round-scoped radio
	// event, not a permanent topology edit: callers reuse the network (and
	// trees bound to it) across rounds under the contract that nothing a
	// round does survives it except node values, and a lingering Failed
	// mark silently shrinks every later round — including fault-free ones
	// on clones sharing the seed — breaking same-seed determinism.
	var crashed []network.NodeID
	for i := range crashes {
		eng.ScheduleEventAt(crashes[i].Time, Event{Kind: evCrash, Arg: int32(i)})
	}

	// Windows (in seconds) shaping the round: how long a node listens for
	// probe replies before regressing, and the convergecast batching
	// delay.
	const (
		probeDelay  = 0.05 // after hearing the query
		replyWindow = 0.25 // reply collection span
	)

	// jitterFor spreads per-node delays quasi-uniformly over a window of
	// slots, deterministically: synchronized rebroadcasts are what kill
	// unacknowledged floods.
	jitterFor := func(id network.NodeID, spreadSlots int) float64 {
		h := uint64(id)*2654435761 + 97
		h ^= h >> 13
		return float64(1+h%uint64(spreadSlots)) * cfg.SlotTime
	}

	n := nw.Len()
	queryHeard := make([]bool, n)
	samples := make([][]core.Sample, n)
	kept := make([][]core.Report, n)
	seenReports := make([]map[core.Report]bool, n)
	outbox := make([][]core.Report, n)
	flushArmed := make([]bool, n)

	// Scratch buffers reused across frames and measurements; their
	// contents are consumed before the next call that fills them.
	var (
		freshScratch  []core.Report
		matchScratch  []int
		sampleScratch []core.Sample
		reportScratch []core.Report
	)

	accept := func(at network.NodeID, incoming []core.Report) []core.Report {
		if seenReports[at] == nil {
			seenReports[at] = make(map[core.Report]bool)
		}
		fresh := freshScratch[:0]
		for _, r := range incoming {
			if seenReports[at][r] {
				continue
			}
			seenReports[at][r] = true
			if fc.Enabled {
				dup := false
				for _, k := range kept[at] {
					if fc.Redundant(k, r) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
			}
			kept[at] = append(kept[at], r)
			fresh = append(fresh, r)
		}
		freshScratch = fresh
		return fresh
	}

	// parentOf is the round's mutable routing state, seeded from the BFS
	// tree; route repair rewrites an entry when its parent goes silent.
	parentOf := make([]network.NodeID, n)
	for i := range parentOf {
		parentOf[i] = tree.Parent(network.NodeID(i))
	}
	severed := make([]bool, n)

	forward := func(from network.NodeID, batch []core.Report) {
		if len(batch) == 0 || parentOf[from] < 0 {
			return
		}
		outbox[from] = append(outbox[from], batch...)
		if flushArmed[from] {
			return
		}
		flushArmed[from] = true
		delay := float64(6+int(from)%5) * cfg.SlotTime
		eng.ScheduleEvent(delay, Event{Kind: evFlush, Node: from})
	}

	// flush empties a node's outbox into one frame toward its (possibly
	// repaired) parent; the frame rides a pooled batch copy so the outbox
	// keeps its capacity across flushes.
	flush := func(from network.NodeID) {
		flushArmed[from] = false
		pending := outbox[from]
		outbox[from] = pending[:0]
		if len(pending) == 0 || !nw.Alive(from) {
			return
		}
		parent := parentOf[from]
		if !nw.Alive(parent) {
			// Route repair: re-attach to the best surviving lower-level
			// neighbor instead of black-holing the subtree behind a dead
			// parent.
			np, ok := tree.BestAliveParent(from)
			if !ok {
				if !severed[from] {
					severed[from] = true
					res.Severed++
					if rec != nil {
						rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindSevered,
							Node: int32(from), Peer: int32(parent)})
					}
				}
				return
			}
			if rec != nil {
				rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindReparent,
					Node: int32(from), Peer: int32(np), Seq: int64(parent),
					Arg: trace.PackLevels(tree.Level(from), tree.Level(np))})
			}
			parentOf[from] = np
			parent = np
			res.Repairs++
		}
		batch := append(radio.pool.get(), pending...)
		_ = radio.SendReports(from, parent, core.ReportBytes*len(pending), batch)
	}

	var parked parkedBatches
	radio.OnDrop(func(fr Frame) {
		switch fr.Kind {
		case FrameReports:
			res.ReportDrops++
			// Transport recovery: re-queue the batch exactly once per
			// drop after a pause; the flush path re-parents when the
			// silent parent turns out to be dead. The frame's batch is
			// recycled when this handler returns, so park a pooled copy
			// until the re-queue event fires.
			slot := parked.park(&radio.pool, fr.Batch)
			eng.ScheduleEvent(32*cfg.SlotTime, Event{Kind: evRequeue, Node: fr.From, Arg: slot})
		case FrameReply:
			// Probe replies are not recovered: the asker regresses over
			// whatever samples survive its reply window.
			res.ReplyDrops++
		}
	})

	root := tree.Root()

	// measure runs Definition 3.1 + regression once a node's reply window
	// closes, then injects the reports into the convergecast.
	measure := func(id network.NodeID) {
		if !nw.Alive(id) {
			return // crashed after probing
		}
		node := nw.Node(id)
		levels := q.Levels.Values()
		matched := matchScratch[:0]
		for _, li := range q.CandidateLevels(node.Value) {
			lambda := levels[li]
			for _, s := range samples[id] {
				if (node.Value < lambda && lambda < s.Value) || (s.Value < lambda && lambda < node.Value) {
					matched = append(matched, li)
					break
				}
			}
		}
		matchScratch = matched
		if len(matched) == 0 {
			return
		}
		all := append(sampleScratch[:0], core.Sample{Pos: node.Pos, Value: node.Value})
		all = append(all, samples[id]...)
		sampleScratch = all
		grad, err := core.GradientByRegression(all)
		if err != nil || grad.Norm() <= geom.Eps {
			return
		}
		res.IsolineNodes++
		reports := reportScratch[:0]
		for _, li := range matched {
			reports = append(reports, core.Report{
				Level:      levels[li],
				LevelIndex: li,
				Pos:        node.Pos,
				Grad:       grad,
				Source:     id,
			})
		}
		reportScratch = reports
		res.Generated += len(reports)
		if rec != nil {
			rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindGenerate,
				Node: int32(id), Peer: -1, Arg: int32(len(reports))})
		}
		if t := eng.Now(); t > res.MeasureSeconds {
			res.MeasureSeconds = t
		}
		fresh := accept(id, reports)
		if id == root {
			res.Delivered = append(res.Delivered, fresh...)
			if rec != nil {
				rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindSinkReport,
					Node: int32(root), Peer: -1, Arg: int32(len(fresh))})
			}
			return
		}
		forward(id, fresh)
	}

	// onFrame is the receive handler every alive node shares: query
	// flood, probes, replies and report batches.
	onFrame := func(at network.NodeID, fr Frame) {
		switch fr.Kind {
		case FrameQuery:
			if queryHeard[at] {
				return
			}
			queryHeard[at] = true
			res.QueryReached++
			if rec != nil {
				rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindQueryHeard,
					Phase: trace.PhaseQuery, Node: int32(at), Peer: int32(fr.From)})
			}
			if t := eng.Now(); t > res.QuerySeconds {
				res.QuerySeconds = t
			}
			// Rebroadcast the flood once.
			eng.ScheduleEvent(jitterFor(at, 64), Event{Kind: evRebroadcast, Node: at})
			// Border-region candidates probe their neighborhood.
			if len(q.CandidateLevels(nw.Node(at).Value)) == 0 {
				return
			}
			eng.ScheduleEvent(probeDelay+jitterFor(at+1000, 128), Event{Kind: evProbeStart, Node: at})
		case FrameProbe:
			eng.ScheduleEvent(jitterFor(at+2000, 32), Event{Kind: evReplySend, Node: at, Seq: int64(fr.Asker)})
		case FrameReply:
			samples[at] = append(samples[at], fr.Sample)
		case FrameReports:
			fresh := accept(at, fr.Batch)
			if at == root {
				res.Delivered = append(res.Delivered, fresh...)
				if rec != nil {
					rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindSinkReport,
						Phase: trace.PhaseCollect, Node: int32(root), Peer: int32(fr.From), Arg: int32(len(fresh))})
				}
				if len(fresh) > 0 && eng.Now() > res.CollectSeconds {
					res.CollectSeconds = eng.Now()
				}
				return
			}
			forward(at, fresh)
		}
	}
	for i := 0; i < n; i++ {
		if id := network.NodeID(i); nw.Alive(id) {
			radio.OnReceive(id, onFrame)
		}
	}

	radio.OnEvent(func(ev Event) {
		switch ev.Kind {
		case evFlush:
			flush(ev.Node)
		case evRequeue:
			b := parked.take(ev.Arg)
			if rec != nil {
				rec.Record(trace.Event{T: eng.Now(), Kind: trace.KindRequeue,
					Phase: trace.PhaseCollect, Node: int32(ev.Node), Peer: -1, Arg: int32(len(b))})
			}
			forward(ev.Node, b)
			radio.pool.put(b)
		case evRebroadcast:
			_ = radio.BroadcastQuery(ev.Node, core.QueryBytes)
		case evProbeStart:
			_ = radio.BroadcastProbe(ev.Node, core.ProbeBytes, ev.Node)
			eng.ScheduleEvent(replyWindow, Event{Kind: evMeasure, Node: ev.Node})
		case evMeasure:
			measure(ev.Node)
		case evReplySend:
			node := nw.Node(ev.Node)
			_ = radio.SendReply(ev.Node, network.NodeID(ev.Seq), core.ProbeReplyBytes,
				core.Sample{Pos: node.Pos, Value: node.Value})
		case evCrash:
			c := crashes[ev.Arg]
			if nw.Alive(c.Node) {
				radio.Crash(c.Node)
				crashed = append(crashed, c.Node)
				res.Crashed++
			}
		}
	})

	// The sink originates the query.
	sink := root
	queryHeard[sink] = true
	res.QueryReached++
	if rec != nil {
		rec.Record(trace.Event{Kind: trace.KindQueryHeard, Phase: trace.PhaseQuery,
			Node: int32(sink), Peer: int32(sink)})
	}
	eng.Schedule(0, func() {
		_ = radio.BroadcastQuery(sink, core.QueryBytes)
	})
	// The sink itself may be an isoline node: give it the same probe path.
	if len(q.CandidateLevels(nw.Node(sink).Value)) > 0 {
		eng.ScheduleEvent(probeDelay, Event{Kind: evProbeStart, Node: sink})
	}

	res.TotalSeconds = eng.Run()
	res.Radio = radio.Stats
	res.Events = eng.Steps()
	if rec != nil {
		// Recorded before sink mangling: the trace accounts for what the
		// network delivered, not what fault injection corrupted after.
		rec.Record(trace.Event{T: res.TotalSeconds, Kind: trace.KindRoundEnd,
			Node: int32(sink), Peer: -1, Seq: int64(len(res.Delivered))})
	}
	res.Delivered = plan.MangleSinkReports(res.Delivered, field.BoundsRect(f))
	for _, id := range crashed {
		nw.Node(id).Failed = false
	}
	return res, nil
}
