package desim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"isomap/internal/network"
)

// ShardedEngine runs one Engine per spatial shard of a deployment,
// synchronized by conservative lookahead windows: all shards execute
// their events inside [T0, T0+W) in parallel (T0 the earliest pending
// event anywhere, W the lookahead window — the radio's propagation
// delay), then meet at a barrier where cross-shard effects produced
// during the window are exchanged. Because no transmission can touch
// another shard sooner than one propagation delay after it starts, every
// exchanged event lands at or beyond the next window — no shard ever
// receives an event in its past, so no rollback is needed and the merged
// execution is byte-identical to a single-engine run (the intrinsic
// event order pinned by less makes per-shard pop order match the global
// one).
//
// ShardedEngine implements EngineAPI for setup-time scheduling: typed
// events route to the owning node's shard, closures to shard 0. During
// the run, handlers execute on their shard's own Engine and must
// schedule there (the radio and round layers are built that way); the
// facade is not for use from inside handlers.
type ShardedEngine struct {
	engines []*Engine
	part    *network.Partition
	window  float64
	workers int
	hooks   []func()
	// phantoms counts mailed cross-shard propagate events: bookkeeping
	// duplicates of work a single engine performs inside one event, so
	// Steps subtracts them to stay comparable.
	phantoms int64
	// active reuses the per-window list of shard indices with work.
	active []int32
}

var _ EngineAPI = (*ShardedEngine)(nil)

// NewShardedEngine builds an engine per shard of the partition. workers
// bounds the goroutines executing windows in parallel; 0 selects
// GOMAXPROCS. workers=1 runs windows sequentially (useful to separate
// determinism from parallelism in tests).
func NewShardedEngine(part *network.Partition, workers int) *ShardedEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	engines := make([]*Engine, part.K)
	for i := range engines {
		engines[i] = NewEngine()
	}
	return &ShardedEngine{engines: engines, part: part, workers: workers}
}

// Shard returns shard i's engine.
func (se *ShardedEngine) Shard(i int) *Engine { return se.engines[i] }

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.engines) }

// ShardOf returns the shard owning node id (shard 0 for synthetic
// addresses like the broadcast pseudo-node).
func (se *ShardedEngine) ShardOf(id network.NodeID) int {
	if id < 0 || int(id) >= len(se.part.Shard) {
		return 0
	}
	return int(se.part.Shard[id])
}

// Partition exposes the partition the engine was built over.
func (se *ShardedEngine) Partition() *network.Partition { return se.part }

// OnBarrier registers fn to run single-threaded before every window
// (after all shards blocked on the previous one): the radio group's mail
// drain and border-state publication.
func (se *ShardedEngine) OnBarrier(fn func()) { se.hooks = append(se.hooks, fn) }

// setWindow fixes the lookahead window (the radio's propagation delay).
// Zero means "no cross-shard coupling": a single unbounded window.
func (se *ShardedEngine) setWindow(w float64) { se.window = w }

// SetLookahead sets the synchronization window explicitly — for direct
// engine-level use without a radio (tests); newShardedRadios sets it
// from the radio config otherwise.
func (se *ShardedEngine) SetLookahead(w float64) { se.setWindow(w) }

// scheduleMailed enqueues a barrier-drained cross-shard event on shard d
// and counts it as a phantom.
func (se *ShardedEngine) scheduleMailed(d int32, t float64, ev Event) {
	se.engines[d].ScheduleEventAt(t, ev)
	se.phantoms++
}

// CountPhantom adjusts the phantom-event count by k (for layers that
// schedule their own bookkeeping events on shard engines).
func (se *ShardedEngine) CountPhantom(k int64) { se.phantoms += k }

// Now returns the latest shard clock — meaningful at setup (zero) and
// after Run (the final time).
func (se *ShardedEngine) Now() float64 {
	t := 0.0
	for _, e := range se.engines {
		if e.Now() > t {
			t = e.Now()
		}
	}
	return t
}

// Steps returns the events executed across all shards, net of the
// phantom cross-shard duplicates — equal to the single-engine count for
// the same workload.
func (se *ShardedEngine) Steps() int64 {
	var s int64
	for _, e := range se.engines {
		s += e.Steps()
	}
	return s - se.phantoms
}

// MaxQueueDepth returns the deepest per-shard queue observed.
func (se *ShardedEngine) MaxQueueDepth() int {
	d := 0
	for _, e := range se.engines {
		if e.MaxQueueDepth() > d {
			d = e.MaxQueueDepth()
		}
	}
	return d
}

// Schedule enqueues a closure on shard 0 (setup-time control events; use
// Shard(i).Schedule to place one deliberately).
func (se *ShardedEngine) Schedule(delay float64, fn func()) { se.engines[0].Schedule(delay, fn) }

// ScheduleAt enqueues a closure on shard 0 at absolute time t.
func (se *ShardedEngine) ScheduleAt(t float64, fn func()) { se.engines[0].ScheduleAt(t, fn) }

// ScheduleEvent routes a typed event to the owning node's shard.
func (se *ShardedEngine) ScheduleEvent(delay float64, ev Event) {
	se.engines[se.ShardOf(ev.Node)].ScheduleEvent(delay, ev)
}

// ScheduleEventAt routes a typed event to the owning node's shard at
// absolute time t.
func (se *ShardedEngine) ScheduleEventAt(t float64, ev Event) {
	se.engines[se.ShardOf(ev.Node)].ScheduleEventAt(t, ev)
}

// SetHandler installs fn on every shard engine. The radio layer installs
// per-shard handlers directly instead.
func (se *ShardedEngine) SetHandler(fn func(Event)) {
	for _, e := range se.engines {
		e.SetHandler(fn)
	}
}

// nextTime returns the earliest pending event time across shards.
func (se *ShardedEngine) nextTime() float64 {
	t0 := math.Inf(1)
	for _, e := range se.engines {
		if t, ok := e.NextTime(); ok && t < t0 {
			t0 = t
		}
	}
	return t0
}

// Run executes windows until every shard heap and mailbox drains,
// returning the final time.
func (se *ShardedEngine) Run() float64 {
	for {
		for _, h := range se.hooks {
			h()
		}
		t0 := se.nextTime()
		if math.IsInf(t0, 1) {
			break
		}
		w := se.window
		if w <= 0 {
			w = math.Inf(1)
		}
		se.runWindow(t0 + w)
	}
	end := 0.0
	for _, e := range se.engines {
		if e.Now() > end {
			end = e.Now()
		}
	}
	return end
}

// RunUntil executes events with timestamps <= deadline, advancing every
// shard clock to the deadline. Later events stay queued (cross-shard
// effects of the last partial window are conservatively deferred to the
// next Run/RunUntil call's first barrier).
func (se *ShardedEngine) RunUntil(deadline float64) {
	for {
		for _, h := range se.hooks {
			h()
		}
		t0 := se.nextTime()
		if t0 > deadline {
			break
		}
		w := se.window
		if w <= 0 {
			w = math.Inf(1)
		}
		t1 := t0 + w
		if t1 > deadline {
			// Final partial window: everything up to and including the
			// deadline is safe to run — effects produced at t <= deadline
			// land at t+W > deadline and stay queued.
			se.runWindowUntil(deadline)
			break
		}
		se.runWindow(t1)
	}
	for _, e := range se.engines {
		e.RunUntil(deadline)
	}
}

// collectActive gathers the shards with events strictly before t1.
func (se *ShardedEngine) collectActive(t1 float64) []int32 {
	se.active = se.active[:0]
	for i, e := range se.engines {
		if t, ok := e.NextTime(); ok && t < t1 {
			se.active = append(se.active, int32(i))
		}
	}
	return se.active
}

// runWindow drains every shard's events strictly before t1, in parallel
// up to the worker bound. Work-stealing is a simple atomic cursor over
// the shards that actually have events in the window.
func (se *ShardedEngine) runWindow(t1 float64) {
	active := se.collectActive(t1)
	if len(active) == 0 {
		return
	}
	w := min(se.workers, len(active))
	if w <= 1 {
		for _, i := range active {
			se.engines[i].RunBefore(t1)
		}
		return
	}
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				j := cursor.Add(1)
				if j >= int64(len(active)) {
					return
				}
				se.engines[active[j]].RunBefore(t1)
			}
		}()
	}
	wg.Wait()
}

// runWindowUntil is runWindow with an inclusive deadline (RunUntil's
// final partial window).
func (se *ShardedEngine) runWindowUntil(deadline float64) {
	active := se.collectActive(math.Nextafter(deadline, math.Inf(1)))
	if len(active) == 0 {
		return
	}
	w := min(se.workers, len(active))
	if w <= 1 {
		for _, i := range active {
			se.engines[i].RunUntil(deadline)
		}
		return
	}
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				j := cursor.Add(1)
				if j >= int64(len(active)) {
					return
				}
				se.engines[active[j]].RunUntil(deadline)
			}
		}()
	}
	wg.Wait()
}
