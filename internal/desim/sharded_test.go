package desim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/network"
)

// roundFingerprint serializes every observable field of a round result —
// delivered reports in arrival order, all tallies, phase times, radio
// stats, per-node energy charges, executed event count — so two runs are
// byte-identical exactly when their fingerprints match.
func roundFingerprint(res *RoundResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "reached=%d iso=%d gen=%d q=%.12g m=%.12g c=%.12g t=%.12g\n",
		res.QueryReached, res.IsolineNodes, res.Generated,
		res.QuerySeconds, res.MeasureSeconds, res.CollectSeconds, res.TotalSeconds)
	fmt.Fprintf(&b, "radio=%+v replydrops=%d reportdrops=%d crashed=%d repairs=%d severed=%d events=%d\n",
		res.Radio, res.ReplyDrops, res.ReportDrops, res.Crashed, res.Repairs, res.Severed, res.Events)
	for _, r := range res.Delivered {
		fmt.Fprintf(&b, "%d/%d %.12g (%.12g,%.12g) (%.12g,%.12g)\n",
			r.Source, r.LevelIndex, r.Level, r.Pos.X, r.Pos.Y, r.Grad.X, r.Grad.Y)
	}
	if res.Counters != nil {
		for i := 0; i < res.Counters.Len(); i++ {
			id := network.NodeID(i)
			if tx, rx := res.Counters.TxBytes(id), res.Counters.RxBytes(id); tx != 0 || rx != 0 {
				fmt.Fprintf(&b, "n%d tx=%d rx=%d\n", i, tx, rx)
			}
		}
	}
	return b.String()
}

// TestShardedFullRoundEquivalence is the tentpole's correctness bar: the
// sharded engine must reproduce the sequential round byte for byte — same
// delivered reports, same tallies, same energy charges, same event count,
// same trace multiset — at every shard count, worker count, and partition
// shape, including adversarial random partitions where nearly every node
// is a border node.
func TestShardedFullRoundEquivalence(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	nw := tree.Network()

	baseRec := traceRecorderFor(400)
	base, err := RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, nil, baseRec)
	if err != nil {
		t.Fatal(err)
	}
	want := roundFingerprint(base)
	wantTrace := goldenDigest(baseRec)

	type layout struct {
		name string
		part *network.Partition
	}
	layouts := []layout{
		{"grid1", network.NewGridPartition(nw, 1)},
		{"grid4", network.NewGridPartition(nw, 4)},
		{"grid6", network.NewGridPartition(nw, 6)},
		{"grid16", network.NewGridPartition(nw, 16)},
		{"seeded3", network.NewSeededPartition(nw, 3, 11)},
		{"seeded8", network.NewSeededPartition(nw, 8, 12)},
	}
	for _, l := range layouts {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", l.name, workers), func(t *testing.T) {
				rec := traceRecorderFor(400)
				res, err := RunFullRoundFaultsEngineTraced(NewShardedEngine(l.part, workers), tree, f, q, fc, cfg, nil, rec)
				if err != nil {
					t.Fatal(err)
				}
				if got := roundFingerprint(res); got != want {
					t.Errorf("sharded round diverged from sequential:\n%s", firstDiff(got, want))
				}
				if got := goldenDigest(rec); got != wantTrace {
					t.Errorf("sharded trace diverged:\n got  %s\n want %s", got, wantTrace)
				}
			})
		}
	}
}

// TestShardedFullRoundFaultsEquivalence repeats the equivalence bar under
// an active fault plan: lossy channel draws, mid-round crashes (with the
// delayed-visibility liveness view), route repairs and requeues all have
// to land identically when the round is split across shards. Plans are
// stateful, so every run gets a fresh identically-seeded one.
func TestShardedFullRoundFaultsEquivalence(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 400)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	cfg.FrameDeadline = 1.5
	nw := tree.Network()

	newPlan := func(seed int64) *faults.Plan {
		plan, err := faults.New(faults.Config{
			Seed: seed, Channel: faults.ChannelGilbertElliott, LossRate: 0.12, Burstiness: 0.5,
			CrashFraction: 0.1, CrashStart: 0.05, CrashEnd: 0.6,
			DuplicateRate: 0.15, CorruptRate: 0.05,
			Protect: []network.NodeID{tree.Root()},
		}, nw.Len())
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	for _, seed := range []int64{3, 9} {
		baseRec := traceRecorderFor(400)
		base, err := RunFullRoundFaultsEngineTraced(NewEngine(), tree, f, q, fc, cfg, newPlan(seed), baseRec)
		if err != nil {
			t.Fatal(err)
		}
		want := roundFingerprint(base)
		wantTrace := goldenDigest(baseRec)

		naive, err := RunFullRoundFaultsEngine(NewEngineNaive(), tree, f, q, fc, cfg, newPlan(seed))
		if err != nil {
			t.Fatal(err)
		}
		if got := roundFingerprint(naive); got != want {
			t.Errorf("seed %d: naive oracle diverged:\n%s", seed, firstDiff(got, want))
		}

		for _, k := range []int{4, 9} {
			for _, partKind := range []string{"grid", "seeded"} {
				t.Run(fmt.Sprintf("seed%d/%s%d", seed, partKind, k), func(t *testing.T) {
					part := network.NewGridPartition(nw, k)
					if partKind == "seeded" {
						part = network.NewSeededPartition(nw, k, seed)
					}
					rec := traceRecorderFor(400)
					res, err := RunFullRoundFaultsEngineTraced(NewShardedEngine(part, 4), tree, f, q, fc, cfg, newPlan(seed), rec)
					if err != nil {
						t.Fatal(err)
					}
					if got := roundFingerprint(res); got != want {
						t.Errorf("sharded faulted round diverged:\n%s", firstDiff(got, want))
					}
					if got := goldenDigest(rec); got != wantTrace {
						t.Errorf("sharded faulted trace diverged:\n got  %s\n want %s", got, wantTrace)
					}
					if res.Crashed == 0 {
						t.Error("fault plan crashed nobody — test exercises nothing")
					}
				})
			}
		}
	}
}

// TestRunFullRoundShardedEntry exercises the public grid-partition entry
// point against the sequential baseline.
func TestRunFullRoundShardedEntry(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 300)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	base, err := RunFullRound(tree, f, q, fc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFullRoundSharded(tree, f, q, fc, cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := roundFingerprint(res), roundFingerprint(base); got != want {
		t.Errorf("RunFullRoundSharded diverged:\n%s", firstDiff(got, want))
	}
	if _, err := RunFullRoundSharded(tree, f, q, fc, cfg, 0, 1); err == nil {
		t.Error("want error for shard count 0")
	}
}

// TestShardedEngineWindowScheduling pins the engine-level window
// mechanics without a radio: events land in timestamp order across
// shards, barriers fire between windows, and Steps nets out phantoms.
func TestShardedEngineWindowScheduling(t *testing.T) {
	part := &network.Partition{K: 3, Shard: []int32{0, 1, 2, 0, 1, 2}}
	se := NewShardedEngine(part, 2)
	se.SetLookahead(0.1)
	var order execOrder
	se.SetHandler(func(ev Event) { order.append(ev.Node) })
	// Same-window events on different shards, plus later windows.
	se.Shard(0).ScheduleEventAt(0.05, Event{Kind: evFlush, Node: 0})
	se.Shard(1).ScheduleEventAt(0.06, Event{Kind: evFlush, Node: 1})
	se.Shard(2).ScheduleEventAt(0.25, Event{Kind: evFlush, Node: 2})
	barriers := 0
	se.OnBarrier(func() { barriers++ })
	end := se.Run()
	if end != 0.25 {
		t.Errorf("end time %g, want 0.25", end)
	}
	if se.Steps() != 3 {
		t.Errorf("steps %d, want 3", se.Steps())
	}
	if barriers < 2 {
		t.Errorf("barriers %d, want >= 2 (one per window)", barriers)
	}
	got := order.ids
	if len(got) != 3 || got[2] != 2 {
		t.Errorf("execution order %v: the 0.25 event must run last", got)
	}
}

// TestShardedEngineFacade pins the EngineAPI facade: routing of typed
// events to the owning shard, closure placement on shard 0, the
// aggregate clock/depth/step views, and RunUntil's partial-window
// deadline semantics.
func TestShardedEngineFacade(t *testing.T) {
	part := &network.Partition{K: 2, Shard: []int32{0, 1, 0, 1}}
	se := NewShardedEngine(part, 1)
	se.SetLookahead(0.5)
	if se.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", se.Shards())
	}
	if se.Partition() != part {
		t.Fatal("Partition() does not expose the build partition")
	}
	if got := se.ShardOf(1); got != 1 {
		t.Fatalf("ShardOf(1) = %d, want 1", got)
	}
	// Synthetic addresses (broadcast pseudo-node, -1) land on shard 0.
	if got := se.ShardOf(-1); got != 0 {
		t.Fatalf("ShardOf(-1) = %d, want 0", got)
	}
	if got := se.ShardOf(99); got != 0 {
		t.Fatalf("ShardOf(99) = %d, want 0", got)
	}
	if se.Now() != 0 {
		t.Fatalf("fresh engine Now() = %g", se.Now())
	}

	var order execOrder
	se.SetHandler(func(ev Event) { order.append(ev.Node) })
	closures := 0
	se.Schedule(0.1, func() { closures++ })
	se.ScheduleAt(0.2, func() { closures++ })
	se.ScheduleEvent(1.0, Event{Kind: evFlush, Node: 1})   // -> shard 1
	se.ScheduleEventAt(2.0, Event{Kind: evFlush, Node: 2}) // -> shard 0
	if d := se.MaxQueueDepth(); d < 2 {
		t.Fatalf("MaxQueueDepth() = %d with 2 events on shard 0", d)
	}

	// Partial window: deadline 1.0 splits the second lookahead window, so
	// the t=1 event runs, the t=2 event stays queued, and every shard
	// clock lands on the deadline.
	se.RunUntil(1.0)
	if closures != 2 {
		t.Fatalf("closures run = %d, want 2", closures)
	}
	if len(order.ids) != 1 || order.ids[0] != 1 {
		t.Fatalf("events run by deadline 1.0: %v, want [1]", order.ids)
	}
	if se.Now() != 1.0 {
		t.Fatalf("Now() after RunUntil(1) = %g", se.Now())
	}
	end := se.Run()
	if end != 2.0 {
		t.Fatalf("Run() end = %g, want 2.0", end)
	}
	if len(order.ids) != 2 || order.ids[1] != 2 {
		t.Fatalf("final event order %v, want [1 2]", order.ids)
	}
	// Two typed events net of phantoms; closures are steps too.
	if se.Steps() != 4 {
		t.Fatalf("Steps() = %d, want 4", se.Steps())
	}
	se.CountPhantom(1)
	if se.Steps() != 3 {
		t.Fatalf("Steps() after CountPhantom(1) = %d, want 3", se.Steps())
	}
}

// TestEngineMaxQueueDepth pins the depth high-water mark on both
// sequential engines (the benchreport schema reports it per row).
func TestEngineMaxQueueDepth(t *testing.T) {
	for _, mk := range []func() EngineAPI{
		func() EngineAPI { return NewEngine() },
		func() EngineAPI { return NewEngineNaive() },
	} {
		eng := mk()
		eng.SetHandler(func(Event) {})
		for i := 0; i < 5; i++ {
			eng.ScheduleEvent(float64(i), Event{Kind: evFlush, Seq: int64(i)})
		}
		eng.Run()
		if d := eng.MaxQueueDepth(); d != 5 {
			t.Fatalf("%T: MaxQueueDepth = %d, want 5", eng, d)
		}
	}
}

// execOrder collects handler invocations; a mutex keeps the slice safe
// when windows run with several workers.
type execOrder struct {
	mu  sync.Mutex
	ids []network.NodeID
}

func (o *execOrder) append(id network.NodeID) {
	o.mu.Lock()
	o.ids = append(o.ids, id)
	o.mu.Unlock()
}

// firstDiff returns the first differing line of two multi-line strings,
// with context, so fingerprint mismatches are readable.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got  %q\n want %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("length differs: got %d lines, want %d", len(g), len(w))
}
