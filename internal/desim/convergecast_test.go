package desim

import (
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func isoMapRound(t *testing.T, n int, seed int64) (*routing.Tree, []core.Report) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(n, f, 1.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	generated := core.DetectIsolineNodes(nw, q, nil)
	var routable []core.Report
	for _, r := range generated {
		if tree.Reachable(r.Source) {
			routable = append(routable, r)
		}
	}
	return tree, routable
}

func reportSet(reports []core.Report) map[core.Report]bool {
	s := make(map[core.Report]bool, len(reports))
	for _, r := range reports {
		s[r] = true
	}
	return s
}

func TestCollectMatchesStructuralUnfiltered(t *testing.T) {
	// THE validation: without filtering, the packet-level collection must
	// deliver exactly the reports the structural engine delivers.
	tree, reports := isoMapRound(t, 2500, 1)
	structural := core.DeliverReports(tree, reports, core.FilterConfig{Enabled: false}, nil)

	res, err := CollectReports(tree, reports, core.FilterConfig{Enabled: false}, DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Radio.Drops > 0 {
		t.Logf("note: %d frames dropped under contention", res.Radio.Drops)
	}
	want := reportSet(structural)
	got := reportSet(res.Delivered)
	for r := range want {
		if !got[r] {
			t.Fatalf("packet-level lost report %v (radio %+v)", r, res.Radio)
		}
	}
	for r := range got {
		if !want[r] {
			t.Fatalf("packet-level delivered report %v the structural engine did not", r)
		}
	}
	// Transport recovery re-queues link-layer drops, so the delivered
	// multiset is exactly the structural set.
	if len(res.Delivered) != len(structural) {
		t.Fatalf("delivered %d != structural %d (duplicates?)", len(res.Delivered), len(structural))
	}
	if res.CompletionSeconds <= 0 {
		t.Error("zero completion time")
	}
	if res.Events <= 0 {
		t.Error("no events executed")
	}
}

func TestCollectFilteredStaysWithinGenerated(t *testing.T) {
	tree, reports := isoMapRound(t, 2500, 1)
	res, err := CollectReports(tree, reports, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) == 0 {
		t.Fatal("nothing delivered")
	}
	if len(res.Delivered) > len(reports) {
		t.Fatalf("delivered %d > generated %d", len(res.Delivered), len(reports))
	}
	// Every delivered report was generated.
	gen := reportSet(reports)
	for _, r := range res.Delivered {
		if !gen[r] {
			t.Fatalf("delivered unknown report %v", r)
		}
	}
	// Arrival-order filtering approximates the structural post-order
	// result: same ballpark of survivors.
	structural := core.DeliverReports(tree, reports, core.DefaultFilterConfig(), nil)
	lo, hi := len(structural)/2, len(structural)*2
	if len(res.Delivered) < lo || len(res.Delivered) > hi {
		t.Errorf("packet-level filtered count %d far from structural %d", len(res.Delivered), len(structural))
	}
}

func TestCollectLatencyAboveAirtimeBound(t *testing.T) {
	tree, reports := isoMapRound(t, 900, 3)
	res, err := CollectReports(tree, reports, core.FilterConfig{Enabled: false}, DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: the sink's last-hop volume must at least be serialized
	// over the air one frame at a time.
	var sinkBytes int
	for _, r := range res.Delivered {
		_ = r
		sinkBytes += core.ReportBytes
	}
	cfg := DefaultRadioConfig()
	lower := float64(sinkBytes) * 8 / cfg.BitsPerSecond
	if res.CompletionSeconds < lower {
		t.Errorf("completion %v below serialization bound %v", res.CompletionSeconds, lower)
	}
}

func TestCollectChargesPhysicalCosts(t *testing.T) {
	tree, reports := isoMapRound(t, 900, 3)
	res, err := CollectReports(tree, reports, core.FilterConfig{Enabled: false}, DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Physical accounting (acks, retries) must exceed the structural
	// perfect-link charge for the same delivery.
	c := res.Counters
	if c == nil {
		t.Fatal("no counters")
	}
	structuralBytes := int64(0)
	for _, r := range reports {
		structuralBytes += int64(core.ReportBytes * tree.Level(r.Source))
	}
	if c.TotalTxBytes() <= structuralBytes/2 {
		t.Errorf("physical tx %d implausibly low vs structural %d", c.TotalTxBytes(), structuralBytes)
	}
}

func TestCollectNilTree(t *testing.T) {
	if _, err := CollectReports(nil, nil, core.FilterConfig{}, DefaultRadioConfig()); err == nil {
		t.Error("want error for nil tree")
	}
}

func TestCollectEmptyReports(t *testing.T) {
	tree, _ := isoMapRound(t, 100, 2)
	res, err := CollectReports(tree, nil, core.DefaultFilterConfig(), DefaultRadioConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delivered) != 0 || res.CompletionSeconds != 0 {
		t.Errorf("empty collection delivered %d in %v", len(res.Delivered), res.CompletionSeconds)
	}
}
