package desim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"isomap/internal/network"
)

// tieWorkload builds a batch of typed events with heavy timestamp
// collisions: a handful of distinct times, kinds, nodes, seqs and args,
// so most pairs tie on at least the timestamp.
func tieWorkload(rng *rand.Rand, n int) ([]float64, []Event) {
	times := make([]float64, n)
	evs := make([]Event, n)
	kinds := []EventKind{evBroadcastAttempt, evAttempt, evFinishRx, evFlush, evMeasure}
	for i := 0; i < n; i++ {
		times[i] = float64(rng.Intn(4)) * 0.25
		evs[i] = Event{
			Kind: kinds[rng.Intn(len(kinds))],
			Node: network.NodeID(rng.Intn(5)),
			Seq:  int64(rng.Intn(3)),
			Arg:  int32(rng.Intn(3)),
		}
	}
	return times, evs
}

type poppedEv struct {
	t  float64
	ev Event
}

func popOrder(eng EngineAPI, times []float64, evs []Event, perm []int) []poppedEv {
	var got []poppedEv
	eng.SetHandler(func(ev Event) {
		got = append(got, poppedEv{t: eng.Now(), ev: ev})
	})
	for _, i := range perm {
		eng.ScheduleEventAt(times[i], evs[i])
	}
	eng.Run()
	return got
}

// TestEngineTieBreakInsertionInvariant pins the tie-breaking contract
// documented on less: events scheduled at identical timestamps pop in a
// deterministic intrinsic order — (t, kind, node, seq, arg) — regardless
// of the order they were inserted, on both the production Engine and the
// EngineNaive oracle. Sharded execution depends on this: per-shard heaps
// must pop the same relative order a single global heap would.
func TestEngineTieBreakInsertionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 40 + rng.Intn(80)
		times, evs := tieWorkload(rng, n)

		// The reference order is the intrinsic sort of the workload
		// itself (stable, so full-key duplicates keep insertion order of
		// the identity permutation).
		type keyed struct {
			t  float64
			ev Event
		}
		want := make([]keyed, n)
		for i := range evs {
			want[i] = keyed{times[i], evs[i]}
		}
		sort.SliceStable(want, func(i, j int) bool {
			a, b := want[i], want[j]
			if a.t != b.t {
				return a.t < b.t
			}
			if a.ev.Kind != b.ev.Kind {
				return a.ev.Kind < b.ev.Kind
			}
			if a.ev.Node != b.ev.Node {
				return a.ev.Node < b.ev.Node
			}
			if a.ev.Seq != b.ev.Seq {
				return a.ev.Seq < b.ev.Seq
			}
			return a.ev.Arg < b.ev.Arg
		})

		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		base := popOrder(NewEngine(), times, evs, identity)
		if len(base) != n {
			t.Fatalf("trial %d: popped %d of %d events", trial, len(base), n)
		}
		for i, g := range base {
			if g.t != want[i].t || g.ev != want[i].ev {
				t.Fatalf("trial %d: pop %d = %+v at t=%v, want %+v at t=%v",
					trial, i, g.ev, g.t, want[i].ev, want[i].t)
			}
		}

		for p := 0; p < 4; p++ {
			perm := rng.Perm(n)
			if got := popOrder(NewEngine(), times, evs, perm); !reflect.DeepEqual(got, base) {
				t.Fatalf("trial %d perm %d: Engine pop order depends on insertion order", trial, p)
			}
			if got := popOrder(NewEngineNaive(), times, evs, perm); !reflect.DeepEqual(got, base) {
				t.Fatalf("trial %d perm %d: EngineNaive pop order differs from Engine", trial, p)
			}
		}
	}
}

// TestEngineTieBreakClosuresLast verifies the closure half of the
// contract: closure events sort after every typed event at the same
// timestamp and keep insertion order among themselves.
func TestEngineTieBreakClosuresLast(t *testing.T) {
	for _, eng := range []EngineAPI{NewEngine(), NewEngineNaive()} {
		var order []int
		eng.SetHandler(func(ev Event) { order = append(order, int(ev.Seq)) })
		eng.ScheduleAt(1.0, func() { order = append(order, 100) })
		eng.ScheduleEventAt(1.0, Event{Kind: evFlush, Node: 3, Seq: 2})
		eng.ScheduleAt(1.0, func() { order = append(order, 101) })
		eng.ScheduleEventAt(1.0, Event{Kind: evFlush, Node: 1, Seq: 1})
		eng.Run()
		want := []int{1, 2, 100, 101}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("%T: order %v, want %v", eng, order, want)
		}
	}
}
