package desim

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// CollectionResult is the outcome of a packet-level report collection.
type CollectionResult struct {
	// Delivered are the reports that reached the sink, in arrival order.
	Delivered []core.Report
	// CompletionSeconds is the time the last report arrived.
	CompletionSeconds float64
	// Radio exposes the link-layer statistics of the run.
	Radio RadioStats
	// Counters holds the physical tx/rx charges (retries and acks
	// included) when collection was created with accounting.
	Counters *metrics.Counters
	// Events is the number of simulator events executed.
	Events int64
}

// CollectReports executes the delivery phase of an Iso-Map round on the
// discrete-event radio: every source injects its reports at a jittered
// start, every tree node forwards (and, with fc enabled, filters) each
// frame toward the sink as it arrives. It is the packet-level counterpart
// of core.DeliverReports.
func CollectReports(tree *routing.Tree, reports []core.Report, fc core.FilterConfig, cfg RadioConfig) (*CollectionResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	nw := tree.Network()
	eng := NewEngine()
	counters := metrics.NewCounters(nw.Len())
	radio, err := NewRadio(eng, nw, cfg, counters)
	if err != nil {
		return nil, err
	}

	res := &CollectionResult{Counters: counters}
	// Per-node kept reports: the filter state each node compares against.
	kept := make(map[network.NodeID][]core.Report, len(reports))
	// Per-node outbox: reports awaiting the next flush toward the parent.
	// Batching arrivals into one frame keeps the contention near the sink
	// manageable, as real convergecast implementations do.
	outbox := make(map[network.NodeID][]core.Report)
	flushArmed := make(map[network.NodeID]bool)
	const flushDelaySlots = 6

	// seen tracks exact report identity per node: transport-layer
	// re-queues after lost acks can replay a batch the node already
	// relayed, and replays must not propagate twice.
	seen := make(map[network.NodeID]map[core.Report]bool)

	// accept dedups exact replays and applies in-network filtering at a
	// node, returning the fresh subset and updating the node's state.
	accept := func(at network.NodeID, incoming []core.Report) []core.Report {
		if seen[at] == nil {
			seen[at] = make(map[core.Report]bool)
		}
		var fresh []core.Report
		for _, r := range incoming {
			if seen[at][r] {
				continue
			}
			seen[at][r] = true
			if !fc.Enabled {
				kept[at] = append(kept[at], r)
				fresh = append(fresh, r)
				continue
			}
			dup := false
			for _, k := range kept[at] {
				counters.ChargeOps(at, core.OpsFilterPerComparison)
				if fc.Redundant(k, r) {
					dup = true
					break
				}
			}
			if !dup {
				kept[at] = append(kept[at], r)
				fresh = append(fresh, r)
			}
		}
		return fresh
	}

	// forward queues a report batch at a node and arms its flush: one
	// frame per flush carries everything queued meanwhile.
	forward := func(from network.NodeID, batch []core.Report) {
		if len(batch) == 0 {
			return
		}
		parent := tree.Parent(from)
		if parent < 0 {
			return
		}
		outbox[from] = append(outbox[from], batch...)
		if flushArmed[from] {
			return
		}
		flushArmed[from] = true
		// Stagger flushes per node to decorrelate relay bursts.
		delay := float64(flushDelaySlots+int(from)%5) * cfg.SlotTime
		eng.Schedule(delay, func() {
			flushArmed[from] = false
			pending := outbox[from]
			delete(outbox, from)
			if len(pending) == 0 {
				return
			}
			_ = radio.Send(from, parent, core.ReportBytes*len(pending), pending)
		})
	}

	// Transport-layer recovery: a batch abandoned by the link layer goes
	// back into its sender's outbox and is flushed again after a pause,
	// so sustained contention delays reports rather than losing them.
	radio.OnDrop(func(f Frame) {
		batch, ok := f.Payload.([]core.Report)
		if !ok {
			return
		}
		eng.Schedule(32*cfg.SlotTime, func() { forward(f.From, batch) })
	})

	// Install the receive handlers: filter, then deliver or relay.
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !tree.Reachable(id) {
			continue
		}
		nodeID := id
		radio.OnReceive(nodeID, func(f Frame) {
			batch, ok := f.Payload.([]core.Report)
			if !ok {
				return
			}
			fresh := accept(nodeID, batch)
			if nodeID == tree.Root() {
				res.Delivered = append(res.Delivered, fresh...)
				if len(fresh) > 0 {
					res.CompletionSeconds = eng.Now()
				}
				return
			}
			forward(nodeID, fresh)
		})
	}

	// Inject every source's reports with a small deterministic jitter to
	// de-synchronize first transmissions.
	bySource := make(map[network.NodeID][]core.Report, len(reports))
	for _, r := range reports {
		if tree.Reachable(r.Source) {
			bySource[r.Source] = append(bySource[r.Source], r)
		}
	}
	jitter := 0
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		batch, ok := bySource[id]
		if !ok {
			continue
		}
		jitter++
		src := id
		b := batch
		// Spread source injections widely: simultaneous first
		// transmissions across the field are what collision storms feed
		// on.
		eng.Schedule(float64(jitter*3%256)*cfg.SlotTime, func() {
			fresh := accept(src, b)
			if src == tree.Root() {
				res.Delivered = append(res.Delivered, fresh...)
				return
			}
			forward(src, fresh)
		})
	}

	eng.Run()
	res.Radio = radio.Stats
	res.Events = eng.Steps()
	return res, nil
}
