package desim

import (
	"fmt"

	"isomap/internal/core"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// CollectionResult is the outcome of a packet-level report collection.
type CollectionResult struct {
	// Delivered are the reports that reached the sink, in arrival order.
	Delivered []core.Report
	// CompletionSeconds is the time the last report arrived.
	CompletionSeconds float64
	// Radio exposes the link-layer statistics of the run.
	Radio RadioStats
	// Counters holds the physical tx/rx charges (retries and acks
	// included) when collection was created with accounting.
	Counters *metrics.Counters
	// Events is the number of simulator events executed.
	Events int64
}

// parkedBatches holds report batches the transport layer has taken off a
// dropped frame while their re-queue event is in flight. Slots recycle
// through a free-list and the batch slices come from (and return to) the
// radio's pool, so sustained loss re-queues without allocating.
type parkedBatches struct {
	slots [][]core.Report
	free  []int32
}

// park copies batch into a pooled slice and returns its slot.
func (p *parkedBatches) park(pool *batchPool, batch []core.Report) int32 {
	var s int32
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		p.slots = append(p.slots, nil)
		s = int32(len(p.slots) - 1)
	}
	p.slots[s] = append(pool.get(), batch...)
	return s
}

// take empties a slot, returning its batch; the caller must hand the
// batch back to the pool when done.
func (p *parkedBatches) take(s int32) []core.Report {
	b := p.slots[s]
	p.slots[s] = nil
	p.free = append(p.free, s)
	return b
}

// CollectReports executes the delivery phase of an Iso-Map round on the
// discrete-event radio: every source injects its reports at a jittered
// start, every tree node forwards (and, with fc enabled, filters) each
// frame toward the sink as it arrives. It is the packet-level counterpart
// of core.DeliverReports.
func CollectReports(tree *routing.Tree, reports []core.Report, fc core.FilterConfig, cfg RadioConfig) (*CollectionResult, error) {
	return CollectReportsEngine(NewEngine(), tree, reports, fc, cfg)
}

// CollectReportsEngine is CollectReports on a caller-supplied scheduler:
// the production Engine or the EngineNaive reference oracle. Both execute
// the identical event sequence — the equivalence property tests pin that.
func CollectReportsEngine(eng EngineAPI, tree *routing.Tree, reports []core.Report, fc core.FilterConfig, cfg RadioConfig) (*CollectionResult, error) {
	if tree == nil {
		return nil, fmt.Errorf("desim: nil routing tree")
	}
	nw := tree.Network()
	counters := metrics.NewCounters(nw.Len())
	radio, err := NewRadio(eng, nw, cfg, counters)
	if err != nil {
		return nil, err
	}

	res := &CollectionResult{Counters: counters}
	n := nw.Len()
	// Per-node kept reports: the filter state each node compares against.
	kept := make([][]core.Report, n)
	// Per-node outbox: reports awaiting the next flush toward the parent.
	// Batching arrivals into one frame keeps the contention near the sink
	// manageable, as real convergecast implementations do. Outboxes keep
	// their capacity across flushes.
	outbox := make([][]core.Report, n)
	flushArmed := make([]bool, n)
	const flushDelaySlots = 6

	// seen tracks exact report identity per node: transport-layer
	// re-queues after lost acks can replay a batch the node already
	// relayed, and replays must not propagate twice. Allocated lazily —
	// most nodes of a sparse collection never relay.
	seen := make([]map[core.Report]bool, n)

	// fresh is the scratch slice accept fills; its contents are consumed
	// (copied onward) before the next accept call, so one buffer serves
	// every frame.
	var freshScratch []core.Report

	// accept dedups exact replays and applies in-network filtering at a
	// node, returning the fresh subset and updating the node's state. The
	// returned slice is valid until the next accept call.
	accept := func(at network.NodeID, incoming []core.Report) []core.Report {
		if seen[at] == nil {
			seen[at] = make(map[core.Report]bool)
		}
		fresh := freshScratch[:0]
		for _, r := range incoming {
			if seen[at][r] {
				continue
			}
			seen[at][r] = true
			if !fc.Enabled {
				kept[at] = append(kept[at], r)
				fresh = append(fresh, r)
				continue
			}
			dup := false
			for _, k := range kept[at] {
				counters.ChargeOps(at, core.OpsFilterPerComparison)
				if fc.Redundant(k, r) {
					dup = true
					break
				}
			}
			if !dup {
				kept[at] = append(kept[at], r)
				fresh = append(fresh, r)
			}
		}
		freshScratch = fresh
		return fresh
	}

	// forward queues a report batch at a node and arms its flush: one
	// frame per flush carries everything queued meanwhile.
	forward := func(from network.NodeID, batch []core.Report) {
		if len(batch) == 0 {
			return
		}
		if tree.Parent(from) < 0 {
			return
		}
		outbox[from] = append(outbox[from], batch...)
		if flushArmed[from] {
			return
		}
		flushArmed[from] = true
		// Stagger flushes per node to decorrelate relay bursts.
		delay := float64(flushDelaySlots+int(from)%5) * cfg.SlotTime
		eng.ScheduleEvent(delay, Event{Kind: evFlush, Node: from})
	}

	// flush empties a node's outbox into one frame toward its parent. The
	// frame rides a pooled batch copy, so the outbox keeps its capacity.
	flush := func(from network.NodeID) {
		flushArmed[from] = false
		pending := outbox[from]
		outbox[from] = pending[:0]
		if len(pending) == 0 {
			return
		}
		batch := append(radio.pool.get(), pending...)
		_ = radio.SendReports(from, tree.Parent(from), core.ReportBytes*len(pending), batch)
	}

	// Transport-layer recovery: a batch abandoned by the link layer goes
	// back into its sender's outbox and is flushed again after a pause,
	// so sustained contention delays reports rather than losing them. The
	// dropped frame's batch is recycled when the handler returns, so it
	// is parked in a pooled copy until the re-queue event fires.
	var parked parkedBatches
	radio.OnDrop(func(f Frame) {
		if f.Kind != FrameReports {
			return
		}
		slot := parked.park(&radio.pool, f.Batch)
		eng.ScheduleEvent(32*cfg.SlotTime, Event{Kind: evRequeue, Node: f.From, Arg: slot})
	})

	// Inject every source's reports with a small deterministic jitter to
	// de-synchronize first transmissions.
	bySource := make([][]core.Report, n)
	for _, r := range reports {
		if tree.Reachable(r.Source) {
			bySource[r.Source] = append(bySource[r.Source], r)
		}
	}

	root := tree.Root()
	// onFrame is the single receive handler every tree node shares:
	// filter, then deliver or relay.
	onFrame := func(at network.NodeID, f Frame) {
		if f.Kind != FrameReports {
			return
		}
		fresh := accept(at, f.Batch)
		if at == root {
			res.Delivered = append(res.Delivered, fresh...)
			if len(fresh) > 0 {
				res.CompletionSeconds = eng.Now()
			}
			return
		}
		forward(at, fresh)
	}
	for i := 0; i < n; i++ {
		if id := network.NodeID(i); tree.Reachable(id) {
			radio.OnReceive(id, onFrame)
		}
	}

	radio.OnEvent(func(ev Event) {
		switch ev.Kind {
		case evFlush:
			flush(ev.Node)
		case evRequeue:
			b := parked.take(ev.Arg)
			forward(ev.Node, b)
			radio.pool.put(b)
		case evInject:
			fresh := accept(ev.Node, bySource[ev.Node])
			if ev.Node == root {
				res.Delivered = append(res.Delivered, fresh...)
				return
			}
			forward(ev.Node, fresh)
		}
	})

	jitter := 0
	for i := 0; i < n; i++ {
		id := network.NodeID(i)
		if len(bySource[id]) == 0 {
			continue
		}
		jitter++
		// Spread source injections widely: simultaneous first
		// transmissions across the field are what collision storms feed
		// on.
		eng.ScheduleEvent(float64(jitter*3%256)*cfg.SlotTime, Event{Kind: evInject, Node: id})
	}

	eng.Run()
	res.Radio = radio.Stats
	res.Events = eng.Steps()
	return res, nil
}
