package desim

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
)

// cliqueNetwork returns a 4-node clique (2x2 grid, spacing 25, radio 40
// covers the 35.36-unit diagonal).
func cliqueNetwork(t *testing.T) *network.Network {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployGrid(4, f, 40)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// hiddenNetwork returns a 2x2 grid with radio 30: adjacent nodes (25
// apart) hear each other but diagonals (35.36 apart) do not — the classic
// hidden-terminal topology relative to any receiver.
func hiddenNetwork(t *testing.T) *network.Network {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployGrid(4, f, 30)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRadioDelivery(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	c := metrics.NewCounters(nw.Len())
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	var got []Frame
	r.OnReceive(1, func(_ network.NodeID, f Frame) { got = append(got, f) })
	if err := r.Send(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	if got[0].From != 0 || got[0].To != 1 {
		t.Errorf("frame = %+v", got[0])
	}
	if r.Stats.Delivered != 1 || r.Stats.DataSent != 1 {
		t.Errorf("stats = %+v", r.Stats)
	}
	// Physical accounting includes the data frame at both ends.
	if c.TxBytes(0) < 10 {
		t.Errorf("sender tx = %d", c.TxBytes(0))
	}
	if c.RxBytes(1) < 10 {
		t.Errorf("receiver rx = %d", c.RxBytes(1))
	}
	// The ack travels back.
	if c.TxBytes(1) == 0 {
		t.Error("no ack transmitted")
	}
}

func TestRadioSendValidation(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Send(0, 1, 0); err == nil {
		t.Error("want error for empty frame")
	}
	nw.Node(1).Failed = true
	if err := r.Send(0, 1, 10); err == nil {
		t.Error("want error for dead receiver")
	}
	if _, err := NewRadio(nil, nw, DefaultRadioConfig(), nil); err == nil {
		t.Error("want error for nil engine")
	}
	bad := DefaultRadioConfig()
	bad.BitsPerSecond = 0
	if _, err := NewRadio(eng, nw, bad, nil); err == nil {
		t.Error("want error for zero bitrate")
	}
}

func TestRadioConcurrentSendersEventuallyDeliver(t *testing.T) {
	// All four nodes of a clique transmit to node 0 at once: CSMA backoff
	// plus retransmission must deliver every frame despite collisions.
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	r.OnReceive(0, func(network.NodeID, Frame) { got++ })
	for _, src := range []network.NodeID{1, 2, 3} {
		if err := r.Send(src, 0, 20); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if got != 3 {
		t.Fatalf("delivered %d of 3 concurrent frames (stats %+v)", got, r.Stats)
	}
}

func TestRadioManyFramesUnderContention(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const perSender = 10
	got := 0
	r.OnReceive(0, func(network.NodeID, Frame) { got++ })
	for k := 0; k < perSender; k++ {
		for _, src := range []network.NodeID{1, 2, 3} {
			k := k
			src := src
			eng.Schedule(float64(k)*0.002, func() {
				if err := r.Send(src, 0, 12); err != nil {
					t.Error(err)
				}
			})
		}
	}
	eng.Run()
	want := perSender * 3
	if got < want-r.Stats.Drops {
		t.Fatalf("delivered %d, sent %d, drops %d (stats %+v)", got, want, r.Stats.Drops, r.Stats)
	}
	if got+r.Stats.Drops != want {
		t.Fatalf("delivered %d + drops %d != sent %d", got, r.Stats.Drops, want)
	}
}

func TestRadioNoDuplicateDeliveries(t *testing.T) {
	// Force heavy contention so acks are lost and retransmissions occur;
	// the receiver must still deliver each frame once.
	nw := cliqueNetwork(t)
	eng := NewEngine()
	cfg := DefaultRadioConfig()
	cfg.MaxRetries = 12
	r, err := NewRadio(eng, nw, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]int)
	for _, dst := range []network.NodeID{0, 1} {
		dst := dst
		r.OnReceive(dst, func(_ network.NodeID, f Frame) { seen[f.seq]++ })
	}
	id := 0
	for k := 0; k < 8; k++ {
		for _, pair := range [][2]network.NodeID{{2, 0}, {3, 1}, {1, 0}} {
			id++
			src, dst := pair[0], pair[1]
			eng.Schedule(float64(k)*0.001, func() {
				_ = r.Send(src, dst, 16)
			})
		}
	}
	eng.Run()
	for seq, count := range seen {
		if count > 1 {
			t.Fatalf("frame seq %d delivered %d times", seq, count)
		}
	}
}

func TestRadioHiddenTerminalCollides(t *testing.T) {
	// Nodes 1 (right) and 2 (top) cannot sense each other but both reach
	// node 0: simultaneous sends collide at 0, yet retransmission
	// eventually delivers both.
	nw := hiddenNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	r.OnReceive(0, func(network.NodeID, Frame) { got++ })
	if err := r.Send(1, 0, 20); err != nil {
		t.Fatal(err)
	}
	if err := r.Send(2, 0, 20); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if r.Stats.Collisions == 0 {
		t.Error("hidden terminals should have collided")
	}
	if got != 2 {
		t.Fatalf("delivered %d of 2 (stats %+v)", got, r.Stats)
	}
}

func TestRadioOutOfRangeNeverDelivers(t *testing.T) {
	// Diagonal nodes of the hidden topology share no link: the frame is
	// retried and finally dropped.
	nw := hiddenNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	r.OnReceive(3, func(network.NodeID, Frame) { got++ })
	if err := r.Send(0, 3, 20); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Error("out-of-range frame delivered")
	}
	if r.Stats.Drops != 1 {
		t.Errorf("Drops = %d, want 1", r.Stats.Drops)
	}
}

func TestRadioConservationProperty(t *testing.T) {
	// Over many random workloads on a clique: every data frame either
	// delivers exactly once or is counted as a drop.
	for seed := int64(1); seed <= 8; seed++ {
		nw := cliqueNetwork(t)
		eng := NewEngine()
		cfg := DefaultRadioConfig()
		cfg.Seed = seed
		r, err := NewRadio(eng, nw, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		delivered := 0
		for id := network.NodeID(0); id < 4; id++ {
			r.OnReceive(id, func(network.NodeID, Frame) { delivered++ })
		}
		sent := 0
		rngState := seed
		next := func(n int64) int64 {
			rngState = (rngState*6364136223846793005 + 1442695040888963407)
			v := rngState % n
			if v < 0 {
				v = -v
			}
			return v
		}
		for k := 0; k < 25; k++ {
			src := network.NodeID(next(4))
			dst := network.NodeID(next(4))
			if src == dst {
				continue
			}
			sent++
			at := float64(next(40)) * cfg.SlotTime
			s, d := src, dst
			eng.Schedule(at, func() { _ = r.Send(s, d, 8+int(next(20))) })
		}
		eng.Run()
		if delivered+r.Stats.Drops != sent {
			t.Fatalf("seed %d: delivered %d + drops %d != sent %d (stats %+v)",
				seed, delivered, r.Stats.Drops, sent, r.Stats)
		}
		if r.Stats.Delivered != delivered {
			t.Fatalf("seed %d: stats delivered %d != handler count %d", seed, r.Stats.Delivered, delivered)
		}
	}
}

func TestBroadcastReachesIntactNeighbors(t *testing.T) {
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	heard := make(map[network.NodeID]int)
	for id := network.NodeID(0); id < 4; id++ {
		id := id
		r.OnReceive(id, func(at network.NodeID, _ Frame) { heard[at]++ })
	}
	if err := r.Broadcast(0, 8); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Quiet medium: every neighbor of 0 hears it exactly once; the sender
	// does not deliver to itself.
	for _, nb := range nw.AliveNeighbors(0) {
		if heard[nb] != 1 {
			t.Errorf("neighbor %d heard %d times", nb, heard[nb])
		}
	}
	if heard[0] != 0 {
		t.Errorf("sender heard its own broadcast %d times", heard[0])
	}
	// Validation errors.
	if err := r.Broadcast(0, 0); err == nil {
		t.Error("want error for empty broadcast")
	}
	nw.Node(2).Failed = true
	if err := r.Broadcast(2, 8); err == nil {
		t.Error("want error for dead broadcaster")
	}
}
