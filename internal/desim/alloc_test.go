package desim

import (
	"testing"

	"isomap/internal/metrics"
	"isomap/internal/network"
)

// TestEngineScheduleZeroAllocs pins the engine's steady-state contract:
// once the heap and closure arena have warmed to their working-set size,
// scheduling and executing typed events performs zero heap allocations.
// Any regression here — a re-boxed payload, a closure sneaking back into
// the hot path — fails this test before it shows up in a benchmark.
func TestEngineScheduleZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	eng := NewEngine()
	eng.SetHandler(func(Event) {})
	// Warm the heap array past the depth the measured loop reaches.
	for i := 0; i < 1024; i++ {
		eng.ScheduleEvent(float64(i)*1e-4, Event{Kind: evMeasure, Seq: int64(i)})
	}
	eng.Run()

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			eng.ScheduleEvent(float64(i%7)*1e-4, Event{Kind: evMeasure, Node: network.NodeID(i % 32), Seq: int64(i), Arg: int32(i)})
		}
		eng.Run()
	})
	if allocs != 0 {
		t.Errorf("typed schedule/step allocated %.1f allocs per 256-event burst, want 0", allocs)
	}
}

// TestEngineClosureArenaReuse pins the closure path's arena: after warmup
// the free-list recycles fnRec slots, so a schedule-and-run cycle costs
// only the closure values themselves (one allocation each when they
// capture, as these do via the engine pointer).
func TestEngineClosureArenaReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	eng := NewEngine()
	eng.SetHandler(func(Event) {})
	fired := 0
	fn := func() { fired++ }
	for i := 0; i < 64; i++ {
		eng.Schedule(float64(i)*1e-4, fn)
	}
	eng.Run()

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			eng.Schedule(float64(i%5)*1e-4, fn)
		}
		eng.Run()
	})
	// fn is a prebuilt value: the arena absorbs the bookkeeping, so the
	// whole burst should be allocation-free too.
	if allocs != 0 {
		t.Errorf("closure schedule/step allocated %.1f allocs per 64-event burst, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("closures never ran")
	}
}

// TestRadioSendAllocs pins the link-layer hot path: a no-contention
// acknowledged unicast — frame arena slot, CSMA attempt, transmission,
// receptions, ack round trip — must average at most one allocation per
// Send. The residual budget covers the per-node dedup maps growing as
// sequence numbers accumulate; everything else is recycled.
func TestRadioSendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	nw := cliqueNetwork(t)
	eng := NewEngine()
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: frame slots, heap capacity, dedup maps, RNG state.
	for i := 0; i < 100; i++ {
		if err := r.Send(0, 1, 16); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}

	allocs := testing.AllocsPerRun(200, func() {
		if err := r.Send(0, 1, 16); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	})
	if allocs > 1 {
		t.Errorf("no-contention Send allocated %.2f allocs/op, want <= 1", allocs)
	}
	if r.Stats.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestRadioSendAllocsWithCounters is the same pin with energy accounting
// attached, covering the ChargeTx/ChargeRx paths that every experiment
// run exercises.
func TestRadioSendAllocsWithCounters(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	nw := cliqueNetwork(t)
	eng := NewEngine()
	c := metrics.NewCounters(nw.Len())
	r, err := NewRadio(eng, nw, DefaultRadioConfig(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := r.Send(0, 1, 16); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := r.Send(0, 1, 16); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	})
	if allocs > 1 {
		t.Errorf("accounted Send allocated %.2f allocs/op, want <= 1", allocs)
	}
}
