// Package desim is a discrete-event, packet-level execution engine for
// the sensor network: an event queue, a CSMA/CA radio model with
// collisions, acknowledgements and retransmissions, and a convergecast
// that carries Iso-Map reports to the sink frame by frame.
//
// The structural simulation (internal/core's post-order delivery) charges
// costs without a notion of time or contention; desim executes the same
// collection as actual transmissions, validating the structural results
// and measuring what they cannot: real collection latency under
// contention, retry counts, and collision losses. The paper itself
// assumes a perfect link layer (Sec. 5); desim is the machinery to check
// how far from perfect a contended CSMA collection is.
package desim

import "container/heap"

// Engine is a deterministic discrete-event scheduler.
type Engine struct {
	now   float64
	seq   int64
	queue eventHeap
	steps int64
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// Schedule enqueues fn to run delay seconds from now. Non-positive delays
// run at the current time, after already-queued same-time events
// (insertion order is preserved among equal timestamps).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, event{t: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advancing the
// clock to the deadline. Later events stay queued.
func (e *Engine) RunUntil(deadline float64) {
	for e.queue.Len() > 0 && e.queue[0].t <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.t
	e.steps++
	ev.fn()
}
