// Package desim is a discrete-event, packet-level execution engine for
// the sensor network: an event queue, a CSMA/CA radio model with
// collisions, acknowledgements and retransmissions, and a convergecast
// that carries Iso-Map reports to the sink frame by frame.
//
// The structural simulation (internal/core's post-order delivery) charges
// costs without a notion of time or contention; desim executes the same
// collection as actual transmissions, validating the structural results
// and measuring what they cannot: real collection latency under
// contention, retry counts, and collision losses. The paper itself
// assumes a perfect link layer (Sec. 5); desim is the machinery to check
// how far from perfect a contended CSMA collection is.
//
// The production Engine keeps the hot path allocation-free: events are
// typed, fixed-size records on an index-addressed 4-ary heap whose
// record slots are recycled through a free-list, so scheduling a
// tx/rx/backoff/timer event never touches the garbage collector once the
// arena has warmed up. EngineNaive retains the original closure-per-event
// implementation as the reference oracle (see engine_naive.go); the
// equivalence property tests prove both execute identical schedules.
package desim

import "isomap/internal/network"

// EventKind tags a typed event with the action it triggers. The radio
// consumes the ev* link-layer kinds itself and forwards everything else
// to the upper layer registered with Radio.OnEvent.
type EventKind uint8

const (
	evNone EventKind = iota

	// Link-layer events, handled by Radio. Data-frame events address the
	// frame arena by slot (Arg) and validate against the frame's unique
	// sequence number (Seq): a recycled slot fails the check, so stale
	// events are ignored without a seq-to-slot lookup.
	// Every link-layer event also carries the owning node in Node and the
	// frame's globally unique sequence number in Seq: the (kind, node,
	// seq) triple is partition-invariant, which the intrinsic tie-break
	// (see less) relies on — arena slot numbers ride in Arg, where the
	// comparator provably never reaches them (seqs are unique).
	evBroadcastAttempt // Node: sender, Seq: frame seq, Arg: arena slot
	evAttempt          // Node: sender, Seq: frame seq, Arg: arena slot
	evAckTimeout       // Node: sender, Seq: frame seq, Arg: arena slot
	evFinishRx         // Node: receiving node
	evAckSend          // Node: acker, Seq: ack frame seq, Arg: arena slot
	evAckRetry         // Node: acker, Seq: ack frame seq, Arg: arena slot
	evPropagate        // Node: sender, Seq: frame seq, Arg: slot (>=0 local, -(slot+1) import)

	// Upper-layer events, handled by the convergecast / full round.
	evFlush       // Node: node whose outbox flushes toward its parent
	evRequeue     // Node: original sender, Arg: parked-batch slot
	evInject      // Node: source injecting its reports
	evRebroadcast // Node: node re-flooding the query
	evProbeStart  // Node: isoline candidate starting its probe
	evMeasure     // Node: candidate whose reply window closed
	evReplySend   // Node: probed neighbor, Seq: asking node
	evCrash       // Arg: index into the fault plan's crash schedule
	evDeltaRetire // Node: delta-mode node withdrawing its tracked reports
)

// Event is a typed, fixed-size event record: a kind tag, a target node
// and two small arguments whose meaning depends on the kind (documented
// at each kind constant). Events carry no pointers, so scheduling one
// allocates nothing and the queue is invisible to the garbage collector.
type Event struct {
	Kind EventKind
	Node network.NodeID
	Seq  int64
	Arg  int32
}

// EngineAPI is the scheduling surface shared by the production Engine and
// the EngineNaive reference, letting the same radio and round code run on
// either for oracle tests and benchmarks.
type EngineAPI interface {
	// Now returns the current simulation time in seconds.
	Now() float64
	// Steps returns the number of events executed so far.
	Steps() int64
	// MaxQueueDepth returns the peak event-queue length observed.
	MaxQueueDepth() int
	// Schedule enqueues fn to run delay seconds from now (closure path:
	// cold control events and tests; allocates the closure).
	Schedule(delay float64, fn func())
	// ScheduleAt enqueues fn at absolute time t (clamped to now).
	ScheduleAt(t float64, fn func())
	// ScheduleEvent enqueues a typed event delay seconds from now; on the
	// production Engine this performs zero heap allocations.
	ScheduleEvent(delay float64, ev Event)
	// ScheduleEventAt enqueues a typed event at absolute time t.
	ScheduleEventAt(t float64, ev Event)
	// SetHandler installs the dispatcher typed events are delivered to.
	// It must be set before the first typed event fires.
	SetHandler(fn func(Event))
	// Run executes events until the queue drains, returning the final time.
	Run() float64
	// RunUntil executes events with timestamps <= deadline, advancing the
	// clock to the deadline. Later events stay queued.
	RunUntil(deadline float64)
}

var (
	_ EngineAPI = (*Engine)(nil)
	_ EngineAPI = (*EngineNaive)(nil)
)

// evClosure is the internal kind marking a closure-fallback entry; the
// closure lives in the fns arena at index arg. It sits far above the
// exported kinds so upper layers can extend the EventKind space freely.
const evClosure EventKind = 0xff

// heapEnt is one heap entry: the ordering key (time, then the intrinsic
// event key — see less) followed by the typed event payload inlined
// field by field. Keeping the whole event in
// the 40-byte entry makes the queue a single pointer-free array: pushes
// and pops of typed events touch no side storage, emit no write barriers,
// and the sift comparisons stay within contiguous memory. The node is
// narrowed to int32 — node ids are dense indices well under 2^31.
type heapEnt struct {
	t     float64
	seq   int64
	evSeq int64 // Event.Seq
	node  int32 // Event.Node
	arg   int32 // Event.Arg, or the fns arena index for evClosure
	kind  EventKind
}

// fnRec is one closure-arena slot; freed slots chain through next.
type fnRec struct {
	fn   func()
	next int32
}

// Engine is a deterministic discrete-event scheduler. Events execute in
// the intrinsic (time, kind, node, seq, arg) order pinned by less — an
// insertion-order-independent total order among typed events, required
// by sharded execution; the queue is a 4-ary heap of self-contained
// 40-byte entries, so steady-state scheduling of typed events performs
// zero heap allocations and the queue is invisible to the garbage
// collector. Closure events (the cold path) park their func in a
// free-listed side arena referenced by index.
type Engine struct {
	now      float64
	seq      int64
	steps    int64
	handler  func(Event)
	fns      []fnRec
	free     int32 // head of the fns free-list, -1 when empty
	heap     []heapEnt
	maxDepth int
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// MaxQueueDepth returns the peak number of queued events observed.
func (e *Engine) MaxQueueDepth() int { return e.maxDepth }

// SetHandler installs the typed-event dispatcher.
func (e *Engine) SetHandler(fn func(Event)) { e.handler = fn }

// Schedule enqueues fn to run delay seconds from now. Non-positive delays
// run at the current time, after already-queued same-time events
// (insertion order is preserved among equal timestamps).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.push(e.now+delay, fn, Event{})
}

// ScheduleAt enqueues fn at absolute time t (clamped to now).
func (e *Engine) ScheduleAt(t float64, fn func()) {
	e.push(t, fn, Event{})
}

// ScheduleEvent enqueues a typed event delay seconds from now with the
// same clamping as Schedule. It allocates nothing once the arena has
// warmed up.
func (e *Engine) ScheduleEvent(delay float64, ev Event) {
	if delay < 0 {
		delay = 0
	}
	e.push(e.now+delay, nil, ev)
}

// ScheduleEventAt enqueues a typed event at absolute time t (clamped to
// now).
func (e *Engine) ScheduleEventAt(t float64, ev Event) {
	e.push(t, nil, ev)
}

// push builds the self-contained entry (parking closures in the fns
// arena) and sifts it up the 4-ary heap.
func (e *Engine) push(t float64, fn func(), ev Event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ent := heapEnt{t: t, seq: e.seq}
	if fn != nil {
		var i int32
		if e.free >= 0 {
			i = e.free
			e.free = e.fns[i].next
		} else {
			e.fns = append(e.fns, fnRec{})
			i = int32(len(e.fns) - 1)
		}
		e.fns[i] = fnRec{fn: fn, next: -1}
		ent.kind = evClosure
		ent.arg = i
	} else {
		ent.kind = ev.Kind
		ent.node = int32(ev.Node)
		ent.evSeq = ev.Seq
		ent.arg = ev.Arg
	}
	e.heap = append(e.heap, ent)
	e.siftUp(len(e.heap) - 1)
	if len(e.heap) > e.maxDepth {
		e.maxDepth = len(e.heap)
	}
}

// less orders entries by the intrinsic event key: (time, kind, node,
// event seq, arg), falling back to insertion sequence only for full-key
// ties. This is the engine's tie-breaking contract: events scheduled at
// identical timestamps pop in a deterministic order that does NOT depend
// on insertion order, which is what lets sharded execution merge
// per-shard heaps — the same event set pops identically whether it was
// enqueued by one engine or by many, in any interleaving. Closure events
// (evClosure = 0xff) sort after every typed kind and among themselves by
// insertion sequence (their arg is an arena index, which is not stable
// across engines); typed events with byte-identical keys are required to
// be order-insensitive (handler-idempotent). EngineNaive implements the
// identical order, and the tie-break property tests pin both.
func less(a, b *heapEnt) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.kind != evClosure {
		if a.node != b.node {
			return a.node < b.node
		}
		if a.evSeq != b.evSeq {
			return a.evSeq < b.evSeq
		}
		if a.arg != b.arg {
			return a.arg < b.arg
		}
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 4
		if !less(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// sinkHole moves the hole at the root down along the min-child path to a
// leaf and returns the leaf position. Combined with a siftUp of the
// displaced tail entry this is the bottom-up pop: it spends 3 comparisons
// per level instead of 4 (no compare against the moving element), and the
// tail entry — which almost always belongs near a leaf — rarely sifts
// more than a step back up.
func (e *Engine) sinkHole() int {
	h := e.heap
	n := len(h)
	i := 0
	for {
		c := i*4 + 1
		if c >= n {
			return i
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for c++; c < end; c++ {
			if less(&h[c], &h[best]) {
				best = c
			}
		}
		h[i] = h[best]
		i = best
	}
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() float64 {
	for len(e.heap) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advancing the
// clock to the deadline. Later events stay queued.
func (e *Engine) RunUntil(deadline float64) {
	for len(e.heap) > 0 && e.heap[0].t <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with timestamps strictly before deadline and
// leaves the clock at the last executed event (it does NOT advance now to
// the deadline — a later window may still schedule work inside the gap).
// This is the sharded window step: each shard drains its heap up to the
// conservative lookahead horizon.
func (e *Engine) RunBefore(deadline float64) {
	for len(e.heap) > 0 && e.heap[0].t < deadline {
		e.step()
	}
}

// NextTime reports the timestamp of the earliest queued event, or false
// when the queue is empty.
func (e *Engine) NextTime() (float64, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].t, true
}

// step pops the minimum event and dispatches: closure events run their fn
// (recycling its arena slot first, so the handler can immediately reuse
// it), typed events are reassembled and handed to the handler.
func (e *Engine) step() {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		hole := e.sinkHole()
		e.heap[hole] = last
		e.siftUp(hole)
	}
	e.now = top.t
	e.steps++
	if top.kind == evClosure {
		i := top.arg
		fn := e.fns[i].fn
		e.fns[i] = fnRec{next: e.free}
		e.free = i
		fn()
		return
	}
	e.handler(Event{Kind: top.kind, Node: network.NodeID(top.node), Seq: top.evSeq, Arg: top.arg})
}
