package desim

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/monitor"
	"isomap/internal/network"
	"isomap/internal/trace"
)

func TestNewDeltaStateValidation(t *testing.T) {
	if _, err := NewDeltaState(0, DeltaConfig{}); err == nil {
		t.Error("accepted zero nodes")
	}
	for _, angle := range []float64{math.NaN(), math.Inf(1), -0.1, math.Pi + 0.1} {
		if _, err := NewDeltaState(10, DeltaConfig{GradAngle: angle}); err == nil {
			t.Errorf("accepted gradient angle %v", angle)
		}
	}
	ds, err := NewDeltaState(10, DeltaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.GradAngle() != DefaultGradAngle {
		t.Errorf("zero angle resolved to %v, want default %v", ds.GradAngle(), DefaultGradAngle)
	}
	if ds.Nodes() != 10 || ds.Tracked() != 0 {
		t.Errorf("fresh state: nodes=%d tracked=%d", ds.Nodes(), ds.Tracked())
	}
}

// sortReports canonicalizes a report batch into the aged belief's
// (source, isolevel) order, so full-round deliveries and belief dumps
// feed reconstruction identically.
func sortReports(rs []core.Report) []core.Report {
	out := append([]core.Report(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].LevelIndex < out[j].LevelIndex
	})
	return out
}

// reconstructed builds the sink-side map from a (canonically ordered)
// report batch, the way the serving layer does.
func reconstructed(t *testing.T, tree interface {
	Root() network.NodeID
	Network() *network.Network
}, f field.Field, q core.Query, reports []core.Report) *contour.Map {
	t.Helper()
	sink := tree.Network().Node(tree.Root()).Value
	return contour.Reconstruct(reports, q.Levels, field.BoundsRect(f), sink, contour.Options{})
}

// TestDeltaStaticFieldEquivalence is the protocol's ground-truth
// property: on a static field with aging disabled, the delta protocol's
// reconstructed map is byte-identical to the full-report round's — at
// every round, and at shard widths 1 and 4. Round one transmits
// everything (empty source state), later rounds suppress everything, and
// the sink belief must hold exactly the full round's delivered set.
func TestDeltaStaticFieldEquivalence(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 300)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()

	full, err := RunFullRound(tree, f, q, fc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReports := sortReports(full.Delivered)
	wantMap := reconstructed(t, tree, f, q, wantReports)
	wantRaster := wantMap.RasterWorkers(80, 80, 1)

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ds, err := NewDeltaState(tree.Network().Len(), DeltaConfig{})
			if err != nil {
				t.Fatal(err)
			}
			aged, err := monitor.NewAgedMap(monitor.AgedConfig{})
			if err != nil {
				t.Fatal(err)
			}
			var frames []int
			for round := 1; round <= 3; round++ {
				var res *RoundResult
				if shards > 1 {
					res, err = RunFullRoundDeltaSharded(tree, f, q, fc, cfg, nil, ds, shards, 0, nil)
				} else {
					res, err = RunFullRoundDelta(tree, f, q, fc, cfg, nil, ds, nil)
				}
				if err != nil {
					t.Fatal(err)
				}
				aged.Apply(round, res.Delivered, nil)
				frames = append(frames, res.Radio.DataSent)

				got := aged.Reports()
				if !reflect.DeepEqual(got, wantReports) {
					t.Fatalf("round %d: belief (%d reports) != full delivered set (%d)",
						round, len(got), len(wantReports))
				}
				m := reconstructed(t, tree, f, q, got)
				if !reflect.DeepEqual(m.RasterWorkers(80, 80, 1).Cells, wantRaster.Cells) {
					t.Fatalf("round %d: delta raster diverged from full-report raster", round)
				}
				for i := range q.Levels.Values() {
					if !reflect.DeepEqual(m.BoundarySegments(i), wantMap.BoundarySegments(i)) {
						t.Fatalf("round %d level %d: delta polylines diverged", round, i)
					}
				}
				if round == 1 {
					if res.Crossings == 0 || res.Suppressed != 0 {
						t.Fatalf("round 1: crossings=%d suppressed=%d, want all-crossing",
							res.Crossings, res.Suppressed)
					}
				} else {
					if res.Crossings != 0 || res.Retired != 0 {
						t.Fatalf("round %d on a static field: crossings=%d retired=%d, want pure suppression",
							round, res.Crossings, res.Retired)
					}
					if res.Suppressed == 0 {
						t.Fatalf("round %d: nothing suppressed", round)
					}
				}
			}
			// The traffic claim itself: once the sink knows the map,
			// steady-state rounds carry only the measurement machinery
			// (probe replies) — the report convergecast disappears, so they
			// move strictly fewer data frames than the seeding round.
			if frames[1] >= frames[0] || frames[2] >= frames[0] {
				t.Errorf("steady-state delta rounds did not shed report traffic: %v", frames)
			}
			if frames[1] != frames[2] {
				t.Errorf("steady-state rounds diverged on a static field: %v", frames)
			}
		})
	}
}

// TestDeltaShardedEquivalenceDrifting pins sequential ≡ sharded on the
// interesting case: a drifting field where rounds mix crossings,
// suppressions and retirements. Both executions must produce identical
// delivered batches, tallies and radio stats every round.
func TestDeltaShardedEquivalenceDrifting(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 300)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	dyn, err := field.NewTemporal("drift", f, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	dsSeq, err := NewDeltaState(tree.Network().Len(), DeltaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dsShard, err := NewDeltaState(tree.Network().Len(), DeltaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	retired := 0
	for round := 1; round <= 4; round++ {
		snap := dyn.At(float64(round) * 0.5)
		seq, err := RunFullRoundDelta(tree, snap, q, fc, cfg, nil, dsSeq, nil)
		if err != nil {
			t.Fatal(err)
		}
		shard, err := RunFullRoundDeltaSharded(tree, snap, q, fc, cfg, nil, dsShard, 4, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Delivered, shard.Delivered) {
			t.Fatalf("round %d: sharded delivered batch diverged", round)
		}
		if seq.Crossings != shard.Crossings || seq.Suppressed != shard.Suppressed || seq.Retired != shard.Retired {
			t.Fatalf("round %d: tallies diverged: seq %d/%d/%d shard %d/%d/%d", round,
				seq.Crossings, seq.Suppressed, seq.Retired,
				shard.Crossings, shard.Suppressed, shard.Retired)
		}
		if seq.Radio != shard.Radio {
			t.Fatalf("round %d: radio stats diverged: %+v vs %+v", round, seq.Radio, shard.Radio)
		}
		retired += seq.Retired
	}
	if retired == 0 {
		t.Error("four drifting rounds retired nothing; field evolution too slow to exercise crossings-out")
	}
}

// TestDeltaTraceInvariants runs the invariant oracle on delta rounds
// over a drifting field: frame conservation, time order and sink
// accounting must hold for the delta vocabulary too (retire records
// count as sink deliveries).
func TestDeltaTraceInvariants(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 300)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	dyn, err := field.NewTemporal("drift", f, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewDeltaState(tree.Network().Len(), DeltaConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var crossings, suppressed int64
	for round := 1; round <= 3; round++ {
		rec := traceRecorderFor(300)
		if _, err := RunFullRoundDelta(tree, dyn.At(float64(round)*0.5), q, fc, cfg, nil, ds, rec); err != nil {
			t.Fatal(err)
		}
		if v := rec.Check(trace.CheckConfig{MaxRetries: cfg.MaxRetries}); len(v) > 0 {
			t.Fatalf("round %d: %d invariant violations, first: %v", round, len(v), v[0])
		}
		s := rec.Summarize()
		crossings += s.Crossings
		suppressed += s.Suppressed
	}
	if crossings == 0 || suppressed == 0 {
		t.Errorf("delta vocabulary unexercised: crossings=%d suppressed=%d", crossings, suppressed)
	}
}

// TestDeltaTraceInvariantsSeededFaults is the property form under fault
// plans: lossy channels and mid-round crashes must not break any trace
// invariant in delta mode (in particular sink accounting with retire
// records in flight).
func TestDeltaTraceInvariantsSeededFaults(t *testing.T) {
	tree, f, q := fullRoundSetup(t, 300)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	cfg.FrameDeadline = 1.5
	dyn, err := field.NewTemporal("drift", f, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	nodes := tree.Network().Len()

	property := func(seed uint8) bool {
		ds, err := NewDeltaState(nodes, DeltaConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 1; round <= 2; round++ {
			plan, err := faults.New(faults.Config{
				Seed: int64(seed)*10 + int64(round), Channel: faults.ChannelBernoulli, LossRate: 0.08,
				CrashFraction: 0.05, CrashStart: 0.05, CrashEnd: 0.6,
				Protect: []network.NodeID{tree.Root()},
			}, nodes)
			if err != nil {
				t.Fatal(err)
			}
			rec := traceRecorderFor(300)
			if _, err := RunFullRoundDelta(tree, dyn.At(float64(round)*0.5), q, fc, cfg, plan, ds, rec); err != nil {
				t.Fatal(err)
			}
			if v := rec.Check(trace.CheckConfig{MaxRetries: cfg.MaxRetries}); len(v) > 0 {
				t.Logf("seed %d round %d: first violation: %v", seed, round, v[0])
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatal(err)
	}
}

// goldenDeltaDigest extends the golden fingerprint with the delta-mode
// counters so regressions in the new vocabulary surface in the literal.
func goldenDeltaDigest(rec *trace.Recorder) string {
	s := rec.Summarize()
	return fmt.Sprintf("%s crossings=%d suppressed=%d", goldenDigest(rec), s.Crossings, s.Suppressed)
}

// goldenDeltaTrace1k is the committed digest of the n=1000 seed-scenario
// *second* delta round over the drifting field (the first round seeds the
// source state untraced, so the traced round mixes crossings,
// suppressions and retirements). Regenerate with:
// go test -run TestGoldenDeltaTrace1k -v ./internal/desim (the failure
// message prints the new value). Literal comparison gated to amd64 like
// goldenTrace1k; the sequential-vs-sharded equality runs everywhere.
const goldenDeltaTrace1k = "events=39775 sends=1205 delivered=7124 acked=1205 drops=0 queryheard=976 generated=80 sinkreports=63 md5=ee0f5166f7cc61d49027102c9319fd3b crossings=81 suppressed=34"

func TestGoldenDeltaTrace1k(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1000 traced rounds")
	}
	tree, f, q := fullRoundSetup(t, 1000)
	fc := core.DefaultFilterConfig()
	cfg := DefaultRadioConfig()
	dyn, err := field.NewTemporal("drift", f, 1, 7)
	if err != nil {
		t.Fatal(err)
	}

	run := func(sharded bool) string {
		ds, err := NewDeltaState(tree.Network().Len(), DeltaConfig{})
		if err != nil {
			t.Fatal(err)
		}
		round := func(n int, rec *trace.Recorder) {
			snap := dyn.At(float64(n) * 0.5)
			if sharded {
				_, err = RunFullRoundDeltaSharded(tree, snap, q, fc, cfg, nil, ds, 8, 0, rec)
			} else {
				_, err = RunFullRoundDelta(tree, snap, q, fc, cfg, nil, ds, rec)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		round(1, nil)
		rec := traceRecorderFor(1000)
		round(2, rec)
		if rec.Dropped() > 0 {
			t.Fatalf("ring truncated: %d dropped", rec.Dropped())
		}
		return goldenDeltaDigest(rec)
	}

	digest := run(false)
	if sharded := run(true); sharded != digest {
		t.Errorf("sharded delta trace diverged:\n sequential: %s\n sharded:    %s", digest, sharded)
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden literal pinned on amd64 (FMA contraction may shift floats on %s)", runtime.GOARCH)
	}
	if digest != goldenDeltaTrace1k {
		t.Errorf("golden delta trace digest changed:\n got  %s\n want %s\nIf the protocol or trace schema changed intentionally, update goldenDeltaTrace1k.", digest, goldenDeltaTrace1k)
	}
}
