package desim

import "container/heap"

// EngineNaive is the original closure-per-event scheduler, retained
// verbatim as the reference oracle for the allocation-light Engine —
// mirroring the geom.VoronoiNaive pattern. It deliberately keeps the
// pre-change implementation character (a closure per event, container/heap
// with boxed records) so benchmarks against it measure the production
// engine against the code this package shipped with; typed events are
// adapted onto the closure path, costing the same closure + interface box
// the original code paid at every call site. Event ordering is the same
// intrinsic total order the production Engine uses (see less in
// engine.go), so both engines execute byte-identical schedules — the
// equivalence property tests pin that.
type EngineNaive struct {
	now      float64
	seq      int64
	queue    naiveEventHeap
	steps    int64
	handler  func(Event)
	maxDepth int
}

type naiveEvent struct {
	t     float64
	seq   int64
	evSeq int64
	node  int32
	arg   int32
	kind  EventKind
	fn    func()
}

type naiveEventHeap []naiveEvent

func (h naiveEventHeap) Len() int { return len(h) }

// Less mirrors the production engine's intrinsic tie-break (see less in
// engine.go): (time, kind, node, event seq, arg), insertion sequence only
// for full-key ties and among closures.
func (h naiveEventHeap) Less(i, j int) bool {
	a, b := &h[i], &h[j]
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.kind != evClosure {
		if a.node != b.node {
			return a.node < b.node
		}
		if a.evSeq != b.evSeq {
			return a.evSeq < b.evSeq
		}
		if a.arg != b.arg {
			return a.arg < b.arg
		}
	}
	return a.seq < b.seq
}
func (h naiveEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *naiveEventHeap) Push(x any)  { *h = append(*h, x.(naiveEvent)) }
func (h *naiveEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngineNaive returns an empty reference engine at time zero.
func NewEngineNaive() *EngineNaive {
	return &EngineNaive{}
}

// Now returns the current simulation time in seconds.
func (e *EngineNaive) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *EngineNaive) Steps() int64 { return e.steps }

// MaxQueueDepth returns the peak number of queued events observed.
func (e *EngineNaive) MaxQueueDepth() int { return e.maxDepth }

// SetHandler installs the typed-event dispatcher.
func (e *EngineNaive) SetHandler(fn func(Event)) { e.handler = fn }

// Schedule enqueues fn to run delay seconds from now. Non-positive delays
// run at the current time, after already-queued same-time events
// (insertion order is preserved among equal timestamps).
func (e *EngineNaive) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn at absolute time t (clamped to now).
func (e *EngineNaive) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, naiveEvent{t: t, seq: e.seq, kind: evClosure, fn: fn})
	if len(e.queue) > e.maxDepth {
		e.maxDepth = len(e.queue)
	}
}

// ScheduleEvent adapts a typed event onto the closure path: the event is
// captured in a closure that dispatches it to the handler, paying the
// per-event allocation the production Engine eliminates. The event's key
// fields are stored alongside so the heap orders it exactly as the
// production engine would.
func (e *EngineNaive) ScheduleEvent(delay float64, ev Event) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleEventAt(e.now+delay, ev)
}

// ScheduleEventAt is ScheduleEvent at an absolute time.
func (e *EngineNaive) ScheduleEventAt(t float64, ev Event) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, naiveEvent{
		t: t, seq: e.seq,
		evSeq: ev.Seq, node: int32(ev.Node), arg: ev.Arg, kind: ev.Kind,
		fn: func() { e.handler(ev) },
	})
	if len(e.queue) > e.maxDepth {
		e.maxDepth = len(e.queue)
	}
}

// Run executes events until the queue drains, returning the final time.
func (e *EngineNaive) Run() float64 {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, advancing the
// clock to the deadline. Later events stay queued.
func (e *EngineNaive) RunUntil(deadline float64) {
	for e.queue.Len() > 0 && e.queue[0].t <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

func (e *EngineNaive) step() {
	ev := heap.Pop(&e.queue).(naiveEvent)
	e.now = ev.t
	e.steps++
	ev.fn()
}
