package desim

import (
	"fmt"
	"math/rand"
	"strconv"

	"isomap/internal/energy"
	"isomap/internal/metrics"
	"isomap/internal/network"
)

// RadioConfig parameterizes the CSMA/CA link layer.
type RadioConfig struct {
	// BitsPerSecond is the radio bitrate (default: the Mica2 CC1000 rate).
	BitsPerSecond float64
	// AckBytes is the acknowledgement frame size.
	AckBytes int
	// SlotTime is the backoff quantum in seconds.
	SlotTime float64
	// MaxRetries bounds retransmissions per frame before it is dropped.
	MaxRetries int
	// FrameDeadline, when positive, abandons a data frame once it has
	// been pending longer than this many seconds — even with retries
	// left — so sustained outages (a crashed parent, a long loss burst)
	// surface as a bounded-latency drop the upper layer can react to
	// instead of an open-ended retry tail. Zero disables the deadline.
	FrameDeadline float64
	// Seed drives the backoff jitter.
	Seed int64
}

// DefaultRadioConfig returns a CC1000-like configuration: 38.4 kbps, 2-byte
// acks, ~1 ms backoff slots, 12 retries.
func DefaultRadioConfig() RadioConfig {
	return RadioConfig{
		BitsPerSecond: energy.RadioBitsPerSecond,
		AckBytes:      2,
		SlotTime:      1e-3,
		MaxRetries:    12,
		Seed:          1,
	}
}

// Frame is one link-layer data unit.
type Frame struct {
	From    network.NodeID
	To      network.NodeID
	Bytes   int
	Payload any
	seq     int64
	isAck   bool
	ackFor  int64
	retries int
	// deadline is the absolute time past which the frame is abandoned
	// (0 = none); set from RadioConfig.FrameDeadline at Send time.
	deadline float64
}

// RadioStats counts link-layer happenings.
type RadioStats struct {
	// DataSent counts first transmissions of data frames.
	DataSent int
	// Retries counts data retransmissions.
	Retries int
	// Collisions counts receptions corrupted by overlap.
	Collisions int
	// Drops counts data frames abandoned after MaxRetries or past their
	// frame deadline.
	Drops int
	// ChannelLosses counts receptions erased by the injected channel
	// model (independent of collisions).
	ChannelLosses int
	// Delivered counts data frames handed to their destination exactly
	// once (duplicates from lost acks are filtered).
	Delivered int
}

// Radio executes frame exchanges over the network's connectivity graph
// with carrier sensing, receiver-side collisions, acknowledgements and
// bounded retransmission.
type Radio struct {
	eng      *Engine
	nw       *network.Network
	cfg      RadioConfig
	rng      *rand.Rand
	states   []radioState
	handlers []func(Frame)
	seq      int64
	pending  map[int64]*Frame // unacked data frames by seq
	seen     []map[int64]bool // per-node delivered seqs (dedup)
	counters *metrics.Counters

	// Stats accumulates link-layer counts.
	Stats RadioStats

	// trace, when set, receives a line per link-layer event (tests only).
	trace func(string)
	// onDrop, when set, receives data frames abandoned after MaxRetries
	// or past their deadline, so an upper layer can re-queue their
	// payload.
	onDrop func(Frame)
	// channel, when set, decides per reception whether the channel
	// erases the frame on the directed link from->to; losses are drawn
	// before (and independently of) the collision model.
	channel func(from, to network.NodeID) bool
}

type radioState struct {
	txUntil     float64
	rxActive    bool
	rxUntil     float64
	rxCorrupted bool
	rxFrame     Frame
}

// NewRadio builds a radio over the network. counters may be nil; when
// given, every physical transmission and reception (including retries and
// acks) is charged to it, which is what separates the measured link-layer
// energy from the structural model's perfect-link charge.
func NewRadio(eng *Engine, nw *network.Network, cfg RadioConfig, counters *metrics.Counters) (*Radio, error) {
	if eng == nil || nw == nil {
		return nil, fmt.Errorf("desim: nil engine or network")
	}
	if cfg.BitsPerSecond <= 0 {
		return nil, fmt.Errorf("desim: bitrate must be positive, got %g", cfg.BitsPerSecond)
	}
	if cfg.SlotTime <= 0 {
		return nil, fmt.Errorf("desim: slot time must be positive, got %g", cfg.SlotTime)
	}
	r := &Radio{
		eng:      eng,
		nw:       nw,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		states:   make([]radioState, nw.Len()),
		handlers: make([]func(Frame), nw.Len()),
		pending:  make(map[int64]*Frame),
		seen:     make([]map[int64]bool, nw.Len()),
		counters: counters,
	}
	for i := range r.seen {
		r.seen[i] = make(map[int64]bool)
	}
	return r, nil
}

// OnReceive registers the upper-layer handler invoked when a data frame is
// delivered to id.
func (r *Radio) OnReceive(id network.NodeID, fn func(Frame)) {
	r.handlers[id] = fn
}

// OnDrop registers the upper-layer handler invoked when a data frame is
// abandoned after exhausting its retries or its deadline.
func (r *Radio) OnDrop(fn func(Frame)) {
	r.onDrop = fn
}

// SetChannel installs a per-link loss model (e.g. faults.Plan.Lose): it
// is consulted once per potential reception, and a true return erases the
// frame on that link before it reaches the receiver — modeling channel
// errors the CRC catches, independent of the collision model. Acks and
// broadcasts traverse the channel too.
func (r *Radio) SetChannel(ch func(from, to network.NodeID) bool) {
	r.channel = ch
}

// Crash kills a node mid-simulation: its Failed mark is set, any ongoing
// reception is voided, and every later transmit/receive path checks
// liveness, so the node stops transmitting, receiving and forwarding
// instantly. Data frames it still has pending are abandoned silently at
// their next attempt (a dead node cannot re-queue), while frames other
// nodes have pending toward it run out of retries and surface through
// OnDrop — which is how upper layers detect the silence.
func (r *Radio) Crash(id network.NodeID) {
	if !r.nw.Alive(id) {
		return
	}
	r.nw.Node(id).Failed = true
	st := &r.states[id]
	st.rxActive = false
	st.rxCorrupted = false
	st.txUntil = 0
}

// Broadcast queues an unacknowledged local broadcast: the frame is
// transmitted once (after carrier sensing with bounded backoff) and every
// neighbor that receives it intact gets it delivered with To == from's
// neighbors individually. Lost receptions are not recovered — flooding
// protocols tolerate that through redundancy.
func (r *Radio) Broadcast(from network.NodeID, bytes int, payload any) error {
	if !r.nw.Alive(from) {
		return fmt.Errorf("desim: broadcast from dead node %d", from)
	}
	if bytes <= 0 {
		return fmt.Errorf("desim: frame size must be positive, got %d", bytes)
	}
	r.seq++
	f := Frame{From: from, To: broadcastAddr, Bytes: bytes, Payload: payload, seq: r.seq}
	r.broadcastAttempt(f, 0)
	return nil
}

// broadcastAddr marks a frame delivered to every intact receiver.
const broadcastAddr network.NodeID = -2

// broadcastAttempt carrier-senses and transmits a broadcast frame, backing
// off a bounded number of times.
func (r *Radio) broadcastAttempt(f Frame, tries int) {
	if r.mediumBusy(f.From) && tries < 16 {
		window := float64(int(1) << uint(minInt(tries+1, 6)))
		delay := (1 + r.rng.Float64()*window) * r.cfg.SlotTime
		r.eng.Schedule(delay, func() { r.broadcastAttempt(f, tries+1) })
		return
	}
	r.transmit(f)
}

// Send queues a data frame for transmission; delivery is attempted with
// CSMA/CA and acknowledged retransmission.
func (r *Radio) Send(from, to network.NodeID, bytes int, payload any) error {
	if !r.nw.Alive(from) || !r.nw.Alive(to) {
		return fmt.Errorf("desim: send between dead nodes %d -> %d", from, to)
	}
	if bytes <= 0 {
		return fmt.Errorf("desim: frame size must be positive, got %d", bytes)
	}
	r.seq++
	f := &Frame{From: from, To: to, Bytes: bytes, Payload: payload, seq: r.seq}
	if r.cfg.FrameDeadline > 0 {
		f.deadline = r.eng.Now() + r.cfg.FrameDeadline
	}
	r.pending[f.seq] = f
	r.Stats.DataSent++
	r.attempt(f)
	return nil
}

// airtime returns the on-air duration of a frame.
func (r *Radio) airtime(bytes int) float64 {
	return float64(bytes) * 8 / r.cfg.BitsPerSecond
}

// mediumBusy reports whether id senses an ongoing transmission (its own or
// a neighbor's).
func (r *Radio) mediumBusy(id network.NodeID) bool {
	now := r.eng.Now()
	if r.states[id].txUntil > now {
		return true
	}
	for _, nb := range r.nw.AliveNeighbors(id) {
		if r.states[nb].txUntil > now {
			return true
		}
	}
	return false
}

// attempt runs one CSMA round for a data frame: sense, back off if busy,
// otherwise transmit and arm the ack timeout.
func (r *Radio) attempt(f *Frame) {
	if _, alive := r.pending[f.seq]; !alive {
		return // acked while backing off
	}
	if !r.nw.Alive(f.From) {
		delete(r.pending, f.seq) // sender crashed: the frame dies with it
		return
	}
	if r.expired(f) {
		r.drop(f)
		return
	}
	if r.mediumBusy(f.From) {
		r.backoff(f)
		return
	}
	r.transmit(*f)
	// Ack timeout: data airtime + ack airtime + turnaround guard.
	timeout := r.airtime(f.Bytes) + r.airtime(r.cfg.AckBytes) + 4*r.cfg.SlotTime
	seq := f.seq
	r.eng.Schedule(timeout, func() {
		pf, alive := r.pending[seq]
		if !alive {
			return // acked
		}
		pf.retries++
		if pf.retries > r.cfg.MaxRetries || r.expired(pf) {
			r.drop(pf)
			return
		}
		r.Stats.Retries++
		r.backoff(pf)
	})
}

// expired reports whether a frame has outlived its per-frame deadline.
func (r *Radio) expired(f *Frame) bool {
	return f.deadline > 0 && r.eng.Now() >= f.deadline
}

// drop abandons a pending data frame and notifies the upper layer.
func (r *Radio) drop(f *Frame) {
	delete(r.pending, f.seq)
	r.Stats.Drops++
	if r.onDrop != nil {
		r.onDrop(*f)
	}
}

// backoff reschedules a frame after a binary-exponential random delay.
func (r *Radio) backoff(f *Frame) {
	window := 1 << uint(minInt(f.retries+1, 6))
	delay := (1 + r.rng.Float64()*float64(window)) * r.cfg.SlotTime
	r.eng.Schedule(delay, func() { r.attempt(f) })
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// transmit puts a frame on the air: the sender is busy for the airtime and
// the frame arrives at every alive neighbor — unless the injected channel
// erases that reception — where it may collide.
func (r *Radio) transmit(f Frame) {
	if !r.nw.Alive(f.From) {
		return // crashed between scheduling and airtime
	}
	now := r.eng.Now()
	if r.trace != nil {
		r.trace(fmtFrame("tx", f))
	}
	dur := r.airtime(f.Bytes)
	r.states[f.From].txUntil = now + dur
	if r.counters != nil {
		r.counters.ChargeTx(f.From, f.Bytes)
	}
	for _, nb := range r.nw.AliveNeighbors(f.From) {
		if r.channel != nil && r.channel(f.From, nb) {
			r.Stats.ChannelLosses++
			continue
		}
		r.arrive(nb, f, dur)
	}
}

// arrive begins a reception at node id, handling receiver-side collisions:
// overlapping arrivals corrupt each other, and a transmitting node cannot
// receive.
func (r *Radio) arrive(id network.NodeID, f Frame, dur float64) {
	now := r.eng.Now()
	st := &r.states[id]
	if st.txUntil > now {
		return // half-duplex: transmitting nodes miss the frame
	}
	if st.rxActive && st.rxUntil > now {
		// Overlap: the ongoing reception corrupts; this frame is lost too.
		if !st.rxCorrupted {
			st.rxCorrupted = true
			r.Stats.Collisions++
		}
		r.Stats.Collisions++
		// Extend the busy window to cover the interferer; finishRx at the
		// old deadline no-ops, so arm one at the new deadline.
		if now+dur > st.rxUntil {
			st.rxUntil = now + dur
			r.eng.ScheduleAt(st.rxUntil, func() { r.finishRx(id) })
		}
		return
	}
	st.rxActive = true
	st.rxUntil = now + dur
	st.rxCorrupted = false
	st.rxFrame = f
	r.eng.ScheduleAt(st.rxUntil, func() { r.finishRx(id) })
}

// finishRx completes a reception at id, delivering intact frames addressed
// to it and sending the ack.
func (r *Radio) finishRx(id network.NodeID) {
	st := &r.states[id]
	if !st.rxActive || r.eng.Now() < st.rxUntil {
		return // superseded by an extended (corrupted) window
	}
	f := st.rxFrame
	corrupted := st.rxCorrupted
	st.rxActive = false
	st.rxCorrupted = false
	if r.trace != nil {
		r.trace(fmtFrame("rxEnd", f) + map[bool]string{true: " CORRUPT", false: ""}[corrupted] + " at " + itoa(int(id)))
	}
	if corrupted || (f.To != id && f.To != broadcastAddr) {
		return
	}
	if r.counters != nil {
		r.counters.ChargeRx(id, f.Bytes)
	}
	if f.To == broadcastAddr {
		// Broadcast: deliver once per node, no ack.
		if r.seen[id][f.seq] {
			return
		}
		r.seen[id][f.seq] = true
		if h := r.handlers[id]; h != nil {
			h(f)
		}
		return
	}
	if f.isAck {
		if _, alive := r.pending[f.ackFor]; alive {
			delete(r.pending, f.ackFor)
		}
		return
	}
	// Ack the data frame (even duplicates, whose first ack was lost).
	r.seq++
	ack := Frame{From: id, To: f.From, Bytes: r.cfg.AckBytes, seq: r.seq, isAck: true, ackFor: f.seq}
	r.eng.Schedule(r.cfg.SlotTime, func() {
		if r.mediumBusy(ack.From) {
			// One brief retry for the ack; a lost ack only costs a
			// duplicate retransmission.
			r.eng.Schedule(r.cfg.SlotTime*2, func() { r.transmit(ack) })
			return
		}
		r.transmit(ack)
	})
	if r.seen[id][f.seq] {
		return // duplicate data frame
	}
	r.seen[id][f.seq] = true
	r.Stats.Delivered++
	if h := r.handlers[id]; h != nil {
		h(f)
	}
}

func fmtFrame(kind string, f Frame) string {
	label := "data"
	if f.isAck {
		label = "ack"
	}
	return kind + " " + label + " seq=" + itoa(int(f.seq)) + " " + itoa(int(f.From)) + "->" + itoa(int(f.To))
}

func itoa(v int) string {
	return strconv.Itoa(v)
}
