package desim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/trace"
)

// RadioConfig parameterizes the CSMA/CA link layer.
type RadioConfig struct {
	// BitsPerSecond is the radio bitrate (default: the Mica2 CC1000 rate).
	BitsPerSecond float64
	// AckBytes is the acknowledgement frame size.
	AckBytes int
	// SlotTime is the backoff quantum in seconds.
	SlotTime float64
	// MaxRetries bounds retransmissions per frame before it is dropped.
	MaxRetries int
	// FrameDeadline, when positive, abandons a data frame once it has
	// been pending longer than this many seconds — even with retries
	// left — so sustained outages (a crashed parent, a long loss burst)
	// surface as a bounded-latency drop the upper layer can react to
	// instead of an open-ended retry tail. Zero disables the deadline.
	FrameDeadline float64
	// Seed drives the backoff jitter.
	Seed int64
}

// DefaultRadioConfig returns a CC1000-like configuration: 38.4 kbps, 2-byte
// acks, ~1 ms backoff slots, 12 retries.
func DefaultRadioConfig() RadioConfig {
	return RadioConfig{
		BitsPerSecond: energy.RadioBitsPerSecond,
		AckBytes:      2,
		SlotTime:      1e-3,
		MaxRetries:    12,
		Seed:          1,
	}
}

// FrameKind tags the concrete payload representation a frame carries,
// replacing the former `Payload any` box: every payload the protocols
// exchange has a dedicated field, so handing a frame around allocates
// nothing.
type FrameKind uint8

const (
	// FrameRaw carries no payload semantics (link-layer tests).
	FrameRaw FrameKind = iota
	// FrameReports carries a report batch in Frame.Batch.
	FrameReports
	// FrameQuery is the flooded contour query.
	FrameQuery
	// FrameProbe is an isoline candidate's neighborhood probe; the
	// probing node is Frame.Asker.
	FrameProbe
	// FrameReply is a neighbor's <value, position> answer to a probe in
	// Frame.Sample.
	FrameReply
)

// Frame is one link-layer data unit.
type Frame struct {
	From  network.NodeID
	To    network.NodeID
	Bytes int
	// Kind selects which payload field below is meaningful.
	Kind FrameKind
	// Batch is the report batch of FrameReports frames. The slice is
	// owned by the radio from Send until the frame is acknowledged or
	// dropped, then recycled into an internal pool: senders must not
	// retain or reuse it, and OnDrop handlers that want to keep the
	// batch past the callback must copy it.
	Batch []core.Report
	// Sample is the probe-reply payload of FrameReply frames.
	Sample core.Sample
	// Asker is the probing node of FrameProbe frames.
	Asker network.NodeID

	seq int64
	// slot is the frame's own arena slot; receivers echo it in the ack so
	// the sender's pending frame is found without a seq-to-slot lookup.
	slot       int32
	isAck      bool
	ackFor     int64
	ackForSlot int32
	retries    int
	// deadline is the absolute time past which the frame is abandoned
	// (0 = none); set from RadioConfig.FrameDeadline at Send time.
	deadline float64
}

// RadioStats counts link-layer happenings.
type RadioStats struct {
	// DataSent counts first transmissions of data frames.
	DataSent int
	// Retries counts data retransmissions.
	Retries int
	// Collisions counts receptions corrupted by overlap.
	Collisions int
	// Drops counts data frames abandoned after MaxRetries or past their
	// frame deadline.
	Drops int
	// ChannelLosses counts receptions erased by the injected channel
	// model (independent of collisions).
	ChannelLosses int
	// Delivered counts data frames handed to their destination exactly
	// once (duplicates from lost acks are filtered).
	Delivered int
}

// batchPool recycles the report-batch slices that ride FrameReports
// frames. Batches are acquired empty at flush time, travel with the frame
// through retransmissions, and return to the pool when the link layer is
// done with the frame (acked, dropped, or died with a crashed sender), so
// a steady-state convergecast reuses a small working set of slices
// instead of allocating one per hop.
type batchPool struct {
	free [][]core.Report
}

// get returns an empty batch, reusing pooled capacity when available.
func (p *batchPool) get() []core.Report {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return nil
}

// put recycles a batch's capacity. Zero-capacity slices are not worth
// keeping.
func (p *batchPool) put(b []core.Report) {
	if cap(b) == 0 {
		return
	}
	p.free = append(p.free, b[:0])
}

// Radio executes frame exchanges over the network's connectivity graph
// with carrier sensing, receiver-side collisions, acknowledgements and
// bounded retransmission. In-flight frames live in an index-addressed
// arena with a free-list, pending data frames are tracked by sequence
// number, and all timers are typed engine events — so the steady-state
// link layer runs without heap allocation.
type Radio struct {
	eng      EngineAPI
	nw       *network.Network
	cfg      RadioConfig
	rng      *rand.Rand
	states   []radioState
	handlers []func(network.NodeID, Frame)
	seq      int64

	// frames is the in-flight frame arena; freeSlots recycles it. A data
	// frame owns its slot from Send until it is acked, dropped, or dies
	// with a crashed sender; broadcast and ack frames own theirs until
	// their single transmit event fires. Events reach a frame by slot and
	// validate the frame's unique seq, so a recycled slot can never be
	// acted on by a stale event.
	frames    []Frame
	freeSlots []int32
	// seen holds per-node delivered seqs (dedup), allocated lazily.
	seen     []map[int64]bool
	counters *metrics.Counters
	// pool recycles report batches; upper layers acquire flush batches
	// from it and the radio returns them when frames finish.
	pool batchPool

	// Stats accumulates link-layer counts.
	Stats RadioStats

	// trace, when set, receives a line per link-layer event (tests only).
	trace func(string)
	// tr, when set, records structured link-layer events. Every emission
	// is behind this nil check and recording draws no randomness, so an
	// untraced radio is byte-identical to today's.
	tr *trace.Recorder
	// onDrop, when set, receives data frames abandoned after MaxRetries
	// or past their deadline, so an upper layer can re-queue their
	// payload. The frame's Batch is recycled when the handler returns.
	onDrop func(Frame)
	// upper receives non-link-layer typed events (see OnEvent).
	upper func(Event)
	// channel, when set, decides per reception whether the channel
	// erases the frame on the directed link from->to; losses are drawn
	// before (and independently of) the collision model.
	channel func(from, to network.NodeID) bool
}

type radioState struct {
	txUntil     float64
	rxActive    bool
	rxUntil     float64
	rxCorrupted bool
	rxFrame     Frame
}

// NewRadio builds a radio over the network. counters may be nil; when
// given, every physical transmission and reception (including retries and
// acks) is charged to it, which is what separates the measured link-layer
// energy from the structural model's perfect-link charge. The radio
// installs itself as the engine's typed-event handler; upper layers
// register for their own event kinds with OnEvent.
func NewRadio(eng EngineAPI, nw *network.Network, cfg RadioConfig, counters *metrics.Counters) (*Radio, error) {
	if eng == nil || nw == nil {
		return nil, fmt.Errorf("desim: nil engine or network")
	}
	if cfg.BitsPerSecond <= 0 {
		return nil, fmt.Errorf("desim: bitrate must be positive, got %g", cfg.BitsPerSecond)
	}
	if cfg.SlotTime <= 0 {
		return nil, fmt.Errorf("desim: slot time must be positive, got %g", cfg.SlotTime)
	}
	r := &Radio{
		eng:      eng,
		nw:       nw,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		states:   make([]radioState, nw.Len()),
		handlers: make([]func(network.NodeID, Frame), nw.Len()),
		seen:     make([]map[int64]bool, nw.Len()),
		counters: counters,
	}
	eng.SetHandler(r.handleEvent)
	return r, nil
}

// handleEvent dispatches typed events: link-layer kinds are executed
// here, everything else goes to the upper layer.
func (r *Radio) handleEvent(ev Event) {
	switch ev.Kind {
	case evBroadcastAttempt:
		r.broadcastAttempt(int32(ev.Seq), int(ev.Arg))
	case evAttempt:
		r.attempt(ev.Seq, ev.Arg)
	case evAckTimeout:
		r.ackTimeout(ev.Seq, ev.Arg)
	case evFinishRx:
		r.finishRx(ev.Node)
	case evAckSend:
		r.ackSend(int32(ev.Seq))
	case evAckRetry:
		r.ackRetry(int32(ev.Seq))
	default:
		if r.upper != nil {
			r.upper(ev)
		}
	}
}

// OnEvent registers the upper-layer dispatcher for typed events the radio
// does not consume (flushes, probes, measurements, crashes, ...).
func (r *Radio) OnEvent(fn func(Event)) { r.upper = fn }

// OnReceive registers the upper-layer handler invoked when a data frame is
// delivered to id. The handler receives the delivering node, so one
// function value can serve every node without per-node closures.
func (r *Radio) OnReceive(id network.NodeID, fn func(network.NodeID, Frame)) {
	r.handlers[id] = fn
}

// OnDrop registers the upper-layer handler invoked when a data frame is
// abandoned after exhausting its retries or its deadline. The frame's
// Batch is recycled after the handler returns; copy it to keep it.
func (r *Radio) OnDrop(fn func(Frame)) {
	r.onDrop = fn
}

// SetTrace installs a structured event recorder: every link-layer
// happening — transmissions, receptions, deliveries, acks, backoffs,
// retries, drops with cause, collisions, channel erasures, crashes — is
// recorded as a typed trace.Event at the same points the energy model
// charges, so the trace reconciles exactly with the round's counters
// (trace.CheckCounters). A nil recorder disables tracing; the radio's
// behavior is identical either way.
func (r *Radio) SetTrace(rec *trace.Recorder) { r.tr = rec }

// phaseOfFrame classifies a frame into the protocol phase its traffic
// belongs to: the query flood, the probe/measure exchange, the report
// convergecast, or pure link machinery (acks).
func phaseOfFrame(f *Frame) trace.Phase {
	if f.isAck {
		return trace.PhaseLink
	}
	switch f.Kind {
	case FrameQuery:
		return trace.PhaseQuery
	case FrameProbe, FrameReply:
		return trace.PhaseMeasure
	case FrameReports:
		return trace.PhaseCollect
	}
	return trace.PhaseNone
}

// SetChannel installs a per-link loss model (e.g. faults.Plan.Lose): it
// is consulted once per potential reception, and a true return erases the
// frame on that link before it reaches the receiver — modeling channel
// errors the CRC catches, independent of the collision model. Acks and
// broadcasts traverse the channel too.
func (r *Radio) SetChannel(ch func(from, to network.NodeID) bool) {
	r.channel = ch
}

// Crash kills a node mid-simulation: its Failed mark is set, any ongoing
// reception is voided, and every later transmit/receive path checks
// liveness, so the node stops transmitting, receiving and forwarding
// instantly. Data frames it still has pending are abandoned silently at
// their next attempt (a dead node cannot re-queue), while frames other
// nodes have pending toward it run out of retries and surface through
// OnDrop — which is how upper layers detect the silence.
func (r *Radio) Crash(id network.NodeID) {
	if !r.nw.Alive(id) {
		return
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindCrash, Node: int32(id), Peer: -1})
	}
	r.nw.Node(id).Failed = true
	st := &r.states[id]
	st.rxActive = false
	st.rxCorrupted = false
	st.txUntil = 0
}

// allocFrame returns an arena slot, recycling freed ones first.
func (r *Radio) allocFrame() int32 {
	if n := len(r.freeSlots); n > 0 {
		s := r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
		return s
	}
	r.frames = append(r.frames, Frame{})
	return int32(len(r.frames) - 1)
}

// releaseFrame clears a slot and returns it to the free-list.
func (r *Radio) releaseFrame(slot int32) {
	r.frames[slot] = Frame{}
	r.freeSlots = append(r.freeSlots, slot)
}

// recycleFrame releases a data frame's slot, returning its batch to the
// pool first.
func (r *Radio) recycleFrame(slot int32) {
	if b := r.frames[slot].Batch; b != nil {
		r.pool.put(b)
	}
	r.releaseFrame(slot)
}

// Broadcast queues an unacknowledged local broadcast: the frame is
// transmitted once (after carrier sensing with bounded backoff) and every
// neighbor that receives it intact gets it delivered. Lost receptions are
// not recovered — flooding protocols tolerate that through redundancy.
func (r *Radio) Broadcast(from network.NodeID, bytes int) error {
	return r.broadcast(Frame{From: from, Bytes: bytes, Kind: FrameRaw})
}

// BroadcastQuery broadcasts the flooded contour query.
func (r *Radio) BroadcastQuery(from network.NodeID, bytes int) error {
	return r.broadcast(Frame{From: from, Bytes: bytes, Kind: FrameQuery})
}

// BroadcastProbe broadcasts an isoline candidate's neighborhood probe.
func (r *Radio) BroadcastProbe(from network.NodeID, bytes int, asker network.NodeID) error {
	return r.broadcast(Frame{From: from, Bytes: bytes, Kind: FrameProbe, Asker: asker})
}

func (r *Radio) broadcast(f Frame) error {
	if !r.nw.Alive(f.From) {
		return fmt.Errorf("desim: broadcast from dead node %d", f.From)
	}
	if f.Bytes <= 0 {
		return fmt.Errorf("desim: frame size must be positive, got %d", f.Bytes)
	}
	r.seq++
	f.To = broadcastAddr
	f.seq = r.seq
	slot := r.allocFrame()
	r.frames[slot] = f
	r.broadcastAttempt(slot, 0)
	return nil
}

// broadcastAddr marks a frame delivered to every intact receiver.
const broadcastAddr network.NodeID = -2

// broadcastAttempt carrier-senses and transmits a broadcast frame, backing
// off a bounded number of times. The frame stays parked in its arena slot
// across backoffs; the slot is released at transmission.
func (r *Radio) broadcastAttempt(slot int32, tries int) {
	f := &r.frames[slot]
	if r.mediumBusy(f.From) && tries < 16 {
		if r.tr != nil {
			r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindBackoff, Phase: phaseOfFrame(f),
				Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Arg: int32(tries), FrameKind: uint8(f.Kind)})
		}
		window := float64(int(1) << uint(min(tries+1, 6)))
		delay := (1 + r.rng.Float64()*window) * r.cfg.SlotTime
		r.eng.ScheduleEvent(delay, Event{Kind: evBroadcastAttempt, Seq: int64(slot), Arg: int32(tries + 1)})
		return
	}
	r.transmit(*f)
	r.releaseFrame(slot)
}

// Send queues a raw data frame for transmission; delivery is attempted
// with CSMA/CA and acknowledged retransmission.
func (r *Radio) Send(from, to network.NodeID, bytes int) error {
	return r.send(Frame{From: from, To: to, Bytes: bytes, Kind: FrameRaw})
}

// SendReports queues a data frame carrying a report batch. The batch is
// owned by the radio until the frame is acknowledged or dropped and is
// then recycled into the radio's pool: callers must not retain it.
func (r *Radio) SendReports(from, to network.NodeID, bytes int, batch []core.Report) error {
	return r.send(Frame{From: from, To: to, Bytes: bytes, Kind: FrameReports, Batch: batch})
}

// SendReply queues a probe-reply data frame.
func (r *Radio) SendReply(from, to network.NodeID, bytes int, s core.Sample) error {
	return r.send(Frame{From: from, To: to, Bytes: bytes, Kind: FrameReply, Sample: s})
}

func (r *Radio) send(f Frame) error {
	if !r.nw.Alive(f.From) || !r.nw.Alive(f.To) {
		return fmt.Errorf("desim: send between dead nodes %d -> %d", f.From, f.To)
	}
	if f.Bytes <= 0 {
		return fmt.Errorf("desim: frame size must be positive, got %d", f.Bytes)
	}
	r.seq++
	f.seq = r.seq
	if r.cfg.FrameDeadline > 0 {
		f.deadline = r.eng.Now() + r.cfg.FrameDeadline
	}
	slot := r.allocFrame()
	f.slot = slot
	r.frames[slot] = f
	r.Stats.DataSent++
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindSend, Phase: phaseOfFrame(&f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	r.attempt(f.seq, slot)
	return nil
}

// airtime returns the on-air duration of a frame.
func (r *Radio) airtime(bytes int) float64 {
	return float64(bytes) * 8 / r.cfg.BitsPerSecond
}

// mediumBusy reports whether id senses an ongoing transmission (its own or
// an alive neighbor's). Neighbors are scanned in place — the former
// AliveNeighbors call built a fresh slice per carrier-sense, which was the
// single largest allocator in the engine.
func (r *Radio) mediumBusy(id network.NodeID) bool {
	now := r.eng.Now()
	if r.states[id].txUntil > now {
		return true
	}
	for _, nb := range r.nw.Neighbors(id) {
		if r.states[nb].txUntil > now && r.nw.Alive(nb) {
			return true
		}
	}
	return false
}

// attempt runs one CSMA round for a pending data frame: sense, back off if
// busy, otherwise transmit and arm the ack timeout.
func (r *Radio) attempt(seq int64, slot int32) {
	f := &r.frames[slot]
	if f.seq != seq {
		return // acked while backing off; the slot may have been reused
	}
	if !r.nw.Alive(f.From) {
		if r.tr != nil {
			r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDead, Phase: phaseOfFrame(f), Cause: trace.CauseSenderDead,
				Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
		}
		r.recycleFrame(slot) // sender crashed: the frame dies with it
		return
	}
	if r.expired(f) {
		r.drop(slot, trace.CauseDeadline)
		return
	}
	if r.mediumBusy(f.From) {
		r.backoff(f)
		return
	}
	r.transmit(*f)
	// Ack timeout: data airtime + ack airtime + turnaround guard.
	timeout := r.airtime(f.Bytes) + r.airtime(r.cfg.AckBytes) + 4*r.cfg.SlotTime
	r.eng.ScheduleEvent(timeout, Event{Kind: evAckTimeout, Seq: seq, Arg: slot})
}

// ackTimeout handles an expired ack wait: retry with backoff or give up.
func (r *Radio) ackTimeout(seq int64, slot int32) {
	f := &r.frames[slot]
	if f.seq != seq {
		return // acked
	}
	f.retries++
	if f.retries > r.cfg.MaxRetries || r.expired(f) {
		cause := trace.CauseRetries
		if f.retries <= r.cfg.MaxRetries {
			cause = trace.CauseDeadline
		}
		r.drop(slot, cause)
		return
	}
	r.Stats.Retries++
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindRetry, Phase: phaseOfFrame(f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Arg: int32(f.retries), FrameKind: uint8(f.Kind)})
	}
	r.backoff(f)
}

// expired reports whether a frame has outlived its per-frame deadline.
func (r *Radio) expired(f *Frame) bool {
	return f.deadline > 0 && r.eng.Now() >= f.deadline
}

// drop abandons a pending data frame, notifies the upper layer, and
// recycles the frame's slot (and batch) afterwards. cause records why
// (retries exhausted or deadline passed) in the trace.
func (r *Radio) drop(slot int32, cause trace.Cause) {
	f := r.frames[slot]
	r.Stats.Drops++
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDrop, Phase: phaseOfFrame(&f), Cause: cause,
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), Arg: int32(f.retries), FrameKind: uint8(f.Kind)})
	}
	if r.onDrop != nil {
		r.onDrop(f)
	}
	r.recycleFrame(slot)
}

// backoff reschedules a frame after a binary-exponential random delay.
func (r *Radio) backoff(f *Frame) {
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindBackoff, Phase: phaseOfFrame(f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Arg: int32(f.retries), FrameKind: uint8(f.Kind)})
	}
	window := 1 << uint(min(f.retries+1, 6))
	delay := (1 + r.rng.Float64()*float64(window)) * r.cfg.SlotTime
	r.eng.ScheduleEvent(delay, Event{Kind: evAttempt, Seq: f.seq, Arg: f.slot})
}

// transmit puts a frame on the air: the sender is busy for the airtime and
// the frame arrives at every alive neighbor — unless the injected channel
// erases that reception — where it may collide.
func (r *Radio) transmit(f Frame) {
	if !r.nw.Alive(f.From) {
		return // crashed between scheduling and airtime
	}
	now := r.eng.Now()
	if r.trace != nil {
		r.trace(fmtFrame("tx", f))
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: now, Kind: trace.KindTx, Phase: phaseOfFrame(&f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	dur := r.airtime(f.Bytes)
	r.states[f.From].txUntil = now + dur
	if r.counters != nil {
		r.counters.ChargeTx(f.From, f.Bytes)
	}
	for _, nb := range r.nw.Neighbors(f.From) {
		if !r.nw.Alive(nb) {
			continue
		}
		if r.channel != nil && r.channel(f.From, nb) {
			r.Stats.ChannelLosses++
			if r.tr != nil {
				r.tr.Record(trace.Event{T: now, Kind: trace.KindChanLoss, Phase: phaseOfFrame(&f),
					Node: int32(f.From), Peer: int32(nb), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
			}
			continue
		}
		r.arrive(nb, f, dur)
	}
}

// arrive begins a reception at node id, handling receiver-side collisions:
// overlapping arrivals corrupt each other, and a transmitting node cannot
// receive.
func (r *Radio) arrive(id network.NodeID, f Frame, dur float64) {
	now := r.eng.Now()
	st := &r.states[id]
	if st.txUntil > now {
		return // half-duplex: transmitting nodes miss the frame
	}
	if st.rxActive && st.rxUntil > now {
		// Overlap: the ongoing reception corrupts; this frame is lost too.
		if !st.rxCorrupted {
			st.rxCorrupted = true
			r.Stats.Collisions++
			if r.tr != nil {
				r.tr.Record(trace.Event{T: now, Kind: trace.KindCollision, Phase: phaseOfFrame(&st.rxFrame),
					Node: int32(id), Peer: int32(st.rxFrame.From), Seq: st.rxFrame.seq, Bytes: int32(st.rxFrame.Bytes), FrameKind: uint8(st.rxFrame.Kind)})
			}
		}
		r.Stats.Collisions++
		if r.tr != nil {
			r.tr.Record(trace.Event{T: now, Kind: trace.KindCollision, Phase: phaseOfFrame(&f),
				Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
		}
		// Extend the busy window to cover the interferer; finishRx at the
		// old deadline no-ops, so arm one at the new deadline.
		if now+dur > st.rxUntil {
			st.rxUntil = now + dur
			r.eng.ScheduleEventAt(st.rxUntil, Event{Kind: evFinishRx, Node: id})
		}
		return
	}
	st.rxActive = true
	st.rxUntil = now + dur
	st.rxCorrupted = false
	st.rxFrame = f
	r.eng.ScheduleEventAt(st.rxUntil, Event{Kind: evFinishRx, Node: id})
}

// seenAt returns id's dedup set, allocating it on first use.
func (r *Radio) seenAt(id network.NodeID) map[int64]bool {
	if r.seen[id] == nil {
		r.seen[id] = make(map[int64]bool)
	}
	return r.seen[id]
}

// finishRx completes a reception at id, delivering intact frames addressed
// to it and sending the ack.
func (r *Radio) finishRx(id network.NodeID) {
	st := &r.states[id]
	if !st.rxActive || r.eng.Now() < st.rxUntil {
		return // superseded by an extended (corrupted) window
	}
	f := st.rxFrame
	corrupted := st.rxCorrupted
	st.rxActive = false
	st.rxCorrupted = false
	if r.trace != nil {
		r.trace(fmtRxEnd(f, corrupted, id))
	}
	if corrupted || (f.To != id && f.To != broadcastAddr) {
		return
	}
	if r.counters != nil {
		r.counters.ChargeRx(id, f.Bytes)
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindRx, Phase: phaseOfFrame(&f),
			Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	if f.To == broadcastAddr {
		// Broadcast: deliver once per node, no ack.
		seen := r.seenAt(id)
		if seen[f.seq] {
			return
		}
		seen[f.seq] = true
		if r.tr != nil {
			r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDeliver, Phase: phaseOfFrame(&f),
				Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
		}
		if h := r.handlers[id]; h != nil {
			h(id, f)
		}
		return
	}
	if f.isAck {
		if pending := &r.frames[f.ackForSlot]; pending.seq == f.ackFor {
			if r.tr != nil {
				r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindAck, Phase: phaseOfFrame(pending),
					Node: int32(id), Peer: int32(pending.To), Seq: pending.seq, Bytes: int32(pending.Bytes), FrameKind: uint8(pending.Kind)})
			}
			r.recycleFrame(f.ackForSlot) // still pending: acked now
		}
		return
	}
	// Ack the data frame (even duplicates, whose first ack was lost). The
	// ack waits in its arena slot until its send event transmits it.
	r.seq++
	ackSlot := r.allocFrame()
	r.frames[ackSlot] = Frame{From: id, To: f.From, Bytes: r.cfg.AckBytes, seq: r.seq, isAck: true, ackFor: f.seq, ackForSlot: f.slot}
	r.eng.ScheduleEvent(r.cfg.SlotTime, Event{Kind: evAckSend, Seq: int64(ackSlot)})
	seen := r.seenAt(id)
	if seen[f.seq] {
		return // duplicate data frame
	}
	seen[f.seq] = true
	r.Stats.Delivered++
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDeliver, Phase: phaseOfFrame(&f),
			Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	if h := r.handlers[id]; h != nil {
		h(id, f)
	}
}

// ackSend transmits a queued ack, retrying once briefly when the medium
// is busy; a lost ack only costs a duplicate retransmission.
func (r *Radio) ackSend(slot int32) {
	if r.mediumBusy(r.frames[slot].From) {
		r.eng.ScheduleEvent(r.cfg.SlotTime*2, Event{Kind: evAckRetry, Seq: int64(slot)})
		return
	}
	r.transmit(r.frames[slot])
	r.releaseFrame(slot)
}

// ackRetry is the single deferred ack retransmission.
func (r *Radio) ackRetry(slot int32) {
	r.transmit(r.frames[slot])
	r.releaseFrame(slot)
}

func fmtFrame(kind string, f Frame) string {
	var b strings.Builder
	b.WriteString(kind)
	if f.isAck {
		b.WriteString(" ack seq=")
	} else {
		b.WriteString(" data seq=")
	}
	b.WriteString(strconv.Itoa(int(f.seq)))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(int(f.From)))
	b.WriteString("->")
	b.WriteString(strconv.Itoa(int(f.To)))
	return b.String()
}

func fmtRxEnd(f Frame, corrupted bool, at network.NodeID) string {
	var b strings.Builder
	b.WriteString(fmtFrame("rxEnd", f))
	if corrupted {
		b.WriteString(" CORRUPT")
	}
	b.WriteString(" at ")
	b.WriteString(strconv.Itoa(int(at)))
	return b.String()
}
