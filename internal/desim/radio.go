package desim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/trace"
)

// RadioConfig parameterizes the CSMA/CA link layer.
type RadioConfig struct {
	// BitsPerSecond is the radio bitrate (default: the Mica2 CC1000 rate).
	BitsPerSecond float64
	// AckBytes is the acknowledgement frame size.
	AckBytes int
	// SlotTime is the backoff quantum in seconds.
	SlotTime float64
	// MaxRetries bounds retransmissions per frame before it is dropped.
	MaxRetries int
	// FrameDeadline, when positive, abandons a data frame once it has
	// been pending longer than this many seconds — even with retries
	// left — so sustained outages (a crashed parent, a long loss burst)
	// surface as a bounded-latency drop the upper layer can react to
	// instead of an open-ended retry tail. Zero disables the deadline.
	FrameDeadline float64
	// PropagationDelay is the latency between the start of a transmission
	// and its effect at receivers: carrier becomes sensable, receptions
	// begin, and a node's death becomes observable to its neighbors only
	// PropagationDelay seconds after the fact. It is the physical
	// lookahead sharded execution synchronizes on — a frame sent in one
	// shard cannot touch another shard sooner than this — so it must be
	// positive; zero or negative selects SlotTime.
	PropagationDelay float64
	// Seed drives the backoff jitter.
	Seed int64
}

// DefaultRadioConfig returns a CC1000-like configuration: 38.4 kbps, 2-byte
// acks, ~1 ms backoff slots, 12 retries, a one-slot propagation delay.
func DefaultRadioConfig() RadioConfig {
	return RadioConfig{
		BitsPerSecond: energy.RadioBitsPerSecond,
		AckBytes:      2,
		SlotTime:      1e-3,
		MaxRetries:    12,
		Seed:          1,
	}
}

// normalized resolves defaulted fields.
func (cfg RadioConfig) normalized() RadioConfig {
	if cfg.PropagationDelay <= 0 {
		cfg.PropagationDelay = cfg.SlotTime
	}
	return cfg
}

// FrameKind tags the concrete payload representation a frame carries,
// replacing the former `Payload any` box: every payload the protocols
// exchange has a dedicated field, so handing a frame around allocates
// nothing.
type FrameKind uint8

const (
	// FrameRaw carries no payload semantics (link-layer tests).
	FrameRaw FrameKind = iota
	// FrameReports carries a report batch in Frame.Batch.
	FrameReports
	// FrameQuery is the flooded contour query.
	FrameQuery
	// FrameProbe is an isoline candidate's neighborhood probe; the
	// probing node is Frame.Asker.
	FrameProbe
	// FrameReply is a neighbor's <value, position> answer to a probe in
	// Frame.Sample.
	FrameReply
)

// Frame is one link-layer data unit.
type Frame struct {
	From  network.NodeID
	To    network.NodeID
	Bytes int
	// Kind selects which payload field below is meaningful.
	Kind FrameKind
	// Batch is the report batch of FrameReports frames. The slice is
	// owned by the radio from Send until the frame is acknowledged or
	// dropped, then recycled into an internal pool: senders must not
	// retain or reuse it, and OnDrop handlers that want to keep the
	// batch past the callback must copy it.
	Batch []core.Report
	// Sample is the probe-reply payload of FrameReply frames.
	Sample core.Sample
	// Asker is the probing node of FrameProbe frames.
	Asker network.NodeID

	seq int64
	// slot is the frame's own arena slot; receivers echo it in the ack so
	// the sender's pending frame is found without a seq-to-slot lookup.
	slot       int32
	isAck      bool
	ackFor     int64
	ackForSlot int32
	retries    int
	// tries counts backoff draws this frame has consumed (carrier-sense
	// and retry backoffs alike); it indexes the frame's hashed jitter
	// stream, so the draws are a function of the frame alone — identical
	// under any partition of the deployment.
	tries int32
	// deadline is the absolute time past which the frame is abandoned
	// (0 = none); set from RadioConfig.FrameDeadline at Send time.
	deadline float64
	// delivered flags a pending data frame whose destination has in fact
	// received it (set by the receiver, through the barrier mailbox when
	// the receiver is remote). With a nonzero propagation delay a frame
	// can deliver while every ack is lost; the flag keeps such a give-up
	// out of Stats.Drops so delivery accounting stays exact.
	delivered bool
}

// RadioStats counts link-layer happenings.
type RadioStats struct {
	// DataSent counts first transmissions of data frames.
	DataSent int
	// Retries counts data retransmissions.
	Retries int
	// Collisions counts receptions corrupted by overlap.
	Collisions int
	// Drops counts data frames abandoned after MaxRetries or past their
	// frame deadline without ever having been delivered. A frame whose
	// receptions succeeded but whose acks were all lost is counted
	// delivered, not dropped, even though the sender gave up — so
	// Delivered + Drops always equals DataSent (crashed senders aside).
	Drops int
	// ChannelLosses counts receptions erased by the injected channel
	// model (independent of collisions).
	ChannelLosses int
	// Delivered counts data frames handed to their destination exactly
	// once (duplicates from lost acks are filtered).
	Delivered int
}

// add accumulates another radio's stats (shard merge).
func (s *RadioStats) add(o RadioStats) {
	s.DataSent += o.DataSent
	s.Retries += o.Retries
	s.Collisions += o.Collisions
	s.Drops += o.Drops
	s.ChannelLosses += o.ChannelLosses
	s.Delivered += o.Delivered
}

// batchPool recycles the report-batch slices that ride FrameReports
// frames. Batches are acquired empty at flush time, travel with the frame
// through retransmissions, and return to the pool when the link layer is
// done with the frame (acked, dropped, or died with a crashed sender), so
// a steady-state convergecast reuses a small working set of slices
// instead of allocating one per hop.
type batchPool struct {
	free [][]core.Report
}

// get returns an empty batch, reusing pooled capacity when available.
func (p *batchPool) get() []core.Report {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return nil
}

// put recycles a batch's capacity. Zero-capacity slices are not worth
// keeping.
func (p *batchPool) put(b []core.Report) {
	if cap(b) == 0 {
		return
	}
	p.free = append(p.free, b[:0])
}

// txSpan is one on-air interval of a node: carrier is sensable at its
// neighbors from s+PropagationDelay to e+PropagationDelay.
type txSpan struct {
	s, e float64
}

// mailEntry is one cross-shard transmission awaiting delivery: the
// frame's propagate event fires in the destination shard at time t (the
// transmit time plus the propagation delay, always inside the next
// synchronization window).
type mailEntry struct {
	t  float64
	fr Frame
}

// deliveredMark is a cross-shard delivery notification: the receiver
// shard flags the sender's pending frame (identified by arena slot,
// validated by seq) as delivered at the next barrier. A sender can only
// give up on a frame at least one propagation delay after any delivery,
// so the mark always crosses a barrier before the drop could fire —
// identical accounting at every shard count.
type deliveredMark struct {
	seq  int64
	slot int32
}

// radioGroup is the state shared by the radios of one deployment — a
// single radio in sequential runs, one per shard in sharded runs. All
// per-node slices are written exclusively by the shard that owns the
// node (every event addressing a node executes in its own shard), so
// parallel windows never race; cross-shard reads go through the
// barrier-published view copies (busyView/crashView) instead of the live
// arrays.
type radioGroup struct {
	radios   []*Radio
	states   []radioState
	handlers []func(network.NodeID, Frame)
	// seen holds per-node delivered seqs (dedup), allocated lazily.
	seen []map[int64]bool
	// seqs derives per-node frame sequence numbers: node id's frames get
	// (id+1)<<24 | counter, globally unique and — unlike a shared
	// counter — independent of how other nodes' sends interleave.
	seqs []int64
	// busy holds each node's recent on-air spans; dead spans (past every
	// possible reader's visibility) are pruned in place at the next
	// transmit, so the list stays a handful of entries.
	busy [][]txSpan
	// crashT is each node's mid-round crash time, +Inf while alive.
	// Neighbors treat a crashed node as alive until crashT +
	// PropagationDelay — the silence takes one propagation to be heard.
	crashT []float64

	// Sharded-run state; nil/zero in sequential runs.
	shardOf []int32   // node -> shard (nil = sequential)
	border  []bool    // node has cross-shard neighbors
	remote  [][]int32 // node -> remote shards in radio range
	failed0 []bool    // nodes already failed when the round started
	se      *ShardedEngine
	k       int
	// busyView/crashView are the barrier-published snapshots remote
	// shards read; dirty lists (per owning shard, stamp-deduplicated per
	// epoch) name the border nodes to republish at the next barrier.
	busyView   [][]txSpan
	crashView  []float64
	dirtyBusy  [][]int32
	dirtyCrash [][]int32
	busyStamp  []int64
	crashStamp []int64
	epoch      int64
	// mail[src*k+dst] queues cross-shard transmissions, drained
	// single-threaded at every barrier into import-arena propagates.
	mail [][]mailEntry
	// marks[src*k+dst] queues cross-shard delivery notifications for
	// dst's pending frames, drained at the same barriers.
	marks [][]deliveredMark
}

func newRadioGroup(n int) *radioGroup {
	g := &radioGroup{
		states:   make([]radioState, n),
		handlers: make([]func(network.NodeID, Frame), n),
		seen:     make([]map[int64]bool, n),
		seqs:     make([]int64, n),
		busy:     make([][]txSpan, n),
		crashT:   make([]float64, n),
	}
	for i := range g.crashT {
		g.crashT[i] = math.Inf(1)
	}
	return g
}

// Radio executes frame exchanges over the network's connectivity graph
// with carrier sensing, receiver-side collisions, acknowledgements and
// bounded retransmission. In-flight frames live in an index-addressed
// arena with a free-list, pending data frames are tracked by sequence
// number, and all timers are typed engine events — so the steady-state
// link layer runs without heap allocation.
//
// Every physical effect crosses the medium with a PropagationDelay
// latency: a transmission becomes sensable (and receivable) one delay
// after it starts, and a crash becomes observable to neighbors one delay
// after it happens. That delay is what gives sharded execution its
// conservative lookahead; sequential runs use the identical physics, so
// the two are byte-equivalent.
type Radio struct {
	eng   EngineAPI
	nw    *network.Network
	cfg   RadioConfig
	grp   *radioGroup
	shard int32

	// frames is the in-flight frame arena; freeSlots recycles it. A data
	// frame owns its slot from Send until it is acked, dropped, or dies
	// with a crashed sender; broadcast and ack frames own theirs until
	// their propagate event fires. Events reach a frame by slot and
	// validate the frame's unique seq, so a recycled slot can never be
	// acted on by a stale event.
	frames    []Frame
	freeSlots []int32
	// imports holds frames mailed in from other shards, parked from the
	// barrier drain until their propagate event fires.
	imports    []Frame
	importFree []int32
	counters   *metrics.Counters
	// pool recycles report batches; upper layers acquire flush batches
	// from it and the radio returns them when frames finish.
	pool batchPool

	// Stats accumulates link-layer counts (this shard's share).
	Stats RadioStats

	// trace, when set, receives a line per link-layer event (tests only).
	trace func(string)
	// tr, when set, records structured link-layer events. Every emission
	// is behind this nil check and recording draws no randomness, so an
	// untraced radio is byte-identical to today's.
	tr *trace.Recorder
	// onDrop, when set, receives data frames abandoned after MaxRetries
	// or past their deadline, so an upper layer can re-queue their
	// payload. The frame's Batch is recycled when the handler returns.
	onDrop func(Frame)
	// upper receives non-link-layer typed events (see OnEvent).
	upper func(Event)
	// channel, when set, decides per reception whether the channel
	// erases the frame on the directed link from->to; losses are drawn
	// before (and independently of) the collision model.
	channel func(from, to network.NodeID) bool
}

type radioState struct {
	txUntil     float64
	rxActive    bool
	rxUntil     float64
	rxCorrupted bool
	rxFrame     Frame
}

// validateRadioConfig is the shared construction check.
func validateRadioConfig(cfg RadioConfig) error {
	if cfg.BitsPerSecond <= 0 {
		return fmt.Errorf("desim: bitrate must be positive, got %g", cfg.BitsPerSecond)
	}
	if cfg.SlotTime <= 0 {
		return fmt.Errorf("desim: slot time must be positive, got %g", cfg.SlotTime)
	}
	return nil
}

// newShardRadio builds one radio onto the group.
func (g *radioGroup) newShardRadio(shard int32, eng EngineAPI, nw *network.Network, cfg RadioConfig, counters *metrics.Counters) *Radio {
	r := &Radio{
		eng:      eng,
		nw:       nw,
		cfg:      cfg,
		grp:      g,
		shard:    shard,
		counters: counters,
	}
	g.radios = append(g.radios, r)
	return r
}

// NewRadio builds a radio over the network. counters may be nil; when
// given, every physical transmission and reception (including retries and
// acks) is charged to it, which is what separates the measured link-layer
// energy from the structural model's perfect-link charge. The radio
// installs itself as the engine's typed-event handler; upper layers
// register for their own event kinds with OnEvent.
func NewRadio(eng EngineAPI, nw *network.Network, cfg RadioConfig, counters *metrics.Counters) (*Radio, error) {
	if eng == nil || nw == nil {
		return nil, fmt.Errorf("desim: nil engine or network")
	}
	if err := validateRadioConfig(cfg); err != nil {
		return nil, err
	}
	g := newRadioGroup(nw.Len())
	r := g.newShardRadio(0, eng, nw, cfg.normalized(), counters)
	eng.SetHandler(r.handleEvent)
	return r, nil
}

// newShardedRadios builds one radio per shard of the engine's partition,
// all sharing one radioGroup, and wires the engine's barrier hook: mail
// drain plus border-state publication. It also derives the engine's
// synchronization window from the propagation delay.
func newShardedRadios(se *ShardedEngine, nw *network.Network, cfg RadioConfig, counters *metrics.Counters) ([]*Radio, error) {
	if se == nil || nw == nil {
		return nil, fmt.Errorf("desim: nil engine or network")
	}
	if err := validateRadioConfig(cfg); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	part := se.part
	if len(part.Shard) != nw.Len() {
		return nil, fmt.Errorf("desim: partition over %d nodes, network has %d", len(part.Shard), nw.Len())
	}
	n := nw.Len()
	k := part.K
	g := newRadioGroup(n)
	g.shardOf = part.Shard
	g.border = part.Border
	g.remote = part.Remote
	g.se = se
	g.k = k
	g.failed0 = make([]bool, n)
	for i := 0; i < n; i++ {
		g.failed0[i] = !nw.Alive(network.NodeID(i))
	}
	g.busyView = make([][]txSpan, n)
	g.crashView = make([]float64, n)
	for i := range g.crashView {
		g.crashView[i] = math.Inf(1)
	}
	g.dirtyBusy = make([][]int32, k)
	g.dirtyCrash = make([][]int32, k)
	g.busyStamp = make([]int64, n)
	g.crashStamp = make([]int64, n)
	g.epoch = 1
	g.mail = make([][]mailEntry, k*k)
	g.marks = make([][]deliveredMark, k*k)
	radios := make([]*Radio, k)
	for s := 0; s < k; s++ {
		eng := se.Shard(s)
		radios[s] = g.newShardRadio(int32(s), eng, nw, cfg, counters)
		eng.SetHandler(radios[s].handleEvent)
	}
	se.setWindow(cfg.PropagationDelay)
	se.OnBarrier(g.barrier)
	return radios, nil
}

// barrier runs single-threaded between windows: publish the border state
// remote shards will read during the next window, then drain the
// cross-shard mailboxes into import-arena propagate events. Every mailed
// delivery time is at least the next window's start (transmit time +
// PropagationDelay with the window equal to that delay), so nothing
// lands in a shard's past — the conservative-lookahead invariant.
func (g *radioGroup) barrier() {
	for s := range g.dirtyBusy {
		for _, id := range g.dirtyBusy[s] {
			g.busyView[id] = append(g.busyView[id][:0], g.busy[id]...)
		}
		g.dirtyBusy[s] = g.dirtyBusy[s][:0]
		for _, id := range g.dirtyCrash[s] {
			g.crashView[id] = g.crashT[id]
		}
		g.dirtyCrash[s] = g.dirtyCrash[s][:0]
	}
	g.epoch++
	k := g.k
	for d := 0; d < k; d++ {
		rd := g.radios[d]
		for s := 0; s < k; s++ {
			mbox := &g.marks[s*k+d]
			for _, m := range *mbox {
				if p := &rd.frames[m.slot]; p.seq == m.seq {
					p.delivered = true
				}
			}
			*mbox = (*mbox)[:0]
			box := &g.mail[s*k+d]
			for i := range *box {
				m := &(*box)[i]
				fr := m.fr
				if fr.Batch != nil {
					// The mailed frame aliases the sender's pooled batch;
					// give the import its own copy (plain allocation: the
					// receiver's rxFrame may alias it past the import slot's
					// release, so it must not return to a pool).
					fr.Batch = append([]core.Report(nil), fr.Batch...)
				}
				slot := rd.allocImport()
				rd.imports[slot] = fr
				g.se.scheduleMailed(int32(d), m.t, Event{Kind: evPropagate, Node: fr.From, Seq: fr.seq, Arg: -(slot + 1)})
			}
			*box = (*box)[:0]
		}
	}
}

// localShard reports whether id's events run on this radio's engine.
func (r *Radio) localShard(id network.NodeID) bool {
	return r.grp.shardOf == nil || r.grp.shardOf[id] == r.shard
}

// visibleAlive reports whether id looks alive from this shard right now:
// a node's death becomes observable one PropagationDelay after it
// happens (its last transmission is still on the air). For local nodes
// the check is exact against the live crash time; for remote nodes it
// reads the barrier-published crash view — equivalent, because a crash
// inside the current window cannot become visible before the window
// ends. Nodes already failed at round start are dead immediately: they
// never transmitted.
func (r *Radio) visibleAlive(id network.NodeID) bool {
	g := r.grp
	if r.localShard(id) {
		if r.nw.Alive(id) {
			return true
		}
		tc := g.crashT[id]
		return !math.IsInf(tc, 1) && r.eng.Now() < tc+r.cfg.PropagationDelay
	}
	if g.failed0[id] {
		return false
	}
	return r.eng.Now() < g.crashView[id]+r.cfg.PropagationDelay
}

// handleEvent dispatches typed events: link-layer kinds are executed
// here, everything else goes to the upper layer.
func (r *Radio) handleEvent(ev Event) {
	switch ev.Kind {
	case evBroadcastAttempt:
		if slot := ev.Arg; r.frames[slot].seq == ev.Seq {
			r.broadcastAttempt(slot)
		}
	case evAttempt:
		r.attempt(ev.Seq, ev.Arg)
	case evAckTimeout:
		r.ackTimeout(ev.Seq, ev.Arg)
	case evFinishRx:
		r.finishRx(ev.Node)
	case evAckSend:
		if slot := ev.Arg; r.frames[slot].seq == ev.Seq {
			r.ackSend(slot)
		}
	case evAckRetry:
		if slot := ev.Arg; r.frames[slot].seq == ev.Seq {
			r.ackRetry(slot)
		}
	case evPropagate:
		r.propagate(ev)
	default:
		if r.upper != nil {
			r.upper(ev)
		}
	}
}

// OnEvent registers the upper-layer dispatcher for typed events the radio
// does not consume (flushes, probes, measurements, crashes, ...).
func (r *Radio) OnEvent(fn func(Event)) { r.upper = fn }

// OnReceive registers the upper-layer handler invoked when a data frame is
// delivered to id. The handler receives the delivering node, so one
// function value can serve every node without per-node closures.
func (r *Radio) OnReceive(id network.NodeID, fn func(network.NodeID, Frame)) {
	r.grp.handlers[id] = fn
}

// OnDrop registers the upper-layer handler invoked when a data frame is
// abandoned after exhausting its retries or its deadline. The frame's
// Batch is recycled after the handler returns; copy it to keep it.
func (r *Radio) OnDrop(fn func(Frame)) {
	r.onDrop = fn
}

// SetTrace installs a structured event recorder: every link-layer
// happening — transmissions, receptions, deliveries, acks, backoffs,
// retries, drops with cause, collisions, channel erasures, crashes — is
// recorded as a typed trace.Event at the same points the energy model
// charges, so the trace reconciles exactly with the round's counters
// (trace.CheckCounters). A nil recorder disables tracing; the radio's
// behavior is identical either way.
func (r *Radio) SetTrace(rec *trace.Recorder) { r.tr = rec }

// phaseOfFrame classifies a frame into the protocol phase its traffic
// belongs to: the query flood, the probe/measure exchange, the report
// convergecast, or pure link machinery (acks).
func phaseOfFrame(f *Frame) trace.Phase {
	if f.isAck {
		return trace.PhaseLink
	}
	switch f.Kind {
	case FrameQuery:
		return trace.PhaseQuery
	case FrameProbe, FrameReply:
		return trace.PhaseMeasure
	case FrameReports:
		return trace.PhaseCollect
	}
	return trace.PhaseNone
}

// SetChannel installs a per-link loss model (e.g. faults.Plan.Lose): it
// is consulted once per potential reception, and a true return erases the
// frame on that link before it reaches the receiver — modeling channel
// errors the CRC catches, independent of the collision model. Acks and
// broadcasts traverse the channel too. Draws happen at arrival time in
// the receiving node's shard, so each directed link consumes its loss
// stream in arrival order regardless of partitioning.
func (r *Radio) SetChannel(ch func(from, to network.NodeID) bool) {
	r.channel = ch
}

// Crash kills a node mid-simulation: its Failed mark is set, any ongoing
// reception is voided, and its on-air spans are truncated at the crash
// instant. The node stops transmitting, receiving and forwarding
// immediately — but its neighbors only observe the death one
// PropagationDelay later (visibleAlive): until then frames toward it are
// still sent and die by retry exhaustion, which is how upper layers
// detect the silence. Data frames it still has pending are abandoned
// silently at their next attempt (a dead node cannot re-queue).
func (r *Radio) Crash(id network.NodeID) {
	if !r.nw.Alive(id) {
		return
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindCrash, Node: int32(id), Peer: -1})
	}
	r.nw.Node(id).Failed = true
	now := r.eng.Now()
	g := r.grp
	g.crashT[id] = now
	b := g.busy[id]
	for i := range b {
		if b[i].e > now {
			b[i].e = now
		}
	}
	st := &g.states[id]
	st.rxActive = false
	st.rxCorrupted = false
	st.txUntil = 0
	if g.shardOf != nil && g.border[id] {
		r.markBusyDirty(id)
		if g.crashStamp[id] != g.epoch {
			g.crashStamp[id] = g.epoch
			g.dirtyCrash[r.shard] = append(g.dirtyCrash[r.shard], int32(id))
		}
	}
}

// markBusyDirty queues a border node's span list for publication at the
// next barrier (at most once per window).
func (r *Radio) markBusyDirty(id network.NodeID) {
	g := r.grp
	if g.busyStamp[id] == g.epoch {
		return
	}
	g.busyStamp[id] = g.epoch
	g.dirtyBusy[r.shard] = append(g.dirtyBusy[r.shard], int32(id))
}

// allocFrame returns an arena slot, recycling freed ones first.
func (r *Radio) allocFrame() int32 {
	if n := len(r.freeSlots); n > 0 {
		s := r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
		return s
	}
	r.frames = append(r.frames, Frame{})
	return int32(len(r.frames) - 1)
}

// releaseFrame clears a slot and returns it to the free-list.
func (r *Radio) releaseFrame(slot int32) {
	r.frames[slot] = Frame{}
	r.freeSlots = append(r.freeSlots, slot)
}

// recycleFrame releases a data frame's slot, returning its batch to the
// pool first.
func (r *Radio) recycleFrame(slot int32) {
	if b := r.frames[slot].Batch; b != nil {
		r.pool.put(b)
	}
	r.releaseFrame(slot)
}

// allocImport returns an import-arena slot.
func (r *Radio) allocImport() int32 {
	if n := len(r.importFree); n > 0 {
		s := r.importFree[n-1]
		r.importFree = r.importFree[:n-1]
		return s
	}
	r.imports = append(r.imports, Frame{})
	return int32(len(r.imports) - 1)
}

// releaseImport clears an import slot. The frame's batch is deliberately
// not pooled: an in-progress reception may still alias it.
func (r *Radio) releaseImport(slot int32) {
	r.imports[slot] = Frame{}
	r.importFree = append(r.importFree, slot)
}

// nextSeq issues node id's next frame sequence number: globally unique
// and a function of the node's own send count alone, so frame identities
// are identical under any partition.
func (r *Radio) nextSeq(id network.NodeID) int64 {
	r.grp.seqs[id]++
	return (int64(id)+1)<<24 | r.grp.seqs[id]
}

// backoffUnit returns the try-th uniform [0,1) jitter draw of the frame
// with the given seq, as a splitmix-style hash of (seed, seq, try): the
// stream a frame consumes depends on the frame alone, not on which other
// frames draw when — the partition invariance sharded execution needs (a
// shared rand.Rand would interleave differently per shard).
func backoffUnit(seed, seq int64, try int32) float64 {
	z := uint64(seed)*0xD1B54A32D192ED03 ^ uint64(seq)*0x9E3779B97F4A7C15 ^ uint64(try)<<56
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Broadcast queues an unacknowledged local broadcast: the frame is
// transmitted once (after carrier sensing with bounded backoff) and every
// neighbor that receives it intact gets it delivered. Lost receptions are
// not recovered — flooding protocols tolerate that through redundancy.
func (r *Radio) Broadcast(from network.NodeID, bytes int) error {
	return r.broadcast(Frame{From: from, Bytes: bytes, Kind: FrameRaw})
}

// BroadcastQuery broadcasts the flooded contour query.
func (r *Radio) BroadcastQuery(from network.NodeID, bytes int) error {
	return r.broadcast(Frame{From: from, Bytes: bytes, Kind: FrameQuery})
}

// BroadcastProbe broadcasts an isoline candidate's neighborhood probe.
func (r *Radio) BroadcastProbe(from network.NodeID, bytes int, asker network.NodeID) error {
	return r.broadcast(Frame{From: from, Bytes: bytes, Kind: FrameProbe, Asker: asker})
}

func (r *Radio) broadcast(f Frame) error {
	if !r.nw.Alive(f.From) {
		return fmt.Errorf("desim: broadcast from dead node %d", f.From)
	}
	if f.Bytes <= 0 {
		return fmt.Errorf("desim: frame size must be positive, got %d", f.Bytes)
	}
	f.To = broadcastAddr
	f.seq = r.nextSeq(f.From)
	slot := r.allocFrame()
	f.slot = slot
	r.frames[slot] = f
	r.broadcastAttempt(slot)
	return nil
}

// broadcastAddr marks a frame delivered to every intact receiver.
const broadcastAddr network.NodeID = -2

// broadcastAttempt carrier-senses and transmits a broadcast frame, backing
// off a bounded number of times. The frame stays parked in its arena slot
// across backoffs; the slot is released when its propagate event fires.
func (r *Radio) broadcastAttempt(slot int32) {
	f := &r.frames[slot]
	if r.mediumBusy(f.From) && f.tries < 16 {
		if r.tr != nil {
			r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindBackoff, Phase: phaseOfFrame(f),
				Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Arg: f.tries, FrameKind: uint8(f.Kind)})
		}
		window := float64(int(1) << uint(min(int(f.tries)+1, 6)))
		delay := (1 + backoffUnit(r.cfg.Seed, f.seq, f.tries)*window) * r.cfg.SlotTime
		f.tries++
		r.eng.ScheduleEvent(delay, Event{Kind: evBroadcastAttempt, Node: f.From, Seq: f.seq, Arg: slot})
		return
	}
	r.transmit(slot)
}

// Send queues a raw data frame for transmission; delivery is attempted
// with CSMA/CA and acknowledged retransmission.
func (r *Radio) Send(from, to network.NodeID, bytes int) error {
	return r.send(Frame{From: from, To: to, Bytes: bytes, Kind: FrameRaw})
}

// SendReports queues a data frame carrying a report batch. The batch is
// owned by the radio until the frame is acknowledged or dropped and is
// then recycled into the radio's pool: callers must not retain it.
func (r *Radio) SendReports(from, to network.NodeID, bytes int, batch []core.Report) error {
	return r.send(Frame{From: from, To: to, Bytes: bytes, Kind: FrameReports, Batch: batch})
}

// SendReply queues a probe-reply data frame.
func (r *Radio) SendReply(from, to network.NodeID, bytes int, s core.Sample) error {
	return r.send(Frame{From: from, To: to, Bytes: bytes, Kind: FrameReply, Sample: s})
}

func (r *Radio) send(f Frame) error {
	if !r.nw.Alive(f.From) || !r.visibleAlive(f.To) {
		return fmt.Errorf("desim: send between dead nodes %d -> %d", f.From, f.To)
	}
	if f.Bytes <= 0 {
		return fmt.Errorf("desim: frame size must be positive, got %d", f.Bytes)
	}
	f.seq = r.nextSeq(f.From)
	if r.cfg.FrameDeadline > 0 {
		f.deadline = r.eng.Now() + r.cfg.FrameDeadline
	}
	slot := r.allocFrame()
	f.slot = slot
	r.frames[slot] = f
	r.Stats.DataSent++
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindSend, Phase: phaseOfFrame(&f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	r.attempt(f.seq, slot)
	return nil
}

// airtime returns the on-air duration of a frame.
func (r *Radio) airtime(bytes int) float64 {
	return float64(bytes) * 8 / r.cfg.BitsPerSecond
}

// mediumBusy reports whether id senses an ongoing transmission: its own
// immediately (it knows what it transmits), a neighbor's once the
// carrier has propagated — a span (s, e) is sensable during
// [s+PropagationDelay, e+PropagationDelay). Same-shard neighbors are
// read live; remote neighbors through the barrier-published view, which
// is equivalent: a span started inside the current window is invisible
// either way (its start plus the delay lands beyond the window's end).
func (r *Radio) mediumBusy(id network.NodeID) bool {
	now := r.eng.Now()
	g := r.grp
	if g.states[id].txUntil > now {
		return true
	}
	d := r.cfg.PropagationDelay
	for _, nb := range r.nw.Neighbors(id) {
		// Remote neighbors MUST NOT touch g.busy even speculatively: the
		// owning shard appends to it concurrently. Only the
		// barrier-published view is safe off-shard.
		var spans []txSpan
		if g.shardOf != nil && g.shardOf[nb] != r.shard {
			spans = g.busyView[nb]
		} else {
			spans = g.busy[nb]
		}
		for i := len(spans) - 1; i >= 0; i-- {
			if spans[i].s+d <= now && now < spans[i].e+d {
				return true
			}
		}
	}
	return false
}

// attempt runs one CSMA round for a pending data frame: sense, back off if
// busy, otherwise transmit and arm the ack timeout.
func (r *Radio) attempt(seq int64, slot int32) {
	f := &r.frames[slot]
	if f.seq != seq {
		return // acked while backing off; the slot may have been reused
	}
	if !r.nw.Alive(f.From) {
		if r.tr != nil {
			r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDead, Phase: phaseOfFrame(f), Cause: trace.CauseSenderDead,
				Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
		}
		r.recycleFrame(slot) // sender crashed: the frame dies with it
		return
	}
	if r.expired(f) {
		r.drop(slot, trace.CauseDeadline)
		return
	}
	if r.mediumBusy(f.From) {
		r.backoff(f)
		return
	}
	r.transmit(slot)
	// Ack timeout: data airtime + ack airtime + two propagations +
	// turnaround guard.
	timeout := r.airtime(f.Bytes) + r.airtime(r.cfg.AckBytes) + 2*r.cfg.PropagationDelay + 4*r.cfg.SlotTime
	r.eng.ScheduleEvent(timeout, Event{Kind: evAckTimeout, Node: f.From, Seq: seq, Arg: slot})
}

// ackTimeout handles an expired ack wait: retry with backoff or give up.
func (r *Radio) ackTimeout(seq int64, slot int32) {
	f := &r.frames[slot]
	if f.seq != seq {
		return // acked
	}
	f.retries++
	if f.retries > r.cfg.MaxRetries || r.expired(f) {
		cause := trace.CauseRetries
		if f.retries <= r.cfg.MaxRetries {
			cause = trace.CauseDeadline
		}
		r.drop(slot, cause)
		return
	}
	r.Stats.Retries++
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindRetry, Phase: phaseOfFrame(f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Arg: int32(f.retries), FrameKind: uint8(f.Kind)})
	}
	r.backoff(f)
}

// expired reports whether a frame has outlived its per-frame deadline.
func (r *Radio) expired(f *Frame) bool {
	return f.deadline > 0 && r.eng.Now() >= f.deadline
}

// drop abandons a pending data frame, notifies the upper layer, and
// recycles the frame's slot (and batch) afterwards. cause records why
// (retries exhausted or deadline passed) in the trace.
func (r *Radio) drop(slot int32, cause trace.Cause) {
	f := r.frames[slot]
	if !f.delivered {
		r.Stats.Drops++
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDrop, Phase: phaseOfFrame(&f), Cause: cause,
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), Arg: int32(f.retries), FrameKind: uint8(f.Kind)})
	}
	if r.onDrop != nil {
		r.onDrop(f)
	}
	r.recycleFrame(slot)
}

// backoff reschedules a frame after a binary-exponential hashed delay.
func (r *Radio) backoff(f *Frame) {
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindBackoff, Phase: phaseOfFrame(f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Arg: int32(f.retries), FrameKind: uint8(f.Kind)})
	}
	window := 1 << uint(min(f.retries+1, 6))
	delay := (1 + backoffUnit(r.cfg.Seed, f.seq, f.tries)*float64(window)) * r.cfg.SlotTime
	f.tries++
	r.eng.ScheduleEvent(delay, Event{Kind: evAttempt, Node: f.From, Seq: f.seq, Arg: f.slot})
}

// transmit puts a frame on the air: the sender is busy for the airtime,
// the span is recorded for delayed carrier sensing, and one propagate
// event per reachable shard is scheduled at now + PropagationDelay —
// locally through the engine, remotely through the mailbox — where the
// frame arrives at that shard's neighbors.
func (r *Radio) transmit(slot int32) {
	f := &r.frames[slot]
	if !r.nw.Alive(f.From) {
		// Crashed between scheduling and airtime. Broadcast and ack slots
		// are owned by their transmit path, so release them here; data
		// frames die at their next attempt.
		if f.isAck || f.To == broadcastAddr {
			r.releaseFrame(slot)
		}
		return
	}
	now := r.eng.Now()
	if r.trace != nil {
		r.trace(fmtFrame("tx", *f))
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: now, Kind: trace.KindTx, Phase: phaseOfFrame(f),
			Node: int32(f.From), Peer: int32(f.To), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	dur := r.airtime(f.Bytes)
	g := r.grp
	g.states[f.From].txUntil = now + dur
	d := r.cfg.PropagationDelay
	// Record the on-air span, pruning spans no reader can see anymore
	// (every possible read happens at a simulated time >= now, so a span
	// whose sensable window ended by now is dead).
	b := g.busy[f.From]
	kept := 0
	for i := range b {
		if b[i].e+d > now {
			b[kept] = b[i]
			kept++
		}
	}
	b = b[:kept]
	g.busy[f.From] = append(b, txSpan{s: now, e: now + dur})
	if r.counters != nil {
		r.counters.ChargeTx(f.From, f.Bytes)
	}
	r.eng.ScheduleEvent(d, Event{Kind: evPropagate, Node: f.From, Seq: f.seq, Arg: slot})
	if g.shardOf != nil && g.border[f.From] {
		r.markBusyDirty(f.From)
		for _, dst := range g.remote[f.From] {
			box := &g.mail[int(r.shard)*g.k+int(dst)]
			*box = append(*box, mailEntry{t: now + d, fr: *f})
		}
	}
}

// propagate lands a transmission at its receivers, one PropagationDelay
// after it started: for each neighbor of the sender in this shard, draw
// the channel, then begin the reception (collisions happen there).
// Arg >= 0 addresses the local frame arena, Arg < 0 the import arena
// (-(slot+1)) filled by the barrier mail drain. Local broadcast and ack
// slots are released here — their single transmit is done.
func (r *Radio) propagate(ev Event) {
	var f *Frame
	slot := ev.Arg
	if slot >= 0 {
		f = &r.frames[slot]
		if f.seq != ev.Seq {
			return // stale: the slot moved on
		}
	} else {
		f = &r.imports[-slot-1]
	}
	now := r.eng.Now()
	dur := r.airtime(f.Bytes)
	g := r.grp
	for _, nb := range r.nw.Neighbors(f.From) {
		if g.shardOf != nil && g.shardOf[nb] != r.shard {
			continue
		}
		if !r.nw.Alive(nb) {
			continue
		}
		if r.channel != nil && r.channel(f.From, nb) {
			r.Stats.ChannelLosses++
			if r.tr != nil {
				r.tr.Record(trace.Event{T: now, Kind: trace.KindChanLoss, Phase: phaseOfFrame(f),
					Node: int32(f.From), Peer: int32(nb), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
			}
			continue
		}
		r.arrive(nb, *f, dur)
	}
	if slot >= 0 {
		if f.isAck || f.To == broadcastAddr {
			r.releaseFrame(slot)
		}
	} else {
		r.releaseImport(-slot - 1)
	}
}

// arrive begins a reception at node id, handling receiver-side collisions:
// overlapping arrivals corrupt each other, and a transmitting node cannot
// receive.
func (r *Radio) arrive(id network.NodeID, f Frame, dur float64) {
	now := r.eng.Now()
	st := &r.grp.states[id]
	if st.txUntil > now {
		return // half-duplex: transmitting nodes miss the frame
	}
	if st.rxActive && st.rxUntil > now {
		// Overlap: the ongoing reception corrupts; this frame is lost too.
		if !st.rxCorrupted {
			st.rxCorrupted = true
			r.Stats.Collisions++
			if r.tr != nil {
				r.tr.Record(trace.Event{T: now, Kind: trace.KindCollision, Phase: phaseOfFrame(&st.rxFrame),
					Node: int32(id), Peer: int32(st.rxFrame.From), Seq: st.rxFrame.seq, Bytes: int32(st.rxFrame.Bytes), FrameKind: uint8(st.rxFrame.Kind)})
			}
		}
		r.Stats.Collisions++
		if r.tr != nil {
			r.tr.Record(trace.Event{T: now, Kind: trace.KindCollision, Phase: phaseOfFrame(&f),
				Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
		}
		// Extend the busy window to cover the interferer; finishRx at the
		// old deadline no-ops, so arm one at the new deadline.
		if now+dur > st.rxUntil {
			st.rxUntil = now + dur
			r.eng.ScheduleEventAt(st.rxUntil, Event{Kind: evFinishRx, Node: id})
		}
		return
	}
	st.rxActive = true
	st.rxUntil = now + dur
	st.rxCorrupted = false
	st.rxFrame = f
	r.eng.ScheduleEventAt(st.rxUntil, Event{Kind: evFinishRx, Node: id})
}

// markDelivered flags the sender's pending copy of a delivered data
// frame — directly when the sender shares this shard, through the
// barrier mailbox otherwise. See deliveredMark for why the mark always
// arrives before the sender could drop the frame.
func (r *Radio) markDelivered(f *Frame) {
	g := r.grp
	if g.shardOf == nil || g.shardOf[f.From] == r.shard {
		if p := &r.frames[f.slot]; p.seq == f.seq {
			p.delivered = true
		}
		return
	}
	d := int(g.shardOf[f.From])
	s := int(r.shard)
	g.marks[s*g.k+d] = append(g.marks[s*g.k+d], deliveredMark{seq: f.seq, slot: f.slot})
}

// seenAt returns id's dedup set, allocating it on first use.
func (r *Radio) seenAt(id network.NodeID) map[int64]bool {
	g := r.grp
	if g.seen[id] == nil {
		g.seen[id] = make(map[int64]bool)
	}
	return g.seen[id]
}

// finishRx completes a reception at id, delivering intact frames addressed
// to it and sending the ack.
func (r *Radio) finishRx(id network.NodeID) {
	st := &r.grp.states[id]
	if !st.rxActive || r.eng.Now() < st.rxUntil {
		return // superseded by an extended (corrupted) window
	}
	f := st.rxFrame
	corrupted := st.rxCorrupted
	st.rxActive = false
	st.rxCorrupted = false
	if r.trace != nil {
		r.trace(fmtRxEnd(f, corrupted, id))
	}
	if corrupted || (f.To != id && f.To != broadcastAddr) {
		return
	}
	if r.counters != nil {
		r.counters.ChargeRx(id, f.Bytes)
	}
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindRx, Phase: phaseOfFrame(&f),
			Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	if f.To == broadcastAddr {
		// Broadcast: deliver once per node, no ack.
		seen := r.seenAt(id)
		if seen[f.seq] {
			return
		}
		seen[f.seq] = true
		if r.tr != nil {
			r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDeliver, Phase: phaseOfFrame(&f),
				Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
		}
		if h := r.grp.handlers[id]; h != nil {
			h(id, f)
		}
		return
	}
	if f.isAck {
		if pending := &r.frames[f.ackForSlot]; pending.seq == f.ackFor {
			if r.tr != nil {
				r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindAck, Phase: phaseOfFrame(pending),
					Node: int32(id), Peer: int32(pending.To), Seq: pending.seq, Bytes: int32(pending.Bytes), FrameKind: uint8(pending.Kind)})
			}
			r.recycleFrame(f.ackForSlot) // still pending: acked now
		}
		return
	}
	// Ack the data frame (even duplicates, whose first ack was lost). The
	// ack waits in its arena slot until its send event transmits it. The
	// ack's ackForSlot echoes the data frame's slot in the sender's
	// arena, where the ack's own delivery resolves it.
	ackSlot := r.allocFrame()
	ack := Frame{From: id, To: f.From, Bytes: r.cfg.AckBytes, seq: r.nextSeq(id), slot: ackSlot, isAck: true, ackFor: f.seq, ackForSlot: f.slot}
	r.frames[ackSlot] = ack
	r.eng.ScheduleEvent(r.cfg.SlotTime, Event{Kind: evAckSend, Node: id, Seq: ack.seq, Arg: ackSlot})
	seen := r.seenAt(id)
	if seen[f.seq] {
		return // duplicate data frame
	}
	seen[f.seq] = true
	r.Stats.Delivered++
	r.markDelivered(&f)
	if r.tr != nil {
		r.tr.Record(trace.Event{T: r.eng.Now(), Kind: trace.KindDeliver, Phase: phaseOfFrame(&f),
			Node: int32(id), Peer: int32(f.From), Seq: f.seq, Bytes: int32(f.Bytes), FrameKind: uint8(f.Kind)})
	}
	if h := r.grp.handlers[id]; h != nil {
		h(id, f)
	}
}

// ackSend transmits a queued ack, retrying once briefly when the medium
// is busy; a lost ack only costs a duplicate retransmission.
func (r *Radio) ackSend(slot int32) {
	f := &r.frames[slot]
	if r.mediumBusy(f.From) {
		r.eng.ScheduleEvent(r.cfg.SlotTime*2, Event{Kind: evAckRetry, Node: f.From, Seq: f.seq, Arg: slot})
		return
	}
	r.transmit(slot)
}

// ackRetry is the single deferred ack retransmission.
func (r *Radio) ackRetry(slot int32) {
	r.transmit(slot)
}

func fmtFrame(kind string, f Frame) string {
	var b strings.Builder
	b.WriteString(kind)
	if f.isAck {
		b.WriteString(" ack seq=")
	} else {
		b.WriteString(" data seq=")
	}
	b.WriteString(strconv.Itoa(int(f.seq)))
	b.WriteByte(' ')
	b.WriteString(strconv.Itoa(int(f.From)))
	b.WriteString("->")
	b.WriteString(strconv.Itoa(int(f.To)))
	return b.String()
}

func fmtRxEnd(f Frame, corrupted bool, at network.NodeID) string {
	var b strings.Builder
	b.WriteString(fmtFrame("rxEnd", f))
	if corrupted {
		b.WriteString(" CORRUPT")
	}
	b.WriteString(" at ")
	b.WriteString(strconv.Itoa(int(at)))
	return b.String()
}
