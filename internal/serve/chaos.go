package serve

import (
	"math"
	"time"

	"isomap/internal/core"
)

// ChaosPlan is the serving layer's seeded fault schedule — the
// counterpart of internal/faults.Plan for the ingest path instead of the
// radio. Every decision is a pure splitmix64 hash of (Seed, deployment
// id, ingest attempt number, fault kind): no state advances, so the
// schedule is identical across processes, goroutine interleavings and
// replays, and a test can enumerate exactly which attempts will fire
// before driving them. A nil plan injects nothing; every method is
// nil-receiver-safe so the ingest path needs no branches.
//
// The injected kinds map one-to-one onto the failure domains the
// resilience layer must absorb: Panic (ingest panics mid-update →
// quarantine + resync), Diverge (synthetic oracle divergence, handled
// identically to a real one), SlowDelay (slow reconstruction rounds →
// supervisor pacing and query staleness), and Corrupt/CorruptReports
// (NaN-poisoned pushed batches → the HTTP validation layer must 400 them
// without touching the engine).
type ChaosPlan struct {
	cfg ChaosConfig
}

// ChaosConfig parameterizes NewChaosPlan. Rates are per ingest attempt,
// in [0, 1].
type ChaosConfig struct {
	// Seed drives the whole schedule.
	Seed int64
	// PanicRate is the probability an ingest attempt panics after the
	// engine update (the harshest point: the engine is already ahead).
	PanicRate float64
	// DivergeRate is the probability an attempt reports a synthetic
	// oracle divergence.
	DivergeRate float64
	// SlowRate is the probability an attempt sleeps SlowDelay first.
	SlowRate float64
	// SlowDelay is the injected reconstruction delay; zero selects 5ms.
	SlowDelay time.Duration
	// CorruptRate is the probability CorruptReports poisons a batch.
	CorruptRate float64
}

// NewChaosPlan validates rates into [0,1] by clamping and applies
// defaults.
func NewChaosPlan(cfg ChaosConfig) *ChaosPlan {
	clamp := func(v float64) float64 { return math.Min(1, math.Max(0, v)) }
	cfg.PanicRate = clamp(cfg.PanicRate)
	cfg.DivergeRate = clamp(cfg.DivergeRate)
	cfg.SlowRate = clamp(cfg.SlowRate)
	cfg.CorruptRate = clamp(cfg.CorruptRate)
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 5 * time.Millisecond
	}
	return &ChaosPlan{cfg: cfg}
}

// Chaos kind salts; distinct streams per fault kind.
const (
	chaosKindPanic uint64 = iota + 1
	chaosKindDiverge
	chaosKindSlow
	chaosKindCorrupt
)

// draw returns the deterministic uniform [0,1) draw of one (deployment,
// attempt, kind) cell.
func (p *ChaosPlan) draw(dep string, attempt int, kind uint64) float64 {
	salt := kind
	for _, c := range dep {
		salt = salt*131 + uint64(c)
	}
	salt = salt*1000003 + uint64(uint32(attempt))
	z := uint64(p.cfg.Seed) ^ salt ^ 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Panic reports whether the attempt is scheduled to panic mid-ingest.
func (p *ChaosPlan) Panic(dep string, attempt int) bool {
	return p != nil && p.cfg.PanicRate > 0 && p.draw(dep, attempt, chaosKindPanic) < p.cfg.PanicRate
}

// Diverge reports whether the attempt is scheduled to fail its oracle
// check synthetically.
func (p *ChaosPlan) Diverge(dep string, attempt int) bool {
	return p != nil && p.cfg.DivergeRate > 0 && p.draw(dep, attempt, chaosKindDiverge) < p.cfg.DivergeRate
}

// SlowDelay returns the injected reconstruction delay of the attempt
// (zero when none is scheduled).
func (p *ChaosPlan) SlowDelay(dep string, attempt int) time.Duration {
	if p == nil || p.cfg.SlowRate <= 0 || p.draw(dep, attempt, chaosKindSlow) >= p.cfg.SlowRate {
		return 0
	}
	return p.cfg.SlowDelay
}

// Corrupt reports whether the attempt's pushed batch is scheduled for
// corruption.
func (p *ChaosPlan) Corrupt(dep string, attempt int) bool {
	return p != nil && p.cfg.CorruptRate > 0 && p.draw(dep, attempt, chaosKindCorrupt) < p.cfg.CorruptRate
}

// CorruptReports returns a copy of reports poisoned the way a damaged
// pushed batch arrives: a deterministically chosen report gets NaN
// coordinates and another an infinite gradient. It never mutates its
// input; callers (the chaos soak, the smoke harness) POST the result and
// assert the validation layer rejects it with 400 leaving the engine
// untouched.
func (p *ChaosPlan) CorruptReports(reports []core.Report, dep string, attempt int) []core.Report {
	out := append([]core.Report(nil), reports...)
	if len(out) == 0 {
		return out
	}
	i := int(p.draw(dep, attempt, chaosKindCorrupt+100)*float64(len(out))) % len(out)
	out[i].Pos.X = math.NaN()
	j := int(p.draw(dep, attempt, chaosKindCorrupt+200)*float64(len(out))) % len(out)
	out[j].Grad.Y = math.Inf(1)
	return out
}
