// Package serve implements the long-lived contour-map server behind
// cmd/isomapd: N concurrent deployments, each fed rounds by a
// sim.RoundSource (or by pushed report batches) and reconstructed
// incrementally by contour.Incremental, serving level-set polylines,
// point/range classification and raster tiles over HTTP from versioned
// snapshots.
//
// Consistency model: every Update produces an immutable snapshot carrying
// a strong ETag "<id>-v<version>". Query responses set the ETag and
// honor If-None-Match with 304s, so pollers pay nothing while a
// deployment is quiet. Snapshots swap atomically; in-flight queries keep
// serving the map they started with. In oracle mode the server verifies
// each incremental update byte-for-byte against a from-scratch rebuild
// before publishing it, failing the ingest request on divergence — the
// serving twin of the engine's property tests.
package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/sim"
)

// vars aggregates server counters across all deployments under the
// process expvar page (shared with the PR 5 round instrumentation).
// Published once: tests boot many servers in one process.
var (
	varsOnce sync.Once
	vars     *expvar.Map
)

func serveVars() *expvar.Map {
	varsOnce.Do(func() { vars = expvar.NewMap("isomapd") })
	return vars
}

// Config parameterizes NewServer.
type Config struct {
	// Deployments is the number of concurrent deployments to own.
	Deployments int
	// Nodes and Seed shape each deployment's scenario; deployment i uses
	// Seed+i so deployments differ but replays reproduce.
	Nodes int
	Seed  int64
	// FaultEvery, when positive, injects faults every FaultEvery-th round
	// of each deployment (see sim.RoundSource).
	FaultEvery int
	// Oracle verifies every incremental update against a full rebuild
	// before publishing (expensive; for tests, smoke and CI).
	Oracle bool
	// OracleRes is the raster resolution of oracle comparisons; zero
	// selects 64.
	OracleRes int
}

// snapshot is one published reconstruction; immutable once stored.
type snapshot struct {
	version   int
	round     int
	etag      string
	m         *contour.Map
	sinkValue float64
	reports   int
	faulted   bool
}

// deployment is one monitored network: a round source feeding an
// incremental engine. mu serializes ingest and raster access (the engine
// is single-writer); published snapshots are read lock-free.
type deployment struct {
	id     string
	levels field.Levels
	bounds geom.Polygon
	src    *sim.RoundSource
	inc    *contour.Incremental

	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
}

// Server owns the deployments and implements http.Handler.
type Server struct {
	cfg  Config
	deps map[string]*deployment
	ids  []string
	mux  *http.ServeMux
}

// NewServer builds the deployments and their HTTP surface. Building
// materializes each deployment's network (a few hundred ms for large
// node counts) but runs no round: deployments start at version 0 with no
// snapshot, and return 503 for map queries until the first round lands.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Deployments <= 0 {
		cfg.Deployments = 1
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 600
	}
	if cfg.OracleRes <= 0 {
		cfg.OracleRes = 64
	}
	s := &Server{cfg: cfg, deps: make(map[string]*deployment)}
	runner := sim.NewRunner(1)
	for i := 0; i < cfg.Deployments; i++ {
		sc := sim.Scenario{Nodes: cfg.Nodes, Seed: cfg.Seed + int64(i)}
		env, err := runner.Build(sc)
		if err != nil {
			return nil, fmt.Errorf("serve: deployment %d: %w", i, err)
		}
		id := fmt.Sprintf("d%d", i)
		bounds := field.BoundsRect(env.Field)
		d := &deployment{
			id:     id,
			levels: env.Scenario.Levels,
			bounds: bounds,
			src:    &sim.RoundSource{Env: env, FaultEvery: cfg.FaultEvery},
			inc:    contour.NewIncremental(env.Scenario.Levels, bounds, contour.DefaultOptions()),
		}
		s.deps[id] = d
		s.ids = append(s.ids, id)
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "deployments": len(s.ids)})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /v1/deployments", s.handleList)
	mux.HandleFunc("GET /v1/deployments/{id}", s.withDep(s.handleMeta))
	mux.HandleFunc("POST /v1/deployments/{id}/rounds", s.withDep(s.handleRound))
	mux.HandleFunc("GET /v1/deployments/{id}/levels/{idx}/polyline", s.withDep(s.handlePolyline))
	mux.HandleFunc("GET /v1/deployments/{id}/classify", s.withDep(s.handleClassify))
	mux.HandleFunc("GET /v1/deployments/{id}/range", s.withDep(s.handleRange))
	mux.HandleFunc("GET /v1/deployments/{id}/raster", s.withDep(s.handleRaster))
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// AdvanceAll runs one churn round on every deployment (startup warming
// and the smoke harness).
func (s *Server) AdvanceAll() error {
	for _, id := range s.ids {
		if _, err := s.advance(s.deps[id]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) withDep(h func(http.ResponseWriter, *http.Request, *deployment)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d, ok := s.deps[r.PathValue("id")]
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown deployment %q", r.PathValue("id"))
			return
		}
		h(w, r, d)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID      string `json:"id"`
		Version int    `json:"version"`
		Round   int    `json:"round"`
		ETag    string `json:"etag,omitempty"`
	}
	out := make([]item, 0, len(s.ids))
	for _, id := range s.ids {
		d := s.deps[id]
		it := item{ID: id}
		if sn := d.snap.Load(); sn != nil {
			it.Version, it.Round, it.ETag = sn.version, sn.round, sn.etag
		}
		out = append(out, it)
	}
	writeJSON(w, http.StatusOK, map[string]any{"deployments": out})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request, d *deployment) {
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	st := func() contour.IncrementalStats {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.inc.Stats()
	}()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        d.id,
		"version":   sn.version,
		"round":     sn.round,
		"etag":      sn.etag,
		"reports":   sn.reports,
		"sinkValue": sn.sinkValue,
		"faulted":   sn.faulted,
		"levels":    d.levels.Values(),
		"stats":     st,
	})
}

// ingestBody is the optional POST /rounds payload: pushed reports instead
// of an internally simulated round.
type ingestBody struct {
	Reports   []core.Report `json:"reports"`
	SinkValue float64       `json:"sinkValue"`
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request, d *deployment) {
	var body ingestBody
	pushed := false
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, "bad round body: %v", err)
			return
		}
		pushed = true
	}
	var (
		sn  *snapshot
		err error
	)
	if pushed {
		sn, err = s.ingest(d, body.Reports, body.SinkValue, 0, false)
	} else {
		sn, err = s.advance(d)
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "round failed: %v", err)
		return
	}
	serveVars().Add("rounds", 1)
	w.Header().Set("ETag", sn.etag)
	writeJSON(w, http.StatusOK, map[string]any{
		"version": sn.version, "round": sn.round, "etag": sn.etag,
		"reports": sn.reports, "faulted": sn.faulted,
	})
}

// advance runs one simulated churn round through the deployment.
func (s *Server) advance(d *deployment) (*snapshot, error) {
	d.mu.Lock()
	rd, err := d.src.Next()
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.ingest(d, rd.Reports, rd.SinkValue, rd.Round, rd.Faulted)
}

// ingest feeds one round of reports into the incremental engine and
// publishes the resulting snapshot (after the oracle check, if enabled).
func (s *Server) ingest(d *deployment, reports []core.Report, sinkValue float64, round int, faulted bool) (*snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.inc.Update(reports, sinkValue)
	if s.cfg.Oracle {
		full := contour.Reconstruct(d.inc.Arranged(), d.levels, d.bounds, sinkValue, contour.DefaultOptions())
		if err := contour.Equivalent(m, full, s.cfg.OracleRes, s.cfg.OracleRes); err != nil {
			return nil, fmt.Errorf("oracle divergence at version %d: %w", d.inc.Version(), err)
		}
		if err := contour.EquivalentRaster(d.inc.Raster(s.cfg.OracleRes, s.cfg.OracleRes),
			full.RasterWorkers(s.cfg.OracleRes, s.cfg.OracleRes, 1)); err != nil {
			return nil, fmt.Errorf("oracle raster divergence at version %d: %w", d.inc.Version(), err)
		}
	}
	if round == 0 {
		round = d.inc.Version()
	}
	sn := &snapshot{
		version:   d.inc.Version(),
		round:     round,
		etag:      fmt.Sprintf("%q", fmt.Sprintf("%s-v%d", d.id, d.inc.Version())),
		m:         m,
		sinkValue: sinkValue,
		reports:   len(reports),
		faulted:   faulted,
	}
	d.snap.Store(sn)
	serveVars().Add("updates", 1)
	return sn, nil
}

// current loads the deployment's snapshot, answering 503 before the first
// round and 304 when the client's If-None-Match already names it. The
// bool reports whether the caller should proceed to build a body.
func current(w http.ResponseWriter, r *http.Request, d *deployment) (*snapshot, bool) {
	sn := d.snap.Load()
	if sn == nil {
		writeErr(w, http.StatusServiceUnavailable, "deployment %s has no rounds yet", d.id)
		return nil, false
	}
	w.Header().Set("ETag", sn.etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if inm == "*" || strings.Contains(inm, sn.etag) {
			serveVars().Add("not_modified", 1)
			w.WriteHeader(http.StatusNotModified)
			return nil, false
		}
	}
	serveVars().Add("queries", 1)
	return sn, true
}

func (s *Server) handlePolyline(w http.ResponseWriter, r *http.Request, d *deployment) {
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || idx < 0 || idx >= d.levels.Count() {
		writeErr(w, http.StatusBadRequest, "level index %q outside [0,%d)", r.PathValue("idx"), d.levels.Count())
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	segs := sn.m.BoundarySegments(idx)
	out := make([][4]float64, 0, len(segs))
	for _, sg := range segs {
		out = append(out, [4]float64{sg.A.X, sg.A.Y, sg.B.X, sg.B.Y})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": sn.version, "level": d.levels.Values()[idx], "segments": out,
	})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, d *deployment) {
	x, errX := strconv.ParseFloat(r.URL.Query().Get("x"), 64)
	y, errY := strconv.ParseFloat(r.URL.Query().Get("y"), 64)
	if errX != nil || errY != nil {
		writeErr(w, http.StatusBadRequest, "classify needs float x and y")
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": sn.version, "x": x, "y": y,
		"class": sn.m.ClassifyPoint(geom.Point{X: x, Y: y}),
	})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request, d *deployment) {
	q := r.URL.Query()
	parse := func(key string) (float64, error) { return strconv.ParseFloat(q.Get(key), 64) }
	x0, e1 := parse("x0")
	y0, e2 := parse("y0")
	x1, e3 := parse("x1")
	y1, e4 := parse("y1")
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil || x1 < x0 || y1 < y0 {
		writeErr(w, http.StatusBadRequest, "range needs x0<=x1, y0<=y1 floats")
		return
	}
	rows, cols := intOr(q.Get("rows"), 8), intOr(q.Get("cols"), 8)
	if rows < 1 || cols < 1 || rows*cols > 1<<20 {
		writeErr(w, http.StatusBadRequest, "range grid must be 1..1M cells")
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	// Classes of the range's rows x cols cell centers, row-major — the
	// same center convention as the full raster.
	cells := make([][]int, rows)
	for i := 0; i < rows; i++ {
		cells[i] = make([]int, cols)
		y := y0 + (y1-y0)*(float64(i)+0.5)/float64(rows)
		for j := 0; j < cols; j++ {
			x := x0 + (x1-x0)*(float64(j)+0.5)/float64(cols)
			cells[i][j] = sn.m.ClassifyPoint(geom.Point{X: x, Y: y})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": sn.version, "cells": cells})
}

func (s *Server) handleRaster(w http.ResponseWriter, r *http.Request, d *deployment) {
	q := r.URL.Query()
	rows, cols := intOr(q.Get("rows"), 100), intOr(q.Get("cols"), 100)
	if rows < 1 || cols < 1 || rows*cols > 1<<22 {
		writeErr(w, http.StatusBadRequest, "raster must be 1..4M cells")
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "pgm" {
		writeErr(w, http.StatusBadRequest, "format must be json or pgm")
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	// The engine's raster cache makes repeat resolutions cheap; the lock
	// serializes it against ingest.
	d.mu.Lock()
	ra := d.inc.Raster(rows, cols)
	stale := d.inc.Map() != sn.m
	d.mu.Unlock()
	if stale {
		// An ingest swapped the snapshot between our ETag check and the
		// raster read; the client retries against the new version.
		writeErr(w, http.StatusConflict, "snapshot superseded during render; retry")
		return
	}
	if format == "pgm" {
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		writePGM(w, ra, d.levels.Count())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": sn.version, "rows": rows, "cols": cols, "cells": ra.Cells})
}

// writePGM renders the class raster as a plain-text PGM tile, darkest at
// the innermost class.
func writePGM(w http.ResponseWriter, ra *field.Raster, classes int) {
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", ra.Cols, ra.Rows)
	if classes < 1 {
		classes = 1
	}
	for _, row := range ra.Cells {
		for j, c := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			g := 255 - (255*c)/classes
			if g < 0 {
				g = 0
			}
			fmt.Fprintf(&b, "%d", g)
		}
		b.WriteByte('\n')
	}
	_, _ = w.Write([]byte(b.String()))
}

func intOr(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}
