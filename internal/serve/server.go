// Package serve implements the long-lived contour-map server behind
// cmd/isomapd: N concurrent deployments, each fed rounds by a
// sim.RoundSource (or by pushed report batches) and reconstructed
// incrementally by contour.Incremental, serving level-set polylines,
// point/range classification and raster tiles over HTTP from versioned
// snapshots.
//
// Consistency model: every successful ingest produces an immutable
// snapshot carrying a strong ETag "<id>-v<version>". Query responses set
// the ETag and honor If-None-Match (RFC 9110 weak comparison over the
// full entity-tag list) with 304s, so pollers pay nothing while a
// deployment is quiet. Snapshots swap atomically; in-flight queries keep
// serving the map they started with. In oracle mode the server verifies
// each incremental update byte-for-byte against a from-scratch rebuild
// before publishing it — the serving twin of the engine's property tests.
//
// Failure model: every failure mode of the ingest path is a recoverable,
// observable state, never silent corruption. A panic or oracle divergence
// quarantines the deployment's incremental engine (the published snapshot
// is untouched — nothing unverified is ever served) and the deployment
// enters degraded mode: queries keep answering from the last good
// snapshot with staleness metadata (Warning header, X-Stale-Rounds,
// state in the meta document) until the next round resyncs a fresh engine
// via a full rebuild (contour.Resync). A Supervisor (supervisor.go)
// drives rounds in the background with bounded exponential backoff and a
// crash-loop breaker surfaced through /readyz; checkpoints
// (checkpoint.go) make the whole state survive a process restart
// byte-identically. chaos.go injects seeded faults into exactly these
// paths to prove recovery.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/sim"
)

// vars aggregates server counters across all deployments under the
// process expvar page (shared with the PR 5 round instrumentation).
// Published once: tests boot many servers in one process.
var (
	varsOnce sync.Once
	vars     *expvar.Map
)

func serveVars() *expvar.Map {
	varsOnce.Do(func() { vars = expvar.NewMap("isomapd") })
	return vars
}

// Config parameterizes NewServer.
type Config struct {
	// Deployments is the number of concurrent deployments to own.
	Deployments int
	// Nodes and Seed shape each deployment's scenario; deployment i uses
	// Seed+i so deployments differ but replays reproduce.
	Nodes int
	Seed  int64
	// FaultEvery, when positive, injects faults every FaultEvery-th round
	// of each deployment (see sim.RoundSource).
	FaultEvery int
	// TemporalField selects the evolving field the deployments monitor
	// (a field.TemporalKinds name, seeded per deployment); empty keeps the
	// default silting field. FieldSpeed scales its evolution rate (zero
	// selects 1).
	TemporalField string
	FieldSpeed    float64
	// Delta runs every round on the packet engine's delta-report protocol
	// (sim.RoundSource.Delta): ingests carry the sink's aged merged
	// belief instead of per-round full reports. DeltaExpiry bounds belief
	// staleness in rounds (0 disables aging).
	Delta       bool
	DeltaExpiry int
	// Oracle verifies every incremental update against a full rebuild
	// before publishing (expensive; for tests, smoke and CI).
	Oracle bool
	// OracleRes is the raster resolution of oracle comparisons; zero
	// selects 64.
	OracleRes int

	// CheckpointDir, when set, persists a per-deployment checkpoint
	// (round counter, published version, arranged reports) there, and
	// NewServer restores deployments from any checkpoint it finds — a
	// restarted server resumes serving byte-identical snapshots instead
	// of losing every deployment back to round 0.
	CheckpointDir string
	// CheckpointEvery checkpoints every Nth published version; zero
	// selects 1 (every publish).
	CheckpointEvery int

	// Shards, when above 1, runs each deployment's faulted simulated
	// rounds on the sharded discrete-event engine (desim.ShardedEngine
	// over a grid partition, via sim.RoundSource.Shards) — the report
	// stream is byte-identical at any shard count; sharding is purely an
	// execution strategy for large served deployments.
	Shards int
	// Workers bounds the ingest path's worker pools: the sharded round
	// engine (sim.RoundSource.Workers) and the parallel incremental
	// reconstruction (contour.Options.Workers — level builds, horizon
	// checks, dirty-row raster refresh). Zero selects GOMAXPROCS.
	Workers int

	// MaxBodyBytes caps POST /rounds request bodies; zero selects 8 MiB.
	MaxBodyBytes int64
	// RasterInflight bounds concurrent raster renders; excess requests
	// are load-shed with 429 + Retry-After. Zero selects 4.
	RasterInflight int
	// CacheEntries bounds each deployment's response artifact cache (the
	// version-keyed LRU over encoded polyline/classify/range/raster
	// bodies; see cache.go). Zero selects 64.
	CacheEntries int

	// Chaos, when set, injects seeded faults (panics, synthetic
	// divergences, slow rounds) into the ingest path — the serving-layer
	// counterpart of a faults.Plan. Swappable at runtime via SetChaos.
	Chaos *ChaosPlan

	// Logf receives supervisor and checkpoint diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// temporalID canonicalizes the config knobs that change the round
// stream's content beyond (seed, nodes, faultEvery) — the evolving field
// and the reporting protocol — into one checkpoint identity string.
// Empty for the legacy configuration, so pre-temporal checkpoints keep
// restoring.
func (c Config) temporalID() string {
	if c.TemporalField == "" && !c.Delta {
		return ""
	}
	f := c.TemporalField
	if f == "" {
		f = "silting"
	}
	speed := c.FieldSpeed
	if speed <= 0 {
		speed = 1
	}
	mode := "full"
	if c.Delta {
		mode = fmt.Sprintf("delta/exp=%d", c.DeltaExpiry)
	}
	return fmt.Sprintf("%s@%s/%s", f, strconv.FormatFloat(speed, 'g', -1, 64), mode)
}

// snapshot is one published reconstruction; immutable once stored.
type snapshot struct {
	version   int
	round     int
	etag      string
	m         *contour.Map
	sinkValue float64
	reports   int
	faulted   bool
}

// depHealth is a deployment's observable failure state; stored behind an
// atomic pointer (written only under the deployment lock) so the query
// path reads it lock-free.
type depHealth struct {
	// Degraded marks a quarantined engine: the deployment serves its
	// last good snapshot until a round resyncs.
	Degraded bool
	// StaleRounds counts failed round attempts since the last publish —
	// how many rounds behind the served snapshot is.
	StaleRounds int
	// ConsecFails counts consecutive ingest failures (the supervisor's
	// backoff and breaker input).
	ConsecFails int
	// CrashLooping is set by the supervisor's breaker once ConsecFails
	// crosses its threshold; /readyz reports the deployment not ready.
	CrashLooping bool
	// LastErr is the most recent failure, empty when healthy.
	LastErr string
}

func (h depHealth) state() string {
	if h.Degraded {
		return "degraded"
	}
	return "healthy"
}

// deployment is one monitored network: a round source feeding an
// incremental engine. mu serializes ingest and engine access (the engine
// is single-writer); published snapshots and health are read lock-free.
type deployment struct {
	id     string
	levels field.Levels
	bounds geom.Polygon
	opts   contour.Options
	src    *sim.RoundSource

	mu sync.Mutex
	// inc is the incremental engine; nil while quarantined (after a
	// panic or divergence), until the next successful round resyncs it.
	inc *contour.Incremental
	// version counts published snapshots. It is deliberately decoupled
	// from inc.Version(): quarantine/resync discards engines, and a
	// checkpoint restore rebuilds one, without ever rewinding the ETag
	// sequence.
	version int
	// attempts counts ingest attempts (including failed ones) — the
	// deterministic key of the chaos schedule.
	attempts int

	snap   atomic.Pointer[snapshot]
	health atomic.Pointer[depHealth]

	// cache holds this deployment's encoded response bodies, keyed by
	// snapshot version (cache.go). Always non-nil.
	cache *artifactCache
}

// Server owns the deployments and implements http.Handler.
type Server struct {
	cfg       Config
	deps      map[string]*deployment
	ids       []string
	mux       *http.ServeMux
	rasterSem chan struct{}
	chaos     atomic.Pointer[ChaosPlan]
	sup       *supervisor
}

// NewServer builds the deployments and their HTTP surface. Building
// materializes each deployment's network (a few hundred ms for large
// node counts) but runs no round: deployments start at version 0 with no
// snapshot, and return 503 for map queries until the first round lands —
// unless Config.CheckpointDir holds a checkpoint for them, in which case
// they resume serving the checkpointed snapshot immediately.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Deployments <= 0 {
		cfg.Deployments = 1
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 600
	}
	if cfg.OracleRes <= 0 {
		cfg.OracleRes = 64
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RasterInflight <= 0 {
		cfg.RasterInflight = 4
	}
	s := &Server{
		cfg:       cfg,
		deps:      make(map[string]*deployment),
		rasterSem: make(chan struct{}, cfg.RasterInflight),
	}
	s.chaos.Store(cfg.Chaos)
	// Surface the resolved ingest parallelism as a gauge next to the
	// counters; 0 means "GOMAXPROCS at run time".
	iw := cfg.Workers
	if iw < 1 {
		iw = runtime.GOMAXPROCS(0)
	}
	g := new(expvar.Int)
	g.Set(int64(iw))
	serveVars().Set("parallel_ingest_workers", g)
	runner := sim.NewRunner(1)
	for i := 0; i < cfg.Deployments; i++ {
		sc := sim.Scenario{Nodes: cfg.Nodes, Seed: cfg.Seed + int64(i)}
		env, err := runner.Build(sc)
		if err != nil {
			return nil, fmt.Errorf("serve: deployment %d: %w", i, err)
		}
		id := fmt.Sprintf("d%d", i)
		bounds := field.BoundsRect(env.Field)
		opts := contour.DefaultOptions()
		opts.Workers = cfg.Workers
		src := &sim.RoundSource{Env: env, FaultEvery: cfg.FaultEvery,
			Shards: cfg.Shards, Workers: cfg.Workers,
			Delta: cfg.Delta, DeltaExpiry: cfg.DeltaExpiry}
		if cfg.TemporalField != "" {
			dyn, err := field.NewTemporal(cfg.TemporalField, env.Field, cfg.FieldSpeed, sc.Seed)
			if err != nil {
				return nil, fmt.Errorf("serve: deployment %d: %w", i, err)
			}
			src.Dyn = dyn
		}
		d := &deployment{
			id:     id,
			levels: env.Scenario.Levels,
			bounds: bounds,
			opts:   opts,
			src:    src,
			inc:    contour.NewIncremental(env.Scenario.Levels, bounds, opts),
			cache:  newArtifactCache(cfg.CacheEntries),
		}
		d.health.Store(&depHealth{})
		if cfg.CheckpointDir != "" {
			if err := s.restore(d); err != nil {
				return nil, fmt.Errorf("serve: restore %s: %w", id, err)
			}
		}
		s.deps[id] = d
		s.ids = append(s.ids, id)
	}
	s.routes()
	return s, nil
}

// SetChaos swaps the chaos plan (nil disables injection); safe while
// serving.
func (s *Server) SetChaos(p *ChaosPlan) { s.chaos.Store(p) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "deployments": len(s.ids)})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /v1/deployments", s.handleList)
	mux.HandleFunc("GET /v1/deployments/{id}", s.withDep(s.handleMeta))
	mux.HandleFunc("POST /v1/deployments/{id}/rounds", s.withDep(s.handleRound))
	mux.HandleFunc("GET /v1/deployments/{id}/levels/{idx}/polyline", s.withDep(s.handlePolyline))
	mux.HandleFunc("GET /v1/deployments/{id}/classify", s.withDep(s.handleClassify))
	mux.HandleFunc("GET /v1/deployments/{id}/range", s.withDep(s.handleRange))
	mux.HandleFunc("GET /v1/deployments/{id}/raster", s.withDep(s.handleRaster))
	s.mux = mux
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleReady is the readiness probe, split from /healthz liveness: the
// server is ready when every deployment has published a snapshot and
// none is crash-looping. Degraded-but-serving deployments are ready —
// stale answers with staleness metadata beat no answers.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	type blocker struct {
		ID     string `json:"id"`
		Reason string `json:"reason"`
	}
	var blockers []blocker
	for _, id := range s.ids {
		d := s.deps[id]
		if d.snap.Load() == nil {
			blockers = append(blockers, blocker{ID: id, Reason: "no snapshot yet"})
			continue
		}
		if h := d.health.Load(); h.CrashLooping {
			blockers = append(blockers, blocker{ID: id, Reason: "crash-looping: " + h.LastErr})
		}
	}
	if len(blockers) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "blockers": blockers})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "deployments": len(s.ids)})
}

// AdvanceAll runs one churn round on every deployment (startup warming
// and the smoke harness; continuous driving belongs to the Supervisor).
func (s *Server) AdvanceAll() error {
	for _, id := range s.ids {
		if _, err := s.advance(s.deps[id]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) withDep(h func(http.ResponseWriter, *http.Request, *deployment)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d, ok := s.deps[r.PathValue("id")]
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown deployment %q", r.PathValue("id"))
			return
		}
		h(w, r, d)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type item struct {
		ID      string `json:"id"`
		Version int    `json:"version"`
		Round   int    `json:"round"`
		ETag    string `json:"etag,omitempty"`
		State   string `json:"state"`
	}
	out := make([]item, 0, len(s.ids))
	for _, id := range s.ids {
		d := s.deps[id]
		it := item{ID: id, State: d.health.Load().state()}
		if sn := d.snap.Load(); sn != nil {
			it.Version, it.Round, it.ETag = sn.version, sn.round, sn.etag
		}
		out = append(out, it)
	}
	writeJSON(w, http.StatusOK, map[string]any{"deployments": out})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request, d *deployment) {
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	var st *contour.IncrementalStats
	d.mu.Lock()
	if d.inc != nil {
		v := d.inc.Stats()
		st = &v
	}
	d.mu.Unlock()
	h := d.health.Load()
	doc := map[string]any{
		"id":          d.id,
		"version":     sn.version,
		"round":       sn.round,
		"etag":        sn.etag,
		"reports":     sn.reports,
		"sinkValue":   sn.sinkValue,
		"faulted":     sn.faulted,
		"levels":      d.levels.Values(),
		"state":       h.state(),
		"staleRounds": h.StaleRounds,
		"consecFails": h.ConsecFails,
	}
	if h.CrashLooping {
		doc["crashLooping"] = true
	}
	if h.LastErr != "" {
		doc["lastError"] = h.LastErr
	}
	if st != nil {
		doc["stats"] = *st
	}
	writeJSON(w, http.StatusOK, doc)
}

// ingestBody is the optional POST /rounds payload: pushed reports instead
// of an internally simulated round.
type ingestBody struct {
	Reports   []core.Report `json:"reports"`
	SinkValue float64       `json:"sinkValue"`
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// validateRound rejects pushed batches that would poison the engine:
// NaN/Inf coordinates, gradients, levels or sink values (the serving twin
// of FuzzGridFieldParse's loader hardening). Out-of-range level indices
// are not an error — the engine drops them, matching Reconstruct.
func validateRound(reports []core.Report, sinkValue float64) error {
	if !isFinite(sinkValue) {
		return fmt.Errorf("sinkValue %v is not finite", sinkValue)
	}
	for i, r := range reports {
		switch {
		case !isFinite(r.Pos.X) || !isFinite(r.Pos.Y):
			return fmt.Errorf("report %d: non-finite position (%v, %v)", i, r.Pos.X, r.Pos.Y)
		case !isFinite(r.Grad.X) || !isFinite(r.Grad.Y):
			return fmt.Errorf("report %d: non-finite gradient (%v, %v)", i, r.Grad.X, r.Grad.Y)
		case !isFinite(r.Level):
			return fmt.Errorf("report %d: non-finite level %v", i, r.Level)
		}
	}
	return nil
}

// handleRound distinguishes client errors (malformed/poisonous payloads:
// 400, oversized: 413) from server-side ingest failures (503 — the
// deployment quarantined and will resync; the last good snapshot keeps
// serving).
func (s *Server) handleRound(w http.ResponseWriter, r *http.Request, d *deployment) {
	var body ingestBody
	pushed := false
	if r.Body != nil && r.ContentLength != 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeErr(w, http.StatusRequestEntityTooLarge, "round body exceeds %d bytes", mbe.Limit)
				return
			}
			writeErr(w, http.StatusBadRequest, "bad round body: %v", err)
			return
		}
		if err := validateRound(body.Reports, body.SinkValue); err != nil {
			serveVars().Add("rejected_rounds", 1)
			writeErr(w, http.StatusBadRequest, "invalid round: %v", err)
			return
		}
		pushed = true
	}
	var (
		sn  *snapshot
		err error
	)
	if pushed {
		sn, err = s.ingest(d, body.Reports, body.SinkValue, 0, false)
	} else {
		sn, err = s.advance(d)
	}
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "round failed: %v", err)
		return
	}
	serveVars().Add("rounds", 1)
	w.Header().Set("ETag", sn.etag)
	writeJSON(w, http.StatusOK, map[string]any{
		"version": sn.version, "round": sn.round, "etag": sn.etag,
		"reports": sn.reports, "faulted": sn.faulted,
	})
}

// advance runs one simulated churn round through the deployment.
func (s *Server) advance(d *deployment) (*snapshot, error) {
	rd, err := s.nextRound(d)
	if err != nil {
		d.mu.Lock()
		d.noteFailure(err)
		d.mu.Unlock()
		serveVars().Add("ingest_failures", 1)
		return nil, err
	}
	return s.ingest(d, rd.Reports, rd.SinkValue, rd.Round, rd.Faulted)
}

// nextRound draws the next simulated round, converting a round-source
// panic into an error: the engine is untouched, so the failure costs one
// stale round, not a quarantine.
func (s *Server) nextRound(d *deployment) (rd *sim.RoundData, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			serveVars().Add("panics_recovered", 1)
			err = fmt.Errorf("serve: %s round source panic: %v", d.id, r)
		}
	}()
	return d.src.Next()
}

// ingest feeds one round of reports into the incremental engine and
// publishes the resulting snapshot — strictly in that order: the oracle
// check (and any panic) happens before the publish, and a failed check
// quarantines the engine rather than leaving it silently ahead of the
// snapshot. A quarantined deployment resyncs here on its next round via
// a full rebuild.
func (s *Server) ingest(d *deployment, reports []core.Report, sinkValue float64, round int, faulted bool) (*snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.attempts++
	m, resynced, err := s.rebuild(d, reports, sinkValue, d.attempts)
	if err != nil {
		d.noteFailure(err)
		serveVars().Add("ingest_failures", 1)
		return nil, err
	}
	d.version++
	if round == 0 {
		round = d.version
	}
	sn := &snapshot{
		version:   d.version,
		round:     round,
		etag:      fmt.Sprintf("%q", fmt.Sprintf("%s-v%d", d.id, d.version)),
		m:         m,
		sinkValue: sinkValue,
		reports:   len(reports),
		faulted:   faulted,
	}
	d.snap.Store(sn)
	// Publish-time invalidation: drop cached bodies of every superseded
	// version. Quarantine publishes nothing, so a degraded deployment
	// keeps serving the last good version's cached bytes; the resync that
	// ends it lands here and purges them.
	d.cache.invalidate(sn.version)
	d.noteSuccess()
	serveVars().Add("updates", 1)
	if resynced {
		serveVars().Add("resyncs", 1)
	}
	if s.cfg.CheckpointDir != "" && d.version%s.cfg.CheckpointEvery == 0 {
		// Checkpoint failures must not fail the round: serving degrades
		// to restart-from-zero durability, observably.
		if err := s.writeCheckpoint(d, sn); err != nil {
			serveVars().Add("checkpoint_errors", 1)
			s.logf("serve: %s checkpoint: %v", d.id, err)
		} else {
			serveVars().Add("checkpoints", 1)
		}
	}
	return sn, nil
}

// rebuild runs the engine update under panic recovery and the oracle
// check, quarantining the engine on any failure (its state can be ahead
// of the published snapshot, so it cannot be trusted). On a quarantined
// deployment it performs the resync instead: a fresh engine built by
// full rebuild (contour.Resync).
func (s *Server) rebuild(d *deployment, reports []core.Report, sinkValue float64, attempt int) (m *contour.Map, resynced bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			serveVars().Add("panics_recovered", 1)
			d.inc = nil
			m, resynced = nil, false
			err = fmt.Errorf("serve: %s ingest panic (engine quarantined): %v", d.id, r)
		}
	}()
	chaos := s.chaos.Load()
	if delay := chaos.SlowDelay(d.id, attempt); delay > 0 {
		time.Sleep(delay)
	}
	if d.inc == nil {
		d.inc, m = contour.Resync(d.levels, d.bounds, d.opts, reports, sinkValue)
		resynced = true
	} else {
		m = d.inc.Update(reports, sinkValue)
	}
	if chaos.Panic(d.id, attempt) {
		panic("chaos: scheduled ingest panic")
	}
	var derr error
	if chaos.Diverge(d.id, attempt) {
		derr = errors.New("chaos: synthetic oracle divergence")
	} else if s.cfg.Oracle {
		full := contour.Reconstruct(d.inc.Arranged(), d.levels, d.bounds, sinkValue, d.opts)
		if e := contour.Equivalent(m, full, s.cfg.OracleRes, s.cfg.OracleRes); e != nil {
			derr = e
		} else if e := contour.EquivalentRaster(d.inc.Raster(s.cfg.OracleRes, s.cfg.OracleRes),
			full.RasterWorkers(s.cfg.OracleRes, s.cfg.OracleRes, 1)); e != nil {
			derr = e
		}
	}
	if derr != nil {
		d.inc = nil
		serveVars().Add("divergences", 1)
		return nil, false, fmt.Errorf("serve: %s oracle divergence (engine quarantined): %w", d.id, derr)
	}
	return m, resynced, nil
}

// noteFailure and noteSuccess update the lock-free health document; both
// must be called with d.mu held.
func (d *deployment) noteFailure(err error) {
	h := *d.health.Load()
	h.Degraded = d.inc == nil
	h.StaleRounds++
	h.ConsecFails++
	h.LastErr = err.Error()
	d.health.Store(&h)
}

func (d *deployment) noteSuccess() {
	d.health.Store(&depHealth{})
}

// current loads the deployment's snapshot, answering 503 before the first
// round and 304 when the client's If-None-Match names it. Degraded or
// stale deployments keep serving their last good snapshot, flagged by a
// Warning header and X-Stale-Rounds. The bool reports whether the caller
// should proceed to build a body.
func current(w http.ResponseWriter, r *http.Request, d *deployment) (*snapshot, bool) {
	sn := d.snap.Load()
	if sn == nil {
		writeErr(w, http.StatusServiceUnavailable, "deployment %s has no rounds yet", d.id)
		return nil, false
	}
	if h := d.health.Load(); h.StaleRounds > 0 {
		w.Header().Set("Warning", fmt.Sprintf("110 isomapd %q",
			fmt.Sprintf("stale: %s %d round(s) behind (%s)", d.id, h.StaleRounds, h.state())))
		w.Header().Set("X-Stale-Rounds", strconv.Itoa(h.StaleRounds))
	}
	w.Header().Set("ETag", sn.etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, sn.etag) {
		serveVars().Add("not_modified", 1)
		w.WriteHeader(http.StatusNotModified)
		return nil, false
	}
	serveVars().Add("queries", 1)
	return sn, true
}

// etagMatch reports whether the If-None-Match header value inm names
// etag, per RFC 9110 §13.1.2: "*" matches any current representation;
// otherwise inm is a comma-separated entity-tag list compared with the
// weak comparison (W/ prefixes ignored on both sides), as If-None-Match
// mandates. Malformed members end the scan without matching — the
// request then gets the full response, the safe failure mode.
func etagMatch(inm, etag string) bool {
	inm = strings.Trim(inm, " \t")
	if inm == "*" {
		return true
	}
	want := strings.TrimPrefix(etag, "W/")
	for {
		inm = strings.TrimLeft(inm, " \t,")
		if inm == "" {
			return false
		}
		tag, rest, ok := scanETag(inm)
		if !ok {
			return false
		}
		if strings.TrimPrefix(tag, "W/") == want {
			return true
		}
		inm = rest
	}
}

// scanETag parses one entity-tag at the head of s, returning the tag
// (W/ prefix retained) and the remainder. Grammar per RFC 9110 §8.8.3:
// an optional W/ then a DQUOTE-delimited run of etagc bytes.
func scanETag(s string) (etag, rest string, ok bool) {
	start := 0
	if strings.HasPrefix(s, "W/") {
		start = 2
	}
	if len(s) < start+2 || s[start] != '"' {
		return "", "", false
	}
	for i := start + 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			return s[:i+1], s[i+1:], true
		case c == 0x21 || (c >= 0x23 && c <= 0x7E) || c >= 0x80:
		default:
			return "", "", false
		}
	}
	return "", "", false
}

// serveCached writes one cached (or just-rendered) body. The render
// closure must read only sn — the immutable snapshot whose version keys
// the cache — so stored bytes can never desync from the ETag current()
// already set from the same snapshot.
func serveCached(w http.ResponseWriter, d *deployment, sn *snapshot, key string, render func() ([]byte, string, error)) {
	body, ct, err := d.cache.getOrFill(sn.version, key, render)
	if err != nil {
		if errors.Is(err, errRasterSaturated) {
			serveVars().Add("rasters_shed", 1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "raster renders saturated; retry")
			return
		}
		writeErr(w, http.StatusInternalServerError, "render failed: %v", err)
		return
	}
	w.Header().Set("Content-Type", ct)
	_, _ = w.Write(body)
}

// fmtFloat canonicalizes a query float for cache keys: distinct raw
// spellings of one value ("5", "5.0", "5e0") share an entry.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (s *Server) handlePolyline(w http.ResponseWriter, r *http.Request, d *deployment) {
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil || idx < 0 || idx >= d.levels.Count() {
		writeErr(w, http.StatusBadRequest, "level index %q outside [0,%d)", r.PathValue("idx"), d.levels.Count())
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	serveCached(w, d, sn, "poly|"+strconv.Itoa(idx), func() ([]byte, string, error) {
		segs := sn.m.BoundarySegments(idx)
		out := make([][4]float64, 0, len(segs))
		for _, sg := range segs {
			out = append(out, [4]float64{sg.A.X, sg.A.Y, sg.B.X, sg.B.Y})
		}
		b, err := encodeJSON(map[string]any{
			"version": sn.version, "level": d.levels.Values()[idx], "segments": out,
		})
		return b, "application/json", err
	})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, d *deployment) {
	x, errX := strconv.ParseFloat(r.URL.Query().Get("x"), 64)
	y, errY := strconv.ParseFloat(r.URL.Query().Get("y"), 64)
	if errX != nil || errY != nil {
		writeErr(w, http.StatusBadRequest, "classify needs float x and y")
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	serveCached(w, d, sn, "cls|"+fmtFloat(x)+"|"+fmtFloat(y), func() ([]byte, string, error) {
		b, err := encodeJSON(map[string]any{
			"version": sn.version, "x": x, "y": y,
			"class": sn.m.ClassifyPoint(geom.Point{X: x, Y: y}),
		})
		return b, "application/json", err
	})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request, d *deployment) {
	q := r.URL.Query()
	parse := func(key string) (float64, error) { return strconv.ParseFloat(q.Get(key), 64) }
	x0, e1 := parse("x0")
	y0, e2 := parse("y0")
	x1, e3 := parse("x1")
	y1, e4 := parse("y1")
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil || x1 < x0 || y1 < y0 {
		writeErr(w, http.StatusBadRequest, "range needs x0<=x1, y0<=y1 floats")
		return
	}
	rows, cols := intOr(q.Get("rows"), 8), intOr(q.Get("cols"), 8)
	if rows < 1 || cols < 1 || rows*cols > 1<<20 {
		writeErr(w, http.StatusBadRequest, "range grid must be 1..1M cells")
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	key := fmt.Sprintf("rng|%s|%s|%s|%s|%d|%d",
		fmtFloat(x0), fmtFloat(y0), fmtFloat(x1), fmtFloat(y1), rows, cols)
	serveCached(w, d, sn, key, func() ([]byte, string, error) {
		// Classes of the range's rows x cols cell centers, row-major —
		// the same center convention as the full raster.
		cells := make([][]int, rows)
		for i := 0; i < rows; i++ {
			cells[i] = make([]int, cols)
			y := y0 + (y1-y0)*(float64(i)+0.5)/float64(rows)
			for j := 0; j < cols; j++ {
				x := x0 + (x1-x0)*(float64(j)+0.5)/float64(cols)
				cells[i][j] = sn.m.ClassifyPoint(geom.Point{X: x, Y: y})
			}
		}
		b, err := encodeJSON(map[string]any{"version": sn.version, "cells": cells})
		return b, "application/json", err
	})
}

// errRasterSaturated marks a raster fill shed by the inflight bound; the
// handler maps it to 429.
var errRasterSaturated = errors.New("raster renders saturated")

func (s *Server) handleRaster(w http.ResponseWriter, r *http.Request, d *deployment) {
	q := r.URL.Query()
	rows, cols := intOr(q.Get("rows"), 100), intOr(q.Get("cols"), 100)
	if rows < 1 || cols < 1 || rows*cols > 1<<22 {
		writeErr(w, http.StatusBadRequest, "raster must be 1..4M cells")
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "pgm" {
		writeErr(w, http.StatusBadRequest, "format must be json or pgm")
		return
	}
	sn, ok := current(w, r, d)
	if !ok {
		return
	}
	key := fmt.Sprintf("ras|%d|%d|%s", rows, cols, format)
	serveCached(w, d, sn, key, func() ([]byte, string, error) {
		// Renders are the expensive misses; cache hits cost nothing, and
		// concurrent misses on one key already coalesce, so the inflight
		// bound only sheds *distinct* cold renders past RasterInflight.
		select {
		case s.rasterSem <- struct{}{}:
			defer func() { <-s.rasterSem }()
		default:
			return nil, "", errRasterSaturated
		}
		// The engine's dirty-rect raster path makes repeat resolutions
		// cheap, but it is only consulted when the engine provably backs
		// this snapshot — quarantined or superseded engines never leak
		// into a response. Otherwise (degraded, or the snapshot was
		// superseded mid-request) render from the immutable snapshot map
		// itself: always consistent with the version that keys the bytes.
		d.mu.Lock()
		var ra *field.Raster
		if d.inc != nil && d.inc.Map() == sn.m {
			ra = d.inc.Raster(rows, cols)
		}
		d.mu.Unlock()
		if ra == nil {
			ra = sn.m.RasterWorkers(rows, cols, s.cfg.Workers)
		}
		if format == "pgm" {
			return renderPGM(ra, d.levels.Count()), "image/x-portable-graymap", nil
		}
		b, err := encodeJSON(map[string]any{"version": sn.version, "rows": rows, "cols": cols, "cells": ra.Cells})
		return b, "application/json", err
	})
}

// renderPGM renders the class raster as a plain-text PGM tile, darkest at
// the innermost class, into pooled scratch; the returned bytes are a
// private copy safe to cache.
func renderPGM(ra *field.Raster, classes int) []byte {
	buf := encodeBuffers.Get().(*bytes.Buffer)
	defer encodeBuffers.Put(buf)
	buf.Reset()
	fmt.Fprintf(buf, "P2\n%d %d\n255\n", ra.Cols, ra.Rows)
	if classes < 1 {
		classes = 1
	}
	for _, row := range ra.Cells {
		for j, c := range row {
			if j > 0 {
				buf.WriteByte(' ')
			}
			g := 255 - (255*c)/classes
			if g < 0 {
				g = 0
			}
			buf.WriteString(strconv.Itoa(g))
		}
		buf.WriteByte('\n')
	}
	return append([]byte(nil), buf.Bytes()...)
}

func intOr(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}
