package serve

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// SupervisorConfig parameterizes Start.
type SupervisorConfig struct {
	// Interval paces successful rounds; zero selects 5s.
	Interval time.Duration
	// BackoffBase is the delay after the first failure; zero selects
	// min(Interval, 250ms). Each further consecutive failure doubles it.
	BackoffBase time.Duration
	// BackoffMax caps the backoff; zero selects 16 * BackoffBase.
	BackoffMax time.Duration
	// BreakerAfter consecutive failures trips the crash-loop breaker:
	// the deployment is flagged crash-looping (failing /readyz) and the
	// loop retries only at BackoffMax until a round succeeds. Zero
	// selects 5.
	BreakerAfter int
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = min(c.Interval, 250*time.Millisecond)
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 16 * c.BackoffBase
	}
	if c.BreakerAfter <= 0 {
		c.BreakerAfter = 5
	}
	return c
}

// supervisor owns the per-deployment background ingest loops.
type supervisor struct {
	cfg    SupervisorConfig
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Start launches one supervised ingest loop per deployment, replacing
// ad-hoc AdvanceAll driving: each loop advances its deployment every
// Interval, converts failures into bounded exponential backoff with
// jitter (so a flapping deployment cannot hot-loop the round source),
// and trips a crash-loop breaker — visible in /readyz and the meta
// document — after BreakerAfter consecutive failures. A success resets
// backoff and breaker. Start is idempotent; Stop halts the loops.
func (s *Server) Start(cfg SupervisorConfig) {
	if s.sup != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	sup := &supervisor{cfg: cfg.withDefaults(), cancel: cancel}
	s.sup = sup
	for i, id := range s.ids {
		d := s.deps[id]
		// Jitter draws from a per-deployment seeded stream: decorrelates
		// the deployments' retry phases without global randomness.
		rng := rand.New(rand.NewSource(s.cfg.Seed + int64(i)*7919))
		sup.wg.Add(1)
		go func() {
			defer sup.wg.Done()
			s.superviseLoop(ctx, d, sup.cfg, rng)
		}()
	}
}

// Stop halts the supervisor loops and waits for them to drain. Safe to
// call without a prior Start.
func (s *Server) Stop() {
	if s.sup == nil {
		return
	}
	s.sup.cancel()
	s.sup.wg.Wait()
	s.sup = nil
}

func (s *Server) superviseLoop(ctx context.Context, d *deployment, cfg SupervisorConfig, rng *rand.Rand) {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		_, err := s.advance(d)
		delay := cfg.Interval
		if err != nil {
			fails := d.health.Load().ConsecFails
			delay = backoffDelay(cfg, fails, rng)
			if fails >= cfg.BreakerAfter {
				d.mu.Lock()
				h := *d.health.Load()
				if !h.CrashLooping {
					h.CrashLooping = true
					d.health.Store(&h)
					serveVars().Add("breaker_trips", 1)
					s.logf("serve: %s crash-looping after %d consecutive failures: %v", d.id, fails, err)
				}
				d.mu.Unlock()
			} else {
				s.logf("serve: %s round failed (attempt %d, retrying in %v): %v", d.id, fails, delay, err)
			}
		}
		timer.Reset(delay)
	}
}

// backoffDelay is the bounded exponential backoff with ±20% jitter:
// base*2^(fails-1) capped at max. Once the breaker threshold is passed
// the delay pins to the cap — the breaker does not stop retrying, it
// stops retrying *fast* (and flips readiness) until a success resets it.
func backoffDelay(cfg SupervisorConfig, fails int, rng *rand.Rand) time.Duration {
	if fails < 1 {
		fails = 1
	}
	d := cfg.BackoffBase
	for i := 1; i < fails && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	jitter := 1 + 0.2*(2*rng.Float64()-1)
	d = time.Duration(float64(d) * jitter)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
