package serve

import (
	"bytes"
	"container/list"
	"encoding/json"
	"sync"
)

// The query-path fast lane: every cacheable response (polyline JSON,
// classify JSON, range JSON, raster JSON and PGM) is rendered once per
// snapshot version and then served as stored bytes. Correctness rests on
// one structural rule: a cache key always carries the version of the
// snapshot the bytes were rendered from, and the render closure reads
// only that immutable snapshot. Bytes for (version, key) are therefore
// eternally valid — invalidation is purely a memory concern (the LRU
// bound plus dropping superseded versions on publish), never a
// correctness one, and an ETag can never name bytes of another version.
//
// A quarantined (degraded) deployment publishes nothing, so its cache
// keeps serving the last good version's bytes untouched; a resync
// publishes a fresh version, which purges the old entries. Concurrent
// cold misses on one key coalesce singleflight-style: the first request
// renders, the rest wait and share the bytes.

// cacheArtifact is one stored response body.
type cacheArtifact struct {
	version int
	key     string
	body    []byte
	ct      string
}

// cacheFill tracks one in-flight render; waiters block on done.
type cacheFill struct {
	done chan struct{}
	body []byte
	ct   string
	err  error
}

// artifactCache is a per-deployment, snapshot-version-keyed response
// cache: a bounded LRU over fully encoded bodies with singleflight fill
// dedup. Safe for concurrent use.
type artifactCache struct {
	mu    sync.Mutex
	max   int
	order *list.List               // front = most recently used
	byKey map[string]*list.Element // versioned key -> *cacheArtifact element
	fills map[string]*cacheFill
}

func newArtifactCache(maxEntries int) *artifactCache {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &artifactCache{
		max:   maxEntries,
		order: list.New(),
		byKey: make(map[string]*list.Element),
		fills: make(map[string]*cacheFill),
	}
}

// versionedKey is the full cache key; version first so invalidate can
// trust the artifact's recorded version instead of parsing.
func versionedKey(version int, key string) string {
	// Small, allocation-cheap: version rarely exceeds a few digits.
	b := make([]byte, 0, len(key)+12)
	b = appendInt(b, version)
	b = append(b, '|')
	b = append(b, key...)
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// getOrFill returns the cached body for (version, key), rendering it via
// render on a miss. Concurrent misses on the same key share one render:
// exactly one caller runs render, the rest park on the fill and are
// counted as singleflight_coalesced. A render error is returned to every
// waiter and caches nothing.
func (c *artifactCache) getOrFill(version int, key string, render func() ([]byte, string, error)) ([]byte, string, error) {
	vk := versionedKey(version, key)
	c.mu.Lock()
	if el, ok := c.byKey[vk]; ok {
		c.order.MoveToFront(el)
		art := el.Value.(*cacheArtifact)
		c.mu.Unlock()
		serveVars().Add("cache_hits", 1)
		return art.body, art.ct, nil
	}
	if f, ok := c.fills[vk]; ok {
		c.mu.Unlock()
		serveVars().Add("singleflight_coalesced", 1)
		<-f.done
		return f.body, f.ct, f.err
	}
	f := &cacheFill{done: make(chan struct{})}
	c.fills[vk] = f
	c.mu.Unlock()
	serveVars().Add("cache_misses", 1)

	f.body, f.ct, f.err = render()

	c.mu.Lock()
	delete(c.fills, vk)
	if f.err == nil {
		c.store(version, vk, f.body, f.ct)
	}
	c.mu.Unlock()
	close(f.done)
	return f.body, f.ct, f.err
}

// store inserts one artifact and evicts past the LRU bound; called with
// c.mu held.
func (c *artifactCache) store(version int, vk string, body []byte, ct string) {
	if el, ok := c.byKey[vk]; ok {
		// A concurrent fill of the same key can land twice across an
		// invalidate; keep the newer bytes, same version-keyed contents.
		c.order.MoveToFront(el)
		el.Value = &cacheArtifact{version: version, key: vk, body: body, ct: ct}
		return
	}
	c.byKey[vk] = c.order.PushFront(&cacheArtifact{version: version, key: vk, body: body, ct: ct})
	for c.order.Len() > c.max {
		last := c.order.Back()
		art := last.Value.(*cacheArtifact)
		c.order.Remove(last)
		delete(c.byKey, art.key)
		serveVars().Add("cache_evictions", 1)
	}
}

// invalidate drops every entry whose version differs from keep — called
// on publish (and restore), where keep is the freshly published version.
// Entries of the kept version survive: re-publishing the same version
// never happens (the counter is monotone), and the degraded path
// publishes nothing at all, so the last good version's bytes keep
// serving through a quarantine.
func (c *artifactCache) invalidate(keep int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		art := el.Value.(*cacheArtifact)
		if art.version != keep {
			c.order.Remove(el)
			delete(c.byKey, art.key)
			serveVars().Add("cache_invalidated", 1)
		}
	}
}

// len reports the number of cached artifacts (tests).
func (c *artifactCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// encodeBuffers pools the scratch buffers every response render encodes
// into; the stored artifact copies the bytes out so buffers recycle
// immediately.
var encodeBuffers = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeJSON renders v exactly as writeJSON's encoder does (sorted map
// keys, trailing newline) into pooled scratch, returning a private copy.
func encodeJSON(v any) ([]byte, error) {
	buf := encodeBuffers.Get().(*bytes.Buffer)
	defer encodeBuffers.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}
