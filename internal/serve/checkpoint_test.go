package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// fetch returns status, ETag and body bytes of one GET.
func fetch(t *testing.T, ts *httptest.Server, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), b
}

// compareServing asserts two servers answer every query surface
// byte-identically for one deployment: ETag, polyline JSON, raster JSON
// and PGM bytes, classification.
func compareServing(t *testing.T, a, b *httptest.Server, when string) {
	t.Helper()
	// Meta compares field-by-field: the stats block is engine-local
	// diagnostics (cumulative reuse counters), legitimately different
	// after a restore; everything served to clients must match.
	ma, ra := getMeta(t, a, "d0")
	mb, rb := getMeta(t, b, "d0")
	for _, k := range []string{"etag", "version", "round", "reports", "sinkValue", "faulted", "state", "staleRounds"} {
		if ma[k] != mb[k] {
			t.Fatalf("%s: meta %q = %v vs %v", when, k, ma[k], mb[k])
		}
	}
	if ra.Header.Get("ETag") != rb.Header.Get("ETag") {
		t.Fatalf("%s: meta ETag %q vs %q", when, ra.Header.Get("ETag"), rb.Header.Get("ETag"))
	}
	for _, path := range []string{
		"/v1/deployments/d0/levels/0/polyline",
		"/v1/deployments/d0/levels/1/polyline",
		"/v1/deployments/d0/classify?x=17.3&y=24.9",
		"/v1/deployments/d0/range?x0=5&y0=5&x1=45&y1=45&rows=6&cols=6",
		"/v1/deployments/d0/raster?rows=24&cols=24",
		"/v1/deployments/d0/raster?rows=16&cols=16&format=pgm",
	} {
		ca, ea, ba := fetch(t, a, path)
		cb, eb, bb := fetch(t, b, path)
		if ca != cb || ca != http.StatusOK {
			t.Fatalf("%s: GET %s status %d vs %d", when, path, ca, cb)
		}
		if ea != eb {
			t.Fatalf("%s: GET %s ETag %q vs %q", when, path, ea, eb)
		}
		if string(ba) != string(bb) {
			t.Fatalf("%s: GET %s bodies diverge (%d vs %d bytes)", when, path, len(ba), len(bb))
		}
	}
}

// TestCheckpointRestoreEquivalence is the kill-and-restart acceptance
// test: a server restored from -checkpoint-dir serves snapshots
// byte-identical (ETag, polylines, raster JSON and PGM bytes,
// classifications) to a never-restarted same-seed run, at the restore
// point and at every subsequent round — crash-faulted rounds included.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Deployments: 1, Nodes: 300, Seed: 21, FaultEvery: 3, Oracle: true, OracleRes: 32,
		CheckpointDir: dir, CheckpointEvery: 2}

	// The continuous run: 4 rounds, checkpoints at v2 and v4.
	_, tsA := bootServer(t, cfg)
	for i := 0; i < 4; i++ {
		postRound(t, tsA, "d0")
	}
	if _, err := os.Stat(filepath.Join(dir, "d0.json")); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// The "restarted process": a fresh server over the same dir.
	restoresBefore := counter("restores")
	b, tsB := bootServer(t, cfg)
	if counter("restores") != restoresBefore+1 {
		t.Fatal("restart did not restore from the checkpoint")
	}
	if v := b.deps["d0"].version; v != 4 {
		t.Fatalf("restored at version %d, want 4", v)
	}
	if r := b.deps["d0"].src.Round(); r != 4 {
		t.Fatalf("restored round source at %d, want 4", r)
	}
	compareServing(t, tsA, tsB, "at restore")

	// Both advance through three more rounds (round 6 is crash-faulted);
	// every subsequent snapshot must stay byte-identical.
	for i := 0; i < 3; i++ {
		ra := postRound(t, tsA, "d0")
		rb := postRound(t, tsB, "d0")
		if ra["etag"] != rb["etag"] || ra["faulted"] != rb["faulted"] || ra["reports"] != rb["reports"] {
			t.Fatalf("round %d diverged after restore: %v vs %v", i+5, ra, rb)
		}
		compareServing(t, tsA, tsB, ra["etag"].(string))
	}
}

// TestRestoreIdentityMismatch: a checkpoint from a differently shaped
// deployment (seed, node count, fault cadence) must refuse to boot —
// silently serving another universe's data is the one non-recoverable
// configuration error.
func TestRestoreIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Deployments: 1, Nodes: 250, Seed: 51, CheckpointDir: dir}
	_, ts := bootServer(t, cfg)
	postRound(t, ts, "d0")

	bad := cfg
	bad.Seed = 52
	if _, err := NewServer(bad); err == nil {
		t.Fatal("mismatched seed restored without error")
	}
	bad = cfg
	bad.Nodes = 260
	if _, err := NewServer(bad); err == nil {
		t.Fatal("mismatched node count restored without error")
	}
}

// TestRestoreCorruptCheckpoint: an unreadable checkpoint is logged and
// ignored — the server self-heals by starting that deployment cold
// instead of refusing to boot.
func TestRestoreCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "d0.json"), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	errsBefore := counter("restore_errors")
	logged := false
	s, err := NewServer(Config{Deployments: 1, Nodes: 250, Seed: 53, CheckpointDir: dir,
		Logf: func(string, ...any) { logged = true }})
	if err != nil {
		t.Fatalf("corrupt checkpoint failed the boot: %v", err)
	}
	if counter("restore_errors") != errsBefore+1 {
		t.Fatal("restore_errors did not grow")
	}
	if !logged {
		t.Fatal("corrupt checkpoint was not logged")
	}
	if s.deps["d0"].snap.Load() != nil || s.deps["d0"].version != 0 {
		t.Fatal("corrupt checkpoint still produced a snapshot")
	}
}
