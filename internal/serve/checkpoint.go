package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"isomap/internal/contour"
	"isomap/internal/core"
)

// checkpointDoc is the on-disk per-deployment checkpoint. Determinism
// makes it tiny: rounds are memoryless given the deployment's scenario
// (sim.RoundSource.SeekRound), so the resumable state is the round
// counter, the published version counter, and the engine's arranged
// report order — from which contour.Resync rebuilds a byte-identical
// engine. A restarted server therefore serves snapshots (ETags, raster
// bytes, polylines) identical to a never-restarted same-seed run.
type checkpointDoc struct {
	// ID, Nodes, Seed and FaultEvery identify the deployment the
	// checkpoint belongs to; restore refuses a checkpoint whose identity
	// does not match the configured deployment.
	ID         string `json:"id"`
	Nodes      int    `json:"nodes"`
	Seed       int64  `json:"seed"`
	FaultEvery int    `json:"faultEvery"`
	// Temporal captures the evolving-field and delta-protocol identity
	// (Config.temporalID); empty for the legacy configuration, so old
	// checkpoints keep restoring.
	Temporal string `json:"temporal,omitempty"`

	// Version is the published snapshot counter; Round the round
	// source's completed-round counter; SnapRound the published
	// snapshot's round label (they differ for pushed rounds).
	Version   int `json:"version"`
	Round     int `json:"round"`
	SnapRound int `json:"snapRound"`

	// Arranged is the engine's arranged report order at Version, and
	// SinkValue/Reports/Faulted the snapshot metadata to republish.
	Arranged  []core.Report `json:"arranged"`
	SinkValue float64       `json:"sinkValue"`
	Reports   int           `json:"reports"`
	Faulted   bool          `json:"faulted"`
}

func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".json")
}

// writeCheckpoint persists the deployment's resumable state; called with
// d.mu held, immediately after a publish, so the engine provably backs
// sn. The write is atomic (temp file + rename): a crash mid-write leaves
// the previous checkpoint intact, never a torn one.
func (s *Server) writeCheckpoint(d *deployment, sn *snapshot) error {
	doc := checkpointDoc{
		ID:         d.id,
		Nodes:      s.cfg.Nodes,
		Seed:       d.src.Env.Scenario.Seed,
		FaultEvery: s.cfg.FaultEvery,
		Temporal:   s.cfg.temporalID(),
		Version:    d.version,
		Round:      d.src.Round(),
		SnapRound:  sn.round,
		Arranged:   d.inc.Arranged(),
		SinkValue:  sn.sinkValue,
		Reports:    sn.reports,
		Faulted:    sn.faulted,
	}
	if err := os.MkdirAll(s.cfg.CheckpointDir, 0o755); err != nil {
		return err
	}
	b, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.cfg.CheckpointDir, d.id+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.checkpointPath(d.id))
}

// restore resumes a freshly built deployment from its checkpoint, if one
// exists. A missing checkpoint is a clean cold start. An unreadable or
// internally invalid one is logged, counted and *ignored* — self-healing
// beats refusing to boot — but a checkpoint whose identity (seed, node
// count, fault cadence) contradicts the configuration is a hard error:
// resuming it would silently serve a different deployment's data.
func (s *Server) restore(d *deployment) error {
	b, err := os.ReadFile(s.checkpointPath(d.id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		serveVars().Add("restore_errors", 1)
		s.logf("serve: %s checkpoint unreadable, starting cold: %v", d.id, err)
		return nil
	}
	var doc checkpointDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		serveVars().Add("restore_errors", 1)
		s.logf("serve: %s checkpoint corrupt, starting cold: %v", d.id, err)
		return nil
	}
	if doc.ID != d.id || doc.Nodes != s.cfg.Nodes || doc.Seed != d.src.Env.Scenario.Seed || doc.FaultEvery != s.cfg.FaultEvery || doc.Temporal != s.cfg.temporalID() {
		return fmt.Errorf("checkpoint identity mismatch: checkpoint (id=%s nodes=%d seed=%d faultEvery=%d temporal=%q) vs config (id=%s nodes=%d seed=%d faultEvery=%d temporal=%q)",
			doc.ID, doc.Nodes, doc.Seed, doc.FaultEvery, doc.Temporal, d.id, s.cfg.Nodes, d.src.Env.Scenario.Seed, s.cfg.FaultEvery, s.cfg.temporalID())
	}
	if doc.Version < 1 || doc.Round < 0 {
		serveVars().Add("restore_errors", 1)
		s.logf("serve: %s checkpoint has invalid counters (version=%d round=%d), starting cold", d.id, doc.Version, doc.Round)
		return nil
	}
	if err := validateRound(doc.Arranged, doc.SinkValue); err != nil {
		serveVars().Add("restore_errors", 1)
		s.logf("serve: %s checkpoint holds invalid reports, starting cold: %v", d.id, err)
		return nil
	}
	if err := d.src.SeekRound(doc.Round); err != nil {
		return err
	}
	inc, m := contour.Resync(d.levels, d.bounds, d.opts, doc.Arranged, doc.SinkValue)
	d.inc = inc
	d.version = doc.Version
	d.snap.Store(&snapshot{
		version:   doc.Version,
		round:     doc.SnapRound,
		etag:      fmt.Sprintf("%q", fmt.Sprintf("%s-v%d", d.id, doc.Version)),
		m:         m,
		sinkValue: doc.SinkValue,
		reports:   doc.Reports,
		faulted:   doc.Faulted,
	})
	// The artifact cache is in-process memory, so a restart can never
	// resurrect pre-restart bytes — but restore is still a publish, so it
	// invalidates like every other one. If a restored server re-reaches a
	// version number the dead process also served (checkpoint at v3,
	// different rounds ingested after restart), its caches refill from its
	// own renders; nothing ties them to the old process's bytes.
	d.cache.invalidate(doc.Version)
	serveVars().Add("restores", 1)
	s.logf("serve: %s restored from checkpoint at version %d (round %d)", d.id, doc.Version, doc.Round)
	return nil
}
