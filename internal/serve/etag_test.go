package serve

import "testing"

// TestETagMatch pins the RFC 9110 If-None-Match comparison: full
// entity-tag list parsing, weak-validator prefixes ignored on both
// sides, and no substring near-collisions.
func TestETagMatch(t *testing.T) {
	cases := []struct {
		name string
		inm  string
		etag string
		want bool
	}{
		{"exact", `"d0-v3"`, `"d0-v3"`, true},
		{"star", `*`, `"d0-v3"`, true},
		{"star padded", `  *  `, `"d0-v3"`, true},
		{"miss", `"d0-v2"`, `"d0-v3"`, false},
		{"weak client", `W/"d0-v3"`, `"d0-v3"`, true},
		{"weak server", `"d0-v3"`, `W/"d0-v3"`, true},
		{"weak both", `W/"d0-v3"`, `W/"d0-v3"`, true},
		{"list first", `"d0-v3", "d0-v4"`, `"d0-v3"`, true},
		{"list last", `"d0-v1", "d0-v2", "d0-v3"`, `"d0-v3"`, true},
		{"list miss", `"d0-v1", "d0-v2"`, `"d0-v3"`, false},
		{"list no spaces", `"d0-v1","d0-v3"`, `"d0-v3"`, true},
		{"list weak member", `"d0-v1", W/"d0-v3"`, `"d0-v3"`, true},
		// Near-collisions a substring check would get wrong in one
		// direction or the other.
		{"prefix collision", `"d0-v1"`, `"d0-v12"`, false},
		{"suffix collision", `"d0-v12"`, `"d0-v1"`, false},
		{"version prefix list", `"d0-v12", "d0-v13"`, `"d0-v1"`, false},
		{"embedded lookalike", `"xd0-v3x"`, `"d0-v3"`, false},
		// Malformed members fail closed (no match, full response).
		{"unquoted", `d0-v3`, `"d0-v3"`, false},
		{"unterminated", `"d0-v3`, `"d0-v3"`, false},
		{"empty", ``, `"d0-v3"`, false},
		{"lone comma", `,`, `"d0-v3"`, false},
		{"garbage then match", `zzz, "d0-v3"`, `"d0-v3"`, false},
		{"match then garbage", `"d0-v3", zzz`, `"d0-v3"`, true},
		{"empty tag", `""`, `""`, true},
	}
	for _, tc := range cases {
		if got := etagMatch(tc.inm, tc.etag); got != tc.want {
			t.Errorf("%s: etagMatch(%q, %q) = %v, want %v", tc.name, tc.inm, tc.etag, got, tc.want)
		}
	}
}

func TestScanETag(t *testing.T) {
	cases := []struct {
		in        string
		tag, rest string
		ok        bool
	}{
		{`"a"`, `"a"`, ``, true},
		{`W/"a", "b"`, `W/"a"`, `, "b"`, true},
		{`"a-b.c"rest`, `"a-b.c"`, `rest`, true},
		{`""`, `""`, ``, true},
		{`W/`, ``, ``, false},
		{`"unterminated`, ``, ``, false},
		{`noquote"`, ``, ``, false},
		{`"bad space"`, ``, ``, false},
	}
	for _, tc := range cases {
		tag, rest, ok := scanETag(tc.in)
		if tag != tc.tag || rest != tc.rest || ok != tc.ok {
			t.Errorf("scanETag(%q) = (%q, %q, %v), want (%q, %q, %v)", tc.in, tag, rest, ok, tc.tag, tc.rest, tc.ok)
		}
	}
}
