package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"isomap/internal/core"
	"isomap/internal/geom"
)

// counter reads one isomapd expvar counter (process-global and monotone:
// tests assert deltas, not absolutes).
func counter(name string) int64 {
	v := serveVars().Get(name)
	if v == nil {
		return 0
	}
	return v.(*expvar.Int).Value()
}

func postRoundStatus(t *testing.T, ts *httptest.Server, id, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	resp, err := http.Post(ts.URL+"/v1/deployments/"+id+"/rounds", "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getMeta(t *testing.T, ts *httptest.Server, id string) (map[string]any, *http.Response) {
	t.Helper()
	var meta map[string]any
	resp := getJSON(t, ts, "/v1/deployments/"+id, &meta)
	return meta, resp
}

// TestPushedBatchValidation: poisonous payloads are client errors — 400,
// engine untouched — and oversized bodies 413, never 500. JSON itself
// cannot spell NaN/Inf (the decoder rejects out-of-range literals like
// 1e999 with 400), so the validateRound layer behind it is unit-tested
// directly: it guards the paths that bypass JSON decoding, most
// importantly checkpoint restore.
func TestPushedBatchValidation(t *testing.T) {
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 31, Oracle: true, OracleRes: 32, MaxBodyBytes: 4096})
	postRound(t, ts, "d0")
	versionBefore := s.deps["d0"].version

	cases := []struct {
		name string
		body string
	}{
		{"overflow x", `{"reports":[{"level":6,"levelIndex":0,"pos":{"x":1e999,"y":10},"grad":{"x":1,"y":0},"source":1}],"sinkValue":5}`},
		{"overflow grad", `{"reports":[{"level":6,"levelIndex":0,"pos":{"x":10,"y":10},"grad":{"x":-1e999,"y":0},"source":1}],"sinkValue":5}`},
		{"overflow sink", `{"reports":[],"sinkValue":1e999}`},
		{"nan literal", `{"reports":[{"pos":{"x":NaN,"y":1}}],"sinkValue":5}`},
		{"not json", `{not json`},
	}
	for _, tc := range cases {
		resp, out := postRoundStatus(t, ts, "d0", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%v)", tc.name, resp.StatusCode, out)
		}
	}
	if v := s.deps["d0"].version; v != versionBefore {
		t.Fatalf("rejected batches advanced the version: %d -> %d", versionBefore, v)
	}
	if h := s.deps["d0"].health.Load(); h.Degraded || h.StaleRounds != 0 {
		t.Fatalf("rejected batches degraded the deployment: %+v", h)
	}

	// A payload over MaxBodyBytes is 413, not 500.
	big, _ := json.Marshal(ingestBody{Reports: make([]core.Report, 200), SinkValue: 5})
	resp, _ := postRoundStatus(t, ts, "d0", string(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestValidateRound covers the defense-in-depth layer directly: NaN/Inf
// anywhere in a batch (or sink value) is rejected, finite batches pass,
// and CorruptReports output never passes.
func TestValidateRound(t *testing.T) {
	good := core.Report{Level: 6, LevelIndex: 0, Pos: geom.Point{X: 10, Y: 10}, Grad: geom.Vec{X: 1}}
	if err := validateRound([]core.Report{good}, 5); err != nil {
		t.Fatalf("finite round rejected: %v", err)
	}
	mut := func(f func(*core.Report)) []core.Report {
		r := good
		f(&r)
		return []core.Report{r}
	}
	for name, reports := range map[string][]core.Report{
		"nan pos x":  mut(func(r *core.Report) { r.Pos.X = math.NaN() }),
		"inf pos y":  mut(func(r *core.Report) { r.Pos.Y = math.Inf(1) }),
		"nan grad y": mut(func(r *core.Report) { r.Grad.Y = math.NaN() }),
		"inf level":  mut(func(r *core.Report) { r.Level = math.Inf(-1) }),
	} {
		if err := validateRound(reports, 5); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := validateRound([]core.Report{good}, math.NaN()); err == nil {
		t.Error("NaN sink value accepted")
	}
	plan := NewChaosPlan(ChaosConfig{Seed: 3, CorruptRate: 1})
	if err := validateRound(plan.CorruptReports([]core.Report{good, good, good}, "d0", 1), 5); err == nil {
		t.Error("corrupted batch accepted")
	}
}

// TestRasterLoadShedding: past RasterInflight concurrent renders the
// server sheds with 429 + Retry-After instead of queueing.
func TestRasterLoadShedding(t *testing.T) {
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 33, RasterInflight: 2})
	postRound(t, ts, "d0")

	// Fill the semaphore as two in-flight renders would.
	s.rasterSem <- struct{}{}
	s.rasterSem <- struct{}{}
	resp := getJSON(t, ts, "/v1/deployments/d0/raster?rows=8&cols=8", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated raster: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After")
	}
	<-s.rasterSem
	<-s.rasterSem
	if resp := getJSON(t, ts, "/v1/deployments/d0/raster?rows=8&cols=8", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drained raster: status %d, want 200", resp.StatusCode)
	}
	// Other endpoints are never shed.
	if resp := getJSON(t, ts, "/v1/deployments/d0/classify?x=5&y=5", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: status %d", resp.StatusCode)
	}
}

// chaosSchedule returns the 1-based ingest attempts in [1, n] on which
// the plan fires the given predicate for deployment dep.
func chaosSchedule(n int, pred func(attempt int) bool) []int {
	var out []int
	for a := 1; a <= n; a++ {
		if pred(a) {
			out = append(out, a)
		}
	}
	return out
}

// TestQuarantineResync walks the deployment state machine through a
// synthetic oracle divergence: the failed round publishes nothing and
// quarantines the engine (fixing the old mutate-before-check bug),
// queries keep serving the last good snapshot with staleness metadata,
// and the next round resyncs via full rebuild — all under oracle mode,
// so the resynced engine is re-verified before publishing.
func TestQuarantineResync(t *testing.T) {
	plan := NewChaosPlan(ChaosConfig{Seed: 97, DivergeRate: 0.34})
	fires := chaosSchedule(12, func(a int) bool { return plan.Diverge("d0", a) })
	if len(fires) == 0 || fires[0] == 1 {
		t.Fatalf("chaos seed produced unusable divergence schedule %v; pick another seed", fires)
	}
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 35, Oracle: true, OracleRes: 32, Chaos: plan})
	d := s.deps["d0"]

	divBefore, resyncBefore := counter("divergences"), counter("resyncs")
	// Walk to the first successful round after the first divergence (the
	// schedule may fire several attempts in a row).
	last := fires[0] + 1
	for plan.Diverge("d0", last) {
		last++
	}
	var lastGoodETag string
	sawDiverge, sawResync := false, false
	for attempt := 1; attempt <= last; attempt++ {
		resp, out := postRoundStatus(t, ts, "d0", "")
		if plan.Diverge("d0", attempt) {
			sawDiverge = true
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("attempt %d (diverging): status %d, want 503", attempt, resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 carried no Retry-After")
			}
			// Quarantined: engine discarded, snapshot untouched.
			d.mu.Lock()
			inc := d.inc
			d.mu.Unlock()
			if inc != nil {
				t.Fatal("diverged ingest left the engine alive")
			}
			meta, mresp := getMeta(t, ts, "d0")
			if meta["state"] != "degraded" {
				t.Fatalf("state after divergence = %v", meta["state"])
			}
			if meta["etag"] != lastGoodETag {
				t.Fatalf("degraded meta serves etag %v, want last good %v", meta["etag"], lastGoodETag)
			}
			if mresp.Header.Get("Warning") == "" || mresp.Header.Get("X-Stale-Rounds") == "" {
				t.Fatalf("degraded response missing staleness headers: %v", mresp.Header)
			}
			// The raster path must not touch the quarantined engine: it
			// renders from the snapshot, version-consistent with the ETag.
			var ras struct {
				Version int `json:"version"`
			}
			rresp := getJSON(t, ts, "/v1/deployments/d0/raster?rows=8&cols=8", &ras)
			if rresp.StatusCode != http.StatusOK {
				t.Fatalf("degraded raster: status %d", rresp.StatusCode)
			}
			if want := fmt.Sprintf("%q", fmt.Sprintf("d0-v%d", ras.Version)); rresp.Header.Get("ETag") != want {
				t.Fatalf("degraded raster version %d inconsistent with ETag %s", ras.Version, rresp.Header.Get("ETag"))
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status %d (%v)", attempt, resp.StatusCode, out)
		}
		lastGoodETag = out["etag"].(string)
		if sawDiverge {
			sawResync = true
			meta, _ := getMeta(t, ts, "d0")
			if meta["state"] != "healthy" {
				t.Fatalf("state after resync = %v", meta["state"])
			}
			if meta["staleRounds"].(float64) != 0 {
				t.Fatalf("staleRounds after resync = %v", meta["staleRounds"])
			}
		}
	}
	if !sawDiverge || !sawResync {
		t.Fatalf("walk exercised diverge=%v resync=%v", sawDiverge, sawResync)
	}
	if counter("divergences") <= divBefore {
		t.Fatal("divergences counter did not grow")
	}
	if counter("resyncs") <= resyncBefore {
		t.Fatal("resyncs counter did not grow")
	}

	// ETag versions keep ascending across the quarantine: no reuse of a
	// version number for different bytes.
	if !strings.Contains(lastGoodETag, "-v") {
		t.Fatalf("bad final etag %q", lastGoodETag)
	}
}

// TestPanicRecovery: a scheduled ingest panic is recovered, counted,
// quarantines the engine and degrades the deployment — then the next
// round resyncs it.
func TestPanicRecovery(t *testing.T) {
	plan := NewChaosPlan(ChaosConfig{Seed: 11, PanicRate: 0.3})
	fires := chaosSchedule(12, func(a int) bool { return plan.Panic("d0", a) })
	if len(fires) == 0 || fires[0] == 1 {
		t.Fatalf("chaos seed produced unusable panic schedule %v; pick another seed", fires)
	}
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 37, Chaos: plan})
	panicsBefore := counter("panics_recovered")
	for attempt := 1; attempt <= fires[0]; attempt++ {
		resp, _ := postRoundStatus(t, ts, "d0", "")
		if plan.Panic("d0", attempt) {
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("panicking attempt %d: status %d, want 503", attempt, resp.StatusCode)
			}
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status %d", attempt, resp.StatusCode)
		}
	}
	if counter("panics_recovered") <= panicsBefore {
		t.Fatal("panics_recovered did not grow")
	}
	if h := s.deps["d0"].health.Load(); !h.Degraded {
		t.Fatalf("post-panic health = %+v, want degraded", h)
	}
	// Recovery round.
	s.SetChaos(nil)
	resp, _ := postRoundStatus(t, ts, "d0", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery round: status %d", resp.StatusCode)
	}
	if h := s.deps["d0"].health.Load(); h.Degraded || h.StaleRounds != 0 {
		t.Fatalf("post-recovery health = %+v", h)
	}
}

// TestSupervisorBreakerReadyz: under a panic-everything chaos plan the
// supervisor backs off, trips the crash-loop breaker, and /readyz goes
// not-ready naming the deployment; lifting the chaos heals it and
// /readyz flips back — within a bounded number of rounds.
func TestSupervisorBreakerReadyz(t *testing.T) {
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 39})
	postRound(t, ts, "d0") // readiness needs a first snapshot

	if resp := getJSON(t, ts, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-chaos readyz: status %d", resp.StatusCode)
	}
	s.SetChaos(NewChaosPlan(ChaosConfig{Seed: 1, PanicRate: 1}))
	s.Start(SupervisorConfig{Interval: time.Millisecond, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond, BreakerAfter: 3})
	defer s.Stop()

	waitFor(t, 10*time.Second, "breaker trip", func() bool {
		resp := getJSON(t, ts, "/readyz", nil)
		return resp.StatusCode == http.StatusServiceUnavailable && s.deps["d0"].health.Load().CrashLooping
	})
	meta, _ := getMeta(t, ts, "d0")
	if meta["crashLooping"] != true || meta["state"] != "degraded" {
		t.Fatalf("crash-looping meta = %v", meta)
	}

	s.SetChaos(nil)
	waitFor(t, 10*time.Second, "recovery", func() bool {
		resp := getJSON(t, ts, "/readyz", nil)
		if resp.StatusCode != http.StatusOK {
			return false
		}
		h := s.deps["d0"].health.Load()
		return !h.CrashLooping && !h.Degraded
	})
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestBackoffDelay pins the supervisor's backoff curve: doubling from
// base, capped at max, jitter within ±20%.
func TestBackoffDelay(t *testing.T) {
	cfg := SupervisorConfig{Interval: time.Second}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for fails := 1; fails <= 10; fails++ {
		want := cfg.BackoffBase << (fails - 1)
		if want > cfg.BackoffMax {
			want = cfg.BackoffMax
		}
		for i := 0; i < 50; i++ {
			got := backoffDelay(cfg, fails, rng)
			lo := time.Duration(float64(want) * 0.79)
			hi := time.Duration(float64(want) * 1.21)
			if got < lo || got > hi {
				t.Fatalf("fails=%d: delay %v outside [%v, %v]", fails, got, lo, hi)
			}
		}
	}
}
