package serve

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"isomap/internal/contour"
)

// queryPaths is the full cacheable query surface for one deployment,
// covering every artifact kind the cache holds.
func queryPaths(id string) []string {
	return []string{
		"/v1/deployments/" + id + "/levels/0/polyline",
		"/v1/deployments/" + id + "/levels/1/polyline",
		"/v1/deployments/" + id + "/classify?x=17.3&y=24.9",
		"/v1/deployments/" + id + "/range?x0=5&y0=5&x1=45&y1=45&rows=6&cols=6",
		"/v1/deployments/" + id + "/raster?rows=24&cols=24",
		"/v1/deployments/" + id + "/raster?rows=16&cols=16&format=pgm",
	}
}

// TestCacheEquivalence is the fast lane's correctness anchor: for every
// cacheable query, the cold (rendered) bytes, the warm (cached) bytes and
// bytes rendered from an oracle full rebuild of the published map must be
// identical — and the warm fetch must be a counted cache hit.
func TestCacheEquivalence(t *testing.T) {
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 19, Oracle: true, OracleRes: 32})
	postRound(t, ts, "d0")
	postRound(t, ts, "d0")
	d := s.deps["d0"]
	sn := d.snap.Load()

	// Oracle: a from-scratch rebuild of the same arranged round, rendered
	// through the same encoders the handlers use.
	d.mu.Lock()
	arranged := d.inc.Arranged()
	d.mu.Unlock()
	full := contour.Reconstruct(arranged, d.levels, d.bounds, sn.sinkValue, d.opts)

	oracle := map[string][]byte{}
	for _, idx := range []int{0, 1} {
		segs := full.BoundarySegments(idx)
		out := make([][4]float64, 0, len(segs))
		for _, sg := range segs {
			out = append(out, [4]float64{sg.A.X, sg.A.Y, sg.B.X, sg.B.Y})
		}
		b, err := encodeJSON(map[string]any{
			"version": sn.version, "level": d.levels.Values()[idx], "segments": out,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle[queryPaths("d0")[idx]] = b
	}
	ra := full.RasterWorkers(24, 24, 1)
	b, err := encodeJSON(map[string]any{"version": sn.version, "rows": 24, "cols": 24, "cells": ra.Cells})
	if err != nil {
		t.Fatal(err)
	}
	oracle["/v1/deployments/d0/raster?rows=24&cols=24"] = b
	oracle["/v1/deployments/d0/raster?rows=16&cols=16&format=pgm"] =
		renderPGM(full.RasterWorkers(16, 16, 1), d.levels.Count())

	for _, path := range queryPaths("d0") {
		missesBefore, hitsBefore := counter("cache_misses"), counter("cache_hits")
		c1, e1, cold := fetch(t, ts, path)
		c2, e2, warm := fetch(t, ts, path)
		if c1 != http.StatusOK || c2 != http.StatusOK {
			t.Fatalf("GET %s: status %d then %d", path, c1, c2)
		}
		if e1 != sn.etag || e2 != sn.etag {
			t.Fatalf("GET %s: ETags %q, %q; want %q", path, e1, e2, sn.etag)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("GET %s: warm bytes diverge from cold (%d vs %d bytes)", path, len(warm), len(cold))
		}
		if want, ok := oracle[path]; ok && !bytes.Equal(cold, want) {
			t.Fatalf("GET %s: served bytes diverge from oracle rebuild render\n got: %.120s\nwant: %.120s", path, cold, want)
		}
		if counter("cache_misses") != missesBefore+1 {
			t.Fatalf("GET %s: cold fetch not counted as exactly one miss", path)
		}
		if counter("cache_hits") != hitsBefore+1 {
			t.Fatalf("GET %s: warm fetch not counted as a hit", path)
		}
	}
	// Float-spelling variants of one classify point share an entry.
	missesBefore := counter("cache_misses")
	_, _, a := fetch(t, ts, "/v1/deployments/d0/classify?x=17.3&y=24.9")
	_, _, b2 := fetch(t, ts, "/v1/deployments/d0/classify?x=1.73e1&y=24.90")
	if !bytes.Equal(a, b2) || counter("cache_misses") != missesBefore {
		t.Fatal("equivalent float spellings did not share a cache entry")
	}
}

// TestCacheInvalidationLifecycle walks the cache across the deployment
// state machine: publish purges superseded versions, quarantine leaves
// the last good version's bytes serving (as hits, no re-render), and the
// resync publish purges them in turn.
func TestCacheInvalidationLifecycle(t *testing.T) {
	plan := NewChaosPlan(ChaosConfig{Seed: 91, DivergeRate: 0.34})
	fires := chaosSchedule(12, func(a int) bool { return plan.Diverge("d0", a) })
	// Need at least two clean publishes before the first divergence so the
	// publish-invalidation arm runs, then a divergence with room to resync.
	if len(fires) == 0 || fires[0] < 3 || fires[len(fires)-1] >= 12 {
		t.Fatalf("chaos seed produced unusable divergence schedule %v; pick another seed", fires)
	}
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 91, Oracle: true, OracleRes: 32, Chaos: plan})
	d := s.deps["d0"]
	paths := queryPaths("d0")

	warm := func() map[string][]byte {
		t.Helper()
		out := make(map[string][]byte, len(paths))
		for _, p := range paths {
			code, _, body := fetch(t, ts, p)
			if code != http.StatusOK {
				t.Fatalf("GET %s: status %d", p, code)
			}
			out[p] = body
		}
		return out
	}

	// Publish invalidation: after warming version N, publishing N+1 drops
	// every version-N entry — the cache only ever holds the live version.
	postRoundStatus(t, ts, "d0", "")
	warm()
	if n := d.cache.len(); n != len(paths) {
		t.Fatalf("cache holds %d entries after warming %d paths", n, len(paths))
	}
	invBefore := counter("cache_invalidated")
	postRoundStatus(t, ts, "d0", "")
	if n := d.cache.len(); n != 0 {
		t.Fatalf("publish left %d stale entries cached", n)
	}
	if counter("cache_invalidated") != invBefore+int64(len(paths)) {
		t.Fatalf("publish invalidated %d entries, want %d", counter("cache_invalidated")-invBefore, len(paths))
	}

	// Walk to the first divergence; the failed round publishes nothing.
	goodBytes := warm()
	goodETag := d.snap.Load().etag
	attempt := 2
	for !plan.Diverge("d0", attempt+1) {
		postRoundStatus(t, ts, "d0", "")
		goodBytes = warm()
		goodETag = d.snap.Load().etag
		attempt++
	}
	resp, _ := postRoundStatus(t, ts, "d0", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("diverging round: status %d, want 503", resp.StatusCode)
	}
	attempt++

	// Degraded: every query keeps serving the last good version's cached
	// bytes, byte-identical, as hits — the quarantine rendered nothing.
	missesBefore, hitsBefore := counter("cache_misses"), counter("cache_hits")
	for _, p := range paths {
		_, etag, body := fetch(t, ts, p)
		if etag != goodETag {
			t.Fatalf("degraded GET %s: ETag %q, want last good %q", p, etag, goodETag)
		}
		if !bytes.Equal(body, goodBytes[p]) {
			t.Fatalf("degraded GET %s: bytes diverge from pre-quarantine cache", p)
		}
	}
	if counter("cache_misses") != missesBefore {
		t.Fatal("degraded queries re-rendered instead of serving cached bytes")
	}
	if counter("cache_hits") != hitsBefore+int64(len(paths)) {
		t.Fatal("degraded queries were not all counted as cache hits")
	}

	// Resync publishes a fresh version: old entries purged, new bytes
	// served under the new ETag.
	for plan.Diverge("d0", attempt) {
		postRoundStatus(t, ts, "d0", "")
		attempt++
	}
	resp, out := postRoundStatus(t, ts, "d0", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resync round: status %d (%v)", resp.StatusCode, out)
	}
	if n := d.cache.len(); n != 0 {
		t.Fatalf("resync left %d stale entries cached", n)
	}
	newBytes := warm()
	for _, p := range paths[:2] {
		if bytes.Equal(newBytes[p], goodBytes[p]) {
			t.Fatalf("post-resync GET %s still serves pre-quarantine bytes", p)
		}
	}
}

// TestCacheLRUEviction: the per-deployment artifact cache is bounded;
// filling it past CacheEntries evicts least-recently-used entries and
// counts them.
func TestCacheLRUEviction(t *testing.T) {
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 41, CacheEntries: 3})
	postRound(t, ts, "d0")
	d := s.deps["d0"]

	evBefore := counter("cache_evictions")
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/v1/deployments/d0/raster?rows=%d&cols=%d", 8+i, 8+i)
		if code, _, _ := fetch(t, ts, path); code != http.StatusOK {
			t.Fatalf("GET %s failed", path)
		}
	}
	if n := d.cache.len(); n != 3 {
		t.Fatalf("cache holds %d entries, want bound 3", n)
	}
	if got := counter("cache_evictions") - evBefore; got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
	// The most recent resolutions survived: re-fetching them is all hits.
	missesBefore := counter("cache_misses")
	for i := 3; i < 6; i++ {
		fetch(t, ts, fmt.Sprintf("/v1/deployments/d0/raster?rows=%d&cols=%d", 8+i, 8+i))
	}
	if counter("cache_misses") != missesBefore {
		t.Fatal("recently used entries were evicted before older ones")
	}
}

// TestCacheColdMissSingleflight is the concurrency race for the fill
// path: many concurrent cold requests for one uncached raster must
// coalesce into exactly one render, all receiving identical bytes.
// Run under -race this also proves the fill handoff is properly
// synchronized.
func TestCacheColdMissSingleflight(t *testing.T) {
	_, ts := bootServer(t, Config{Deployments: 1, Seed: 47, RasterInflight: 1})
	postRound(t, ts, "d0")

	const concurrent = 16
	missesBefore := counter("cache_misses")
	hitsBefore, coalescedBefore := counter("cache_hits"), counter("singleflight_coalesced")
	var wg sync.WaitGroup
	bodies := make([][]byte, concurrent)
	codes := make([]int, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/deployments/d0/raster?rows=80&cols=80")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()

	for i := 0; i < concurrent; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (coalesced fills must never be shed)", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d received different bytes than request 0", i)
		}
	}
	// Exactly one render ran — RasterInflight is 1, so had any fill not
	// coalesced it would have been shed with a 429 above.
	if got := counter("cache_misses") - missesBefore; got != 1 {
		t.Fatalf("%d renders for one key, want exactly 1", got)
	}
	waited := (counter("cache_hits") - hitsBefore) + (counter("singleflight_coalesced") - coalescedBefore)
	if waited != concurrent-1 {
		t.Fatalf("hits+coalesced = %d, want %d", waited, concurrent-1)
	}
	if counter("singleflight_coalesced") == coalescedBefore {
		t.Log("note: no request coalesced mid-fill (all arrived after fill); timing-dependent but bytes still verified")
	}
}

// TestRestoreCollidingVersion: a restored server that re-reaches a
// version number the dead process also served must serve bytes rendered
// from its *own* ingests, never the other process's cached artifacts —
// even though both publish the same ETag string.
func TestRestoreCollidingVersion(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Deployments: 1, Nodes: 300, Seed: 21, Oracle: true, OracleRes: 32,
		CheckpointDir: dir, CheckpointEvery: 3}

	// Server A: three simulated rounds (checkpoint lands at v3), then a
	// pushed batch X -> v4, cache warmed at v4.
	a, tsA := bootServer(t, cfg)
	for i := 0; i < 3; i++ {
		postRound(t, tsA, "d0")
	}
	rdX, err := a.deps["d0"].src.Next()
	if err != nil {
		t.Fatal(err)
	}
	rdY, err := a.deps["d0"].src.Next()
	if err != nil {
		t.Fatal(err)
	}
	pushBatch := func(ts *httptest.Server, body ingestBody) map[string]any {
		t.Helper()
		payload, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/deployments/d0/rounds", "application/json", strings.NewReader(string(payload)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push: status %d (%v)", resp.StatusCode, out)
		}
		return out
	}
	outA := pushBatch(tsA, ingestBody{Reports: rdX.Reports, SinkValue: rdX.SinkValue})
	bytesA := map[string][]byte{}
	for _, p := range queryPaths("d0") {
		_, _, bytesA[p] = fetch(t, tsA, p)
	}

	// Server B: restores at v3, then pushes a *different* batch Y -> v4.
	// Same version number, same ETag string, different content.
	restoresBefore := counter("restores")
	b, tsB := bootServer(t, cfg)
	if counter("restores") != restoresBefore+1 {
		t.Fatal("restart did not restore from the checkpoint")
	}
	if v := b.deps["d0"].version; v != 3 {
		t.Fatalf("restored at version %d, want 3", v)
	}
	outB := pushBatch(tsB, ingestBody{Reports: rdY.Reports, SinkValue: rdY.SinkValue})
	if outA["etag"] != outB["etag"] {
		t.Fatalf("versions did not collide: %v vs %v", outA["etag"], outB["etag"])
	}

	// B's v4 bytes must be self-consistent (cold == warm) and must not be
	// A's v4 bytes: the colliding ETag names different content per
	// process, and the cache never crosses that line.
	diverged := false
	for _, p := range queryPaths("d0") {
		_, etag, cold := fetch(t, tsB, p)
		_, _, warm := fetch(t, tsB, p)
		if etag != outB["etag"] {
			t.Fatalf("GET %s: ETag %q, want %v", p, etag, outB["etag"])
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("GET %s: restored server's warm bytes diverge from its cold render", p)
		}
		if !bytes.Equal(cold, bytesA[p]) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("batches X and Y produced identical bytes on every path; test proves nothing — pick different rounds")
	}
}

// TestParallelIngestWorkersGauge: the configured ingest worker width is
// published as a gauge.
func TestParallelIngestWorkersGauge(t *testing.T) {
	bootServer(t, Config{Deployments: 1, Seed: 3, Workers: 3})
	g := serveVars().Get("parallel_ingest_workers")
	if g == nil {
		t.Fatal("parallel_ingest_workers not published")
	}
	if got := g.(*expvar.Int).Value(); got != 3 {
		t.Fatalf("parallel_ingest_workers = %d, want 3", got)
	}
}
