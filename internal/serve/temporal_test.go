package serve

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTemporalDeltaServing: a delta-mode deployment over a drifting
// field serves a non-empty aged belief every round, rotates its ETag as
// the field moves, and two same-config servers stay byte-identical —
// the HTTP layer adds no nondeterminism on top of the delta engine.
func TestTemporalDeltaServing(t *testing.T) {
	cfg := Config{Deployments: 1, Nodes: 300, Seed: 33, Oracle: true, OracleRes: 32,
		TemporalField: "drift", FieldSpeed: 0.5, Delta: true, DeltaExpiry: 4}
	_, tsA := bootServer(t, cfg)
	_, tsB := bootServer(t, cfg)
	prevTag := ""
	for i := 0; i < 3; i++ {
		ra := postRound(t, tsA, "d0")
		rb := postRound(t, tsB, "d0")
		if ra["etag"] != rb["etag"] || ra["reports"] != rb["reports"] {
			t.Fatalf("round %d diverged between same-config delta servers: %v vs %v", i+1, ra, rb)
		}
		if n, ok := ra["reports"].(float64); !ok || n <= 0 {
			t.Fatalf("round %d served an empty belief: %v", i+1, ra)
		}
		if tag := ra["etag"].(string); tag == prevTag {
			t.Fatalf("round %d did not rotate the ETag on a moving field", i+1)
		} else {
			prevTag = tag
		}
		compareServing(t, tsA, tsB, ra["etag"].(string))
	}
}

// TestTemporalCheckpointRestore extends the kill-and-restart contract to
// delta mode: restoring a checkpointed delta deployment replays the
// protocol state (source-side memory, aged belief, expiry clocks) and
// continues the continuous stream byte-identically.
func TestTemporalCheckpointRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Deployments: 1, Nodes: 300, Seed: 27, FaultEvery: 3, Oracle: true, OracleRes: 32,
		TemporalField: "drift", FieldSpeed: 0.5, Delta: true, DeltaExpiry: 4,
		CheckpointDir: dir, CheckpointEvery: 2}

	_, tsA := bootServer(t, cfg)
	for i := 0; i < 4; i++ {
		postRound(t, tsA, "d0")
	}
	if _, err := os.Stat(filepath.Join(dir, "d0.json")); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	restoresBefore := counter("restores")
	b, tsB := bootServer(t, cfg)
	if counter("restores") != restoresBefore+1 {
		t.Fatal("restart did not restore from the checkpoint")
	}
	if r := b.deps["d0"].src.Round(); r != 4 {
		t.Fatalf("restored round source at %d, want 4", r)
	}
	compareServing(t, tsA, tsB, "at delta restore")
	for i := 0; i < 2; i++ {
		ra := postRound(t, tsA, "d0")
		rb := postRound(t, tsB, "d0")
		if ra["etag"] != rb["etag"] || ra["reports"] != rb["reports"] {
			t.Fatalf("round %d diverged after delta restore: %v vs %v", i+5, ra, rb)
		}
		compareServing(t, tsA, tsB, ra["etag"].(string))
	}
}

// TestTemporalIdentityMismatch: a checkpoint written under one temporal
// configuration must refuse to boot under another — field kind, speed,
// protocol mode and expiry all participate in the identity, and a legacy
// static/full checkpoint stays restorable (empty identity both sides).
func TestTemporalIdentityMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Deployments: 1, Nodes: 250, Seed: 61, CheckpointDir: dir,
		TemporalField: "drift", FieldSpeed: 0.5, Delta: true, DeltaExpiry: 4}
	_, ts := bootServer(t, cfg)
	postRound(t, ts, "d0")

	for name, mutate := range map[string]func(*Config){
		"field kind": func(c *Config) { c.TemporalField = "front" },
		"speed":      func(c *Config) { c.FieldSpeed = 1.0 },
		"mode":       func(c *Config) { c.Delta = false },
		"expiry":     func(c *Config) { c.DeltaExpiry = 9 },
		"static":     func(c *Config) { c.TemporalField = ""; c.Delta = false },
	} {
		bad := cfg
		mutate(&bad)
		if _, err := NewServer(bad); err == nil {
			t.Errorf("mismatched %s restored without error", name)
		}
	}
}
