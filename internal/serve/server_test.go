package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func bootServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 300
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp
}

func postRound(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/deployments/"+id+"/rounds", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST rounds: status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerLifecycle covers the serving loop end to end: 503 before the
// first round, rounds advancing versions, ETags changing with content and
// 304s while quiet — all under oracle verification.
func TestServerLifecycle(t *testing.T) {
	_, ts := bootServer(t, Config{Deployments: 2, Seed: 4, FaultEvery: 3, Oracle: true, OracleRes: 48})

	if resp := getJSON(t, ts, "/v1/deployments/d0/classify?x=5&y=5", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-round classify: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/v1/deployments/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown deployment: status %d, want 404", resp.StatusCode)
	}

	r1 := postRound(t, ts, "d0")
	etag1 := r1["etag"].(string)
	if etag1 == "" || !strings.HasPrefix(etag1, `"d0-v`) {
		t.Fatalf("bad etag %q", etag1)
	}

	var meta map[string]any
	resp := getJSON(t, ts, "/v1/deployments/d0", &meta)
	if resp.Header.Get("ETag") != etag1 {
		t.Fatalf("meta ETag %q, want %q", resp.Header.Get("ETag"), etag1)
	}
	if meta["version"].(float64) != 1 {
		t.Fatalf("version %v, want 1", meta["version"])
	}

	// Conditional request against the current version: 304, no body work.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/deployments/d0/classify?x=5&y=5", nil)
	req.Header.Set("If-None-Match", etag1)
	nm, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	nm.Body.Close()
	if nm.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional classify: status %d, want 304", nm.StatusCode)
	}

	// Rounds 2..4 (round 3 crash-faulted) must keep the oracle green and
	// move the ETag every time.
	prev := etag1
	for round := 2; round <= 4; round++ {
		r := postRound(t, ts, "d0")
		if r["etag"].(string) == prev {
			t.Fatalf("round %d: etag did not change", round)
		}
		prev = r["etag"].(string)
		if round == 3 && r["faulted"] != true {
			t.Fatalf("round 3 not faulted: %v", r)
		}
	}

	// The old ETag now misses: full response with the new tag.
	req.Header.Set("If-None-Match", etag1)
	hit, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hit.Body.Close()
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("stale conditional: status %d, want 200", hit.StatusCode)
	}
	if hit.Header.Get("ETag") == etag1 {
		t.Fatal("stale conditional still served old ETag")
	}

	// Deployments are independent: d1 has seen no rounds.
	if resp := getJSON(t, ts, "/v1/deployments/d1/classify?x=1&y=1", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("d1 classify: status %d, want 503", resp.StatusCode)
	}
}

// TestServerQueryEndpoints exercises polylines, range classification and
// both raster formats against one settled deployment.
func TestServerQueryEndpoints(t *testing.T) {
	_, ts := bootServer(t, Config{Deployments: 1, Seed: 6, Oracle: true, OracleRes: 40})
	postRound(t, ts, "d0")

	var poly struct {
		Segments [][4]float64 `json:"segments"`
		Level    float64      `json:"level"`
	}
	getJSON(t, ts, "/v1/deployments/d0/levels/0/polyline", &poly)
	if poly.Level == 0 {
		t.Fatalf("polyline level missing: %+v", poly)
	}
	if resp := getJSON(t, ts, "/v1/deployments/d0/levels/99/polyline", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range level: status %d, want 400", resp.StatusCode)
	}

	var cls struct {
		Class *int `json:"class"`
	}
	getJSON(t, ts, "/v1/deployments/d0/classify?x=25&y=25", &cls)
	if cls.Class == nil {
		t.Fatal("classify returned no class")
	}
	if resp := getJSON(t, ts, "/v1/deployments/d0/classify?x=bad&y=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad classify args: status %d, want 400", resp.StatusCode)
	}

	var rng struct {
		Cells [][]int `json:"cells"`
	}
	getJSON(t, ts, "/v1/deployments/d0/range?x0=10&y0=10&x1=30&y1=30&rows=4&cols=6", &rng)
	if len(rng.Cells) != 4 || len(rng.Cells[0]) != 6 {
		t.Fatalf("range grid shape %dx%d, want 4x6", len(rng.Cells), len(rng.Cells[0]))
	}
	// The range cell centers must agree with pointwise classification.
	var probe struct {
		Class int `json:"class"`
	}
	getJSON(t, ts, "/v1/deployments/d0/classify?x=11.666666666666666&y=12.5", &probe)
	if rng.Cells[0][0] != probe.Class {
		t.Fatalf("range cell (0,0) = %d, pointwise = %d", rng.Cells[0][0], probe.Class)
	}
	if resp := getJSON(t, ts, "/v1/deployments/d0/range?x0=5&y0=5&x1=1&y1=9", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted range: status %d, want 400", resp.StatusCode)
	}

	var ras struct {
		Cells [][]int `json:"cells"`
		Rows  int     `json:"rows"`
	}
	getJSON(t, ts, "/v1/deployments/d0/raster?rows=20&cols=24", &ras)
	if ras.Rows != 20 || len(ras.Cells) != 20 || len(ras.Cells[0]) != 24 {
		t.Fatalf("raster shape mismatch: %+v", ras.Rows)
	}

	resp, err := http.Get(ts.URL + "/v1/deployments/d0/raster?rows=8&cols=8&format=pgm")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.HasPrefix(string(body[:n]), "P2\n8 8\n255\n") {
		t.Fatalf("pgm header = %q", string(body[:n]))
	}
	if resp := getJSON(t, ts, "/v1/deployments/d0/raster?rows=0&cols=5", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-dim raster: status %d, want 400", resp.StatusCode)
	}

	var list struct {
		Deployments []struct {
			ID      string `json:"id"`
			Version int    `json:"version"`
		} `json:"deployments"`
	}
	getJSON(t, ts, "/v1/deployments", &list)
	if len(list.Deployments) != 1 || list.Deployments[0].Version != 1 {
		t.Fatalf("list = %+v", list)
	}
}

// TestServerPushedReports: POST with a body ingests external reports and
// the oracle still verifies the incremental build over them.
func TestServerPushedReports(t *testing.T) {
	s, ts := bootServer(t, Config{Deployments: 1, Seed: 8, Oracle: true, OracleRes: 32})
	d := s.deps["d0"]

	// Borrow a simulated round's reports, then push them externally.
	rd, err := d.src.Next()
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(ingestBody{Reports: rd.Reports, SinkValue: rd.SinkValue})
	resp, err := http.Post(ts.URL+"/v1/deployments/d0/rounds", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pushed round: status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["reports"].(float64) != float64(len(rd.Reports)) {
		t.Fatalf("ingested %v reports, want %d", out["reports"], len(rd.Reports))
	}

	bad, err := http.Post(ts.URL+"/v1/deployments/d0/rounds", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", bad.StatusCode)
	}
}
