package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosPlanDeterminism: the schedule is a pure function of (seed,
// deployment, attempt) — two plans agree everywhere, and rates behave.
func TestChaosPlanDeterminism(t *testing.T) {
	a := NewChaosPlan(ChaosConfig{Seed: 5, PanicRate: 0.2, DivergeRate: 0.3, SlowRate: 0.1, CorruptRate: 0.25})
	b := NewChaosPlan(ChaosConfig{Seed: 5, PanicRate: 0.2, DivergeRate: 0.3, SlowRate: 0.1, CorruptRate: 0.25})
	fired := map[string]int{}
	for attempt := 1; attempt <= 400; attempt++ {
		for _, dep := range []string{"d0", "d1"} {
			if a.Panic(dep, attempt) != b.Panic(dep, attempt) ||
				a.Diverge(dep, attempt) != b.Diverge(dep, attempt) ||
				a.SlowDelay(dep, attempt) != b.SlowDelay(dep, attempt) ||
				a.Corrupt(dep, attempt) != b.Corrupt(dep, attempt) {
				t.Fatalf("plans diverged at (%s, %d)", dep, attempt)
			}
			if a.Panic(dep, attempt) {
				fired["panic"]++
			}
			if a.Diverge(dep, attempt) {
				fired["diverge"]++
			}
			if a.SlowDelay(dep, attempt) > 0 {
				fired["slow"]++
			}
		}
	}
	for kind, n := range fired {
		if n == 0 {
			t.Fatalf("kind %s never fired in 800 cells", kind)
		}
	}
	// Independence across deployments: d0 and d1 schedules differ.
	same := true
	for attempt := 1; attempt <= 100; attempt++ {
		if a.Panic("d0", attempt) != a.Panic("d1", attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("d0 and d1 share a panic schedule")
	}
	var nilPlan *ChaosPlan
	if nilPlan.Panic("d0", 1) || nilPlan.Diverge("d0", 1) || nilPlan.SlowDelay("d0", 1) != 0 || nilPlan.Corrupt("d0", 1) {
		t.Fatal("nil plan injected")
	}
}

// corruptBody renders a pushed batch as raw JSON with an out-of-range
// coordinate literal — the wire form of a corrupted batch (JSON itself
// cannot spell NaN; 1e999 overflows float64 and must be rejected).
func corruptBody() string {
	return `{"reports":[{"level":6,"levelIndex":0,"pos":{"x":1e999,"y":12},"grad":{"x":1,"y":0},"source":7}],"sinkValue":5}`
}

// TestChaosSoak is the acceptance soak: a supervised server under a
// seeded chaos plan (panics, synthetic divergences, slow rounds) with
// oracle mode on and checkpointing enabled, queried concurrently
// (meaningful under -race). Assertions: the server keeps publishing
// through the chaos; queries during degradation serve the last good
// snapshot with staleness metadata; no response ever pairs a version
// with another version's ETag; corrupted pushed batches bounce with 400
// and advance nothing; and once the chaos lifts, every deployment
// returns to healthy within K rounds and /readyz flips back.
func TestChaosSoak(t *testing.T) {
	plan := NewChaosPlan(ChaosConfig{Seed: 77, PanicRate: 0.12, DivergeRate: 0.15, SlowRate: 0.1, SlowDelay: time.Millisecond})
	s, ts := bootServer(t, Config{
		Deployments: 2, Nodes: 250, Seed: 41, FaultEvery: 4,
		Oracle: true, OracleRes: 32,
		CheckpointDir: t.TempDir(), CheckpointEvery: 3,
		Chaos: plan,
	})
	divBefore := counter("divergences")
	panicsBefore := counter("panics_recovered")
	resyncsBefore := counter("resyncs")
	ckBefore := counter("checkpoints")

	s.Start(SupervisorConfig{Interval: time.Millisecond, BackoffBase: time.Millisecond,
		BackoffMax: 4 * time.Millisecond, BreakerAfter: 4})
	defer s.Stop()

	// Concurrent query load across both deployments for the whole soak.
	etagRe := regexp.MustCompile(`^"(d\d+)-v(\d+)"$`)
	// One ETag, one body: every response under a given ETag must be
	// byte-identical for the soak's lifetime, whether it was served from
	// the artifact cache, re-rendered after an eviction, or rendered from
	// the snapshot map while the engine sat quarantined. This is the
	// cache-key half of the desync invariant.
	var etagBodies sync.Map // etag string -> body string
	var stop atomic.Bool
	var sawStale atomic.Bool
	var wg sync.WaitGroup
	queryErr := make(chan error, 16)
	reportErr := func(format string, args ...any) {
		select {
		case queryErr <- fmt.Errorf(format, args...):
		default:
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dep := fmt.Sprintf("d%d", w%2)
			for !stop.Load() {
				// Raster: the response version must match the ETag — the
				// desync invariant, probed mid-quarantine and mid-resync.
				resp, err := http.Get(ts.URL + "/v1/deployments/" + dep + "/raster?rows=8&cols=8")
				if err != nil {
					reportErr("raster: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var out struct {
						Version int `json:"version"`
					}
					if err := json.Unmarshal(body, &out); err != nil {
						reportErr("raster body: %v", err)
						return
					}
					mm := etagRe.FindStringSubmatch(resp.Header.Get("ETag"))
					if mm == nil {
						reportErr("raster ETag %q unparseable", resp.Header.Get("ETag"))
						return
					}
					if v, _ := strconv.Atoi(mm[2]); v != out.Version {
						reportErr("DESYNC: raster version %d under ETag %s", out.Version, resp.Header.Get("ETag"))
						return
					}
					if prev, loaded := etagBodies.LoadOrStore(resp.Header.Get("ETag"), string(body)); loaded && prev.(string) != string(body) {
						reportErr("DESYNC: ETag %s served two different bodies", resp.Header.Get("ETag"))
						return
					}
					if resp.Header.Get("Warning") != "" {
						sawStale.Store(true)
						if resp.Header.Get("X-Stale-Rounds") == "" {
							reportErr("Warning without X-Stale-Rounds")
							return
						}
					}
				case http.StatusConflict, http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Superseded, shed, or pre-first-round: legitimate.
				default:
					reportErr("raster status %d: %s", resp.StatusCode, body)
					return
				}
				// Corrupted pushed batches must bounce without advancing.
				if w == 0 {
					resp, err := http.Post(ts.URL+"/v1/deployments/"+dep+"/rounds", "application/json",
						strings.NewReader(corruptBody()))
					if err != nil {
						reportErr("corrupt post: %v", err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusBadRequest {
						reportErr("corrupt batch: status %d, want 400", resp.StatusCode)
						return
					}
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w)
	}

	// Soak until every chaos kind has fired and both deployments have
	// published a healthy number of rounds.
	waitFor(t, 60*time.Second, "chaos kinds + progress", func() bool {
		select {
		case err := <-queryErr:
			t.Fatal(err)
		default:
		}
		if counter("divergences") <= divBefore || counter("panics_recovered") <= panicsBefore ||
			counter("resyncs") <= resyncsBefore || counter("checkpoints") <= ckBefore {
			return false
		}
		for _, id := range []string{"d0", "d1"} {
			if s.deps[id].snap.Load() == nil || s.deps[id].snap.Load().version < 12 {
				return false
			}
		}
		return true
	})

	// Lift the chaos: every deployment must return to healthy within K
	// published rounds, and readiness must flip back.
	const K = 5
	s.SetChaos(nil)
	versionAt := map[string]int{}
	for _, id := range []string{"d0", "d1"} {
		versionAt[id] = s.deps[id].snap.Load().version
	}
	waitFor(t, 30*time.Second, "post-chaos recovery", func() bool {
		for _, id := range []string{"d0", "d1"} {
			h := s.deps[id].health.Load()
			if h.Degraded || h.CrashLooping {
				if s.deps[id].snap.Load().version > versionAt[id]+K {
					t.Fatalf("%s still %+v after %d rounds past chaos", id, h, K)
				}
				return false
			}
		}
		resp := getJSON(t, ts, "/readyz", nil)
		return resp.StatusCode == http.StatusOK
	})
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-queryErr:
		t.Fatal(err)
	default:
	}
	if !sawStale.Load() {
		t.Log("note: no query observed a degraded window (timing-dependent; staleness is separately pinned by TestQuarantineResync)")
	}
}
