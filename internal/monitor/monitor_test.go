package monitor

import (
	"testing"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func session(t *testing.T, temporal TemporalConfig) (*Monitor, field.DynamicField) {
	t.Helper()
	base := field.NewSeabed(field.DefaultSeabedConfig())
	dyn := field.DefaultSilting(base)
	nw, err := network.DeployUniform(2500, base, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tree, Config{
		Query:    q,
		Filter:   core.DefaultFilterConfig(),
		Temporal: temporal,
		Options:  contour.DefaultOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, dyn
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("want error for nil tree")
	}
	base := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(50, base, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tree, Config{}); err == nil {
		t.Error("want error for empty query")
	}
}

func TestStaticFieldSuppressesSteadyState(t *testing.T) {
	m, _ := session(t, DefaultTemporal())
	static := field.NewSeabed(field.DefaultSeabedConfig())

	first, err := m.Round(static)
	if err != nil {
		t.Fatal(err)
	}
	if first.Delivered == 0 {
		t.Fatal("first round delivered nothing")
	}
	if first.Suppressed != 0 {
		t.Errorf("first round suppressed %d (nothing to compare against)", first.Suppressed)
	}

	second, err := m.Round(static)
	if err != nil {
		t.Fatal(err)
	}
	// On an unchanged field every repeated report is suppressed.
	if second.Delivered != 0 {
		t.Errorf("static field round 2 delivered %d reports, want 0", second.Delivered)
	}
	if second.Suppressed == 0 {
		t.Error("static field round 2 suppressed nothing")
	}
	if second.TrafficKB >= first.TrafficKB/2 {
		t.Errorf("steady-state traffic %.2f KB not far below first round %.2f KB",
			second.TrafficKB, first.TrafficKB)
	}
	// The sink's belief persists.
	if second.CachedReports != first.CachedReports {
		t.Errorf("cache shrank: %d -> %d", first.CachedReports, second.CachedReports)
	}
}

func TestChangingFieldTriggersReports(t *testing.T) {
	m, dyn := session(t, DefaultTemporal())
	if _, err := m.Round(dyn.At(0)); err != nil {
		t.Fatal(err)
	}
	later, err := m.Round(dyn.At(8)) // past the storm: large depth change
	if err != nil {
		t.Fatal(err)
	}
	if later.Delivered == 0 {
		t.Error("silted field produced no new reports")
	}
	if later.Retired == 0 {
		t.Error("silted field retired no stale reports (isolines moved)")
	}
}

func TestWithoutTemporalEveryRoundPaysFull(t *testing.T) {
	m, _ := session(t, TemporalConfig{})
	static := field.NewSeabed(field.DefaultSeabedConfig())
	r1, err := m.Round(static)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Round(static)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Delivered == 0 {
		t.Error("non-temporal round 2 delivered nothing")
	}
	// Round 2 has no query dissemination, so compare deliveries instead.
	if r2.Delivered != r1.Delivered {
		t.Errorf("non-temporal deliveries differ: %d vs %d", r1.Delivered, r2.Delivered)
	}
	if m.Rounds() != 2 {
		t.Errorf("Rounds = %d", m.Rounds())
	}
}

func TestMonitoringMapStaysAccurate(t *testing.T) {
	m, dyn := session(t, DefaultTemporal())
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	for _, tm := range []float64{0, 2, 8} {
		snap := dyn.At(tm)
		st, err := m.Round(snap)
		if err != nil {
			t.Fatal(err)
		}
		truth := field.ClassifyRaster(snap, levels, 96, 96)
		acc := field.Agreement(truth, st.Map.Raster(96, 96))
		if acc < 0.75 {
			t.Errorf("t=%v: monitored map accuracy %.3f, want >= 0.75", tm, acc)
		}
	}
}

func TestCumulativeTrafficMonotone(t *testing.T) {
	m, dyn := session(t, DefaultTemporal())
	var prev float64
	for i := 0; i < 4; i++ {
		st, err := m.Round(dyn.At(float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if st.CumulativeTrafficKB < prev {
			t.Fatalf("cumulative traffic decreased: %v -> %v", prev, st.CumulativeTrafficKB)
		}
		prev = st.CumulativeTrafficKB
		if st.Round != i {
			t.Fatalf("round numbering: got %d want %d", st.Round, i)
		}
	}
}

func TestTemporalSavesTrafficOnSlowField(t *testing.T) {
	run := func(temporal TemporalConfig) float64 {
		m, dyn := session(t, temporal)
		var total float64
		for i := 0; i < 5; i++ {
			st, err := m.Round(dyn.At(float64(i) * 0.5))
			if err != nil {
				t.Fatal(err)
			}
			total = st.CumulativeTrafficKB
		}
		return total
	}
	with := run(DefaultTemporal())
	without := run(TemporalConfig{})
	if with >= without {
		t.Errorf("temporal suppression saved nothing: %.1f KB vs %.1f KB", with, without)
	}
}
