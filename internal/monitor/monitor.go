// Package monitor implements continuous contour monitoring on top of the
// Iso-Map protocol — the deployment mode of the paper's motivating harbor
// application, where the silting sea route is mapped round after round
// rather than once (and the paper's stated future work).
//
// Beyond repeating protocol rounds, the monitor adds temporal report
// suppression: an isoline node that already reported the same isolevel
// with a near-identical gradient in the previous round stays silent, and
// the sink reuses its cached report. Nodes that leave an isoline send a
// small retirement notice so the sink drops the stale report. On a slowly
// changing field this cuts steady-state traffic far below even Iso-Map's
// per-round O(sqrt n).
package monitor

import (
	"fmt"
	"sort"

	"isomap/internal/contour"
	"isomap/internal/core"
	"isomap/internal/energy"
	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// RetireBytes is the wire size of a retirement notice: isolevel + node
// position (the sink keys cached reports by source), three 2-byte
// parameters.
const RetireBytes = 6

// TemporalConfig tunes cross-round suppression.
type TemporalConfig struct {
	// Enabled turns temporal suppression on.
	Enabled bool
	// MaxAngle is the gradient rotation (radians) below which a repeated
	// report is considered unchanged and suppressed.
	MaxAngle float64
}

// DefaultTemporal suppresses repeats whose gradient rotated less than 10
// degrees.
func DefaultTemporal() TemporalConfig {
	return TemporalConfig{Enabled: true, MaxAngle: 10 * 3.14159265358979 / 180}
}

// Config assembles a monitoring session.
type Config struct {
	Query    core.Query
	Filter   core.FilterConfig
	Temporal TemporalConfig
	// Reconstruct options for the per-round map.
	Options contour.Options
}

// Monitor drives periodic Iso-Map rounds over one routing tree.
type Monitor struct {
	tree *routing.Tree
	cfg  Config
	// cache is the sink's current belief: the freshest report per
	// (source, level).
	cache map[cacheKey]core.Report
	// lastSent is each node's previous-round report set, for source-side
	// suppression decisions.
	lastSent map[cacheKey]core.Report
	round    int
	// cumulative counters across rounds.
	cumTxBytes int64
	cumJoules  float64
}

type cacheKey struct {
	source network.NodeID
	level  int
}

// RoundStats summarizes one monitoring round.
type RoundStats struct {
	// Round is the 0-based round number.
	Round int
	// Generated counts reports produced by isoline nodes this round,
	// before temporal or spatial filtering.
	Generated int
	// Suppressed counts reports silenced by temporal suppression.
	Suppressed int
	// Retired counts stale reports withdrawn this round.
	Retired int
	// Delivered counts reports that reached the sink this round.
	Delivered int
	// CachedReports is the size of the sink's belief after the round.
	CachedReports int
	// TrafficKB is this round's transmitted volume.
	TrafficKB float64
	// CumulativeTrafficKB sums all rounds so far.
	CumulativeTrafficKB float64
	// MeanEnergyJ is the cumulative per-node energy so far.
	MeanEnergyJ float64
	// Map is the contour map reconstructed from the sink's belief.
	Map *contour.Map
}

// New creates a monitoring session over an existing routing tree.
func New(tree *routing.Tree, cfg Config) (*Monitor, error) {
	if tree == nil {
		return nil, fmt.Errorf("monitor: nil routing tree")
	}
	if cfg.Query.Levels.Step <= 0 {
		return nil, fmt.Errorf("monitor: query has no isolevel scheme")
	}
	return &Monitor{
		tree:     tree,
		cfg:      cfg,
		cache:    make(map[cacheKey]core.Report),
		lastSent: make(map[cacheKey]core.Report),
	}, nil
}

// Round executes one monitoring round against the current state of the
// field (pass a time-varying field's snapshot to track change).
func (m *Monitor) Round(f field.Field) (*RoundStats, error) {
	nw := m.tree.Network()
	nw.Sense(f)

	c := metrics.NewCounters(nw.Len())
	if m.round == 0 {
		// The query is disseminated once, at session start.
		core.DisseminateQuery(m.tree, c)
	}

	generated := core.DetectIsolineNodes(nw, m.cfg.Query, c)

	// Source-side temporal suppression.
	toSend := make([]core.Report, 0, len(generated))
	current := make(map[cacheKey]core.Report, len(generated))
	suppressed := 0
	for _, r := range generated {
		if !m.tree.Reachable(r.Source) {
			continue
		}
		key := cacheKey{source: r.Source, level: r.LevelIndex}
		current[key] = r
		if m.cfg.Temporal.Enabled {
			if prev, ok := m.lastSent[key]; ok &&
				core.AngularSeparation(prev, r) < m.cfg.Temporal.MaxAngle {
				suppressed++
				continue
			}
		}
		toSend = append(toSend, r)
	}

	// Retirement notices for nodes that left their isolines. A node
	// retiring several levels batches them into one notice (position +
	// one isolevel parameter per retired level).
	retired := 0
	if m.cfg.Temporal.Enabled {
		retiresBySource := make(map[network.NodeID]int)
		for key := range m.lastSent {
			if _, still := current[key]; still {
				continue
			}
			retiresBySource[key.source]++
			delete(m.cache, key)
			delete(m.lastSent, key)
			retired++
		}
		for source, count := range retiresBySource {
			if !m.tree.Reachable(source) || !nw.Alive(source) {
				continue
			}
			c.SendToSink(m.tree.PathToSink(source), RetireBytes+2*(count-1))
		}
	}

	delivered := core.DeliverReports(m.tree, toSend, m.cfg.Filter, c)
	for _, r := range delivered {
		m.cache[cacheKey{source: r.Source, level: r.LevelIndex}] = r
	}
	// Remember what each source attempted to send; suppression compares
	// against the last transmission attempt.
	for _, r := range toSend {
		m.lastSent[cacheKey{source: r.Source, level: r.LevelIndex}] = r
	}
	if !m.cfg.Temporal.Enabled {
		// Without temporal state the sink belief is just this round.
		m.cache = make(map[cacheKey]core.Report, len(delivered))
		for _, r := range delivered {
			m.cache[cacheKey{source: r.Source, level: r.LevelIndex}] = r
		}
	}

	m.cumTxBytes += c.TotalTxBytes()
	m.cumJoules += energy.MeanNodeJoules(c)

	believed := make([]core.Report, 0, len(m.cache))
	for _, r := range m.cache {
		believed = append(believed, r)
	}
	// Map iteration is randomized; fix the order so reconstructions are
	// reproducible.
	sort.Slice(believed, func(i, j int) bool {
		if believed[i].Source != believed[j].Source {
			return believed[i].Source < believed[j].Source
		}
		return believed[i].LevelIndex < believed[j].LevelIndex
	})
	sinkValue := nw.Node(m.tree.Root()).Value
	mp := contour.Reconstruct(believed, m.cfg.Query.Levels,
		nw.Bounds(), sinkValue, m.cfg.Options)

	stats := &RoundStats{
		Round:               m.round,
		Generated:           len(generated),
		Suppressed:          suppressed,
		Retired:             retired,
		Delivered:           len(delivered),
		CachedReports:       len(m.cache),
		TrafficKB:           c.TrafficKB(),
		CumulativeTrafficKB: float64(m.cumTxBytes) / 1024,
		MeanEnergyJ:         m.cumJoules,
		Map:                 mp,
	}
	m.round++
	return stats, nil
}

// Rounds returns the number of completed rounds.
func (m *Monitor) Rounds() int { return m.round }
