package monitor

import (
	"reflect"
	"testing"

	"isomap/internal/core"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/trace"
)

func agedReport(source network.NodeID, level int, v float64) core.Report {
	return core.Report{
		Level: v, LevelIndex: level, Source: source,
		Pos:  geom.Point{X: float64(source), Y: float64(level)},
		Grad: geom.Vec{X: 1},
	}
}

func retireReport(source network.NodeID, level int) core.Report {
	r := agedReport(source, level, 0)
	r.Retire = true
	return r
}

func TestNewAgedMapValidation(t *testing.T) {
	if _, err := NewAgedMap(AgedConfig{ExpiryRounds: -1}); err == nil {
		t.Error("accepted negative expiry")
	}
	m, err := NewAgedMap(AgedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 || m.MeanAge(5) != 0 {
		t.Errorf("fresh map: len=%d meanAge=%g", m.Len(), m.MeanAge(5))
	}
}

// TestAgedMapUpsertRetire pins the belief semantics: data reports upsert
// their (source, level) entry, retirements withdraw it, and Reports()
// returns the deterministic (source, level) order.
func TestAgedMapUpsertRetire(t *testing.T) {
	m, err := NewAgedMap(AgedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Apply(1, []core.Report{
		agedReport(9, 0, 6), agedReport(3, 1, 8), agedReport(3, 0, 6),
	}, nil)
	if st.Fresh != 3 || st.Size != 3 {
		t.Fatalf("round 1 stats: %+v", st)
	}
	// Refresh one entry with a moved position, retire another, retire a
	// never-tracked entry (lost report; must be a no-op, not a count).
	moved := agedReport(3, 0, 6)
	moved.Pos.X = 99
	st = m.Apply(2, []core.Report{moved, retireReport(9, 0), retireReport(100, 2)}, nil)
	if st.Fresh != 1 || st.Retired != 1 || st.Size != 2 {
		t.Fatalf("round 2 stats: %+v", st)
	}
	got := m.Reports()
	want := []core.Report{moved, agedReport(3, 1, 8)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("belief = %+v, want %+v", got, want)
	}
	if age := m.MeanAge(2); age != 0.5 {
		t.Errorf("mean age = %g, want 0.5 (one fresh, one from round 1)", age)
	}
	if ages := m.Ages(2); ages[3] != 1 {
		t.Errorf("source 3 oldest age = %d, want 1", ages[3])
	}
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("reset left %d entries", m.Len())
	}
}

// TestAgedMapExpiry: entries not refreshed within ExpiryRounds are
// dropped, in deterministic order, emitting one KindAgeExpire event each;
// with aging disabled nothing ever expires.
func TestAgedMapExpiry(t *testing.T) {
	m, err := NewAgedMap(AgedConfig{ExpiryRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Apply(1, []core.Report{agedReport(5, 0, 6), agedReport(2, 1, 8)}, nil)
	// Round 2 refreshes only source 2; round 3 is empty. After round 3 the
	// source-5 entry (age 2) still survives; after round 4 it expires.
	m.Apply(2, []core.Report{agedReport(2, 1, 8)}, nil)
	if st := m.Apply(3, nil, nil); st.Expired != 0 || st.Size != 2 {
		t.Fatalf("round 3 stats: %+v", st)
	}
	rec := trace.NewRecorder(16)
	st := m.Apply(4, nil, rec)
	if st.Expired != 1 || st.Size != 1 {
		t.Fatalf("round 4 stats: %+v", st)
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != trace.KindAgeExpire || evs[0].Node != 5 || evs[0].Arg != 0 {
		t.Fatalf("expiry events = %+v", evs)
	}
	// Aging disabled: the same sequence keeps both entries forever.
	forever, err := NewAgedMap(AgedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	forever.Apply(1, []core.Report{agedReport(5, 0, 6), agedReport(2, 1, 8)}, nil)
	if st := forever.Apply(1000, nil, nil); st.Expired != 0 || st.Size != 2 {
		t.Fatalf("unaged map expired entries: %+v", st)
	}
}

// TestAgedMapExpiryOrder: expiry iteration must be sorted (source, then
// level) regardless of map iteration order, so traces and stats are
// replay-stable.
func TestAgedMapExpiryOrder(t *testing.T) {
	m, err := NewAgedMap(AgedConfig{ExpiryRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	var batch []core.Report
	for s := 20; s >= 1; s-- {
		batch = append(batch, agedReport(network.NodeID(s), s%3, 6))
	}
	m.Apply(1, batch, nil)
	rec := trace.NewRecorder(64)
	st := m.Apply(3, nil, rec)
	if st.Expired != 20 {
		t.Fatalf("expired %d of 20", st.Expired)
	}
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Node < evs[i-1].Node {
			t.Fatalf("expiry order not sorted: node %d after %d", evs[i].Node, evs[i-1].Node)
		}
	}
}
