package monitor

import (
	"fmt"
	"sort"

	"isomap/internal/core"
	"isomap/internal/network"
	"isomap/internal/trace"
)

// AgedMap is the sink half of the delta-report protocol (the packet-level
// counterpart of Monitor's seed-layer cache): the sink's current belief
// as a report per (source, isolevel), each entry stamped with the round
// that last refreshed it. Delta rounds feed it what the network
// delivered — crossing reports upsert their entry, retirement records
// withdraw theirs — and the merged, deterministically ordered view feeds
// contour reconstruction.
//
// Aging is the staleness guard: a retirement lost to the radio would
// otherwise pin its stale report forever, so entries not refreshed
// within ExpiryRounds rounds are dropped. On a static field (or with
// aging disabled) nothing expires and the belief is exactly the union of
// everything reported minus everything retired.
type AgedMap struct {
	cfg     AgedConfig
	entries map[cacheKey]agedEntry
}

// AgedConfig tunes sink-side retention.
type AgedConfig struct {
	// ExpiryRounds bounds how many rounds an entry survives without a
	// refresh; an entry refreshed at round r is dropped after round
	// r+ExpiryRounds. Zero disables aging entirely.
	ExpiryRounds int
}

type agedEntry struct {
	report core.Report
	round  int // round that last refreshed the entry
}

// NewAgedMap validates cfg and returns an empty belief.
func NewAgedMap(cfg AgedConfig) (*AgedMap, error) {
	if cfg.ExpiryRounds < 0 {
		return nil, fmt.Errorf("monitor: negative expiry %d rounds", cfg.ExpiryRounds)
	}
	return &AgedMap{cfg: cfg, entries: make(map[cacheKey]agedEntry)}, nil
}

// AgedStats tallies one Apply call.
type AgedStats struct {
	// Fresh counts reports upserted, Retired withdrawals honored, and
	// Expired entries aged out this round.
	Fresh   int
	Retired int
	Expired int
	// Size is the belief size after the round.
	Size int
}

// Apply folds one round's delivered reports into the belief and runs the
// expiry pass. round is the 1-based round number; rec, when non-nil,
// receives a KindAgeExpire event per aged-out entry (post-round sink
// events, recorded at T=0 like the reconstruction stages).
func (m *AgedMap) Apply(round int, delivered []core.Report, rec *trace.Recorder) AgedStats {
	var st AgedStats
	for _, r := range delivered {
		key := cacheKey{source: r.Source, level: r.LevelIndex}
		if r.Retire {
			if _, ok := m.entries[key]; ok {
				delete(m.entries, key)
				st.Retired++
			}
			continue
		}
		m.entries[key] = agedEntry{report: r, round: round}
		st.Fresh++
	}
	if m.cfg.ExpiryRounds > 0 {
		var expired []cacheKey
		for key, e := range m.entries {
			if round-e.round > m.cfg.ExpiryRounds {
				expired = append(expired, key)
			}
		}
		// Map iteration is randomized; expire (and trace) in fixed order.
		sort.Slice(expired, func(i, j int) bool {
			if expired[i].source != expired[j].source {
				return expired[i].source < expired[j].source
			}
			return expired[i].level < expired[j].level
		})
		for _, key := range expired {
			delete(m.entries, key)
			st.Expired++
			if rec != nil {
				rec.Record(trace.Event{Kind: trace.KindAgeExpire,
					Node: int32(key.source), Peer: -1, Arg: int32(key.level)})
			}
		}
	}
	st.Size = len(m.entries)
	return st
}

// Reports returns the belief in deterministic (source, isolevel) order —
// the reconstruction feed.
func (m *AgedMap) Reports() []core.Report {
	out := make([]core.Report, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e.report)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].LevelIndex < out[j].LevelIndex
	})
	return out
}

// Len returns the belief size.
func (m *AgedMap) Len() int { return len(m.entries) }

// MeanAge returns the belief's mean staleness in rounds as of round
// (0 for an empty belief): the tracking-error experiments' staleness
// metric.
func (m *AgedMap) MeanAge(round int) float64 {
	if len(m.entries) == 0 {
		return 0
	}
	sum := 0
	for _, e := range m.entries {
		sum += round - e.round
	}
	return float64(sum) / float64(len(m.entries))
}

// Ages returns the per-source staleness of the belief as of round, for
// diagnostics: source -> oldest tracked entry age.
func (m *AgedMap) Ages(round int) map[network.NodeID]int {
	out := make(map[network.NodeID]int)
	for key, e := range m.entries {
		if age := round - e.round; age > out[key.source] {
			out[key.source] = age
		}
	}
	return out
}

// Reset empties the belief.
func (m *AgedMap) Reset() {
	m.entries = make(map[cacheKey]agedEntry)
}
