package render

import (
	"strings"
	"testing"

	"isomap/internal/field"
)

func sample() *field.Raster {
	ra := field.NewRaster(2, 3)
	ra.Cells[0][0] = 0
	ra.Cells[0][1] = 1
	ra.Cells[0][2] = 2
	ra.Cells[1][0] = 3
	ra.Cells[1][1] = 4
	ra.Cells[1][2] = 99 // clamps to last glyph
	return ra
}

func TestASCII(t *testing.T) {
	s := ASCII(sample())
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	// Row 1 (top of output) is raster row 1.
	if lines[0] != "-=@" {
		t.Errorf("top line = %q, want %q", lines[0], "-=@")
	}
	if lines[1] != " .:" {
		t.Errorf("bottom line = %q, want %q", lines[1], " .:")
	}
	if got := ASCII(nil); got != "" {
		t.Errorf("nil ASCII = %q", got)
	}
}

func TestGlyphClamps(t *testing.T) {
	if glyph(-3) != ' ' {
		t.Error("negative class should map to first glyph")
	}
	if glyph(1000) != '@' {
		t.Error("huge class should map to last glyph")
	}
}

func TestSideBySide(t *testing.T) {
	s := SideBySide(sample(), sample(), "truth", "estimate")
	if !strings.Contains(s, "truth") || !strings.Contains(s, "estimate") {
		t.Error("labels missing")
	}
	if !strings.Contains(s, " | ") {
		t.Error("separator missing")
	}
}

func TestPGM(t *testing.T) {
	s := PGM(sample(), 4)
	if !strings.HasPrefix(s, "P2\n3 2\n255\n") {
		t.Fatalf("bad header: %q", s[:20])
	}
	if !strings.Contains(s, "255") {
		t.Error("max gray missing")
	}
	if got := PGM(nil, 4); got != "" {
		t.Errorf("nil PGM = %q", got)
	}
	// Zero maxClass does not divide by zero.
	_ = PGM(sample(), 0)
}
