// Package render turns contour-map rasters into terminal-friendly ASCII
// art and portable graymap (PGM) images, used by the CLI tools and
// examples to visualize the maps the paper shows in Figs. 1, 9 and 10.
package render

import (
	"fmt"
	"strings"

	"isomap/internal/field"
)

// palette maps region indices to glyphs, darkest (deepest region) last.
const palette = " .:-=+*#%@"

// ASCII renders a raster as text, one character per cell, row 0 at the
// bottom (y grows upward, matching field coordinates).
func ASCII(ra *field.Raster) string {
	if ra == nil || ra.Rows == 0 {
		return ""
	}
	var b strings.Builder
	b.Grow((ra.Cols + 1) * ra.Rows)
	for r := ra.Rows - 1; r >= 0; r-- {
		for c := 0; c < ra.Cols; c++ {
			b.WriteByte(glyph(ra.Cells[r][c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func glyph(class int) byte {
	if class < 0 {
		class = 0
	}
	if class >= len(palette) {
		class = len(palette) - 1
	}
	return palette[class]
}

// SideBySide renders two rasters of the same height next to each other
// with labels, for truth-vs-estimate comparisons.
func SideBySide(left, right *field.Raster, leftLabel, rightLabel string) string {
	l := strings.Split(strings.TrimRight(ASCII(left), "\n"), "\n")
	r := strings.Split(strings.TrimRight(ASCII(right), "\n"), "\n")
	if len(l) != len(r) {
		return ASCII(left) + "\n" + ASCII(right)
	}
	width := 0
	for _, line := range l {
		if len(line) > width {
			width = len(line)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s   %s\n", width, leftLabel, rightLabel)
	for i := range l {
		fmt.Fprintf(&b, "%-*s | %s\n", width, l[i], r[i])
	}
	return b.String()
}

// PGM renders a raster as a plain-text portable graymap (P2), with region
// indices mapped over the full gray range.
func PGM(ra *field.Raster, maxClass int) string {
	if ra == nil || ra.Rows == 0 {
		return ""
	}
	if maxClass < 1 {
		maxClass = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", ra.Cols, ra.Rows)
	for r := ra.Rows - 1; r >= 0; r-- {
		for c := 0; c < ra.Cols; c++ {
			v := ra.Cells[r][c]
			if v < 0 {
				v = 0
			}
			if v > maxClass {
				v = maxClass
			}
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v*255/maxClass)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
