package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// sample draws a bounded, finite random sample from the generator's rand
// source. testing/quick's default float64 generator produces values up to
// ±math.MaxFloat64 whose sums overflow; bounded magnitudes keep the
// properties about the statistics, not about float overflow.
type sample []float64

func (sample) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	xs := make(sample, n)
	for i := range xs {
		xs[i] = (r.Float64() - 0.5) * 2e6
	}
	return reflect.ValueOf(xs)
}

// TestPercentileWithinBounds: for any sample and any p, the nearest-rank
// percentile is an element of the sample (hence within [min, max]).
func TestPercentileWithinBounds(t *testing.T) {
	property := func(xs sample, p float64) bool {
		if len(xs) == 0 {
			return Percentile(xs, p) == 0
		}
		p = math.Mod(math.Abs(p), 150) // cover in-range and clamped p
		v := Percentile(xs, p)
		found := false
		for _, x := range xs {
			if x == v {
				found = true
				break
			}
		}
		min, max := MinMax(xs)
		return found && v >= min && v <= max
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentileMonotoneInQ: raising the requested percentile never
// lowers the answer.
func TestPercentileMonotoneInQ(t *testing.T) {
	property := func(xs sample, a, b float64) bool {
		if len(xs) == 0 {
			return true
		}
		a = math.Mod(math.Abs(a), 100)
		b = math.Mod(math.Abs(b), 100)
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

// TestMeanStdPermutationInvariant: Mean and StdDev are functions of the
// multiset, not the order. Reversal and a deterministic shuffle must
// reproduce them exactly — both are computed by a fixed left-to-right
// summation, so this pins the implementation to per-permutation
// determinism only up to float association; we compare within one ULP
// scaled tolerance.
func TestMeanStdPermutationInvariant(t *testing.T) {
	property := func(xs sample, seed int64) bool {
		if len(xs) < 2 {
			return true
		}
		perm := make(sample, len(xs))
		copy(perm, xs)
		rand.New(rand.NewSource(seed)).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		close := func(a, b float64) bool {
			scale := math.Max(math.Abs(a), math.Abs(b))
			return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
		}
		return close(Mean(xs), Mean(perm)) && close(StdDev(xs), StdDev(perm))
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

// TestSummarizeConsistent: the bundled Summary agrees with its parts,
// P50 <= P95, and Min <= Mean <= Max for any sample.
func TestSummarizeConsistent(t *testing.T) {
	property := func(xs sample) bool {
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return s == Summary{}
		}
		sorted := make(sample, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.P50 <= s.P95 && s.Min <= s.Mean && s.Mean <= s.Max &&
			s.StdDev >= 0
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}
