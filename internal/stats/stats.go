// Package stats provides the small statistical helpers the experiment
// harness reports with: means, standard deviations and percentiles over
// float samples.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0-100) by nearest-rank on a
// copy of the sample; 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// MinMax returns the extremes of the sample; zeros for an empty one.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
}

// Summarize computes a Summary of the sample.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
	}
}
