package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant StdDev = %v", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("StdDev = %v, want 1", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("single-sample StdDev = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {20, 1}, {95, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty Percentile = %v", got)
	}
	// The input must not be reordered.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if min, max := MinMax(nil); min != 0 || max != 0 {
		t.Error("empty MinMax should be zeros")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				t.Fatalf("Percentile not monotone at p=%v: %v < %v", p, v, prev)
			}
			prev = v
		}
	}
}
