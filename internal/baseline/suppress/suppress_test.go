package suppress

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func setup(t *testing.T, n int) (*routing.Tree, field.Field) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	// Radio range scales inversely with the square root of density to keep
	// the communication graph connected at every density, per the paper's
	// connectivity requirement (average degree ~7).
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := network.DeployGrid(n, f, radio)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	return tree, f
}

func TestRunSuppressesButStaysOrderN(t *testing.T) {
	tree, f := setup(t, 2500)
	res, err := Run(tree, f, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	n := tree.ReachableCount()
	got := len(res.Transmitters)
	if got == 0 {
		t.Fatal("no transmitters")
	}
	// Suppression reduces reporting...
	if got >= n {
		t.Errorf("transmitters = %d of %d — no suppression", got, n)
	}
	// ...but only by a degree-bounded factor: the scale stays a sizable
	// fraction of n, far above the O(sqrt n) of Iso-Map (Sec. 6: bounded
	// within the 2-hop neighborhood).
	if got < n/200 {
		t.Errorf("transmitters = %d of %d — suppression implausibly strong", got, n)
	}
	if res.Counters.SinkReports != int64(got) {
		t.Errorf("SinkReports = %d, want %d", res.Counters.SinkReports, got)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, nil, DefaultConfig(2)); err == nil {
		t.Error("want error for nil tree")
	}
	tree, f := setup(t, 100)
	if _, err := Run(tree, f, Config{}); err == nil {
		t.Error("want error for zero tolerance")
	}
}

func TestEveryNodePaysSimilarityChecks(t *testing.T) {
	// Theta(n*d) computation: every reporting-capable node compares
	// against its 2-hop neighborhood.
	tree, f := setup(t, 400)
	res, err := Run(tree, f, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	nw := tree.Network()
	charged := 0
	for i := 0; i < nw.Len(); i++ {
		if res.Counters.Ops(network.NodeID(i)) > 0 {
			charged++
		}
	}
	if charged < tree.ReachableCount()/2 {
		t.Errorf("only %d of %d nodes charged for similarity checks", charged, tree.ReachableCount())
	}
}

func TestSuppressedNodesHaveSimilarTransmitterNearby(t *testing.T) {
	tree, f := setup(t, 400)
	cfg := DefaultConfig(2)
	res, err := Run(tree, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nw := tree.Network()
	isTx := make(map[network.NodeID]bool, len(res.Transmitters))
	for _, id := range res.Transmitters {
		isTx[id] = true
	}
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !nw.Alive(id) || !tree.Reachable(id) || isTx[id] {
			continue
		}
		v := nw.Node(id).Value
		found := false
		for _, nb := range nw.KHopNeighbors(id, 2) {
			if isTx[nb] && similar(v, nw.Node(nb).Value, cfg.ValueTolerance) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d suppressed without a similar 2-hop transmitter", id)
		}
	}
}

func TestTighterToleranceMoreTransmitters(t *testing.T) {
	tree, f := setup(t, 400)
	loose, err := Run(tree, f, Config{ValueTolerance: 2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(tree, f, Config{ValueTolerance: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Transmitters) <= len(loose.Transmitters) {
		t.Errorf("tight tolerance (%d tx) should exceed loose (%d tx)",
			len(tight.Transmitters), len(loose.Transmitters))
	}
}
