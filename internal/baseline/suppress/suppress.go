// Package suppress implements the data-suppression baseline (Meng et al.,
// Computer Networks 2006) as characterized by the Iso-Map paper: a sensor
// suppresses its own report when a "nearby" node — within the 2-hop
// neighborhood — is already transmitting similar data, the transmitted
// report standing in for the suppressed ones; the sink interpolates and
// smooths the received subset into a contour map (Sec. 6).
//
// The costs reproduced: report generation lowered only by a factor of the
// 2-hop node degree — still O(n) — and per-node similarity checks against
// 2-hop neighbors, placing network computation at Theta(n*d) (Table 1).
package suppress

import (
	"fmt"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// Cost model constants.
const (
	// ReportBytes is a <value, position> report, as in TinyDB.
	ReportBytes = 6
	// OpsPerSimilarityCheck is one value comparison against a 2-hop
	// neighbor.
	OpsPerSimilarityCheck = 6
	// OpsForwardPerReport is store-and-forward bookkeeping per hop.
	OpsForwardPerReport = 2
)

// Config tunes the suppression.
type Config struct {
	// ValueTolerance is the reading difference below which a neighbor's
	// transmission suppresses this node's.
	ValueTolerance float64
}

// DefaultConfig suppresses within half the query granularity, the natural
// "similar reading" threshold for contour queries of step T.
func DefaultConfig(granularity float64) Config {
	return Config{ValueTolerance: granularity / 2}
}

// Result summarizes one suppression round.
type Result struct {
	// Transmitters lists the nodes whose reports were sent.
	Transmitters []network.NodeID
	// Counters holds per-node costs.
	Counters *metrics.Counters
}

// Run executes one round: nodes decide in ID order whether a 2-hop
// neighbor with a similar reading has already claimed representative duty;
// non-suppressed nodes report to the sink through the tree.
func Run(tree *routing.Tree, f field.Field, cfg Config) (*Result, error) {
	if tree == nil {
		return nil, fmt.Errorf("suppress: nil routing tree")
	}
	if cfg.ValueTolerance <= 0 {
		return nil, fmt.Errorf("suppress: value tolerance must be positive, got %g", cfg.ValueTolerance)
	}
	nw := tree.Network()
	nw.Sense(f)
	c := metrics.NewCounters(nw.Len())

	transmitting := make([]bool, nw.Len())
	var transmitters []network.NodeID
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !nw.Alive(id) || !tree.Reachable(id) {
			continue
		}
		v := nw.Node(id).Value
		suppressed := false
		for _, nb := range nw.KHopNeighbors(id, 2) {
			c.ChargeOps(id, OpsPerSimilarityCheck)
			if transmitting[nb] && similar(v, nw.Node(nb).Value, cfg.ValueTolerance) {
				suppressed = true
				break
			}
		}
		if suppressed {
			continue
		}
		transmitting[id] = true
		transmitters = append(transmitters, id)
		c.GeneratedReports++
		path := tree.PathToSink(id)
		c.SendToSink(path, ReportBytes)
		for _, hop := range path[1:] {
			c.ChargeOps(hop, OpsForwardPerReport)
		}
	}
	c.SinkReports = int64(len(transmitters))
	return &Result{Transmitters: transmitters, Counters: c}, nil
}

func similar(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < tol
}
