package tinydb

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func setup(t *testing.T, n int) (*routing.Tree, field.Field) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	// Radio range scales inversely with the square root of density to keep
	// the communication graph connected at every density, per the paper's
	// connectivity requirement (average degree ~7).
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := network.DeployGrid(n, f, radio)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	return tree, f
}

func TestRunCollectsAllReports(t *testing.T) {
	tree, f := setup(t, 2500)
	res, err := Run(tree, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != tree.ReachableCount() {
		t.Errorf("Received = %d, want %d (every reachable node reports)", res.Received, tree.ReachableCount())
	}
	if res.Counters.GeneratedReports != int64(res.Received) {
		t.Errorf("GeneratedReports = %d, want %d", res.Counters.GeneratedReports, res.Received)
	}
	if res.Side != 50 {
		t.Errorf("Side = %d, want 50", res.Side)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, nil); err == nil {
		t.Error("want error for nil tree")
	}
	// Non-square network.
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(10, f, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(tree, f); err == nil {
		t.Error("want error for non-square network")
	}
}

func TestMapAccuracyHigh(t *testing.T) {
	// TinyDB at density 1 achieves the best fidelity of the prior
	// protocols: well above 80% (Fig. 11a).
	tree, f := setup(t, 2500)
	res, err := Run(tree, f)
	if err != nil {
		t.Fatal(err)
	}
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	truth := field.ClassifyRaster(f, levels, 128, 128)
	est := res.Raster(levels, 128, 128)
	if acc := field.Agreement(truth, est); acc < 0.85 {
		t.Errorf("accuracy = %v, want > 0.85", acc)
	}
}

func TestInterpolationUnderFailures(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployGrid(2500, f, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	nw.FailFraction(0.2, 7)
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received >= 2500 {
		t.Fatalf("Received = %d despite failures", res.Received)
	}
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	truth := field.ClassifyRaster(f, levels, 64, 64)
	est := res.Raster(levels, 64, 64)
	if acc := field.Agreement(truth, est); acc < 0.7 {
		t.Errorf("accuracy under 20%% failures = %v, want > 0.7 (interpolation)", acc)
	}
}

func TestTrafficScalesWithN(t *testing.T) {
	// O(n) reports and multi-hop forwarding: traffic grows superlinearly
	// in n on a fixed field.
	tree400, f := setup(t, 400)
	res400, err := Run(tree400, f)
	if err != nil {
		t.Fatal(err)
	}
	tree2500, _ := setup(t, 2500)
	res2500, err := Run(tree2500, f)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res2500.Counters.TotalTxBytes()) / float64(res400.Counters.TotalTxBytes())
	if ratio < 6 {
		t.Errorf("traffic ratio = %v for 6.25x nodes, want superlinear growth", ratio)
	}
}

func TestValueAtClamps(t *testing.T) {
	tree, f := setup(t, 400)
	res, err := Run(tree, f)
	if err != nil {
		t.Fatal(err)
	}
	inside := res.ValueAt(geom.Point{X: 25, Y: 25})
	if inside == 0 {
		t.Error("ValueAt center returned zero on a nonzero field")
	}
	// Outside points clamp to border cells rather than panicking.
	_ = res.ValueAt(geom.Point{X: -5, Y: 100})
}

func TestIsolinePoints(t *testing.T) {
	tree, f := setup(t, 2500)
	res, err := Run(tree, f)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.IsolinePoints(8, 0.5)
	if len(pts) == 0 {
		t.Fatal("no estimated isoline points at level 8")
	}
	// The estimated isoline must hug the true one at full density.
	truthPts := field.IsolinePoints(f, 8, 150, 150, 0.5)
	h := geom.HausdorffDistance(truthPts, pts)
	if h < 0 || h > 5 {
		t.Errorf("TinyDB isoline Hausdorff = %v, want small at density 1", h)
	}
}
