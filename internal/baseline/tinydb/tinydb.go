// Package tinydb implements the TinyDB contour-mapping baseline
// (Hellerstein et al., IPSN 2003) as characterized by the Iso-Map paper:
// sensor nodes are deployed into grids, every node reports the
// representative value of its local cell to the sink without aggregation,
// and the sink constructs the contour map from the received per-cell
// values, interpolating cells whose reports were lost (Secs. 4.3, 6).
//
// TinyDB generates n reports per round — the O(n) traffic floor the paper
// contrasts with Iso-Map's O(sqrt n) — but, having no in-network
// computation beyond store-and-forward, it sets the lower bound on
// per-node computational intensity (Sec. 5.2) and the best achievable map
// fidelity among prior protocols.
package tinydb

import (
	"fmt"
	"math"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// ReportBytes is a TinyDB report: value + position (x, y), three 2-byte
// parameters.
const ReportBytes = 6

// OpsForwardPerReport is the store-and-forward bookkeeping charged per
// report per hop.
const OpsForwardPerReport = 2

// Result is the sink's view after one TinyDB round.
type Result struct {
	// Side is the grid side length (nodes per row).
	Side int
	// values[r][c] is the received cell value; ok[r][c] marks cells whose
	// report arrived.
	values [][]float64
	ok     [][]bool
	// Bounds is the field rectangle.
	Bounds geom.Polygon
	// Received counts reports that reached the sink.
	Received int
	// Counters holds the per-node costs.
	Counters *metrics.Counters
}

// Run executes one TinyDB round over a grid-deployed network: every alive,
// sink-reachable node sends its <value, position> report hop-by-hop to the
// sink. The network must come from network.DeployGrid so that node IDs map
// to grid cells row-major.
func Run(tree *routing.Tree, f field.Field) (*Result, error) {
	if tree == nil {
		return nil, fmt.Errorf("tinydb: nil routing tree")
	}
	nw := tree.Network()
	side := int(math.Sqrt(float64(nw.Len())))
	if side*side != nw.Len() {
		return nil, fmt.Errorf("tinydb: network size %d is not a square grid", nw.Len())
	}
	nw.Sense(f)

	c := metrics.NewCounters(nw.Len())
	res := &Result{
		Side:     side,
		Bounds:   nw.Bounds(),
		Counters: c,
	}
	res.values = make([][]float64, side)
	res.ok = make([][]bool, side)
	for r := 0; r < side; r++ {
		res.values[r] = make([]float64, side)
		res.ok[r] = make([]bool, side)
	}

	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !nw.Alive(id) || !tree.Reachable(id) {
			continue
		}
		path := tree.PathToSink(id)
		c.SendToSink(path, ReportBytes)
		c.GeneratedReports++
		// Store-and-forward bookkeeping at every relay.
		for _, hop := range path[1:] {
			c.ChargeOps(hop, OpsForwardPerReport)
		}
		r, col := i/side, i%side
		res.values[r][col] = nw.Node(id).Value
		res.ok[r][col] = true
		res.Received++
	}
	c.SinkReports = int64(res.Received)
	res.interpolateMissing()
	return res, nil
}

// interpolateMissing fills cells with lost reports from their nearest
// reporting cells — the "sink interpolation" the paper attributes to
// TinyDB under irregular deployment and node failures.
func (res *Result) interpolateMissing() {
	side := res.Side
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if res.ok[r][c] {
				continue
			}
			if v, found := res.nearestKnown(r, c); found {
				res.values[r][c] = v
			}
		}
	}
}

// nearestKnown returns the average value of the nearest ring of reporting
// cells around (r, c).
func (res *Result) nearestKnown(r, c int) (float64, bool) {
	side := res.Side
	for radius := 1; radius < side; radius++ {
		var sum float64
		count := 0
		for dr := -radius; dr <= radius; dr++ {
			for dc := -radius; dc <= radius; dc++ {
				if max(abs(dr), abs(dc)) != radius {
					continue
				}
				rr, cc := r+dr, c+dc
				if rr < 0 || rr >= side || cc < 0 || cc >= side || !res.ok[rr][cc] {
					continue
				}
				sum += res.values[rr][cc]
				count++
			}
		}
		if count > 0 {
			return sum / float64(count), true
		}
	}
	return 0, false
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// ValueAt returns the sink's estimate of the attribute value at p: the
// value of the grid cell containing p.
func (res *Result) ValueAt(p geom.Point) float64 {
	x0, y0, x1, y1 := res.Bounds.BoundingBox()
	c := int((p.X - x0) / (x1 - x0) * float64(res.Side))
	r := int((p.Y - y0) / (y1 - y0) * float64(res.Side))
	c = clampInt(c, 0, res.Side-1)
	r = clampInt(r, 0, res.Side-1)
	return res.values[r][c]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Raster classifies the reconstructed map on a rows x cols grid under the
// given isolevel scheme.
func (res *Result) Raster(levels field.Levels, rows, cols int) *field.Raster {
	x0, y0, x1, y1 := res.Bounds.BoundingBox()
	ra := field.NewRaster(rows, cols)
	for r := 0; r < rows; r++ {
		y := y0 + (y1-y0)*(float64(r)+0.5)/float64(rows)
		for c := 0; c < cols; c++ {
			x := x0 + (x1-x0)*(float64(c)+0.5)/float64(cols)
			ra.Cells[r][c] = levels.Classify(res.ValueAt(geom.Point{X: x, Y: y}))
		}
	}
	return ra
}

// IsolinePoints extracts the estimated isoline of one level from the
// sink-reconstructed value grid by marching squares, for the Hausdorff
// comparison of Fig. 12.
func (res *Result) IsolinePoints(level float64, step float64) []geom.Point {
	gf, err := res.gridField()
	if err != nil {
		return nil
	}
	return field.IsolinePoints(gf, level, res.Side, res.Side, step)
}

func (res *Result) gridField() (*field.GridField, error) {
	x0, y0, x1, y1 := res.Bounds.BoundingBox()
	return field.NewGridField(res.values, x0, y0, x1, y1)
}
