package escan

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func setup(t *testing.T, n int) (*routing.Tree, field.Field) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	// Radio range scales inversely with the square root of density to keep
	// the communication graph connected at every density.
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := network.DeployUniform(n, f, radio, 6)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	return tree, f
}

func TestRunBasics(t *testing.T) {
	tree, f := setup(t, 1000)
	res, err := Run(tree, f, DefaultConfig(2, 50/math.Sqrt(float64(tree.Network().Len()))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("no tuples at sink")
	}
	if res.Counters.GeneratedReports != int64(tree.ReachableCount()) {
		t.Errorf("GeneratedReports = %d, want %d", res.Counters.GeneratedReports, tree.ReachableCount())
	}
	total := 0
	for _, tu := range res.Tuples {
		total += tu.Nodes
		if tu.MaxVal-tu.MinVal > 2+1e-9 {
			t.Fatalf("tuple %+v exceeds value tolerance", tu)
		}
	}
	if total != tree.ReachableCount() {
		t.Errorf("tuple node total = %d, want %d", total, tree.ReachableCount())
	}
	// Aggregation compresses.
	if len(res.Tuples) > tree.ReachableCount()/2 {
		t.Errorf("tuples = %d of %d nodes — aggregation ineffective", len(res.Tuples), tree.ReachableCount())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, nil, DefaultConfig(2, 1)); err == nil {
		t.Error("want error for nil tree")
	}
	tree, f := setup(t, 100)
	if _, err := Run(tree, f, Config{ValueTolerance: -1}); err == nil {
		t.Error("want error for bad tolerance")
	}
}

func TestMergeAllFixpoint(t *testing.T) {
	c := metrics.NewCounters(4)
	cfg := Config{ValueTolerance: 1, AdjacencyDist: 1.5}
	tuples := []Tuple{
		{MinVal: 5, MaxVal: 5, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Nodes: 1},
		{MinVal: 5.2, MaxVal: 5.2, MinX: 1.5, MinY: 0, MaxX: 2.5, MaxY: 1, Nodes: 1},
		{MinVal: 5.4, MaxVal: 5.4, MinX: 3, MinY: 0, MaxX: 4, MaxY: 1, Nodes: 1},
		{MinVal: 9, MaxVal: 9, MinX: 0, MinY: 5, MaxX: 1, MaxY: 6, Nodes: 1},
	}
	got := mergeAll(tuples, cfg, c, 0)
	// First three chain-merge (transitively adjacent, within tolerance);
	// the fourth stays separate.
	if len(got) != 2 {
		t.Fatalf("merged to %d tuples, want 2: %+v", len(got), got)
	}
	if got[0].Nodes != 3 || got[1].Nodes != 1 {
		t.Errorf("node counts = %d, %d, want 3, 1", got[0].Nodes, got[1].Nodes)
	}
	if c.TotalOps() == 0 {
		t.Error("mergeAll charged no ops")
	}
}

func TestEscanComputationExceedsTinyDBFloor(t *testing.T) {
	tree, f := setup(t, 1000)
	res, err := Run(tree, f, DefaultConfig(2, 50/math.Sqrt(float64(tree.Network().Len()))))
	if err != nil {
		t.Fatal(err)
	}
	// The merge sweeps are the dominant cost; far above a pure
	// store-and-forward charge of ~2 ops per report-hop.
	if res.Counters.MeanOpsPerNode() < 100 {
		t.Errorf("mean ops per node = %v — merge cost missing", res.Counters.MeanOpsPerNode())
	}
}
