// Package escan implements the eScan baseline (Zhao, Govindan and Estrin,
// WCNC 2002) as characterized by the Iso-Map paper: a contour map of a
// network attribute built by aggregating (VALUE, COVERAGE) tuples — each
// tuple a value interval over a covered area — from every node toward the
// sink, merging tuples with adjacent coverage and similar value (Sec. 6).
//
// The costs reproduced: n generated reports (O(n) traffic scale), and an
// aggregation whose per-sensor merge work is bounded by O(n^3) in the
// worst case, placing network-wide computation at O(n^4) in the paper's
// Table 1. The implementation below performs the realistic repeated
// pairwise merging whose charge per node is cubic in its incoming tuple
// count in the worst case.
package escan

import (
	"fmt"
	"math"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// Cost model constants.
const (
	// TupleBytes is one (VALUE, COVERAGE) tuple: value interval (min,
	// max) plus a rectangular coverage (x0, y0, x1, y1) — six 2-byte
	// parameters.
	TupleBytes = 12
	// OpsPerPolygonCheck is charged per pairwise tuple-compatibility test
	// (polygon adjacency in the original system).
	OpsPerPolygonCheck = 30
	// OpsPerMerge is charged when two tuples fuse.
	OpsPerMerge = 20
)

// Tuple is an eScan (VALUE, COVERAGE) aggregate.
type Tuple struct {
	MinVal, MaxVal         float64
	MinX, MinY, MaxX, MaxY float64
	Nodes                  int
}

// Config tunes the aggregation tolerances.
type Config struct {
	// ValueTolerance is the widest value interval a merged tuple may span.
	ValueTolerance float64
	// AdjacencyDist is the maximum coverage gap considered adjacent.
	AdjacencyDist float64
}

// DefaultConfig mirrors the INLR setting for a query granularity of T and
// a deployment with the given node spacing.
func DefaultConfig(granularity, spacing float64) Config {
	return Config{ValueTolerance: granularity, AdjacencyDist: 1.5 * spacing}
}

// Result summarizes one eScan round.
type Result struct {
	// Tuples received at the sink.
	Tuples []Tuple
	// Counters holds per-node costs.
	Counters *metrics.Counters
}

// Run executes one eScan round over the routing tree: every alive node
// originates a singleton tuple; intermediate nodes repeatedly merge
// compatible tuples (a quadratic sweep per incoming batch, cubic per node
// in the worst case) before forwarding.
func Run(tree *routing.Tree, f field.Field, cfg Config) (*Result, error) {
	if tree == nil {
		return nil, fmt.Errorf("escan: nil routing tree")
	}
	if cfg.ValueTolerance <= 0 {
		return nil, fmt.Errorf("escan: value tolerance must be positive, got %g", cfg.ValueTolerance)
	}
	nw := tree.Network()
	nw.Sense(f)
	c := metrics.NewCounters(nw.Len())

	buffers := make(map[network.NodeID][]Tuple, nw.Len())
	for _, id := range tree.PostOrder() {
		var tuples []Tuple
		if nw.Alive(id) {
			node := nw.Node(id)
			tuples = append(tuples, Tuple{
				MinVal: node.Value, MaxVal: node.Value,
				MinX: node.Pos.X, MinY: node.Pos.Y,
				MaxX: node.Pos.X, MaxY: node.Pos.Y,
				Nodes: 1,
			})
			c.GeneratedReports++
		}
		for _, child := range tree.Children(id) {
			incoming := buffers[child]
			delete(buffers, child)
			if len(incoming) == 0 {
				continue
			}
			c.ChargeTx(child, TupleBytes*len(incoming))
			c.ChargeRx(id, TupleBytes*len(incoming))
			tuples = append(tuples, incoming...)
		}
		tuples = mergeAll(tuples, cfg, c, id)
		buffers[id] = tuples
	}

	sink := buffers[tree.Root()]
	c.SinkReports = int64(len(sink))
	return &Result{Tuples: sink, Counters: c}, nil
}

// mergeAll repeatedly sweeps the tuple set, fusing every compatible pair
// until a fixpoint: up to O(k^2) comparisons per sweep and O(k) sweeps —
// the O(k^3) worst case the paper cites.
func mergeAll(tuples []Tuple, cfg Config, c *metrics.Counters, at network.NodeID) []Tuple {
	for {
		mergedAny := false
		for i := 0; i < len(tuples) && !mergedAny; i++ {
			for j := i + 1; j < len(tuples); j++ {
				c.ChargeOps(at, OpsPerPolygonCheck)
				if !compatible(tuples[i], tuples[j], cfg) {
					continue
				}
				c.ChargeOps(at, OpsPerMerge)
				tuples[i] = fuse(tuples[i], tuples[j])
				tuples = append(tuples[:j], tuples[j+1:]...)
				mergedAny = true
				break
			}
		}
		if !mergedAny {
			return tuples
		}
	}
}

func compatible(a, b Tuple, cfg Config) bool {
	lo := math.Min(a.MinVal, b.MinVal)
	hi := math.Max(a.MaxVal, b.MaxVal)
	if hi-lo > cfg.ValueTolerance {
		return false
	}
	dx := math.Max(0, math.Max(b.MinX-a.MaxX, a.MinX-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-a.MaxY, a.MinY-b.MaxY))
	return math.Hypot(dx, dy) <= cfg.AdjacencyDist
}

func fuse(a, b Tuple) Tuple {
	return Tuple{
		MinVal: math.Min(a.MinVal, b.MinVal),
		MaxVal: math.Max(a.MaxVal, b.MaxVal),
		MinX:   math.Min(a.MinX, b.MinX),
		MinY:   math.Min(a.MinY, b.MinY),
		MaxX:   math.Max(a.MaxX, b.MaxX),
		MaxY:   math.Max(a.MaxY, b.MaxY),
		Nodes:  a.Nodes + b.Nodes,
	}
}
