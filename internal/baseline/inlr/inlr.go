// Package inlr implements the INLR baseline (Xue et al., SIGMOD 2006) as
// characterized by the Iso-Map paper: every sensor reports, and
// intermediate nodes aggregate close reports of similar readings into
// contour regions described by numerical data models, merging region
// models on the way to the sink (Secs. 4.3, 6).
//
// The defining costs reproduced here are: reports from all n nodes
// (aggregation shrinks the byte volume by a bounded factor — "up to
// 40 percent" — but not the O(n) scale), and the heavy model-merge
// computation at intermediate nodes ("multiple integrals" per similarity
// estimate), which drives the network-wide computation to at least
// Theta(n^1.5) and the per-node intensity far above TinyDB and Iso-Map
// (Fig. 15a).
package inlr

import (
	"fmt"
	"math"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// Wire and computation cost model.
const (
	// RegionBytes is one aggregated contour-region descriptor: value
	// range (min, max), bounding box (x0, y0, x1, y1) and node count —
	// seven 2-byte parameters.
	RegionBytes = 14
	// OpsPerModelIntegral is the fixed setup cost per pairwise
	// region-similarity estimate; the paper singles out INLR's
	// per-comparison "multiple integrals" as its computational burden.
	OpsPerModelIntegral = 60
	// OpsIntegralPerCoveredNode is the numerical-integration cost per
	// node covered by the two compared region models: evaluating the
	// models over their coverage grows with region size, which is what
	// drives INLR's network computation to Theta(n^1.5).
	OpsIntegralPerCoveredNode = 3
	// OpsPerMerge is the additional cost of fusing two region models.
	OpsPerMerge = 40
)

// Region is an aggregated contour-region model.
type Region struct {
	MinVal, MaxVal         float64
	MinX, MinY, MaxX, MaxY float64
	Count                  int
}

// Result summarizes one INLR round.
type Result struct {
	// Regions are the aggregated contour regions received at the sink.
	Regions []Region
	// Counters holds per-node costs.
	Counters *metrics.Counters
}

// Config tunes the aggregation.
type Config struct {
	// ValueTolerance is the maximum value-range span of a merged region.
	// The Iso-Map evaluation ties it to the query granularity T.
	ValueTolerance float64
	// AdjacencyDist is the maximum gap between region bounding boxes that
	// still counts as adjacent.
	AdjacencyDist float64
	// MaxRegionNodes caps how many sensor readings one numerical region
	// model may summarize before it loses fidelity and stops accepting
	// merges. This bounds INLR's aggregation gain: with the default of 4,
	// traffic lands at roughly 60% of TinyDB's — the "up to 40 percent"
	// reduction the Iso-Map paper credits INLR with.
	MaxRegionNodes int
}

// DefaultConfig returns the configuration used by the experiment suite for
// a query granularity of T and a deployment with the given node spacing:
// regions span at most one contour band, merge across gaps up to 1.5x the
// spacing (radio-range adjacency), and model at most 4 readings each.
func DefaultConfig(granularity, spacing float64) Config {
	return Config{ValueTolerance: granularity, AdjacencyDist: 1.5 * spacing, MaxRegionNodes: 4}
}

// Run executes one INLR round: leaves report their reading as a singleton
// region; every intermediate node merges its children's regions with its
// own, then forwards the aggregate; the sink collects the surviving
// regions.
func Run(tree *routing.Tree, f field.Field, cfg Config) (*Result, error) {
	if tree == nil {
		return nil, fmt.Errorf("inlr: nil routing tree")
	}
	if cfg.ValueTolerance <= 0 {
		return nil, fmt.Errorf("inlr: value tolerance must be positive, got %g", cfg.ValueTolerance)
	}
	nw := tree.Network()
	nw.Sense(f)
	c := metrics.NewCounters(nw.Len())

	buffers := make(map[network.NodeID][]Region, nw.Len())
	for _, id := range tree.PostOrder() {
		var regions []Region
		if nw.Alive(id) {
			node := nw.Node(id)
			regions = append(regions, Region{
				MinVal: node.Value, MaxVal: node.Value,
				MinX: node.Pos.X, MinY: node.Pos.Y,
				MaxX: node.Pos.X, MaxY: node.Pos.Y,
				Count: 1,
			})
			c.GeneratedReports++
		}
		for _, child := range tree.Children(id) {
			incoming := buffers[child]
			delete(buffers, child)
			if len(incoming) == 0 {
				continue
			}
			c.ChargeTx(child, RegionBytes*len(incoming))
			c.ChargeRx(id, RegionBytes*len(incoming))
			regions = mergeRegions(regions, incoming, cfg, c, id)
		}
		buffers[id] = regions
	}

	sink := buffers[tree.Root()]
	c.SinkReports = int64(len(sink))
	return &Result{Regions: sink, Counters: c}, nil
}

// mergeRegions folds the incoming regions into the node's buffer: each
// incoming region is compared against every buffered one (charging the
// model-similarity integrals) and merged with the first compatible match.
func mergeRegions(buf, incoming []Region, cfg Config, c *metrics.Counters, at network.NodeID) []Region {
	for _, r := range incoming {
		merged := false
		for k := range buf {
			c.ChargeOps(at, OpsPerModelIntegral+OpsIntegralPerCoveredNode*(buf[k].Count+r.Count))
			if compatible(buf[k], r, cfg) {
				c.ChargeOps(at, OpsPerMerge)
				buf[k] = fuse(buf[k], r)
				merged = true
				break
			}
		}
		if !merged {
			buf = append(buf, r)
		}
	}
	return buf
}

// compatible reports whether two regions may merge: similar value models,
// adjacent coverage, and combined size within the model's fidelity cap.
func compatible(a, b Region, cfg Config) bool {
	if cfg.MaxRegionNodes > 0 && a.Count+b.Count > cfg.MaxRegionNodes {
		return false
	}
	lo := math.Min(a.MinVal, b.MinVal)
	hi := math.Max(a.MaxVal, b.MaxVal)
	if hi-lo > cfg.ValueTolerance {
		return false
	}
	return boxGap(a, b) <= cfg.AdjacencyDist
}

// boxGap returns the axis-aligned gap between two bounding boxes (zero
// when they overlap).
func boxGap(a, b Region) float64 {
	dx := math.Max(0, math.Max(b.MinX-a.MaxX, a.MinX-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-a.MaxY, a.MinY-b.MaxY))
	return math.Hypot(dx, dy)
}

// fuse merges two compatible regions.
func fuse(a, b Region) Region {
	return Region{
		MinVal: math.Min(a.MinVal, b.MinVal),
		MaxVal: math.Max(a.MaxVal, b.MaxVal),
		MinX:   math.Min(a.MinX, b.MinX),
		MinY:   math.Min(a.MinY, b.MinY),
		MaxX:   math.Max(a.MaxX, b.MaxX),
		MaxY:   math.Max(a.MaxY, b.MaxY),
		Count:  a.Count + b.Count,
	}
}
