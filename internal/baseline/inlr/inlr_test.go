package inlr

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func setup(t *testing.T, n int) (*routing.Tree, field.Field) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	// Radio range scales inversely with the square root of density to keep
	// the communication graph connected at every density, per the paper's
	// connectivity requirement (average degree ~7).
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := network.DeployGrid(n, f, radio)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	return tree, f
}

func TestRunBasics(t *testing.T) {
	tree, f := setup(t, 2500)
	res, err := Run(tree, f, DefaultConfig(2, 50/math.Sqrt(float64(tree.Network().Len()))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("no regions at sink")
	}
	if res.Counters.GeneratedReports != int64(tree.ReachableCount()) {
		t.Errorf("GeneratedReports = %d, want %d (all nodes report)",
			res.Counters.GeneratedReports, tree.ReachableCount())
	}
	// Aggregation compresses: far fewer regions than nodes.
	if len(res.Regions) > tree.ReachableCount()/2 {
		t.Errorf("regions = %d — aggregation ineffective", len(res.Regions))
	}
	// All nodes accounted for in the region models.
	total := 0
	for _, r := range res.Regions {
		total += r.Count
		if r.MaxVal < r.MinVal || r.MaxX < r.MinX || r.MaxY < r.MinY {
			t.Fatalf("malformed region %+v", r)
		}
		if r.MaxVal-r.MinVal > 2+1e-9 {
			t.Fatalf("region %+v exceeds value tolerance", r)
		}
	}
	if total != tree.ReachableCount() {
		t.Errorf("region node total = %d, want %d", total, tree.ReachableCount())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, nil, DefaultConfig(2, 1)); err == nil {
		t.Error("want error for nil tree")
	}
	tree, f := setup(t, 100)
	if _, err := Run(tree, f, Config{ValueTolerance: 0}); err == nil {
		t.Error("want error for zero tolerance")
	}
}

func TestComputationHeavierThanForwarding(t *testing.T) {
	// INLR's defining property: per-node computation far above a
	// store-and-forward protocol, and growing with network size
	// (Fig. 15a).
	tree400, f := setup(t, 400)
	res400, err := Run(tree400, f, DefaultConfig(2, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	tree2500, _ := setup(t, 2500)
	res2500, err := Run(tree2500, f, DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	mean400 := res400.Counters.MeanOpsPerNode()
	mean2500 := res2500.Counters.MeanOpsPerNode()
	if mean2500 <= mean400 {
		t.Errorf("per-node ops did not grow with n: %v -> %v", mean400, mean2500)
	}
	if mean2500 < 500 {
		t.Errorf("per-node ops = %v — model-merge cost missing", mean2500)
	}
}

func TestTrafficStillOrderN(t *testing.T) {
	// Aggregation reduces bytes but the traffic scale remains O(n): far
	// more than sqrt(n) reports' worth crosses the network.
	tree, f := setup(t, 2500)
	res, err := Run(tree, f, DefaultConfig(2, 50/math.Sqrt(float64(tree.Network().Len()))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.TotalTxBytes() < int64(2500*RegionBytes/4) {
		t.Errorf("traffic = %d bytes — implausibly low for O(n) reporting", res.Counters.TotalTxBytes())
	}
}

func TestBoxGapAndCompatible(t *testing.T) {
	a := Region{MinVal: 5, MaxVal: 5, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Count: 1}
	b := Region{MinVal: 5.5, MaxVal: 5.5, MinX: 2, MinY: 0, MaxX: 3, MaxY: 1, Count: 1}
	cfg := Config{ValueTolerance: 1, AdjacencyDist: 1.5}
	if !compatible(a, b, cfg) {
		t.Error("adjacent similar regions should be compatible")
	}
	far := Region{MinVal: 5, MaxVal: 5, MinX: 10, MinY: 10, MaxX: 11, MaxY: 11}
	if compatible(a, far, cfg) {
		t.Error("distant regions should not be compatible")
	}
	diff := Region{MinVal: 9, MaxVal: 9, MinX: 1.2, MinY: 0, MaxX: 2, MaxY: 1}
	if compatible(a, diff, cfg) {
		t.Error("dissimilar values should not be compatible")
	}
}

func TestFuse(t *testing.T) {
	a := Region{MinVal: 4, MaxVal: 5, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1, Count: 2}
	b := Region{MinVal: 4.5, MaxVal: 5.5, MinX: 0.5, MinY: -1, MaxX: 2, MaxY: 0.5, Count: 3}
	got := fuse(a, b)
	want := Region{MinVal: 4, MaxVal: 5.5, MinX: 0, MinY: -1, MaxX: 2, MaxY: 1, Count: 5}
	if got != want {
		t.Errorf("fuse = %+v, want %+v", got, want)
	}
}
