// Package events extracts higher-level happenings from contour-map
// rasters: connected contour regions (e.g. the alarm zones of the harbor
// application, where depth fell below a safety threshold) and their
// evolution between monitoring rounds. The paper positions contour maps as
// the background on which the sink "detects and analyzes environmental
// happenings in a global view"; this package is that analysis layer.
package events

import (
	"sort"

	"isomap/internal/field"
	"isomap/internal/geom"
)

// Region is one connected component of raster cells matching a predicate.
type Region struct {
	// ID numbers the region within its extraction (largest area first).
	ID int `json:"id"`
	// Cells is the component size in raster cells.
	Cells int `json:"cells"`
	// AreaFraction is Cells over the whole raster.
	AreaFraction float64 `json:"areaFraction"`
	// Centroid is the mean cell-center position in raster coordinates
	// normalized to [0,1)x[0,1) (multiply by the field extent to map
	// back).
	Centroid geom.Point `json:"centroid"`
}

// Components labels the 4-connected components of raster cells whose class
// satisfies pred, returning them sorted by descending size.
func Components(ra *field.Raster, pred func(class int) bool) []Region {
	if ra == nil || ra.Rows == 0 || ra.Cols == 0 {
		return nil
	}
	labels := make([][]int, ra.Rows)
	for r := range labels {
		labels[r] = make([]int, ra.Cols)
		for c := range labels[r] {
			labels[r][c] = -1
		}
	}
	var regions []Region
	type cell struct{ r, c int }
	for r := 0; r < ra.Rows; r++ {
		for c := 0; c < ra.Cols; c++ {
			if labels[r][c] >= 0 || !pred(ra.Cells[r][c]) {
				continue
			}
			// Flood fill a new component.
			id := len(regions)
			queue := []cell{{r, c}}
			labels[r][c] = id
			var count int
			var sumR, sumC float64
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				count++
				sumR += float64(cur.r) + 0.5
				sumC += float64(cur.c) + 0.5
				for _, d := range [4]cell{{cur.r - 1, cur.c}, {cur.r + 1, cur.c}, {cur.r, cur.c - 1}, {cur.r, cur.c + 1}} {
					if d.r < 0 || d.r >= ra.Rows || d.c < 0 || d.c >= ra.Cols {
						continue
					}
					if labels[d.r][d.c] >= 0 || !pred(ra.Cells[d.r][d.c]) {
						continue
					}
					labels[d.r][d.c] = id
					queue = append(queue, d)
				}
			}
			regions = append(regions, Region{
				Cells:        count,
				AreaFraction: float64(count) / float64(ra.Rows*ra.Cols),
				Centroid: geom.Point{
					X: sumC / float64(count) / float64(ra.Cols),
					Y: sumR / float64(count) / float64(ra.Rows),
				},
			})
		}
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].Cells > regions[j].Cells })
	for i := range regions {
		regions[i].ID = i
	}
	return regions
}

// ClassBelow returns a predicate matching classes strictly below k — the
// "depth under the k-th isolevel" alarm condition.
func ClassBelow(k int) func(int) bool {
	return func(class int) bool { return class < k }
}

// ClassAtLeast returns a predicate matching classes at or above k.
func ClassAtLeast(k int) func(int) bool {
	return func(class int) bool { return class >= k }
}

// SpansHorizontally reports whether some 4-connected component of cells
// matching pred touches both the left and right raster edges — the
// "navigable corridor" question of the harbor application: can a ship
// needing the given depth cross the surveyed area?
func SpansHorizontally(ra *field.Raster, pred func(class int) bool) bool {
	if ra == nil || ra.Rows == 0 || ra.Cols == 0 {
		return false
	}
	// Flood from every matching left-edge cell; succeed on reaching the
	// right edge.
	visited := make([][]bool, ra.Rows)
	for r := range visited {
		visited[r] = make([]bool, ra.Cols)
	}
	type cell struct{ r, c int }
	var queue []cell
	for r := 0; r < ra.Rows; r++ {
		if pred(ra.Cells[r][0]) {
			visited[r][0] = true
			queue = append(queue, cell{r, 0})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.c == ra.Cols-1 {
			return true
		}
		for _, d := range [4]cell{{cur.r - 1, cur.c}, {cur.r + 1, cur.c}, {cur.r, cur.c - 1}, {cur.r, cur.c + 1}} {
			if d.r < 0 || d.r >= ra.Rows || d.c < 0 || d.c >= ra.Cols {
				continue
			}
			if visited[d.r][d.c] || !pred(ra.Cells[d.r][d.c]) {
				continue
			}
			visited[d.r][d.c] = true
			queue = append(queue, cell{d.r, d.c})
		}
	}
	return false
}

// TotalFraction sums the area fractions of a region set.
func TotalFraction(regions []Region) float64 {
	var f float64
	for _, r := range regions {
		f += r.AreaFraction
	}
	return f
}

// ChangeKind classifies a region's evolution between two rounds.
type ChangeKind int

// Region change kinds.
const (
	// Appeared marks a region with no counterpart in the previous round.
	Appeared ChangeKind = iota + 1
	// Disappeared marks a previous region with no current counterpart.
	Disappeared
	// Grew marks a matched region whose area increased noticeably.
	Grew
	// Shrank marks a matched region whose area decreased noticeably.
	Shrank
	// Stable marks a matched region with little change.
	Stable
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case Appeared:
		return "appeared"
	case Disappeared:
		return "disappeared"
	case Grew:
		return "grew"
	case Shrank:
		return "shrank"
	case Stable:
		return "stable"
	default:
		return "unknown"
	}
}

// Change describes one region's evolution.
type Change struct {
	Kind ChangeKind
	// Prev and Cur reference the matched regions; one of them is the zero
	// Region for Appeared/Disappeared.
	Prev Region
	Cur  Region
}

// matchDist is the maximum centroid separation (in normalized units) that
// still pairs a previous region with a current one.
const matchDist = 0.15

// growthTol is the relative area change below which a region counts as
// stable.
const growthTol = 0.15

// Track matches current regions to a previous round's by centroid
// proximity and classifies the change of each.
func Track(prev, cur []Region) []Change {
	usedPrev := make([]bool, len(prev))
	var changes []Change
	for _, c := range cur {
		best := -1
		bestDist := matchDist
		for i, p := range prev {
			if usedPrev[i] {
				continue
			}
			if d := c.Centroid.DistTo(p.Centroid); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			changes = append(changes, Change{Kind: Appeared, Cur: c})
			continue
		}
		usedPrev[best] = true
		p := prev[best]
		kind := Stable
		switch {
		case p.AreaFraction == 0 && c.AreaFraction > 0:
			kind = Grew
		case c.AreaFraction > p.AreaFraction*(1+growthTol):
			kind = Grew
		case c.AreaFraction < p.AreaFraction*(1-growthTol):
			kind = Shrank
		}
		changes = append(changes, Change{Kind: kind, Prev: p, Cur: c})
	}
	for i, p := range prev {
		if !usedPrev[i] {
			changes = append(changes, Change{Kind: Disappeared, Prev: p})
		}
	}
	return changes
}
