package events

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
)

// rasterFrom builds a raster from string art: '.' = class 0, digits their
// value. Row 0 of the slice is raster row 0.
func rasterFrom(rows []string) *field.Raster {
	ra := field.NewRaster(len(rows), len(rows[0]))
	for r, line := range rows {
		for c, ch := range line {
			if ch == '.' {
				ra.Cells[r][c] = 0
			} else {
				ra.Cells[r][c] = int(ch - '0')
			}
		}
	}
	return ra
}

func TestComponentsTwoBlobs(t *testing.T) {
	ra := rasterFrom([]string{
		"11..",
		"11..",
		"...1",
		"...1",
	})
	regions := Components(ra, ClassAtLeast(1))
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(regions))
	}
	// Sorted by size: 4-cell blob first.
	if regions[0].Cells != 4 || regions[1].Cells != 2 {
		t.Errorf("sizes = %d, %d, want 4, 2", regions[0].Cells, regions[1].Cells)
	}
	if regions[0].ID != 0 || regions[1].ID != 1 {
		t.Errorf("IDs = %d, %d", regions[0].ID, regions[1].ID)
	}
	if got := regions[0].AreaFraction; got != 0.25 {
		t.Errorf("AreaFraction = %v, want 0.25", got)
	}
	// Centroid of the 2x2 blob at rows 0-1, cols 0-1: normalized (0.25, 0.25).
	if c := regions[0].Centroid; math.Abs(c.X-0.25) > 1e-9 || math.Abs(c.Y-0.25) > 1e-9 {
		t.Errorf("centroid = %v", c)
	}
}

func TestComponentsDiagonalNotConnected(t *testing.T) {
	ra := rasterFrom([]string{
		"1.",
		".1",
	})
	regions := Components(ra, ClassAtLeast(1))
	if len(regions) != 2 {
		t.Errorf("diagonal cells merged: %d regions, want 2 (4-connectivity)", len(regions))
	}
}

func TestComponentsEmptyAndNil(t *testing.T) {
	if got := Components(nil, ClassAtLeast(1)); got != nil {
		t.Error("nil raster should yield nil")
	}
	ra := rasterFrom([]string{"..", ".."})
	if got := Components(ra, ClassAtLeast(1)); got != nil {
		t.Errorf("no matching cells should yield nil, got %v", got)
	}
	all := Components(ra, ClassBelow(1))
	if len(all) != 1 || all[0].Cells != 4 {
		t.Errorf("ClassBelow(1) should cover everything: %v", all)
	}
}

func TestTotalFraction(t *testing.T) {
	ra := rasterFrom([]string{
		"11..",
		"....",
		"..2.",
		"....",
	})
	regions := Components(ra, ClassAtLeast(1))
	if got := TotalFraction(regions); math.Abs(got-3.0/16) > 1e-9 {
		t.Errorf("TotalFraction = %v, want 3/16", got)
	}
	if got := TotalFraction(nil); got != 0 {
		t.Errorf("empty TotalFraction = %v", got)
	}
}

func TestTrackAppearGrowShrinkDisappear(t *testing.T) {
	prev := []Region{
		{ID: 0, Cells: 100, AreaFraction: 0.10, Centroid: pt(0.2, 0.2)},
		{ID: 1, Cells: 50, AreaFraction: 0.05, Centroid: pt(0.8, 0.8)},
	}
	cur := []Region{
		{ID: 0, Cells: 150, AreaFraction: 0.15, Centroid: pt(0.22, 0.21)}, // grew
		{ID: 1, Cells: 30, AreaFraction: 0.03, Centroid: pt(0.5, 0.1)},    // appeared (far)
	}
	changes := Track(prev, cur)
	kinds := map[ChangeKind]int{}
	for _, ch := range changes {
		kinds[ch.Kind]++
	}
	if kinds[Grew] != 1 {
		t.Errorf("Grew = %d, want 1 (%v)", kinds[Grew], changes)
	}
	if kinds[Appeared] != 1 {
		t.Errorf("Appeared = %d, want 1", kinds[Appeared])
	}
	if kinds[Disappeared] != 1 {
		t.Errorf("Disappeared = %d, want 1", kinds[Disappeared])
	}
}

func TestTrackStable(t *testing.T) {
	prev := []Region{{Cells: 100, AreaFraction: 0.10, Centroid: pt(0.5, 0.5)}}
	cur := []Region{{Cells: 104, AreaFraction: 0.104, Centroid: pt(0.5, 0.51)}}
	changes := Track(prev, cur)
	if len(changes) != 1 || changes[0].Kind != Stable {
		t.Errorf("changes = %v, want one Stable", changes)
	}
}

func TestTrackShrank(t *testing.T) {
	prev := []Region{{Cells: 100, AreaFraction: 0.10, Centroid: pt(0.5, 0.5)}}
	cur := []Region{{Cells: 40, AreaFraction: 0.04, Centroid: pt(0.5, 0.5)}}
	changes := Track(prev, cur)
	if len(changes) != 1 || changes[0].Kind != Shrank {
		t.Errorf("changes = %v, want one Shrank", changes)
	}
}

func TestChangeKindString(t *testing.T) {
	for _, k := range []ChangeKind{Appeared, Disappeared, Grew, Shrank, Stable} {
		if k.String() == "unknown" {
			t.Errorf("kind %d renders unknown", k)
		}
	}
	if ChangeKind(99).String() != "unknown" {
		t.Error("invalid kind should render unknown")
	}
}

func TestComponentsOnRealContourMap(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	ra := field.ClassifyRaster(f, levels, 96, 96)
	deep := Components(ra, ClassAtLeast(3)) // deeper than 10 m
	if len(deep) == 0 {
		t.Fatal("no deep regions on default seabed")
	}
	if TotalFraction(deep) <= 0 || TotalFraction(deep) >= 1 {
		t.Errorf("deep fraction = %v", TotalFraction(deep))
	}
	// Components partition the matching cells: sizes sum to the count of
	// matching cells.
	match := 0
	for _, row := range ra.Cells {
		for _, v := range row {
			if v >= 3 {
				match++
			}
		}
	}
	sum := 0
	for _, r := range deep {
		sum += r.Cells
	}
	if sum != match {
		t.Errorf("component cells %d != matching cells %d", sum, match)
	}
}

func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

func TestSpansHorizontally(t *testing.T) {
	corridor := rasterFrom([]string{
		"....",
		"1111",
		"....",
	})
	if !SpansHorizontally(corridor, ClassAtLeast(1)) {
		t.Error("straight corridor should span")
	}
	blocked := rasterFrom([]string{
		"11.1",
		"1..1",
		"11.1",
	})
	if SpansHorizontally(blocked, ClassAtLeast(1)) {
		t.Error("blocked corridor should not span")
	}
	winding := rasterFrom([]string{
		"11..",
		".1..",
		".111",
	})
	if !SpansHorizontally(winding, ClassAtLeast(1)) {
		t.Error("winding corridor should span")
	}
	if SpansHorizontally(nil, ClassAtLeast(1)) {
		t.Error("nil raster should not span")
	}
	// Diagonal touching is not connectivity.
	diag := rasterFrom([]string{
		"1.",
		".1",
	})
	if SpansHorizontally(diag, ClassAtLeast(1)) {
		t.Error("diagonal cells should not form a corridor")
	}
}
