// Package localize implements DV-hop localization, standing in for the
// localization algorithms the paper's isoline reports rely on when nodes
// carry no GPS ("the position p can be obtained either from attached
// localization devices such as a GPS receiver or by one of existing
// algorithms", Sec. 3.3).
//
// DV-hop: a small set of anchor nodes know their true positions. Every
// anchor floods a hop-count beacon; each node records its hop distance to
// every anchor. Anchors estimate an average per-hop length from their
// mutual hop counts and true distances; ordinary nodes convert hop counts
// into range estimates and solve a linearized least-squares
// multilateration for their position.
package localize

import (
	"fmt"
	"math"

	"isomap/internal/geom"
	"isomap/internal/network"
)

// Result holds the per-node position estimates of one localization run.
type Result struct {
	// Estimated maps every localized node to its position estimate.
	// Anchors map to their true position. Nodes unreachable from enough
	// anchors are absent.
	Estimated map[network.NodeID]geom.Point
	// Anchors lists the anchor node IDs used.
	Anchors []network.NodeID
	// MeanError and MaxError summarize the estimate error over localized
	// non-anchor nodes, in field units.
	MeanError float64
	MaxError  float64
}

// DVHop localizes every node of the network from the given anchors. At
// least three non-collinear anchors are required; nodes that cannot reach
// three anchors stay unlocalized.
func DVHop(nw *network.Network, anchors []network.NodeID) (*Result, error) {
	if len(anchors) < 3 {
		return nil, fmt.Errorf("localize: need at least 3 anchors, got %d", len(anchors))
	}
	for _, a := range anchors {
		if !nw.Alive(a) {
			return nil, fmt.Errorf("localize: anchor %d is not an alive node", a)
		}
	}

	// Hop-count flood from every anchor.
	hops := make([][]int, len(anchors))
	for i, a := range anchors {
		hops[i] = bfsHops(nw, a)
	}

	// Each anchor's per-hop length: mean over other anchors of
	// trueDistance / hopCount.
	hopLen := make([]float64, len(anchors))
	for i, a := range anchors {
		var sum float64
		count := 0
		for j, b := range anchors {
			if i == j || hops[i][b] <= 0 {
				continue
			}
			sum += nw.Node(a).Pos.DistTo(nw.Node(b).Pos) / float64(hops[i][b])
			count++
		}
		if count > 0 {
			hopLen[i] = sum / float64(count)
		}
	}

	res := &Result{
		Estimated: make(map[network.NodeID]geom.Point, nw.Len()),
		Anchors:   append([]network.NodeID(nil), anchors...),
	}
	var errSum float64
	errCount := 0
	for i := 0; i < nw.Len(); i++ {
		id := network.NodeID(i)
		if !nw.Alive(id) {
			continue
		}
		if idx := anchorIndex(anchors, id); idx >= 0 {
			res.Estimated[id] = nw.Node(id).Pos
			continue
		}
		// Collect range estimates to reachable anchors.
		var pts []geom.Point
		var dists []float64
		for k, a := range anchors {
			h := hops[k][id]
			if h <= 0 || hopLen[k] <= 0 {
				continue
			}
			pts = append(pts, nw.Node(a).Pos)
			dists = append(dists, float64(h)*hopLen[k])
		}
		if len(pts) < 3 {
			continue
		}
		est, ok := multilaterate(pts, dists)
		if !ok {
			continue
		}
		res.Estimated[id] = est
		e := est.DistTo(nw.Node(id).Pos)
		errSum += e
		errCount++
		if e > res.MaxError {
			res.MaxError = e
		}
	}
	if errCount > 0 {
		res.MeanError = errSum / float64(errCount)
	}
	return res, nil
}

func anchorIndex(anchors []network.NodeID, id network.NodeID) int {
	for i, a := range anchors {
		if a == id {
			return i
		}
	}
	return -1
}

// bfsHops returns the hop distance from root to every node (-1 when
// unreachable).
func bfsHops(nw *network.Network, root network.NodeID) []int {
	hops := make([]int, nw.Len())
	for i := range hops {
		hops[i] = -1
	}
	hops[root] = 0
	queue := []network.NodeID{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range nw.AliveNeighbors(cur) {
			if hops[nb] >= 0 {
				continue
			}
			hops[nb] = hops[cur] + 1
			queue = append(queue, nb)
		}
	}
	return hops
}

// multilaterate solves for a position from at least three (anchor, range)
// pairs by the standard linearization: subtracting the last anchor's
// circle equation from the others yields a linear system solved by least
// squares (2x2 normal equations).
func multilaterate(pts []geom.Point, dists []float64) (geom.Point, bool) {
	n := len(pts) - 1
	ref := pts[len(pts)-1]
	refD := dists[len(pts)-1]
	// Rows: 2(x_i - x_ref) x + 2(y_i - y_ref) y = x_i^2 - x_ref^2 + y_i^2
	// - y_ref^2 + refD^2 - d_i^2.
	var a11, a12, a22, b1, b2 float64
	for i := 0; i < n; i++ {
		ax := 2 * (pts[i].X - ref.X)
		ay := 2 * (pts[i].Y - ref.Y)
		rhs := pts[i].X*pts[i].X - ref.X*ref.X +
			pts[i].Y*pts[i].Y - ref.Y*ref.Y +
			refD*refD - dists[i]*dists[i]
		a11 += ax * ax
		a12 += ax * ay
		a22 += ay * ay
		b1 += ax * rhs
		b2 += ay * rhs
	}
	det := a11*a22 - a12*a12
	if math.Abs(det) < 1e-9 {
		return geom.Point{}, false
	}
	return geom.Point{
		X: (a22*b1 - a12*b2) / det,
		Y: (a11*b2 - a12*b1) / det,
	}, true
}

// SpreadAnchors picks k anchors spread over the field: the alive nodes
// nearest the points of a ceil(sqrt(k))-sized jittered grid. Deterministic
// for a given network.
func SpreadAnchors(nw *network.Network, k int) ([]network.NodeID, error) {
	if k < 3 {
		return nil, fmt.Errorf("localize: need at least 3 anchors, got %d", k)
	}
	x0, y0, x1, y1 := nw.Bounds().BoundingBox()
	side := int(math.Ceil(math.Sqrt(float64(k))))
	seen := make(map[network.NodeID]bool, k)
	var anchors []network.NodeID
	for gy := 0; gy < side && len(anchors) < k; gy++ {
		for gx := 0; gx < side && len(anchors) < k; gx++ {
			p := geom.Point{
				X: x0 + (x1-x0)*(float64(gx)+0.5)/float64(side),
				Y: y0 + (y1-y0)*(float64(gy)+0.5)/float64(side),
			}
			id, err := nw.NearestNode(p)
			if err != nil {
				return nil, err
			}
			if !seen[id] {
				seen[id] = true
				anchors = append(anchors, id)
			}
		}
	}
	if len(anchors) < 3 {
		return nil, fmt.Errorf("localize: found only %d distinct anchors", len(anchors))
	}
	return anchors, nil
}
