package localize

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
)

func deploy(t *testing.T, n int, seed int64) *network.Network {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(n, f, 1.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestMultilaterateExact(t *testing.T) {
	truth := geom.Point{X: 3, Y: 7}
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = p.DistTo(truth)
	}
	got, ok := multilaterate(pts, dists)
	if !ok {
		t.Fatal("multilaterate failed")
	}
	if got.DistTo(truth) > 1e-9 {
		t.Errorf("estimate %v, want %v", got, truth)
	}
}

func TestMultilaterateCollinearFails(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}}
	dists := []float64{1, 2, 3}
	if _, ok := multilaterate(pts, dists); ok {
		t.Error("collinear anchors should fail")
	}
}

func TestSpreadAnchors(t *testing.T) {
	nw := deploy(t, 2500, 1)
	anchors, err := SpreadAnchors(nw, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors) != 9 {
		t.Fatalf("anchors = %d, want 9", len(anchors))
	}
	seen := make(map[network.NodeID]bool)
	for _, a := range anchors {
		if seen[a] {
			t.Fatal("duplicate anchor")
		}
		seen[a] = true
	}
	if _, err := SpreadAnchors(nw, 2); err == nil {
		t.Error("want error for k<3")
	}
}

func TestDVHopValidation(t *testing.T) {
	nw := deploy(t, 100, 1)
	if _, err := DVHop(nw, []network.NodeID{0, 1}); err == nil {
		t.Error("want error for too few anchors")
	}
	nw.Node(0).Failed = true
	if _, err := DVHop(nw, []network.NodeID{0, 1, 2}); err == nil {
		t.Error("want error for failed anchor")
	}
}

func TestDVHopAccuracy(t *testing.T) {
	nw := deploy(t, 2500, 1)
	anchors, err := SpreadAnchors(nw, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DVHop(nw, anchors)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly every node localizes on a connected graph.
	if len(res.Estimated) < nw.Len()*9/10 {
		t.Errorf("localized %d of %d nodes", len(res.Estimated), nw.Len())
	}
	// DV-hop on a degree-7 uniform deployment gets within a few radio
	// ranges; mean error under 3 field units (2 radio ranges).
	if res.MeanError > 3 {
		t.Errorf("mean error = %v units, want < 3", res.MeanError)
	}
	if res.MaxError < res.MeanError {
		t.Error("max error below mean error")
	}
	// Anchors localize exactly.
	for _, a := range anchors {
		if res.Estimated[a] != nw.Node(a).Pos {
			t.Fatalf("anchor %d not at true position", a)
		}
	}
}

func TestDVHopMoreAnchorsHelp(t *testing.T) {
	nw := deploy(t, 2500, 3)
	few, err := SpreadAnchors(nw, 4)
	if err != nil {
		t.Fatal(err)
	}
	many, err := SpreadAnchors(nw, 25)
	if err != nil {
		t.Fatal(err)
	}
	resFew, err := DVHop(nw, few)
	if err != nil {
		t.Fatal(err)
	}
	resMany, err := DVHop(nw, many)
	if err != nil {
		t.Fatal(err)
	}
	if resMany.MeanError >= resFew.MeanError {
		t.Errorf("more anchors did not help: %v vs %v", resMany.MeanError, resFew.MeanError)
	}
}

func TestBFSHopsMatchesTreeLevels(t *testing.T) {
	nw := deploy(t, 500, 5)
	root, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	hops := bfsHops(nw, root)
	if hops[root] != 0 {
		t.Errorf("root hops = %d", hops[root])
	}
	// Spot-check: every neighbor of the root is at hop 1.
	for _, nb := range nw.AliveNeighbors(root) {
		if hops[nb] != 1 {
			t.Errorf("neighbor %d hops = %d, want 1", nb, hops[nb])
		}
	}
}
