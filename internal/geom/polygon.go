package geom

import "math"

// Polygon is a simple polygon given by its vertices in order. Operations in
// this package produce and expect counterclockwise orientation; use
// EnsureCCW to normalize.
type Polygon []Point

// Rect returns the axis-aligned rectangle [x0,x1] x [y0,y1] as a CCW polygon.
func Rect(x0, y0, x1, y1 float64) Polygon {
	return Polygon{
		{X: x0, Y: y0},
		{X: x1, Y: y0},
		{X: x1, Y: y1},
		{X: x0, Y: y1},
	}
}

// SignedArea returns the signed area of the polygon (positive when CCW).
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	var a float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		a += p.X*q.Y - q.X*p.Y
	}
	return a / 2
}

// Area returns the absolute area of the polygon.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// EnsureCCW returns the polygon with counterclockwise orientation,
// reversing the vertex order when necessary.
func (pg Polygon) EnsureCCW() Polygon {
	if pg.SignedArea() >= 0 {
		return pg
	}
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Centroid returns the area centroid of the polygon. For degenerate
// polygons it falls back to the vertex average.
func (pg Polygon) Centroid() Point {
	if len(pg) == 0 {
		return Point{}
	}
	a := pg.SignedArea()
	if math.Abs(a) <= Eps {
		var c Point
		for _, p := range pg {
			c.X += p.X
			c.Y += p.Y
		}
		c.X /= float64(len(pg))
		c.Y /= float64(len(pg))
		return c
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.X*q.Y - q.X*p.Y
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	return Point{X: cx / (6 * a), Y: cy / (6 * a)}
}

// Contains reports whether p lies inside or on the boundary of the polygon
// (even-odd rule with an Eps-wide boundary band).
func (pg Polygon) Contains(p Point) bool {
	if len(pg) < 3 {
		return false
	}
	inside := false
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		if (Segment{A: a, B: b}).DistToPoint(p) <= Eps {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xInt := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xInt {
				inside = !inside
			}
		}
	}
	return inside
}

// Edges returns the polygon's boundary segments in order.
func (pg Polygon) Edges() []Segment {
	if len(pg) < 2 {
		return nil
	}
	out := make([]Segment, 0, len(pg))
	for i := range pg {
		out = append(out, Segment{A: pg[i], B: pg[(i+1)%len(pg)]})
	}
	return out
}

// Perimeter returns the total boundary length.
func (pg Polygon) Perimeter() float64 {
	var l float64
	for _, e := range pg.Edges() {
		l += e.Length()
	}
	return l
}

// BoundingBox returns the axis-aligned bounding box of the polygon.
func (pg Polygon) BoundingBox() (minX, minY, maxX, maxY float64) {
	if len(pg) == 0 {
		return 0, 0, 0, 0
	}
	minX, maxX = pg[0].X, pg[0].X
	minY, maxY = pg[0].Y, pg[0].Y
	for _, p := range pg[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return minX, minY, maxX, maxY
}

// HalfPlane represents the set of points p with (p - Origin) . Normal <= 0,
// i.e. the side of the boundary line that the normal points away from.
type HalfPlane struct {
	Origin Point
	Normal Vec
}

// Side returns a negative value when p is strictly inside the half-plane,
// zero (within Eps) on the boundary and positive outside.
func (h HalfPlane) Side(p Point) float64 {
	return p.Sub(h.Origin).Dot(h.Normal)
}

// Contains reports whether p is inside the half-plane or on its boundary.
func (h HalfPlane) Contains(p Point) bool { return h.Side(p) <= Eps }

// ClipHalfPlane clips a convex polygon against a half-plane using the
// Sutherland-Hodgman rule, returning the (possibly empty) convex piece that
// lies inside the half-plane.
func (pg Polygon) ClipHalfPlane(h HalfPlane) Polygon {
	if len(pg) == 0 {
		return nil
	}
	var out Polygon
	n := len(pg)
	for i := 0; i < n; i++ {
		cur, next := pg[i], pg[(i+1)%n]
		sc, sn := h.Side(cur), h.Side(next)
		curIn := sc <= Eps
		nextIn := sn <= Eps
		if curIn {
			out = append(out, cur)
		}
		if curIn != nextIn {
			// The edge crosses the boundary; interpolate the crossing.
			t := sc / (sc - sn)
			out = append(out, Segment{A: cur, B: next}.PointAt(t))
		}
	}
	return dedupeClosePoints(out)
}

// dedupeClosePoints removes consecutive (and wrap-around) duplicate vertices
// that clipping can introduce.
func dedupeClosePoints(pg Polygon) Polygon {
	if len(pg) == 0 {
		return nil
	}
	out := make(Polygon, 0, len(pg))
	for _, p := range pg {
		if len(out) > 0 && out[len(out)-1].NearlyEqual(p) {
			continue
		}
		out = append(out, p)
	}
	for len(out) > 1 && out[0].NearlyEqual(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return nil
	}
	return out
}
