package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clampCoord maps an arbitrary float into a sane coordinate range.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 100)
}

func TestClipHalfPlaneResultInsideProperty(t *testing.T) {
	f := func(ox, oy, nx, ny float64) bool {
		h := HalfPlane{
			Origin: Point{X: clampCoord(ox), Y: clampCoord(oy)},
			Normal: Vec{X: clampCoord(nx), Y: clampCoord(ny)},
		}
		if h.Normal.Norm() <= Eps {
			return true
		}
		pg := Rect(-50, -50, 50, 50)
		clipped := pg.ClipHalfPlane(h)
		for _, p := range clipped {
			if h.Side(p) > 1e-6 {
				return false
			}
			if !pg.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClipIdempotentProperty(t *testing.T) {
	f := func(ox, oy, nx, ny float64) bool {
		h := HalfPlane{
			Origin: Point{X: clampCoord(ox), Y: clampCoord(oy)},
			Normal: Vec{X: clampCoord(nx), Y: clampCoord(ny)},
		}
		if h.Normal.Norm() <= Eps {
			return true
		}
		pg := Rect(-50, -50, 50, 50).ClipHalfPlane(h)
		if pg == nil {
			return true
		}
		again := pg.ClipHalfPlane(h)
		// Clipping by the same half-plane again changes nothing (up to
		// numerical noise in area).
		return math.Abs(pg.Area()-again.Area()) <= 1e-6*(1+pg.Area())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBisectorEquidistantProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Point{X: clampCoord(ax), Y: clampCoord(ay)}
		b := Point{X: clampCoord(bx), Y: clampCoord(by)}
		if a.NearlyEqual(b) {
			return true
		}
		h := bisectorHalfPlane(a, b)
		// The half-plane boundary passes through the midpoint; points on
		// the a-side are closer to a.
		if math.Abs(h.Side(a.Mid(b))) > 1e-9 {
			return false
		}
		if !h.Contains(a) {
			return false
		}
		return h.Side(b) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVoronoiPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		sites := make([]Point, n)
		for i := range sites {
			sites[i] = Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		}
		bounds := Rect(0, 0, 40, 40)
		d := Voronoi(sites, bounds)
		var total float64
		for _, c := range d.Cells {
			total += c.Region.Area()
		}
		if math.Abs(total-1600) > 1e-4 {
			t.Fatalf("trial %d: partition area %v != 1600", trial, total)
		}
		// Random probe points: the containing cell is the nearest site.
		for probe := 0; probe < 20; probe++ {
			p := Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
			nearest := d.CellContaining(p)
			for i := range d.Cells {
				if p.DistTo(d.Cells[i].Site) < p.DistTo(d.Cells[nearest].Site)-1e-9 {
					t.Fatalf("CellContaining returned non-nearest site")
				}
			}
		}
	}
}

func TestHausdorffZeroIffSubsetsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(15)
		a := make([]Point, n)
		for i := range a {
			a[i] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		// Same set in shuffled order: Hausdorff must be zero.
		b := make([]Point, n)
		copy(b, a)
		rng.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })
		if got := HausdorffDistance(a, b); got != 0 {
			t.Fatalf("shuffled identical sets: Hausdorff = %v", got)
		}
	}
}

func TestPolygonAreaNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		pg := make(Polygon, n)
		for i := range pg {
			pg[i] = Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		if pg.Area() < 0 {
			t.Fatal("negative area")
		}
		ccw := pg.EnsureCCW()
		if ccw.SignedArea() < -Eps {
			t.Fatal("EnsureCCW left a CW polygon")
		}
	}
}

func TestSegmentClosestPointIsClosestProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		s := Segment{
			A: Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
			B: Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
		}
		p := Point{X: rng.Float64()*20 - 5, Y: rng.Float64()*20 - 5}
		cp := s.ClosestPoint(p)
		d := p.DistTo(cp)
		// No sampled point on the segment is closer.
		for k := 0; k <= 20; k++ {
			q := s.PointAt(float64(k) / 20)
			if p.DistTo(q) < d-1e-9 {
				t.Fatalf("found closer point %v than ClosestPoint %v", q, cp)
			}
		}
	}
}
