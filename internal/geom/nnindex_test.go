package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteNearest mirrors the linear scans the index replaces: lowest index
// wins exact ties.
func bruteNearest(sites []Point, p Point, exclude int) int {
	best, bestD2 := -1, 0.0
	for i, s := range sites {
		if i == exclude {
			continue
		}
		d2 := p.Dist2To(s)
		if best < 0 || d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best
}

// randomSiteSets yields the site configurations every index property is
// checked against: uniform, tightly clustered (many near-ties), grid
// (exact ties), tiny sets and duplicates.
func randomSiteSets(rng *rand.Rand) [][]Point {
	uniform := make([]Point, 60)
	for i := range uniform {
		uniform[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	cluster := make([]Point, 40)
	for i := range cluster {
		cluster[i] = Point{X: 25 + rng.NormFloat64(), Y: 25 + rng.NormFloat64()}
	}
	var grid []Point
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			grid = append(grid, Point{X: float64(i) * 10, Y: float64(j) * 10})
		}
	}
	dup := []Point{{3, 3}, {3, 3}, {3, 3}, {40, 40}, {3, 3.0000000005}}
	single := []Point{{17, 9}}
	line := []Point{{0, 5}, {10, 5}, {20, 5}, {30, 5}, {50, 5}}
	return [][]Point{uniform, cluster, grid, dup, single, line}
}

// probes mixes in-bounds, boundary and out-of-bounds query points.
func probes(rng *rand.Rand, n int) []Point {
	out := make([]Point, 0, n+4)
	for i := 0; i < n; i++ {
		out = append(out, Point{X: rng.Float64()*70 - 10, Y: rng.Float64()*70 - 10})
	}
	out = append(out, Point{0, 0}, Point{50, 50}, Point{-100, 25}, Point{25, 200})
	return out
}

func TestNNIndexNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	bounds := Rect(0, 0, 50, 50)
	for si, sites := range randomSiteSets(rng) {
		ix := NewNNIndex(sites, bounds)
		for _, p := range probes(rng, 300) {
			want := bruteNearest(sites, p, -1)
			if got := ix.Nearest(p); got != want {
				t.Fatalf("set %d: Nearest(%v) = %d, brute = %d", si, p, got, want)
			}
		}
	}
}

func TestNNIndexWarmStartHintIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	bounds := Rect(0, 0, 50, 50)
	for si, sites := range randomSiteSets(rng) {
		ix := NewNNIndex(sites, bounds)
		for _, p := range probes(rng, 100) {
			want := ix.Nearest(p)
			// Every hint — the right answer, the farthest site, invalid
			// indices — must return the cold-query result.
			hints := []int{want, 0, len(sites) - 1, rng.Intn(len(sites)), -1, len(sites), 999999}
			for _, h := range hints {
				if got := ix.NearestWarm(p, h); got != want {
					t.Fatalf("set %d: NearestWarm(%v, hint %d) = %d, want %d", si, p, h, got, want)
				}
			}
		}
	}
}

func TestNNIndexNearestExcludingMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	bounds := Rect(0, 0, 50, 50)
	for si, sites := range randomSiteSets(rng) {
		ix := NewNNIndex(sites, bounds)
		for _, p := range probes(rng, 100) {
			ex := rng.Intn(len(sites))
			want := bruteNearest(sites, p, ex)
			if got := ix.NearestExcluding(p, ex); got != want {
				t.Fatalf("set %d: NearestExcluding(%v, %d) = %d, brute = %d", si, p, ex, got, want)
			}
		}
	}
}

func TestNNIndexNearestExcludingSingleSite(t *testing.T) {
	ix := NewNNIndex([]Point{{5, 5}}, Rect(0, 0, 10, 10))
	if got := ix.NearestExcluding(Point{1, 1}, 0); got != -1 {
		t.Errorf("excluding the only site should return -1, got %d", got)
	}
}

func TestNNIndexVisitByDistanceOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	bounds := Rect(0, 0, 50, 50)
	for si, sites := range randomSiteSets(rng) {
		ix := NewNNIndex(sites, bounds)
		for _, p := range probes(rng, 40) {
			var order []int
			var dists []float64
			ix.VisitByDistance(p, func(i int, d2 float64) bool {
				order = append(order, i)
				dists = append(dists, d2)
				return true
			})
			if len(order) != len(sites) {
				t.Fatalf("set %d: visited %d of %d sites", si, len(order), len(sites))
			}
			for k := 1; k < len(order); k++ {
				if dists[k] < dists[k-1] {
					t.Fatalf("set %d: distance order violated at %d: %v after %v", si, k, dists[k], dists[k-1])
				}
				if dists[k] == dists[k-1] && order[k] < order[k-1] {
					t.Fatalf("set %d: tie order violated at %d: idx %d after %d", si, k, order[k], order[k-1])
				}
			}
			// The reported distances must be the true ones.
			for k, idx := range order {
				if want := p.Dist2To(sites[idx]); dists[k] != want {
					t.Fatalf("set %d: d2 mismatch for site %d", si, idx)
				}
			}
			seen := append([]int(nil), order...)
			sort.Ints(seen)
			for k, idx := range seen {
				if idx != k {
					t.Fatalf("set %d: site %d never visited", si, k)
				}
			}
		}
	}
}

func TestNNIndexVisitByDistanceEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	sites := make([]Point, 100)
	for i := range sites {
		sites[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	ix := NewNNIndex(sites, Rect(0, 0, 50, 50))
	p := Point{X: 25, Y: 25}
	// Stopping after m visits must yield exactly the m nearest sites.
	for _, m := range []int{1, 3, 10, 50} {
		var got []int
		ix.VisitByDistance(p, func(i int, d2 float64) bool {
			got = append(got, i)
			return len(got) < m
		})
		if len(got) != m {
			t.Fatalf("stop after %d: visited %d", m, len(got))
		}
		type sd struct {
			d2  float64
			idx int
		}
		all := make([]sd, len(sites))
		for i, s := range sites {
			all[i] = sd{p.Dist2To(s), i}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d2 != all[b].d2 {
				return all[a].d2 < all[b].d2
			}
			return all[a].idx < all[b].idx
		})
		for k := 0; k < m; k++ {
			if got[k] != all[k].idx {
				t.Fatalf("prefix mismatch at %d: got %d, want %d", k, got[k], all[k].idx)
			}
		}
	}
}

func TestNNIndexEmpty(t *testing.T) {
	ix := NewNNIndex(nil, Rect(0, 0, 10, 10))
	if got := ix.Nearest(Point{1, 2}); got != -1 {
		t.Errorf("Nearest on empty index = %d, want -1", got)
	}
	if got := ix.NearestWarm(Point{1, 2}, 3); got != -1 {
		t.Errorf("NearestWarm on empty index = %d, want -1", got)
	}
	called := false
	ix.VisitByDistance(Point{1, 2}, func(int, float64) bool { called = true; return true })
	if called {
		t.Error("VisitByDistance visited sites of an empty index")
	}
}

func TestNNIndexDegenerateGeometry(t *testing.T) {
	// All sites coincident, and all sites collinear: the grid degenerates
	// but queries must stay exact.
	coincident := []Point{{7, 7}, {7, 7}, {7, 7}}
	collinear := []Point{{0, 3}, {1, 3}, {2, 3}, {30, 3}}
	for si, sites := range [][]Point{coincident, collinear} {
		ix := NewNNIndex(sites, nil)
		rng := rand.New(rand.NewSource(int64(76 + si)))
		for _, p := range probes(rng, 50) {
			if got, want := ix.Nearest(p), bruteNearest(sites, p, -1); got != want {
				t.Fatalf("set %d: Nearest(%v) = %d, want %d", si, p, got, want)
			}
		}
	}
}
