// Package geom provides the computational-geometry substrate used by the
// Iso-Map reproduction: points and vectors, segments, convex polygon
// clipping, bounded Voronoi diagrams, polylines and Hausdorff distance.
//
// All coordinates are in the normalized field units used throughout the
// paper's evaluation (the 50x50 unit field corresponds to a 400 m x 400 m
// harbor section).
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric predicates. Coordinates in this
// repository live in fields of side <= a few hundred units, so an absolute
// tolerance is appropriate.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Vec is a displacement (or direction) in the plane.
type Vec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("<%.4g, %.4g>", v.X, v.Y) }

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{X: p.X + v.X, Y: p.Y + v.Y} }

// Sub returns the displacement from q to p.
func (p Point) Sub(q Point) Vec { return Vec{X: p.X - q.X, Y: p.Y - q.Y} }

// DistTo returns the Euclidean distance between p and q.
func (p Point) DistTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2To returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as Voronoi membership tests.
func (p Point) Dist2To(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of p and q.
func (p Point) Mid(q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}

// NearlyEqual reports whether p and q coincide within Eps.
func (p Point) NearlyEqual(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Add returns the vector sum v+w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns the vector difference v-w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{X: v.X * s, Y: v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the cross product of v and w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared length of v.
func (v Vec) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v normalized to unit length. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n <= Eps {
		return Vec{}
	}
	return Vec{X: v.X / n, Y: v.Y / n}
}

// Perp returns v rotated 90 degrees counterclockwise.
func (v Vec) Perp() Vec { return Vec{X: -v.Y, Y: v.X} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{X: -v.X, Y: -v.Y} }

// Angle returns the direction of v in radians in (-pi, pi].
func (v Vec) Angle() float64 { return math.Atan2(v.Y, v.X) }

// AngleBetween returns the unsigned angle between v and w in [0, pi].
// It is the metric used for the angular-separation filter parameter s_a.
func (v Vec) AngleBetween(w Vec) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv <= Eps || nw <= Eps {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// NormalizeAngle maps an angle in radians to (-pi, pi].
func NormalizeAngle(a float64) float64 {
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}
