package geom

import "math"

// Segment is a closed straight-line segment between two points.
type Segment struct {
	A Point
	B Point
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.DistTo(s.B) }

// Dir returns the (unnormalized) direction vector from A to B.
func (s Segment) Dir() Vec { return s.B.Sub(s.A) }

// Mid returns the midpoint of the segment.
func (s Segment) Mid() Point { return s.A.Mid(s.B) }

// PointAt returns the point A + t*(B-A). t in [0,1] stays on the segment.
func (s Segment) PointAt(t float64) Point {
	return Point{X: s.A.X + t*(s.B.X-s.A.X), Y: s.A.Y + t*(s.B.Y-s.A.Y)}
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.Dir()
	n2 := d.Norm2()
	if n2 <= Eps*Eps {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / n2
	t = math.Max(0, math.Min(1, t))
	return s.PointAt(t)
}

// DistToPoint returns the distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return p.DistTo(s.ClosestPoint(p))
}

// Line is an infinite line through Origin with direction Dir.
type Line struct {
	Origin Point
	Dir    Vec
}

// LineThrough returns the line through two points.
func LineThrough(a, b Point) Line {
	return Line{Origin: a, Dir: b.Sub(a)}
}

// PerpendicularAt returns the line through p perpendicular to direction d.
// This is how a type-1 boundary is constructed from an isoline node's
// gradient direction (Sec. 3.4).
func PerpendicularAt(p Point, d Vec) Line {
	return Line{Origin: p, Dir: d.Perp()}
}

// IntersectLines returns the intersection point of two lines and true, or a
// zero point and false when they are parallel (within Eps).
func IntersectLines(l1, l2 Line) (Point, bool) {
	den := l1.Dir.Cross(l2.Dir)
	if math.Abs(den) <= Eps {
		return Point{}, false
	}
	t := l2.Origin.Sub(l1.Origin).Cross(l2.Dir) / den
	return l1.Origin.Add(l1.Dir.Scale(t)), true
}

// IntersectSegmentLine returns the intersection of segment s with line l and
// true, or false when they do not intersect (or are parallel).
func IntersectSegmentLine(s Segment, l Line) (Point, bool) {
	den := s.Dir().Cross(l.Dir)
	if math.Abs(den) <= Eps {
		return Point{}, false
	}
	t := l.Origin.Sub(s.A).Cross(l.Dir) / den
	if t < -Eps || t > 1+Eps {
		return Point{}, false
	}
	return s.PointAt(math.Max(0, math.Min(1, t))), true
}

// IntersectSegments returns the intersection point of two closed segments
// and true, or false when they do not intersect. Collinear overlap reports
// the first segment's endpoint that lies on the other segment.
func IntersectSegments(s1, s2 Segment) (Point, bool) {
	d1, d2 := s1.Dir(), s2.Dir()
	den := d1.Cross(d2)
	diff := s2.A.Sub(s1.A)
	if math.Abs(den) <= Eps {
		// Parallel. Handle collinear overlap conservatively.
		if math.Abs(diff.Cross(d1)) > Eps {
			return Point{}, false
		}
		for _, p := range []Point{s1.A, s1.B} {
			if s2.DistToPoint(p) <= Eps {
				return p, true
			}
		}
		for _, p := range []Point{s2.A, s2.B} {
			if s1.DistToPoint(p) <= Eps {
				return p, true
			}
		}
		return Point{}, false
	}
	t := diff.Cross(d2) / den
	u := diff.Cross(d1) / den
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Point{}, false
	}
	return s1.PointAt(math.Max(0, math.Min(1, t))), true
}

// SegmentDist returns the minimum distance between two segments.
func SegmentDist(s1, s2 Segment) float64 {
	if _, ok := IntersectSegments(s1, s2); ok {
		return 0
	}
	d := s1.DistToPoint(s2.A)
	if v := s1.DistToPoint(s2.B); v < d {
		d = v
	}
	if v := s2.DistToPoint(s1.A); v < d {
		d = v
	}
	if v := s2.DistToPoint(s1.B); v < d {
		d = v
	}
	return d
}
