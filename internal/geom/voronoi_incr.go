package geom

import (
	"math"
	"sync"
)

// This file implements incremental Voronoi reconstruction (PR 6): given a
// diagram built by Voronoi/VoronoiWithIndex and a new site slice that
// mostly matches the old one slot by slot, DiffSites proves which cells
// cannot have changed and VoronoiIncremental reuses them verbatim,
// recomputing only the rest. The contract is byte-identity: the result
// equals VoronoiWithIndex over the new sites bit for bit, which the
// property tests pin against the full construction.
//
// The cleanliness argument rests on the per-cell scan horizon recorded by
// voronoiCell. The pruned construction visits candidates in increasing
// (distance, index) order and applies a clip for every candidate visited
// before the one that trips the security-radius exit; the horizon is that
// stopping candidate's squared distance. A cell whose own site is
// unchanged and whose nearest changed position lies at or beyond the
// horizon (widened by adjacencyTol, see below) therefore replays the
// identical visit sequence — same clips, in the same order, producing the
// same region floats — and its adjacency probes resolve to the same
// stable neighbors, so the whole cell struct can be reused.

// VoronoiDiff is the result of diffing a new site slice against the sites
// of a previously built diagram. Slot stability is positional: slot i is
// stable when it exists in both slices and the position is bitwise equal.
// Callers that want high stability under churn should assign sites to
// slots accordingly (see contour.Incremental's slot arrangement).
type VoronoiDiff struct {
	// Identical marks a diff with no changed slot at all: the previous
	// diagram can be reused as a whole.
	Identical bool
	// Stable[i] is true when new site i occupies the same slot with the
	// same position as in the previous diagram.
	Stable []bool
	// Dirty[i] marks cells whose region or adjacency must be recomputed:
	// every unstable slot, plus stable slots whose scan horizon a changed
	// position intrudes on. Clean (non-dirty) cells are provably
	// byte-identical to a full rebuild.
	Dirty []bool
	// DirtyCount is the number of true entries in Dirty.
	DirtyCount int
	// StaleOld lists previous-diagram slots whose site vanished or moved;
	// their old regions bound where nearest-site membership can have
	// changed on the removal side.
	StaleOld []int
	// Deltas are the changed positions: previous sites at stale slots
	// plus new sites at unstable slots.
	Deltas []Point
	// NearDupe is true when some delta lies within duplicate-resolution
	// range of another site (previous, new, or another delta). Cell reuse
	// stays exact, but region-based changed-area bounds are unsound under
	// duplicate ambiguity: callers deriving a dirty area from cell
	// regions must fall back to treating the whole level as changed.
	NearDupe bool
}

// dupeSlack is the distance under which two positions may fall into
// NearlyEqual duplicate resolution (component-wise Eps, so anything
// within Eps*sqrt(2); 4*Eps is a safe cover).
const dupeSlack = 4 * Eps

// DiffSites diffs sites against the receiver's generating sites. The
// receiver must have been built by Voronoi, VoronoiWithIndex or
// VoronoiIncremental over the same bounds (VoronoiNaive diagrams carry
// infinite horizons, so every cell diffs dirty — correct but never an
// improvement).
func (d *VoronoiDiagram) DiffSites(sites []Point) VoronoiDiff {
	return d.DiffSitesWorkers(sites, 1)
}

// DiffSitesWorkers is DiffSites with the per-slot horizon checks — the
// dominant cost on large mostly-stable rounds — fanned out over a bounded
// worker pool. Every slot's verdict is an independent pure function of the
// prebuilt delta index, DirtyCount is a sum and NearDupe an OR, so the
// returned diff is identical to the sequential one at any width. workers
// below 2 (and slot counts too small to amortize a goroutine) run inline.
func (d *VoronoiDiagram) DiffSitesWorkers(sites []Point, workers int) VoronoiDiff {
	old := d.Cells
	diff := VoronoiDiff{
		Stable: make([]bool, len(sites)),
		Dirty:  make([]bool, len(sites)),
	}
	minLen := len(old)
	if len(sites) < minLen {
		minLen = len(sites)
	}
	for i := 0; i < minLen; i++ {
		if old[i].Site == sites[i] {
			diff.Stable[i] = true
		} else {
			diff.StaleOld = append(diff.StaleOld, i)
			diff.Deltas = append(diff.Deltas, old[i].Site, sites[i])
		}
	}
	for i := minLen; i < len(old); i++ {
		diff.StaleOld = append(diff.StaleOld, i)
		diff.Deltas = append(diff.Deltas, old[i].Site)
	}
	for i := minLen; i < len(sites); i++ {
		diff.Deltas = append(diff.Deltas, sites[i])
	}
	if len(diff.Deltas) == 0 {
		diff.Identical = true
		return diff
	}
	deltaNN := NewNNIndex(diff.Deltas, d.Bounds)
	// checkSpan classifies slots [lo,hi), returning the span's dirty count
	// and near-dupe verdict. Writes land in disjoint Dirty slots.
	checkSpan := func(lo, hi int) (dirty int, nearDupe bool) {
		for i := lo; i < hi; i++ {
			if !diff.Stable[i] {
				diff.Dirty[i] = true
				dirty++
				continue
			}
			s := sites[i]
			nd := deltaNN.Nearest(s)
			dd := math.Sqrt(s.Dist2To(diff.Deltas[nd]))
			if dd <= dupeSlack {
				nearDupe = true
			}
			// The horizon covers the clip sequence; the adjacencyTol pad
			// covers edgeNeighbor's equidistance band around the region
			// boundary, which extends up to tol past twice the security
			// radius.
			if dd <= math.Sqrt(old[i].horizonD2)+adjacencyTol {
				diff.Dirty[i] = true
				dirty++
			}
		}
		return dirty, nearDupe
	}
	const minSpan = 64
	if workers > len(sites)/minSpan {
		workers = len(sites) / minSpan
	}
	if workers <= 1 {
		diff.DirtyCount, diff.NearDupe = checkSpan(0, len(sites))
	} else {
		counts := make([]int, workers)
		dupes := make([]bool, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * len(sites) / workers
			hi := (w + 1) * len(sites) / workers
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				counts[w], dupes[w] = checkSpan(lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			diff.DirtyCount += counts[w]
			diff.NearDupe = diff.NearDupe || dupes[w]
		}
	}
	if !diff.NearDupe {
		for i := range diff.Deltas {
			j := deltaNN.NearestExcluding(diff.Deltas[i], i)
			if j >= 0 && math.Sqrt(diff.Deltas[i].Dist2To(diff.Deltas[j])) <= dupeSlack {
				diff.NearDupe = true
				break
			}
		}
	}
	return diff
}

// VoronoiIncremental rebuilds the diagram over sites, reusing from prev
// every cell diff marks clean and recomputing the dirty ones with index
// (a fresh NNIndex over sites and prev.Bounds). diff must come from
// prev.DiffSites(sites). The result is byte-identical to
// VoronoiWithIndex(sites, prev.Bounds, index).
func VoronoiIncremental(prev *VoronoiDiagram, sites []Point, index *NNIndex, diff VoronoiDiff) *VoronoiDiagram {
	d := &VoronoiDiagram{
		Bounds: prev.Bounds,
		Cells:  make([]VoronoiCell, len(sites)),
		index:  index,
	}
	for i, s := range sites {
		if !diff.Dirty[i] {
			// Shares Region/Neighbors/SharedEdges slices with prev; all
			// immutable after construction.
			d.Cells[i] = prev.Cells[i]
			continue
		}
		region, horizon := voronoiCell(index, sites, i, d.Bounds)
		d.Cells[i] = VoronoiCell{Site: s, Index: i, Region: region, horizonD2: horizon}
	}
	for i := range d.Cells {
		if diff.Dirty[i] {
			d.cellAdjacency(sites, i)
		}
	}
	return d
}
