package geom

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestVoronoiSingleSite(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	d := Voronoi([]Point{{5, 5}}, bounds)
	if len(d.Cells) != 1 {
		t.Fatalf("cells = %d", len(d.Cells))
	}
	if got := d.Cells[0].Region.Area(); !almostEqual(got, 100, 1e-9) {
		t.Errorf("single-site cell area = %v, want 100", got)
	}
	if len(d.Cells[0].Neighbors) != 0 {
		t.Errorf("single site should have no neighbors, got %v", d.Cells[0].Neighbors)
	}
}

func TestVoronoiTwoSites(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	d := Voronoi([]Point{{2, 5}, {8, 5}}, bounds)
	a0 := d.Cells[0].Region.Area()
	a1 := d.Cells[1].Region.Area()
	if !almostEqual(a0, 50, 1e-6) || !almostEqual(a1, 50, 1e-6) {
		t.Errorf("areas = %v, %v, want 50 each", a0, a1)
	}
	// Each cell contains its own site.
	for i, c := range d.Cells {
		if !c.Region.Contains(c.Site) {
			t.Errorf("cell %d does not contain its site", i)
		}
	}
	// They are mutual neighbors.
	if len(d.Cells[0].Neighbors) != 1 || d.Cells[0].Neighbors[0] != 1 {
		t.Errorf("cell0 neighbors = %v, want [1]", d.Cells[0].Neighbors)
	}
	if len(d.Cells[1].Neighbors) != 1 || d.Cells[1].Neighbors[0] != 0 {
		t.Errorf("cell1 neighbors = %v, want [0]", d.Cells[1].Neighbors)
	}
	// Shared edge is the x=5 bisector.
	e := d.Cells[0].SharedEdges[0]
	if !almostEqual(e.A.X, 5, 1e-6) || !almostEqual(e.B.X, 5, 1e-6) {
		t.Errorf("shared edge not on bisector: %v", e)
	}
}

func TestVoronoiGridSites(t *testing.T) {
	bounds := Rect(0, 0, 4, 4)
	var sites []Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sites = append(sites, Point{X: 0.5 + float64(i), Y: 0.5 + float64(j)})
		}
	}
	d := Voronoi(sites, bounds)
	for i, c := range d.Cells {
		if got := c.Region.Area(); !almostEqual(got, 1, 1e-6) {
			t.Errorf("grid cell %d area = %v, want 1", i, got)
		}
	}
}

func TestVoronoiAreasPartitionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bounds := Rect(0, 0, 50, 50)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		sites := make([]Point, n)
		for i := range sites {
			sites[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		d := Voronoi(sites, bounds)
		var total float64
		for _, c := range d.Cells {
			total += c.Region.Area()
		}
		if !almostEqual(total, 2500, 1e-4) {
			t.Fatalf("trial %d: cell areas sum to %v, want 2500", trial, total)
		}
	}
}

func TestVoronoiCellsContainOwnSites(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bounds := Rect(0, 0, 20, 20)
	sites := make([]Point, 50)
	for i := range sites {
		sites[i] = Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
	}
	d := Voronoi(sites, bounds)
	for i, c := range d.Cells {
		if c.Region == nil {
			t.Fatalf("cell %d nil region", i)
		}
		if !c.Region.Contains(c.Site) {
			t.Errorf("cell %d does not contain site %v", i, c.Site)
		}
	}
}

func TestVoronoiNearestSiteProperty(t *testing.T) {
	// Any point strictly inside a cell must be nearest to that cell's site.
	rng := rand.New(rand.NewSource(17))
	bounds := Rect(0, 0, 30, 30)
	sites := make([]Point, 25)
	for i := range sites {
		sites[i] = Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
	}
	d := Voronoi(sites, bounds)
	for trial := 0; trial < 500; trial++ {
		p := Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
		owner := -1
		for i, c := range d.Cells {
			if c.Region.Contains(p) {
				// A boundary point can belong to several cells; take the
				// first and check it's within tolerance of the nearest.
				owner = i
				break
			}
		}
		if owner < 0 {
			t.Fatalf("point %v in no cell", p)
		}
		nearest := d.CellContaining(p)
		dOwner := p.DistTo(d.Cells[owner].Site)
		dNearest := p.DistTo(d.Cells[nearest].Site)
		if dOwner > dNearest+1e-6 {
			t.Errorf("point %v in cell %d (dist %v) but nearest site is %d (dist %v)",
				p, owner, dOwner, nearest, dNearest)
		}
	}
}

func TestVoronoiDuplicateSites(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	d := Voronoi([]Point{{3, 3}, {3, 3}, {7, 7}}, bounds)
	if d.Cells[0].Region == nil {
		t.Error("first duplicate should keep its region")
	}
	if d.Cells[1].Region != nil {
		t.Error("second duplicate should have nil region")
	}
	if d.Cells[2].Region == nil {
		t.Error("distinct site should keep its region")
	}
	a := d.Cells[0].Region.Area() + d.Cells[2].Region.Area()
	if !almostEqual(a, 100, 1e-6) {
		t.Errorf("areas sum = %v, want 100", a)
	}
}

func TestVoronoiAdjacencySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	bounds := Rect(0, 0, 40, 40)
	sites := make([]Point, 30)
	for i := range sites {
		sites[i] = Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
	}
	d := Voronoi(sites, bounds)
	adj := make(map[[2]int]bool)
	for i, c := range d.Cells {
		for _, j := range c.Neighbors {
			adj[[2]int{i, j}] = true
		}
	}
	for key := range adj {
		if !adj[[2]int{key[1], key[0]}] {
			t.Errorf("adjacency %v not symmetric", key)
		}
	}
}

func TestCellContainingEmpty(t *testing.T) {
	d := &VoronoiDiagram{}
	if got := d.CellContaining(Point{X: 1, Y: 1}); got != -1 {
		t.Errorf("CellContaining on empty diagram = %d, want -1", got)
	}
}

func TestVoronoiCollinearSites(t *testing.T) {
	bounds := Rect(0, 0, 9, 3)
	sites := []Point{{1.5, 1.5}, {4.5, 1.5}, {7.5, 1.5}}
	d := Voronoi(sites, bounds)
	for i, c := range d.Cells {
		if got := c.Region.Area(); !almostEqual(got, 9, 1e-6) {
			t.Errorf("collinear cell %d area = %v, want 9", i, got)
		}
	}
	// Middle cell has two neighbors, outer cells one each.
	if len(d.Cells[1].Neighbors) != 2 {
		t.Errorf("middle cell neighbors = %v", d.Cells[1].Neighbors)
	}
	if len(d.Cells[0].Neighbors) != 1 || len(d.Cells[2].Neighbors) != 1 {
		t.Errorf("outer cell neighbors = %v / %v", d.Cells[0].Neighbors, d.Cells[2].Neighbors)
	}
}

func TestVoronoiSharedEdgeOnBisector(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bounds := Rect(0, 0, 20, 20)
	sites := make([]Point, 12)
	for i := range sites {
		sites[i] = Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
	}
	d := Voronoi(sites, bounds)
	for i, c := range d.Cells {
		for k, j := range c.Neighbors {
			e := c.SharedEdges[k]
			m := e.Mid()
			di := m.DistTo(sites[i])
			dj := m.DistTo(sites[j])
			if math.Abs(di-dj) > 1e-5 {
				t.Errorf("shared edge midpoint not equidistant: cell %d nbr %d (%v vs %v)", i, j, di, dj)
			}
		}
	}
}

// voronoiSiteSets yields the configurations the indexed construction is
// checked against the naive oracle on: uniform at several densities, a
// tight cluster plus far outliers, a regular grid (exact ties) and
// near-duplicate pairs.
func voronoiSiteSets(rng *rand.Rand) [][]Point {
	var sets [][]Point
	for _, n := range []int{1, 2, 3, 8, 40, 150} {
		sites := make([]Point, n)
		for i := range sites {
			sites[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		}
		sets = append(sets, sites)
	}
	cluster := make([]Point, 30)
	for i := range cluster {
		cluster[i] = Point{X: 10 + rng.NormFloat64()*0.5, Y: 10 + rng.NormFloat64()*0.5}
	}
	cluster = append(cluster, Point{45, 45}, Point{45, 5}, Point{5, 45})
	sets = append(sets, cluster)
	var grid []Point
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			grid = append(grid, Point{X: 5 + float64(i)*10, Y: 5 + float64(j)*10})
		}
	}
	sets = append(sets, grid)
	dups := []Point{{3, 3}, {3, 3}, {20, 20}, {20.0000000005, 20}, {40, 8}}
	sets = append(sets, dups)
	return sets
}

// polygonsEquivalent reports whether two convex polygons describe the same
// region within tol: equal areas and every vertex of each within tol of the
// other's boundary.
func polygonsEquivalent(a, b Polygon, tol float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !almostEqual(a.Area(), b.Area(), tol) {
		return false
	}
	onBoundary := func(p Point, pg Polygon) bool {
		for _, e := range pg.Edges() {
			if e.DistToPoint(p) <= tol {
				return true
			}
		}
		return false
	}
	for _, v := range a {
		if !onBoundary(v, b) {
			return false
		}
	}
	for _, v := range b {
		if !onBoundary(v, a) {
			return false
		}
	}
	return true
}

func TestVoronoiIndexedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	bounds := Rect(0, 0, 50, 50)
	for si, sites := range voronoiSiteSets(rng) {
		indexed := Voronoi(sites, bounds)
		naive := VoronoiNaive(sites, bounds)
		if len(indexed.Cells) != len(naive.Cells) {
			t.Fatalf("set %d: cell count %d vs %d", si, len(indexed.Cells), len(naive.Cells))
		}
		for i := range indexed.Cells {
			ic, nc := &indexed.Cells[i], &naive.Cells[i]
			if !polygonsEquivalent(ic.Region, nc.Region, 1e-6) {
				t.Fatalf("set %d cell %d: regions differ:\nindexed %v\nnaive   %v", si, i, ic.Region, nc.Region)
			}
			in := append([]int(nil), ic.Neighbors...)
			nn := append([]int(nil), nc.Neighbors...)
			sort.Ints(in)
			sort.Ints(nn)
			if len(in) != len(nn) {
				t.Fatalf("set %d cell %d: neighbors %v vs %v", si, i, in, nn)
			}
			for k := range in {
				if in[k] != nn[k] {
					t.Fatalf("set %d cell %d: neighbors %v vs %v", si, i, in, nn)
				}
			}
		}
		// Nearest-site lookups are exact, so they must agree bit-for-bit.
		for probe := 0; probe < 400; probe++ {
			p := Point{X: rng.Float64()*60 - 5, Y: rng.Float64()*60 - 5}
			if gi, gn := indexed.CellContaining(p), naive.CellContaining(p); gi != gn {
				t.Fatalf("set %d: CellContaining(%v) = %d indexed vs %d naive", si, p, gi, gn)
			}
		}
	}
}

func TestCellContainingSkipsDegenerateDuplicateCell(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	// sites[1] duplicates sites[0] within Eps but is strictly nearer to the
	// probe; its cell is degenerate (nil Region) and must never be returned.
	sites := []Point{{3, 3}, {3.0000000008, 3}, {7, 7}}
	d := Voronoi(sites, bounds)
	if d.Cells[1].Region != nil {
		t.Fatalf("expected duplicate cell 1 to have nil region")
	}
	p := Point{X: 3.000000001, Y: 3}
	got := d.CellContaining(p)
	if got == 1 {
		t.Fatalf("CellContaining returned the degenerate duplicate cell")
	}
	if got != 0 {
		t.Fatalf("CellContaining = %d, want 0", got)
	}
	// The caller contract: the returned cell's Region is walkable.
	if !d.Cells[got].Region.Contains(p) {
		t.Errorf("returned cell's region does not contain the probe")
	}
	// Same guarantee on the naive construction (no index, scan fallback).
	if got := VoronoiNaive(sites, bounds).CellContaining(p); got != 0 {
		t.Fatalf("naive CellContaining = %d, want 0", got)
	}
}

// benchSites places k sites uniformly over the 50x50 field (seeded).
func benchSites(k int) []Point {
	rng := rand.New(rand.NewSource(int64(k)))
	sites := make([]Point, k)
	for i := range sites {
		sites[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	return sites
}

func BenchmarkVoronoi(b *testing.B) {
	bounds := Rect(0, 0, 50, 50)
	for _, k := range []int{32, 128, 512, 2048} {
		sites := benchSites(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := Voronoi(sites, bounds); len(d.Cells) != k {
					b.Fatal("bad diagram")
				}
			}
		})
	}
}

func BenchmarkVoronoiNaive(b *testing.B) {
	bounds := Rect(0, 0, 50, 50)
	for _, k := range []int{32, 128, 512} {
		sites := benchSites(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := VoronoiNaive(sites, bounds); len(d.Cells) != k {
					b.Fatal("bad diagram")
				}
			}
		})
	}
}
