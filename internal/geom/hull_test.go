package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		{0, 0}, {2, 0}, {2, 2}, {0, 2},
		{1, 1}, {0.5, 1.5}, // interior
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull vertices = %d, want 4: %v", len(hull), hull)
	}
	if !almostEqual(hull.Area(), 4, 1e-9) {
		t.Errorf("hull area = %v, want 4", hull.Area())
	}
	if hull.SignedArea() <= 0 {
		t.Error("hull should be CCW")
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull := ConvexHull(pts)
	if len(hull) > 2 {
		t.Errorf("collinear hull has %d vertices: %v", len(hull), hull)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("empty hull = %v", got)
	}
	if got := ConvexHull([]Point{{1, 1}}); len(got) != 1 {
		t.Errorf("single-point hull = %v", got)
	}
	if got := ConvexHull([]Point{{1, 1}, {1, 1}, {1, 1}}); len(got) != 1 {
		t.Errorf("duplicate-point hull = %v", got)
	}
	if got := ConvexHull([]Point{{0, 0}, {1, 0}}); len(got) != 2 {
		t.Errorf("two-point hull = %v", got)
	}
}

func TestConvexHullContainsAllPointsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for _, p := range pts {
			if !hull.Contains(p) {
				t.Fatalf("hull %v does not contain input %v", hull, p)
			}
		}
		// Convexity: all turns CCW.
		for i := range hull {
			a, b, c := hull[i], hull[(i+1)%len(hull)], hull[(i+2)%len(hull)]
			if b.Sub(a).Cross(c.Sub(b)) < -1e-9 {
				t.Fatalf("hull not convex at %v", b)
			}
		}
	}
}

func TestConvexHullOfCircleApproximatesDisk(t *testing.T) {
	var pts []Point
	for k := 0; k < 100; k++ {
		th := 2 * math.Pi * float64(k) / 100
		pts = append(pts, Point{X: 5 + 3*math.Cos(th), Y: 5 + 3*math.Sin(th)})
	}
	hull := ConvexHull(pts)
	want := math.Pi * 9
	if math.Abs(hull.Area()-want) > 0.1*want {
		t.Errorf("hull area = %v, want ~%v", hull.Area(), want)
	}
}
