package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{X: 1, Y: 2}
	q := Point{X: 4, Y: 6}
	if got := p.DistTo(q); !almostEqual(got, 5, 1e-12) {
		t.Errorf("DistTo = %v, want 5", got)
	}
	if got := p.Dist2To(q); !almostEqual(got, 25, 1e-12) {
		t.Errorf("Dist2To = %v, want 25", got)
	}
	if got := q.Sub(p); got != (Vec{X: 3, Y: 4}) {
		t.Errorf("Sub = %v, want <3,4>", got)
	}
	if got := p.Add(Vec{X: 3, Y: 4}); got != q {
		t.Errorf("Add = %v, want %v", got, q)
	}
	if got := p.Mid(q); got != (Point{X: 2.5, Y: 4}) {
		t.Errorf("Mid = %v", got)
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{X: 3, Y: 4}
	if got := v.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Unit().Norm(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Unit norm = %v, want 1", got)
	}
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("zero Unit = %v, want zero", got)
	}
	if got := v.Perp().Dot(v); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Perp not orthogonal: dot = %v", got)
	}
	if got := v.Cross(v.Perp()); got <= 0 {
		t.Errorf("Perp should be CCW: cross = %v", got)
	}
	if got := v.Neg(); got != (Vec{X: -3, Y: -4}) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Scale(2); got != (Vec{X: 6, Y: 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAngleBetween(t *testing.T) {
	tests := []struct {
		name string
		v, w Vec
		want float64
	}{
		{"same", Vec{X: 1}, Vec{X: 2}, 0},
		{"orthogonal", Vec{X: 1}, Vec{Y: 1}, math.Pi / 2},
		{"opposite", Vec{X: 1}, Vec{X: -1}, math.Pi},
		{"45deg", Vec{X: 1}, Vec{X: 1, Y: 1}, math.Pi / 4},
		{"zero vec", Vec{}, Vec{X: 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.AngleBetween(tt.w); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("AngleBetween = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAngleConversions(t *testing.T) {
	if got := Degrees(math.Pi); !almostEqual(got, 180, 1e-12) {
		t.Errorf("Degrees(pi) = %v", got)
	}
	if got := Radians(90); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("Radians(90) = %v", got)
	}
	if got := NormalizeAngle(3 * math.Pi); !almostEqual(got, math.Pi, 1e-9) {
		t.Errorf("NormalizeAngle(3pi) = %v, want pi", got)
	}
	if got := NormalizeAngle(-3 * math.Pi); !almostEqual(got, math.Pi, 1e-9) {
		t.Errorf("NormalizeAngle(-3pi) = %v, want pi", got)
	}
}

func TestAngleBetweenSymmetricProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v := Vec{X: math.Mod(a, 100), Y: math.Mod(b, 100)}
		w := Vec{X: math.Mod(c, 100), Y: math.Mod(d, 100)}
		g1, g2 := v.AngleBetween(w), w.AngleBetween(v)
		return almostEqual(g1, g2, 1e-9) && g1 >= 0 && g1 <= math.Pi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPoint := func() Point {
		return Point{X: rng.Float64()*100 - 50, Y: rng.Float64()*100 - 50}
	}
	for i := 0; i < 500; i++ {
		a, b, c := randPoint(), randPoint(), randPoint()
		if a.DistTo(c) > a.DistTo(b)+b.DistTo(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestStringers(t *testing.T) {
	if got := (Point{X: 1, Y: 2}).String(); got == "" {
		t.Error("Point.String empty")
	}
	if got := (Vec{X: 1, Y: 2}).String(); got == "" {
		t.Error("Vec.String empty")
	}
}

func TestNearlyEqual(t *testing.T) {
	p := Point{X: 1, Y: 1}
	if !p.NearlyEqual(Point{X: 1 + Eps/2, Y: 1}) {
		t.Error("should be nearly equal within Eps")
	}
	if p.NearlyEqual(Point{X: 1.1, Y: 1}) {
		t.Error("should not be nearly equal at 0.1 apart")
	}
}
