package geom

import (
	"math/rand"
	"testing"
)

func TestPolylineLength(t *testing.T) {
	pl := Polyline{{0, 0}, {3, 4}, {3, 10}}
	if got := pl.Length(); !almostEqual(got, 11, 1e-12) {
		t.Errorf("Length = %v, want 11", got)
	}
	if got := (Polyline{}).Length(); got != 0 {
		t.Errorf("empty Length = %v", got)
	}
	if got := (Polyline{{1, 1}}).Length(); got != 0 {
		t.Errorf("single-point Length = %v", got)
	}
}

func TestPolylineSample(t *testing.T) {
	pl := Polyline{{0, 0}, {10, 0}}
	pts := pl.Sample(1)
	if len(pts) != 11 {
		t.Fatalf("len(Sample) = %d, want 11", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if d := pts[i-1].DistTo(pts[i]); d > 1+1e-9 {
			t.Errorf("sample gap %v > step", d)
		}
	}
	if pts[0] != pl[0] || pts[len(pts)-1] != pl[1] {
		t.Error("sample should include endpoints")
	}
	// Non-positive step returns vertices.
	if got := pl.Sample(0); len(got) != 2 {
		t.Errorf("Sample(0) len = %d, want 2", len(got))
	}
	if got := (Polyline{}).Sample(1); got != nil {
		t.Error("empty Sample should be nil")
	}
}

func TestSamplePolygonClosesLoop(t *testing.T) {
	r := Rect(0, 0, 2, 2)
	pts := SamplePolygon(r, 0.5)
	if len(pts) == 0 {
		t.Fatal("no samples")
	}
	// First and last sample both at the starting vertex (closed loop).
	if !pts[0].NearlyEqual(r[0]) || !pts[len(pts)-1].NearlyEqual(r[0]) {
		t.Errorf("loop not closed: first %v last %v", pts[0], pts[len(pts)-1])
	}
	if got := SamplePolygon(Polygon{}, 1); got != nil {
		t.Error("empty polygon sample should be nil")
	}
}

func TestHausdorffIdentical(t *testing.T) {
	a := []Point{{0, 0}, {1, 1}, {2, 2}}
	if got := HausdorffDistance(a, a); got != 0 {
		t.Errorf("identical sets Hausdorff = %v, want 0", got)
	}
}

func TestHausdorffKnown(t *testing.T) {
	a := []Point{{0, 0}, {1, 0}}
	b := []Point{{0, 0}, {1, 3}}
	if got := HausdorffDistance(a, b); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Hausdorff = %v, want 3", got)
	}
}

func TestHausdorffEmpty(t *testing.T) {
	if got := HausdorffDistance(nil, nil); got != 0 {
		t.Errorf("both empty = %v, want 0", got)
	}
	if got := HausdorffDistance([]Point{{1, 1}}, nil); got != -1 {
		t.Errorf("one empty = %v, want -1", got)
	}
	if got := HausdorffDistance(nil, []Point{{1, 1}}); got != -1 {
		t.Errorf("one empty = %v, want -1", got)
	}
}

func TestHausdorffSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		na, nb := 1+rng.Intn(20), 1+rng.Intn(20)
		a := make([]Point, na)
		b := make([]Point, nb)
		for i := range a {
			a[i] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		for i := range b {
			b[i] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		if d1, d2 := HausdorffDistance(a, b), HausdorffDistance(b, a); !almostEqual(d1, d2, 1e-12) {
			t.Fatalf("asymmetric Hausdorff: %v vs %v", d1, d2)
		}
	}
}

func TestHausdorffSubsetProperty(t *testing.T) {
	// Hausdorff(a, a ∪ extra) equals the directed distance from extra, and
	// adding a far point can only grow the distance.
	a := []Point{{0, 0}, {1, 0}, {2, 0}}
	withFar := append(append([]Point{}, a...), Point{X: 0, Y: 10})
	if got := HausdorffDistance(a, withFar); !almostEqual(got, 10, 1e-12) {
		t.Errorf("Hausdorff with far point = %v, want 10", got)
	}
}

func TestHausdorffTranslationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := make([]Point, 15)
	for i := range a {
		a[i] = Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
	}
	shift := Vec{X: 3, Y: -2}
	b := make([]Point, len(a))
	for i, p := range a {
		b[i] = p.Add(shift)
	}
	// Distance between a set and its translate is at most |shift| (and here
	// exactly |shift| because every nearest match is the translated twin or
	// closer).
	if got := HausdorffDistance(a, b); got > shift.Norm()+1e-9 {
		t.Errorf("translate Hausdorff = %v > shift %v", got, shift.Norm())
	}
}
