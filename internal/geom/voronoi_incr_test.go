package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// churnStep perturbs sites for one round: moves a fraction, removes a few,
// appends a few, and occasionally injects exact and near duplicates — the
// report churn profile the incremental path must absorb.
func churnStep(rng *rand.Rand, sites []Point, bounds Polygon) []Point {
	x0, y0, x1, y1 := bounds.BoundingBox()
	out := append([]Point(nil), sites...)
	moved := 0
	for i := range out {
		if rng.Float64() < 0.06 {
			out[i] = Point{
				X: out[i].X + rng.NormFloat64()*0.5,
				Y: out[i].Y + rng.NormFloat64()*0.5,
			}
			moved++
		}
	}
	for len(out) > 0 && rng.Float64() < 0.3 {
		di := rng.Intn(len(out))
		out = append(out[:di], out[di+1:]...)
	}
	for rng.Float64() < 0.4 {
		out = append(out, Point{
			X: x0 + rng.Float64()*(x1-x0),
			Y: y0 + rng.Float64()*(y1-y0),
		})
	}
	if len(out) > 1 && rng.Float64() < 0.25 {
		// Exact duplicate of an existing site.
		out = append(out, out[rng.Intn(len(out))])
	}
	if len(out) > 1 && rng.Float64() < 0.25 {
		// Near duplicate within NearlyEqual range.
		s := out[rng.Intn(len(out))]
		out = append(out, Point{X: s.X + Eps/2, Y: s.Y - Eps/2})
	}
	return out
}

// TestVoronoiIncrementalEquivalence pins the byte-identity contract:
// across random churn sequences, the incremental rebuild equals the full
// indexed construction via DeepEqual (regions, adjacency, horizons).
func TestVoronoiIncrementalEquivalence(t *testing.T) {
	bounds := Rect(0, 0, 40, 40)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var sites []Point
		n := 5 + rng.Intn(60)
		x0, y0, x1, y1 := bounds.BoundingBox()
		for i := 0; i < n; i++ {
			sites = append(sites, Point{
				X: x0 + rng.Float64()*(x1-x0),
				Y: y0 + rng.Float64()*(y1-y0),
			})
		}
		prev := VoronoiWithIndex(sites, bounds, nil)
		for round := 0; round < 8; round++ {
			sites = churnStep(rng, sites, bounds)
			diff := prev.DiffSites(sites)
			full := VoronoiWithIndex(sites, bounds, NewNNIndex(sites, bounds))
			incr := VoronoiIncremental(prev, sites, NewNNIndex(sites, bounds), diff)
			if !reflect.DeepEqual(incr, full) {
				t.Fatalf("seed %d round %d: incremental diagram diverges from full rebuild (k=%d, dirty=%d/%d)",
					seed, round, len(sites), diff.DirtyCount, len(sites))
			}
			prev = incr
		}
	}
}

// TestVoronoiIncrementalGridTies exercises exact-tie configurations: a
// regular grid has many probe points equidistant from several sites, the
// worst case for index-based tie-breaks.
func TestVoronoiIncrementalGridTies(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	var sites []Point
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			sites = append(sites, Point{X: 1 + 2*float64(c), Y: 1 + 2*float64(r)})
		}
	}
	prev := VoronoiWithIndex(sites, bounds, nil)
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 6; round++ {
		next := append([]Point(nil), sites...)
		// Move one grid site, delete another: stable slots keep exact ties.
		next[rng.Intn(len(next))] = Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		di := rng.Intn(len(next))
		next = append(next[:di], next[di+1:]...)
		diff := prev.DiffSites(next)
		full := VoronoiWithIndex(next, bounds, NewNNIndex(next, bounds))
		incr := VoronoiIncremental(prev, next, NewNNIndex(next, bounds), diff)
		if !reflect.DeepEqual(incr, full) {
			t.Fatalf("round %d: grid-tie incremental diverges from full rebuild", round)
		}
		sites, prev = next, incr
	}
}

// TestDiffSitesBasics checks the diff classification on hand-built cases.
func TestDiffSitesBasics(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	sites := []Point{{X: 2, Y: 2}, {X: 8, Y: 2}, {X: 5, Y: 8}}
	d := Voronoi(sites, bounds)

	same := d.DiffSites(append([]Point(nil), sites...))
	if !same.Identical || same.DirtyCount != 0 || len(same.Deltas) != 0 {
		t.Fatalf("identical sites misdiagnosed: %+v", same)
	}

	moved := append([]Point(nil), sites...)
	moved[1] = Point{X: 8.5, Y: 2.5}
	diff := d.DiffSites(moved)
	if diff.Identical || !diff.Dirty[1] || diff.Stable[1] {
		t.Fatalf("moved slot not dirty: %+v", diff)
	}
	if len(diff.StaleOld) != 1 || diff.StaleOld[0] != 1 {
		t.Fatalf("stale old slots = %v, want [1]", diff.StaleOld)
	}
	if len(diff.Deltas) != 2 {
		t.Fatalf("deltas = %v, want old+new position", diff.Deltas)
	}

	grown := append(append([]Point(nil), sites...), Point{X: 2 + Eps/2, Y: 2})
	gd := d.DiffSites(grown)
	if !gd.NearDupe {
		t.Fatalf("near-duplicate append not flagged: %+v", gd)
	}

	shrunk := d.DiffSites(sites[:2])
	if len(shrunk.StaleOld) != 1 || shrunk.StaleOld[0] != 2 {
		t.Fatalf("shrink stale slots = %v, want [2]", shrunk.StaleOld)
	}
}

// TestDiffSitesNaiveAlwaysDirty: diagrams built by the naive oracle carry
// infinite horizons, so any delta dirties every cell — correct fallback.
func TestDiffSitesNaiveAlwaysDirty(t *testing.T) {
	bounds := Rect(0, 0, 10, 10)
	sites := []Point{{X: 2, Y: 2}, {X: 8, Y: 8}}
	d := VoronoiNaive(sites, bounds)
	if !math.IsInf(d.Cells[0].horizonD2, 1) {
		t.Fatalf("naive cell horizon = %g, want +Inf", d.Cells[0].horizonD2)
	}
	moved := []Point{{X: 2, Y: 2}, {X: 8, Y: 7}}
	diff := d.DiffSites(moved)
	if diff.DirtyCount != len(moved) {
		t.Fatalf("naive-diagram diff dirty = %d, want all %d", diff.DirtyCount, len(moved))
	}
}

// TestDiffSitesWorkersEquivalence: the fanned-out horizon checks return
// the exact diff the sequential scan does — Dirty slots, DirtyCount,
// NearDupe and StaleOld alike — at any worker width.
func TestDiffSitesWorkersEquivalence(t *testing.T) {
	bounds := Rect(0, 0, 40, 40)
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		k := 200 + rng.Intn(300)
		sites := make([]Point, k)
		for i := range sites {
			sites[i] = Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		}
		prev := Voronoi(sites, bounds)
		next := append([]Point(nil), sites...)
		for i := range next {
			if rng.Float64() < 0.06 {
				next[i].X += rng.NormFloat64() * 0.5
				next[i].Y += rng.NormFloat64() * 0.5
			}
		}
		if trial%3 == 1 {
			next = next[:k-rng.Intn(20)]
		}
		want := prev.DiffSites(next)
		for _, w := range []int{2, 4, 8} {
			got := prev.DiffSitesWorkers(next, w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d workers=%d: diff diverges from sequential", trial, w)
			}
		}
	}
}
