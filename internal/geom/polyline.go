package geom

import "math"

// Polyline is an open chain of points.
type Polyline []Point

// Length returns the total length of the polyline.
func (pl Polyline) Length() float64 {
	var l float64
	for i := 1; i < len(pl); i++ {
		l += pl[i-1].DistTo(pl[i])
	}
	return l
}

// Sample returns points spaced at most step apart along the polyline,
// always including the endpoints of every segment. A non-positive step
// returns the vertices unchanged.
func (pl Polyline) Sample(step float64) []Point {
	if len(pl) == 0 {
		return nil
	}
	if step <= 0 {
		out := make([]Point, len(pl))
		copy(out, pl)
		return out
	}
	out := []Point{pl[0]}
	for i := 1; i < len(pl); i++ {
		seg := Segment{A: pl[i-1], B: pl[i]}
		n := int(math.Ceil(seg.Length() / step))
		if n < 1 {
			n = 1
		}
		for k := 1; k <= n; k++ {
			out = append(out, seg.PointAt(float64(k)/float64(n)))
		}
	}
	return out
}

// SamplePolygon returns boundary points of a polygon spaced at most step
// apart.
func SamplePolygon(pg Polygon, step float64) []Point {
	if len(pg) == 0 {
		return nil
	}
	closed := make(Polyline, 0, len(pg)+1)
	closed = append(closed, pg...)
	closed = append(closed, pg[0])
	return closed.Sample(step)
}

// HausdorffDistance returns the symmetric Hausdorff distance between two
// point sets: max over points of one set of the distance to the nearest
// point of the other, symmetrized. It is the isoline irregularity metric of
// Fig. 12. Either set being empty yields 0 against an empty set and the
// directed distance is undefined, so we return -1 to signal "no comparison".
func HausdorffDistance(a, b []Point) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return -1
	}
	d1 := directedHausdorff(a, b)
	d2 := directedHausdorff(b, a)
	if d2 > d1 {
		return d2
	}
	return d1
}

func directedHausdorff(a, b []Point) float64 {
	var worst float64
	for _, p := range a {
		best := p.Dist2To(b[0])
		for _, q := range b[1:] {
			if d := p.Dist2To(q); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if best > worst {
			worst = best
		}
	}
	return math.Sqrt(worst)
}
