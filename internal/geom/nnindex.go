package geom

import (
	"math"
	"sort"
)

// NNIndex is a uniform-grid nearest-site index over a fixed point set: the
// bounding box is cut into square buckets sized for ~1 site per bucket (the
// same spatial-hash shape as the network neighbor graph), and queries walk
// buckets outward from the probe in Chebyshev rings. All queries are exact:
// they return the same argmin — with the same lowest-index tie-break — as a
// linear scan over the sites, so callers can swap a brute-force scan for an
// index lookup without changing a single output bit.
//
// The geometric invariant behind every pruning rule below: a probe p lies
// inside its own (ring-0) bucket, so any site stored in a bucket at
// Chebyshev ring r is at Euclidean distance >= (r-1)*cell from p.
type NNIndex struct {
	sites []Point
	x0, y0 float64
	cell   float64
	nx, ny int
	// CSR bucket layout: ids[start[b]:start[b+1]] are the indices of the
	// sites in bucket b = by*nx + bx, each list in ascending site order.
	start []int32
	ids   []int32
}

// NewNNIndex builds the index for sites inside the given bounds polygon
// (typically the field rectangle). Sites outside bounds are still indexed:
// the grid covers the union of the bounds box and the site bounding box.
func NewNNIndex(sites []Point, bounds Polygon) *NNIndex {
	ix := &NNIndex{sites: sites, cell: 1, nx: 1, ny: 1}
	if len(sites) == 0 {
		ix.start = make([]int32, 2)
		return ix
	}
	x0, y0, x1, y1 := bounds.BoundingBox()
	if len(bounds) == 0 {
		x0, y0 = sites[0].X, sites[0].Y
		x1, y1 = x0, y0
	}
	for _, s := range sites {
		x0, x1 = math.Min(x0, s.X), math.Max(x1, s.X)
		y0, y1 = math.Min(y0, s.Y), math.Max(y1, s.Y)
	}
	w, h := x1-x0, y1-y0
	cell := math.Sqrt(w * h / float64(len(sites)))
	if !(cell > 0) {
		// Degenerate box (collinear or coincident sites): fall back to a
		// 1-D grid along the longer axis.
		cell = math.Max(w, h) / float64(len(sites))
	}
	if !(cell > 0) {
		cell = 1
	}
	ix.x0, ix.y0, ix.cell = x0, y0, cell
	ix.nx = gridDim(w, cell)
	ix.ny = gridDim(h, cell)

	// Counting sort into the CSR arrays; iterating sites in ascending order
	// keeps every bucket list ascending.
	nb := ix.nx * ix.ny
	ix.start = make([]int32, nb+1)
	keys := make([]int32, len(sites))
	for i, s := range sites {
		b := int32(ix.clampBucket(s))
		keys[i] = b
		ix.start[b+1]++
	}
	for b := 0; b < nb; b++ {
		ix.start[b+1] += ix.start[b]
	}
	ix.ids = make([]int32, len(sites))
	fill := make([]int32, nb)
	for i := range sites {
		b := keys[i]
		ix.ids[ix.start[b]+fill[b]] = int32(i)
		fill[b]++
	}
	return ix
}

// gridDim returns the bucket count covering an extent of the given size.
func gridDim(size, cell float64) int {
	n := int(math.Ceil(size / cell))
	if n < 1 {
		return 1
	}
	return n
}

// Len returns the number of indexed sites.
func (ix *NNIndex) Len() int { return len(ix.sites) }

// Site returns the i-th indexed site.
func (ix *NNIndex) Site(i int) Point { return ix.sites[i] }

// bucketCoords returns the (possibly out-of-range) bucket coordinates of p;
// queries outside the grid keep their true coordinates so ring lower bounds
// stay valid.
func (ix *NNIndex) bucketCoords(p Point) (bx, by int) {
	return int(math.Floor((p.X - ix.x0) / ix.cell)),
		int(math.Floor((p.Y - ix.y0) / ix.cell))
}

// clampBucket returns the storage bucket of a site, clamped into the grid.
// A site on the far box edge lands exactly on the boundary of the clamped
// bucket, so the ring distance invariant is preserved.
func (ix *NNIndex) clampBucket(p Point) int {
	bx, by := ix.bucketCoords(p)
	bx = min(max(bx, 0), ix.nx-1)
	by = min(max(by, 0), ix.ny-1)
	return by*ix.nx + bx
}

// maxRing returns the largest ring around (qx, qy) that still intersects
// the grid; scanning rings 0..maxRing visits every bucket.
func (ix *NNIndex) maxRing(qx, qy int) int {
	r := max(qx, ix.nx-1-qx)
	return max(r, max(qy, ix.ny-1-qy))
}

// scanBucket calls f for every site in grid bucket (bx, by), in ascending
// site order; out-of-grid buckets are empty.
func (ix *NNIndex) scanBucket(bx, by int, f func(si int32)) {
	if bx < 0 || bx >= ix.nx || by < 0 || by >= ix.ny {
		return
	}
	b := by*ix.nx + bx
	for _, si := range ix.ids[ix.start[b]:ix.start[b+1]] {
		f(si)
	}
}

// scanRing calls f for every site in the Chebyshev ring of radius r around
// bucket (qx, qy).
func (ix *NNIndex) scanRing(qx, qy, r int, f func(si int32)) {
	if r == 0 {
		ix.scanBucket(qx, qy, f)
		return
	}
	for x := qx - r; x <= qx+r; x++ {
		ix.scanBucket(x, qy-r, f)
		ix.scanBucket(x, qy+r, f)
	}
	for y := qy - r + 1; y <= qy+r-1; y++ {
		ix.scanBucket(qx-r, y, f)
		ix.scanBucket(qx+r, y, f)
	}
}

// Nearest returns the index of the site nearest to p (lowest index on exact
// ties), or -1 for an empty index.
func (ix *NNIndex) Nearest(p Point) int { return int(ix.nearestFrom(p, -1, -1)) }

// NearestWarm is Nearest warm-started from a hint — typically the answer of
// the previous, spatially adjacent query. The hint seeds the search radius,
// so a coherent probe sequence (e.g. a raster scanline) touches O(1)
// buckets per query; the returned index is identical to Nearest for every
// hint value, valid or not.
func (ix *NNIndex) NearestWarm(p Point, hint int) int {
	h := int32(-1)
	if hint >= 0 && hint < len(ix.sites) {
		h = int32(hint)
	}
	return int(ix.nearestFrom(p, h, -1))
}

// NearestExcluding returns the nearest site to p whose index differs from
// exclude, or -1 when no such site exists.
func (ix *NNIndex) NearestExcluding(p Point, exclude int) int {
	e := int32(-1)
	if exclude >= 0 && exclude < len(ix.sites) {
		e = int32(exclude)
	}
	return int(ix.nearestFrom(p, -1, e))
}

// nearestFrom is the shared ring search: best (when >= 0) seeds the upper
// bound, exclude (when >= 0) is skipped. Rings expand until their distance
// lower bound strictly exceeds the best distance, which keeps exact-tie
// candidates reachable and makes the result hint-independent.
func (ix *NNIndex) nearestFrom(p Point, best, exclude int32) int32 {
	bestD2 := math.Inf(1)
	if best >= 0 {
		bestD2 = p.Dist2To(ix.sites[best])
	}
	qx, qy := ix.bucketCoords(p)
	maxR := ix.maxRing(qx, qy)
	for r := 0; r <= maxR; r++ {
		if best >= 0 {
			if lb := float64(r-1) * ix.cell; lb > 0 && lb*lb > bestD2 {
				break
			}
		}
		ix.scanRing(qx, qy, r, func(si int32) {
			if si == exclude {
				return
			}
			d2 := p.Dist2To(ix.sites[si])
			if best < 0 || d2 < bestD2 || (d2 == bestD2 && si < best) {
				best, bestD2 = si, d2
			}
		})
	}
	return best
}

// nnCand is one pending candidate of a VisitByDistance enumeration.
type nnCand struct {
	d2  float64
	idx int32
}

// VisitByDistance calls visit for every site in nondecreasing distance from
// p (exact ties in ascending index order), stopping early when visit
// returns false. A site is only emitted once every strictly closer site has
// been: after ring r completes, any unscanned site is at distance >= r*cell,
// so the sorted pending candidates below that horizon are final.
func (ix *NNIndex) VisitByDistance(p Point, visit func(i int, d2 float64) bool) {
	if len(ix.sites) == 0 {
		return
	}
	qx, qy := ix.bucketCoords(p)
	maxR := ix.maxRing(qx, qy)
	var pend []nnCand
	head := 0
	for r := 0; r <= maxR; r++ {
		grew := false
		ix.scanRing(qx, qy, r, func(si int32) {
			pend = append(pend, nnCand{d2: p.Dist2To(ix.sites[si]), idx: si})
			grew = true
		})
		if grew {
			tail := pend[head:]
			sort.Slice(tail, func(a, b int) bool {
				if tail[a].d2 != tail[b].d2 {
					return tail[a].d2 < tail[b].d2
				}
				return tail[a].idx < tail[b].idx
			})
		}
		horizon := float64(r) * ix.cell
		h2 := horizon * horizon
		for head < len(pend) && pend[head].d2 < h2 {
			if !visit(int(pend[head].idx), pend[head].d2) {
				return
			}
			head++
		}
	}
	for ; head < len(pend); head++ {
		if !visit(int(pend[head].idx), pend[head].d2) {
			return
		}
	}
}
