package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRectArea(t *testing.T) {
	r := Rect(0, 0, 4, 3)
	if got := r.Area(); !almostEqual(got, 12, 1e-12) {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.SignedArea(); got <= 0 {
		t.Errorf("Rect should be CCW, signed area = %v", got)
	}
	if got := r.Perimeter(); !almostEqual(got, 14, 1e-12) {
		t.Errorf("Perimeter = %v, want 14", got)
	}
}

func TestEnsureCCW(t *testing.T) {
	cw := Polygon{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	if cw.SignedArea() >= 0 {
		t.Fatal("test fixture should be CW")
	}
	ccw := cw.EnsureCCW()
	if ccw.SignedArea() <= 0 {
		t.Error("EnsureCCW did not flip orientation")
	}
	if !almostEqual(ccw.Area(), cw.Area(), 1e-12) {
		t.Error("EnsureCCW changed area")
	}
	// Already CCW stays untouched.
	r := Rect(0, 0, 1, 1)
	if got := r.EnsureCCW(); got.SignedArea() != r.SignedArea() {
		t.Error("EnsureCCW altered a CCW polygon")
	}
}

func TestCentroid(t *testing.T) {
	r := Rect(0, 0, 4, 2)
	if got := r.Centroid(); !got.NearlyEqual(Point{X: 2, Y: 1}) {
		t.Errorf("Centroid = %v, want (2,1)", got)
	}
	tri := Polygon{{0, 0}, {3, 0}, {0, 3}}
	if got := tri.Centroid(); !got.NearlyEqual(Point{X: 1, Y: 1}) {
		t.Errorf("triangle Centroid = %v, want (1,1)", got)
	}
	// Degenerate polygon falls back to vertex average.
	line := Polygon{{0, 0}, {2, 0}, {4, 0}}
	if got := line.Centroid(); !got.NearlyEqual(Point{X: 2, Y: 0}) {
		t.Errorf("degenerate Centroid = %v, want (2,0)", got)
	}
	if got := (Polygon{}).Centroid(); got != (Point{}) {
		t.Errorf("empty Centroid = %v", got)
	}
}

func TestContains(t *testing.T) {
	r := Rect(0, 0, 2, 2)
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{X: 1, Y: 1}, true},
		{"outside", Point{X: 3, Y: 1}, false},
		{"on edge", Point{X: 0, Y: 1}, true},
		{"on vertex", Point{X: 0, Y: 0}, true},
		{"just outside", Point{X: -0.01, Y: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
	if (Polygon{{0, 0}, {1, 1}}).Contains(Point{X: 0.5, Y: 0.5}) {
		t.Error("degenerate polygon should contain nothing strictly")
	}
}

func TestContainsConcave(t *testing.T) {
	// L-shaped polygon.
	l := Polygon{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}}
	if !l.Contains(Point{X: 0.5, Y: 1.5}) {
		t.Error("point in L arm should be inside")
	}
	if l.Contains(Point{X: 1.5, Y: 1.5}) {
		t.Error("point in L notch should be outside")
	}
}

func TestClipHalfPlane(t *testing.T) {
	r := Rect(0, 0, 2, 2)
	// Keep the half-plane x <= 1.
	h := HalfPlane{Origin: Point{X: 1, Y: 0}, Normal: Vec{X: 1}}
	clipped := r.ClipHalfPlane(h)
	if got := clipped.Area(); !almostEqual(got, 2, 1e-9) {
		t.Errorf("clipped area = %v, want 2", got)
	}
	for _, p := range clipped {
		if p.X > 1+1e-9 {
			t.Errorf("vertex %v outside half-plane", p)
		}
	}
	// Clip away everything.
	hAll := HalfPlane{Origin: Point{X: -1, Y: 0}, Normal: Vec{X: 1}}
	if got := r.ClipHalfPlane(hAll); got != nil {
		t.Errorf("fully-clipped polygon = %v, want nil", got)
	}
	// Clip nothing.
	hNone := HalfPlane{Origin: Point{X: 5, Y: 0}, Normal: Vec{X: 1}}
	if got := r.ClipHalfPlane(hNone); !almostEqual(got.Area(), 4, 1e-9) {
		t.Errorf("unclipped area = %v, want 4", got.Area())
	}
	if got := (Polygon{}).ClipHalfPlane(h); got != nil {
		t.Error("clipping empty polygon should be nil")
	}
}

func TestClipHalfPlaneDiagonal(t *testing.T) {
	r := Rect(0, 0, 1, 1)
	// Keep points below the main diagonal: (p - (0,0)) . (-1,1) <= 0 means
	// y <= x.
	h := HalfPlane{Origin: Point{}, Normal: Vec{X: -1, Y: 1}}
	clipped := r.ClipHalfPlane(h)
	if got := clipped.Area(); !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("diagonal clip area = %v, want 0.5", got)
	}
}

func TestClipAreaMonotoneProperty(t *testing.T) {
	// Clipping can never increase area; repeated random clips stay
	// non-negative and monotone.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		pg := Rect(0, 0, 10, 10)
		area := pg.Area()
		for k := 0; k < 6 && pg != nil; k++ {
			h := HalfPlane{
				Origin: Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
				Normal: Vec{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1},
			}
			pg = pg.ClipHalfPlane(h)
			newArea := pg.Area()
			if newArea > area+1e-9 {
				t.Fatalf("clip increased area: %v -> %v", area, newArea)
			}
			area = newArea
		}
	}
}

func TestHalfPlaneSide(t *testing.T) {
	h := HalfPlane{Origin: Point{X: 0, Y: 0}, Normal: Vec{X: 1}}
	if !h.Contains(Point{X: -1, Y: 0}) {
		t.Error("point on negative side should be contained")
	}
	if h.Contains(Point{X: 1, Y: 0}) {
		t.Error("point on positive side should not be contained")
	}
	if !h.Contains(Point{X: 0, Y: 5}) {
		t.Error("boundary point should be contained")
	}
	if got := h.Side(Point{X: 2, Y: 0}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Side = %v, want 2", got)
	}
}

func TestEdges(t *testing.T) {
	r := Rect(0, 0, 1, 1)
	edges := r.Edges()
	if len(edges) != 4 {
		t.Fatalf("len(Edges) = %d, want 4", len(edges))
	}
	if edges[3].B != r[0] {
		t.Error("last edge should close the polygon")
	}
	if got := (Polygon{{0, 0}}).Edges(); got != nil {
		t.Error("single-vertex polygon should have no edges")
	}
}

func TestBoundingBox(t *testing.T) {
	pg := Polygon{{1, 2}, {5, -1}, {3, 7}}
	x0, y0, x1, y1 := pg.BoundingBox()
	if x0 != 1 || y0 != -1 || x1 != 5 || y1 != 7 {
		t.Errorf("BoundingBox = %v %v %v %v", x0, y0, x1, y1)
	}
	if x0, y0, x1, y1 := (Polygon{}).BoundingBox(); x0 != 0 || y0 != 0 || x1 != 0 || y1 != 0 {
		t.Error("empty BoundingBox should be zeros")
	}
}

func TestClipPreservesConvexity(t *testing.T) {
	// All cross products of consecutive edges of a clipped convex polygon
	// must have the same sign.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		pg := Rect(0, 0, 10, 10)
		for k := 0; k < 5 && pg != nil; k++ {
			h := HalfPlane{
				Origin: Point{X: rng.Float64() * 10, Y: rng.Float64() * 10},
				Normal: Vec{X: rng.NormFloat64(), Y: rng.NormFloat64()},
			}
			pg = pg.ClipHalfPlane(h)
		}
		if pg == nil {
			continue
		}
		n := len(pg)
		for i := 0; i < n; i++ {
			a, b, c := pg[i], pg[(i+1)%n], pg[(i+2)%n]
			cross := b.Sub(a).Cross(c.Sub(b))
			if cross < -1e-6 {
				t.Fatalf("clipped polygon not convex at %v: cross=%v poly=%v", b, cross, pg)
			}
		}
	}
}

func TestAreaInvariantUnderRotation(t *testing.T) {
	pg := Polygon{{0, 0}, {4, 0}, {4, 3}, {1, 5}}
	want := pg.Area()
	theta := math.Pi / 7
	rot := make(Polygon, len(pg))
	for i, p := range pg {
		rot[i] = Point{
			X: p.X*math.Cos(theta) - p.Y*math.Sin(theta),
			Y: p.X*math.Sin(theta) + p.Y*math.Cos(theta),
		}
	}
	if got := rot.Area(); !almostEqual(got, want, 1e-9) {
		t.Errorf("rotated area = %v, want %v", got, want)
	}
}
