package geom

import (
	"math"
	"testing"
)

func TestSegmentBasics(t *testing.T) {
	s := Segment{A: Point{X: 0, Y: 0}, B: Point{X: 3, Y: 4}}
	if got := s.Length(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Length = %v", got)
	}
	if got := s.Mid(); got != (Point{X: 1.5, Y: 2}) {
		t.Errorf("Mid = %v", got)
	}
	if got := s.PointAt(0); got != s.A {
		t.Errorf("PointAt(0) = %v", got)
	}
	if got := s.PointAt(1); got != s.B {
		t.Errorf("PointAt(1) = %v", got)
	}
}

func TestClosestPoint(t *testing.T) {
	s := Segment{A: Point{X: 0, Y: 0}, B: Point{X: 10, Y: 0}}
	tests := []struct {
		name string
		p    Point
		want Point
	}{
		{"above middle", Point{X: 5, Y: 3}, Point{X: 5, Y: 0}},
		{"before start", Point{X: -2, Y: 1}, Point{X: 0, Y: 0}},
		{"past end", Point{X: 12, Y: -1}, Point{X: 10, Y: 0}},
		{"on segment", Point{X: 4, Y: 0}, Point{X: 4, Y: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.ClosestPoint(tt.p); !got.NearlyEqual(tt.want) {
				t.Errorf("ClosestPoint = %v, want %v", got, tt.want)
			}
		})
	}
	degenerate := Segment{A: Point{X: 1, Y: 1}, B: Point{X: 1, Y: 1}}
	if got := degenerate.ClosestPoint(Point{X: 5, Y: 5}); got != degenerate.A {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{A: Point{X: 0, Y: 0}, B: Point{X: 10, Y: 0}}
	if got := s.DistToPoint(Point{X: 5, Y: 3}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("DistToPoint = %v, want 3", got)
	}
	if got := s.DistToPoint(Point{X: 13, Y: 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("DistToPoint past end = %v, want 5", got)
	}
}

func TestIntersectLines(t *testing.T) {
	l1 := LineThrough(Point{X: 0, Y: 0}, Point{X: 1, Y: 1})
	l2 := LineThrough(Point{X: 0, Y: 2}, Point{X: 1, Y: 1})
	p, ok := IntersectLines(l1, l2)
	if !ok || !p.NearlyEqual(Point{X: 1, Y: 1}) {
		t.Errorf("IntersectLines = %v, %v", p, ok)
	}
	// Parallel lines.
	l3 := LineThrough(Point{X: 0, Y: 1}, Point{X: 1, Y: 2})
	if _, ok := IntersectLines(l1, l3); ok {
		t.Error("parallel lines should not intersect")
	}
}

func TestPerpendicularAt(t *testing.T) {
	l := PerpendicularAt(Point{X: 2, Y: 3}, Vec{X: 1, Y: 0})
	if got := l.Dir.Dot(Vec{X: 1, Y: 0}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("perpendicular line not orthogonal to direction: %v", got)
	}
	if l.Origin != (Point{X: 2, Y: 3}) {
		t.Errorf("Origin = %v", l.Origin)
	}
}

func TestIntersectSegmentLine(t *testing.T) {
	s := Segment{A: Point{X: 0, Y: 0}, B: Point{X: 10, Y: 0}}
	l := Line{Origin: Point{X: 4, Y: -5}, Dir: Vec{Y: 1}}
	p, ok := IntersectSegmentLine(s, l)
	if !ok || !p.NearlyEqual(Point{X: 4, Y: 0}) {
		t.Errorf("IntersectSegmentLine = %v, %v", p, ok)
	}
	// Line misses the segment span.
	l2 := Line{Origin: Point{X: 14, Y: -5}, Dir: Vec{Y: 1}}
	if _, ok := IntersectSegmentLine(s, l2); ok {
		t.Error("line beyond segment end should not intersect")
	}
	// Parallel.
	l3 := Line{Origin: Point{X: 0, Y: 1}, Dir: Vec{X: 1}}
	if _, ok := IntersectSegmentLine(s, l3); ok {
		t.Error("parallel line should not intersect")
	}
}

func TestIntersectSegments(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 Segment
		want   Point
		wantOK bool
	}{
		{
			name:   "crossing",
			s1:     Segment{A: Point{X: 0, Y: 0}, B: Point{X: 2, Y: 2}},
			s2:     Segment{A: Point{X: 0, Y: 2}, B: Point{X: 2, Y: 0}},
			want:   Point{X: 1, Y: 1},
			wantOK: true,
		},
		{
			name:   "disjoint",
			s1:     Segment{A: Point{X: 0, Y: 0}, B: Point{X: 1, Y: 0}},
			s2:     Segment{A: Point{X: 0, Y: 1}, B: Point{X: 1, Y: 1}},
			wantOK: false,
		},
		{
			name:   "touching at endpoint",
			s1:     Segment{A: Point{X: 0, Y: 0}, B: Point{X: 1, Y: 1}},
			s2:     Segment{A: Point{X: 1, Y: 1}, B: Point{X: 2, Y: 0}},
			want:   Point{X: 1, Y: 1},
			wantOK: true,
		},
		{
			name:   "collinear overlapping",
			s1:     Segment{A: Point{X: 0, Y: 0}, B: Point{X: 2, Y: 0}},
			s2:     Segment{A: Point{X: 1, Y: 0}, B: Point{X: 3, Y: 0}},
			wantOK: true,
		},
		{
			name:   "collinear disjoint",
			s1:     Segment{A: Point{X: 0, Y: 0}, B: Point{X: 1, Y: 0}},
			s2:     Segment{A: Point{X: 2, Y: 0}, B: Point{X: 3, Y: 0}},
			wantOK: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, ok := IntersectSegments(tt.s1, tt.s2)
			if ok != tt.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tt.wantOK)
			}
			if ok && tt.want != (Point{}) && !p.NearlyEqual(tt.want) {
				t.Errorf("point = %v, want %v", p, tt.want)
			}
		})
	}
}

func TestSegmentDist(t *testing.T) {
	s1 := Segment{A: Point{X: 0, Y: 0}, B: Point{X: 1, Y: 0}}
	s2 := Segment{A: Point{X: 0, Y: 2}, B: Point{X: 1, Y: 2}}
	if got := SegmentDist(s1, s2); !almostEqual(got, 2, 1e-12) {
		t.Errorf("SegmentDist = %v, want 2", got)
	}
	s3 := Segment{A: Point{X: 0.5, Y: -1}, B: Point{X: 0.5, Y: 1}}
	if got := SegmentDist(s1, s3); got != 0 {
		t.Errorf("intersecting SegmentDist = %v, want 0", got)
	}
}

func TestIntersectSegmentsCommutativeProperty(t *testing.T) {
	// Intersection existence must be symmetric in its arguments.
	pts := []Point{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}, {2, 2}, {-1, 0.3},
	}
	for i := range pts {
		for j := range pts {
			for k := range pts {
				for l := range pts {
					s1 := Segment{A: pts[i], B: pts[j]}
					s2 := Segment{A: pts[k], B: pts[l]}
					_, ok1 := IntersectSegments(s1, s2)
					_, ok2 := IntersectSegments(s2, s1)
					if ok1 != ok2 {
						t.Fatalf("asymmetric intersection: %v vs %v for %v %v", ok1, ok2, s1, s2)
					}
				}
			}
		}
	}
}

func TestLineDirNonDegenerate(t *testing.T) {
	l := LineThrough(Point{X: 1, Y: 2}, Point{X: 4, Y: 6})
	if got := l.Dir.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Dir norm = %v", got)
	}
	if math.IsNaN(l.Dir.Angle()) {
		t.Error("Dir angle NaN")
	}
}
