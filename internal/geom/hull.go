package geom

import "sort"

// ConvexHull returns the convex hull of the points as a CCW polygon
// (Andrew's monotone chain). Degenerate inputs return what they can: fewer
// than three distinct non-collinear points yield a polygon with fewer than
// three vertices.
func ConvexHull(points []Point) Polygon {
	pts := dedupePoints(points)
	if len(pts) < 3 {
		return Polygon(pts)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})

	build := func(ordered []Point) []Point {
		var chain []Point
		for _, p := range ordered {
			for len(chain) >= 2 &&
				chain[len(chain)-1].Sub(chain[len(chain)-2]).Cross(p.Sub(chain[len(chain)-2])) <= Eps {
				chain = chain[:len(chain)-1]
			}
			chain = append(chain, p)
		}
		return chain
	}

	lower := build(pts)
	reversed := make([]Point, len(pts))
	for i, p := range pts {
		reversed[len(pts)-1-i] = p
	}
	upper := build(reversed)

	hull := make(Polygon, 0, len(lower)+len(upper)-2)
	hull = append(hull, lower[:len(lower)-1]...)
	hull = append(hull, upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return Polygon(pts[:min(len(pts), 2)])
	}
	return hull
}

func dedupePoints(points []Point) []Point {
	out := make([]Point, 0, len(points))
	for _, p := range points {
		dup := false
		for _, q := range out {
			if p.NearlyEqual(q) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
