package geom

import (
	"math"
	"testing"
)

// FuzzClipHalfPlane feeds arbitrary half-planes to the clipper; the result
// must always be inside both the half-plane and the original rectangle.
func FuzzClipHalfPlane(f *testing.F) {
	f.Add(5.0, 5.0, 1.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-3.0, 12.0, 0.5, -0.5)
	f.Fuzz(func(t *testing.T, ox, oy, nx, ny float64) {
		for _, v := range []float64{ox, oy, nx, ny} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		h := HalfPlane{Origin: Point{X: ox, Y: oy}, Normal: Vec{X: nx, Y: ny}}
		pg := Rect(0, 0, 10, 10)
		clipped := pg.ClipHalfPlane(h)
		area := clipped.Area()
		if area < 0 || area > 100+1e-6 {
			t.Fatalf("clipped area %v outside [0, 100]", area)
		}
		if h.Normal.Norm() <= Eps {
			return
		}
		tol := 1e-6 * (1 + h.Normal.Norm()) * 20
		for _, p := range clipped {
			if h.Side(p) > tol {
				t.Fatalf("vertex %v outside half-plane by %v", p, h.Side(p))
			}
		}
	})
}

// FuzzSegmentIntersection checks that intersection points (when reported)
// actually lie near both segments.
func FuzzSegmentIntersection(f *testing.F) {
	f.Add(0.0, 0.0, 2.0, 2.0, 0.0, 2.0, 2.0, 0.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return
			}
		}
		s1 := Segment{A: Point{X: ax, Y: ay}, B: Point{X: bx, Y: by}}
		s2 := Segment{A: Point{X: cx, Y: cy}, B: Point{X: dx, Y: dy}}
		p, ok := IntersectSegments(s1, s2)
		if !ok {
			return
		}
		scale := 1 + s1.Length() + s2.Length()
		if s1.DistToPoint(p) > 1e-6*scale || s2.DistToPoint(p) > 1e-6*scale {
			t.Fatalf("intersection %v off segments by %v / %v",
				p, s1.DistToPoint(p), s2.DistToPoint(p))
		}
	})
}
