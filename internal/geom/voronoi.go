package geom

// VoronoiCell is one cell of a bounded Voronoi diagram: the convex region of
// the bounding polygon closer to Site than to any other site.
type VoronoiCell struct {
	// Site is the generating point (an isoposition in Iso-Map).
	Site Point
	// Index is the position of the site in the input slice.
	Index int
	// Region is the cell polygon (CCW). Nil when the cell degenerates,
	// which only happens for duplicate sites.
	Region Polygon
	// Neighbors lists the indices of sites whose cells share a boundary
	// edge with this cell, aligned with SharedEdges.
	Neighbors []int
	// SharedEdges[i] is the (clipped) bisector edge shared with
	// Neighbors[i].
	SharedEdges []Segment
}

// VoronoiDiagram is a bounded Voronoi diagram over a convex boundary.
type VoronoiDiagram struct {
	// Bounds is the clipping polygon (typically the field rectangle).
	Bounds Polygon
	// Cells holds one cell per input site, in input order.
	Cells []VoronoiCell
}

// Voronoi computes the Voronoi diagram of sites bounded by the convex
// polygon bounds. Each cell is obtained by clipping bounds against the
// perpendicular-bisector half-plane of every other site — O(k^2) work for k
// sites, which is exact and fast for the O(sqrt n) isoline reports the sink
// receives per isolevel.
func Voronoi(sites []Point, bounds Polygon) *VoronoiDiagram {
	bounds = bounds.EnsureCCW()
	d := &VoronoiDiagram{
		Bounds: bounds,
		Cells:  make([]VoronoiCell, len(sites)),
	}
	for i, s := range sites {
		cell := VoronoiCell{Site: s, Index: i}
		region := bounds
		for j, t := range sites {
			if j == i || region == nil {
				continue
			}
			if s.NearlyEqual(t) {
				// Duplicate sites split the plane ambiguously; assign the
				// region to the lower-indexed site.
				if j < i {
					region = nil
				}
				continue
			}
			region = region.ClipHalfPlane(bisectorHalfPlane(s, t))
		}
		cell.Region = region
		d.Cells[i] = cell
	}
	d.computeAdjacency(sites)
	return d
}

// bisectorHalfPlane returns the half-plane of points at least as close to s
// as to t.
func bisectorHalfPlane(s, t Point) HalfPlane {
	return HalfPlane{Origin: s.Mid(t), Normal: t.Sub(s)}
}

// computeAdjacency finds, for every cell, the neighboring cells with which
// it shares a bisector edge, recording the shared edge segments.
func (d *VoronoiDiagram) computeAdjacency(sites []Point) {
	for i := range d.Cells {
		ci := &d.Cells[i]
		if ci.Region == nil {
			continue
		}
		for _, e := range ci.Region.Edges() {
			j, ok := d.edgeNeighbor(sites, i, e)
			if !ok {
				continue
			}
			ci.Neighbors = append(ci.Neighbors, j)
			ci.SharedEdges = append(ci.SharedEdges, e)
		}
	}
}

// edgeNeighbor identifies which other site (if any) generates edge e of cell
// i: the edge midpoint must be (within tolerance) equidistant from both
// sites and the edge must lie on their bisector.
func (d *VoronoiDiagram) edgeNeighbor(sites []Point, i int, e Segment) (int, bool) {
	const tol = 1e-6
	m := e.Mid()
	di := m.DistTo(sites[i])
	best, bestDist := -1, di+tol
	for j, s := range sites {
		if j == i {
			continue
		}
		if dj := m.DistTo(s); dj < bestDist {
			best, bestDist = j, dj
		}
	}
	if best < 0 {
		return 0, false
	}
	// The shared edge midpoint is equidistant from both generating sites.
	if bestDist < di-tol {
		return 0, false
	}
	return best, true
}

// CellContaining returns the index of the cell whose site is nearest to p,
// or -1 for an empty diagram. Ties go to the lowest index.
func (d *VoronoiDiagram) CellContaining(p Point) int {
	best, bestDist := -1, 0.0
	for i := range d.Cells {
		dist := p.Dist2To(d.Cells[i].Site)
		if best < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
