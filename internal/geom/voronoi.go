package geom

import "math"

// VoronoiCell is one cell of a bounded Voronoi diagram: the convex region of
// the bounding polygon closer to Site than to any other site.
type VoronoiCell struct {
	// Site is the generating point (an isoposition in Iso-Map).
	Site Point
	// Index is the position of the site in the input slice.
	Index int
	// Region is the cell polygon (CCW). Nil when the cell degenerates,
	// which only happens for duplicate sites.
	Region Polygon
	// Neighbors lists the indices of sites whose cells share a boundary
	// edge with this cell, aligned with SharedEdges.
	Neighbors []int
	// SharedEdges[i] is the (clipped) bisector edge shared with
	// Neighbors[i].
	SharedEdges []Segment
	// horizonD2 is the squared site distance at which the pruned
	// construction stopped scanning candidates for this cell (+Inf when
	// the scan exhausted every site, as VoronoiNaive's cells always do).
	// Every site the clip loop applied lies strictly below it, so a site
	// set that only changes beyond the horizon provably replays the
	// identical clip sequence — the fact DiffSites uses to prove cells
	// reusable across rounds.
	horizonD2 float64
}

// VoronoiDiagram is a bounded Voronoi diagram over a convex boundary.
type VoronoiDiagram struct {
	// Bounds is the clipping polygon (typically the field rectangle).
	Bounds Polygon
	// Cells holds one cell per input site, in input order.
	Cells []VoronoiCell
	// index, when set, answers nearest-site queries for CellContaining and
	// adjacency without scanning all sites. Diagrams built by Voronoi carry
	// one; zero-value and VoronoiNaive diagrams fall back to linear scans.
	index *NNIndex
}

// Voronoi computes the Voronoi diagram of sites bounded by the convex
// polygon bounds. Each cell clips bounds against bisector half-planes in
// increasing site distance, pruned by a grid index and a security-radius
// early exit (see voronoiCell), so typical cells cost O(1) clips instead of
// the O(k) of the naive construction.
func Voronoi(sites []Point, bounds Polygon) *VoronoiDiagram {
	return VoronoiWithIndex(sites, bounds, nil)
}

// VoronoiWithIndex is Voronoi reusing a prebuilt index over the same sites,
// so callers that also run nearest-site queries (the contour reconstructor)
// share one index per level. index == nil builds a fresh one.
func VoronoiWithIndex(sites []Point, bounds Polygon, index *NNIndex) *VoronoiDiagram {
	bounds = bounds.EnsureCCW()
	if index == nil {
		index = NewNNIndex(sites, bounds)
	}
	d := &VoronoiDiagram{
		Bounds: bounds,
		Cells:  make([]VoronoiCell, len(sites)),
		index:  index,
	}
	for i, s := range sites {
		region, horizon := voronoiCell(index, sites, i, bounds)
		d.Cells[i] = VoronoiCell{Site: s, Index: i, Region: region, horizonD2: horizon}
	}
	d.computeAdjacency(sites)
	return d
}

// VoronoiNaive is the reference O(k^2) construction: every cell is clipped
// against the bisector of every other site in input order. It is retained
// as the oracle for the indexed construction's equivalence property tests
// and as the pre-index baseline in the benchmark report.
func VoronoiNaive(sites []Point, bounds Polygon) *VoronoiDiagram {
	bounds = bounds.EnsureCCW()
	d := &VoronoiDiagram{
		Bounds: bounds,
		Cells:  make([]VoronoiCell, len(sites)),
	}
	for i, s := range sites {
		cell := VoronoiCell{Site: s, Index: i, horizonD2: math.Inf(1)}
		region := bounds
		for j, t := range sites {
			if j == i || region == nil {
				continue
			}
			if s.NearlyEqual(t) {
				// Duplicate sites split the plane ambiguously; assign the
				// region to the lower-indexed site.
				if j < i {
					region = nil
				}
				continue
			}
			region = region.ClipHalfPlane(bisectorHalfPlane(s, t))
		}
		cell.Region = region
		d.Cells[i] = cell
	}
	d.computeAdjacency(sites)
	return d
}

// voronoiCell computes the cell of site i by clipping bounds against
// bisectors in increasing distance from the site. The early exit is the
// security-radius argument: once the candidate distance d(s, t) reaches
// twice the distance R from s to its farthest current region vertex, every
// region point q satisfies d(q, t) >= d(s, t) - d(s, q) >= 2R - R >= d(q, s),
// so neither t nor any farther site can cut the region.
//
// The second return is the cell's scan horizon: the squared distance of
// the candidate that stopped the scan, or +Inf when every site was
// visited. Sites at or beyond the horizon were never applied, so the
// region (and its exact float vertices) depends only on the sites
// strictly inside it.
func voronoiCell(index *NNIndex, sites []Point, i int, bounds Polygon) (Polygon, float64) {
	s := sites[i]
	region := bounds
	r2 := farthestVertexDist2(region, s)
	horizon := math.Inf(1)
	index.VisitByDistance(s, func(j int, d2 float64) bool {
		if j == i {
			return true
		}
		if len(region) < 3 {
			// Degenerate bounds: the naive path nils such a region on its
			// first clip (dedupe drops sub-triangle output).
			region = nil
			horizon = d2
			return false
		}
		if d2 >= 4*r2 {
			horizon = d2
			return false
		}
		t := sites[j]
		if s.NearlyEqual(t) {
			// Duplicate sites split the plane ambiguously; assign the
			// region to the lower-indexed site.
			if j < i {
				region = nil
				horizon = d2
				return false
			}
			return true
		}
		region = region.ClipHalfPlane(bisectorHalfPlane(s, t))
		if region == nil {
			horizon = d2
			return false
		}
		r2 = farthestVertexDist2(region, s)
		return true
	})
	return region, horizon
}

// farthestVertexDist2 returns the squared distance from s to the farthest
// vertex of the (convex) polygon — the security radius of the clip loop.
func farthestVertexDist2(pg Polygon, s Point) float64 {
	var m float64
	for _, v := range pg {
		if d := s.Dist2To(v); d > m {
			m = d
		}
	}
	return m
}

// bisectorHalfPlane returns the half-plane of points at least as close to s
// as to t.
func bisectorHalfPlane(s, t Point) HalfPlane {
	return HalfPlane{Origin: s.Mid(t), Normal: t.Sub(s)}
}

// computeAdjacency finds, for every cell, the neighboring cells with which
// it shares a bisector edge, recording the shared edge segments.
func (d *VoronoiDiagram) computeAdjacency(sites []Point) {
	for i := range d.Cells {
		d.cellAdjacency(sites, i)
	}
}

// cellAdjacency fills Neighbors/SharedEdges of one cell; the cell's lists
// must be empty on entry (freshly built cells are).
func (d *VoronoiDiagram) cellAdjacency(sites []Point, i int) {
	ci := &d.Cells[i]
	if ci.Region == nil {
		return
	}
	for _, e := range ci.Region.Edges() {
		j, ok := d.edgeNeighbor(sites, i, e)
		if !ok {
			continue
		}
		ci.Neighbors = append(ci.Neighbors, j)
		ci.SharedEdges = append(ci.SharedEdges, e)
	}
}

// adjacencyTol is edgeNeighbor's equidistance band. DiffSites widens its
// dirtiness horizon by the same amount so a site change that could flip
// an adjacency verdict without clipping the region still dirties the cell.
const adjacencyTol = 1e-6

// edgeNeighbor identifies which other site (if any) generates edge e of cell
// i: the edge midpoint must be (within tolerance) equidistant from both
// sites and the edge must lie on their bisector.
func (d *VoronoiDiagram) edgeNeighbor(sites []Point, i int, e Segment) (int, bool) {
	const tol = adjacencyTol
	m := e.Mid()
	di := m.DistTo(sites[i])
	best := -1
	if d.index != nil {
		best = d.index.NearestExcluding(m, i)
	} else {
		// Same ordering as NearestExcluding (squared distances, lowest
		// index on ties) so indexed and naive diagrams agree exactly.
		bestD2 := 0.0
		for j, s := range sites {
			if j == i {
				continue
			}
			if d2 := m.Dist2To(s); best < 0 || d2 < bestD2 {
				best, bestD2 = j, d2
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	// The shared edge midpoint is equidistant from both generating sites.
	dj := m.DistTo(sites[best])
	if dj >= di+tol || dj < di-tol {
		return 0, false
	}
	return best, true
}

// CellContaining returns the index of the cell whose site is nearest to p
// among cells with a non-nil Region, or -1 when no such cell exists (empty
// diagram or degenerate bounds). Ties go to the lowest index. Degenerate
// duplicate-site cells (Region == nil) are never returned, so callers may
// walk the result's Region unconditionally.
func (d *VoronoiDiagram) CellContaining(p Point) int {
	if d.index != nil {
		// The overall nearest site is also the nearest usable one whenever
		// its region survived; the nil-region case (a duplicate site) falls
		// through to the scan below.
		if best := d.index.Nearest(p); best >= 0 && d.Cells[best].Region != nil {
			return best
		}
	}
	best, bestDist := -1, 0.0
	for i := range d.Cells {
		if d.Cells[i].Region == nil {
			continue
		}
		dist := p.Dist2To(d.Cells[i].Site)
		if best < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
