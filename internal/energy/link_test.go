package energy

import (
	"testing"

	"isomap/internal/metrics"
)

func TestNewLinkModel(t *testing.T) {
	if _, err := NewLinkModel(0); err != nil {
		t.Errorf("loss 0 should be valid: %v", err)
	}
	if _, err := NewLinkModel(0.5); err != nil {
		t.Errorf("loss 0.5 should be valid: %v", err)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := NewLinkModel(bad); err == nil {
			t.Errorf("loss %v should be rejected", bad)
		}
	}
}

func TestExpectedTransmissions(t *testing.T) {
	lm, err := NewLinkModel(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := lm.ExpectedTransmissions(); got != 2 {
		t.Errorf("ExpectedTransmissions(0.5) = %v, want 2", got)
	}
	perfect, err := NewLinkModel(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := perfect.ExpectedTransmissions(); got != 1 {
		t.Errorf("ExpectedTransmissions(0) = %v, want 1", got)
	}
}

func TestNodeJoulesWithLoss(t *testing.T) {
	c := metrics.NewCounters(1)
	c.ChargeTx(0, 4800)
	c.ChargeRx(0, 4800)
	c.ChargeOps(0, 242e6)
	lm, err := NewLinkModel(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Radio doubles, compute does not.
	want := 2*(0.042+0.029) + 1.0
	if got := NodeJoulesWithLoss(c, 0, lm); !almostEqual(got, want, 1e-9) {
		t.Errorf("NodeJoulesWithLoss = %v, want %v", got, want)
	}
	if got := MeanNodeJoulesWithLoss(c, lm); !almostEqual(got, want, 1e-9) {
		t.Errorf("MeanNodeJoulesWithLoss = %v, want %v", got, want)
	}
	empty := metrics.NewCounters(0)
	if got := MeanNodeJoulesWithLoss(empty, lm); got != 0 {
		t.Errorf("empty MeanNodeJoulesWithLoss = %v", got)
	}
}

func TestPerfectLinkMatchesBaseModel(t *testing.T) {
	c := metrics.NewCounters(2)
	c.ChargeTx(0, 1000)
	c.ChargeRx(1, 1000)
	c.ChargeOps(0, 5000)
	lm, err := NewLinkModel(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := MeanNodeJoulesWithLoss(c, lm), MeanNodeJoules(c); !almostEqual(got, want, 1e-15) {
		t.Errorf("perfect link %v != base model %v", got, want)
	}
}
