// Package energy converts the communication and computation counters of a
// protocol run into per-node energy consumption, using the Mica2 mote model
// of the paper's Sec. 5.3: an ATmega128 MCU consuming 33 mW active power at
// 242 MIPS/W, and a CC1000 transceiver at 38.4 kbps consuming 29 mW
// receiving and 42 mW transmitting (at 0 dBm).
package energy

import (
	"isomap/internal/metrics"
	"isomap/internal/network"
)

// Mica2 radio and MCU characteristics (paper Sec. 5.3).
const (
	// RadioBitsPerSecond is the CC1000 data rate.
	RadioBitsPerSecond = 38400.0
	// TxPowerWatts is the transmit power draw at 0 dBm.
	TxPowerWatts = 0.042
	// RxPowerWatts is the receive power draw.
	RxPowerWatts = 0.029
	// InstructionsPerJoule follows from 242 MIPS/W.
	InstructionsPerJoule = 242e6
)

// TxJoules returns the energy to transmit the given number of bytes.
func TxJoules(bytes int64) float64 {
	return float64(bytes) * 8 / RadioBitsPerSecond * TxPowerWatts
}

// RxJoules returns the energy to receive the given number of bytes.
func RxJoules(bytes int64) float64 {
	return float64(bytes) * 8 / RadioBitsPerSecond * RxPowerWatts
}

// ComputeJoules returns the energy to execute the given number of abstract
// arithmetic operations, charged one instruction each.
func ComputeJoules(ops int64) float64 {
	return float64(ops) / InstructionsPerJoule
}

// NodeJoules returns the total energy a single node spent in the run.
func NodeJoules(c *metrics.Counters, id network.NodeID) float64 {
	return TxJoules(c.TxBytes(id)) + RxJoules(c.RxBytes(id)) + ComputeJoules(c.Ops(id))
}

// MeanNodeJoules returns the average per-node energy over the whole
// network — the metric of Fig. 16.
func MeanNodeJoules(c *metrics.Counters) float64 {
	n := c.Len()
	if n == 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		total += NodeJoules(c, network.NodeID(i))
	}
	return total / float64(n)
}

// MaxNodeJoules returns the highest per-node energy — hotspot load, useful
// for the ablation on filtering.
func MaxNodeJoules(c *metrics.Counters) float64 {
	var max float64
	for i := 0; i < c.Len(); i++ {
		if e := NodeJoules(c, network.NodeID(i)); e > max {
			max = e
		}
	}
	return max
}
