package energy

import (
	"math"
	"testing"

	"isomap/internal/metrics"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTxJoules(t *testing.T) {
	// 4800 bytes = 38400 bits = 1 second of airtime at 42 mW.
	if got := TxJoules(4800); !almostEqual(got, 0.042, 1e-12) {
		t.Errorf("TxJoules(4800) = %v, want 0.042", got)
	}
	if got := TxJoules(0); got != 0 {
		t.Errorf("TxJoules(0) = %v", got)
	}
}

func TestRxJoules(t *testing.T) {
	if got := RxJoules(4800); !almostEqual(got, 0.029, 1e-12) {
		t.Errorf("RxJoules(4800) = %v, want 0.029", got)
	}
}

func TestComputeJoules(t *testing.T) {
	// 242e6 instructions = 1 J at 242 MIPS/W.
	if got := ComputeJoules(242e6); !almostEqual(got, 1, 1e-12) {
		t.Errorf("ComputeJoules = %v, want 1", got)
	}
}

func TestTxCostsMoreThanRx(t *testing.T) {
	if TxJoules(1000) <= RxJoules(1000) {
		t.Error("transmit should cost more than receive on Mica2")
	}
}

func TestNodeAndMeanJoules(t *testing.T) {
	c := metrics.NewCounters(2)
	c.ChargeTx(0, 4800)
	c.ChargeRx(0, 4800)
	c.ChargeOps(0, 242e6)
	want0 := 0.042 + 0.029 + 1.0
	if got := NodeJoules(c, 0); !almostEqual(got, want0, 1e-9) {
		t.Errorf("NodeJoules(0) = %v, want %v", got, want0)
	}
	if got := NodeJoules(c, 1); got != 0 {
		t.Errorf("NodeJoules(1) = %v, want 0", got)
	}
	if got := MeanNodeJoules(c); !almostEqual(got, want0/2, 1e-9) {
		t.Errorf("MeanNodeJoules = %v, want %v", got, want0/2)
	}
	if got := MaxNodeJoules(c); !almostEqual(got, want0, 1e-9) {
		t.Errorf("MaxNodeJoules = %v, want %v", got, want0)
	}
	empty := metrics.NewCounters(0)
	if got := MeanNodeJoules(empty); got != 0 {
		t.Errorf("empty MeanNodeJoules = %v", got)
	}
}
