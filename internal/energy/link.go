package energy

import (
	"fmt"

	"isomap/internal/metrics"
	"isomap/internal/network"
)

// LinkModel describes an unreliable link layer with stop-and-wait ARQ.
// The paper assumes a perfect link layer "through performance based
// routing dynamics and MAC layer retransmissions" (Sec. 5); this model
// quantifies what that reliability costs: every hop is retransmitted until
// delivered, so the expected radio energy scales by 1/(1-p) for a per-hop
// loss probability p.
type LinkModel struct {
	// LossRate is the independent per-transmission loss probability,
	// in [0, 1).
	LossRate float64
}

// NewLinkModel validates the loss rate.
func NewLinkModel(lossRate float64) (LinkModel, error) {
	if lossRate < 0 || lossRate >= 1 {
		return LinkModel{}, fmt.Errorf("energy: loss rate %g outside [0, 1)", lossRate)
	}
	return LinkModel{LossRate: lossRate}, nil
}

// ExpectedTransmissions returns the mean number of transmissions per
// delivered frame, 1/(1-p).
func (lm LinkModel) ExpectedTransmissions() float64 {
	return 1 / (1 - lm.LossRate)
}

// NodeJoulesWithLoss returns a node's energy with radio costs inflated by
// the ARQ retransmission factor; computation is unaffected.
func NodeJoulesWithLoss(c *metrics.Counters, id network.NodeID, lm LinkModel) float64 {
	f := lm.ExpectedTransmissions()
	return f*(TxJoules(c.TxBytes(id))+RxJoules(c.RxBytes(id))) + ComputeJoules(c.Ops(id))
}

// MeanNodeJoulesWithLoss averages NodeJoulesWithLoss over the network —
// the Fig. 16 metric under an imperfect link layer.
func MeanNodeJoulesWithLoss(c *metrics.Counters, lm LinkModel) float64 {
	n := c.Len()
	if n == 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		total += NodeJoulesWithLoss(c, network.NodeID(i), lm)
	}
	return total / float64(n)
}
