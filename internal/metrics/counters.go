// Package metrics provides the bookkeeping used by every experiment:
// per-node traffic and computation counters, and aggregate views matching
// the paper's evaluation metrics (traffic overhead in KB, per-node
// computational intensity, report counts).
package metrics

import (
	"fmt"

	"isomap/internal/network"
)

// Counters accumulates per-node communication and computation costs during
// one protocol run.
type Counters struct {
	txBytes []int64
	rxBytes []int64
	ops     []int64
	// SinkReports counts reports that actually arrive at the sink.
	SinkReports int64
	// GeneratedReports counts reports created at source nodes, before any
	// in-network filtering.
	GeneratedReports int64
}

// NewCounters returns counters for a network of n nodes.
func NewCounters(n int) *Counters {
	return &Counters{
		txBytes: make([]int64, n),
		rxBytes: make([]int64, n),
		ops:     make([]int64, n),
	}
}

// Len returns the number of tracked nodes.
func (c *Counters) Len() int { return len(c.txBytes) }

func (c *Counters) check(id network.NodeID) error {
	if int(id) < 0 || int(id) >= len(c.txBytes) {
		return fmt.Errorf("metrics: node %d out of range [0,%d)", id, len(c.txBytes))
	}
	return nil
}

// ChargeTx charges a transmission of the given size to id.
func (c *Counters) ChargeTx(id network.NodeID, bytes int) {
	if c.check(id) == nil {
		c.txBytes[id] += int64(bytes)
	}
}

// ChargeRx charges a reception of the given size to id.
func (c *Counters) ChargeRx(id network.NodeID, bytes int) {
	if c.check(id) == nil {
		c.rxBytes[id] += int64(bytes)
	}
}

// ChargeOps charges abstract arithmetic operations to id.
func (c *Counters) ChargeOps(id network.NodeID, ops int) {
	if c.check(id) == nil {
		c.ops[id] += int64(ops)
	}
}

// TxBytes returns the bytes transmitted by id.
func (c *Counters) TxBytes(id network.NodeID) int64 {
	if c.check(id) != nil {
		return 0
	}
	return c.txBytes[id]
}

// RxBytes returns the bytes received by id.
func (c *Counters) RxBytes(id network.NodeID) int64 {
	if c.check(id) != nil {
		return 0
	}
	return c.rxBytes[id]
}

// Ops returns the operations charged to id.
func (c *Counters) Ops(id network.NodeID) int64 {
	if c.check(id) != nil {
		return 0
	}
	return c.ops[id]
}

// TotalTxBytes returns the network-wide transmitted bytes — the "traffic
// overhead" of Fig. 14 (every hop-by-hop transmission counted once).
func (c *Counters) TotalTxBytes() int64 {
	var t int64
	for _, v := range c.txBytes {
		t += v
	}
	return t
}

// TotalRxBytes returns the network-wide received bytes.
func (c *Counters) TotalRxBytes() int64 {
	var t int64
	for _, v := range c.rxBytes {
		t += v
	}
	return t
}

// TotalOps returns the network-wide operation count.
func (c *Counters) TotalOps() int64 {
	var t int64
	for _, v := range c.ops {
		t += v
	}
	return t
}

// MeanOpsPerNode returns the average computational intensity per node
// (Fig. 15).
func (c *Counters) MeanOpsPerNode() float64 {
	if len(c.ops) == 0 {
		return 0
	}
	return float64(c.TotalOps()) / float64(len(c.ops))
}

// TrafficKB returns the total transmitted traffic in kilobytes (Fig. 14's
// unit).
func (c *Counters) TrafficKB() float64 {
	return float64(c.TotalTxBytes()) / 1024
}

// SendToSink charges the hop-by-hop delivery of a message of the given size
// along path (source first, sink last): every node but the sink transmits
// once, every node but the source receives once.
func (c *Counters) SendToSink(path []network.NodeID, bytes int) {
	for i := 0; i < len(path)-1; i++ {
		c.ChargeTx(path[i], bytes)
		c.ChargeRx(path[i+1], bytes)
	}
}

// SendOneHop charges a single-hop exchange from src to dst.
func (c *Counters) SendOneHop(src, dst network.NodeID, bytes int) {
	c.ChargeTx(src, bytes)
	c.ChargeRx(dst, bytes)
}

// Broadcast charges one transmission at src and one reception per listener.
// Local neighborhood queries (the isoline node asking its neighbors for
// <value, position> tuples) use radio broadcast.
func (c *Counters) Broadcast(src network.NodeID, listeners []network.NodeID, bytes int) {
	c.ChargeTx(src, bytes)
	for _, l := range listeners {
		c.ChargeRx(l, bytes)
	}
}
