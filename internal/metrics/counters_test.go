package metrics

import (
	"testing"

	"isomap/internal/network"
)

func TestChargeAndTotals(t *testing.T) {
	c := NewCounters(3)
	c.ChargeTx(0, 10)
	c.ChargeTx(0, 5)
	c.ChargeRx(1, 10)
	c.ChargeOps(2, 100)
	if got := c.TxBytes(0); got != 15 {
		t.Errorf("TxBytes(0) = %d, want 15", got)
	}
	if got := c.RxBytes(1); got != 10 {
		t.Errorf("RxBytes(1) = %d, want 10", got)
	}
	if got := c.Ops(2); got != 100 {
		t.Errorf("Ops(2) = %d, want 100", got)
	}
	if got := c.TotalTxBytes(); got != 15 {
		t.Errorf("TotalTxBytes = %d, want 15", got)
	}
	if got := c.TotalRxBytes(); got != 10 {
		t.Errorf("TotalRxBytes = %d, want 10", got)
	}
	if got := c.TotalOps(); got != 100 {
		t.Errorf("TotalOps = %d, want 100", got)
	}
	if got := c.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestOutOfRangeChargesIgnored(t *testing.T) {
	c := NewCounters(2)
	c.ChargeTx(-1, 10)
	c.ChargeRx(5, 10)
	c.ChargeOps(2, 10)
	if c.TotalTxBytes() != 0 || c.TotalRxBytes() != 0 || c.TotalOps() != 0 {
		t.Error("out-of-range charges should be ignored")
	}
	if c.TxBytes(-1) != 0 || c.RxBytes(9) != 0 || c.Ops(9) != 0 {
		t.Error("out-of-range reads should be zero")
	}
}

func TestSendToSink(t *testing.T) {
	c := NewCounters(4)
	path := []network.NodeID{3, 2, 1, 0}
	c.SendToSink(path, 10)
	// Three hops: 3->2, 2->1, 1->0.
	for _, id := range []network.NodeID{3, 2, 1} {
		if got := c.TxBytes(id); got != 10 {
			t.Errorf("TxBytes(%d) = %d, want 10", id, got)
		}
	}
	if got := c.TxBytes(0); got != 0 {
		t.Errorf("sink should not transmit, TxBytes = %d", got)
	}
	if got := c.RxBytes(3); got != 0 {
		t.Errorf("source should not receive, RxBytes = %d", got)
	}
	if got := c.TotalTxBytes(); got != 30 {
		t.Errorf("TotalTxBytes = %d, want 30", got)
	}
	// Single-node path (source is sink) charges nothing.
	c2 := NewCounters(1)
	c2.SendToSink([]network.NodeID{0}, 10)
	if c2.TotalTxBytes() != 0 {
		t.Error("self-delivery should be free")
	}
}

func TestSendOneHopAndBroadcast(t *testing.T) {
	c := NewCounters(4)
	c.SendOneHop(0, 1, 6)
	if c.TxBytes(0) != 6 || c.RxBytes(1) != 6 {
		t.Error("SendOneHop mischarged")
	}
	c.Broadcast(2, []network.NodeID{0, 1, 3}, 4)
	if c.TxBytes(2) != 4 {
		t.Errorf("broadcast tx = %d, want 4 (single transmission)", c.TxBytes(2))
	}
	for _, id := range []network.NodeID{0, 1, 3} {
		if c.RxBytes(id) < 4 {
			t.Errorf("listener %d rx = %d, want >= 4", id, c.RxBytes(id))
		}
	}
}

func TestMeanOpsAndTrafficKB(t *testing.T) {
	c := NewCounters(2)
	c.ChargeOps(0, 10)
	c.ChargeOps(1, 30)
	if got := c.MeanOpsPerNode(); got != 20 {
		t.Errorf("MeanOpsPerNode = %v, want 20", got)
	}
	c.ChargeTx(0, 2048)
	if got := c.TrafficKB(); got != 2 {
		t.Errorf("TrafficKB = %v, want 2", got)
	}
	empty := NewCounters(0)
	if got := empty.MeanOpsPerNode(); got != 0 {
		t.Errorf("empty MeanOpsPerNode = %v", got)
	}
}
