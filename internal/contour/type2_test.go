package contour

import (
	"math"
	"testing"

	"isomap/internal/core"
	"isomap/internal/geom"
)

func TestType2ClosesOppositeGradients(t *testing.T) {
	// Two sites side by side, both with gradients pointing +x: each cell's
	// inner part is its left side. The left cell's inner region touches
	// the right cell's outer region along part of their bisector, so a
	// type-2 boundary must appear there.
	bounds := geom.Rect(0, 0, 20, 10)
	reports := []core.Report{
		{LevelIndex: 0, Level: 6, Pos: geom.Point{X: 5, Y: 5}, Grad: geom.Vec{X: 1}},
		{LevelIndex: 0, Level: 6, Pos: geom.Point{X: 15, Y: 5}, Grad: geom.Vec{X: 1}},
	}
	m := Reconstruct(reports, levels682(), bounds, 5, Options{Regulate: false})
	type2 := m.levels[0].type2Segments(bounds)
	if len(type2) == 0 {
		t.Fatal("no type-2 boundaries where inner meets outer")
	}
	// The type-2 pieces lie on the bisector x = 10, between the left
	// cell's inner region (x <= 5 is inner for site 1... actually inner is
	// x <= 5 relative to site: (p-site).grad <= 0 means x <= 5 for the
	// left site and x <= 15 for the right). Region: union of [0,5] in left
	// cell and [10,15] in right cell. Inner-outer contact at x=10 between
	// the right cell's inner part and... the left cell's outer part
	// [5,10]. So type-2 at x = 10 from the right cell.
	for _, s := range type2 {
		if math.Abs(s.A.X-10) > 1e-6 || math.Abs(s.B.X-10) > 1e-6 {
			t.Errorf("type-2 segment %v not on the bisector x=10", s)
		}
	}
}

func TestType2AbsentWhenRegionsAgree(t *testing.T) {
	// Opposing gradients pointing away from the shared border: both cells'
	// inner parts touch at the bisector, so no type-2 boundary lies there.
	bounds := geom.Rect(0, 0, 20, 10)
	reports := []core.Report{
		{LevelIndex: 0, Level: 6, Pos: geom.Point{X: 5, Y: 5}, Grad: geom.Vec{X: -1}},
		{LevelIndex: 0, Level: 6, Pos: geom.Point{X: 15, Y: 5}, Grad: geom.Vec{X: 1}},
	}
	m := Reconstruct(reports, levels682(), bounds, 5, Options{Regulate: false})
	type2 := m.levels[0].type2Segments(bounds)
	for _, s := range type2 {
		if math.Abs(s.Mid().X-10) < 1e-6 {
			t.Errorf("type-2 segment %v on the bisector though both sides are inner", s)
		}
	}
}

func TestFullBoundaryIncludesChords(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	reports := circleReports(geom.Point{X: 25, Y: 25}, 10, 16, 0, 6)
	m := Reconstruct(reports, levels682(), bounds, 5, DefaultOptions())
	chords := m.BoundarySegments(0)
	full := m.FullBoundarySegments(0)
	if len(full) < len(chords) {
		t.Fatalf("full boundary (%d) smaller than chords (%d)", len(full), len(chords))
	}
	if got := m.FullBoundarySegments(-1); got != nil {
		t.Error("invalid level should yield nil")
	}
	if got := m.FullBoundarySegments(3); got != nil {
		t.Error("empty level should yield nil")
	}
}

func TestType2OnWellSpreadCircleIsSmall(t *testing.T) {
	// With dense, evenly spread reports around a circle the chords line up
	// and type-2 closure pieces are short relative to the type-1 total.
	bounds := geom.Rect(0, 0, 50, 50)
	reports := circleReports(geom.Point{X: 25, Y: 25}, 10, 32, 0, 6)
	m := Reconstruct(reports, levels682(), bounds, 5, Options{Regulate: false})
	var t1, t2 float64
	for _, s := range m.BoundarySegments(0) {
		t1 += s.Length()
	}
	for _, s := range m.levels[0].type2Segments(bounds) {
		t2 += s.Length()
	}
	if t1 == 0 {
		t.Fatal("no chords")
	}
	if t2 > t1 {
		t.Errorf("type-2 length %v exceeds type-1 %v on a well-sampled circle", t2, t1)
	}
}
