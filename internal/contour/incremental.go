// Incremental reconstruction (PR 6): the sink of a continuously monitored
// deployment receives a report round every few seconds, but successive
// rounds share most of their reports — isopositions are node positions,
// and only nodes near a moving isoline change their mind. Incremental
// keeps the previous round's per-level state (Voronoi diagram, base
// chords, raster) and recomputes only what a changed report can have
// touched, with the full Reconstruct as its byte-identical oracle.
//
// The contract: Update(reports, sinkValue) returns a Map equal (bit for
// bit — DeepEqual, including every region float) to
// Reconstruct(Arranged(), levels, bounds, sinkValue, opts), where
// Arranged is the deterministic per-level permutation of the input
// reports the engine maintains to keep report slots stable across rounds.
// Raster output is likewise byte-identical to the full raster of that
// map. The incremental_test.go property tests pin both.
package contour

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/trace"
)

// IncrementalStats counts the work the engine did and saved; all fields
// are cumulative across Updates.
type IncrementalStats struct {
	// Updates is the number of rounds ingested.
	Updates int
	// LevelsReused counts isolevels reused wholesale (empty diff).
	LevelsReused int
	// LevelsRebuilt counts full per-level builds (first round, empty
	// transitions).
	LevelsRebuilt int
	// CellsReused / CellsRecomputed split the Voronoi cells of
	// incrementally rebuilt levels.
	CellsReused     int
	CellsRecomputed int
	// RasterCellsCopied / RasterCellsReclassified split the raster cells
	// of incremental raster refreshes; RasterFullRebuilds counts rasters
	// recomputed from scratch.
	RasterCellsCopied       int
	RasterCellsReclassified int
	RasterFullRebuilds      int
}

// dirtyRect is an axis-aligned region (bounds coordinates) inside which
// raster membership may have changed since the previous round.
type dirtyRect struct{ x0, y0, x1, y1 float64 }

type cachedRaster struct {
	version int
	ra      *field.Raster
}

// Incremental is the multi-round reconstruction engine. It is not safe
// for concurrent use; serialize Update/Raster calls (the serving daemon
// takes a per-deployment lock) — Maps and Rasters it has returned remain
// valid and read-only forever.
type Incremental struct {
	levels field.Levels
	bounds geom.Polygon
	opts   Options
	values []float64

	version  int
	cur      *Map
	arranged [][]core.Report

	// lastDirty bounds the membership changes of the latest Update;
	// lastFull marks rounds where no bound was provable (first round,
	// duplicate ambiguity, empty transitions).
	lastDirty []dirtyRect
	lastFull  bool
	rasters   map[[2]int]cachedRaster

	stats IncrementalStats
}

// NewIncremental creates an engine for one deployment's query. opts must
// stay fixed for the engine's lifetime (they parameterize every oracle
// comparison).
func NewIncremental(levels field.Levels, bounds geom.Polygon, opts Options) *Incremental {
	return &Incremental{
		levels:  levels,
		bounds:  bounds.EnsureCCW(),
		opts:    opts,
		values:  levels.Values(),
		rasters: make(map[[2]int]cachedRaster),
	}
}

// Map returns the current map (nil before the first Update).
func (inc *Incremental) Map() *Map { return inc.cur }

// Version returns the number of completed Updates.
func (inc *Incremental) Version() int { return inc.version }

// Stats returns the cumulative work counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// Arranged returns the current round's reports in the engine's slot
// order: the exact input Reconstruct must be given to reproduce the
// engine's map byte for byte. It is a permutation of the last Update's
// (in-range) reports, concatenated level by level.
func (inc *Incremental) Arranged() []core.Report {
	var out []core.Report
	for _, lvl := range inc.arranged {
		out = append(out, lvl...)
	}
	return out
}

// workers resolves the engine's effective pool width: Options.Workers,
// with values below 1 selecting GOMAXPROCS, and a non-nil Trace forcing 1
// (trace.Recorder is single-writer and stage-event order must stay
// deterministic).
func (inc *Incremental) workers() int {
	if inc.opts.Trace != nil {
		return 1
	}
	w := inc.opts.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// Update ingests one round of reports and returns the new current map.
// Isolevels are independent — each reads only its own slice of the
// previous map and writes its own slot — so they build on a worker pool
// (Options.Workers wide); per-level stats and dirty rectangles are merged
// in level order afterwards, keeping the map, the stats and the dirty
// bounds byte-identical to a sequential build.
func (inc *Incremental) Update(reports []core.Report, sinkValue float64) *Map {
	arranged := inc.arrange(reports)
	m := &Map{Levels: inc.levels, Bounds: inc.bounds, tr: inc.opts.Trace}
	prev := inc.cur
	m.levels = make([]*levelRecon, len(inc.values))
	dirties := make([]levelDirty, len(inc.values))
	statsDeltas := make([]IncrementalStats, len(inc.values))
	buildOne := func(i int) {
		var old *levelRecon
		if prev != nil {
			old = prev.levels[i]
		}
		m.levels[i], dirties[i] = inc.buildLevel(old, inc.values[i], i, arranged[i], sinkValue, &statsDeltas[i])
	}
	if w := min(inc.workers(), len(inc.values)); w <= 1 {
		for i := range inc.values {
			buildOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					buildOne(i)
				}
			}()
		}
		for i := range inc.values {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var dirty []dirtyRect
	wholeDirty := prev == nil
	for i := range inc.values {
		if dirties[i].whole {
			wholeDirty = true
		}
		dirty = append(dirty, dirties[i].rects...)
		inc.stats.add(statsDeltas[i])
	}
	inc.version++
	inc.cur = m
	inc.lastDirty = dirty
	inc.lastFull = wholeDirty
	inc.stats.Updates++
	return m
}

// add accumulates a per-level (or per-row) stats delta.
func (st *IncrementalStats) add(d IncrementalStats) {
	st.Updates += d.Updates
	st.LevelsReused += d.LevelsReused
	st.LevelsRebuilt += d.LevelsRebuilt
	st.CellsReused += d.CellsReused
	st.CellsRecomputed += d.CellsRecomputed
	st.RasterCellsCopied += d.RasterCellsCopied
	st.RasterCellsReclassified += d.RasterCellsReclassified
	st.RasterFullRebuilds += d.RasterFullRebuilds
}

// arrange buckets reports by level (dropping out-of-range level indices,
// as Reconstruct does) and assigns each level's reports to stable slots:
// a report identical to one of the previous round keeps that round's slot
// whenever it still fits, and changed reports fill the freed slots in
// arrival order. Slot stability is what turns report churn into a small
// positional diff.
func (inc *Incremental) arrange(reports []core.Report) [][]core.Report {
	byLevel := make([][]core.Report, len(inc.values))
	for _, r := range reports {
		if r.LevelIndex >= 0 && r.LevelIndex < len(inc.values) {
			byLevel[r.LevelIndex] = append(byLevel[r.LevelIndex], r)
		}
	}
	out := make([][]core.Report, len(inc.values))
	for li := range byLevel {
		var prev []core.Report
		if inc.arranged != nil {
			prev = inc.arranged[li]
		}
		out[li] = arrangeLevel(prev, byLevel[li])
	}
	inc.arranged = out
	return out
}

func arrangeLevel(prev, incoming []core.Report) []core.Report {
	n := len(incoming)
	if n == 0 || len(prev) == 0 {
		return incoming
	}
	// Free slots of the previous round, keyed by exact report value;
	// slots at or past the new length cannot be kept.
	slotsOf := make(map[core.Report][]int, len(prev))
	for i := 0; i < len(prev) && i < n; i++ {
		slotsOf[prev[i]] = append(slotsOf[prev[i]], i)
	}
	arranged := make([]core.Report, n)
	occupied := make([]bool, n)
	var pending []core.Report
	for _, r := range incoming {
		if ss := slotsOf[r]; len(ss) > 0 {
			slot := ss[0]
			slotsOf[r] = ss[1:]
			arranged[slot] = r
			occupied[slot] = true
			continue
		}
		pending = append(pending, r)
	}
	pi := 0
	for i := 0; i < n; i++ {
		if !occupied[i] {
			arranged[i] = pending[pi]
			pi++
		}
	}
	return arranged
}

// levelDirty bounds where one level's membership function changed.
type levelDirty struct {
	whole bool
	rects []dirtyRect
}

// buildLevel produces the new levelRecon for one isolevel, reusing as
// much of old as the site diff can prove unchanged. Work counters go to
// st, the caller's per-level accumulator (never inc.stats directly:
// buildLevel runs concurrently across levels).
func (inc *Incremental) buildLevel(old *levelRecon, lv float64, idx int, reports []core.Report, sinkValue float64, st *IncrementalStats) (*levelRecon, levelDirty) {
	lr := &levelRecon{level: lv, index: idx, fallbackInner: sinkValue >= lv}
	for _, r := range reports {
		lr.sites = append(lr.sites, r.Pos)
		lr.grads = append(lr.grads, r.Grad)
	}
	// Empty transitions (and the first round) rebuild the level outright.
	if old == nil || len(old.sites) == 0 || len(lr.sites) == 0 {
		lr.build(inc.bounds, inc.opts)
		st.LevelsRebuilt++
		if old != nil && len(old.sites) == 0 && len(lr.sites) == 0 && old.fallbackInner == lr.fallbackInner {
			return lr, levelDirty{}
		}
		return lr, levelDirty{whole: true}
	}

	diff := old.diagram.DiffSitesWorkers(lr.sites, inc.workers())
	if diff.Identical && vecsEqual(old.grads, lr.grads) {
		// Nothing changed: reuse the whole level. The copy re-derives
		// fallbackInner (only consulted on empty levels, but kept exact
		// so the oracle DeepEqual holds field by field).
		reuse := *old
		reuse.level, reuse.index = lv, idx
		reuse.fallbackInner = lr.fallbackInner
		st.LevelsReused++
		return &reuse, levelDirty{}
	}

	start := time.Now()
	if diff.Identical {
		// Sites unchanged, some gradient changed: geometry is reusable
		// as a whole; only chords/patches need work.
		lr.nn = old.nn
		lr.diagram = old.diagram
	} else {
		lr.nn = geom.NewNNIndex(lr.sites, inc.bounds)
		lr.diagram = geom.VoronoiIncremental(old.diagram, lr.sites, lr.nn, diff)
	}
	recordStage(inc.opts.Trace, trace.StageVoronoi, idx, start)
	st.CellsReused += len(lr.sites) - diff.DirtyCount
	st.CellsRecomputed += diff.DirtyCount

	start = time.Now()
	n := len(lr.sites)
	lr.baseChords = make([]geom.Segment, n)
	lr.hasChord = make([]bool, n)
	for i := 0; i < n; i++ {
		cell := &lr.diagram.Cells[i]
		if cell.Region == nil {
			continue
		}
		if !diff.Dirty[i] && old.grads[i] == lr.grads[i] {
			lr.baseChords[i] = old.baseChords[i]
			lr.hasChord[i] = old.hasChord[i]
			continue
		}
		chord, ok := chordInCell(cell.Region, lr.sites[i], lr.grads[i])
		lr.baseChords[i] = chord
		lr.hasChord[i] = ok
	}
	lr.chords = append([]geom.Segment(nil), lr.baseChords...)
	recordStage(inc.opts.Trace, trace.StageChords, idx, start)
	if inc.opts.Regulate {
		// Regulation mutates chords sequentially across shared edges, so
		// a partial re-run cannot reproduce the full sweep's floats;
		// re-running it whole from the retained bases can, and it is
		// cheap (linear in adjacent chord pairs).
		start = time.Now()
		lr.regulate(lr.diagram)
		recordStage(inc.opts.Trace, trace.StageRegulate, idx, start)
	}

	return lr, inc.levelDirtyArea(old, lr, diff)
}

// levelDirtyArea bounds where the level's membership changed: the old
// regions of vanished/moved slots, the new regions of unstable and
// gradient-changed slots, and the symmetric difference of regulation
// patches. Nearest-site membership outside those regions is unchanged —
// a probe can only switch its nearest site to or from a changed site, and
// then it lies inside that site's (old or new) region. Duplicate
// ambiguity (NearDupe) and nil regions void the region covering, falling
// back to the whole level.
func (inc *Incremental) levelDirtyArea(old, lr *levelRecon, diff geom.VoronoiDiff) levelDirty {
	if diff.NearDupe {
		return levelDirty{whole: true}
	}
	ld := levelDirty{}
	addRegion := func(region geom.Polygon) bool {
		if region == nil {
			return false
		}
		x0, y0, x1, y1 := region.BoundingBox()
		ld.rects = append(ld.rects, dirtyRect{x0 - geom.Eps, y0 - geom.Eps, x1 + geom.Eps, y1 + geom.Eps})
		return true
	}
	for _, oi := range diff.StaleOld {
		if !addRegion(old.diagram.Cells[oi].Region) {
			return levelDirty{whole: true}
		}
	}
	for i := range lr.sites {
		changed := !diff.Stable[i] ||
			(i < len(old.grads) && old.grads[i] != lr.grads[i])
		if !changed {
			continue
		}
		if !addRegion(lr.diagram.Cells[i].Region) {
			return levelDirty{whole: true}
		}
	}
	// Patches flip membership parity inside their triangles; a patch
	// present in both rounds (same vertices) cancels out.
	if len(old.patches) > 0 || len(lr.patches) > 0 {
		type triKey [6]float64
		keyOf := func(pa *patch) triKey {
			return triKey{pa.tri[0].X, pa.tri[0].Y, pa.tri[1].X, pa.tri[1].Y, pa.tri[2].X, pa.tri[2].Y}
		}
		count := make(map[triKey]int, len(old.patches)+len(lr.patches))
		rect := make(map[triKey]dirtyRect, len(old.patches)+len(lr.patches))
		for i := range old.patches {
			pa := &old.patches[i]
			k := keyOf(pa)
			count[k]++
			rect[k] = dirtyRect{pa.x0, pa.y0, pa.x1, pa.y1}
		}
		for i := range lr.patches {
			pa := &lr.patches[i]
			k := keyOf(pa)
			count[k]--
			rect[k] = dirtyRect{pa.x0, pa.y0, pa.x1, pa.y1}
		}
		for k, c := range count {
			if c != 0 {
				ld.rects = append(ld.rects, rect[k])
			}
		}
	}
	return ld
}

func vecsEqual(a, b []geom.Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Raster returns the rows x cols classification raster of the current
// map, byte-identical to Map().RasterWorkers(rows, cols, 1). When the
// same resolution was rastered for the previous round and the latest
// Update bounded its membership changes, only cells whose centers fall in
// the dirty rectangles are reclassified; the rest are copied. Returned
// rasters are cached per resolution and must be treated as read-only.
func (inc *Incremental) Raster(rows, cols int) *field.Raster {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	if inc.cur == nil {
		return field.NewRaster(rows, cols)
	}
	key := [2]int{rows, cols}
	c, ok := inc.rasters[key]
	if ok && c.version == inc.version {
		return c.ra
	}
	var ra *field.Raster
	if ok && c.version == inc.version-1 && !inc.lastFull && rows > 0 && cols > 0 {
		ra = inc.rasterFromPrev(c.ra, rows, cols)
	} else {
		ra = inc.cur.RasterWorkers(rows, cols, inc.opts.Workers)
		inc.stats.RasterFullRebuilds++
	}
	inc.rasters[key] = cachedRaster{version: inc.version, ra: ra}
	return ra
}

// rasterFromPrev refreshes prev into a new raster: rows outside every
// dirty rectangle are copied; inside, cells are reclassified with the
// same warm-cursor scan the full sweep uses (answers are
// cursor-independent, so partial scans agree with full ones exactly).
// Rows write disjoint slices and carry their own cursor state, so they
// refresh on a worker pool (Options.Workers) with per-worker stats
// deltas summed afterwards — byte-identical output and identical stats
// at any width.
func (inc *Incremental) rasterFromPrev(prev *field.Raster, rows, cols int) *field.Raster {
	m := inc.cur
	ra := field.NewRaster(rows, cols)
	x0, y0, x1, y1 := m.Bounds.BoundingBox()
	w, h := x1-x0, y1-y0

	type span struct{ r0, r1, c0, c1 int }
	spans := make([]span, 0, len(inc.lastDirty))
	for _, d := range inc.lastDirty {
		s := span{
			r0: clampIdx(floorIdx((d.y0-y0)/h, rows), rows),
			r1: clampIdx(ceilIdx((d.y1-y0)/h, rows), rows),
			c0: clampIdx(floorIdx((d.x0-x0)/w, cols), cols),
			c1: clampIdx(ceilIdx((d.x1-x0)/w, cols), cols),
		}
		if s.r0 > s.r1 || s.c0 > s.c1 {
			continue
		}
		spans = append(spans, s)
	}

	// refreshRows handles the row range [lo,hi) with its own cursor and
	// interval scratch, accumulating work counters into st.
	refreshRows := func(lo, hi int, st *IncrementalStats) {
		hints := make([]int, len(m.levels))
		var ivs [][2]int
		for r := lo; r < hi; r++ {
			copy(ra.Cells[r], prev.Cells[r])
			ivs = ivs[:0]
			for _, s := range spans {
				if r >= s.r0 && r <= s.r1 {
					ivs = append(ivs, [2]int{s.c0, s.c1})
				}
			}
			if len(ivs) == 0 {
				st.RasterCellsCopied += cols
				continue
			}
			merged := mergeIntervals(ivs)
			y := y0 + h*(float64(r)+0.5)/float64(rows)
			for i := range hints {
				hints[i] = -1
			}
			redone := 0
			for _, iv := range merged {
				for cc := iv[0]; cc <= iv[1]; cc++ {
					x := x0 + w*(float64(cc)+0.5)/float64(cols)
					p := geom.Point{X: x, Y: y}
					idx := 0
					for li, lr := range m.levels {
						if !lr.levelInnerHint(p, &hints[li]) {
							break
						}
						idx++
					}
					ra.Cells[r][cc] = idx
					redone++
				}
			}
			st.RasterCellsReclassified += redone
			st.RasterCellsCopied += cols - redone
		}
	}

	if nw := min(inc.workers(), rows); nw <= 1 {
		refreshRows(0, rows, &inc.stats)
	} else {
		deltas := make([]IncrementalStats, nw)
		var wg sync.WaitGroup
		for g := 0; g < nw; g++ {
			lo := g * rows / nw
			hi := (g + 1) * rows / nw
			wg.Add(1)
			go func(g, lo, hi int) {
				defer wg.Done()
				refreshRows(lo, hi, &deltas[g])
			}(g, lo, hi)
		}
		wg.Wait()
		for g := range deltas {
			inc.stats.add(deltas[g])
		}
	}
	return ra
}

// floorIdx / ceilIdx convert a fractional bounds coordinate into the
// first/last raster index whose cell center can lie inside it; the extra
// half-cell slack errs toward reclassifying a boundary cell.
func floorIdx(frac float64, n int) int {
	v := frac*float64(n) - 0.5
	i := int(v)
	if float64(i) > v {
		i--
	}
	return i
}

func ceilIdx(frac float64, n int) int {
	v := frac*float64(n) - 0.5
	i := int(v)
	if float64(i) < v {
		i++
	}
	return i
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Equivalent reports whether two maps are byte-identical: every exported
// and retained internal field equal via DeepEqual, plus equal rows x cols
// raster bytes. It is the oracle check the serving daemon's -oracle mode
// and the incremental property tests run after every update; the error
// names the first divergence found.
func Equivalent(a, b *Map, rows, cols int) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("contour: one map is nil (a=%v b=%v)", a == nil, b == nil)
	}
	if a == nil {
		return nil
	}
	if len(a.levels) != len(b.levels) {
		return fmt.Errorf("contour: level count %d vs %d", len(a.levels), len(b.levels))
	}
	for i := range a.levels {
		if !reflect.DeepEqual(a.levels[i], b.levels[i]) {
			return fmt.Errorf("contour: level %d reconstruction state diverges", i)
		}
	}
	if !reflect.DeepEqual(a.Levels, b.Levels) || !reflect.DeepEqual(a.Bounds, b.Bounds) {
		return fmt.Errorf("contour: map levels/bounds diverge")
	}
	if rows > 0 && cols > 0 {
		ra, rb := a.RasterWorkers(rows, cols, 1), b.RasterWorkers(rows, cols, 1)
		for r := range ra.Cells {
			for c := range ra.Cells[r] {
				if ra.Cells[r][c] != rb.Cells[r][c] {
					return fmt.Errorf("contour: raster cell (%d,%d) = %d vs %d", r, c, ra.Cells[r][c], rb.Cells[r][c])
				}
			}
		}
	}
	return nil
}

// EquivalentRaster reports whether ra equals rb cell for cell.
func EquivalentRaster(ra, rb *field.Raster) error {
	if ra.Rows != rb.Rows || ra.Cols != rb.Cols {
		return fmt.Errorf("contour: raster dims %dx%d vs %dx%d", ra.Rows, ra.Cols, rb.Rows, rb.Cols)
	}
	for r := range ra.Cells {
		for c := range ra.Cells[r] {
			if ra.Cells[r][c] != rb.Cells[r][c] {
				return fmt.Errorf("contour: raster cell (%d,%d) = %d vs %d", r, c, ra.Cells[r][c], rb.Cells[r][c])
			}
		}
	}
	return nil
}

// mergeIntervals merges overlapping [a,b] column intervals in place-ish.
func mergeIntervals(ivs [][2]int) [][2]int {
	if len(ivs) <= 1 {
		return ivs
	}
	// Insertion sort by start: span counts are small.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j][0] < ivs[j-1][0]; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv[0] <= last[1]+1 {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
