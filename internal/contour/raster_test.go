package contour

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
)

// rastersEqual reports byte-identity of two rasters.
func rastersEqual(a, b *field.Raster) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for r := range a.Cells {
		for c := range a.Cells[r] {
			if a.Cells[r][c] != b.Cells[r][c] {
				return false
			}
		}
	}
	return true
}

// reconMaps builds a few maps with varied report densities, including
// degenerate duplicate/empty-level inputs, for the raster equivalence
// tests.
func reconMaps(t *testing.T) []*Map {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	levels := levels682()
	bounds := geom.Rect(0, 0, 50, 50)
	var maps []*Map
	for _, n := range []int{0, 1, 5, 40, 200} {
		reports := randomReports(rng, n, levels)
		maps = append(maps, Reconstruct(reports, levels, bounds, rng.Float64()*15, DefaultOptions()))
	}
	dup := []core.Report{
		{LevelIndex: 0, Pos: geom.Point{X: 10, Y: 10}, Grad: geom.Vec{X: 1}},
		{LevelIndex: 0, Pos: geom.Point{X: 10, Y: 10}, Grad: geom.Vec{X: 1}},
		{LevelIndex: 1, Pos: geom.Point{X: 30, Y: 30}, Grad: geom.Vec{Y: -1}},
	}
	maps = append(maps, Reconstruct(dup, levels, bounds, 9, DefaultOptions()))
	return maps
}

func TestRasterParallelByteIdenticalToSequential(t *testing.T) {
	for mi, m := range reconMaps(t) {
		seq := m.RasterWorkers(48, 48, 1)
		for _, workers := range []int{2, 3, 8, 64, 0} {
			par := m.RasterWorkers(48, 48, workers)
			if !rastersEqual(seq, par) {
				t.Fatalf("map %d: raster at %d workers differs from sequential", mi, workers)
			}
		}
		if !rastersEqual(seq, m.Raster(48, 48)) {
			t.Fatalf("map %d: default Raster differs from sequential", mi)
		}
	}
}

func TestRasterMatchesNaiveReference(t *testing.T) {
	for mi, m := range reconMaps(t) {
		if !rastersEqual(m.Raster(48, 48), m.RasterNaive(48, 48)) {
			t.Fatalf("map %d: indexed raster differs from naive reference", mi)
		}
	}
}

func TestClassifyPointMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for mi, m := range reconMaps(t) {
		for probe := 0; probe < 500; probe++ {
			p := geom.Point{X: rng.Float64()*60 - 5, Y: rng.Float64()*60 - 5}
			if got, want := m.ClassifyPoint(p), m.classifyPointNaive(p); got != want {
				t.Fatalf("map %d: ClassifyPoint(%v) = %d, naive = %d", mi, p, got, want)
			}
		}
	}
}

func TestWarmStartCorrectAtRowBoundaries(t *testing.T) {
	// Probe sequences that jump between row ends — the worst case for a
	// stale cursor — must classify exactly like cold queries.
	rng := rand.New(rand.NewSource(57))
	levels := levels682()
	bounds := geom.Rect(0, 0, 50, 50)
	reports := randomReports(rng, 80, levels)
	m := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
	for _, lr := range m.levels {
		if len(lr.sites) == 0 {
			continue
		}
		hint := -1
		for step := 0; step < 200; step++ {
			// Alternate far left / far right probes (x near 0 then near 50)
			// so each query's hint points across the whole field.
			x := rng.Float64() * 2
			if step%2 == 1 {
				x = 48 + rng.Float64()*2
			}
			p := geom.Point{X: x, Y: rng.Float64() * 50}
			warm := lr.levelInnerHint(p, &hint)
			cold := lr.levelInner(p)
			if warm != cold {
				t.Fatalf("warm-start membership %v != cold %v at %v", warm, cold, p)
			}
		}
	}
}

func TestPatchBBoxRejectMatchesFullTest(t *testing.T) {
	// Every patch's bbox-gated test must agree with the raw triangle test,
	// including on boundary-band points.
	rng := rand.New(rand.NewSource(58))
	levels := levels682()
	bounds := geom.Rect(0, 0, 50, 50)
	reports := randomReports(rng, 150, levels)
	m := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
	patches := 0
	for _, lr := range m.levels {
		for i := range lr.patches {
			pa := &lr.patches[i]
			patches++
			for probe := 0; probe < 50; probe++ {
				p := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
				if pa.contains(p) != pa.tri.Contains(p) {
					t.Fatalf("bbox-gated patch test differs at %v", p)
				}
			}
			// Vertices and edge midpoints sit on the Eps boundary band.
			for _, v := range pa.tri {
				if !pa.contains(v) {
					t.Fatalf("patch rejects its own vertex %v", v)
				}
			}
			for _, e := range pa.tri.Edges() {
				if !pa.contains(e.Mid()) {
					t.Fatalf("patch rejects edge midpoint %v", e.Mid())
				}
			}
		}
	}
	if patches == 0 {
		t.Fatal("no regulation patches generated; test is vacuous")
	}
}

// benchReports fabricates k reports on the lowest isolevel plus k/4 on the
// next, matching the skew of real rounds (seeded, deterministic).
func benchReports(k int) ([]core.Report, field.Levels) {
	levels := field.Levels{Low: 6, High: 12, Step: 2}
	rng := rand.New(rand.NewSource(int64(k) * 7))
	var reports []core.Report
	for i := 0; i < k; i++ {
		theta := rng.Float64() * 2 * math.Pi
		reports = append(reports, core.Report{
			Level:      6,
			LevelIndex: 0,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	for i := 0; i < k/4; i++ {
		theta := rng.Float64() * 2 * math.Pi
		reports = append(reports, core.Report{
			Level:      8,
			LevelIndex: 1,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	return reports, levels
}

func BenchmarkReconstruct(b *testing.B) {
	bounds := geom.Rect(0, 0, 50, 50)
	for _, k := range []int{32, 128, 512, 2048} {
		reports, levels := benchReports(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
				if m == nil {
					b.Fatal("nil map")
				}
			}
		})
	}
}

func BenchmarkMapRaster(b *testing.B) {
	bounds := geom.Rect(0, 0, 50, 50)
	for _, k := range []int{32, 128, 512, 2048} {
		reports, levels := benchReports(k)
		m := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ra := m.Raster(100, 100); ra.Rows != 100 {
					b.Fatal("bad raster")
				}
			}
		})
	}
}

func BenchmarkMapRasterNaive(b *testing.B) {
	bounds := geom.Rect(0, 0, 50, 50)
	for _, k := range []int{32, 128, 512} {
		reports, levels := benchReports(k)
		m := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ra := m.RasterNaive(100, 100); ra.Rows != 100 {
					b.Fatal("bad raster")
				}
			}
		})
	}
}

// TestRasterWorkersDegenerateDims pins the edge cases of the worker-pool
// sweep: negative or zero dimensions yield an empty raster of clamped
// shape, worker counts at or below zero and far above the row count all
// degrade to the sequential result byte for byte.
func TestRasterWorkersDegenerateDims(t *testing.T) {
	maps := reconMaps(t)
	dims := [][2]int{{0, 10}, {10, 0}, {0, 0}, {-3, 7}, {7, -3}, {-1, -1}, {1, 1}, {3, 48}, {48, 3}}
	workers := []int{-5, -1, 0, 1, 2, 49, 1000}
	for mi, m := range maps {
		for _, d := range dims {
			rows, cols := d[0], d[1]
			wantRows, wantCols := rows, cols
			if wantRows < 0 {
				wantRows = 0
			}
			if wantCols < 0 {
				wantCols = 0
			}
			seq := m.RasterWorkers(rows, cols, 1)
			if seq.Rows != wantRows || seq.Cols != wantCols {
				t.Fatalf("map %d dims %v: got %dx%d, want clamp to %dx%d",
					mi, d, seq.Rows, seq.Cols, wantRows, wantCols)
			}
			if len(seq.Cells) != wantRows {
				t.Fatalf("map %d dims %v: %d cell rows, want %d", mi, d, len(seq.Cells), wantRows)
			}
			for _, w := range workers {
				got := m.RasterWorkers(rows, cols, w)
				if !rastersEqual(seq, got) {
					t.Fatalf("map %d dims %v workers %d: differs from sequential", mi, d, w)
				}
			}
			if wantRows > 0 && wantCols > 0 {
				if !rastersEqual(seq, m.RasterNaive(rows, cols)) {
					t.Fatalf("map %d dims %v: differs from naive reference", mi, d)
				}
			}
		}
	}
}
