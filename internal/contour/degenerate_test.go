package contour

import (
	"math/rand"
	"testing"

	"isomap/internal/core"
	"isomap/internal/faults"
	"isomap/internal/field"
	"isomap/internal/geom"
)

// checkMapSane exercises every sink-side consumer of a reconstructed map
// — rasterization, point classification, boundary sampling — and checks
// the outputs stay in range. Its real assertion is implicit: none of it
// may panic, however degenerate the input reports were.
func checkMapSane(t *testing.T, m *Map, levels field.Levels) {
	t.Helper()
	ra := m.Raster(40, 40)
	for _, row := range ra.Cells {
		for _, v := range row {
			if v < 0 || v > levels.Count() {
				t.Fatalf("raster class %d out of range [0, %d]", v, levels.Count())
			}
		}
	}
	for i := 0; i < levels.Count(); i++ {
		for _, p := range m.BoundaryPoints(i, 0.5) {
			if p.X < -1 || p.X > 51 || p.Y < -1 || p.Y > 51 {
				t.Fatalf("boundary point %v far outside bounds", p)
			}
		}
	}
	m.ClassifyPoint(geom.Point{X: 25, Y: 25})
	m.ClassifyPoint(geom.Point{X: 0, Y: 0})
}

// TestDegenerateReportCounts drives the reconstruction with 0, 1 and 2
// surviving reports per level — what a heavily faulted round delivers —
// and expects an empty or partial map, never a panic.
func TestDegenerateReportCounts(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	levels := levels682()
	for k := 0; k <= 2; k++ {
		var reports []core.Report
		for li := 0; li < levels.Count(); li++ {
			reports = append(reports, circleReports(geom.Point{X: 25, Y: 25}, 15-3*float64(li), k, li, levels.Values()[li])...)
		}
		m := Reconstruct(reports, levels, bounds, 5, DefaultOptions())
		checkMapSane(t, m, levels)
		if k == 0 && len(m.BoundaryPoints(0, 0.5)) != 0 {
			t.Error("0 reports produced a non-empty boundary")
		}
	}
	// Partial survival: a full ring on the first level, a single report
	// on the second, nothing above. The map must still carve out the
	// first level's region.
	reports := circleReports(geom.Point{X: 25, Y: 25}, 15, 24, 0, 6)
	reports = append(reports, core.Report{
		Level: 8, LevelIndex: 1, Pos: geom.Point{X: 25, Y: 25}, Grad: geom.Vec{X: 1}, Source: -1,
	})
	m := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
	checkMapSane(t, m, levels)
	if m.ClassifyPoint(geom.Point{X: 25, Y: 40}) < 1 {
		t.Error("partial map lost the fully-reported first level")
	}
}

// TestDegenerateCollinearAndCoincidentReports feeds the reconstruction
// geometry its worst cases: all report sites on one line (degenerate
// Voronoi), and exact duplicates of a single site.
func TestDegenerateCollinearAndCoincidentReports(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	levels := levels682()
	var collinear []core.Report
	for i := 0; i < 8; i++ {
		collinear = append(collinear, core.Report{
			Level: 6, LevelIndex: 0,
			Pos:    geom.Point{X: 5 + 5*float64(i), Y: 20},
			Grad:   geom.Vec{Y: 1},
			Source: -1,
		})
	}
	checkMapSane(t, Reconstruct(collinear, levels, bounds, 5, DefaultOptions()), levels)

	coincident := make([]core.Report, 6)
	for i := range coincident {
		coincident[i] = core.Report{
			Level: 6, LevelIndex: 0,
			Pos:    geom.Point{X: 25, Y: 25},
			Grad:   geom.Vec{X: 1},
			Source: -1,
		}
	}
	checkMapSane(t, Reconstruct(coincident, levels, bounds, 5, DefaultOptions()), levels)
}

// TestReconstructSurvivesSeededFaultPlans is the property test of the
// graceful-degradation satellite: for many seeded fault plans, subsample
// the delivered reports (channel loss), corrupt and duplicate the rest
// (sink mangling), and reconstruct — whatever survives, the sink must
// produce a bounded map without panicking.
func TestReconstructSurvivesSeededFaultPlans(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	levels := levels682()
	var full []core.Report
	for li := 0; li < levels.Count(); li++ {
		full = append(full, circleReports(geom.Point{X: 25, Y: 25}, 18-4*float64(li), 16, li, levels.Values()[li])...)
	}
	for seed := int64(0); seed < 50; seed++ {
		plan, err := faults.New(faults.Config{
			Seed: seed, CorruptRate: 0.3, DuplicateRate: 0.2,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Seeded subsampling stands in for channel loss: keep each report
		// with probability shrinking as the seed grows, down to nothing.
		rng := rand.New(rand.NewSource(seed))
		keepProb := 1 - float64(seed)/49
		var survived []core.Report
		for _, r := range full {
			if rng.Float64() < keepProb {
				survived = append(survived, r)
			}
		}
		delivered := plan.MangleSinkReports(survived, bounds)
		m := Reconstruct(delivered, levels, bounds, 5, DefaultOptions())
		checkMapSane(t, m, levels)
	}
}
