package contour

import (
	"math/rand"
	"reflect"
	"testing"

	"isomap/internal/geom"
)

// TestIncrementalWorkersByteIdentical is the parallel-ingest oracle: the
// same churn stream driven through engines at worker widths {1, 2, 8}
// must produce byte-identical maps, rasters (full and dirty-rect
// refreshed), arranged orders and work stats at every round. Width 1 is
// the sequential reference; the others exercise the level pool, the
// parallel horizon checks and the parallel raster refresh.
func TestIncrementalWorkersByteIdentical(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 30, 30)
	const rows, cols = 52, 47
	widths := []int{1, 2, 8}
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		engines := make([]*Incremental, len(widths))
		for i, w := range widths {
			opts := DefaultOptions()
			opts.Workers = w
			engines[i] = NewIncremental(levels, bounds, opts)
		}
		// k large enough that the horizon-check span threshold engages.
		reports := churnSeedReports(rng, 300+rng.Intn(100), levels, bounds)
		for round := 0; round < 6; round++ {
			sink := 1 + rng.Float64()*8
			ref := engines[0]
			ref.Update(reports, sink)
			refRa := ref.Raster(rows, cols)
			for i := 1; i < len(engines); i++ {
				m := engines[i].Update(reports, sink)
				if err := Equivalent(ref.Map(), m, 0, 0); err != nil {
					t.Fatalf("seed %d round %d workers=%d: map diverges: %v", seed, round, widths[i], err)
				}
				if !reflect.DeepEqual(ref.Arranged(), engines[i].Arranged()) {
					t.Fatalf("seed %d round %d workers=%d: arranged order diverges", seed, round, widths[i])
				}
				if err := EquivalentRaster(refRa, engines[i].Raster(rows, cols)); err != nil {
					t.Fatalf("seed %d round %d workers=%d: raster diverges: %v", seed, round, widths[i], err)
				}
				if ref.Stats() != engines[i].Stats() {
					t.Fatalf("seed %d round %d workers=%d: stats diverge:\n  seq %+v\n  par %+v",
						seed, round, widths[i], ref.Stats(), engines[i].Stats())
				}
			}
			checkOracle(t, engines[len(engines)-1], sink, rows, cols)
			reports = churnReports(rng, reports, levels, bounds)
		}
	}
}

// TestIncrementalWorkersDegenerate drives the parallel engine through the
// degenerate shapes (empty rounds, shrink-to-empty, resolution switches)
// at width 8 against the sequential oracle.
func TestIncrementalWorkersDegenerate(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 20, 20)
	rng := rand.New(rand.NewSource(23))
	opts := DefaultOptions()
	opts.Workers = 8
	inc := NewIncremental(levels, bounds, opts)
	reports := churnSeedReports(rng, 50, levels, bounds)
	for _, n := range []int{50, 9, 0, 0, 34, 1} {
		if n > len(reports) {
			reports = churnSeedReports(rng, n, levels, bounds)
		}
		sink := rng.Float64() * 9
		inc.Update(reports[:n], sink)
		checkOracle(t, inc, sink, 36, 36)
		for _, res := range [][2]int{{24, 24}, {0, 10}, {-3, 5}} {
			if err := EquivalentRaster(inc.Raster(res[0], res[1]), inc.Map().RasterWorkers(res[0], res[1], 1)); err != nil {
				t.Fatalf("n=%d res %v: %v", n, res, err)
			}
		}
	}
}
