package contour

import (
	"isomap/internal/field"
	"isomap/internal/geom"
)

// This file keeps the pre-index reference implementation of the raster
// path: sequential scanline, linear nearest-site scans, no patch bounding
// boxes. It is the oracle the indexed path is property-tested against and
// the baseline cmd/benchreport measures speedups from. It must stay
// byte-identical to Raster.

// RasterNaive rasterizes the map with the reference path. Exposed for
// equivalence tests and benchmarks; production callers use Raster.
func (m *Map) RasterNaive(rows, cols int) *field.Raster {
	x0, y0, x1, y1 := m.Bounds.BoundingBox()
	ra := field.NewRaster(rows, cols)
	for r := 0; r < rows; r++ {
		y := y0 + (y1-y0)*(float64(r)+0.5)/float64(rows)
		for c := 0; c < cols; c++ {
			x := x0 + (x1-x0)*(float64(c)+0.5)/float64(cols)
			ra.Cells[r][c] = m.classifyPointNaive(geom.Point{X: x, Y: y})
		}
	}
	return ra
}

// classifyPointNaive is ClassifyPoint over linear scans.
func (m *Map) classifyPointNaive(p geom.Point) int {
	idx := 0
	for _, lr := range m.levels {
		if !lr.levelInnerNaive(p) {
			break
		}
		idx++
	}
	return idx
}

// levelInnerNaive is levelInner with a linear nearest-site scan and
// unconditional point-in-triangle patch tests.
func (lr *levelRecon) levelInnerNaive(p geom.Point) bool {
	if len(lr.sites) == 0 {
		return lr.fallbackInner
	}
	best, bestDist := 0, p.Dist2To(lr.sites[0])
	for i := 1; i < len(lr.sites); i++ {
		if d := p.Dist2To(lr.sites[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	inner := p.Sub(lr.sites[best]).Dot(lr.grads[best]) <= 0
	for _, pa := range lr.patches {
		if pa.tri.Contains(p) {
			inner = !inner
		}
	}
	return inner
}
