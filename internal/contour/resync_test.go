package contour

import (
	"math/rand"
	"testing"

	"isomap/internal/geom"
)

// TestResyncReproducesEngine is the recovery lemma the serving layer
// leans on: at any point of a churn run, Resync over the live engine's
// Arranged() order rebuilds a fresh engine whose map and raster are
// byte-identical to the continuous engine's — so a quarantined
// deployment (or a restart from a checkpoint) resumes exactly where the
// uncorrupted engine stood.
func TestResyncReproducesEngine(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 30, 30)
	const rows, cols = 40, 40
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inc := NewIncremental(levels, bounds, DefaultOptions())
		reports := churnSeedReports(rng, 35+rng.Intn(40), levels, bounds)
		for round := 0; round < 5; round++ {
			sink := 1 + rng.Float64()*8
			inc.Update(reports, sink)

			re, m := Resync(levels, bounds, DefaultOptions(), inc.Arranged(), sink)
			if err := Equivalent(inc.Map(), m, rows, cols); err != nil {
				t.Fatalf("seed %d round %d: resynced map diverges: %v", seed, round, err)
			}
			if err := EquivalentRaster(inc.Raster(rows, cols), re.Raster(rows, cols)); err != nil {
				t.Fatalf("seed %d round %d: resynced raster diverges: %v", seed, round, err)
			}

			// The resynced engine must also *continue* identically: one
			// more churn round through both engines stays byte-identical.
			next := churnReports(rng, reports, levels, bounds)
			nextSink := 1 + rng.Float64()*8
			inc.Update(next, nextSink)
			re.Update(next, nextSink)
			if err := Equivalent(inc.Map(), re.Map(), rows, cols); err != nil {
				t.Fatalf("seed %d round %d: post-resync churn diverges: %v", seed, round, err)
			}
			if err := EquivalentRaster(inc.Raster(rows, cols), re.Raster(rows, cols)); err != nil {
				t.Fatalf("seed %d round %d: post-resync raster diverges: %v", seed, round, err)
			}
			reports = churnReports(rng, next, levels, bounds)
		}
	}
}
