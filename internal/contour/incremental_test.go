package contour

import (
	"math"
	"math/rand"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
)

func testLevels() field.Levels { return field.Levels{Low: 2, High: 8, Step: 2} }

// randomReports synthesizes k reports spread over the isolevels, with unit
// gradients — the shape core.Run produces.
func churnSeedReports(rng *rand.Rand, k int, levels field.Levels, bounds geom.Polygon) []core.Report {
	vals := levels.Values()
	x0, y0, x1, y1 := bounds.BoundingBox()
	out := make([]core.Report, 0, k)
	for i := 0; i < k; i++ {
		li := rng.Intn(len(vals))
		ang := rng.Float64() * 2 * math.Pi
		out = append(out, core.Report{
			Level:      vals[li],
			LevelIndex: li,
			Pos: geom.Point{
				X: x0 + rng.Float64()*(x1-x0),
				Y: y0 + rng.Float64()*(y1-y0),
			},
			Grad:   geom.Vec{X: math.Cos(ang), Y: math.Sin(ang)},
			Source: network.NodeID(1 + i),
		})
	}
	return out
}

// churnReports perturbs one round of reports the way a slowly moving field
// does: most reports unchanged, a few moved or re-aimed, a few dropped, a
// few fresh ones appended.
func churnReports(rng *rand.Rand, reports []core.Report, levels field.Levels, bounds geom.Polygon) []core.Report {
	out := append([]core.Report(nil), reports...)
	for i := range out {
		if rng.Float64() < 0.05 {
			out[i].Pos.X += rng.NormFloat64() * 0.4
			out[i].Pos.Y += rng.NormFloat64() * 0.4
		}
		if rng.Float64() < 0.03 {
			ang := rng.Float64() * 2 * math.Pi
			out[i].Grad = geom.Vec{X: math.Cos(ang), Y: math.Sin(ang)}
		}
	}
	for len(out) > 0 && rng.Float64() < 0.3 {
		di := rng.Intn(len(out))
		out = append(out[:di], out[di+1:]...)
	}
	add := churnSeedReports(rng, rng.Intn(3), levels, bounds)
	for i := range add {
		add[i].Source = network.NodeID(10000 + rng.Intn(1<<20))
	}
	out = append(out, add...)
	// Reorder arrivals: routing delivers in no particular order, and the
	// engine's slot arrangement must absorb that.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// checkOracle verifies the engine's map and raster against a from-scratch
// Reconstruct over the engine's own arranged report order.
func checkOracle(t *testing.T, inc *Incremental, sink float64, rows, cols int) {
	t.Helper()
	full := Reconstruct(inc.Arranged(), inc.levels, inc.bounds, sink, inc.opts)
	if err := Equivalent(inc.Map(), full, rows, cols); err != nil {
		t.Fatalf("round %d: incremental map diverges from oracle: %v", inc.Version(), err)
	}
	if err := EquivalentRaster(inc.Raster(rows, cols), full.RasterWorkers(rows, cols, 1)); err != nil {
		t.Fatalf("round %d: incremental raster diverges from oracle: %v", inc.Version(), err)
	}
}

// TestIncrementalOracleChurn is the tentpole property test: across seeded
// multi-round churn, the incremental engine stays byte-identical to the
// full rebuild — map state, classification raster, boundary polylines and
// point classification alike.
func TestIncrementalOracleChurn(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 30, 30)
	const rows, cols = 48, 48
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inc := NewIncremental(levels, bounds, DefaultOptions())
		reports := churnSeedReports(rng, 40+rng.Intn(60), levels, bounds)
		for round := 0; round < 7; round++ {
			sink := 1 + rng.Float64()*8
			m := inc.Update(reports, sink)
			checkOracle(t, inc, sink, rows, cols)
			full := Reconstruct(inc.Arranged(), levels, bounds, sink, DefaultOptions())
			for probe := 0; probe < 25; probe++ {
				p := geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
				if got, want := m.ClassifyPoint(p), full.ClassifyPoint(p); got != want {
					t.Fatalf("seed %d round %d: ClassifyPoint(%v) = %d, oracle %d", seed, round, p, got, want)
				}
			}
			for li := range levels.Values() {
				a, b := m.BoundarySegments(li), full.BoundarySegments(li)
				if len(a) != len(b) {
					t.Fatalf("seed %d round %d: level %d boundary count %d vs %d", seed, round, li, len(a), len(b))
				}
				for si := range a {
					if a[si] != b[si] {
						t.Fatalf("seed %d round %d: level %d segment %d diverges", seed, round, li, si)
					}
				}
			}
			reports = churnReports(rng, reports, levels, bounds)
		}
		st := inc.Stats()
		if st.CellsReused == 0 {
			t.Fatalf("seed %d: churn rounds reused no cells: %+v", seed, st)
		}
	}
}

// TestIncrementalEmptyDiff: re-sending the identical round must reuse every
// level wholesale, recompute nothing, and serve the cached raster.
func TestIncrementalEmptyDiff(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 20, 20)
	rng := rand.New(rand.NewSource(7))
	inc := NewIncremental(levels, bounds, DefaultOptions())
	reports := churnSeedReports(rng, 50, levels, bounds)
	inc.Update(reports, 5)
	ra1 := inc.Raster(32, 32)
	before := inc.Stats()

	shuffled := append([]core.Report(nil), reports...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	inc.Update(shuffled, 5)
	checkOracle(t, inc, 5, 32, 32)
	after := inc.Stats()
	if got := after.LevelsReused - before.LevelsReused; got != levels.Count() {
		t.Fatalf("identical round reused %d levels, want all %d", got, levels.Count())
	}
	if after.CellsRecomputed != before.CellsRecomputed {
		t.Fatalf("identical round recomputed %d cells", after.CellsRecomputed-before.CellsRecomputed)
	}
	ra2 := inc.Raster(32, 32)
	if err := EquivalentRaster(ra1, ra2); err != nil {
		t.Fatalf("identical round raster changed: %v", err)
	}
	if after.RasterFullRebuilds != before.RasterFullRebuilds || after.RasterCellsReclassified != before.RasterCellsReclassified {
		t.Fatalf("identical round redid raster work: %+v -> %+v", before, after)
	}
}

// TestIncrementalAllChanged: when every report moves, the engine must fall
// back to (the equivalent of) a full rebuild and still match the oracle.
func TestIncrementalAllChanged(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 20, 20)
	rng := rand.New(rand.NewSource(11))
	inc := NewIncremental(levels, bounds, DefaultOptions())
	inc.Update(churnSeedReports(rng, 60, levels, bounds), 5)
	inc.Raster(40, 40)
	inc.Update(churnSeedReports(rng, 60, levels, bounds), 5)
	checkOracle(t, inc, 5, 40, 40)
}

// TestIncrementalShrinkAndEmpty: report counts shrinking to zero and
// growing back must match the oracle at every step (empty levels exercise
// the fallbackInner path).
func TestIncrementalShrinkAndEmpty(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 20, 20)
	rng := rand.New(rand.NewSource(13))
	inc := NewIncremental(levels, bounds, DefaultOptions())
	reports := churnSeedReports(rng, 50, levels, bounds)
	for _, n := range []int{50, 17, 4, 0, 0, 23} {
		if n > len(reports) {
			reports = churnSeedReports(rng, n, levels, bounds)
		}
		sink := rng.Float64() * 9
		inc.Update(reports[:n], sink)
		checkOracle(t, inc, sink, 36, 36)
	}
}

// TestIncrementalRasterResolutions: switching resolutions mid-stream must
// not cross-contaminate caches.
func TestIncrementalRasterResolutions(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 20, 20)
	rng := rand.New(rand.NewSource(17))
	inc := NewIncremental(levels, bounds, DefaultOptions())
	reports := churnSeedReports(rng, 45, levels, bounds)
	for round := 0; round < 4; round++ {
		inc.Update(reports, 5)
		for _, res := range [][2]int{{24, 24}, {31, 17}, {0, 10}, {-3, 5}} {
			ra := inc.Raster(res[0], res[1])
			want := inc.Map().RasterWorkers(res[0], res[1], 1)
			if err := EquivalentRaster(ra, want); err != nil {
				t.Fatalf("round %d res %v: %v", round, res, err)
			}
		}
		reports = churnReports(rng, reports, levels, bounds)
	}
}

// TestArrangeLevelSlots pins the slot-assignment rules: unchanged reports
// keep their slots, changed ones fill freed slots in arrival order, and
// the result is always a permutation of the input.
func TestArrangeLevelSlots(t *testing.T) {
	r := func(x float64) core.Report {
		return core.Report{Level: 2, Pos: geom.Point{X: x, Y: 1}}
	}
	prev := []core.Report{r(1), r(2), r(3), r(4)}

	kept := arrangeLevel(prev, []core.Report{r(4), r(2), r(1), r(3)})
	for i, want := range []float64{1, 2, 3, 4} {
		if kept[i].Pos.X != want {
			t.Fatalf("slot %d = %v, want x=%v", i, kept[i].Pos, want)
		}
	}

	// r(2) vanished, r(9) arrived: r(9) takes the freed slot 1.
	swapped := arrangeLevel(prev, []core.Report{r(3), r(9), r(1), r(4)})
	for i, want := range []float64{1, 9, 3, 4} {
		if swapped[i].Pos.X != want {
			t.Fatalf("swap slot %d = %v, want x=%v", i, swapped[i].Pos, want)
		}
	}

	// Shrink: surviving reports keep in-range slots; r(4)'s slot 3 is gone.
	shrunk := arrangeLevel(prev, []core.Report{r(4), r(1)})
	if shrunk[0].Pos.X != 1 || shrunk[1].Pos.X != 4 {
		t.Fatalf("shrink = %v", shrunk)
	}

	// Duplicates claim distinct previous slots FIFO.
	dupPrev := []core.Report{r(5), r(5), r(6)}
	dup := arrangeLevel(dupPrev, []core.Report{r(6), r(5), r(5)})
	if dup[0].Pos.X != 5 || dup[1].Pos.X != 5 || dup[2].Pos.X != 6 {
		t.Fatalf("dup = %v", dup)
	}
}

// TestIncrementalOutOfRangeLevels: reports with out-of-range level indices
// are dropped, matching Reconstruct.
func TestIncrementalOutOfRangeLevels(t *testing.T) {
	levels := testLevels()
	bounds := geom.Rect(0, 0, 20, 20)
	rng := rand.New(rand.NewSource(19))
	inc := NewIncremental(levels, bounds, DefaultOptions())
	reports := churnSeedReports(rng, 30, levels, bounds)
	reports = append(reports,
		core.Report{LevelIndex: -1, Pos: geom.Point{X: 5, Y: 5}},
		core.Report{LevelIndex: levels.Count(), Pos: geom.Point{X: 6, Y: 6}},
	)
	inc.Update(reports, 5)
	checkOracle(t, inc, 5, 30, 30)
	if got, want := len(inc.Arranged()), 30; got != want {
		t.Fatalf("arranged kept %d reports, want %d in-range", got, want)
	}
}
