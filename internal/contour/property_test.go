package contour

import (
	"math"
	"math/rand"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
)

// randomReports fabricates a plausible report set: positions in the field,
// unit gradients in random directions, levels spread over the scheme.
func randomReports(rng *rand.Rand, n int, levels field.Levels) []core.Report {
	values := levels.Values()
	reports := make([]core.Report, 0, n)
	for i := 0; i < n; i++ {
		idx := rng.Intn(len(values))
		theta := rng.Float64() * 2 * 3.14159265
		reports = append(reports, core.Report{
			Level:      values[idx],
			LevelIndex: idx,
			Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
			Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)},
			Source:     -1,
		})
	}
	return reports
}

func TestClassifyPointBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	levels := levels682()
	maxClass := levels.Count()
	bounds := geom.Rect(0, 0, 50, 50)
	for trial := 0; trial < 20; trial++ {
		reports := randomReports(rng, 1+rng.Intn(40), levels)
		m := Reconstruct(reports, levels, bounds, rng.Float64()*15, DefaultOptions())
		for probe := 0; probe < 50; probe++ {
			p := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
			c := m.ClassifyPoint(p)
			if c < 0 || c > maxClass {
				t.Fatalf("class %d outside [0, %d]", c, maxClass)
			}
		}
	}
}

func TestNestingMonotoneProperty(t *testing.T) {
	// The classification is, by construction, the length of the chain of
	// consecutive inner levels: verify against direct levelInner calls.
	rng := rand.New(rand.NewSource(33))
	levels := levels682()
	bounds := geom.Rect(0, 0, 50, 50)
	for trial := 0; trial < 20; trial++ {
		reports := randomReports(rng, 1+rng.Intn(40), levels)
		m := Reconstruct(reports, levels, bounds, rng.Float64()*15, DefaultOptions())
		for probe := 0; probe < 30; probe++ {
			p := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
			c := m.ClassifyPoint(p)
			chain := 0
			for _, lr := range m.levels {
				if !lr.levelInner(p) {
					break
				}
				chain++
			}
			if c != chain {
				t.Fatalf("ClassifyPoint %d != inner chain %d", c, chain)
			}
		}
	}
}

func TestRasterDeterministicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	levels := levels682()
	bounds := geom.Rect(0, 0, 50, 50)
	reports := randomReports(rng, 30, levels)
	m1 := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
	m2 := Reconstruct(reports, levels, bounds, 9, DefaultOptions())
	r1 := m1.Raster(40, 40)
	r2 := m2.Raster(40, 40)
	if field.Agreement(r1, r2) != 1 {
		t.Error("same inputs produced different rasters")
	}
}

func TestMoreReportsNeverCrashReconstruction(t *testing.T) {
	// Degenerate inputs: duplicate positions, zero-ish gradients, many
	// reports at one level.
	levels := levels682()
	bounds := geom.Rect(0, 0, 50, 50)
	reports := []core.Report{
		{LevelIndex: 0, Pos: geom.Point{X: 10, Y: 10}, Grad: geom.Vec{X: 1}},
		{LevelIndex: 0, Pos: geom.Point{X: 10, Y: 10}, Grad: geom.Vec{X: 1}}, // duplicate
		{LevelIndex: 0, Pos: geom.Point{X: 10, Y: 10.000001}, Grad: geom.Vec{Y: 1}},
		{LevelIndex: 1, Pos: geom.Point{X: 0, Y: 0}, Grad: geom.Vec{X: 1, Y: 1}},    // corner
		{LevelIndex: 2, Pos: geom.Point{X: 50, Y: 50}, Grad: geom.Vec{X: -1, Y: 0}}, // corner
	}
	m := Reconstruct(reports, levels, bounds, 7, DefaultOptions())
	_ = m.Raster(32, 32)
	_ = m.BoundarySegments(0)
	_ = m.BoundaryPoints(1, 0.5)
}
