package contour

import (
	"isomap/internal/geom"
)

// type2Segments computes the type-2 boundaries of one isolevel: the pieces
// of Voronoi cell borders that close the contour region where adjacent
// cells disagree — the inner part of one cell touches the outer part of
// its neighbor, or the field border (Sec. 3.4: "the sink then merges the
// inner parts in different Voronoi cells and complements the boundaries to
// separate contour regions from outer area").
//
// For each cell's inner polygon, every edge that does not lie on the
// type-1 chord is a candidate; it survives when the area just across it
// (in the neighboring cell, or outside the field) is not inner.
func (lr *levelRecon) type2Segments(bounds geom.Polygon) []geom.Segment {
	if len(lr.sites) == 0 {
		return nil
	}
	diagram := geom.VoronoiWithIndex(lr.sites, bounds, lr.nn)
	var out []geom.Segment
	for i := range diagram.Cells {
		cell := &diagram.Cells[i]
		if cell.Region == nil || !lr.hasChord[i] {
			continue
		}
		inner := cell.Region.ClipHalfPlane(geom.HalfPlane{
			Origin: lr.sites[i],
			Normal: lr.grads[i],
		})
		if inner == nil {
			continue
		}
		chordLine := geom.LineThrough(lr.chords[i].A, lr.chords[i].B)
		for _, e := range inner.Edges() {
			if onLine(e, chordLine) {
				continue // type-1 piece
			}
			mid := e.Mid()
			// Probe just beyond the edge, away from the cell's site.
			outward := mid.Sub(lr.sites[i]).Unit().Scale(1e-4)
			probe := mid.Add(outward)
			if !bounds.Contains(probe) {
				// Field border: the region is closed by the border itself;
				// the paper draws no boundary there.
				continue
			}
			if lr.levelInner(probe) {
				continue // the neighbor is inner too: no boundary here
			}
			out = append(out, e)
		}
	}
	return out
}

// onLine reports whether both endpoints of a segment lie (within
// tolerance) on the line.
func onLine(s geom.Segment, l geom.Line) bool {
	const tol = 1e-6
	return distToLine(s.A, l) <= tol && distToLine(s.B, l) <= tol
}

func distToLine(p geom.Point, l geom.Line) float64 {
	d := l.Dir.Unit()
	v := p.Sub(l.Origin)
	return v.Sub(d.Scale(v.Dot(d))).Norm()
}

// FullBoundarySegments returns the complete boundary of one isolevel's
// contour regions: the regulated type-1 chords plus the type-2 closure
// pieces along Voronoi cell borders.
func (m *Map) FullBoundarySegments(levelIndex int) []geom.Segment {
	if levelIndex < 0 || levelIndex >= len(m.levels) {
		return nil
	}
	segs := m.BoundarySegments(levelIndex)
	segs = append(segs, m.levels[levelIndex].type2Segments(m.Bounds)...)
	return segs
}
