package contour

import (
	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
)

// Resync builds a replacement Incremental engine from one round's reports
// by running a full from-scratch reconstruction: the first Update of a
// fresh engine takes the whole-rebuild path, so the returned map is
// byte-identical to Reconstruct(arranged(reports), ...) by construction,
// with none of the reused state a diverged or panicked predecessor may
// have corrupted.
//
// It is the recovery entry point of the serving layer: after an oracle
// divergence or an ingest panic the old engine cannot be trusted, but the
// round's reports can — quarantined deployments rebuild through Resync
// (from the incoming round, or from a checkpoint's retained arranged
// order) and resume incremental operation from the returned engine.
//
// Feeding a previous engine's Arranged() output reproduces that engine's
// current map exactly: arrangement buckets reports by level preserving
// arrival order, and Arranged() is already concatenated in level order,
// so the fresh engine adopts the identical slot assignment.
func Resync(levels field.Levels, bounds geom.Polygon, opts Options, reports []core.Report, sinkValue float64) (*Incremental, *Map) {
	inc := NewIncremental(levels, bounds, opts)
	m := inc.Update(reports, sinkValue)
	return inc, m
}
