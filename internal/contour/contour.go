// Package contour implements the sink-side contour-map generation of
// Iso-Map (Sec. 3.4): given the isoline reports <v, p, d> collected from
// the network, it reconstructs the contour regions level by level.
//
// For each isolevel the sink:
//
//  1. builds a Voronoi diagram of the reported isopositions,
//  2. draws in each cell the type-1 boundary — the chord through the
//     isoposition perpendicular to its gradient direction — splitting the
//     cell into an inner (up-gradient) and outer part,
//  3. merges the inner parts and closes them with type-2 boundaries along
//     the cell borders,
//  4. regulates the approximation with the paper's Rules 1 and 2: where
//     the chords of two adjacent cells meet their shared border at
//     different points, the jog is replaced by prolonging both chords to
//     their intersection, removing pinnacles and filling concavities, and
//  5. nests levels recursively: a region of a higher isolevel is clipped
//     to the region of every lower one.
package contour

import (
	"math"
	"runtime"
	"sync"
	"time"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/trace"
)

// Options configures the reconstruction.
type Options struct {
	// Regulate applies regulation Rules 1-2 (Sec. 3.4). The paper's
	// algorithm always regulates; disabling is exposed for the ablation
	// benchmark.
	Regulate bool
	// Trace, when non-nil, receives per-stage wall-clock timings
	// (KindSinkStage events) for the Voronoi, chord, regulation and
	// raster stages. Nil keeps the reconstruction byte-identical to an
	// untraced run.
	Trace *trace.Recorder
	// Workers bounds the Incremental engine's worker pools: independent
	// isolevels of an Update, the per-slot cell-reuse horizon checks, and
	// the dirty-row raster refresh all fan out over at most Workers
	// goroutines. Values below 1 select GOMAXPROCS. Output is
	// byte-identical at any width (the parallel property tests pin it);
	// a non-nil Trace forces sequential execution so stage events keep
	// their deterministic order. Reconstruct ignores Workers — its raster
	// parallelism is RasterWorkers' explicit argument.
	Workers int
}

// DefaultOptions returns the paper's configuration (regulation on).
func DefaultOptions() Options { return Options{Regulate: true} }

// patch is one regulation adjustment: membership flips for points inside
// the triangle (the pinnacle removed by Rule 1 or the concavity filled by
// Rule 2). The bounding box (padded by Eps to cover Contains' boundary
// band) lets the hot membership path reject most probes without the full
// point-in-triangle test.
type patch struct {
	tri            geom.Polygon
	x0, y0, x1, y1 float64
}

// newPatch precomputes the padded bounding box of a regulation triangle.
func newPatch(tri geom.Polygon) patch {
	x0, y0, x1, y1 := tri.BoundingBox()
	return patch{
		tri: tri,
		x0:  x0 - geom.Eps, y0: y0 - geom.Eps,
		x1: x1 + geom.Eps, y1: y1 + geom.Eps,
	}
}

// contains reports whether p flips membership: a bbox reject followed by
// the exact triangle test. Equivalent to pa.tri.Contains(p) because any
// point within Eps of the triangle boundary lies inside the padded box.
func (pa *patch) contains(p geom.Point) bool {
	if p.X < pa.x0 || p.X > pa.x1 || p.Y < pa.y0 || p.Y > pa.y1 {
		return false
	}
	return pa.tri.Contains(p)
}

// levelRecon holds the reconstruction state of one isolevel.
type levelRecon struct {
	level float64
	index int
	// sites[i] / grads[i] come from the i-th report of this level.
	sites []geom.Point
	grads []geom.Vec
	// chords[i] is the (possibly regulated) type-1 boundary in cell i;
	// hasChord[i] marks cells where the chord degenerated.
	chords   []geom.Segment
	hasChord []bool
	// baseChords[i] is the pre-regulation chord of cell i. regulate edits
	// chords in place in an order-dependent sweep, so the incremental
	// engine re-runs it from these retained bases instead of trying to
	// patch regulated chords.
	baseChords []geom.Segment
	patches    []patch
	// diagram is the level's bounded Voronoi diagram, retained so the
	// incremental engine can diff site sets and reuse unchanged cells.
	diagram *geom.VoronoiDiagram
	// nn answers nearest-site queries for this level; it is shared by
	// the Voronoi construction, membership tests and the raster sweep.
	nn *geom.NNIndex
	// fallbackInner decides membership when the level received no reports
	// at all: true means the whole field is above the level.
	fallbackInner bool
}

// Map is a reconstructed contour map.
type Map struct {
	// Levels is the isolevel scheme of the query.
	Levels field.Levels
	// Bounds is the field rectangle.
	Bounds geom.Polygon
	levels []*levelRecon
	// tr carries Options.Trace into the raster stage.
	tr *trace.Recorder
}

// recordStage emits one sink-stage timing event; level is the isolevel
// index or -1 for whole-map stages.
func recordStage(tr *trace.Recorder, stage trace.Stage, level int, start time.Time) {
	if tr == nil {
		return
	}
	tr.Record(trace.Event{Kind: trace.KindSinkStage, Node: -1, Peer: -1,
		Seq: int64(level), Arg: int32(stage), DurNs: time.Since(start).Nanoseconds()})
}

// Reconstruct builds the contour map from the sink's received reports.
// sinkValue — the attribute value sensed at the sink itself — settles the
// levels for which no isoline node reported: such a level either covers the
// whole field or none of it, and the sink's own reading discriminates.
func Reconstruct(reports []core.Report, levels field.Levels, bounds geom.Polygon, sinkValue float64, opts Options) *Map {
	bounds = bounds.EnsureCCW()
	m := &Map{Levels: levels, Bounds: bounds, tr: opts.Trace}
	values := levels.Values()
	byLevel := make([][]core.Report, len(values))
	for _, r := range reports {
		if r.LevelIndex >= 0 && r.LevelIndex < len(values) {
			byLevel[r.LevelIndex] = append(byLevel[r.LevelIndex], r)
		}
	}
	for i, lv := range values {
		lr := &levelRecon{level: lv, index: i, fallbackInner: sinkValue >= lv}
		for _, r := range byLevel[i] {
			lr.sites = append(lr.sites, r.Pos)
			lr.grads = append(lr.grads, r.Grad)
		}
		lr.build(bounds, opts)
		m.levels = append(m.levels, lr)
	}
	return m
}

// build computes the Voronoi diagram, chords and regulation patches.
func (lr *levelRecon) build(bounds geom.Polygon, opts Options) {
	if len(lr.sites) == 0 {
		return
	}
	start := time.Now()
	lr.nn = geom.NewNNIndex(lr.sites, bounds)
	lr.diagram = geom.VoronoiWithIndex(lr.sites, bounds, lr.nn)
	recordStage(opts.Trace, trace.StageVoronoi, lr.index, start)
	start = time.Now()
	lr.baseChords = make([]geom.Segment, len(lr.sites))
	lr.hasChord = make([]bool, len(lr.sites))
	for i := range lr.diagram.Cells {
		cell := &lr.diagram.Cells[i]
		if cell.Region == nil {
			continue
		}
		chord, ok := chordInCell(cell.Region, lr.sites[i], lr.grads[i])
		lr.baseChords[i] = chord
		lr.hasChord[i] = ok
	}
	lr.chords = append([]geom.Segment(nil), lr.baseChords...)
	recordStage(opts.Trace, trace.StageChords, lr.index, start)
	if opts.Regulate {
		start = time.Now()
		lr.regulate(lr.diagram)
		recordStage(opts.Trace, trace.StageRegulate, lr.index, start)
	}
}

// chordInCell clips the type-1 boundary line (through site, perpendicular
// to grad) to the convex cell, returning the chord segment.
func chordInCell(cell geom.Polygon, site geom.Point, grad geom.Vec) (geom.Segment, bool) {
	line := geom.PerpendicularAt(site, grad)
	var pts []geom.Point
	for _, e := range cell.Edges() {
		p, ok := geom.IntersectSegmentLine(e, line)
		if !ok {
			continue
		}
		dup := false
		for _, q := range pts {
			if q.NearlyEqual(p) {
				dup = true
				break
			}
		}
		if !dup {
			pts = append(pts, p)
		}
	}
	if len(pts) < 2 {
		return geom.Segment{}, false
	}
	// A convex cell yields exactly two crossing points; with numerical
	// grazing at vertices keep the farthest pair.
	best := geom.Segment{A: pts[0], B: pts[1]}
	bestLen := best.Length()
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			s := geom.Segment{A: pts[i], B: pts[j]}
			if l := s.Length(); l > bestLen {
				best, bestLen = s, l
			}
		}
	}
	if bestLen <= geom.Eps {
		return geom.Segment{}, false
	}
	return best, true
}

// regulate applies Rules 1-2 across every shared Voronoi edge: where the
// chords of adjacent cells cross the shared border at distinct points a_i
// and a_j, both chords are prolonged to their intersection q, provided q
// falls inside the union of the two cells and the chords are not close to
// perpendicular (the internal-angle window (90, 270) degrees of the two
// rules). The skipped jog triangle (a_i, a_j, q) flips membership:
// pinnacles (Rule 1) are cut, concavities (Rule 2) are filled.
func (lr *levelRecon) regulate(diagram *geom.VoronoiDiagram) {
	for i := range diagram.Cells {
		ci := &diagram.Cells[i]
		if ci.Region == nil || !lr.hasChord[i] {
			continue
		}
		for k, j := range ci.Neighbors {
			if j <= i || !lr.hasChord[j] {
				continue
			}
			cj := &diagram.Cells[j]
			if cj.Region == nil {
				continue
			}
			shared := ci.SharedEdges[k]
			ai, okI := geom.IntersectSegmentLine(shared, lineOf(lr.chords[i]))
			aj, okJ := geom.IntersectSegmentLine(shared, lineOf(lr.chords[j]))
			if !okI || !okJ || ai.NearlyEqual(aj) {
				continue
			}
			// Internal-angle window: the rules apply between 90 and 270
			// degrees, i.e. the chords deviate by less than 90 degrees.
			if lr.chords[i].Dir().AngleBetween(lr.chords[j].Dir()) > math.Pi/2 {
				continue
			}
			q, ok := geom.IntersectLines(lineOf(lr.chords[i]), lineOf(lr.chords[j]))
			if !ok {
				continue
			}
			if !ci.Region.Contains(q) && !cj.Region.Contains(q) {
				continue
			}
			tri := geom.Polygon{ai, aj, q}
			if tri.Area() <= geom.Eps {
				continue
			}
			lr.patches = append(lr.patches, newPatch(tri))
			// Re-anchor the chord endpoints nearest the shared edge at q so
			// the extracted boundary is continuous across the two cells.
			lr.chords[i] = moveEndpointToward(lr.chords[i], ai, q)
			lr.chords[j] = moveEndpointToward(lr.chords[j], aj, q)
		}
	}
}

func lineOf(s geom.Segment) geom.Line { return geom.LineThrough(s.A, s.B) }

// moveEndpointToward replaces the endpoint of s closest to anchor with q.
func moveEndpointToward(s geom.Segment, anchor, q geom.Point) geom.Segment {
	if s.A.DistTo(anchor) <= s.B.DistTo(anchor) {
		return geom.Segment{A: q, B: s.B}
	}
	return geom.Segment{A: s.A, B: q}
}

// levelInner reports whether p belongs to the contour region of this level
// in isolation (before nesting).
func (lr *levelRecon) levelInner(p geom.Point) bool {
	return lr.levelInnerHint(p, nil)
}

// levelInnerHint is levelInner with an optional warm-start cursor: *hint
// holds the nearest site of the caller's previous (spatially adjacent)
// probe and is updated in place. The answer is hint-independent — the
// cursor only seeds the index's search radius — so warm and cold queries
// agree exactly.
func (lr *levelRecon) levelInnerHint(p geom.Point, hint *int) bool {
	if len(lr.sites) == 0 {
		return lr.fallbackInner
	}
	// Nearest site = Voronoi membership.
	var best int
	if hint != nil {
		best = lr.nn.NearestWarm(p, *hint)
		*hint = best
	} else {
		best = lr.nn.Nearest(p)
	}
	inner := p.Sub(lr.sites[best]).Dot(lr.grads[best]) <= 0
	for i := range lr.patches {
		if lr.patches[i].contains(p) {
			inner = !inner
		}
	}
	return inner
}

// ClassifyPoint returns the contour-region index of p in the reconstructed
// map: the number of consecutive isolevels (from the lowest) whose region
// contains p. The consecutiveness enforces the paper's recursive nesting
// rule.
func (m *Map) ClassifyPoint(p geom.Point) int {
	idx := 0
	for _, lr := range m.levels {
		if !lr.levelInner(p) {
			break
		}
		idx++
	}
	return idx
}

// Raster classifies the cell centers of a rows x cols grid over the field
// bounds, producing the estimated contour map raster compared against the
// ground truth for the mapping-accuracy metric. The sweep runs on a
// GOMAXPROCS-wide worker pool; see RasterWorkers.
func (m *Map) Raster(rows, cols int) *field.Raster {
	return m.RasterWorkers(rows, cols, 0)
}

// RasterWorkers is Raster with an explicit worker-pool width (workers < 1
// selects GOMAXPROCS). Each row is one job on a bounded pool — the same
// shape as sim.Runner's job fan-out — and scans its columns left to right
// with warm-started nearest-site cursors, one per isolevel, so adjacent
// probes reuse each other's search radius. Rows write disjoint slices and
// every query is cursor-independent, so the output is byte-identical at
// any width.
//
// Degenerate dimensions are defined: negative rows/cols clamp to zero and
// any empty dimension returns an empty raster through the sequential path,
// byte-identical (trivially) to what a sequential sweep of zero cells
// produces. Worker counts above the row count clamp to one worker per row.
func (m *Map) RasterWorkers(rows, cols, workers int) *field.Raster {
	start := time.Now()
	defer recordStage(m.tr, trace.StageRaster, -1, start)
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	ra := field.NewRaster(rows, cols)
	if rows == 0 || cols == 0 {
		return ra
	}
	x0, y0, x1, y1 := m.Bounds.BoundingBox()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		for r := 0; r < rows; r++ {
			m.rasterRow(ra.Cells[r], r, rows, cols, x0, y0, x1, y1)
		}
		return ra
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for r := 0; r < rows; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m.rasterRow(ra.Cells[r], r, rows, cols, x0, y0, x1, y1)
		}(r)
	}
	wg.Wait()
	return ra
}

// rasterRow classifies one scanline into row. Cursors start cold at the
// row boundary and warm up along the columns; a level past the first
// non-inner one keeps a stale cursor, which is still a valid seed.
func (m *Map) rasterRow(row []int, r, rows, cols int, x0, y0, x1, y1 float64) {
	y := y0 + (y1-y0)*(float64(r)+0.5)/float64(rows)
	hints := make([]int, len(m.levels))
	for i := range hints {
		hints[i] = -1
	}
	for c := 0; c < cols; c++ {
		x := x0 + (x1-x0)*(float64(c)+0.5)/float64(cols)
		p := geom.Point{X: x, Y: y}
		idx := 0
		for li, lr := range m.levels {
			if !lr.levelInnerHint(p, &hints[li]) {
				break
			}
			idx++
		}
		row[c] = idx
	}
}

// BoundarySegments returns the estimated isoline of one isolevel: the
// (regulated) type-1 chords across all Voronoi cells. It is the curve the
// Hausdorff irregularity metric of Fig. 12 compares against the true
// isoline.
func (m *Map) BoundarySegments(levelIndex int) []geom.Segment {
	if levelIndex < 0 || levelIndex >= len(m.levels) {
		return nil
	}
	lr := m.levels[levelIndex]
	var out []geom.Segment
	for i, ok := range lr.hasChord {
		if ok {
			out = append(out, lr.chords[i])
		}
	}
	return out
}

// BoundaryPoints samples the estimated isoline of one level with the given
// spacing.
func (m *Map) BoundaryPoints(levelIndex int, step float64) []geom.Point {
	var pts []geom.Point
	for _, s := range m.BoundarySegments(levelIndex) {
		pts = append(pts, geom.Polyline{s.A, s.B}.Sample(step)...)
	}
	return pts
}

// ReportCount returns the number of reports used for one isolevel.
func (m *Map) ReportCount(levelIndex int) int {
	if levelIndex < 0 || levelIndex >= len(m.levels) {
		return 0
	}
	return len(m.levels[levelIndex].sites)
}

// PatchCount returns the number of regulation adjustments applied at one
// isolevel; exposed for the regulation ablation.
func (m *Map) PatchCount(levelIndex int) int {
	if levelIndex < 0 || levelIndex >= len(m.levels) {
		return 0
	}
	return len(m.levels[levelIndex].patches)
}
