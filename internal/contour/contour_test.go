package contour

import (
	"math"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
)

func levels682() field.Levels { return field.Levels{Low: 6, High: 12, Step: 2} }

// circleReports fabricates n isoline reports around a circle: isopositions
// on the circle, gradients pointing outward (value decreases away from the
// center), which makes the disk the contour region.
func circleReports(center geom.Point, radius float64, n, levelIndex int, level float64) []core.Report {
	reports := make([]core.Report, 0, n)
	for k := 0; k < n; k++ {
		theta := 2 * math.Pi * float64(k) / float64(n)
		dir := geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)}
		reports = append(reports, core.Report{
			Level:      level,
			LevelIndex: levelIndex,
			Pos:        center.Add(dir.Scale(radius)),
			Grad:       dir,
			Source:     -1,
		})
	}
	return reports
}

func TestSingleReportHalfPlane(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	r := core.Report{
		Level: 6, LevelIndex: 0,
		Pos:  geom.Point{X: 25, Y: 25},
		Grad: geom.Vec{X: 1}, // value degrades toward +x: region is x <= 25
	}
	m := Reconstruct([]core.Report{r}, levels682(), bounds, 5, DefaultOptions())
	if got := m.ClassifyPoint(geom.Point{X: 10, Y: 25}); got != 1 {
		t.Errorf("left point class = %d, want 1", got)
	}
	if got := m.ClassifyPoint(geom.Point{X: 40, Y: 25}); got != 0 {
		t.Errorf("right point class = %d, want 0", got)
	}
}

func TestCircleRegionArea(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	center := geom.Point{X: 25, Y: 25}
	reports := circleReports(center, 10, 24, 0, 6)
	m := Reconstruct(reports, levels682(), bounds, 5, DefaultOptions())
	ra := m.Raster(200, 200)
	inner := 0
	for _, row := range ra.Cells {
		for _, v := range row {
			if v >= 1 {
				inner++
			}
		}
	}
	gotArea := float64(inner) / float64(200*200) * 2500
	wantArea := math.Pi * 100
	if math.Abs(gotArea-wantArea) > 0.15*wantArea {
		t.Errorf("disk area = %v, want ~%v", gotArea, wantArea)
	}
	// Sanity on individual points.
	if got := m.ClassifyPoint(center); got != 1 {
		t.Errorf("center class = %d, want 1", got)
	}
	if got := m.ClassifyPoint(geom.Point{X: 2, Y: 2}); got != 0 {
		t.Errorf("corner class = %d, want 0", got)
	}
}

func TestCircleBoundaryNearTrueCircle(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	center := geom.Point{X: 25, Y: 25}
	reports := circleReports(center, 10, 24, 0, 6)
	m := Reconstruct(reports, levels682(), bounds, 5, DefaultOptions())
	pts := m.BoundaryPoints(0, 0.5)
	if len(pts) == 0 {
		t.Fatal("no boundary points")
	}
	for _, p := range pts {
		r := p.DistTo(center)
		// Chords of a 24-gon inscribed at radius 10 stay close to r=10.
		if r < 8 || r > 12 {
			t.Fatalf("boundary point %v at radius %v, want ~10", p, r)
		}
	}
}

func TestNestingMonotone(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	center := geom.Point{X: 25, Y: 25}
	var reports []core.Report
	reports = append(reports, circleReports(center, 15, 24, 0, 6)...)
	reports = append(reports, circleReports(center, 7, 16, 1, 8)...)
	m := Reconstruct(reports, levels682(), bounds, 5, DefaultOptions())
	if got := m.ClassifyPoint(center); got != 2 {
		t.Errorf("center class = %d, want 2", got)
	}
	if got := m.ClassifyPoint(geom.Point{X: 25, Y: 14}); got != 1 {
		t.Errorf("annulus class = %d, want 1", got)
	}
	if got := m.ClassifyPoint(geom.Point{X: 3, Y: 3}); got != 0 {
		t.Errorf("outside class = %d, want 0", got)
	}
}

func TestNestingClipsHigherLevels(t *testing.T) {
	// A level-1 (higher) region outside the level-0 region must be clipped
	// away by the recursive rule.
	bounds := geom.Rect(0, 0, 50, 50)
	var reports []core.Report
	reports = append(reports, circleReports(geom.Point{X: 15, Y: 25}, 6, 16, 0, 6)...)
	reports = append(reports, circleReports(geom.Point{X: 40, Y: 25}, 6, 16, 1, 8)...)
	m := Reconstruct(reports, levels682(), bounds, 5, DefaultOptions())
	// Center of the disjoint higher region: inner for level 1 alone but
	// outside level 0, so classification stops at 0.
	if got := m.ClassifyPoint(geom.Point{X: 40, Y: 25}); got != 0 {
		t.Errorf("disjoint higher region class = %d, want 0 (clipped)", got)
	}
	if got := m.ClassifyPoint(geom.Point{X: 15, Y: 25}); got != 1 {
		t.Errorf("lower region class = %d, want 1", got)
	}
}

func TestFallbackNoReports(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	// Sink value 9: levels 6 and 8 are below it (whole field above), 10
	// and 12 above it (no region).
	m := Reconstruct(nil, levels682(), bounds, 9, DefaultOptions())
	if got := m.ClassifyPoint(geom.Point{X: 25, Y: 25}); got != 2 {
		t.Errorf("fallback class = %d, want 2", got)
	}
	m2 := Reconstruct(nil, levels682(), bounds, 3, DefaultOptions())
	if got := m2.ClassifyPoint(geom.Point{X: 25, Y: 25}); got != 0 {
		t.Errorf("fallback class = %d, want 0", got)
	}
}

func TestReportCountAndPatchCount(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	reports := circleReports(geom.Point{X: 25, Y: 25}, 10, 12, 0, 6)
	m := Reconstruct(reports, levels682(), bounds, 5, DefaultOptions())
	if got := m.ReportCount(0); got != 12 {
		t.Errorf("ReportCount(0) = %d, want 12", got)
	}
	if got := m.ReportCount(1); got != 0 {
		t.Errorf("ReportCount(1) = %d, want 0", got)
	}
	if got := m.ReportCount(-1); got != 0 {
		t.Errorf("ReportCount(-1) = %d, want 0", got)
	}
	if got := m.PatchCount(-1); got != 0 {
		t.Errorf("PatchCount(-1) = %d", got)
	}
	// A ring of reports with slightly rotating gradients produces jogs, so
	// regulation should fire at least once.
	if got := m.PatchCount(0); got == 0 {
		t.Log("no regulation patches on circle (acceptable but unusual)")
	}
}

func TestRegulationImprovesCircleFit(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	center := geom.Point{X: 25, Y: 25}
	reports := circleReports(center, 10, 16, 0, 6)

	truth := make([]geom.Point, 0, 360)
	for k := 0; k < 360; k++ {
		th := float64(k) * math.Pi / 180
		truth = append(truth, center.Add(geom.Vec{X: math.Cos(th), Y: math.Sin(th)}.Scale(10)))
	}
	reg := Reconstruct(reports, levels682(), bounds, 5, Options{Regulate: true})
	unreg := Reconstruct(reports, levels682(), bounds, 5, Options{Regulate: false})
	hReg := geom.HausdorffDistance(truth, reg.BoundaryPoints(0, 0.25))
	hUnreg := geom.HausdorffDistance(truth, unreg.BoundaryPoints(0, 0.25))
	if hReg < 0 || hUnreg < 0 {
		t.Fatal("empty boundary")
	}
	// Regulation closes the gaps between chords, so it should not be
	// dramatically worse; typically it is better.
	if hReg > hUnreg+0.5 {
		t.Errorf("regulated Hausdorff %v much worse than unregulated %v", hReg, hUnreg)
	}
}

func TestBoundarySegmentsOutOfRange(t *testing.T) {
	m := Reconstruct(nil, levels682(), geom.Rect(0, 0, 10, 10), 0, DefaultOptions())
	if got := m.BoundarySegments(-1); got != nil {
		t.Error("negative level index should yield nil")
	}
	if got := m.BoundarySegments(99); got != nil {
		t.Error("huge level index should yield nil")
	}
	if got := m.BoundaryPoints(0, 1); got != nil {
		t.Error("no-report level should have no boundary")
	}
}

func TestRasterShape(t *testing.T) {
	m := Reconstruct(nil, levels682(), geom.Rect(0, 0, 10, 10), 9, DefaultOptions())
	ra := m.Raster(16, 32)
	if ra.Rows != 16 || ra.Cols != 32 {
		t.Fatalf("raster shape %dx%d", ra.Rows, ra.Cols)
	}
	for _, row := range ra.Cells {
		for _, v := range row {
			if v != 2 {
				t.Fatalf("fallback raster cell = %d, want 2", v)
			}
		}
	}
}

func TestReportsWithBogusLevelIndexIgnored(t *testing.T) {
	bounds := geom.Rect(0, 0, 50, 50)
	bad := core.Report{Level: 99, LevelIndex: 17, Pos: geom.Point{X: 1, Y: 1}, Grad: geom.Vec{X: 1}}
	m := Reconstruct([]core.Report{bad}, levels682(), bounds, 3, DefaultOptions())
	for i := 0; i < 4; i++ {
		if got := m.ReportCount(i); got != 0 {
			t.Errorf("level %d report count = %d, want 0", i, got)
		}
	}
}
