package contour

import (
	"sort"
	"testing"

	"isomap/internal/core"
	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// runIsoMap executes a full Iso-Map round on the default seabed and returns
// the reconstructed map plus the ground-truth raster.
func runIsoMap(t *testing.T, n int, seed int64, fc core.FilterConfig) (*Map, *field.Raster, *core.Result) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(n, f, 1.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(tree, f, q, fc)
	if err != nil {
		t.Fatal(err)
	}
	m := Reconstruct(res.Reports, q.Levels, field.BoundsRect(f), res.SinkValue, DefaultOptions())
	truth := field.ClassifyRaster(f, q.Levels, 128, 128)
	return m, truth, res
}

func TestEndToEndAccuracyAtDensity1(t *testing.T) {
	// Fig. 11a: at normalized density 1 (2,500 nodes on the 50x50 field)
	// Iso-Map's mapping accuracy is above 80%.
	m, truth, res := runIsoMap(t, 2500, 1, core.DefaultFilterConfig())
	est := m.Raster(128, 128)
	acc := field.Agreement(truth, est)
	t.Logf("accuracy = %.3f with %d sink reports (%d generated)", acc, len(res.Reports), res.Generated)
	if acc < 0.8 {
		t.Errorf("accuracy = %v, want > 0.8", acc)
	}
}

func TestEndToEndAccuracyImprovesWithDensity(t *testing.T) {
	accs := make(map[int]float64)
	for _, n := range []int{400, 10000} {
		m, truth, _ := runIsoMap(t, n, 3, core.DefaultFilterConfig())
		est := m.Raster(128, 128)
		accs[n] = field.Agreement(truth, est)
	}
	t.Logf("accuracy: %v", accs)
	if accs[10000] < accs[400]-0.02 {
		t.Errorf("accuracy did not improve with density: %v", accs)
	}
}

func TestEndToEndBoundaryHausdorffReasonable(t *testing.T) {
	// Fig. 12a: at density 1 the normalized Hausdorff distance between the
	// estimated and true isolines is a few units on the 50x50 field.
	m, _, _ := runIsoMap(t, 2500, 1, core.DefaultFilterConfig())
	f := field.NewSeabed(field.DefaultSeabedConfig())
	var hs []float64
	for i, lv := range (field.Levels{Low: 6, High: 12, Step: 2}).Values() {
		truthPts := field.IsolinePoints(f, lv, 200, 200, 0.5)
		estPts := m.BoundaryPoints(i, 0.5)
		if len(truthPts) == 0 || len(estPts) == 0 {
			continue
		}
		h := geom.HausdorffDistance(truthPts, estPts)
		t.Logf("level %v: Hausdorff %.2f (%d reports)", lv, h, m.ReportCount(i))
		hs = append(hs, h)
	}
	if len(hs) == 0 {
		t.Fatal("no level produced a comparable boundary")
	}
	// Hausdorff is a max metric: a single sparse border cell (whose
	// full-cell type-1 chord is faithful to the paper's algorithm) or one
	// missed steep-gradient branch dominates it. Require the typical level
	// to be tight and every level to stay bounded.
	sort.Float64s(hs)
	if best := hs[0]; best > 8 {
		t.Errorf("best-level Hausdorff = %v units — even the densest isoline is distorted", best)
	}
	if worst := hs[len(hs)-1]; worst > 30 {
		t.Errorf("worst Hausdorff = %v units on a 50-unit field — too distorted", worst)
	}
}

func TestEndToEndDeterministic(t *testing.T) {
	m1, _, r1 := runIsoMap(t, 1000, 5, core.DefaultFilterConfig())
	m2, _, r2 := runIsoMap(t, 1000, 5, core.DefaultFilterConfig())
	if len(r1.Reports) != len(r2.Reports) {
		t.Fatalf("report counts differ: %d vs %d", len(r1.Reports), len(r2.Reports))
	}
	ra1 := m1.Raster(64, 64)
	ra2 := m2.Raster(64, 64)
	if field.Agreement(ra1, ra2) != 1 {
		t.Error("same-seed reconstructions differ")
	}
}
