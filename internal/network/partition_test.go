package network

import (
	"math"
	"testing"

	"isomap/internal/field"
)

func partitionTestNetwork(t *testing.T, n int) *Network {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	radio := 1.5 * 50 / math.Sqrt(float64(n))
	nw, err := DeployUniform(n, f, radio, 4)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// checkPartition verifies the structural invariants any partition must
// satisfy: every node assigned to a shard in range, and Border/Remote
// exactly reflecting the neighbor relation — a node is a border node iff
// it has a neighbor in another shard, and Remote lists exactly the
// distinct remote shards of its neighbors, sorted.
func checkPartition(t *testing.T, nw *Network, p *Partition) {
	t.Helper()
	if len(p.Shard) != nw.Len() || len(p.Border) != nw.Len() || len(p.Remote) != nw.Len() {
		t.Fatalf("partition slices sized %d/%d/%d, want %d",
			len(p.Shard), len(p.Border), len(p.Remote), nw.Len())
	}
	for i := 0; i < nw.Len(); i++ {
		id := NodeID(i)
		if s := p.Shard[i]; s < 0 || int(s) >= p.K {
			t.Fatalf("node %d assigned shard %d outside [0, %d)", i, s, p.K)
		}
		want := map[int32]bool{}
		for _, nb := range nw.Neighbors(id) {
			if p.Shard[nb] != p.Shard[i] {
				want[p.Shard[nb]] = true
			}
		}
		if p.Border[i] != (len(want) > 0) {
			t.Errorf("node %d: border=%v but %d remote-shard neighbors", i, p.Border[i], len(want))
		}
		if len(p.Remote[i]) != len(want) {
			t.Errorf("node %d: remote %v, want the %d shards %v", i, p.Remote[i], len(want), want)
			continue
		}
		for j, r := range p.Remote[i] {
			if !want[r] {
				t.Errorf("node %d: remote shard %d not among neighbors", i, r)
			}
			if j > 0 && p.Remote[i][j-1] >= r {
				t.Errorf("node %d: remote %v not strictly increasing", i, p.Remote[i])
			}
		}
	}
}

func TestGridPartitionInvariants(t *testing.T) {
	nw := partitionTestNetwork(t, 500)
	for _, k := range []int{1, 2, 4, 7, 12, 16} {
		p := NewGridPartition(nw, k)
		if p.K != k {
			t.Fatalf("k=%d: got K=%d", k, p.K)
		}
		checkPartition(t, nw, p)
	}
	// Clamps to one shard, in which case nothing is a border node.
	p := NewGridPartition(nw, 0)
	if p.K != 1 {
		t.Fatalf("k=0 should clamp to 1, got %d", p.K)
	}
	for i, b := range p.Border {
		if b {
			t.Fatalf("node %d border in a 1-shard partition", i)
		}
	}
}

// TestGridPartitionIsSpatial pins what makes the grid rule worth having:
// far fewer border nodes than a random assignment of the same k.
func TestGridPartitionIsSpatial(t *testing.T) {
	nw := partitionTestNetwork(t, 500)
	borders := func(p *Partition) int {
		c := 0
		for _, b := range p.Border {
			if b {
				c++
			}
		}
		return c
	}
	grid := borders(NewGridPartition(nw, 4))
	random := borders(NewSeededPartition(nw, 4, 1))
	if grid == 0 || random == 0 {
		t.Fatalf("degenerate partitions: grid=%d random=%d border nodes", grid, random)
	}
	if grid*2 >= random {
		t.Errorf("grid partition has %d border nodes vs random %d — not meaningfully spatial", grid, random)
	}
}

func TestSeededPartitionDeterminism(t *testing.T) {
	nw := partitionTestNetwork(t, 300)
	a := NewSeededPartition(nw, 5, 42)
	b := NewSeededPartition(nw, 5, 42)
	for i := range a.Shard {
		if a.Shard[i] != b.Shard[i] {
			t.Fatalf("same seed diverged at node %d: %d vs %d", i, a.Shard[i], b.Shard[i])
		}
	}
	checkPartition(t, nw, a)
	c := NewSeededPartition(nw, 5, 43)
	same := true
	for i := range a.Shard {
		if a.Shard[i] != c.Shard[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical assignments")
	}
}
