package network

import (
	"math"
	"testing"

	"isomap/internal/field"
)

func TestSenseWithNoiseZeroSigmaIsExact(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := DeployUniform(100, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.SenseWithNoise(f, 0, 5)
	for _, n := range nw.Nodes() {
		if n.Value != f.Value(n.Pos.X, n.Pos.Y) {
			t.Fatalf("sigma=0 should be exact sensing")
		}
	}
}

func TestSenseWithNoiseDeterministic(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	a, err := DeployUniform(100, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeployUniform(100, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.SenseWithNoise(f, 0.2, 7)
	b.SenseWithNoise(f, 0.2, 7)
	for i := range a.Nodes() {
		if a.Node(NodeID(i)).Value != b.Node(NodeID(i)).Value {
			t.Fatal("same seed produced different noise")
		}
	}
}

func TestSenseWithNoiseStatistics(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := DeployUniform(5000, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const sigma = 0.3
	nw.SenseWithNoise(f, sigma, 3)
	var sum, sum2 float64
	for _, n := range nw.Nodes() {
		d := n.Value - f.Value(n.Pos.X, n.Pos.Y)
		sum += d
		sum2 += d * d
	}
	count := float64(nw.Len())
	mean := sum / count
	std := math.Sqrt(sum2/count - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-sigma) > 0.02 {
		t.Errorf("noise std = %v, want ~%v", std, sigma)
	}
}

func TestSenseWithNoiseSkipsFailed(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := DeployUniform(10, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw.Node(0).Failed = true
	nw.SenseWithNoise(f, 0.5, 1)
	if nw.Node(0).Value != 0 {
		t.Error("failed node sensed")
	}
}
