package network

import (
	"errors"
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
)

func testField() field.Field { return field.NewSeabed(field.DefaultSeabedConfig()) }

func TestDeployUniformDeterministic(t *testing.T) {
	f := testField()
	a, err := DeployUniform(100, f, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeployUniform(100, f, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Node(NodeID(i)).Pos != b.Node(NodeID(i)).Pos {
			t.Fatalf("node %d positions differ across identical seeds", i)
		}
	}
	c, err := DeployUniform(100, f, 1.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Node(NodeID(i)).Pos != c.Node(NodeID(i)).Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical deployments")
	}
}

func TestDeployUniformInBounds(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(500, f, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	x0, y0, x1, y1 := f.Bounds()
	for _, n := range nw.Nodes() {
		if n.Pos.X < x0 || n.Pos.X > x1 || n.Pos.Y < y0 || n.Pos.Y > y1 {
			t.Fatalf("node %d at %v outside bounds", n.ID, n.Pos)
		}
	}
}

func TestDeployErrors(t *testing.T) {
	f := testField()
	if _, err := DeployUniform(0, f, 1.5, 1); !errors.Is(err, ErrNoNodes) {
		t.Errorf("want ErrNoNodes, got %v", err)
	}
	if _, err := DeployUniform(10, f, 0, 1); !errors.Is(err, ErrBadRadio) {
		t.Errorf("want ErrBadRadio, got %v", err)
	}
	if _, err := DeployGrid(0, f, 1.5); !errors.Is(err, ErrNoNodes) {
		t.Errorf("want ErrNoNodes, got %v", err)
	}
}

func TestDeployGridShape(t *testing.T) {
	f := testField()
	nw, err := DeployGrid(2500, f, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Len() != 2500 {
		t.Fatalf("grid Len = %d, want 2500", nw.Len())
	}
	// Spacing between the first two nodes is the cell size, 1 unit.
	d := nw.Node(0).Pos.DistTo(nw.Node(1).Pos)
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("grid spacing = %v, want 1", d)
	}
	// Non-square request rounds down to a full square.
	nw2, err := DeployGrid(10, f, 20)
	if err != nil {
		t.Fatal(err)
	}
	if nw2.Len() != 9 {
		t.Errorf("grid Len for 10 = %d, want 9", nw2.Len())
	}
}

func TestNeighborsSymmetricAndWithinRange(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(400, f, 2.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Len(); i++ {
		id := NodeID(i)
		for _, j := range nw.Neighbors(id) {
			if d := nw.Node(id).Pos.DistTo(nw.Node(j).Pos); d > 2.5+1e-9 {
				t.Fatalf("neighbor %d of %d at distance %v > radio", j, id, d)
			}
			// Symmetry.
			found := false
			for _, k := range nw.Neighbors(j) {
				if k == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d -> %d", id, j)
			}
		}
	}
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(200, f, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.Len(); i++ {
		want := 0
		for j := 0; j < nw.Len(); j++ {
			if i == j {
				continue
			}
			if nw.Node(NodeID(i)).Pos.DistTo(nw.Node(NodeID(j)).Pos) <= 3 {
				want++
			}
		}
		if got := len(nw.Neighbors(NodeID(i))); got != want {
			t.Fatalf("node %d neighbor count %d, want %d", i, got, want)
		}
	}
}

func TestAverageDegreeMatchesPaperSetting(t *testing.T) {
	// Density 1 (2,500 nodes on 50x50) with radio 1.5 must give average
	// degree around 7 (Sec. 5: "radio range no less than 1.5 ... results in
	// an average node degree of 7").
	f := testField()
	nw, err := DeployUniform(2500, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	deg := nw.AverageDegree()
	if deg < 5.5 || deg > 8.5 {
		t.Errorf("average degree = %v, want ~7", deg)
	}
}

func TestSense(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(50, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	for _, n := range nw.Nodes() {
		if want := f.Value(n.Pos.X, n.Pos.Y); n.Value != want {
			t.Fatalf("node %d Value = %v, want %v", n.ID, n.Value, want)
		}
	}
}

func TestSenseSkipsFailed(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(10, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw.Node(3).Failed = true
	nw.Sense(f)
	if nw.Node(3).Value != 0 {
		t.Error("failed node should not sense")
	}
}

func TestFailFraction(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(1000, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw.FailFraction(0.3, 99)
	failed := 0
	for _, n := range nw.Nodes() {
		if n.Failed {
			failed++
		}
	}
	if failed != 300 {
		t.Errorf("failed = %d, want 300", failed)
	}
	// Monotone growth.
	nw.FailFraction(0.5, 100)
	failed = 0
	for _, n := range nw.Nodes() {
		if n.Failed {
			failed++
		}
	}
	if failed != 500 {
		t.Errorf("failed after growth = %d, want 500", failed)
	}
	// No-op for non-positive fraction.
	nw.FailFraction(0, 1)
	nw.FailFraction(-1, 1)
}

func TestFailFractionExcluding(t *testing.T) {
	f := testField()
	// Find nodes the unprotected draw would kill, then protect them: the
	// full failure count must still be reached, from other nodes.
	nw, err := DeployUniform(1000, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw.FailFraction(0.3, 99)
	var keep []NodeID
	for _, n := range nw.Nodes() {
		if n.Failed {
			keep = append(keep, n.ID)
			if len(keep) == 5 {
				break
			}
		}
	}
	nw2, err := DeployUniform(1000, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw2.FailFractionExcluding(0.3, 99, keep...)
	failed := 0
	for _, n := range nw2.Nodes() {
		if n.Failed {
			failed++
		}
	}
	if failed != 300 {
		t.Errorf("failed = %d, want 300 despite protected nodes", failed)
	}
	for _, id := range keep {
		if nw2.Node(id).Failed {
			t.Errorf("protected node %d failed", id)
		}
	}
	// With no protected nodes the draw is identical to FailFraction's.
	nw3, err := DeployUniform(1000, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw3.FailFractionExcluding(0.3, 99)
	for i, n := range nw.Nodes() {
		if n.Failed != nw3.Nodes()[i].Failed {
			t.Fatalf("node %d: FailFractionExcluding with no keeps diverged from FailFraction", i)
		}
	}
}

func TestFailFractionDeterministic(t *testing.T) {
	f := testField()
	kill := func() map[int]bool {
		nw, err := DeployUniform(500, f, 1.5, 4)
		if err != nil {
			t.Fatal(err)
		}
		nw.FailFraction(0.2, 31)
		dead := make(map[int]bool)
		for _, n := range nw.Nodes() {
			if n.Failed {
				dead[int(n.ID)] = true
			}
		}
		return dead
	}
	a, b := kill(), kill()
	if len(a) != len(b) {
		t.Fatalf("failure counts differ across identical seeds: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("node %d failed in one run but not the other", id)
		}
	}
}

func TestCloneIsolatesNodeState(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(100, f, 1.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	cp := nw.Clone()
	if cp.Len() != nw.Len() {
		t.Fatalf("clone Len = %d, want %d", cp.Len(), nw.Len())
	}
	for i := 0; i < nw.Len(); i++ {
		id := NodeID(i)
		if cp.Node(id).Pos != nw.Node(id).Pos || cp.Node(id).Value != nw.Node(id).Value {
			t.Fatalf("clone node %d differs from original", i)
		}
	}
	// Mutable node state must not be shared...
	cp.Node(5).Failed = true
	cp.Node(5).Value = -99
	if nw.Node(5).Failed || nw.Node(5).Value == -99 {
		t.Error("mutating the clone leaked into the original")
	}
	// ...while the immutable adjacency is.
	a, b := nw.Neighbors(5), cp.Neighbors(5)
	if len(a) != len(b) {
		t.Errorf("clone adjacency differs: %d vs %d neighbors", len(b), len(a))
	}
}

func TestReset(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(20, f, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	nw.FailFraction(0.5, 1)
	nw.Reset()
	for _, n := range nw.Nodes() {
		if n.Failed || n.Value != 0 {
			t.Fatalf("node %d not reset: %+v", n.ID, n)
		}
	}
}

func TestAliveAndAliveNeighbors(t *testing.T) {
	f := testField()
	nw, err := DeployGrid(25, f, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Alive(0) {
		t.Error("fresh node should be alive")
	}
	if nw.Alive(-1) || nw.Alive(NodeID(nw.Len())) {
		t.Error("out-of-range IDs should not be alive")
	}
	n0 := nw.Neighbors(0)
	if len(n0) == 0 {
		t.Fatal("expected neighbors with large radio")
	}
	nw.Node(n0[0]).Failed = true
	if got := len(nw.AliveNeighbors(0)); got != len(n0)-1 {
		t.Errorf("AliveNeighbors = %d, want %d", got, len(n0)-1)
	}
}

func TestNearestNode(t *testing.T) {
	f := testField()
	nw, err := DeployGrid(25, f, 15)
	if err != nil {
		t.Fatal(err)
	}
	id, err := nw.NearestNode(geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("nearest to origin = %d, want 0", id)
	}
	for i := 0; i < nw.Len(); i++ {
		nw.Node(NodeID(i)).Failed = true
	}
	if _, err := nw.NearestNode(geom.Point{}); err == nil {
		t.Error("want error when all nodes failed")
	}
}

func TestConnectedFrom(t *testing.T) {
	f := testField()
	nw, err := DeployUniform(2500, f, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	root, err := nw.NearestNode(geom.Point{X: 25, Y: 25})
	if err != nil {
		t.Fatal(err)
	}
	reach := nw.ConnectedFrom(root)
	// The paper's setting keeps the graph connected; allow a small number
	// of stragglers on the border.
	if reach < nw.Len()*95/100 {
		t.Errorf("connected component = %d of %d, want near-full connectivity", reach, nw.Len())
	}
	nw.Node(root).Failed = true
	if got := nw.ConnectedFrom(root); got != 0 {
		t.Errorf("ConnectedFrom failed root = %d, want 0", got)
	}
}

func TestKHopNeighbors(t *testing.T) {
	f := testField()
	nw, err := DeployGrid(25, f, 10.1) // 5x5 grid, spacing 10: 4-connected
	if err != nil {
		t.Fatal(err)
	}
	center, err := nw.NearestNode(geom.Point{X: 25, Y: 25})
	if err != nil {
		t.Fatal(err)
	}
	h1 := nw.KHopNeighbors(center, 1)
	h2 := nw.KHopNeighbors(center, 2)
	if len(h1) != 4 {
		t.Errorf("1-hop = %d, want 4", len(h1))
	}
	if len(h2) <= len(h1) {
		t.Errorf("2-hop (%d) should exceed 1-hop (%d)", len(h2), len(h1))
	}
	if got := nw.KHopNeighbors(center, 0); got != nil {
		t.Error("0-hop should be nil")
	}
}
