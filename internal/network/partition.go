package network

// Partition assigns every node of a deployment to one of K shards for
// parallel discrete-event execution. The partition is pure data — shard
// membership plus the derived cross-shard structure the sharded engine
// needs: which nodes sit on a seam (Border) and, per border node, which
// remote shards its radio range reaches (Remote). Correctness of sharded
// execution never depends on the assignment rule — any map from nodes to
// shards works, which is what the randomized-partition property tests
// exercise — only performance does: a spatial rule keeps most frames
// intra-shard.
type Partition struct {
	// K is the shard count (>= 1). Shards may be empty.
	K int
	// Shard maps each node to its shard in [0, K).
	Shard []int32
	// Border marks nodes with at least one neighbor in another shard:
	// exactly the nodes whose transmissions cross a seam and whose
	// carrier/liveness state must be mirrored across it.
	Border []bool
	// Remote lists, per node, the distinct remote shards among its
	// neighbors in increasing order; nil for interior nodes.
	Remote [][]int32
}

// finishPartition derives Border/Remote from a filled Shard map.
func finishPartition(nw *Network, p *Partition) *Partition {
	n := nw.Len()
	p.Border = make([]bool, n)
	p.Remote = make([][]int32, n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		s := p.Shard[i]
		var remote []int32
		for _, nb := range nw.Neighbors(id) {
			d := p.Shard[nb]
			if d == s {
				continue
			}
			dup := false
			for _, r := range remote {
				if r == d {
					dup = true
					break
				}
			}
			if !dup {
				remote = append(remote, d)
			}
		}
		if len(remote) > 0 {
			p.Border[i] = true
			// Insertion-sort the handful of remote shards.
			for a := 1; a < len(remote); a++ {
				for b := a; b > 0 && remote[b] < remote[b-1]; b-- {
					remote[b], remote[b-1] = remote[b-1], remote[b]
				}
			}
			p.Remote[i] = remote
		}
	}
	return p
}

// NewGridPartition splits the deployment into k spatial cells on a
// kx×ky grid over the network bounds, with kx the largest divisor of k
// not exceeding sqrt(k). Spatial cells minimize seam length, so most
// radio traffic stays intra-shard. k is clamped to at least 1.
func NewGridPartition(nw *Network, k int) *Partition {
	if k < 1 {
		k = 1
	}
	kx := 1
	for d := 2; d*d <= k; d++ {
		if k%d == 0 {
			kx = d
		}
	}
	// kx is the largest divisor <= sqrt(k) (1 for primes).
	ky := k / kx
	x0, y0, x1, y1 := boundsOf(nw.Bounds())
	w, h := x1-x0, y1-y0
	n := nw.Len()
	p := &Partition{K: k, Shard: make([]int32, n)}
	for i := 0; i < n; i++ {
		pos := nw.Node(NodeID(i)).Pos
		cx, cy := 0, 0
		if w > 0 {
			cx = int(float64(kx) * (pos.X - x0) / w)
		}
		if h > 0 {
			cy = int(float64(ky) * (pos.Y - y0) / h)
		}
		cx = min(max(cx, 0), kx-1)
		cy = min(max(cy, 0), ky-1)
		p.Shard[i] = int32(cy*kx + cx)
	}
	return finishPartition(nw, p)
}

// NewSeededPartition assigns nodes to k shards pseudo-randomly from
// seed — the adversarial layout for the sharded-equivalence property
// tests: nearly every node is a border node, so the cross-shard
// machinery carries nearly all traffic.
func NewSeededPartition(nw *Network, k int, seed int64) *Partition {
	if k < 1 {
		k = 1
	}
	n := nw.Len()
	p := &Partition{K: k, Shard: make([]int32, n)}
	for i := 0; i < n; i++ {
		z := uint64(seed) ^ (uint64(i)+1)*0x9E3779B97F4A7C15
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		p.Shard[i] = int32(z % uint64(k))
	}
	return finishPartition(nw, p)
}
