// Package network provides the sensor-network substrate: node deployment
// (uniform random or grid, as the compared protocols require), the radio
// communication graph, sensing, and node-failure injection.
package network

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"isomap/internal/field"
	"isomap/internal/geom"
)

// NodeID identifies a node by its index in the network's node slice.
type NodeID int

// Node is one sensor node.
type Node struct {
	// ID is the node's index.
	ID NodeID
	// Pos is the node's position, assumed known to the node itself (the
	// paper allows GPS or any localization algorithm).
	Pos geom.Point
	// Value is the sensed attribute value, filled in by Sense.
	Value float64
	// Failed marks a dead node: it neither senses nor forwards.
	Failed bool
}

// Network is a deployed sensor field: node set plus the radio graph.
type Network struct {
	nodes     []Node
	radio     float64
	bounds    geom.Polygon
	neighbors [][]NodeID
}

// errors returned by deployment constructors.
var (
	ErrNoNodes   = errors.New("network: node count must be positive")
	ErrBadRadio  = errors.New("network: radio range must be positive")
	ErrBadBounds = errors.New("network: bounds must have positive area")
)

// DeployUniform places n nodes uniformly at random over the bounds of f and
// connects them with the given radio range. The deployment is deterministic
// in seed.
func DeployUniform(n int, f field.Field, radio float64, seed int64) (*Network, error) {
	if err := validate(n, radio, f); err != nil {
		return nil, err
	}
	x0, y0, x1, y1 := f.Bounds()
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID: NodeID(i),
			Pos: geom.Point{
				X: x0 + rng.Float64()*(x1-x0),
				Y: y0 + rng.Float64()*(y1-y0),
			},
		}
	}
	return build(nodes, f, radio), nil
}

// DeployGrid places n nodes on a regular grid over the bounds of f — the
// deployment TinyDB, INLR and the data-suppression protocol require. The
// actual count is floor(sqrt(n))^2, the largest square grid not exceeding
// n nodes: a request of 2,500 yields exactly 50x50, while a request of
// 2,600 also yields 50x50 (51^2 = 2,601 > 2,600).
func DeployGrid(n int, f field.Field, radio float64) (*Network, error) {
	if err := validate(n, radio, f); err != nil {
		return nil, err
	}
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	x0, y0, x1, y1 := f.Bounds()
	dx := (x1 - x0) / float64(side)
	dy := (y1 - y0) / float64(side)
	nodes := make([]Node, 0, side*side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			nodes = append(nodes, Node{
				ID: NodeID(len(nodes)),
				Pos: geom.Point{
					X: x0 + (float64(c)+0.5)*dx,
					Y: y0 + (float64(r)+0.5)*dy,
				},
			})
		}
	}
	return build(nodes, f, radio), nil
}

func validate(n int, radio float64, f field.Field) error {
	if n <= 0 {
		return ErrNoNodes
	}
	if radio <= 0 {
		return ErrBadRadio
	}
	x0, y0, x1, y1 := f.Bounds()
	if x1 <= x0 || y1 <= y0 {
		return ErrBadBounds
	}
	return nil
}

func build(nodes []Node, f field.Field, radio float64) *Network {
	nw := &Network{
		nodes:  nodes,
		radio:  radio,
		bounds: field.BoundsRect(f),
	}
	nw.computeNeighbors()
	return nw
}

// computeNeighbors builds the adjacency lists with a uniform spatial hash
// whose bucket size equals the radio range, so neighbor search is O(n) in
// expectation.
func (nw *Network) computeNeighbors() {
	x0, y0, _, _ := boundsOf(nw.bounds)
	type cellKey struct{ cx, cy int }
	buckets := make(map[cellKey][]NodeID, len(nw.nodes))
	keyOf := func(p geom.Point) cellKey {
		return cellKey{
			cx: int(math.Floor((p.X - x0) / nw.radio)),
			cy: int(math.Floor((p.Y - y0) / nw.radio)),
		}
	}
	for i := range nw.nodes {
		k := keyOf(nw.nodes[i].Pos)
		buckets[k] = append(buckets[k], NodeID(i))
	}
	r2 := nw.radio * nw.radio
	nw.neighbors = make([][]NodeID, len(nw.nodes))
	for i := range nw.nodes {
		p := nw.nodes[i].Pos
		k := keyOf(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[cellKey{cx: k.cx + dx, cy: k.cy + dy}] {
					if j == NodeID(i) {
						continue
					}
					if p.Dist2To(nw.nodes[j].Pos) <= r2 {
						nw.neighbors[i] = append(nw.neighbors[i], j)
					}
				}
			}
		}
	}
}

func boundsOf(pg geom.Polygon) (x0, y0, x1, y1 float64) {
	return pg.BoundingBox()
}

// Len returns the number of deployed nodes (failed ones included).
func (nw *Network) Len() int { return len(nw.nodes) }

// Radio returns the radio range.
func (nw *Network) Radio() float64 { return nw.radio }

// Bounds returns the deployment area polygon.
func (nw *Network) Bounds() geom.Polygon { return nw.bounds }

// Node returns a pointer to the node with the given ID. The pointer stays
// valid for the lifetime of the network.
func (nw *Network) Node(id NodeID) *Node { return &nw.nodes[id] }

// Nodes returns the underlying node slice. Callers must not grow it; value
// edits (sensing, failure) are the intended use by the simulator.
func (nw *Network) Nodes() []Node { return nw.nodes }

// Neighbors returns the IDs of nodes within radio range of id, including
// failed ones; callers filter with Alive as needed.
func (nw *Network) Neighbors(id NodeID) []NodeID { return nw.neighbors[id] }

// AliveNeighbors returns the non-failed neighbors of id.
func (nw *Network) AliveNeighbors(id NodeID) []NodeID {
	var out []NodeID
	for _, j := range nw.neighbors[id] {
		if !nw.nodes[j].Failed {
			out = append(out, j)
		}
	}
	return out
}

// Alive reports whether the node exists and has not failed.
func (nw *Network) Alive(id NodeID) bool {
	return int(id) >= 0 && int(id) < len(nw.nodes) && !nw.nodes[id].Failed
}

// Sense samples the field at every alive node's position into Node.Value.
func (nw *Network) Sense(f field.Field) {
	for i := range nw.nodes {
		if nw.nodes[i].Failed {
			continue
		}
		nw.nodes[i].Value = f.Value(nw.nodes[i].Pos.X, nw.nodes[i].Pos.Y)
	}
}

// SenseWithNoise samples the field and adds independent Gaussian
// measurement noise with the given standard deviation, deterministic in
// seed. It models imperfect sensing hardware (the echolocation sensors of
// the harbor deployment are not exact).
func (nw *Network) SenseWithNoise(f field.Field, sigma float64, seed int64) {
	if sigma <= 0 {
		nw.Sense(f)
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range nw.nodes {
		if nw.nodes[i].Failed {
			continue
		}
		v := f.Value(nw.nodes[i].Pos.X, nw.nodes[i].Pos.Y)
		nw.nodes[i].Value = v + rng.NormFloat64()*sigma
	}
}

// AverageDegree returns the mean neighbor count over alive nodes, counting
// only alive neighbors.
func (nw *Network) AverageDegree() float64 {
	alive, sum := 0, 0
	for i := range nw.nodes {
		if nw.nodes[i].Failed {
			continue
		}
		alive++
		sum += len(nw.AliveNeighbors(NodeID(i)))
	}
	if alive == 0 {
		return 0
	}
	return float64(sum) / float64(alive)
}

// FailFraction marks a random fraction of nodes failed, deterministic in
// seed. Already-failed nodes count toward the target, so repeated calls
// with growing fractions are monotone.
func (nw *Network) FailFraction(fraction float64, seed int64) {
	nw.FailFractionExcluding(fraction, seed)
}

// FailFractionExcluding is FailFraction with a protected set: the nodes
// in keep are never failed, no matter what the permutation draws. The
// target count and the permutation are identical to FailFraction's for
// the same arguments, so protecting nodes the draw would not have hit
// anyway changes nothing. Use it to kill relays while guaranteeing the
// sink (or another essential node) survives, instead of un-failing it
// after the fact — which would silently lower the failed fraction drawn
// from the rest.
func (nw *Network) FailFractionExcluding(fraction float64, seed int64, keep ...NodeID) {
	if fraction <= 0 {
		return
	}
	protected := make(map[NodeID]bool, len(keep))
	for _, id := range keep {
		protected[id] = true
	}
	target := int(math.Round(fraction * float64(len(nw.nodes))))
	failed := 0
	for i := range nw.nodes {
		if nw.nodes[i].Failed {
			failed++
		}
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(nw.nodes))
	for _, i := range perm {
		if failed >= target {
			break
		}
		if !nw.nodes[i].Failed && !protected[NodeID(i)] {
			nw.nodes[i].Failed = true
			failed++
		}
	}
}

// Clone returns a copy of the network that owns its node slice but shares
// the immutable radio graph (adjacency lists and bounds) with the
// original. Sensing and failure injection on the clone never affect the
// original, so one deployed network can back many concurrent protocol
// runs — the sim runner's deployment cache hands out one clone per
// experiment job, and isomapd one per deployment.
//
// Sharing audit (nothing else is shared mutable): radio is a value copy;
// bounds and the per-node neighbor slices are written only during
// NewNetwork/buildAdjacency and read-only ever after — no exported or
// internal caller appends to or reassigns them. The per-round mutable
// state is exactly the Node structs (Value, Failed), which the clone
// owns. Round-scoped mutations must also stay round-scoped: a protocol
// round that marks nodes Failed (crash faults) must restore them before
// returning, or same-seed clones diverge on later rounds (see
// desim.RunFullRoundFaultsEngineTraced's crash restore).
func (nw *Network) Clone() *Network {
	nodes := make([]Node, len(nw.nodes))
	copy(nodes, nw.nodes)
	return &Network{
		nodes:     nodes,
		radio:     nw.radio,
		bounds:    nw.bounds,
		neighbors: nw.neighbors,
	}
}

// Reset clears failure marks and sensed values.
func (nw *Network) Reset() {
	for i := range nw.nodes {
		nw.nodes[i].Failed = false
		nw.nodes[i].Value = 0
	}
}

// NearestNode returns the alive node nearest to p, or an error when all
// nodes are failed.
func (nw *Network) NearestNode(p geom.Point) (NodeID, error) {
	best := NodeID(-1)
	bestDist := math.Inf(1)
	for i := range nw.nodes {
		if nw.nodes[i].Failed {
			continue
		}
		if d := p.Dist2To(nw.nodes[i].Pos); d < bestDist {
			best, bestDist = NodeID(i), d
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("network: no alive node near %v", p)
	}
	return best, nil
}

// ConnectedFrom reports the number of alive nodes reachable from root in
// the alive communication graph (including root itself when alive).
func (nw *Network) ConnectedFrom(root NodeID) int {
	if !nw.Alive(root) {
		return 0
	}
	seen := make([]bool, len(nw.nodes))
	queue := []NodeID{root}
	seen[root] = true
	count := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		count++
		for _, j := range nw.AliveNeighbors(cur) {
			if !seen[j] {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	return count
}

// KHopNeighbors returns the alive nodes within k hops of id (excluding id).
// The data-suppression baseline needs 2-hop neighborhoods (Sec. 6).
func (nw *Network) KHopNeighbors(id NodeID, k int) []NodeID {
	if k <= 0 || !nw.Alive(id) {
		return nil
	}
	seen := make(map[NodeID]bool, 16)
	seen[id] = true
	frontier := []NodeID{id}
	var out []NodeID
	for hop := 0; hop < k; hop++ {
		var next []NodeID
		for _, cur := range frontier {
			for _, j := range nw.AliveNeighbors(cur) {
				if !seen[j] {
					seen[j] = true
					next = append(next, j)
					out = append(out, j)
				}
			}
		}
		frontier = next
	}
	return out
}
