package core

import (
	"fmt"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// Result summarizes one Iso-Map protocol round.
type Result struct {
	// Reports are the isoline reports received at the sink after
	// in-network filtering.
	Reports []Report
	// Generated is the number of reports produced by isoline nodes before
	// filtering.
	Generated int
	// IsolineNodes is the number of distinct nodes that appointed
	// themselves isoline nodes.
	IsolineNodes int
	// SinkValue is the attribute value sensed at the sink itself; the
	// reconstruction uses it to disambiguate isolevels with no reports.
	SinkValue float64
	// Counters holds the per-node communication and computation costs of
	// the round.
	Counters *metrics.Counters
}

// Run executes one full Iso-Map round over an already-built routing tree:
// sensing, query dissemination, isoline-node appointment and measurement,
// and filtered report delivery (Sec. 3.1-3.5). The caller reconstructs the
// map from Result.Reports with internal/contour.
func Run(tree *routing.Tree, f field.Field, q Query, fc FilterConfig) (*Result, error) {
	if tree == nil {
		return nil, fmt.Errorf("core: nil routing tree")
	}
	tree.Network().Sense(f)
	return RunSensed(tree, q, fc)
}

// Detector is an isoline-node appointment policy: Definition 3.1's border
// band (DetectIsolineNodes, the paper's) or the edge-based election
// (DetectIsolineNodesEdgeBased).
type Detector func(nw *network.Network, q Query, c *metrics.Counters) []Report

// RunSensed executes a protocol round over the node values already present
// in the network — the entry point when the caller controls sensing (e.g.
// network.SenseWithNoise for imperfect hardware).
func RunSensed(tree *routing.Tree, q Query, fc FilterConfig) (*Result, error) {
	return RunSensedWithDetector(tree, q, fc, DetectIsolineNodes)
}

// RunSensedWithDetector is RunSensed with an explicit appointment policy.
func RunSensedWithDetector(tree *routing.Tree, q Query, fc FilterConfig, detect Detector) (*Result, error) {
	if tree == nil {
		return nil, fmt.Errorf("core: nil routing tree")
	}
	if detect == nil {
		detect = DetectIsolineNodes
	}
	nw := tree.Network()

	c := metrics.NewCounters(nw.Len())
	DisseminateQuery(tree, c)

	generated := detect(nw, q, c)

	// Reports from nodes with no route to the sink are lost (matters for
	// the failure sweeps of Figs. 11b/12b).
	routable := make([]Report, 0, len(generated))
	for _, r := range generated {
		if tree.Reachable(r.Source) {
			routable = append(routable, r)
		}
	}

	received := DeliverReports(tree, routable, fc, c)

	distinct := make(map[int]struct{}, len(generated))
	for _, r := range generated {
		distinct[int(r.Source)] = struct{}{}
	}

	return &Result{
		Reports:      received,
		Generated:    len(generated),
		IsolineNodes: len(distinct),
		SinkValue:    nw.Node(tree.Root()).Value,
		Counters:     c,
	}, nil
}
