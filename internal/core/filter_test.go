package core

import (
	"math"
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

func buildTree(t *testing.T, nw *network.Network) *routing.Tree {
	t.Helper()
	sink, err := nw.NearestNode(nw.Bounds().Centroid())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := routing.NewTree(nw, sink)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestRedundantPredicate(t *testing.T) {
	fc := FilterConfig{Enabled: true, MaxAngle: geom.Radians(30), MaxDist: 4}
	a := Report{LevelIndex: 1, Pos: geom.Point{X: 0, Y: 0}, Grad: geom.Vec{X: 1}}
	tests := []struct {
		name string
		b    Report
		want bool
	}{
		{"close and aligned", Report{LevelIndex: 1, Pos: geom.Point{X: 1, Y: 0}, Grad: geom.Vec{X: 1, Y: 0.1}}, true},
		{"different level", Report{LevelIndex: 2, Pos: geom.Point{X: 1, Y: 0}, Grad: geom.Vec{X: 1}}, false},
		{"far apart", Report{LevelIndex: 1, Pos: geom.Point{X: 10, Y: 0}, Grad: geom.Vec{X: 1}}, false},
		{"large angle", Report{LevelIndex: 1, Pos: geom.Point{X: 1, Y: 0}, Grad: geom.Vec{Y: 1}}, false},
		{"just above angle threshold", Report{LevelIndex: 1, Pos: geom.Point{X: 1, Y: 0},
			Grad: geom.Vec{X: math.Cos(geom.Radians(31)), Y: math.Sin(geom.Radians(31))}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := fc.Redundant(a, tt.b); got != tt.want {
				t.Errorf("redundant = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSeparationMetrics(t *testing.T) {
	a := Report{Pos: geom.Point{X: 0, Y: 0}, Grad: geom.Vec{X: 1}}
	b := Report{Pos: geom.Point{X: 3, Y: 4}, Grad: geom.Vec{Y: 1}}
	if got := DistanceSeparation(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("DistanceSeparation = %v, want 5", got)
	}
	if got := AngularSeparation(a, b); math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("AngularSeparation = %v, want pi/2", got)
	}
}

func TestDeliverNoFilterKeepsAll(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	tree := buildTree(t, nw)
	generated := DetectIsolineNodes(nw, q, nil)
	c := metrics.NewCounters(nw.Len())
	got := DeliverReports(tree, generated, FilterConfig{Enabled: false}, c)
	if len(got) != len(generated) {
		t.Errorf("unfiltered delivery lost reports: %d of %d", len(got), len(generated))
	}
	if c.SinkReports != int64(len(got)) {
		t.Errorf("SinkReports = %d, want %d", c.SinkReports, len(got))
	}
}

func TestDeliverFilterReducesReports(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	tree := buildTree(t, nw)
	generated := DetectIsolineNodes(nw, q, nil)
	if len(generated) < 20 {
		t.Fatalf("too few generated reports: %d", len(generated))
	}
	cNone := metrics.NewCounters(nw.Len())
	all := DeliverReports(tree, generated, FilterConfig{Enabled: false}, cNone)
	cFilt := metrics.NewCounters(nw.Len())
	filtered := DeliverReports(tree, generated, DefaultFilterConfig(), cFilt)
	if len(filtered) >= len(all) {
		t.Errorf("filtering did not reduce reports: %d vs %d", len(filtered), len(all))
	}
	if cFilt.TotalTxBytes() >= cNone.TotalTxBytes() {
		t.Errorf("filtering did not reduce traffic: %d vs %d", cFilt.TotalTxBytes(), cNone.TotalTxBytes())
	}
	// Filtering must charge comparison ops somewhere.
	if cFilt.TotalOps() == 0 {
		t.Error("filtering charged no ops")
	}
}

func TestDeliverTighterThresholdsFilterMore(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	tree := buildTree(t, nw)
	generated := DetectIsolineNodes(nw, q, nil)
	var prev = len(generated) + 1
	for _, sd := range []float64{0, 2, 4, 8} {
		fc := FilterConfig{Enabled: true, MaxAngle: geom.Radians(30), MaxDist: sd}
		got := DeliverReports(tree, generated, fc, nil)
		if len(got) > prev {
			t.Errorf("sd=%v delivered %d > previous %d (should be monotone non-increasing)", sd, len(got), prev)
		}
		prev = len(got)
	}
}

func TestDeliverSurvivorsSpreadAlongIsoline(t *testing.T) {
	// After filtering, no two surviving same-level reports may be mutually
	// redundant... note the paper's filter only guarantees this pairwise at
	// the nodes where reports meet; survivors meeting only at the sink are
	// all retained. At minimum, survivors must not be *identical*.
	nw, _, q := defaultSetup(t, 2500, 1)
	tree := buildTree(t, nw)
	generated := DetectIsolineNodes(nw, q, nil)
	got := DeliverReports(tree, generated, DefaultFilterConfig(), nil)
	seen := make(map[network.NodeID]map[int]bool)
	for _, r := range got {
		if seen[r.Source] == nil {
			seen[r.Source] = make(map[int]bool)
		}
		if seen[r.Source][r.LevelIndex] {
			t.Fatalf("duplicate delivery of %v", r)
		}
		seen[r.Source][r.LevelIndex] = true
	}
}

func TestDeliverDropsUnreachableSources(t *testing.T) {
	nw, _, _ := defaultSetup(t, 100, 2)
	tree := buildTree(t, nw)
	fake := Report{Level: 8, LevelIndex: 1, Pos: geom.Point{X: 1, Y: 1}, Grad: geom.Vec{X: 1}, Source: -1}
	got := DeliverReports(tree, []Report{fake}, FilterConfig{Enabled: false}, nil)
	if len(got) != 0 {
		t.Errorf("report from bogus source delivered: %v", got)
	}
}

func TestDisseminateQueryChargesTree(t *testing.T) {
	nw, _, _ := defaultSetup(t, 500, 3)
	tree := buildTree(t, nw)
	c := metrics.NewCounters(nw.Len())
	reached := DisseminateQuery(tree, c)
	if reached != tree.ReachableCount() {
		t.Errorf("reached = %d, want %d", reached, tree.ReachableCount())
	}
	// Every non-root reachable node received the query exactly once.
	var rx int64
	for i := 0; i < nw.Len(); i++ {
		rx += c.RxBytes(network.NodeID(i))
	}
	want := int64(QueryBytes) * int64(tree.ReachableCount()-1)
	if rx != want {
		t.Errorf("total query rx = %d, want %d", rx, want)
	}
}

func TestDefaultFilterConfig(t *testing.T) {
	fc := DefaultFilterConfig()
	if !fc.Enabled {
		t.Error("default filter should be enabled")
	}
	if math.Abs(geom.Degrees(fc.MaxAngle)-30) > 1e-9 {
		t.Errorf("MaxAngle = %v degrees, want 30", geom.Degrees(fc.MaxAngle))
	}
	if fc.MaxDist != 4 {
		t.Errorf("MaxDist = %v, want 4", fc.MaxDist)
	}
}

var _ = field.Levels{} // keep field import when build tags change
