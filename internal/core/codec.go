package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/network"
)

// Codec turns reports into the fixed-point wire format the paper's
// evaluation assumes: "each parameter in a report uses two bytes, such as
// the sensory value, position, gradient, etc." A report carries five
// parameters — isolevel value, position x, position y, gradient x,
// gradient y — each quantized over its range:
//
//   - the isolevel over the query's data space [Low, High],
//   - coordinates over the field extent,
//   - gradient components over [-1, 1] after normalization (only the
//     direction matters to the sink's boundary deduction).
//
// BytesPerParam 2 reproduces the paper's format (10-byte reports,
// quantization error ~1/65535 of each range — negligible); 1 halves the
// report to 5 bytes at ~1/255 resolution, a traffic/fidelity trade the
// ext-codec experiment measures.
type Codec struct {
	levels         field.Levels
	x0, y0, x1, y1 float64
	bytesPerParam  int
	maxQuant       float64
}

// NewCodec builds a codec for reports of the given query levels over the
// field bounds. bytesPerParam must be 1 or 2.
func NewCodec(levels field.Levels, bounds geom.Polygon, bytesPerParam int) (*Codec, error) {
	if bytesPerParam != 1 && bytesPerParam != 2 {
		return nil, fmt.Errorf("core: bytesPerParam must be 1 or 2, got %d", bytesPerParam)
	}
	if levels.Step <= 0 || levels.High < levels.Low {
		return nil, fmt.Errorf("core: codec requires a valid level scheme, got %+v", levels)
	}
	x0, y0, x1, y1 := bounds.BoundingBox()
	if x1 <= x0 || y1 <= y0 {
		return nil, fmt.Errorf("core: codec requires non-empty bounds")
	}
	maxQuant := 65535.0
	if bytesPerParam == 1 {
		maxQuant = 255.0
	}
	return &Codec{
		levels:        levels,
		x0:            x0,
		y0:            y0,
		x1:            x1,
		y1:            y1,
		bytesPerParam: bytesPerParam,
		maxQuant:      maxQuant,
	}, nil
}

// ReportSize returns the encoded size of one report in bytes.
func (c *Codec) ReportSize() int { return 5 * c.bytesPerParam }

// quantize maps v in [lo, hi] to an integer code.
func (c *Codec) quantize(v, lo, hi float64) uint16 {
	if hi <= lo {
		return 0
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return uint16(math.Round(t * c.maxQuant))
}

// dequantize inverts quantize.
func (c *Codec) dequantize(code uint16, lo, hi float64) float64 {
	return lo + float64(code)/c.maxQuant*(hi-lo)
}

func (c *Codec) putParam(dst []byte, code uint16) []byte {
	if c.bytesPerParam == 1 {
		return append(dst, byte(code))
	}
	return binary.BigEndian.AppendUint16(dst, code)
}

func (c *Codec) getParam(src []byte) (uint16, []byte) {
	if c.bytesPerParam == 1 {
		return uint16(src[0]), src[1:]
	}
	return binary.BigEndian.Uint16(src), src[2:]
}

// Encode serializes a report. The source identity is not on the wire: the
// isoposition is the report's identity, as in the paper's 3-tuple.
func (c *Codec) Encode(r Report) []byte {
	out := make([]byte, 0, c.ReportSize())
	out = c.putParam(out, c.quantize(r.Level, c.levels.Low, c.levels.High))
	out = c.putParam(out, c.quantize(r.Pos.X, c.x0, c.x1))
	out = c.putParam(out, c.quantize(r.Pos.Y, c.y0, c.y1))
	d := r.Grad.Unit()
	out = c.putParam(out, c.quantize(d.X, -1, 1))
	out = c.putParam(out, c.quantize(d.Y, -1, 1))
	return out
}

// Decode parses one encoded report. The isolevel snaps to the nearest
// level of the scheme (the wire carries the quantized value); Source is
// -1 (not transmitted).
func (c *Codec) Decode(b []byte) (Report, error) {
	if len(b) != c.ReportSize() {
		return Report{}, fmt.Errorf("core: encoded report is %d bytes, want %d", len(b), c.ReportSize())
	}
	var code uint16
	code, b = c.getParam(b)
	rawLevel := c.dequantize(code, c.levels.Low, c.levels.High)
	level, idx := c.levels.Nearest(rawLevel)
	var r Report
	r.Level = level
	r.LevelIndex = idx
	code, b = c.getParam(b)
	r.Pos.X = c.dequantize(code, c.x0, c.x1)
	code, b = c.getParam(b)
	r.Pos.Y = c.dequantize(code, c.y0, c.y1)
	code, b = c.getParam(b)
	gx := c.dequantize(code, -1, 1)
	code, _ = c.getParam(b)
	gy := c.dequantize(code, -1, 1)
	r.Grad = geom.Vec{X: gx, Y: gy}
	r.Source = network.NodeID(-1)
	return r, nil
}

// EncodeAll concatenates the encodings of a report batch.
func (c *Codec) EncodeAll(reports []Report) []byte {
	out := make([]byte, 0, len(reports)*c.ReportSize())
	for _, r := range reports {
		out = append(out, c.Encode(r)...)
	}
	return out
}

// DecodeAll parses a concatenated batch.
func (c *Codec) DecodeAll(b []byte) ([]Report, error) {
	size := c.ReportSize()
	if len(b)%size != 0 {
		return nil, fmt.Errorf("core: batch of %d bytes is not a multiple of %d", len(b), size)
	}
	out := make([]Report, 0, len(b)/size)
	for len(b) > 0 {
		r, err := c.Decode(b[:size])
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		b = b[size:]
	}
	return out, nil
}
