package core

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
)

func TestHopScopeDefault(t *testing.T) {
	q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q.HopScope != 1 {
		t.Errorf("HopScope = %d, want 1", q.HopScope)
	}
	q.HopScope = 0
	if got := q.scope(); got != 1 {
		t.Errorf("scope() with 0 = %d, want 1", got)
	}
	q.HopScope = 3
	if got := q.scope(); got != 3 {
		t.Errorf("scope() = %d, want 3", got)
	}
}

// scopeSetup deploys a sparse network where wider regression scopes pay
// off (Sec. 3.3: "adjusted within k-hop neighbors for different sensor
// deployment densities").
func scopeSetup(t *testing.T) (*network.Network, field.Field) {
	t.Helper()
	f := field.NewSeabed(field.DefaultSeabedConfig())
	nw, err := network.DeployUniform(900, f, 2.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	nw.Sense(f)
	return nw, f
}

func TestWiderScopeUsesMoreSamplesAndTraffic(t *testing.T) {
	nw, _ := scopeSetup(t)
	q1, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	q2 := q1
	q2.HopScope = 2

	c1 := metrics.NewCounters(nw.Len())
	r1 := DetectIsolineNodes(nw, q1, c1)
	c2 := metrics.NewCounters(nw.Len())
	r2 := DetectIsolineNodes(nw, q2, c2)

	// Same isoline nodes are appointed (detection is always 1-hop)...
	if len(r1) != len(r2) {
		t.Errorf("report counts differ across scopes: %d vs %d", len(r1), len(r2))
	}
	// ...but the wider probe costs more local traffic and computation.
	if c2.TotalRxBytes() <= c1.TotalRxBytes() {
		t.Errorf("2-hop probe rx %d not above 1-hop %d", c2.TotalRxBytes(), c1.TotalRxBytes())
	}
	if c2.TotalOps() <= c1.TotalOps() {
		t.Errorf("2-hop ops %d not above 1-hop %d", c2.TotalOps(), c1.TotalOps())
	}
}

func TestWiderScopeGradientsStillAccurate(t *testing.T) {
	nw, f := scopeSetup(t)
	q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	q.HopScope = 2
	reports := DetectIsolineNodes(nw, q, nil)
	if len(reports) < 5 {
		t.Fatalf("too few reports: %d", len(reports))
	}
	var sum float64
	for _, r := range reports {
		trueDown := field.GradientAt(f, r.Pos.X, r.Pos.Y).Neg()
		sum += geom.Degrees(r.Grad.AngleBetween(trueDown))
	}
	if mean := sum / float64(len(reports)); mean > 20 {
		t.Errorf("2-hop scope mean gradient error %v degrees", mean)
	}
}
