package core

import (
	"math"
	"math/rand"
	"testing"

	"isomap/internal/field"
	"isomap/internal/geom"
)

func codecLevels() field.Levels { return field.Levels{Low: 6, High: 12, Step: 2} }

func newTestCodec(t *testing.T, bpp int) *Codec {
	t.Helper()
	c, err := NewCodec(codecLevels(), geom.Rect(0, 0, 50, 50), bpp)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(codecLevels(), geom.Rect(0, 0, 50, 50), 3); err == nil {
		t.Error("want error for bytesPerParam 3")
	}
	if _, err := NewCodec(field.Levels{}, geom.Rect(0, 0, 50, 50), 2); err == nil {
		t.Error("want error for empty levels")
	}
	if _, err := NewCodec(codecLevels(), geom.Polygon{}, 2); err == nil {
		t.Error("want error for empty bounds")
	}
}

func TestCodecSizes(t *testing.T) {
	if got := newTestCodec(t, 2).ReportSize(); got != 10 {
		t.Errorf("2-byte codec report = %d bytes, want 10 (the paper's format)", got)
	}
	if got := newTestCodec(t, 1).ReportSize(); got != 5 {
		t.Errorf("1-byte codec report = %d bytes, want 5", got)
	}
	// The wire constant matches the full-resolution codec.
	if newTestCodec(t, 2).ReportSize() != ReportBytes {
		t.Errorf("codec size disagrees with ReportBytes = %d", ReportBytes)
	}
}

func TestCodecRoundTripErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		bpp         int
		posTol      float64 // field units
		angleTolDeg float64
	}{
		{2, 50.0 / 65535 * 1.1, 0.2},
		{1, 50.0 / 255 * 1.1, 2.0},
	} {
		c := newTestCodec(t, tc.bpp)
		for trial := 0; trial < 500; trial++ {
			theta := rng.Float64() * 2 * math.Pi
			orig := Report{
				Level:      6 + 2*float64(rng.Intn(4)),
				LevelIndex: 0,
				Pos:        geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50},
				Grad:       geom.Vec{X: math.Cos(theta), Y: math.Sin(theta)}.Scale(0.1 + rng.Float64()*5),
				Source:     7,
			}
			back, err := c.Decode(c.Encode(orig))
			if err != nil {
				t.Fatal(err)
			}
			if back.Level != orig.Level {
				t.Fatalf("bpp %d: level %v -> %v", tc.bpp, orig.Level, back.Level)
			}
			if d := back.Pos.DistTo(orig.Pos); d > tc.posTol*math.Sqrt2 {
				t.Fatalf("bpp %d: position error %v > %v", tc.bpp, d, tc.posTol*math.Sqrt2)
			}
			if ang := geom.Degrees(back.Grad.AngleBetween(orig.Grad)); ang > tc.angleTolDeg {
				t.Fatalf("bpp %d: gradient angle error %v deg", tc.bpp, ang)
			}
			if back.Source != -1 {
				t.Fatalf("source should not survive the wire: %d", back.Source)
			}
		}
	}
}

func TestCodecLevelSnapsToScheme(t *testing.T) {
	c := newTestCodec(t, 2)
	values := codecLevels().Values()
	for _, lv := range values {
		r := Report{Level: lv, Pos: geom.Point{X: 10, Y: 10}, Grad: geom.Vec{X: 1}}
		back, err := c.Decode(c.Encode(r))
		if err != nil {
			t.Fatal(err)
		}
		if back.Level != lv {
			t.Errorf("level %v decoded as %v", lv, back.Level)
		}
		if values[back.LevelIndex] != back.Level {
			t.Errorf("LevelIndex %d inconsistent with Level %v", back.LevelIndex, back.Level)
		}
	}
}

func TestCodecClampsOutOfRange(t *testing.T) {
	c := newTestCodec(t, 2)
	r := Report{Level: 99, Pos: geom.Point{X: -10, Y: 999}, Grad: geom.Vec{X: 5, Y: 0}}
	back, err := c.Decode(c.Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if back.Level != 12 {
		t.Errorf("out-of-range level clamps to 12, got %v", back.Level)
	}
	if back.Pos.X < 0 || back.Pos.X > 50 || back.Pos.Y < 0 || back.Pos.Y > 50 {
		t.Errorf("position %v outside bounds", back.Pos)
	}
}

func TestCodecBatch(t *testing.T) {
	c := newTestCodec(t, 2)
	reports := []Report{
		{Level: 6, Pos: geom.Point{X: 1, Y: 2}, Grad: geom.Vec{X: 1}},
		{Level: 8, Pos: geom.Point{X: 30, Y: 40}, Grad: geom.Vec{Y: -1}},
		{Level: 12, Pos: geom.Point{X: 49, Y: 49}, Grad: geom.Vec{X: -1, Y: 1}},
	}
	blob := c.EncodeAll(reports)
	if len(blob) != 30 {
		t.Fatalf("batch = %d bytes, want 30", len(blob))
	}
	back, err := c.DecodeAll(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("decoded %d reports", len(back))
	}
	for i := range back {
		if back[i].Level != reports[i].Level {
			t.Errorf("report %d level %v -> %v", i, reports[i].Level, back[i].Level)
		}
	}
	// Errors.
	if _, err := c.DecodeAll(blob[:7]); err == nil {
		t.Error("want error for ragged batch")
	}
	if _, err := c.Decode(blob[:4]); err == nil {
		t.Error("want error for short report")
	}
}
