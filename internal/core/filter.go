package core

import (
	"math"

	"isomap/internal/metrics"
	"isomap/internal/network"
	"isomap/internal/routing"
)

// FilterConfig parameterizes the in-network filtering of Sec. 3.5. Two
// reports of the same isolevel are considered redundant — and one of them
// dropped — when BOTH their angular separation s_a and distance separation
// s_d fall below the thresholds.
type FilterConfig struct {
	// Enabled turns filtering on. When false, every generated report is
	// forwarded to the sink untouched.
	Enabled bool
	// MaxAngle is the angular-separation threshold s_a in radians.
	MaxAngle float64
	// MaxDist is the distance-separation threshold s_d in field units.
	MaxDist float64
}

// DefaultFilterConfig returns the setting the paper uses for its headline
// results: s_a = 30 degrees, s_d = 4 units (Sec. 5.1).
func DefaultFilterConfig() FilterConfig {
	return FilterConfig{Enabled: true, MaxAngle: 30 * math.Pi / 180, MaxDist: 4}
}

// Redundant reports whether b duplicates a under the thresholds: same
// isolevel, angular separation below MaxAngle AND distance separation
// below MaxDist (Sec. 3.5).
func (fc FilterConfig) Redundant(a, b Report) bool {
	if a.LevelIndex != b.LevelIndex {
		return false
	}
	return AngularSeparation(a, b) < fc.MaxAngle && DistanceSeparation(a, b) < fc.MaxDist
}

// Delivery details one report-collection phase: the reports that reached
// the sink and, for the scheduling analysis, how many reports each node
// transmitted upward.
type Delivery struct {
	// Reports reached the sink.
	Reports []Report
	// ForwardedPerNode maps a node to the number of reports it
	// transmitted to its parent (own and relayed, post-filtering).
	ForwardedPerNode map[network.NodeID]int
}

// DeliverReports forwards the generated reports to the sink along the
// routing tree, applying in-network filtering at every intermediate node,
// and returns the reports that reach the sink.
//
// The delivery follows the level-synchronized TAG schedule: nodes process
// in post-order, so an intermediate node sees the already-filtered report
// sets of all its children before transmitting upward. Each node compares
// every incoming report against the reports it stores (its own and its
// other descendants') and drops the redundant ones; this matches the
// paper's analysis in which each surviving report is compared at most once
// with each other report on its way to the sink.
//
// Traffic is charged per tree hop: a report transmitted by child x and
// received by parent y costs ReportBytes at each. Reports from unreachable
// nodes are lost.
func DeliverReports(tree *routing.Tree, reports []Report, fc FilterConfig, c *metrics.Counters) []Report {
	return DeliverReportsDetailed(tree, reports, fc, c).Reports
}

// DeliverReportsDetailed is DeliverReports with per-node forwarding counts
// exposed, for the slotted-schedule analysis (internal/schedule).
func DeliverReportsDetailed(tree *routing.Tree, reports []Report, fc FilterConfig, c *metrics.Counters) Delivery {
	// Group the generated reports by source node.
	bySource := make(map[network.NodeID][]Report, len(reports))
	for _, r := range reports {
		bySource[r.Source] = append(bySource[r.Source], r)
	}

	// buffers[id] holds the filtered reports node id will forward.
	buffers := make(map[network.NodeID][]Report, len(bySource))
	forwarded := make(map[network.NodeID]int, len(bySource))
	order := tree.PostOrder()
	for _, id := range order {
		// Start with the node's own reports (a node never filters its own
		// single report against itself; with multiple matched levels they
		// are on different isolevels and never mutually redundant).
		buf := append([]Report(nil), bySource[id]...)
		// Merge each child's filtered buffer, charging the hop.
		for _, child := range tree.Children(id) {
			incoming := buffers[child]
			delete(buffers, child)
			if len(incoming) == 0 {
				continue
			}
			if c != nil {
				c.ChargeTx(child, ReportBytes*len(incoming))
				c.ChargeRx(id, ReportBytes*len(incoming))
			}
			if !fc.Enabled {
				buf = append(buf, incoming...)
				continue
			}
			for _, r := range incoming {
				dup := false
				for _, kept := range buf {
					chargeOps(c, id, OpsFilterPerComparison)
					if fc.Redundant(kept, r) {
						dup = true
						break
					}
				}
				if !dup {
					buf = append(buf, r)
				}
			}
		}
		buffers[id] = buf
		if id != tree.Root() && len(buf) > 0 {
			forwarded[id] = len(buf)
		}
	}

	sinkReports := buffers[tree.Root()]
	if c != nil {
		c.SinkReports += int64(len(sinkReports))
	}
	return Delivery{Reports: sinkReports, ForwardedPerNode: forwarded}
}

// DisseminateQuery floods the query from the sink down the routing tree
// (Sec. 3.2): every internal node broadcasts the query once and each child
// receives it. It returns the number of nodes reached.
func DisseminateQuery(tree *routing.Tree, c *metrics.Counters) int {
	reached := 0
	for _, id := range tree.PostOrder() {
		reached++
		children := tree.Children(id)
		if len(children) == 0 || c == nil {
			continue
		}
		c.ChargeTx(id, QueryBytes)
		for _, child := range children {
			c.ChargeRx(child, QueryBytes)
		}
	}
	return reached
}
