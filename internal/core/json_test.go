package core

import (
	"encoding/json"
	"strings"
	"testing"

	"isomap/internal/geom"
)

func TestReportJSONRoundTrip(t *testing.T) {
	r := Report{
		Level:      8,
		LevelIndex: 1,
		Pos:        geom.Point{X: 12.5, Y: 33.25},
		Grad:       geom.Vec{X: -0.5, Y: 0.25},
		Source:     42,
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"level"`, `"levelIndex"`, `"pos"`, `"grad"`, `"source"`, `"x"`, `"y"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("marshaled report missing %s: %s", key, data)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip: got %+v, want %+v", back, r)
	}
}

func TestReportSliceJSON(t *testing.T) {
	reports := []Report{
		{Level: 6, LevelIndex: 0, Pos: geom.Point{X: 1, Y: 2}, Grad: geom.Vec{X: 1}, Source: 1},
		{Level: 8, LevelIndex: 1, Pos: geom.Point{X: 3, Y: 4}, Grad: geom.Vec{Y: 1}, Source: 2},
	}
	data, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != reports[0] || back[1] != reports[1] {
		t.Errorf("slice round trip mismatch: %+v", back)
	}
}
