package core

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/network"
)

func TestRunEndToEnd(t *testing.T) {
	nw, f, q := defaultSetup(t, 2500, 1)
	tree := buildTree(t, nw)
	res, err := Run(tree, f, q, DefaultFilterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("no reports at sink")
	}
	if res.Generated < len(res.Reports) {
		t.Errorf("Generated (%d) < delivered (%d)", res.Generated, len(res.Reports))
	}
	if res.IsolineNodes == 0 || res.IsolineNodes > res.Generated {
		t.Errorf("IsolineNodes = %d incoherent with Generated = %d", res.IsolineNodes, res.Generated)
	}
	if res.Counters == nil || res.Counters.TotalTxBytes() == 0 {
		t.Error("counters not populated")
	}
	// The sink's own sensed value is recorded.
	sinkNode := tree.Network().Node(tree.Root())
	if res.SinkValue != sinkNode.Value {
		t.Errorf("SinkValue = %v, want %v", res.SinkValue, sinkNode.Value)
	}
}

func TestRunNilTree(t *testing.T) {
	f := field.NewSeabed(field.DefaultSeabedConfig())
	q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, f, q, DefaultFilterConfig()); err == nil {
		t.Error("want error for nil tree")
	}
}

func TestRunDeterministic(t *testing.T) {
	nw, f, q := defaultSetup(t, 1000, 9)
	tree := buildTree(t, nw)
	r1, err := Run(tree, f, q, DefaultFilterConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(tree, f, q, DefaultFilterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Reports) != len(r2.Reports) || r1.Generated != r2.Generated {
		t.Errorf("non-deterministic run: %d/%d vs %d/%d",
			len(r1.Reports), r1.Generated, len(r2.Reports), r2.Generated)
	}
}

func TestRunTrafficScalesSublinearly(t *testing.T) {
	// The headline claim: Iso-Map reporting is O(sqrt n). The filtered
	// report stream received at the sink is proportional to total isoline
	// length (the s_d threshold caps report density per unit of isoline),
	// which grows like sqrt(n) for geometrically similar fields at
	// constant density. Compare sink-received reports at two field sizes:
	// the 4x-node field should deliver roughly 2x, clearly below 4x.
	counts := make(map[float64]int)
	for _, side := range []float64{25, 50} {
		cfg := field.DefaultSeabedConfig()
		// Scale the surface features with the field so the contour
		// structure is geometrically similar at both sizes, as Theorem
		// 4.1's constant-K assumption requires.
		scale := side / cfg.Width
		cfg.Width, cfg.Height = side, side
		cfg.SigmaMin *= scale
		cfg.SigmaMax *= scale
		f := field.NewSeabed(cfg)
		n := int(side * side)
		nwSide, err := network.DeployUniform(n, f, 1.5, 4)
		if err != nil {
			t.Fatal(err)
		}
		nwSide.Sense(f)
		tree := buildTree(t, nwSide)
		q, err := NewQuery(field.Levels{Low: 6, High: 12, Step: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tree, f, q, DefaultFilterConfig())
		if err != nil {
			t.Fatal(err)
		}
		counts[side] = len(res.Reports)
		// Report generation stays far below the node count regardless.
		if res.Generated > n/4 {
			t.Errorf("side %v: %d generated reports for %d nodes — not sparse", side, res.Generated, n)
		}
	}
	if counts[25] == 0 {
		t.Fatal("no reports on small field")
	}
	ratio := float64(counts[50]) / float64(counts[25])
	if ratio > 3 {
		t.Errorf("received-report growth ratio %v for 4x nodes — not O(sqrt n)-like (counts %v)", ratio, counts)
	}
}
