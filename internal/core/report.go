package core

import (
	"fmt"

	"isomap/internal/geom"
	"isomap/internal/network"
)

// Report is an isoline node's 3-tuple report r = <v, p, d> (Sec. 3.3): the
// isolevel, the node position, and the local gradient direction. Source and
// LevelIndex are carried for bookkeeping; on the wire the report occupies
// ReportBytes.
type Report struct {
	// Level is the isolevel v the node sits on.
	Level float64 `json:"level"`
	// LevelIndex is Level's index in the query's isolevel scheme.
	LevelIndex int `json:"levelIndex"`
	// Pos is the isoposition p.
	Pos geom.Point `json:"pos"`
	// Grad is the gradient direction d = -grad(f): the direction in which
	// the attribute value most degrades. The isoline's normal direction.
	Grad geom.Vec `json:"grad"`
	// Source identifies the reporting isoline node.
	Source network.NodeID `json:"source"`
	// Retire marks a withdrawal record of the delta-report monitoring
	// mode: the source left this isolevel and the sink must drop its
	// cached report. Pos and Grad carry the retired report's values so
	// the record identifies the cache entry; on the wire a retirement
	// occupies RetireBytes instead of ReportBytes.
	Retire bool `json:"retire,omitempty"`
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("report{v=%.3g p=%v d=%v from=%d}", r.Level, r.Pos, r.Grad, r.Source)
}

// AngularSeparation returns s_a: the unsigned angle between the gradient
// directions of two reports (Sec. 3.5).
func AngularSeparation(a, b Report) float64 {
	return a.Grad.AngleBetween(b.Grad)
}

// DistanceSeparation returns s_d: the distance between the isopositions of
// two reports.
func DistanceSeparation(a, b Report) float64 {
	return a.Pos.DistTo(b.Pos)
}
