package core

import (
	"isomap/internal/geom"
	"isomap/internal/metrics"
	"isomap/internal/network"
)

// DetectIsolineNodes runs the distributed isoline-node appointment of
// Definition 3.1 over every alive node and returns the generated reports,
// one per (node, matched isolevel).
//
// A node p with value v_p is an isoline node for isolevel lambda iff
//  1. v_p lies in the border region [lambda-eps, lambda+eps], and
//  2. some neighbor q has lambda strictly between v_p and v_q.
//
// Appointed nodes probe their 1-hop neighborhood for <value, position>
// tuples (charged as one local broadcast plus one reply per neighbor) and
// estimate their gradient direction by linear regression. Nodes whose
// neighborhood is too degenerate for regression produce no report; the
// paper's dense deployments make this rare.
//
// Costs are charged to c (which may be nil for pure detection).
func DetectIsolineNodes(nw *network.Network, q Query, c *metrics.Counters) []Report {
	var reports []Report
	levels := q.Levels.Values()
	for i := range nw.Nodes() {
		id := network.NodeID(i)
		if !nw.Alive(id) {
			continue
		}
		node := nw.Node(id)
		chargeOps(c, id, OpsQueryParse+OpsDetectPerLevel*len(levels))
		candidates := q.CandidateLevels(node.Value)
		if len(candidates) == 0 {
			continue
		}
		neighbors := nw.AliveNeighbors(id)
		// Condition 2: check each candidate level against the neighborhood.
		var matched []int
		for _, li := range candidates {
			lambda := levels[li]
			chargeOps(c, id, OpsDetectPerNeighbor*len(neighbors))
			if straddlesLevel(nw, node.Value, neighbors, lambda) {
				matched = append(matched, li)
			}
		}
		if len(matched) == 0 {
			continue
		}
		// Local measurement: probe the (k-hop) neighborhood once
		// regardless of how many levels matched, then regress.
		scope := neighbors
		if k := q.scope(); k > 1 {
			scope = nw.KHopNeighbors(id, k)
		}
		grad, ok := measureGradient(nw, id, scope, q.scope(), c)
		if !ok {
			continue
		}
		for _, li := range matched {
			reports = append(reports, Report{
				Level:      levels[li],
				LevelIndex: li,
				Pos:        node.Pos,
				Grad:       grad,
				Source:     id,
			})
		}
	}
	if c != nil {
		c.GeneratedReports += int64(len(reports))
	}
	return reports
}

// straddlesLevel reports whether any neighbor's value puts lambda strictly
// between it and v (Definition 3.1, condition 2).
func straddlesLevel(nw *network.Network, v float64, neighbors []network.NodeID, lambda float64) bool {
	for _, nb := range neighbors {
		vq := nw.Node(nb).Value
		if (v < lambda && lambda < vq) || (vq < lambda && lambda < v) {
			return true
		}
	}
	return false
}

// measureGradient performs the neighborhood probe and regression for one
// isoline node, charging the local traffic and computation. With a k-hop
// scope the probe floods k hops and the replies travel up to k hops back,
// so the local traffic is charged with an average (k+1)/2-hop multiplier.
func measureGradient(nw *network.Network, id network.NodeID, neighbors []network.NodeID, hops int, c *metrics.Counters) (geom.Vec, bool) {
	node := nw.Node(id)
	samples := make([]Sample, 0, len(neighbors)+1)
	samples = append(samples, Sample{Pos: node.Pos, Value: node.Value})
	for _, nb := range neighbors {
		n := nw.Node(nb)
		samples = append(samples, Sample{Pos: n.Pos, Value: n.Value})
	}
	if c != nil {
		replyHops := (hops + 1) / 2
		if replyHops < 1 {
			replyHops = 1
		}
		c.Broadcast(id, neighbors, ProbeBytes)
		for _, nb := range neighbors {
			c.SendOneHop(nb, id, ProbeReplyBytes*replyHops)
		}
		chargeOps(c, id, OpsRegressionPerNeighbor*len(samples)+OpsRegressionSolve)
	}
	grad, err := GradientByRegression(samples)
	if err != nil || grad.Norm() <= geom.Eps {
		return geom.Vec{}, false
	}
	return grad, true
}

func chargeOps(c *metrics.Counters, id network.NodeID, ops int) {
	if c != nil {
		c.ChargeOps(id, ops)
	}
}
