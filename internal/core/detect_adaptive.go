package core

import (
	"isomap/internal/metrics"
	"isomap/internal/network"
)

// DetectIsolineNodesEdgeBased is an alternative appointment policy in the
// spirit of isoline aggregation (Solis and Obraczka, Mobiquitous 2005 —
// the related work the paper credits with the isoline-reporting idea but
// faults for not specifying the detection): instead of Definition 3.1's
// value border region, every radio edge whose endpoints straddle an
// isolevel elects a reporter — the endpoint whose reading is closer to the
// isolevel — with no epsilon parameter at all.
//
// Compared with Definition 3.1 it trades the tunable border band for
// guaranteed coverage: every isoline crossing of the communication graph
// produces exactly one candidate, so sparse or steep-gradient stretches
// of the isoline cannot be silently skipped, at the price of more
// reports on gentle gradients. The ext-detect experiment quantifies the
// trade.
func DetectIsolineNodesEdgeBased(nw *network.Network, q Query, c *metrics.Counters) []Report {
	levels := q.Levels.Values()
	// chosen[level] marks the appointed node per (level, node): a node
	// straddling many edges reports once per level.
	type key struct {
		id network.NodeID
		li int
	}
	chosen := make(map[key]struct{})
	for i := range nw.Nodes() {
		id := network.NodeID(i)
		if !nw.Alive(id) {
			continue
		}
		chargeOps(c, id, OpsQueryParse)
		v := nw.Node(id).Value
		for _, nb := range nw.AliveNeighbors(id) {
			if nb < id {
				continue // handle each edge once
			}
			vq := nw.Node(nb).Value
			for li, lambda := range levels {
				chargeOps(c, id, OpsDetectPerNeighbor)
				if !((v < lambda && lambda < vq) || (vq < lambda && lambda < v)) {
					continue
				}
				reporter := id
				if diff(vq, lambda) < diff(v, lambda) {
					reporter = nb
				}
				chosen[key{id: reporter, li: li}] = struct{}{}
			}
		}
	}

	var reports []Report
	for i := range nw.Nodes() {
		id := network.NodeID(i)
		var matched []int
		for li := range levels {
			if _, ok := chosen[key{id: id, li: li}]; ok {
				matched = append(matched, li)
			}
		}
		if len(matched) == 0 {
			continue
		}
		neighbors := nw.AliveNeighbors(id)
		grad, ok := measureGradient(nw, id, neighbors, 1, c)
		if !ok {
			continue
		}
		node := nw.Node(id)
		for _, li := range matched {
			reports = append(reports, Report{
				Level:      levels[li],
				LevelIndex: li,
				Pos:        node.Pos,
				Grad:       grad,
				Source:     id,
			})
		}
	}
	if c != nil {
		c.GeneratedReports += int64(len(reports))
	}
	return reports
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
