package core

import (
	"testing"

	"isomap/internal/field"
	"isomap/internal/metrics"
	"isomap/internal/network"
)

func TestEdgeBasedDetectionCoversEveryCrossing(t *testing.T) {
	nw, _, q := defaultSetup(t, 2500, 1)
	reports := DetectIsolineNodesEdgeBased(nw, q, nil)
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// Every straddling edge must have an appointed endpoint for its level.
	levels := q.Levels.Values()
	appointed := make(map[network.NodeID]map[int]bool)
	for _, r := range reports {
		if appointed[r.Source] == nil {
			appointed[r.Source] = make(map[int]bool)
		}
		appointed[r.Source][r.LevelIndex] = true
	}
	// Nodes that failed regression produce no report; collect them so the
	// coverage check skips their edges.
	for i := range nw.Nodes() {
		id := network.NodeID(i)
		if !nw.Alive(id) {
			continue
		}
		v := nw.Node(id).Value
		for _, nb := range nw.AliveNeighbors(id) {
			if nb < id {
				continue
			}
			vq := nw.Node(nb).Value
			for li, lambda := range levels {
				if !((v < lambda && lambda < vq) || (vq < lambda && lambda < v)) {
					continue
				}
				if !appointed[id][li] && !appointed[nb][li] {
					// Either endpoint may have failed regression; verify
					// that is the only excuse.
					gid, okI := measureGradient(nw, id, nw.AliveNeighbors(id), 1, nil)
					gnb, okJ := measureGradient(nw, nb, nw.AliveNeighbors(nb), 1, nil)
					_ = gid
					_ = gnb
					if okI && okJ {
						t.Fatalf("edge %d-%d straddles level %v with no reporter", id, nb, lambda)
					}
				}
			}
		}
	}
}

func TestEdgeBasedNeedsNoEpsilon(t *testing.T) {
	// Edge-based detection is insensitive to the epsilon parameter that
	// Definition 3.1 depends on.
	nw, _, _ := defaultSetup(t, 2500, 1)
	narrow, err := NewQueryEpsilon(field.Levels{Low: 6, High: 12, Step: 2}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewQueryEpsilon(field.Levels{Low: 6, High: 12, Step: 2}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	rNarrow := DetectIsolineNodesEdgeBased(nw, narrow, nil)
	rWide := DetectIsolineNodesEdgeBased(nw, wide, nil)
	if len(rNarrow) != len(rWide) {
		t.Errorf("edge-based counts differ across epsilon: %d vs %d", len(rNarrow), len(rWide))
	}
	// Definition 3.1 counts, by contrast, depend on epsilon strongly.
	dNarrow := DetectIsolineNodes(nw, narrow, nil)
	dWide := DetectIsolineNodes(nw, wide, nil)
	if len(dWide) <= len(dNarrow) {
		t.Errorf("Def 3.1 counts should grow with epsilon: %d vs %d", len(dNarrow), len(dWide))
	}
}

func TestEdgeBasedChargesCosts(t *testing.T) {
	nw, _, q := defaultSetup(t, 900, 2)
	c := metrics.NewCounters(nw.Len())
	reports := DetectIsolineNodesEdgeBased(nw, q, c)
	if c.GeneratedReports != int64(len(reports)) {
		t.Errorf("GeneratedReports = %d, want %d", c.GeneratedReports, len(reports))
	}
	if c.TotalOps() == 0 {
		t.Error("no ops charged")
	}
	for _, r := range reports {
		if c.TxBytes(r.Source) < ProbeBytes {
			t.Fatalf("reporter %d paid no probe traffic", r.Source)
		}
	}
}

func TestEdgeBasedReportersAreOnIsolines(t *testing.T) {
	// An edge-based reporter straddles the level with some neighbor: its
	// own value is within one local value-step of the isolevel.
	nw, _, q := defaultSetup(t, 2500, 3)
	reports := DetectIsolineNodesEdgeBased(nw, q, nil)
	for _, r := range reports {
		v := nw.Node(r.Source).Value
		ok := false
		for _, nb := range nw.AliveNeighbors(r.Source) {
			vq := nw.Node(nb).Value
			if (v < r.Level && r.Level < vq) || (vq < r.Level && r.Level < v) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("reporter %d does not straddle level %v", r.Source, r.Level)
		}
	}
}
