package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"isomap/internal/field"
	"isomap/internal/geom"
)

func TestRedundantSymmetricProperty(t *testing.T) {
	fc := DefaultFilterConfig()
	f := func(ax, ay, agx, agy, bx, by, bgx, bgy float64, sameLevel bool) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 50)
		}
		a := Report{
			LevelIndex: 1,
			Pos:        geom.Point{X: norm(ax), Y: norm(ay)},
			Grad:       geom.Vec{X: norm(agx), Y: norm(agy)},
		}
		b := Report{
			LevelIndex: 1,
			Pos:        geom.Point{X: norm(bx), Y: norm(by)},
			Grad:       geom.Vec{X: norm(bgx), Y: norm(bgy)},
		}
		if !sameLevel {
			b.LevelIndex = 2
		}
		return fc.Redundant(a, b) == fc.Redundant(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCandidateLevelsWithinEpsilonProperty(t *testing.T) {
	q, err := NewQueryEpsilon(field.Levels{Low: 0, High: 20, Step: 2}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	values := q.Levels.Values()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 40)
		for _, idx := range q.CandidateLevels(v) {
			if idx < 0 || idx >= len(values) {
				return false
			}
			if math.Abs(values[idx]-v) > q.Epsilon+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRegressionRecoversRandomPlanesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		c0 := rng.Float64()*20 - 10
		c1 := rng.Float64()*4 - 2
		c2 := rng.Float64()*4 - 2
		n := 4 + rng.Intn(12)
		samples := make([]Sample, n)
		for i := range samples {
			p := geom.Point{X: rng.Float64() * 5, Y: rng.Float64() * 5}
			samples[i] = Sample{Pos: p, Value: c0 + c1*p.X + c2*p.Y}
		}
		d, err := GradientByRegression(samples)
		if err != nil {
			// Random collinear sets are possible but vanishingly rare;
			// treat as a skip.
			continue
		}
		want := geom.Vec{X: -c1, Y: -c2}
		if d.Sub(want).Norm() > 1e-6*(1+want.Norm()) {
			t.Fatalf("trial %d: d = %v, want %v", trial, d, want)
		}
	}
}

func TestFilterNeverIncreasesReportsProperty(t *testing.T) {
	// DeliverReports output size is bounded by its input size for any
	// threshold combination.
	nw, _, q := defaultSetup(t, 900, 3)
	tree := buildTree(t, nw)
	generated := DetectIsolineNodes(nw, q, nil)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		fc := FilterConfig{
			Enabled:  true,
			MaxAngle: rng.Float64() * math.Pi,
			MaxDist:  rng.Float64() * 10,
		}
		got := DeliverReports(tree, generated, fc, nil)
		if len(got) > len(generated) {
			t.Fatalf("filter grew reports: %d > %d", len(got), len(generated))
		}
		// Every delivered report is one of the generated ones.
		seen := make(map[Report]bool, len(generated))
		for _, r := range generated {
			seen[r] = true
		}
		for _, r := range got {
			if !seen[r] {
				t.Fatalf("delivered report %v was never generated", r)
			}
		}
	}
}

func TestSeparationMetricsNonNegativeProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		a := Report{Pos: geom.Point{X: norm(ax), Y: norm(ay)}, Grad: geom.Vec{X: 1}}
		b := Report{Pos: geom.Point{X: norm(bx), Y: norm(by)}, Grad: geom.Vec{Y: 1}}
		return DistanceSeparation(a, b) >= 0 && AngularSeparation(a, b) >= 0 &&
			AngularSeparation(a, b) <= math.Pi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
