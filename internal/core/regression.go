package core

import (
	"errors"
	"math"

	"isomap/internal/geom"
)

// Sample is one <position, value> tuple collected from the neighborhood for
// local spatial modeling.
type Sample struct {
	Pos   geom.Point
	Value float64
}

// ErrDegenerateRegression is returned when the neighborhood samples do not
// span a plane (fewer than three non-collinear points), so no gradient can
// be estimated.
var ErrDegenerateRegression = errors.New("core: regression samples are degenerate")

// GradientByRegression fits the linear model v = c0 + c1*x + c2*y to the
// samples by least squares (Eq. 2 of the paper: solving A w = b with
// A = V^T V, b = V^T v) and returns the gradient direction
// d = -(c1, c2)^T (Eq. 3) — the direction of steepest value decrease.
//
// The sample slice must include the isoline node's own reading; the paper's
// n+1 points are the node plus its n neighbors.
func GradientByRegression(samples []Sample) (geom.Vec, error) {
	if len(samples) < 3 {
		return geom.Vec{}, ErrDegenerateRegression
	}
	// Shift coordinates to the centroid for numerical stability; the
	// gradient (c1, c2) is invariant under translation.
	var mx, my float64
	for _, s := range samples {
		mx += s.Pos.X
		my += s.Pos.Y
	}
	mx /= float64(len(samples))
	my /= float64(len(samples))

	// Accumulate the normal-equation sums.
	var (
		n            = float64(len(samples))
		sx, sy       float64
		sxx, syy     float64
		sxy          float64
		sv, sxv, syv float64
	)
	for _, s := range samples {
		x := s.Pos.X - mx
		y := s.Pos.Y - my
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
		sv += s.Value
		sxv += x * s.Value
		syv += y * s.Value
	}

	a := [3][4]float64{
		{n, sx, sy, sv},
		{sx, sxx, sxy, sxv},
		{sy, sxy, syy, syv},
	}
	w, err := solve3(a)
	if err != nil {
		return geom.Vec{}, err
	}
	return geom.Vec{X: -w[1], Y: -w[2]}, nil
}

// solve3 solves a 3x3 augmented linear system by Gaussian elimination with
// partial pivoting.
func solve3(a [3][4]float64) ([3]float64, error) {
	const tol = 1e-12
	for col := 0; col < 3; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < tol {
			return [3]float64{}, ErrDegenerateRegression
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate below.
		for r := col + 1; r < 3; r++ {
			factor := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= factor * a[col][c]
			}
		}
	}
	var w [3]float64
	for col := 2; col >= 0; col-- {
		sum := a[col][3]
		for c := col + 1; c < 3; c++ {
			sum -= a[col][c] * w[c]
		}
		w[col] = sum / a[col][col]
	}
	return w, nil
}
