package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"isomap/internal/geom"
)

func TestGradientByRegressionExactPlane(t *testing.T) {
	// v = 3 + 2x - y: gradient (2,-1), so d = (-2, 1).
	var samples []Sample
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 0.5, Y: 0.3}} {
		samples = append(samples, Sample{Pos: p, Value: 3 + 2*p.X - p.Y})
	}
	d, err := GradientByRegression(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.X+2) > 1e-9 || math.Abs(d.Y-1) > 1e-9 {
		t.Errorf("d = %v, want <-2, 1>", d)
	}
}

func TestGradientByRegressionNoisyPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var samples []Sample
	for i := 0; i < 30; i++ {
		p := geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}
		noise := rng.NormFloat64() * 0.01
		samples = append(samples, Sample{Pos: p, Value: 5 - p.X + 4*p.Y + noise})
	}
	d, err := GradientByRegression(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.Vec{X: 1, Y: -4}
	if ang := d.AngleBetween(want); ang > 0.02 {
		t.Errorf("direction error %v rad, d = %v", ang, d)
	}
}

func TestGradientByRegressionDegenerate(t *testing.T) {
	tests := []struct {
		name    string
		samples []Sample
	}{
		{"too few", []Sample{{Pos: geom.Point{}, Value: 1}, {Pos: geom.Point{X: 1}, Value: 2}}},
		{"collinear", []Sample{
			{Pos: geom.Point{X: 0}, Value: 1},
			{Pos: geom.Point{X: 1}, Value: 2},
			{Pos: geom.Point{X: 2}, Value: 3},
			{Pos: geom.Point{X: 3}, Value: 4},
		}},
		{"coincident", []Sample{
			{Pos: geom.Point{X: 1, Y: 1}, Value: 1},
			{Pos: geom.Point{X: 1, Y: 1}, Value: 2},
			{Pos: geom.Point{X: 1, Y: 1}, Value: 3},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := GradientByRegression(tt.samples); !errors.Is(err, ErrDegenerateRegression) {
				t.Errorf("want ErrDegenerateRegression, got %v", err)
			}
		})
	}
}

func TestGradientTranslationInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		var base, shifted []Sample
		shift := geom.Vec{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		for i := 0; i < 10; i++ {
			p := geom.Point{X: rng.Float64() * 2, Y: rng.Float64() * 2}
			v := rng.Float64() * 10
			base = append(base, Sample{Pos: p, Value: v})
			shifted = append(shifted, Sample{Pos: p.Add(shift), Value: v})
		}
		d1, err1 := GradientByRegression(base)
		d2, err2 := GradientByRegression(shifted)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("translation changed degeneracy: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if d1.Sub(d2).Norm() > 1e-6*(1+d1.Norm()) {
			t.Fatalf("translation changed gradient: %v vs %v", d1, d2)
		}
	}
}

func TestGradientPointsDownhill(t *testing.T) {
	// On v = x^2 + y^2 near (1, 0), d must point roughly toward -x.
	var samples []Sample
	pts := []geom.Point{
		{X: 0.9, Y: 0}, {X: 1.1, Y: 0}, {X: 1, Y: 0.1}, {X: 1, Y: -0.1}, {X: 1, Y: 0},
	}
	for _, p := range pts {
		samples = append(samples, Sample{Pos: p, Value: p.X*p.X + p.Y*p.Y})
	}
	d, err := GradientByRegression(samples)
	if err != nil {
		t.Fatal(err)
	}
	if d.X >= 0 {
		t.Errorf("d = %v should point downhill (negative x)", d)
	}
}

func TestSolve3Identity(t *testing.T) {
	a := [3][4]float64{
		{1, 0, 0, 5},
		{0, 1, 0, -2},
		{0, 0, 1, 7},
	}
	w, err := solve3(a)
	if err != nil {
		t.Fatal(err)
	}
	if w != [3]float64{5, -2, 7} {
		t.Errorf("w = %v", w)
	}
}

func TestSolve3NeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [3][4]float64{
		{0, 1, 0, 2},
		{1, 0, 0, 3},
		{0, 0, 1, 4},
	}
	w, err := solve3(a)
	if err != nil {
		t.Fatal(err)
	}
	if w != [3]float64{3, 2, 4} {
		t.Errorf("w = %v", w)
	}
}

func TestSolve3Singular(t *testing.T) {
	a := [3][4]float64{
		{1, 2, 3, 1},
		{2, 4, 6, 2},
		{0, 0, 1, 1},
	}
	if _, err := solve3(a); err == nil {
		t.Error("want error for singular system")
	}
}
